module Binary = Icfg_obj.Binary
module Parse = Icfg_analysis.Parse
module Cfg = Icfg_analysis.Cfg
module Vm = Icfg_runtime.Vm
module Runtime_lib = Icfg_runtime.Runtime_lib

type failure =
  | Original_crashed of string
  | Rewritten_crashed of string
  | Output_mismatch
  | Count_mismatch of { block : int; expected : int; got : int }

type report = {
  ok : bool;
  failures : failure list;
  blocks_checked : int;
  blocks_executed : int;
  orig_cycles : int;
  rewritten_cycles : int;
  rewritten_traps : int;
  stats : Rewriter.stats;
  trace : Trace.t;
}

let pp_failure ppf = function
  | Original_crashed m -> Format.fprintf ppf "original crashed: %s" m
  | Rewritten_crashed m -> Format.fprintf ppf "rewritten crashed: %s" m
  | Output_mismatch -> Format.fprintf ppf "observable output differs"
  | Count_mismatch { block; expected; got } ->
      Format.fprintf ppf
        "block 0x%x executed %d times but instrumentation counted %d" block
        expected got

let pp_report ppf r =
  if r.ok then
    Format.fprintf ppf
      "OK: %d blocks verified (%d executed), cycles %d -> %d (traps %d)@."
      r.blocks_checked r.blocks_executed r.orig_cycles r.rewritten_cycles
      r.rewritten_traps
  else begin
    Format.fprintf ppf "FAILED (%d problems):@." (List.length r.failures);
    List.iter (fun f -> Format.fprintf ppf "  - %a@." pp_failure f) r.failures
  end

let base_config (bin : Binary.t) =
  let c = Vm.default_config () in
  if bin.Binary.pie then { c with Vm.load_base = 0x20000000 } else c

let strong_test ?(options = Rewriter.default_options) ?fm bin =
  let options =
    {
      options with
      Rewriter.payload = Rewriter.P_count;
      granularity = Rewriter.G_block;
      overwrite_original = true;
    }
  in
  let par =
    { Parse.pmap = (fun f l -> Pool.map ~jobs:(max 1 options.Rewriter.jobs) f l) }
  in
  (* The whole strong test runs under its own trace so the report can say
     where cycles and traps went; when the caller already installed an
     ambient trace it is shadowed for the duration (nesting would double
     count the shared counter namespace). *)
  let trace = Trace.create () in
  Trace.with_current trace @@ fun () ->
  let parse = Parse.parse ?fm ~par ~probe:(Trace.parse_probe ()) bin in
  let rw = Rewriter.rewrite ~options parse in
  (* Which functions were actually instrumented (instrumentable + filter)? *)
  let instrumented fa =
    fa.Parse.fa_instrumentable
    &&
    match options.Rewriter.only with
    | None -> true
    | Some names -> List.mem fa.Parse.fa_sym.Icfg_obj.Symbol.name names
  in
  (* Ground-truth profile of the original run. *)
  let profile = Hashtbl.create 512 in
  List.iter
    (fun fa ->
      List.iter
        (fun (b : Cfg.block) -> Hashtbl.replace profile b.Cfg.b_start 0)
        fa.Parse.fa_cfg.Cfg.blocks)
    parse.Parse.funcs;
  let orig =
    Trace.span "run:original" @@ fun () ->
    Vm.run
      ~config:{ (base_config bin) with Vm.profile = Some profile }
      ~routines:(Runtime_lib.standard ()) bin
  in
  Trace.add_vm ~prefix:"vm/original" orig;
  let counters = Hashtbl.create 512 in
  let config = Rewriter.vm_config_for rw (base_config bin) in
  let rewritten =
    Trace.span "run:rewritten" @@ fun () ->
    Vm.run ~config ~routines:(Rewriter.routines_for rw ~counters)
      rw.Rewriter.rw_binary
  in
  Trace.add_vm ~prefix:"vm/rewritten" rewritten;
  let failures = ref [] in
  (match orig.Vm.outcome with
  | Vm.Crashed m -> failures := Original_crashed m :: !failures
  | Vm.Halted -> ());
  (match rewritten.Vm.outcome with
  | Vm.Crashed m -> failures := Rewritten_crashed m :: !failures
  | Vm.Halted -> ());
  if
    orig.Vm.outcome = Vm.Halted
    && rewritten.Vm.outcome = Vm.Halted
    && orig.Vm.output <> rewritten.Vm.output
  then failures := Output_mismatch :: !failures;
  let blocks_checked = ref 0 and blocks_executed = ref 0 in
  (Trace.span "check-counts" @@ fun () ->
  if !failures = [] then
    List.iter
      (fun fa ->
        if instrumented fa then
          List.iter
            (fun (b : Cfg.block) ->
              incr blocks_checked;
              let expected =
                Option.value ~default:0 (Hashtbl.find_opt profile b.Cfg.b_start)
              in
              let got =
                Option.value ~default:0 (Hashtbl.find_opt counters b.Cfg.b_start)
              in
              if expected > 0 then incr blocks_executed;
              if expected <> got then
                failures :=
                  Count_mismatch { block = b.Cfg.b_start; expected; got }
                  :: !failures)
            fa.Parse.fa_cfg.Cfg.blocks)
      parse.Parse.funcs);
  {
    ok = !failures = [];
    failures = List.rev !failures;
    blocks_checked = !blocks_checked;
    blocks_executed = !blocks_executed;
    orig_cycles = orig.Vm.cycles;
    rewritten_cycles = rewritten.Vm.cycles;
    rewritten_traps = rewritten.Vm.trap_hits;
    stats = rw.Rewriter.rw_stats;
    trace;
  }
