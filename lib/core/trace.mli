(** Pipeline observability: hierarchical timed spans + named counters.

    A [Trace.t] collects a tree of wall-clock spans (monotonic-clock
    start/stop, nestable) and a flat bag of named integer counters. The
    pipeline is instrumented against an *ambient* trace installed with
    [with_current]: when none is installed every probe below is a no-op, so
    tracing is strictly observation-only — rewriting with tracing on and off
    produces byte-identical output (enforced by [test/test_trace.ml]).

    Domain-safety: span nesting is tracked per-domain ([Domain.DLS]), and
    attaching finished spans / bumping counters takes the trace's mutex, so
    sharded [Pool] stages can record per-lane child spans concurrently.
    Counter *totals* are required to be independent of the lane count —
    instrumentation must only count properties of the input/output, never of
    the parallel schedule (chunk or lane counts); span shapes may differ per
    run, totals may not. *)

type t

val create : unit -> t

val with_current : t -> (unit -> 'a) -> 'a
(** Install [t] as {e this domain's} ambient trace for the duration of [f]
    (restoring the previous ambient trace on exit, exceptional or not).
    Spans and counters recorded by the pipeline anywhere under [f] —
    including from pool worker domains servicing [f]'s batches, which
    re-install the forking domain's trace via [lane] — land in [t].

    The ambient trace is per-domain ([Domain.DLS]), so concurrent requests
    running on distinct domains (the [icfg serve] executors) each observe
    only their own trace: no cross-request counter bleed. Note that
    sys-threads share their domain's slot — request bodies that record
    must run on dedicated domains, not threads of a shared domain. *)

val active : unit -> bool
(** Is an ambient trace installed? Lets instrumentation skip work whose only
    purpose is feeding a counter. *)

(** {1 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** Time [f] as a child of the innermost open span on this domain (or as a
    root span). No-op wrapper when no trace is ambient. *)

val add : string -> int -> unit
(** Add [n] to the named counter (created at 0). No-op when no trace is
    ambient. *)

val incr : string -> unit

(** {1 Cross-domain span parenting}

    [Pool.map] captures the caller's innermost open span with [fork] before
    fanning out, and each lane (worker domains and the caller itself) runs
    its batch body under [lane ctx "lane-<k>"], which re-parents the lane's
    span tree under the captured span {e and} installs the forking domain's
    trace as the worker's ambient for the batch — workers are shared across
    concurrent requests, so the batch must record into the forking request's
    trace, not the worker's leftover ambient. *)

type ctx

val fork : unit -> ctx
val lane : ctx -> string -> (unit -> 'a) -> 'a

(** {1 Reading} *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val find_counter : t -> string -> int option

type row = { r_path : string; r_count : int; r_ns : int }
(** Flattened span tree: ["rewrite/place:plan"]-style slash-joined path,
    number of spans merged into the row, summed wall time in ns. *)

val rows : t -> row list
(** First-seen (chronological) order. *)

val to_json : t -> string
(** Schema ["icfg-trace/1"]: [{"schema", "counters": {name: total},
    "spans": [{"name", "ns", "children": [...]}]}]. Counters sorted by
    name; spans in completion order. *)

val with_file : string -> (unit -> 'a) -> 'a
(** Run [f] under a fresh ambient trace and write the {!to_json} report to
    [path] — {e also when [f] raises} (the exception is re-raised after the
    file is written), so failed pipelines stay diagnosable. *)

(** {1 Pipeline adapters} *)

val add_vm : prefix:string -> Icfg_runtime.Vm.result -> unit
(** Record a finished VM run's runtime counters under [prefix] (e.g.
    ["vm/rewritten"]): cycles (total and per cost bucket), steps, traps
    delivered, RA translations, icache hits/misses, unwind steps. *)

val parse_probe : unit -> Icfg_analysis.Parse.probe
(** Probe record wired to the ambient trace, for injection into
    [Parse.parse] (the analysis layer sits below this library and cannot
    call [span]/[add] directly). *)
