(** Content-addressed memoization of per-function pipeline artifacts.

    Every pure per-item stage of the pipeline — per-function CFG /
    jump-table analysis, finalization + liveness, function-pointer scans,
    relocation, trampoline placement planning, and [Asm.encode_sharded]
    chunk encoding — is a deterministic function of plain data. A cache
    entry is keyed by a digest of {e everything} that function reads
    (function bytes, whole-binary context, failure model, rewrite options,
    stage tag, {!schema_version}), so a stale entry can never match: any
    input change changes the key and the entry is simply never found again.
    There is no mutation-based invalidation to get wrong.

    Two tiers share one {!t}:

    - an in-process store (a mutex-protected hash table) shared safely
      across [Pool] lanes, and
    - an opt-in on-disk store ([create ~dir]) with a versioned entry
      format. Corrupt, truncated or version-skewed entries degrade to a
      miss — never an error, never wrong bytes — and are evicted
      (counted in [c_evict_corrupt] / the [cache.evict_corrupt] trace
      counter). The disk tier can be size-bounded
      ([create ~max_disk_bytes]): once the total size of on-disk entries
      exceeds the bound, least-recently-used entries lose their disk file
      (counted in [c_evict_lru] / [cache.evict_lru]) while keeping their
      in-memory copy.

    Observation safety: the cache must be jobs-independent like every
    other pipeline observable. {!memo_map} therefore computes keys and
    performs lookups serially in input order (so hit/miss counts cannot
    depend on the parallel schedule) and only fans the {e misses} out
    across the pool. Hit payloads are unmarshalled freshly per lookup, so
    mutable structures inside cached values (CFG succ/pred tables,
    liveness tables) are never aliased between runs. *)

val schema_version : int
(** Bumped whenever the marshalled shape of any cached value changes;
    part of every key, so old stores degrade to universal misses. *)

type t

val create : ?dir:string -> ?max_disk_bytes:int -> unit -> t
(** In-memory cache; with [dir], also backed by an on-disk store rooted
    there (created, including parents, if missing). With
    [max_disk_bytes], the on-disk tier is LRU-bounded: entries already
    present in [dir] are accounted as coldest, and every store that
    pushes the total over the bound evicts least-recently-used disk
    files (deterministically: minimal access tick, ties by key) until it
    fits again. Eviction removes only the disk file — the in-memory copy
    is kept. *)

val clone : t -> t
(** Snapshot: a new cache sharing nothing with [t] but pre-populated with
    its current in-memory entries, with zeroed statistics and {e no}
    on-disk tier. Lets benchmarks replay a warm cache without re-warming. *)

type stats = {
  c_hits : int;
  c_misses : int;
  c_stores : int;
  c_bytes_reused : int;  (** marshalled payload bytes served from cache *)
  c_evict_corrupt : int;  (** on-disk entries dropped as corrupt/stale *)
  c_evict_lru : int;  (** on-disk entries dropped by the size bound *)
}

val stats : t -> stats

val hit_rate : stats -> float
(** [c_hits / (c_hits + c_misses)] in [0, 1]; [0.] when no lookups have
    happened. Jobs-independent, like the underlying counters. *)

val dir : t -> string option

(** {1 Key construction}

    Stages build raw keys from these and pass them to {!memo_map}, which
    digests [kjoin [magic; schema_version; stage; raw_key]] into the final
    key — so equal raw keys in different stages never collide. *)

val dval : 'a -> string
(** Canonical bytes of a structural value ([Marshal] with [No_sharing],
    so structurally equal values digest equally regardless of sharing
    history). Only for plain data — no closures, no custom blocks, no
    cycles. *)

val kjoin : string list -> string
(** Length-prefixed concatenation: injective, so adjacent key parts can
    never alias each other. *)

val memo_map :
  ?cache:t ->
  jobs:int ->
  stage:string ->
  key:('a -> string) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [memo_map ?cache ~jobs ~stage ~key f xs] is observably
    [Pool.map ~jobs f xs] — and exactly that when [cache] is [None]
    ([key] is never called). With a cache: keys are computed and looked
    up serially in input order, misses are computed with
    [Pool.map ~jobs] and stored, and results are reassembled in input
    order. [f] must be a pure function of what [key] digests, and ['b]
    must be marshal-safe plain data. Counters ([cache.hit],
    [cache.hit:<stage>], [cache.miss], [cache.miss:<stage>],
    [cache.bytes_reused], [cache.evict_corrupt]) are recorded on the
    ambient {!Trace} when one is installed. *)

val entry_files : t -> string list
(** Absolute paths of the on-disk entries currently present (sorted);
    [[]] without a disk tier. Slot files (see {!find_slot}) are not
    included. For fault-injection tests. *)

(** {1 Slots}

    A slot is a small side value addressed by what it is {e for} rather
    than by its contents — e.g. "the previous layout of this binary
    under these options" — so a warm run can load last run's result and
    overwrite it with this run's. Slots live in the shared in-memory
    table (so {!clone} carries them into warm replays) and in [.slot]
    files next to the entry tier; they do not participate in hit/miss
    statistics, {!entry_files} or the LRU bound. A slot that fails to
    unmarshal (foreign writer, cross-version store) reads as absent and
    is evicted, counted in [c_evict_corrupt]. *)

val find_slot : t -> string -> 'a option
(** [find_slot c raw] is the value last stored under [raw], if any.
    Like [Marshal.from_string], the ['a] is trusted: read a slot with
    the type it was stored at. *)

val store_slot : t -> string -> 'a -> unit
(** [store_slot c raw v] (over)writes the slot named by [raw]. *)
