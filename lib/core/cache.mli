(** Content-addressed memoization of per-function pipeline artifacts.

    Every pure per-item stage of the pipeline — per-function CFG /
    jump-table analysis, finalization + liveness, function-pointer scans,
    relocation, trampoline placement planning, and [Asm.encode_sharded]
    chunk encoding — is a deterministic function of plain data. A cache
    entry is keyed by a digest of {e everything} that function reads
    (function bytes, whole-binary context, failure model, rewrite options,
    stage tag, {!schema_version}), so a stale entry can never match: any
    input change changes the key and the entry is simply never found again.
    There is no mutation-based invalidation to get wrong.

    Two tiers share one {!t}:

    - an in-process store (a mutex-protected hash table) shared safely
      across [Pool] lanes, and
    - an opt-in on-disk store ([create ~dir]) with a versioned entry
      format. Corrupt, truncated or version-skewed entries degrade to a
      miss — never an error, never wrong bytes — and are evicted
      (counted in [c_evict_corrupt] / the [cache.evict_corrupt] trace
      counter).

    Observation safety: the cache must be jobs-independent like every
    other pipeline observable. {!memo_map} therefore computes keys and
    performs lookups serially in input order (so hit/miss counts cannot
    depend on the parallel schedule) and only fans the {e misses} out
    across the pool. Hit payloads are unmarshalled freshly per lookup, so
    mutable structures inside cached values (CFG succ/pred tables,
    liveness tables) are never aliased between runs. *)

val schema_version : int
(** Bumped whenever the marshalled shape of any cached value changes;
    part of every key, so old stores degrade to universal misses. *)

type t

val create : ?dir:string -> unit -> t
(** In-memory cache; with [dir], also backed by an on-disk store rooted
    there (created, including parents, if missing). *)

val clone : t -> t
(** Snapshot: a new cache sharing nothing with [t] but pre-populated with
    its current in-memory entries, with zeroed statistics and {e no}
    on-disk tier. Lets benchmarks replay a warm cache without re-warming. *)

type stats = {
  c_hits : int;
  c_misses : int;
  c_stores : int;
  c_bytes_reused : int;  (** marshalled payload bytes served from cache *)
  c_evict_corrupt : int;  (** on-disk entries dropped as corrupt/stale *)
}

val stats : t -> stats

val hit_rate : stats -> float
(** [c_hits / (c_hits + c_misses)] in [0, 1]; [0.] when no lookups have
    happened. Jobs-independent, like the underlying counters. *)

val dir : t -> string option

(** {1 Key construction}

    Stages build raw keys from these and pass them to {!memo_map}, which
    digests [kjoin [magic; schema_version; stage; raw_key]] into the final
    key — so equal raw keys in different stages never collide. *)

val dval : 'a -> string
(** Canonical bytes of a structural value ([Marshal] with [No_sharing],
    so structurally equal values digest equally regardless of sharing
    history). Only for plain data — no closures, no custom blocks, no
    cycles. *)

val kjoin : string list -> string
(** Length-prefixed concatenation: injective, so adjacent key parts can
    never alias each other. *)

val memo_map :
  ?cache:t ->
  jobs:int ->
  stage:string ->
  key:('a -> string) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [memo_map ?cache ~jobs ~stage ~key f xs] is observably
    [Pool.map ~jobs f xs] — and exactly that when [cache] is [None]
    ([key] is never called). With a cache: keys are computed and looked
    up serially in input order, misses are computed with
    [Pool.map ~jobs] and stored, and results are reassembled in input
    order. [f] must be a pure function of what [key] digests, and ['b]
    must be marshal-safe plain data. Counters ([cache.hit],
    [cache.hit:<stage>], [cache.miss], [cache.miss:<stage>],
    [cache.bytes_reused], [cache.evict_corrupt]) are recorded on the
    ambient {!Trace} when one is installed. *)

val entry_files : t -> string list
(** Absolute paths of the on-disk entries currently present (sorted);
    [[]] without a disk tier. For fault-injection tests. *)
