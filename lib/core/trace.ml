let now () = Monotonic_clock.now ()

type node = {
  n_name : string;
  n_start : int64;
  mutable n_stop : int64;
  mutable n_children : node list; (* reversed: most recently finished first *)
}

type t = {
  mutable roots : node list; (* reversed *)
  counters : (string, int) Hashtbl.t;
  m : Mutex.t;
}

let create () =
  { roots = []; counters = Hashtbl.create 64; m = Mutex.create () }

(* The ambient trace, per domain. Used to be a single process-global
   [Atomic.t], which meant two concurrent requests in one process (the
   [icfg serve] daemon) would bleed counters into whichever trace was
   installed last. Per-domain storage gives each request its own ambient
   as long as requests run on distinct domains; [Pool] lanes re-install
   the forking request's trace via [lane], so sharded stages still land
   in the right trace. *)
let ambient : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_ambient () = Domain.DLS.get ambient
let set_ambient v = Domain.DLS.set ambient v

(* Innermost-first stack of open spans, per domain: nesting is a property
   of one domain's call stack, while the finished-span tree is shared. *)
let open_spans : node list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_current t f =
  let prev = get_ambient () in
  set_ambient (Some t);
  Fun.protect ~finally:(fun () -> set_ambient prev) f

let active () = get_ambient () <> None

let attach t ~parent node =
  Mutex.lock t.m;
  (match parent with
  | Some p -> p.n_children <- node :: p.n_children
  | None -> t.roots <- node :: t.roots);
  Mutex.unlock t.m

let span_in t name f =
  let stack = Domain.DLS.get open_spans in
  let parent = match !stack with n :: _ -> Some n | [] -> None in
  let node =
    { n_name = name; n_start = now (); n_stop = 0L; n_children = [] }
  in
  stack := node :: !stack;
  Fun.protect
    ~finally:(fun () ->
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      node.n_stop <- now ();
      attach t ~parent node)
    f

let span name f =
  match get_ambient () with None -> f () | Some t -> span_in t name f

let add name n =
  match get_ambient () with
  | None -> ()
  | Some t ->
      Mutex.lock t.m;
      let prev = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
      Hashtbl.replace t.counters name (prev + n);
      Mutex.unlock t.m

let incr name = add name 1

type ctx = (t * node option) option

let fork () =
  match get_ambient () with
  | None -> None
  | Some t ->
      let stack = Domain.DLS.get open_spans in
      Some (t, (match !stack with n :: _ -> Some n | [] -> None))

let lane ctx name f =
  match ctx with
  | None -> f ()
  | Some (t, parent) ->
      (* Replace this domain's open-span stack with the forking domain's
         innermost span so the lane's tree attaches under it (workers have
         an empty stack; the caller's own lane is equivalent either way).
         Also install the forking domain's trace as this domain's ambient:
         pool workers are shared across requests, so counters recorded by
         the batch body must land in the *forking* request's trace, not in
         whatever trace another request left installed on this worker. *)
      let stack = Domain.DLS.get open_spans in
      let saved = !stack in
      let saved_ambient = get_ambient () in
      stack := (match parent with Some p -> [ p ] | None -> []);
      set_ambient (Some t);
      Fun.protect
        ~finally:(fun () ->
          stack := saved;
          set_ambient saved_ambient)
        (fun () -> span_in t name f)

let counters t =
  Mutex.lock t.m;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters [] in
  Mutex.unlock t.m;
  List.sort compare l

let find_counter t name =
  Mutex.lock t.m;
  let v = Hashtbl.find_opt t.counters name in
  Mutex.unlock t.m;
  v

let ns_of n = Int64.to_int (Int64.sub n.n_stop n.n_start)

type row = { r_path : string; r_count : int; r_ns : int }

let rows t =
  Mutex.lock t.m;
  let roots = List.rev t.roots in
  Mutex.unlock t.m;
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  let rec go prefix n =
    let path = if prefix = "" then n.n_name else prefix ^ "/" ^ n.n_name in
    (match Hashtbl.find_opt tbl path with
    | None ->
        Hashtbl.add tbl path (ref 1, ref (ns_of n));
        order := path :: !order
    | Some (c, ns) ->
        Stdlib.incr c;
        ns := !ns + ns_of n);
    List.iter (go path) (List.rev n.n_children)
  in
  List.iter (go "") roots;
  List.rev_map
    (fun path ->
      let c, ns = Hashtbl.find tbl path in
      { r_path = path; r_count = !c; r_ns = !ns })
    !order

(* Hand-rolled JSON, same policy as bench/main.ml: no JSON dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"icfg-trace/1\",\n  \"counters\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    \"%s\": %d" (json_escape k) v)
    (counters t);
  Buffer.add_string b "\n  },\n  \"spans\": [";
  let rec node buf n =
    Printf.bprintf buf "{\"name\": \"%s\", \"ns\": %d" (json_escape n.n_name)
      (ns_of n);
    (match List.rev n.n_children with
    | [] -> ()
    | children ->
        Buffer.add_string buf ", \"children\": [";
        List.iteri
          (fun i c ->
            if i > 0 then Buffer.add_string buf ", ";
            node buf c)
          children;
        Buffer.add_char buf ']');
    Buffer.add_char buf '}'
  in
  Mutex.lock t.m;
  let roots = List.rev t.roots in
  Mutex.unlock t.m;
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      node b r)
    roots;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Write-in-finally: the trace file must land on disk even when [f] raises
   (a failed rewrite is exactly when the trace is wanted), so the JSON dump
   runs under [Fun.protect] — after the ambient trace is uninstalled, so
   every span recorded before the raise is already attached. *)
let with_file path f =
  let t = create () in
  Fun.protect
    ~finally:(fun () ->
      let oc = open_out path in
      output_string oc (to_json t);
      close_out oc)
    (fun () -> with_current t f)

let add_vm ~prefix (r : Icfg_runtime.Vm.result) =
  if active () then begin
    add (prefix ^ "/cycles") r.cycles;
    add (prefix ^ "/steps") r.steps;
    add (prefix ^ "/traps") r.trap_hits;
    add (prefix ^ "/ra-translations") r.ra_translations;
    add (prefix ^ "/unwind-steps") r.unwind_steps;
    add (prefix ^ "/icache-misses") r.icache_misses;
    add (prefix ^ "/icache-hits") (r.icache_accesses - r.icache_misses);
    List.iter
      (fun (bucket, cycles) -> add (prefix ^ "/cycles:" ^ bucket) cycles)
      r.cycle_buckets
  end

let parse_probe () =
  {
    Icfg_analysis.Parse.pspan = (fun name f -> span name f);
    pcount = add;
  }
