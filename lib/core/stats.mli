(** Small numeric/formatting helpers shared by the rewriter's statistics
    output and the harness's experiment reports (the harness [Stats] module
    re-exports these, so both layers render percentages identically). *)

val mean : float list -> float
val max_f : float list -> float
val min_f : float list -> float

val pct : float -> string
(** Format as a signed percentage with two decimals ("+1.35%"); non-finite
    values (a ratio over an empty bench) render as ["n/a"]. *)

val ratio_pct : base:int -> value:int -> float
(** [(value - base) / base * 100], or [0.] when [base <= 0] (an empty bench
    has no meaningful growth ratio). *)

val ratio : den:int -> num:int -> float
(** [num / den], or [0.] when [den <= 0]. *)

val share : total:int -> part:int -> float
(** [part] as a percentage of [total], or [0.] when [total <= 0]. *)
