let now_ns () = Monotonic_clock.now ()

(* Histogram buckets: fixed powers of two. [bucket_index v] is the
   position of [v]'s highest set bit, so the boundaries are a property of
   the integers, not of the machine or the data — snapshots taken
   anywhere bucket identically, which is what lets merged fleet
   histograms and committed baselines compare. *)

let n_buckets = 62

let bucket_index v =
  if v <= 1 then 0
  else begin
    let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
    min (n_buckets - 1) (bits v 0)
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl i

let bucket_hi i =
  if i >= n_buckets - 1 then max_int else (1 lsl (i + 1)) - 1

(* Dense per-histogram storage; snapshots sparsify. *)
type hrec = { mutable hr_count : int; mutable hr_sum : int; hr_counts : int array }

type t = {
  m : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  histos : (string, hrec) Hashtbl.t;
}

let create () =
  {
    m = Mutex.create ();
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histos = Hashtbl.create 32;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add tbl name r;
      r

let add t name n = locked t (fun () -> let r = cell t.counters name in r := !r + n)
let incr t name = add t name 1
let set_gauge t name v = locked t (fun () -> cell t.gauges name := v)
let add_gauge t name d = locked t (fun () -> let r = cell t.gauges name in r := !r + d)

let observe t name v =
  let v = max 0 v in
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.histos name with
        | Some h -> h
        | None ->
            let h =
              { hr_count = 0; hr_sum = 0; hr_counts = Array.make n_buckets 0 }
            in
            Hashtbl.add t.histos name h;
            h
      in
      h.hr_count <- h.hr_count + 1;
      h.hr_sum <- h.hr_sum + v;
      let i = bucket_index v in
      h.hr_counts.(i) <- h.hr_counts.(i) + 1)

(* ---------------- snapshots ---------------- *)

type histo = { h_count : int; h_sum : int; h_buckets : (int * int) list }

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_histos : (string * histo) list;
}

let empty = { s_counters = []; s_gauges = []; s_histos = [] }

let sorted_bindings tbl f =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl [])

let snapshot t =
  locked t (fun () ->
      {
        s_counters = sorted_bindings t.counters (fun r -> !r);
        s_gauges = sorted_bindings t.gauges (fun r -> !r);
        s_histos =
          sorted_bindings t.histos (fun h ->
              let buckets = ref [] in
              for i = n_buckets - 1 downto 0 do
                if h.hr_counts.(i) > 0 then
                  buckets := (i, h.hr_counts.(i)) :: !buckets
              done;
              { h_count = h.hr_count; h_sum = h.hr_sum; h_buckets = !buckets });
      })

(* Union-sum of two key-sorted assoc lists — the normal form that makes
   [merge] associative and commutative: addition is, and re-sorting after
   every merge keeps the representation canonical. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, _) :: _ when ka < kb ->
      (ka, va) :: merge_assoc combine ra b
  | (ka, _) :: _, (kb, vb) :: rb when kb < ka ->
      (kb, vb) :: merge_assoc combine a rb
  | (ka, va) :: ra, (_, vb) :: rb -> (ka, combine va vb) :: merge_assoc combine ra rb

let merge_histo a b =
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum + b.h_sum;
    h_buckets = merge_assoc ( + ) a.h_buckets b.h_buckets;
  }

let merge a b =
  {
    s_counters = merge_assoc ( + ) a.s_counters b.s_counters;
    s_gauges = merge_assoc ( + ) a.s_gauges b.s_gauges;
    s_histos = merge_assoc merge_histo a.s_histos b.s_histos;
  }

let histo_mean h =
  if h.h_count = 0 then 0. else float_of_int h.h_sum /. float_of_int h.h_count

let find_counter s name = List.assoc_opt name s.s_counters
let find_gauge s name = List.assoc_opt name s.s_gauges
let find_histo s name = List.assoc_opt name s.s_histos

(* ---------------- expositions ---------------- *)

(* Hand-rolled JSON, same policy as Trace/bench: no JSON dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json s =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"icfg-metrics/1\",\n  \"counters\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    \"%s\": %d" (json_escape k) v)
    s.s_counters;
  Buffer.add_string b "\n  },\n  \"gauges\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    \"%s\": %d" (json_escape k) v)
    s.s_gauges;
  Buffer.add_string b "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i (k, h) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    \"%s\": {\"count\": %d, \"sum\": %d, \"buckets\": {"
        (json_escape k) h.h_count h.h_sum;
      List.iteri
        (fun j (idx, n) ->
          if j > 0 then Buffer.add_string b ", ";
          Printf.bprintf b "\"%d\": %d" idx n)
        h.h_buckets;
      Buffer.add_string b "}}")
    s.s_histos;
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let prom_sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    s

(* name = base[:tag]: the base becomes the prom metric name, the rest
   travels as one opaque label so per-approach/per-outcome series group
   under a single metric family. *)
let prom_name name =
  match String.index_opt name ':' with
  | None -> ("icfg_" ^ prom_sanitize name, "")
  | Some i ->
      let base = String.sub name 0 i in
      let tag = String.sub name (i + 1) (String.length name - i - 1) in
      ("icfg_" ^ prom_sanitize base, tag)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels tag extra =
  let l = (if tag = "" then [] else [ ("tag", tag) ]) @ extra in
  if l = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) l)
    ^ "}"

let to_prom s =
  let b = Buffer.create 4096 in
  let typed = Hashtbl.create 32 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Printf.bprintf b "# TYPE %s %s\n" name kind
    end
  in
  List.iter
    (fun (name, v) ->
      let base, tag = prom_name name in
      type_line base "counter";
      Printf.bprintf b "%s%s %d\n" base (prom_labels tag []) v)
    s.s_counters;
  List.iter
    (fun (name, v) ->
      let base, tag = prom_name name in
      type_line base "gauge";
      Printf.bprintf b "%s%s %d\n" base (prom_labels tag []) v)
    s.s_gauges;
  List.iter
    (fun (name, h) ->
      let base, tag = prom_name name in
      type_line base "histogram";
      let cum = ref 0 in
      List.iter
        (fun (idx, n) ->
          cum := !cum + n;
          Printf.bprintf b "%s_bucket%s %d\n" base
            (prom_labels tag [ ("le", string_of_int (bucket_hi idx)) ])
            !cum)
        h.h_buckets;
      Printf.bprintf b "%s_bucket%s %d\n" base
        (prom_labels tag [ ("le", "+Inf") ])
        h.h_count;
      Printf.bprintf b "%s_sum%s %d\n" base (prom_labels tag []) h.h_sum;
      Printf.bprintf b "%s_count%s %d\n" base (prom_labels tag []) h.h_count)
    s.s_histos;
  Buffer.contents b
