module Parse = Icfg_analysis.Parse
module Jump_table = Icfg_analysis.Jump_table
module Func_ptr = Icfg_analysis.Func_ptr
module Symbol = Icfg_obj.Symbol

type cause =
  | Unresolved_indirect_jump
  | Jt_resolved_exact
  | Jt_bound_over
  | Jt_bound_under
  | Jt_tail_call
  | Jt_unresolved_spill
  | Jt_unresolved_join
  | Jt_unresolved_opaque
  | Jt_unresolved_base
  | Jt_unresolved_bound
  | Jt_unresolved_targets
  | Jt_pointer_load
  | Jt_unresolved_jump
  | Fptr_reloc
  | Fptr_no_reloc
  | Fptr_mater
  | Fptr_adjusted
  | Fptr_uninstrumented_target
  | Mode_excluded
  | Cfl_entry
  | Cfl_landing_pad
  | Cfl_jt_target
  | Cfl_ptr_target
  | Cfl_call_fallthrough
  | Cfl_every_block
  | Tramp_short
  | Tramp_long
  | Tramp_hop
  | Trap_no_reach
  | No_scratch_space
  | No_hop_kind
  | Scratch_pool_disabled

let axis = function
  | Unresolved_indirect_jump -> "func"
  | Jt_resolved_exact | Jt_bound_over | Jt_bound_under | Jt_tail_call
  | Jt_unresolved_spill | Jt_unresolved_join | Jt_unresolved_opaque
  | Jt_unresolved_base | Jt_unresolved_bound | Jt_unresolved_targets
  | Jt_pointer_load | Jt_unresolved_jump ->
      "jt"
  | Fptr_reloc | Fptr_no_reloc | Fptr_mater | Fptr_adjusted
  | Fptr_uninstrumented_target | Mode_excluded ->
      "fptr"
  | Cfl_entry | Cfl_landing_pad | Cfl_jt_target | Cfl_ptr_target
  | Cfl_call_fallthrough | Cfl_every_block ->
      "cfl"
  | Tramp_short | Tramp_long | Tramp_hop | Trap_no_reach | No_scratch_space
  | No_hop_kind | Scratch_pool_disabled ->
      "tramp"

let name = function
  | Unresolved_indirect_jump -> "unresolved-indirect-jump"
  | Jt_resolved_exact -> "resolved-exact"
  | Jt_bound_over -> "bound-over"
  | Jt_bound_under -> "bound-under"
  | Jt_tail_call -> "tail-call"
  | Jt_unresolved_spill -> "unresolved-spill"
  | Jt_unresolved_join -> "unresolved-join"
  | Jt_unresolved_opaque -> "unresolved-opaque"
  | Jt_unresolved_base -> "unresolved-base"
  | Jt_unresolved_bound -> "unresolved-bound"
  | Jt_unresolved_targets -> "unresolved-targets"
  | Jt_pointer_load -> "pointer-load"
  | Jt_unresolved_jump -> "unresolved-jump"
  | Fptr_reloc -> "reloc"
  | Fptr_no_reloc -> "no-reloc"
  | Fptr_mater -> "mater"
  | Fptr_adjusted -> "adjusted"
  | Fptr_uninstrumented_target -> "uninstrumented-target"
  | Mode_excluded -> "mode-excluded"
  | Cfl_entry -> "entry"
  | Cfl_landing_pad -> "landing-pad"
  | Cfl_jt_target -> "jt-target"
  | Cfl_ptr_target -> "ptr-target"
  | Cfl_call_fallthrough -> "call-fallthrough"
  | Cfl_every_block -> "every-block"
  | Tramp_short -> "short"
  | Tramp_long -> "long"
  | Tramp_hop -> "hop"
  | Trap_no_reach -> "trap-no-reach"
  | No_scratch_space -> "trap-no-scratch-space"
  | No_hop_kind -> "trap-no-hop-kind"
  | Scratch_pool_disabled -> "trap-pool-disabled"

let key c = axis c ^ "/" ^ name c

let is_trap = function
  | Trap_no_reach | No_scratch_space | No_hop_kind | Scratch_pool_disabled ->
      true
  | _ -> false

type block_site = { bs_addr : int; bs_cfl : cause; bs_place : cause option }

type func_row = {
  fr_name : string;
  fr_addr : int;
  fr_instrumented : bool;
  fr_fail : cause option;
  fr_blocks : int;
  fr_sites : block_site list;
  fr_jt : (int * cause) list;
}

type t = {
  a_mode : Mode.t;
  a_rows : func_row list;
  a_fptr : (int * cause) list;
}

let jt_cause = function
  | Parse.Js_resolved Jump_table.B_exact -> Jt_resolved_exact
  | Parse.Js_resolved Jump_table.B_over -> Jt_bound_over
  | Parse.Js_resolved Jump_table.B_under -> Jt_bound_under
  | Parse.Js_tail_call -> Jt_tail_call
  | Parse.Js_unresolved (u, _) -> (
      match u with
      | Jump_table.U_spill -> Jt_unresolved_spill
      | Jump_table.U_join -> Jt_unresolved_join
      | Jump_table.U_opaque -> Jt_unresolved_opaque
      | Jump_table.U_base_writable | Jump_table.U_base_unknown ->
          Jt_unresolved_base
      | Jump_table.U_no_bound -> Jt_unresolved_bound
      | Jump_table.U_no_targets -> Jt_unresolved_targets
      | Jump_table.U_pointer_load -> Jt_pointer_load
      | Jump_table.U_bad_jump -> Jt_unresolved_jump)

let fptr_site ~mode ~instrumented site =
  let addr, target =
    match site with
    | Func_ptr.Fp_slot { slot; target; _ } -> (slot, target)
    | Func_ptr.Fp_mater { prov; target } ->
        ((match prov with a :: _ -> a | [] -> target), target)
    | Func_ptr.Fp_adjusted { src_slot; target; _ } -> (src_slot, target)
  in
  let cause =
    if not (Mode.rewrites_func_ptrs mode) then Mode_excluded
    else if not (instrumented target) then Fptr_uninstrumented_target
    else
      match site with
      | Func_ptr.Fp_slot { via_reloc = true; _ } -> Fptr_reloc
      | Func_ptr.Fp_slot _ -> Fptr_no_reloc
      | Func_ptr.Fp_mater _ -> Fptr_mater
      | Func_ptr.Fp_adjusted _ -> Fptr_adjusted
  in
  (addr, cause)

let build ~mode ~instrumented ~block_sites ~blocks_of (p : Parse.t) =
  let rows =
    List.map
      (fun (fa : Parse.func_analysis) ->
        let addr = fa.Parse.fa_sym.Symbol.addr in
        let inst = instrumented addr in
        {
          fr_name = fa.Parse.fa_sym.Symbol.name;
          fr_addr = addr;
          fr_instrumented = inst;
          fr_fail =
            (if fa.Parse.fa_instrumentable then None
             else Some Unresolved_indirect_jump);
          fr_blocks = (if inst then blocks_of addr else 0);
          fr_sites =
            (if inst then
               Option.value ~default:[] (List.assoc_opt addr block_sites)
             else []);
          fr_jt = List.map (fun (j, s) -> (j, jt_cause s)) fa.Parse.fa_jt_sites;
        })
      (List.sort
         (fun (a : Parse.func_analysis) b ->
           compare a.Parse.fa_sym.Symbol.addr b.Parse.fa_sym.Symbol.addr)
         p.Parse.funcs)
  in
  let fptr = List.map (fptr_site ~mode ~instrumented) p.Parse.fptrs in
  { a_mode = mode; a_rows = rows; a_fptr = fptr }

(* -------------------------------------------------------------------- *)
(* Rollups                                                               *)
(* -------------------------------------------------------------------- *)

let fold_causes f acc t =
  let acc =
    List.fold_left
      (fun acc r ->
        let acc =
          match r.fr_fail with Some c -> f acc c | None -> acc
        in
        let acc =
          List.fold_left
            (fun acc s ->
              let acc = f acc s.bs_cfl in
              match s.bs_place with Some c -> f acc c | None -> acc)
            acc r.fr_sites
        in
        List.fold_left (fun acc (_, c) -> f acc c) acc r.fr_jt)
      acc t.a_rows
  in
  List.fold_left (fun acc (_, c) -> f acc c) acc t.a_fptr

let histogram t =
  let tbl = Hashtbl.create 32 in
  fold_causes
    (fun () c ->
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    () t;
  List.sort
    (fun (a, _) (b, _) -> compare (key a) (key b))
    (Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl [])

let count t c =
  Option.value ~default:0 (List.assoc_opt c (histogram t))

let cfl_total t =
  List.fold_left (fun n r -> n + List.length r.fr_sites) 0 t.a_rows

let tramp_total t =
  List.fold_left
    (fun n r ->
      n
      + List.length (List.filter (fun s -> s.bs_place <> None) r.fr_sites))
    0 t.a_rows

let trap_total t =
  List.fold_left
    (fun n r ->
      n
      + List.length
          (List.filter
             (fun s ->
               match s.bs_place with Some c -> is_trap c | None -> false)
             r.fr_sites))
    0 t.a_rows

type delta = { d_cfl : int; d_trampolines : int; d_traps : int }

let delta ~dir t =
  {
    d_cfl = cfl_total t - cfl_total dir;
    d_trampolines = tramp_total t - tramp_total dir;
    d_traps = trap_total t - trap_total dir;
  }

(* -------------------------------------------------------------------- *)
(* Rendering                                                             *)
(* -------------------------------------------------------------------- *)

let pp ppf t =
  let instrumented =
    List.length (List.filter (fun r -> r.fr_instrumented) t.a_rows)
  in
  Format.fprintf ppf "attribution (%s): %d/%d functions, %d cfl blocks, %d \
                      trampolines (%d trap), %d fptr sites@."
    (Mode.name t.a_mode) instrumented (List.length t.a_rows) (cfl_total t)
    (tramp_total t) (trap_total t) (List.length t.a_fptr);
  Format.fprintf ppf "  %-24s %6s %6s %6s %6s  %s@." "function" "blocks" "cfl"
    "tramp" "trap" "fail";
  List.iter
    (fun r ->
      let traps =
        List.length
          (List.filter
             (fun s ->
               match s.bs_place with Some c -> is_trap c | None -> false)
             r.fr_sites)
      in
      Format.fprintf ppf "  %-24s %6d %6d %6d %6d  %s@." r.fr_name r.fr_blocks
        (List.length r.fr_sites)
        (List.length (List.filter (fun s -> s.bs_place <> None) r.fr_sites))
        traps
        (match r.fr_fail with Some c -> key c | None -> "-"))
    t.a_rows;
  Format.fprintf ppf "  causes:@.";
  List.iter
    (fun (c, n) -> Format.fprintf ppf "    %-28s %6d@." (key c) n)
    (histogram t)

(* Hand-rolled JSON, same policy as [Trace.to_json]: no JSON dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cause_hist_json b causes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    causes;
  let sorted =
    List.sort
      (fun (a, _) (b, _) -> compare (key a) (key b))
      (Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl [])
  in
  Buffer.add_char b '{';
  List.iteri
    (fun i (c, n) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "\"%s\": %d" (key c) n)
    sorted;
  Buffer.add_char b '}'

let to_json ?dir t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"icfg-report/1\",\n";
  Printf.bprintf b "  \"mode\": \"%s\",\n" (Mode.name t.a_mode);
  Printf.bprintf b "  \"funcs_total\": %d,\n" (List.length t.a_rows);
  Printf.bprintf b "  \"funcs_instrumented\": %d,\n"
    (List.length (List.filter (fun r -> r.fr_instrumented) t.a_rows));
  Printf.bprintf b "  \"cfl_blocks\": %d,\n" (cfl_total t);
  Printf.bprintf b "  \"trampolines\": %d,\n" (tramp_total t);
  Printf.bprintf b "  \"traps\": %d,\n" (trap_total t);
  Printf.bprintf b "  \"fptr_sites\": %d,\n" (List.length t.a_fptr);
  Buffer.add_string b "  \"histogram\": {";
  List.iteri
    (fun i (c, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    \"%s\": %d" (key c) n)
    (histogram t);
  Buffer.add_string b "\n  },\n  \"functions\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    {\"name\": \"%s\", \"addr\": %d, \
                        \"instrumented\": %b, \"fail\": "
        (json_escape r.fr_name) r.fr_addr r.fr_instrumented;
      (match r.fr_fail with
      | Some c -> Printf.bprintf b "\"%s\"" (key c)
      | None -> Buffer.add_string b "null");
      Printf.bprintf b ", \"blocks\": %d, \"cfl_blocks\": %d, \"causes\": "
        r.fr_blocks
        (List.length r.fr_sites);
      let causes =
        (match r.fr_fail with Some c -> [ c ] | None -> [])
        @ List.concat_map
            (fun s ->
              s.bs_cfl :: (match s.bs_place with Some c -> [ c ] | None -> []))
            r.fr_sites
        @ List.map snd r.fr_jt
      in
      cause_hist_json b causes;
      Buffer.add_char b '}')
    t.a_rows;
  Buffer.add_string b "\n  ]";
  (match dir with
  | Some d when t.a_mode <> Mode.Dir ->
      let dl = delta ~dir:d t in
      Printf.bprintf b
        ",\n  \"delta_vs_dir\": {\"cfl_blocks\": %d, \"trampolines\": %d, \
         \"traps\": %d}"
        dl.d_cfl dl.d_trampolines dl.d_traps
  | _ -> ());
  Buffer.add_string b "\n}\n";
  Buffer.contents b
