(** Incremental CFG patching: the paper's binary rewriter.

    Pipeline (sections 3-7):

    + classify control-flow-landing (CFL) blocks per mode;
    + relocate every instrumentable function into a new [.instr] section,
      retargeting direct control flow, cloning jump tables into [.jtnew]
      (mode [Jt]+), rewriting function-pointer materializations and data
      slots (mode [Func_ptr]), and inserting the instrumentation payload at
      each basic block;
    + build the return-address map ([.ra_map] section) for runtime RA
      translation, or emit call-emulation sequences when configured like the
      SRBI baseline;
    + run trampoline placement: trampoline superblocks over scratch blocks,
      a scratch-space pool (padding bytes, retired dynamic-linking sections,
      unused superblock bytes) for multi-trampoline hops, and trap
      trampolines as the last resort;
    + move [.dynsym]/[.dynstr]/[.rela_dyn], append the runtime-library
      dynamic symbols, and emit the rewritten binary. Original code bytes of
      relocated functions are overwritten with illegal instructions (the
      paper's strong correctness test), so any missed control-flow landing
      crashes loudly. *)

type payload = P_empty | P_count

(** Where the payload is inserted. Function-entry instrumentation keeps the
    paper's high-level semantics: the payload runs once and only once per
    call, even when the entry address sits inside a loop, because the CFG
    (not the instruction stream) decides where the snippet goes. *)
type granularity = G_block | G_func_entry

type options = {
  mode : Mode.t;
  payload : payload;
  granularity : granularity;
  only : string list option;
      (** instrument only these functions (partial instrumentation) *)
  tramp_at_every_block : bool;  (** SRBI placement: every block gets one *)
  call_emulation : bool;
      (** emulate calls with original return addresses (Multiverse/SRBI) *)
  ra_translation : bool;  (** runtime RA translation (sections 3 and 6) *)
  use_superblocks : bool;
  use_scratch_pool : bool;
  instr_gap : int;  (** gap between the original image and [.instr] *)
  overwrite_original : bool;
  order : [ `Original | `Reverse_funcs | `Reverse_blocks ];
      (** emission order of relocated code — the code-reordering experiment
          of section 8.3 (fall-through edges are materialized as explicit
          branches when blocks move) *)
  rewrite_direct : bool;
      (** retarget direct branches/calls to relocated code; [false] models
          pure instruction patching (E9Patch), which leaves every original
          target in place and bounces through trampolines *)
  bounce_back : bool;
      (** jump back to the original code after every relocated block
          (instruction-patching ping-pong) *)
  dyn_translate : bool;
      (** Multiverse-style dynamic translation: indirect transfers call a
          runtime translation routine instead of bouncing *)
  sparse_placement : bool;
      (** the B_inst-aware refinement sketched in section 4.2: with
          function-entry granularity and the original code preserved
          ([overwrite_original = false]), install trampolines only at entry
          blocks — every CFL-to-instrumented path crosses a callee entry
          trampoline. Execution runs hybrid: unrewritten landings continue
          in the original code until the next call *)
  jobs : int;
      (** fan per-function relocation and trampoline planning out across
          this many domains (see {!Pool}). Any value produces output
          bit-identical to [jobs = 1]: functions are merged back in
          emission order, labels are namespaced per function, and the
          scratch-pool/deferred-hop state is replayed serially in sorted
          function order. [jobs <= 1] never touches domain machinery *)
}

val default_options : options
(** [Jt] mode, counting payload off ([P_empty]), full placement machinery. *)

val srbi_like : payload -> options
(** The Dyninst-10.2 / SRBI configuration: every-block trampolines, call
    emulation, no superblocks, no scratch pool. *)

type stats = {
  s_funcs_total : int;
  s_funcs_instrumented : int;
  s_blocks : int;
  s_cfl_blocks : int;
  s_trampolines : int;
  s_short_trampolines : int;
  s_long_trampolines : int;
  s_multi_hop : int;
  s_trap_trampolines : int;
  s_cloned_tables : int;
  s_rewritten_slots : int;
  s_orig_size : int;
  s_new_size : int;
}

val pp_stats : Format.formatter -> stats -> unit
(** Raw counts plus the derived ratios the report JSON carries: trampolines
    per CFL block, trap share, size growth percentage ({!Stats}). *)

type t = {
  rw_binary : Icfg_obj.Binary.t;
  rw_ra_map : Icfg_runtime.Runtime_lib.Ra_map.t;
  rw_trap_map : (int, int) Hashtbl.t;
  rw_counter_of_site : (int, int) Hashtbl.t;
      (** [CallRt] count-site (link address) -> original block address *)
  rw_dt_sites : (int, Icfg_isa.Reg.t) Hashtbl.t;
      (** dynamic-translation call sites -> the register holding the
          indirect target at that site *)
  rw_go_hook : bool;  (** findfunc/pcvalue entry translation installed *)
  rw_translate_hook : bool;  (** libunwind-style step wrapping installed *)
  rw_stats : stats;
  rw_attribution : Attribution.t;
      (** per-block / per-site cause attribution; observation-only — a pure
          function of the rewrite output, identical for any [jobs], and its
          totals exactly tile [rw_stats] (see {!Attribution}) *)
  rw_relocated_entry : int -> int option;
      (** original block/entry address -> relocated address *)
}

val rewrite : ?cache:Cache.t -> ?options:options -> Icfg_analysis.Parse.t -> t
(** Rewrite the parsed binary. The input binary is not mutated.

    [cache] memoizes the pure per-item stages — per-function relocation
    (stage [rewrite/relocate]), trampoline placement plans
    ([rewrite/plan]) and encode chunks ([encode]) — keyed on everything
    each stage reads, so warm identical re-rewrites are dominated by the
    serial layout/replay/emit tail. Output bytes are identical with and
    without a cache for every mode, failure model and jobs count (pinned
    by the determinism battery), and all cache counters are
    jobs-independent: with a cache the encode chunk count is a fixed
    constant, and lookups happen serially in input order. *)

val vm_config_for : t -> Icfg_runtime.Vm.config -> Icfg_runtime.Vm.config
(** Install the trap map and (when enabled) the RA-translation hooks into a
    VM configuration — what the LD_PRELOAD runtime library does when it
    attaches to the rewritten binary. *)

val routines_for :
  t ->
  counters:(int, int) Hashtbl.t ->
  (string * (Icfg_runtime.Vm.t -> unit)) list
(** Runtime-library routines for running the rewritten binary: the standard
    set plus counting and RA translation bound to this rewrite's maps. *)
