(* Content-addressed memoization of per-function pipeline artifacts.

   Store model: one mutex-protected [string -> string] table (final key ->
   marshalled payload), optionally mirrored to [dir]/<key>.entry files.
   Keys digest every input of the cached computation, so invalidation is
   free: changed inputs -> changed key -> miss. The disk format is
   self-validating (magic + key echo + payload length + payload digest);
   anything that fails validation is evicted and recomputed — a corrupt
   store can cost time, never correctness. *)

let schema_version = 1

type stats = {
  c_hits : int;
  c_misses : int;
  c_stores : int;
  c_bytes_reused : int;
  c_evict_corrupt : int;
}

type t = {
  cdir : string option;
  mem : (string, string) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable bytes_reused : int;
  mutable evict_corrupt : int;
}

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let create ?dir () =
  Option.iter mkdir_p dir;
  {
    cdir = dir;
    mem = Hashtbl.create 256;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
    bytes_reused = 0;
    evict_corrupt = 0;
  }

let clone c =
  let mem = Mutex.protect c.lock (fun () -> Hashtbl.copy c.mem) in
  {
    cdir = None;
    mem;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
    bytes_reused = 0;
    evict_corrupt = 0;
  }

let stats c =
  Mutex.protect c.lock (fun () ->
      {
        c_hits = c.hits;
        c_misses = c.misses;
        c_stores = c.stores;
        c_bytes_reused = c.bytes_reused;
        c_evict_corrupt = c.evict_corrupt;
      })

let hit_rate s =
  let total = s.c_hits + s.c_misses in
  if total = 0 then 0. else float_of_int s.c_hits /. float_of_int total

let dir c = c.cdir

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

(* [No_sharing] flattens the value, so two structurally equal values
   marshal identically regardless of how they were built (a cache
   round-trip must not change downstream keys). Cached pipeline values
   are acyclic plain data, so flattening always terminates. *)
let dval v = Marshal.to_string v [ Marshal.No_sharing ]

let kjoin parts =
  let b = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Buffer.contents b

let final_key ~stage raw =
  Digest.to_hex
    (Digest.string
       (kjoin [ "icfg-cache"; string_of_int schema_version; stage; raw ]))

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)
(* ------------------------------------------------------------------ *)

let disk_magic = "icfgcache/1"

let entry_path dir key = Filename.concat dir (key ^ ".entry")

let entry_files c =
  match c.cdir with
  | None -> []
  | Some d ->
      let names =
        try Array.to_list (Sys.readdir d) with Sys_error _ -> []
      in
      List.sort String.compare
        (List.filter_map
           (fun n ->
             if Filename.check_suffix n ".entry" then
               Some (Filename.concat d n)
             else None)
           names)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

(* Entry layout: four '\n'-terminated header lines (magic, key echo,
   payload length, payload MD5 hex) followed by the raw payload. *)
let encode_entry key payload =
  String.concat "\n"
    [
      disk_magic;
      key;
      string_of_int (String.length payload);
      Digest.to_hex (Digest.string payload);
      payload;
    ]

let decode_entry key s =
  let line from =
    match String.index_from_opt s from '\n' with
    | Some i -> Some (String.sub s from (i - from), i + 1)
    | None -> None
  in
  let ( let* ) = Option.bind in
  let* magic, p = line 0 in
  let* k, p = line p in
  let* len_s, p = line p in
  let* dig, p = line p in
  let* len = int_of_string_opt len_s in
  if
    magic = disk_magic && k = key && len >= 0
    && String.length s - p = len
  then
    let payload = String.sub s p len in
    if Digest.to_hex (Digest.string payload) = dig then Some payload
    else None
  else None

(* Best-effort atomic write: a same-directory temp file renamed into
   place, so concurrent readers never observe a torn entry. Failures
   (read-only store, races) silently cost a future recompute. *)
let disk_store c key payload =
  match c.cdir with
  | None -> ()
  | Some d -> (
      let path = entry_path d key in
      let tmp = path ^ ".tmp" in
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (encode_entry key payload));
        Sys.rename tmp path
      with Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ()))

let count_evict c =
  c.evict_corrupt <- c.evict_corrupt + 1;
  if Trace.active () then Trace.incr "cache.evict_corrupt"

(* Look up [key] on disk; corrupt/stale entries are removed and counted.
   Caller holds [c.lock]. *)
let disk_find c key =
  match c.cdir with
  | None -> None
  | Some d -> (
      let path = entry_path d key in
      if not (Sys.file_exists path) then None
      else
        match Option.bind (read_file path) (decode_entry key) with
        | Some payload -> Some payload
        | None ->
            (try Sys.remove path with Sys_error _ -> ());
            count_evict c;
            None)

(* ------------------------------------------------------------------ *)
(* Store operations                                                    *)
(* ------------------------------------------------------------------ *)

(* Raw payload lookup: memory first, then disk (promoting to memory).
   No hit/miss accounting — [memo_map] counts only after the payload
   also unmarshals, so a corrupt payload ends up a miss, not a hit. *)
let find c key =
  Mutex.protect c.lock (fun () ->
      match Hashtbl.find_opt c.mem key with
      | Some _ as r -> r
      | None -> (
          match disk_find c key with
          | Some payload ->
              Hashtbl.replace c.mem key payload;
              Some payload
          | None -> None))

let store c key payload =
  Mutex.protect c.lock (fun () ->
      Hashtbl.replace c.mem key payload;
      disk_store c key payload;
      c.stores <- c.stores + 1)

(* Drop an entry whose payload would not unmarshal (possible only via a
   hand-crafted or cross-version disk store — the digest protects against
   corruption, not against a foreign writer with a matching digest). *)
let evict c key =
  Mutex.protect c.lock (fun () ->
      Hashtbl.remove c.mem key;
      (match c.cdir with
      | Some d -> ( try Sys.remove (entry_path d key) with Sys_error _ -> ())
      | None -> ());
      count_evict c)

let count_hit c ~stage n =
  Mutex.protect c.lock (fun () ->
      c.hits <- c.hits + 1;
      c.bytes_reused <- c.bytes_reused + n);
  if Trace.active () then begin
    Trace.incr "cache.hit";
    Trace.incr ("cache.hit:" ^ stage);
    Trace.add "cache.bytes_reused" n
  end

let count_miss c ~stage =
  Mutex.protect c.lock (fun () -> c.misses <- c.misses + 1);
  if Trace.active () then begin
    Trace.incr "cache.miss";
    Trace.incr ("cache.miss:" ^ stage)
  end

(* ------------------------------------------------------------------ *)
(* memo_map                                                            *)
(* ------------------------------------------------------------------ *)

let memo_map (type a b) ?cache ~jobs ~stage ~(key : a -> string)
    (f : a -> b) (xs : a list) : b list =
  match cache with
  | None -> Pool.map ~jobs f xs
  | Some c ->
      (* Serial probe phase: keys, lookups and hit/miss accounting happen
         in input order on the calling domain, so counters are identical
         for every [jobs] value. Hits unmarshal a private copy here —
         cached values contain mutable tables that must never be shared
         between two results. *)
      let probed =
        List.map
          (fun x ->
            let k = final_key ~stage (key x) in
            let hit =
              match find c k with
              | None -> None
              | Some payload -> (
                  match (Marshal.from_string payload 0 : b) with
                  | v ->
                      count_hit c ~stage (String.length payload);
                      Some v
                  | exception _ ->
                      evict c k;
                      None)
            in
            if Option.is_none hit then count_miss c ~stage;
            (x, k, hit))
          xs
      in
      let misses =
        List.filter_map
          (fun (x, k, hit) ->
            if Option.is_none hit then Some (x, k) else None)
          probed
      in
      let computed = Pool.map ~jobs (fun (x, _) -> f x) misses in
      (* Serial store phase, again in input order. *)
      let fresh = Hashtbl.create (List.length misses * 2) in
      List.iter2
        (fun (_, k) v ->
          store c k (Marshal.to_string v []);
          Hashtbl.replace fresh k v)
        misses computed;
      List.map
        (fun (_, k, hit) ->
          match hit with Some v -> v | None -> Hashtbl.find fresh k)
        probed
