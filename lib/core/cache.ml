(* Content-addressed memoization of per-function pipeline artifacts.

   Store model: one mutex-protected [string -> string] table (final key ->
   marshalled payload), optionally mirrored to [dir]/<key>.entry files.
   Keys digest every input of the cached computation, so invalidation is
   free: changed inputs -> changed key -> miss. The disk format is
   self-validating (magic + key echo + payload length + payload digest);
   anything that fails validation is evicted and recomputed — a corrupt
   store can cost time, never correctness.

   The disk tier is optionally size-bounded: [create ~max_disk_bytes]
   caps the total bytes of .entry files, evicting least-recently-used
   entries (by an in-process access tick; ties broken by key so the
   victim order is deterministic). Evicted entries keep their in-memory
   copy — LRU eviction limits the store's footprint, not this process's
   working set. *)

let schema_version = 2

type stats = {
  c_hits : int;
  c_misses : int;
  c_stores : int;
  c_bytes_reused : int;
  c_evict_corrupt : int;
  c_evict_lru : int;
}

type t = {
  cdir : string option;
  max_disk : int option;
  mem : (string, string) Hashtbl.t;
  (* On-disk .entry accounting for the LRU bound: key -> (encoded file
     size, last-access tick). Slots (.slot files) are deliberately not
     tracked — they are a bounded handful of layout snapshots. *)
  disk_entries : (string, int * int) Hashtbl.t;
  mutable disk_total : int;
  mutable tick : int;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable bytes_reused : int;
  mutable evict_corrupt : int;
  mutable evict_lru : int;
}

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let entry_ext = ".entry"
let slot_ext = ".slot"

let file_path dir key ext = Filename.concat dir (key ^ ext)

let file_size path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> in_channel_length ic)
  with Sys_error _ -> 0

let create ?dir ?max_disk_bytes () =
  Option.iter mkdir_p dir;
  let disk_entries = Hashtbl.create 256 in
  let disk_total = ref 0 in
  (* Seed the LRU table from entries already on disk (tick 0: anything
     present before this process touched it is the coldest). *)
  (match dir with
  | None -> ()
  | Some d ->
      let names = try Array.to_list (Sys.readdir d) with Sys_error _ -> [] in
      List.iter
        (fun n ->
          if Filename.check_suffix n entry_ext then begin
            let key = Filename.chop_suffix n entry_ext in
            let size = file_size (Filename.concat d n) in
            Hashtbl.replace disk_entries key (size, 0);
            disk_total := !disk_total + size
          end)
        (List.sort String.compare names));
  {
    cdir = dir;
    max_disk = max_disk_bytes;
    mem = Hashtbl.create 256;
    disk_entries;
    disk_total = !disk_total;
    tick = 0;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
    bytes_reused = 0;
    evict_corrupt = 0;
    evict_lru = 0;
  }

let clone c =
  let mem = Mutex.protect c.lock (fun () -> Hashtbl.copy c.mem) in
  {
    cdir = None;
    max_disk = None;
    mem;
    disk_entries = Hashtbl.create 16;
    disk_total = 0;
    tick = 0;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
    bytes_reused = 0;
    evict_corrupt = 0;
    evict_lru = 0;
  }

let stats c =
  Mutex.protect c.lock (fun () ->
      {
        c_hits = c.hits;
        c_misses = c.misses;
        c_stores = c.stores;
        c_bytes_reused = c.bytes_reused;
        c_evict_corrupt = c.evict_corrupt;
        c_evict_lru = c.evict_lru;
      })

let hit_rate s =
  let total = s.c_hits + s.c_misses in
  if total = 0 then 0. else float_of_int s.c_hits /. float_of_int total

let dir c = c.cdir

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

(* [No_sharing] flattens the value, so two structurally equal values
   marshal identically regardless of how they were built (a cache
   round-trip must not change downstream keys). Cached pipeline values
   are acyclic plain data, so flattening always terminates. *)
let dval v = Marshal.to_string v [ Marshal.No_sharing ]

let kjoin parts =
  let b = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Buffer.contents b

let final_key ~stage raw =
  Digest.to_hex
    (Digest.string
       (kjoin [ "icfg-cache"; string_of_int schema_version; stage; raw ]))

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)
(* ------------------------------------------------------------------ *)

let disk_magic = "icfgcache/1"

let entry_files c =
  match c.cdir with
  | None -> []
  | Some d ->
      let names =
        try Array.to_list (Sys.readdir d) with Sys_error _ -> []
      in
      List.sort String.compare
        (List.filter_map
           (fun n ->
             if Filename.check_suffix n entry_ext then
               Some (Filename.concat d n)
             else None)
           names)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

(* Entry layout: four '\n'-terminated header lines (magic, key echo,
   payload length, payload MD5 hex) followed by the raw payload. *)
let encode_entry key payload =
  String.concat "\n"
    [
      disk_magic;
      key;
      string_of_int (String.length payload);
      Digest.to_hex (Digest.string payload);
      payload;
    ]

let decode_entry key s =
  let line from =
    match String.index_from_opt s from '\n' with
    | Some i -> Some (String.sub s from (i - from), i + 1)
    | None -> None
  in
  let ( let* ) = Option.bind in
  let* magic, p = line 0 in
  let* k, p = line p in
  let* len_s, p = line p in
  let* dig, p = line p in
  let* len = int_of_string_opt len_s in
  if
    magic = disk_magic && k = key && len >= 0
    && String.length s - p = len
  then
    let payload = String.sub s p len in
    if Digest.to_hex (Digest.string payload) = dig then Some payload
    else None
  else None

(* All disk-accounting helpers below assume [c.lock] is held. *)

let disk_forget c key =
  match Hashtbl.find_opt c.disk_entries key with
  | Some (size, _) ->
      Hashtbl.remove c.disk_entries key;
      c.disk_total <- c.disk_total - size
  | None -> ()

let disk_remove c key ext =
  match c.cdir with
  | None -> ()
  | Some d ->
      (try Sys.remove (file_path d key ext) with Sys_error _ -> ());
      if ext = entry_ext then disk_forget c key

let count_evict c =
  c.evict_corrupt <- c.evict_corrupt + 1;
  if Trace.active () then Trace.incr "cache.evict_corrupt"

(* Look up [key] on disk; corrupt/stale entries are removed and counted.
   A valid .entry hit refreshes its LRU tick. Caller holds [c.lock]. *)
let disk_find c key ext =
  match c.cdir with
  | None -> None
  | Some d -> (
      let path = file_path d key ext in
      if not (Sys.file_exists path) then None
      else
        match read_file path with
        | None -> None
        | Some s -> (
            match decode_entry key s with
            | Some payload ->
                if ext = entry_ext then begin
                  c.tick <- c.tick + 1;
                  Hashtbl.replace c.disk_entries key (String.length s, c.tick)
                end;
                Some payload
            | None ->
                disk_remove c key ext;
                count_evict c;
                None))

(* Pick the least-recently-used on-disk entry other than [keep]: minimal
   (tick, key) — the key tie-break makes the victim order deterministic
   for entries seeded from a pre-existing store (all tick 0). *)
let lru_victim c ~keep =
  Hashtbl.fold
    (fun key (_, tick) best ->
      if key = keep then best
      else
        match best with
        | Some (bt, bk) when (bt, bk) <= (tick, key) -> best
        | _ -> Some (tick, key))
    c.disk_entries None

(* Best-effort atomic write: a same-directory temp file renamed into
   place, so concurrent readers never observe a torn entry. Failures
   (read-only store, races) silently cost a future recompute. After a
   successful .entry write, the LRU bound is enforced: coldest entries
   lose their disk file (the in-memory copy stays) until the store fits.
   Caller holds [c.lock]. *)
let disk_store c key payload ext =
  match c.cdir with
  | None -> ()
  | Some d -> (
      let path = file_path d key ext in
      let tmp = path ^ ".tmp" in
      let encoded = encode_entry key payload in
      let written =
        try
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc encoded);
          Sys.rename tmp path;
          true
        with Sys_error _ ->
          (try Sys.remove tmp with Sys_error _ -> ());
          false
      in
      if written && ext = entry_ext then begin
        disk_forget c key;
        c.tick <- c.tick + 1;
        Hashtbl.replace c.disk_entries key (String.length encoded, c.tick);
        c.disk_total <- c.disk_total + String.length encoded;
        match c.max_disk with
        | None -> ()
        | Some limit ->
            let rec shrink () =
              if c.disk_total > limit then
                match lru_victim c ~keep:key with
                | Some (_, victim) ->
                    disk_remove c victim entry_ext;
                    c.evict_lru <- c.evict_lru + 1;
                    if Trace.active () then Trace.incr "cache.evict_lru";
                    shrink ()
                | None -> ()
            in
            shrink ()
      end)

(* ------------------------------------------------------------------ *)
(* Store operations                                                    *)
(* ------------------------------------------------------------------ *)

(* Raw payload lookup: memory first, then disk (promoting to memory).
   No hit/miss accounting — [memo_map] counts only after the payload
   also unmarshals, so a corrupt payload ends up a miss, not a hit. *)
let find c key =
  Mutex.protect c.lock (fun () ->
      match Hashtbl.find_opt c.mem key with
      | Some _ as r -> r
      | None -> (
          match disk_find c key entry_ext with
          | Some payload ->
              Hashtbl.replace c.mem key payload;
              Some payload
          | None -> None))

let store c key payload =
  Mutex.protect c.lock (fun () ->
      Hashtbl.replace c.mem key payload;
      disk_store c key payload entry_ext;
      c.stores <- c.stores + 1)

(* Drop an entry whose payload would not unmarshal (possible only via a
   hand-crafted or cross-version disk store — the digest protects against
   corruption, not against a foreign writer with a matching digest). *)
let evict c key =
  Mutex.protect c.lock (fun () ->
      Hashtbl.remove c.mem key;
      disk_remove c key entry_ext;
      count_evict c)

let count_hit c ~stage n =
  Mutex.protect c.lock (fun () ->
      c.hits <- c.hits + 1;
      c.bytes_reused <- c.bytes_reused + n);
  if Trace.active () then begin
    Trace.incr "cache.hit";
    Trace.incr ("cache.hit:" ^ stage);
    Trace.add "cache.bytes_reused" n
  end

let count_miss c ~stage =
  Mutex.protect c.lock (fun () -> c.misses <- c.misses + 1);
  if Trace.active () then begin
    Trace.incr "cache.miss";
    Trace.incr ("cache.miss:" ^ stage)
  end

(* ------------------------------------------------------------------ *)
(* Slots                                                               *)
(* ------------------------------------------------------------------ *)

(* A slot is a small mutable-by-overwrite side value (e.g. the previous
   run's layout snapshot) addressed by what it is {e for} rather than by
   its contents — so a warm run can find "the layout of this binary under
   these options" without knowing what it contains. Slots ride in the
   same in-memory table (so [clone] carries them into warm replays) and
   in .slot files next to the .entry tier; they are invisible to hit/miss
   statistics, [entry_files] and the LRU bound. *)

let slot_key raw = final_key ~stage:"slot" raw

let find_slot (type a) c raw : a option =
  let key = slot_key raw in
  let payload =
    Mutex.protect c.lock (fun () ->
        match Hashtbl.find_opt c.mem key with
        | Some _ as r -> r
        | None -> (
            match disk_find c key slot_ext with
            | Some payload ->
                Hashtbl.replace c.mem key payload;
                Some payload
            | None -> None))
  in
  match payload with
  | None -> None
  | Some payload -> (
      match (Marshal.from_string payload 0 : a) with
      | v -> Some v
      | exception _ ->
          Mutex.protect c.lock (fun () ->
              Hashtbl.remove c.mem key;
              disk_remove c key slot_ext;
              count_evict c);
          None)

let store_slot c raw v =
  let key = slot_key raw in
  let payload = Marshal.to_string v [] in
  Mutex.protect c.lock (fun () ->
      Hashtbl.replace c.mem key payload;
      disk_store c key payload slot_ext)

(* ------------------------------------------------------------------ *)
(* memo_map                                                            *)
(* ------------------------------------------------------------------ *)

let memo_map (type a b) ?cache ~jobs ~stage ~(key : a -> string)
    (f : a -> b) (xs : a list) : b list =
  match cache with
  | None -> Pool.map ~jobs f xs
  | Some c ->
      (* Serial probe phase: keys, lookups and hit/miss accounting happen
         in input order on the calling domain, so counters are identical
         for every [jobs] value. Hits unmarshal a private copy here —
         cached values contain mutable tables that must never be shared
         between two results. *)
      let probed =
        List.map
          (fun x ->
            let k = final_key ~stage (key x) in
            let hit =
              match find c k with
              | None -> None
              | Some payload -> (
                  match (Marshal.from_string payload 0 : b) with
                  | v ->
                      count_hit c ~stage (String.length payload);
                      Some v
                  | exception _ ->
                      evict c k;
                      None)
            in
            if Option.is_none hit then count_miss c ~stage;
            (x, k, hit))
          xs
      in
      let misses =
        List.filter_map
          (fun (x, k, hit) ->
            if Option.is_none hit then Some (x, k) else None)
          probed
      in
      let computed = Pool.map ~jobs (fun (x, _) -> f x) misses in
      (* Serial store phase, again in input order. *)
      let fresh = Hashtbl.create (List.length misses * 2) in
      List.iter2
        (fun (_, k) v ->
          store c k (Marshal.to_string v []);
          Hashtbl.replace fresh k v)
        misses computed;
      List.map
        (fun (_, k, hit) ->
          match hit with Some v -> v | None -> Hashtbl.find fresh k)
        probed
