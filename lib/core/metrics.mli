(** Live telemetry registry: named counters, gauges and fixed-bucket
    log₂ latency histograms, with a pure, mergeable {!snapshot}.

    Where {!Trace} answers "what did {e this} request do" (a span tree
    and counter bag that dies with the request), [Metrics] answers "what
    has the {e process} been doing" — monotone totals and latency
    distributions aggregated across every request a daemon ever served,
    without keeping any per-request data alive. The [icfg serve] server
    folds each completed request's trace into one registry; [icfg stats]
    and [icfg top] read it over the wire.

    Determinism: histogram bucket boundaries are {e fixed powers of two}
    (bucket [i] holds values [v] with [2^i <= v < 2^(i+1)]; bucket [0]
    also takes [v <= 1]), not quantiles or machine-tuned ranges — two
    snapshots taken on different machines bucket any given value
    identically, so merged fleet histograms and committed baselines are
    comparable. Observation {e counts} (per histogram, per outcome) are
    deterministic functions of the served request stream; only the ns
    values inside the buckets vary by machine.

    Thread-safety: every recording operation takes the registry's mutex,
    so pool lanes, executor domains and connection threads may record
    concurrently; totals are independent of the interleaving (each
    operation is a commutative [+=]). *)

type t

val create : unit -> t

val now_ns : unit -> int64
(** Monotonic clock (same source as {!Trace}), for callers timing
    request latencies and queue waits. *)

(** {1 Recording} *)

val add : t -> string -> int -> unit
(** Add [n] to the named counter (created at 0). Counters are monotone
    totals — nothing ever subtracts. *)

val incr : t -> string -> unit

val set_gauge : t -> string -> int -> unit
(** Set the named gauge to a point-in-time level (queue depth,
    in-flight requests). *)

val add_gauge : t -> string -> int -> unit
(** Adjust the named gauge by a (possibly negative) delta. *)

val observe : t -> string -> int -> unit
(** Record one observation into the named histogram (negative values
    clamp to 0). The ns suffix convention: histogram names measuring
    wall time end in no unit; JSON/prom expositions label sums as ns. *)

(** {1 Histogram buckets (deterministic, log₂)} *)

val n_buckets : int
(** 62: buckets 0..61 tile the non-negative 63-bit OCaml ints exactly
    (the top bucket holds [2^61 .. max_int]). *)

val bucket_index : int -> int
(** [bucket_index v] = [floor (log2 v)] clamped to
    [\[0, n_buckets - 1\]]; [v <= 1] lands in bucket 0. Pure — the
    machine-independent bucketing contract. *)

val bucket_lo : int -> int
(** Inclusive lower bound of bucket [i]: [0] for bucket 0, else [2^i]. *)

val bucket_hi : int -> int
(** Inclusive upper bound of bucket [i]: [2^(i+1) - 1], or [max_int]
    for the last bucket. *)

(** {1 Snapshots} *)

type histo = {
  h_count : int;  (** observations *)
  h_sum : int;  (** sum of observed values *)
  h_buckets : (int * int) list;
      (** sparse [(bucket index, count)], index-sorted; counts sum to
          [h_count] *)
}

type snapshot = {
  s_counters : (string * int) list;  (** name-sorted *)
  s_gauges : (string * int) list;  (** name-sorted *)
  s_histos : (string * histo) list;  (** name-sorted *)
}
(** A pure copy of the registry at one instant. Safe to ship across the
    wire, diff, or merge. *)

val empty : snapshot

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise union-sum: counters and histogram counts/sums/buckets add;
    gauges {e also add} (merging shard snapshots sums their queue
    depths — a fleet-level gauge is the sum of per-shard levels).
    Associative and commutative with {!empty} as identity (pinned by
    the metrics test battery), so fleet aggregation order is free. *)

val histo_mean : histo -> float
(** [h_sum / h_count]; [0.] on an empty histogram. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_histo : snapshot -> string -> histo option

(** {1 Expositions} *)

val to_json : snapshot -> string
(** Schema [icfg-metrics/1]:
    [{"schema", "counters": {name: total}, "gauges": {name: level},
    "histograms": {name: {"count", "sum", "buckets": {"<i>": n}}}}].
    All maps name-sorted; bucket keys are decimal bucket indices. *)

val to_prom : snapshot -> string
(** Prometheus-style text exposition. A name's prefix up to the first
    [':'] becomes the metric name ([icfg_] + sanitized); any remainder
    rides in a [tag="..."] label. Histograms emit cumulative
    [_bucket{le="..."}] lines (the [le] value is {!bucket_hi}), then
    [_sum] and [_count]. *)
