(** Fixed-size domain work pool with deterministic result ordering.

    The rewriting pipeline is embarrassingly parallel across functions:
    CFG-derived relocation, CFL classification and trampoline planning touch
    only one function's analysis plus read-only whole-binary state. This
    pool fans such per-item work out across OCaml 5 domains and returns the
    results in input order, so a parallel run is observably identical to a
    serial one — the property the [test_parallel] battery enforces
    byte-for-byte on rewritten binaries.

    Worker domains are spawned lazily, once per distinct worker count, and
    cached for the lifetime of the process (domain spawn costs dwarf the
    per-binary work on the synthetic workloads, so a spawn-per-call design
    would never win). Idle workers block on a condition variable and cost
    nothing. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware-sized default for a
    [--jobs] flag. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] computes [List.map f xs] using up to [jobs] domains
    (the caller participates, so at most [jobs - 1] workers are involved).
    Results are returned in input order regardless of how items were
    scheduled. With [jobs <= 1], or a singleton/empty list, the computation
    runs inline and no domain machinery is touched, so the serial path is
    the textbook [List.map].

    Items are distributed dynamically (an atomic index per item), which
    keeps domains busy under skewed per-item costs. If [f] raises, one of
    the raised exceptions is re-raised (with its backtrace) after every
    in-flight item has settled.

    [f] must not itself call {!map} or {!map_array}: the pool is a flat,
    single-level fan-out, and nested calls could deadlock by consuming
    every worker. *)

val map_array : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array flavour of {!map}; same ordering and exception guarantees. *)
