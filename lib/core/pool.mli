(** Fixed-size domain work pool with deterministic result ordering.

    The rewriting pipeline is embarrassingly parallel across functions:
    CFG-derived relocation, CFL classification and trampoline planning touch
    only one function's analysis plus read-only whole-binary state. This
    pool fans such per-item work out across OCaml 5 domains and returns the
    results in input order, so a parallel run is observably identical to a
    serial one — the property the [test_parallel] battery enforces
    byte-for-byte on rewritten binaries.

    One pool is shared by the whole process: worker domains are spawned
    lazily and the pool grows to the largest lane count ever requested
    (never beyond {!recommended_jobs}), so mapping with jobs 2, 4, then 8
    costs 7 worker domains in total, not 1+3+7. Idle workers block on a
    condition variable and cost nothing. *)

exception Incomplete_map of { lane : int; index : int; total : int }
(** Raised (instead of a bare assertion) if a result slot is still empty
    after the completion barrier with no recorded failure — an internal
    scheduling invariant violation. [lane] is the lane that claimed the
    index ([-1] if none ever did), [index]/[total] locate the missing
    item. A printer is registered, so an escaped exception reads
    ["Pool.map: result slot i/n left unfilled (claimed by lane k)"]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware-sized default for a
    [--jobs] flag, and the hard ceiling on concurrent lanes. *)

val live_workers : unit -> int
(** Worker domains spawned so far, process-wide. Monotone; at most
    [recommended_jobs () - 1] (the caller is always the remaining lane).
    Exposed so tests can pin the shared-pool growth policy. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] computes [List.map f xs] using up to [jobs] domains
    (the caller participates, so at most [jobs - 1] workers are involved;
    lanes are additionally clamped to {!recommended_jobs}, so asking for
    more parallelism than the hardware has never oversubscribes the
    runtime). Results are returned in input order regardless of how items
    were scheduled. With [jobs <= 1], or a singleton/empty list, the
    computation runs inline and no domain machinery is touched, so the
    serial path is the textbook [List.map].

    Items are distributed dynamically (an atomic index per item), which
    keeps domains busy under skewed per-item costs. If [f] raises, the
    remaining items are abandoned — no lane starts another [f] call once a
    failure is recorded — and one of the raised exceptions is re-raised
    (with its backtrace) after the in-flight calls have settled.

    [f] must not itself call {!map} or {!map_array}: the pool is a flat,
    single-level fan-out, and nested calls could deadlock by consuming
    every worker. *)

val map_array : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array flavour of {!map}; same ordering and exception guarantees. *)
