open Icfg_isa
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Symbol = Icfg_obj.Symbol
module Reloc = Icfg_obj.Reloc
module Abi = Icfg_obj.Abi
module Asm = Icfg_codegen.Asm
module Parse = Icfg_analysis.Parse
module Cfg = Icfg_analysis.Cfg
module Jump_table = Icfg_analysis.Jump_table
module Func_ptr = Icfg_analysis.Func_ptr
module Liveness = Icfg_analysis.Liveness
module Trampoline = Icfg_isa.Trampoline
module Ra_map = Icfg_runtime.Runtime_lib.Ra_map

type payload = P_empty | P_count

type granularity = G_block | G_func_entry

type options = {
  mode : Mode.t;
  payload : payload;
  granularity : granularity;
  only : string list option;
  tramp_at_every_block : bool;
  call_emulation : bool;
  ra_translation : bool;
  use_superblocks : bool;
  use_scratch_pool : bool;
  instr_gap : int;
  overwrite_original : bool;
  order : [ `Original | `Reverse_funcs | `Reverse_blocks ];
  rewrite_direct : bool;
  bounce_back : bool;
  dyn_translate : bool;
  sparse_placement : bool;
  jobs : int;
}

let default_options =
  {
    mode = Mode.Jt;
    payload = P_empty;
    granularity = G_block;
    only = None;
    tramp_at_every_block = false;
    call_emulation = false;
    ra_translation = true;
    use_superblocks = true;
    use_scratch_pool = true;
    instr_gap = 0x1000;
    overwrite_original = true;
    order = `Original;
    rewrite_direct = true;
    bounce_back = false;
    dyn_translate = false;
    sparse_placement = false;
    jobs = 1;
  }

let srbi_like payload =
  {
    mode = Mode.Dir;
    payload;
    granularity = G_block;
    only = None;
    tramp_at_every_block = true;
    call_emulation = true;
    ra_translation = false;
    use_superblocks = false;
    use_scratch_pool = false;
    (* Legacy placement: the relocated area sits far from the original
       image, which exhausts the ppc64le branch range. *)
    instr_gap = 0x1000;
    overwrite_original = true;
    order = `Original;
    rewrite_direct = true;
    bounce_back = false;
    dyn_translate = false;
    sparse_placement = false;
    jobs = 1;
  }

type stats = {
  s_funcs_total : int;
  s_funcs_instrumented : int;
  s_blocks : int;
  s_cfl_blocks : int;
  s_trampolines : int;
  s_short_trampolines : int;
  s_long_trampolines : int;
  s_multi_hop : int;
  s_trap_trampolines : int;
  s_cloned_tables : int;
  s_rewritten_slots : int;
  s_orig_size : int;
  s_new_size : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "funcs %d/%d, blocks %d (cfl %d), trampolines %d (short %d, long %d, \
     hop %d, trap %d; %.2f/cfl, trap share %.1f%%), %d cloned tables, %d \
     slots, size %d -> %d (%s)"
    s.s_funcs_instrumented s.s_funcs_total s.s_blocks s.s_cfl_blocks
    s.s_trampolines s.s_short_trampolines s.s_long_trampolines s.s_multi_hop
    s.s_trap_trampolines
    (Stats.ratio ~den:s.s_cfl_blocks ~num:s.s_trampolines)
    (Stats.share ~total:s.s_trampolines ~part:s.s_trap_trampolines)
    s.s_cloned_tables s.s_rewritten_slots s.s_orig_size s.s_new_size
    (Stats.pct (Stats.ratio_pct ~base:s.s_orig_size ~value:s.s_new_size))

type t = {
  rw_binary : Binary.t;
  rw_ra_map : Ra_map.t;
  rw_trap_map : (int, int) Hashtbl.t;
  rw_counter_of_site : (int, int) Hashtbl.t;
  rw_dt_sites : (int, Reg.t) Hashtbl.t;
  rw_go_hook : bool;
  rw_translate_hook : bool;
  rw_stats : stats;
  rw_attribution : Attribution.t;
  rw_relocated_entry : int -> int option;
}

let block_label a = Printf.sprintf "R$%x" a
let table_label a = Printf.sprintf "JT$%x" a
let align_up n a = (n + a - 1) / a * a

module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* CFL classification (section 4)                                      *)
(* ------------------------------------------------------------------ *)

(* Returns the function's CFL blocks as a sorted [(block_start, cause)]
   list — the key set feeds region classification, the causes feed
   attribution. A block can be a candidate for several reasons (an entry
   that is also a pointer target); the recorded cause is the
   highest-priority one: entry > landing pad > pointer target > jump-table
   target > call fall-through. *)
let cfl_causes opts (p : Parse.t) (fa : Parse.func_analysis) =
  let cfg = fa.Parse.fa_cfg in
  let entry = fa.Parse.fa_sym.Symbol.addr in
  if
    (* B_inst-aware refinement (the paper's section 4.2 note): when only
       function entries are instrumented and the original code is left
       intact, every intra-procedural path from a non-entry CFL block to an
       instrumented block crosses a call — and the callee's entry trampoline
       covers it. Only entry blocks need trampolines. *)
    opts.sparse_placement
    && opts.granularity = G_func_entry
    && not opts.overwrite_original
  then [ (entry, Attribution.Cfl_entry) ]
  else if opts.tramp_at_every_block then
    List.sort_uniq
      (fun (a, _) (b, _) -> compare a b)
      (List.map
         (fun b ->
           ( b.Cfg.b_start,
             if b.Cfg.b_start = entry then Attribution.Cfl_entry
             else Attribution.Cfl_every_block ))
         cfg.Cfg.blocks)
  else
    let fend = entry + fa.Parse.fa_sym.Symbol.size in
    let in_func a = a >= entry && a < fend in
    let pads =
      match Icfg_obj.Ehframe.find p.Parse.bin.Binary.eh_frame entry with
      | Some fde ->
          List.filter_map
            (fun (_, _, h) -> if in_func h then Some h else None)
            fde.Icfg_obj.Ehframe.landing_pads
      | None -> []
    in
    let ptr_targets = List.filter in_func p.Parse.pointer_targets in
    (* Jump-table target blocks stay CFL until the tables are cloned. *)
    let jt_targets =
      if Mode.rewrites_jump_tables opts.mode then []
      else List.concat_map (fun t -> t.Jump_table.t_targets) fa.Parse.fa_tables
    in
    (* Call emulation returns to the original fall-through. *)
    let call_falls =
      if not opts.call_emulation then []
      else
        List.concat_map
          (fun b ->
            match Cfg.terminator b with
            | Some (a, i, len) when Insn.is_call i -> [ a + len ]
            | _ -> [])
          cfg.Cfg.blocks
    in
    let tbl = Hashtbl.create 16 in
    let add cause a =
      match Cfg.block_at cfg a with
      | Some b -> if not (Hashtbl.mem tbl b.Cfg.b_start) then
          Hashtbl.add tbl b.Cfg.b_start cause
      | None -> ()
    in
    add Attribution.Cfl_entry entry;
    List.iter (add Attribution.Cfl_landing_pad) pads;
    List.iter (add Attribution.Cfl_ptr_target) ptr_targets;
    List.iter (add Attribution.Cfl_jt_target) jt_targets;
    List.iter (add Attribution.Cfl_call_fallthrough) call_falls;
    List.sort compare (Hashtbl.fold (fun a c acc -> (a, c) :: acc) tbl [])

(* ------------------------------------------------------------------ *)
(* Relocation context                                                  *)
(* ------------------------------------------------------------------ *)

(* One rctx per relocated function. The shared configuration fields are
   read-only; the mutable accumulators are private to the function being
   relocated, so functions can be processed on separate domains and their
   results merged in emission order. [ns] (the function's entry address)
   namespaces fresh labels: label generation is then independent of the
   order in which functions are relocated. *)
type rctx = {
  p : Parse.t;
  opts : options;
  arch : Arch.t;
  count_idx : int;
  translate_idx : int;
  dt_idx : int;
  far : bool;  (** direct branches cannot span .text -> .instr *)
  is_instrumented : int -> bool;  (** by function entry address *)
  ns : string;  (** per-function fresh-label namespace *)
  mutable items : Asm.item list;  (** .instr, reversed *)
  mutable jt_items : Asm.item list;  (** .jtnew, reversed *)
  mutable ra_pairs : (string * int) list;  (** label, original RA *)
  mutable throw_pairs : (string * int) list;  (** label, original throw site *)
  mutable block_pairs : (string * int) list;  (** label, original block *)
  mutable counter_sites : (string * int) list;  (** label, original block *)
  mutable pending_traps : (string * int) list;  (** label, target address *)
  mutable dt_sites : (string * Reg.t) list;  (** dyn-translation call sites *)
  mutable fresh : int;
  (* per-function stats *)
  mutable n_cloned : int;
}

(* The marshal-safe residue of a finished relocation context: exactly the
   accumulator fields the pipeline reads back out of [relocate_function],
   so a cached relocation is indistinguishable from a fresh one. Lists are
   kept in the context's (reversed) accumulation order; [merge] below
   re-reverses them either way. *)
type reloc_image = {
  ri_items : Asm.item list;
  ri_jt_items : Asm.item list;
  ri_ra_pairs : (string * int) list;
  ri_throw_pairs : (string * int) list;
  ri_block_pairs : (string * int) list;
  ri_counter_sites : (string * int) list;
  ri_pending_traps : (string * int) list;
  ri_dt_sites : (string * Reg.t) list;
  ri_n_cloned : int;
}

let image_of_ctx ctx =
  {
    ri_items = ctx.items;
    ri_jt_items = ctx.jt_items;
    ri_ra_pairs = ctx.ra_pairs;
    ri_throw_pairs = ctx.throw_pairs;
    ri_block_pairs = ctx.block_pairs;
    ri_counter_sites = ctx.counter_sites;
    ri_pending_traps = ctx.pending_traps;
    ri_dt_sites = ctx.dt_sites;
    ri_n_cloned = ctx.n_cloned;
  }

let fresh_label ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%s$%d" prefix ctx.ns ctx.fresh

let emit ctx its = ctx.items <- List.rev_append its ctx.items
let emit_jt ctx its = ctx.jt_items <- List.rev_append its ctx.jt_items

(* A far unconditional jump to a fixed original address, usable at any
   point in the relocated stream without a known-dead register. *)
let far_jump_items ctx target =
  match ctx.arch with
  | Arch.X86_64 -> [ Asm.Jmp_abs target ]
  | Arch.Ppc64le ->
      [
        Asm.Insn (Insn.Store (W64, BSp, -8, Reg.r15));
        Asm.Mater_const (Reg.r15, target);
        Asm.Insn (Insn.Mttar Reg.r15);
        Asm.Insn (Insn.Load (W64, Reg.r15, BSp, -8));
        Asm.Insn Insn.Btar;
      ]
  | Arch.Aarch64 ->
      (* No branch-target register: fall back to a trap resolved by the
         runtime library. *)
      let l = fresh_label ctx "TRAP" in
      ctx.pending_traps <- (l, target) :: ctx.pending_traps;
      [ Asm.Label l; Asm.Insn Insn.Trap ]

(* A far call: spill the target through the stack so no dead register is
   required (the VM reads the memory-indirect target before pushing the
   return address). *)
let far_call_items _ctx target =
  [
    Asm.Insn (Insn.Store (W64, BSp, -16, Reg.r15));
    Asm.Mater_const (Reg.r15, target);
    Asm.Insn (Insn.Store (W64, BSp, -8, Reg.r15));
    Asm.Insn (Insn.Load (W64, Reg.r15, BSp, -16));
    Asm.Insn (Insn.IndCallMem (BSp, -8));
  ]

(* ------------------------------------------------------------------ *)
(* Per-function relocation                                             *)
(* ------------------------------------------------------------------ *)

type fctx = {
  fstart : int;
  fend : int;
  jt_mater : (int, string) Hashtbl.t;
  jt_load : (int, unit) Hashtbl.t;
  fp_mater : (int, string) Hashtbl.t;
}

let record_ra ctx orig_ra =
  let l = fresh_label ctx "RA" in
  ctx.ra_pairs <- (l, orig_ra) :: ctx.ra_pairs;
  [ Asm.Label l ]

let record_throw ctx orig =
  let l = fresh_label ctx "THR" in
  ctx.throw_pairs <- (l, orig) :: ctx.throw_pairs;
  [ Asm.Label l ]

let translate_call ctx fc addr len target =
  ignore fc;
  let next = addr + len in
  let call_items =
    if ctx.is_instrumented target then [ Asm.Call_to (block_label target) ]
    else if not ctx.far then [ Asm.Call_abs target ]
    else far_call_items ctx target
  in
  if not ctx.opts.call_emulation then call_items @ record_ra ctx next
  else
    (* Call emulation (SRBI/Multiverse): the callee sees the ORIGINAL
       return address; the return lands in original code. *)
    let jump_items =
      if ctx.is_instrumented target then [ Asm.Jmp_to (block_label target) ]
      else if not ctx.far then [ Asm.Jmp_abs target ]
      else far_jump_items ctx target
    in
    if Arch.has_link_register ctx.arch then
      [
        Asm.Insn (Insn.Store (W64, BSp, -8, Reg.r15));
        Asm.Mater_const (Reg.r15, next);
        Asm.Insn (Insn.Mtlr Reg.r15);
        Asm.Insn (Insn.Load (W64, Reg.r15, BSp, -8));
      ]
      @ jump_items
    else
      [
        Asm.Insn (Insn.Store (W64, BSp, -16, Reg.r15));
        Asm.Mater_const (Reg.r15, next);
        Asm.Insn (Insn.Store (W64, BSp, -8, Reg.r15));
        Asm.Insn (Insn.Load (W64, Reg.r15, BSp, -16));
        Asm.Insn (Insn.AddSp (-8));
      ]
      @ jump_items

(* Register a Multiverse-style dynamic-translation call before an indirect
   transfer: at run time the routine rewrites the target register through
   the original->relocated map. *)
let dt_call ctx reg =
  let l = fresh_label ctx "DT" in
  ctx.dt_sites <- (l, reg) :: ctx.dt_sites;
  [ Asm.Label l; Asm.Insn (Insn.CallRt ctx.dt_idx) ]

let translate_insn ctx fc (addr, (insn : Insn.t), len) : Asm.item list =
  let in_func a = a >= fc.fstart && a < fc.fend in
  let jt_at a = Hashtbl.find_opt fc.jt_mater a in
  let fp_at a = Hashtbl.find_opt fc.fp_mater a in
  match insn with
  | Jmp d ->
      let tgt = addr + d in
      if not ctx.opts.rewrite_direct then
        if not ctx.far then [ Asm.Jmp_abs tgt ] else far_jump_items ctx tgt
      else if in_func tgt || ctx.is_instrumented tgt then
        [ Asm.Jmp_to (block_label tgt) ]
      else if not ctx.far then [ Asm.Jmp_abs tgt ]
      else far_jump_items ctx tgt
  | Jcc (c, d) ->
      let tgt = addr + d in
      if not ctx.opts.rewrite_direct then [ Asm.Jcc_abs (c, tgt) ]
      else if in_func tgt || ctx.is_instrumented tgt then
        [ Asm.Jcc_to (c, block_label tgt) ]
      else [ Asm.Jcc_abs (c, tgt) ]
  | Call d when not ctx.opts.rewrite_direct ->
      (if not ctx.far then [ Asm.Call_abs (addr + d) ]
       else far_call_items ctx (addr + d))
      @ record_ra ctx (addr + len)
  | Call d -> translate_call ctx fc addr len (addr + d)
  | IndJmp r when ctx.opts.dyn_translate ->
      dt_call ctx r @ [ Asm.Insn insn ]
  | IndCall r when ctx.opts.dyn_translate ->
      dt_call ctx r @ [ Asm.Insn insn ] @ record_ra ctx (addr + len)
  | IndCallMem (b, d) when ctx.opts.dyn_translate ->
      [
        Asm.Insn (Insn.Store (W64, BSp, -16, Reg.r15));
        Asm.Insn (Insn.Load (W64, Reg.r15, b, d));
      ]
      @ dt_call ctx Reg.r15
      @ [
          Asm.Insn (Insn.Store (W64, BSp, -8, Reg.r15));
          Asm.Insn (Insn.Load (W64, Reg.r15, BSp, -16));
          Asm.Insn (Insn.IndCallMem (BSp, -8));
        ]
      @ record_ra ctx (addr + len)
  | IndCall _ | IndCallMem _ ->
      if ctx.opts.call_emulation then
        (* Indirect calls are not emulated (the Dyninst-10.2 limitation the
           paper reports); keep the plain call, which pushes a relocated
           return address. *)
        [ Asm.Insn insn ]
      else [ Asm.Insn insn ] @ record_ra ctx (addr + len)
  | Movabs (r, _) -> (
      match (jt_at addr, fp_at addr) with
      | Some lbl, _ | None, Some lbl -> [ Asm.Movabs_of (r, lbl) ]
      | None, None -> [ Asm.Insn insn ])
  | Mov (r, Imm _) -> (
      match fp_at addr with
      | Some lbl when ctx.arch = Arch.X86_64 -> [ Asm.Movabs_of (r, lbl) ]
      | _ -> [ Asm.Insn insn ])
  | Lea (r, d) -> (
      match (jt_at addr, fp_at addr) with
      | Some lbl, _ -> [ Asm.Lea_of (r, lbl) ]
      | None, Some lbl -> [ Asm.Lea_of (r, lbl) ]
      | None, None -> [ Asm.Mater_const (r, addr + d) ])
  | Adrp (r, d) -> (
      match (jt_at addr, fp_at addr) with
      | Some lbl, _ -> [ Asm.Adrp_of (r, lbl) ]
      | None, Some lbl -> [ Asm.Adrp_of (r, lbl) ]
      | None, None -> [ Asm.Mater_const (r, (addr land lnot 4095) + d) ])
  | Addis (rd, rs, _) when Reg.equal rs Reg.toc -> (
      match (jt_at addr, fp_at addr) with
      | Some lbl, _ -> [ Asm.Addis_toc (rd, lbl) ]
      | None, Some lbl -> [ Asm.Addis_toc (rd, lbl) ]
      | None, None -> [ Asm.Insn insn ])
  | Add (r, Imm _) -> (
      match (jt_at addr, fp_at addr) with
      | Some lbl, _ | None, Some lbl -> (
          match ctx.arch with
          | Arch.Ppc64le -> [ Asm.Addlo_toc (r, lbl) ]
          | Arch.Aarch64 -> [ Asm.Addlo_page (r, lbl) ]
          | Arch.X86_64 -> [ Asm.Insn insn ])
      | None, None -> [ Asm.Insn insn ])
  | LoadIdx (_, rd, rb, ri, _) when Hashtbl.mem fc.jt_load addr ->
      (* Cloned narrow table: widen the read to 4 bytes, stride 4. *)
      [ Asm.Insn (Insn.LoadIdx (W32, rd, rb, ri, 4)) ]
  | Throw ->
      (* The unwinder sees the throw site itself as the innermost PC; give
         it an exact translation so same-frame landing-pad ranges match. *)
      record_throw ctx addr @ [ Asm.Insn Insn.Throw ]
  | _ -> [ Asm.Insn insn ]

(* Emit the clone of a resolved jump table into .jtnew (section 5.1's
   jump-table cloning: solve tar(x') = y' for each relocated target). *)
let clone_table ctx (t : Jump_table.table) =
  let lbl = table_label t.Jump_table.t_table in
  let entry_items =
    List.map
      (fun slot ->
        match slot with
        | None ->
            (* Infeasible over-approximated entry: never dereferenced. *)
            let w =
              if t.Jump_table.t_base = None then Insn.W64 else Insn.W32
            in
            Asm.Data (w, Asm.Const 0, `No_reloc)
        | Some y -> (
            match (t.Jump_table.t_base, t.Jump_table.t_base_tied) with
            | None, _ ->
                (* absolute entries *)
                Asm.Data (Insn.W64, Asm.Addr (block_label y), `Reloc)
            | Some _, true ->
                (* x86 idiom: entries relative to the (cloned) table *)
                Asm.Data (Insn.W32, Asm.Diff (block_label y, lbl, 1), `No_reloc)
            | Some b, false ->
                (* aarch64 idiom: entries relative to the original code
                   base, scaled by 4, widened to 4 bytes *)
                Asm.Data (Insn.W32, Asm.Diff_const (block_label y, b, 4), `No_reloc)))
      t.Jump_table.t_slots
  in
  emit_jt ctx (Asm.Align (8, `Zero) :: Asm.Label lbl :: entry_items);
  ctx.n_cloned <- ctx.n_cloned + 1

let relocate_function ctx (fa : Parse.func_analysis) go_hook_funcs =
  let sym = fa.Parse.fa_sym in
  let fstart = sym.Symbol.addr and fend = sym.Symbol.addr + sym.Symbol.size in
  let cloned_tables =
    if Mode.rewrites_jump_tables ctx.opts.mode then fa.Parse.fa_tables else []
  in
  let fc =
    {
      fstart;
      fend;
      jt_mater = Hashtbl.create 4;
      jt_load = Hashtbl.create 4;
      fp_mater = Hashtbl.create 4;
    }
  in
  List.iter
    (fun (t : Jump_table.table) ->
      let lbl = table_label t.Jump_table.t_table in
      List.iter (fun a -> Hashtbl.replace fc.jt_mater a lbl) t.Jump_table.t_mater;
      if Insn.width_bytes t.Jump_table.t_width < 4 then
        Hashtbl.replace fc.jt_load t.Jump_table.t_load ();
      clone_table ctx t)
    cloned_tables;
  (* Function-pointer materialization sites in this function. *)
  if Mode.rewrites_func_ptrs ctx.opts.mode then
    List.iter
      (function
        | Func_ptr.Fp_mater { prov; target } when ctx.is_instrumented target ->
            List.iter
              (fun a ->
                if a >= fstart && a < fend then
                  Hashtbl.replace fc.fp_mater a (block_label target))
              prov
        | _ -> ())
      ctx.p.Parse.fptrs;
  let is_go_hook = List.mem sym.Symbol.name go_hook_funcs in
  let blocks =
    match ctx.opts.order with
    | `Original | `Reverse_funcs -> fa.Parse.fa_cfg.Cfg.blocks
    | `Reverse_blocks -> (
        (* Keep the entry block first so the relocated entry is the
           function's first relocated instruction. *)
        match fa.Parse.fa_cfg.Cfg.blocks with
        | entry :: rest -> entry :: List.rev rest
        | [] -> [])
  in
  (* Does a block continue into its fall-through successor? *)
  let falls_through (b : Cfg.block) =
    match Cfg.terminator b with
    | None -> true
    | Some (_, i, _) -> Insn.has_fallthrough i
  in
  let rec emit_blocks = function
    | [] -> ()
    | (b : Cfg.block) :: rest ->
        let lbl = block_label b.Cfg.b_start in
        ctx.block_pairs <- (lbl, b.Cfg.b_start) :: ctx.block_pairs;
        emit ctx [ Asm.Label lbl ];
        if is_go_hook && b.Cfg.b_start = fstart then
          emit ctx [ Asm.Insn (Insn.CallRt ctx.translate_idx) ];
        let wants_payload =
          match ctx.opts.granularity with
          | G_block -> true
          | G_func_entry -> b.Cfg.b_start = fstart
        in
        (match ctx.opts.payload with
        | P_empty -> ()
        | P_count when not wants_payload -> ()
        | P_count ->
            let cl = fresh_label ctx "CNT" in
            ctx.counter_sites <- (cl, b.Cfg.b_start) :: ctx.counter_sites;
            emit ctx [ Asm.Label cl; Asm.Insn (Insn.CallRt ctx.count_idx) ]);
        List.iter (fun i -> emit ctx (translate_insn ctx fc i)) b.Cfg.b_insns;
        (* Materialize the fall-through edge when the next emitted block is
           not the textual successor (block reordering), or bounce back to
           the original code after every block (instruction patching). *)
        (if falls_through b then
           if ctx.opts.bounce_back then
             emit ctx
               (if not ctx.far then [ Asm.Jmp_abs b.Cfg.b_end ]
                else far_jump_items ctx b.Cfg.b_end)
           else
             let next_emitted =
               match rest with b' :: _ -> Some b'.Cfg.b_start | [] -> None
             in
             if next_emitted <> Some b.Cfg.b_end then
               emit ctx [ Asm.Jmp_to (block_label b.Cfg.b_end) ]);
        emit_blocks rest
  in
  emit_blocks blocks

(* ------------------------------------------------------------------ *)
(* Trampoline placement (sections 4 and 7)                             *)
(* ------------------------------------------------------------------ *)

type region_kind = R_cfl | R_scratch | R_preserved

(* The function's address space as sorted regions: blocks (CFL or scratch),
   in-code jump tables (scratch once cloned, preserved otherwise), nop gaps,
   and the trailing alignment padding. *)
let function_regions opts (p : Parse.t) (fa : Parse.func_analysis) cfl
    next_func_start =
  let bin = p.Parse.bin in
  let sym = fa.Parse.fa_sym in
  let fstart = sym.Symbol.addr and fend = sym.Symbol.addr + sym.Symbol.size in
  let cloned = Mode.rewrites_jump_tables opts.mode in
  let table_regions =
    List.filter_map
      (fun (t : Jump_table.table) ->
        if not t.Jump_table.t_in_code then None
        else
          let lo = t.Jump_table.t_table in
          let hi = lo + (t.Jump_table.t_count * Insn.width_bytes t.Jump_table.t_width) in
          Some (lo, hi, if cloned then R_scratch else R_preserved))
      fa.Parse.fa_tables
  in
  let block_regions =
    List.map
      (fun (b : Cfg.block) ->
        ( b.Cfg.b_start,
          b.Cfg.b_end,
          if IntSet.mem b.Cfg.b_start cfl then R_cfl else R_scratch ))
      fa.Parse.fa_cfg.Cfg.blocks
  in
  (* Nop gaps inside the function are scratch. *)
  let covered =
    List.sort compare
      (List.map (fun (a, b, _) -> (a, b)) (block_regions @ table_regions))
  in
  let rec gaps pos = function
    | [] -> if pos < fend then [ (pos, fend, R_scratch) ] else []
    | (a, b) :: rest ->
        let g = if pos < a then [ (pos, a, R_scratch) ] else [] in
        g @ gaps (max pos b) rest
  in
  let gap_regions = gaps fstart covered in
  (* Trailing inter-function padding: usable scratch. *)
  let pad_end =
    let lim = min next_func_start (Section.end_vaddr (Binary.text bin)) in
    let rec go a =
      if a >= lim then a
      else
        match Binary.decode_at bin a with
        | Insn.Nop, l -> go (a + l)
        | _ -> a
        | exception Invalid_argument _ -> a
    in
    go fend
  in
  let pad_regions = if pad_end > fend then [ (fend, pad_end, R_scratch) ] else [] in
  List.sort
    (fun (a, _, _) (b, _, _) -> compare a b)
    (block_regions @ table_regions @ gap_regions @ pad_regions)

(* Scratch pool: free ranges usable for multi-trampoline hops. *)
type pool = { mutable chunks : (int * int) list (* (start, end) *) }

let pool_add pool lo hi = if hi - lo >= 4 then pool.chunks <- (lo, hi) :: pool.chunks

let pool_alloc pool ~near ~size ~reach =
  let rec pick acc = function
    | [] -> None
    | (lo, hi) :: rest ->
        if hi - lo >= size && abs (lo - near) <= reach - size then
          Some (lo, List.rev_append acc ((lo + size, hi) :: rest))
        else pick ((lo, hi) :: acc) rest
  in
  match pick [] pool.chunks with
  | Some (lo, rest) ->
      pool.chunks <- rest;
      Some lo
  | None -> None

(* ------------------------------------------------------------------ *)
(* Per-function placement plans                                        *)
(* ------------------------------------------------------------------ *)

(* Pass 1 of trampoline placement decomposes into a pure per-function
   planning step (CFL classification, region computation, superblock
   extension, trampoline selection — everything that reads only this
   function's analysis and the finished label table) and a serial replay
   that threads the cross-function state: the scratch pool, the write list
   and the deferred-hop list. Planning fans out across domains; the replay
   applies plans in sorted function order, so the pool/deferred sequences
   are identical to a fully serial run. *)

type tramp_class = T_short | T_long | T_trap

type place_event =
  | Pe_write of int * string * tramp_class  (** trampoline bytes at address *)
  | Pe_defer of int * int * int * Reg.Set.t
      (** no local fit: [lo, superblock_end, target, dead] for the hop pass *)
  | Pe_free of int * int  (** scratch range donated to the pool *)

type place_plan = {
  pl_entry : int;  (** function entry address *)
  pl_blocks : int;
  pl_cfl_causes : (int * Attribution.cause) list;
      (** CFL blocks with why each is one, sorted by address *)
  pl_preserved : (int * int) list;  (** in-code tables kept in place *)
  pl_events : place_event list;  (** in serial placement order *)
}

(* The previous run's section layout, persisted in the cache's slot tier
   so a warm run can pin unchanged functions at their prior addresses
   (Zipr-style incremental placement) instead of re-solving the whole
   section — which would shift every address downstream of the first
   changed function and cold the encode and plan stages. *)
type layout_snap = {
  sn_instr_base : int;
  sn_jt_base : int;
  sn_instr : Asm.seg_rec list;
  sn_jt : Asm.seg_rec list;
}

(* ------------------------------------------------------------------ *)
(* The rewrite driver                                                  *)
(* ------------------------------------------------------------------ *)

let rewrite_inner ?cache ~options (p : Parse.t) =
  let opts = options in
  if opts.sparse_placement && opts.overwrite_original then
    invalid_arg
      "Rewriter: sparse placement requires the original code to be kept \
       (overwrite_original = false)";
  if opts.sparse_placement && opts.granularity <> G_func_entry then
    invalid_arg "Rewriter: sparse placement requires function-entry granularity";
  let bin = p.Parse.bin in
  let arch = bin.Binary.arch in
  let toc = bin.Binary.toc_base in
  let pie = bin.Binary.pie in
  (* 1. Instrumented function set. *)
  let chosen (fa : Parse.func_analysis) =
    fa.Parse.fa_instrumentable
    &&
    match opts.only with
    | None -> true
    | Some names -> List.mem fa.Parse.fa_sym.Symbol.name names
  in
  let ifuncs = List.filter chosen p.Parse.funcs in
  let instr_entries =
    IntSet.of_list (List.map (fun f -> f.Parse.fa_sym.Symbol.addr) ifuncs)
  in
  let is_instrumented a = IntSet.mem a instr_entries in
  (* 2. Dynamic symbols for the runtime library. *)
  let dynsyms =
    Array.append bin.Binary.dynsyms
      [| Abi.count; Abi.translate_r0; Abi.dyn_translate |]
  in
  let count_idx = Array.length bin.Binary.dynsyms in
  let translate_idx = count_idx + 1 in
  let dt_idx = count_idx + 2 in
  (* 3. Layout decisions. *)
  let instr_base = align_up (Binary.code_end bin + opts.instr_gap) 0x1000 in
  let text = Binary.text bin in
  let est_instr_hi =
    instr_base + (10 * Section.size text) + 0x40000
  in
  let far = not (Encode.jmp_fits arch ~wide:true (est_instr_hi - text.Section.vaddr)) in
  let go_hook_funcs =
    if
      opts.ra_translation
      && bin.Binary.features.Binary.go_runtime
      && is_instrumented
           (match Binary.symbol bin "runtime.findfunc" with
           | Some s -> s.Symbol.addr
           | None -> -1)
    then [ "runtime.findfunc"; "runtime.pcvalue" ]
    else []
  in
  let jobs = max 1 opts.jobs in
  let mk_ctx (fa : Parse.func_analysis) =
    {
      p;
      opts;
      arch;
      count_idx;
      translate_idx;
      dt_idx;
      far;
      is_instrumented;
      ns = Printf.sprintf "$%x" fa.Parse.fa_sym.Symbol.addr;
      items = [];
      jt_items = [];
      ra_pairs = [];
      throw_pairs = [];
      block_pairs = [];
      counter_sites = [];
      pending_traps = [];
      dt_sites = [];
      fresh = 0;
      n_cloned = 0;
    }
  in
  (* Everything the per-function relocation and planning stages read
     besides the function's own analysis record, digested once per run.
     Lazy, so the cacheless path never pays for it. [jobs] is normalized
     out: cache keys — hence hit/miss counters — must be jobs-independent
     like every other pipeline observable. *)
  let cache_ctx =
    lazy
      (Cache.kjoin
         [
           Cache.dval
             ( { opts with jobs = 0 },
               arch,
               pie,
               toc,
               instr_base,
               far,
               IntSet.elements instr_entries,
               go_hook_funcs,
               Array.to_list dynsyms,
               p.Parse.fptrs,
               p.Parse.pointer_targets );
           (* Function symbols enter namelessly: nothing cross-function the
              relocator or planner reads depends on a name (labels are
              address-namespaced, [next_start_of] compares addresses, and
              the name-sensitive inputs — [go_hook_funcs], the [only]
              selection — are digested above), so a one-symbol rename
              invalidates only that function's own entries via [dval fa]. *)
           Cache.dval
             ( bin.Binary.eh_frame,
               List.map
                 (fun (s : Symbol.t) -> (s.Symbol.addr, s.Symbol.size))
                 (Binary.func_symbols bin) );
         ])
  in
  (* 4. Relocate all instrumented functions — one context per function,
     fanned out across domains, merged back in emission order. The merged
     streams are a pure function of the (deterministic) emission order, so
     any jobs count yields bit-identical output. With a cache, each
     function's finished accumulator image is memoized against the shared
     context plus its analysis record. *)
  let emission_funcs =
    match opts.order with
    | `Original | `Reverse_blocks -> ifuncs
    | `Reverse_funcs -> List.rev ifuncs
  in
  let fimgs =
    Trace.span "relocate" @@ fun () ->
    Cache.memo_map ?cache ~jobs ~stage:"rewrite/relocate"
      ~key:(fun fa -> Cache.kjoin [ Lazy.force cache_ctx; Cache.dval fa ])
      (fun fa ->
        let ctx = mk_ctx fa in
        relocate_function ctx fa go_hook_funcs;
        image_of_ctx ctx)
      emission_funcs
  in
  let merge proj = List.concat_map (fun c -> List.rev (proj c)) fimgs in
  let instr_items = merge (fun c -> c.ri_items) in
  let jt_items = merge (fun c -> c.ri_jt_items) in
  let all_ra_pairs = merge (fun c -> c.ri_ra_pairs) in
  let all_throw_pairs = merge (fun c -> c.ri_throw_pairs) in
  let all_block_pairs = merge (fun c -> c.ri_block_pairs) in
  let all_counter_sites = merge (fun c -> c.ri_counter_sites) in
  let all_pending_traps = merge (fun c -> c.ri_pending_traps) in
  let all_dt_sites = merge (fun c -> c.ri_dt_sites) in
  let n_cloned = List.fold_left (fun acc c -> acc + c.ri_n_cloned) 0 fimgs in
  (* 5. Assemble .instr and .jtnew in one label namespace. Layout
     (address/label assignment) is inherently sequential; encoding then
     runs against the frozen label table, so it shards into contiguous
     chunks across the same domain pool. Several chunks per lane keep the
     lanes busy when chunk costs are skewed (data-heavy vs code-heavy
     runs); bytes and reloc order are chunking-independent.

     With a cache, layout goes through {!Asm.layout_pinned} over
     per-function segments instead: the previous run's placement (persisted
     in the cache's slot tier) pins every unchanged function at its prior
     address, so a perturbed warm run re-solves and re-encodes only the
     functions whose content actually changed — everything downstream of
     an edit keeps its addresses, its encode-chunk hits and its placement
     plans. A cold cache has no snapshot and the pinned layout degenerates
     to exactly the sequential one. *)
  let labels = Hashtbl.create 1024 in
  let pinned =
    match cache with
    | None -> None
    | Some c ->
        let seg_of proj =
          List.map2
            (fun (fa : Parse.func_analysis) img ->
              (fa.Parse.fa_sym.Symbol.addr, List.rev (proj img)))
            emission_funcs fimgs
        in
        let snap_key =
          Cache.dval
            ("layout-snap", bin.Binary.name, arch, pie, toc,
             { opts with jobs = 0 })
        in
        let prev_instr, prev_jt_base, prev_jt =
          match (Cache.find_slot c snap_key : layout_snap option) with
          | Some sn when sn.sn_instr_base = instr_base ->
              (sn.sn_instr, sn.sn_jt_base, sn.sn_jt)
          | _ -> ([], -1, [])
        in
        let pi =
          Trace.span "layout:instr" @@ fun () ->
          Asm.layout_pinned arch ~pie ~labels ~base:instr_base
            ~prev:prev_instr
            (seg_of (fun img -> img.ri_items))
        in
        (* The jump-table base is always derived from the instr extent the
           run actually produced — never pinned — so the two sections can
           not collide when the instr section grows. *)
        let jt_base = align_up pi.Asm.p_layout.Asm.l_end 0x100 in
        let pj =
          Trace.span "layout:jtnew" @@ fun () ->
          Asm.layout_pinned arch ~pie ~labels ~base:jt_base
            ~prev:(if jt_base = prev_jt_base then prev_jt else [])
            (seg_of (fun img -> img.ri_jt_items))
        in
        Cache.store_slot c snap_key
          {
            sn_instr_base = instr_base;
            sn_jt_base = jt_base;
            sn_instr = pi.Asm.p_recs;
            sn_jt = pj.Asm.p_recs;
          };
        Trace.add "layout.pinned" (pi.Asm.p_pinned + pj.Asm.p_pinned);
        Trace.add "layout.moved" (pi.Asm.p_moved + pj.Asm.p_moved);
        Some (pi, jt_base, pj)
  in
  let instr_lay, jt_base, jt_lay =
    match pinned with
    | Some (pi, jt_base, pj) -> (pi.Asm.p_layout, jt_base, pj.Asm.p_layout)
    | None ->
        let instr_lay =
          Trace.span "layout:instr" @@ fun () ->
          Asm.layout arch ~pie ~labels ~base:instr_base instr_items
        in
        let jt_base = align_up instr_lay.Asm.l_end 0x100 in
        let jt_lay =
          Trace.span "layout:jtnew" @@ fun () ->
          Asm.layout arch ~pie ~labels ~base:jt_base jt_items
        in
        (instr_lay, jt_base, jt_lay)
  in
  let apar =
    if jobs <= 1 then Asm.serial
    else { Asm.pmap = (fun f l -> Pool.map ~jobs f l) }
  in
  let amemo =
    match cache with
    | None -> None
    | Some _ ->
        Some
          {
            Asm.cmap =
              (fun ~stage ~key f l -> Cache.memo_map ?cache ~jobs ~stage ~key f l);
          }
  in
  let enc_chunks = if jobs <= 1 then 1 else 4 * jobs in
  (* With a cache, encoding follows the pinned layout's per-function
     chunks: chunk boundaries — hence chunk cache keys and hit/miss
     counts — are function boundaries, fixed by the binary rather than
     jobs-derived, and a pinned function's chunk key is bit-identical
     across runs (same items, same addresses, same resolved labels). *)
  let instr_bytes, instr_relocs =
    Trace.span "encode:instr" @@ fun () ->
    match pinned with
    | Some (pi, _, _) ->
        Asm.encode_chunks arch ~pie ~toc ~labels ~par:apar ?memo:amemo
          pi.Asm.p_layout pi.Asm.p_chunks
    | None ->
        Asm.encode_sharded arch ~pie ~toc ~labels ~par:apar ?memo:amemo
          ~chunks:enc_chunks instr_lay
  in
  let jt_bytes, jt_relocs =
    Trace.span "encode:jtnew" @@ fun () ->
    match pinned with
    | Some (_, _, pj) ->
        Asm.encode_chunks arch ~pie ~toc ~labels ~par:apar ?memo:amemo
          pj.Asm.p_layout pj.Asm.p_chunks
    | None ->
        Asm.encode_sharded arch ~pie ~toc ~labels ~par:apar ?memo:amemo
          ~chunks:enc_chunks jt_lay
  in
  let label_addr l = Asm.label_exn labels l in
  let reloc_of a = label_addr (block_label a) in
  (* 6. RA map, counter-site map, trap seeds from relocated code. *)
  let resolve_pairs l = List.map (fun (lb, orig) -> (label_addr lb, orig)) l in
  let throw_pairs = resolve_pairs all_throw_pairs in
  (* Return-address pairs get an exact twin at ra-1: unwinders match the
     caller frame at the call instruction (IP-1), and that lookup must
     translate to original_ra-1 so landing-pad ranges starting mid-block
     still cover it. *)
  let ra_pairs_resolved =
    List.concat_map
      (fun (k, v) -> [ (k, v); (k - 1, v - 1) ])
      (resolve_pairs all_ra_pairs)
  in
  (* Under call emulation the throw-site pairs model __cxa_throw's emulated
     caller return address (exact matches only); full RA translation uses
     every pair. *)
  let ra_map =
    Trace.span "ra-map" @@ fun () ->
    if opts.ra_translation then
      Ra_map.of_pairs
        (throw_pairs @ ra_pairs_resolved @ resolve_pairs all_block_pairs)
    else Ra_map.of_pairs ~exact_only:true throw_pairs
  in
  let counter_of_site = Hashtbl.create 64 in
  List.iter
    (fun (l, blk) -> Hashtbl.replace counter_of_site (label_addr l) blk)
    all_counter_sites;
  let trap_map = Hashtbl.create 16 in
  List.iter
    (fun (l, target) -> Hashtbl.replace trap_map (label_addr l) target)
    all_pending_traps;
  let dt_sites = Hashtbl.create 16 in
  List.iter
    (fun (l, reg) -> Hashtbl.replace dt_sites (label_addr l) reg)
    all_dt_sites;
  (* 7. Trampoline placement over the original text. *)
  let writes : (int * string) list ref = ref [] in
  let pool = { chunks = [] } in
  (* Retired dynamic-linking sections become executable scratch space. *)
  List.iter
    (fun name ->
      match Binary.section bin name with
      | Some s -> pool_add pool s.Section.vaddr (Section.end_vaddr s)
      | None -> ())
    [ ".dynsym"; ".dynstr"; ".rela_dyn" ];
  let n_short = ref 0
  and n_long = ref 0
  and n_hop = ref 0
  and n_trap = ref 0
  and n_cfl = ref 0
  and n_blocks = ref 0 in
  let sorted_ifuncs =
    List.sort
      (fun a b -> compare a.Parse.fa_sym.Symbol.addr b.Parse.fa_sym.Symbol.addr)
      ifuncs
  in
  let next_start_of fa =
    let a = fa.Parse.fa_sym.Symbol.addr in
    List.fold_left
      (fun acc (s : Symbol.t) ->
        if s.Symbol.addr > a && s.Symbol.addr < acc then s.Symbol.addr else acc)
      max_int
      (Binary.func_symbols bin)
  in
  (* First pass: per-function placement plans, computed in parallel (pure:
     they read only the function's analysis, read-only binary state and the
     finished label table)... *)
  let plan_function fa =
    let cfl_causes_l = cfl_causes opts p fa in
    let cfl = IntSet.of_list (List.map fst cfl_causes_l) in
    let regions = function_regions opts p fa cfl (next_start_of fa) in
    let events = ref [] in
    let ev e = events := e :: !events in
    let rec place = function
      | [] -> ()
      | (lo, hi, R_cfl) :: rest ->
          (* Superblock: extend over following contiguous scratch. *)
          let rec extend e = function
            | (lo', hi', R_scratch) :: rest' when lo' = e && opts.use_superblocks ->
                extend hi' rest'
            | rest' -> (e, rest')
          in
          let se, rest' = extend hi rest in
          let space = se - lo in
          let target = reloc_of lo in
          let dead = Liveness.dead_in arch fa.Parse.fa_liveness lo in
          (match Trampoline.select arch ~at:lo ~space ~target ~dead ~toc with
          | Some kind ->
              let bytes = Trampoline.emit arch ~at:lo ~target ~toc kind in
              let cls =
                match kind with
                | Trampoline.Short -> T_short
                | Trampoline.Long _ | Trampoline.Long_save_restore _ -> T_long
                | Trampoline.Trap_tramp -> T_trap
              in
              ev (Pe_write (lo, bytes, cls));
              ev (Pe_free (lo + String.length bytes, se))
          | None ->
              ev (Pe_defer (lo, se, target, dead));
              ev (Pe_free (lo + Encode.short_jmp_len arch, se)));
          place rest'
      | (lo, hi, R_scratch) :: rest ->
          (* Scratch not claimed by a preceding superblock: free space. *)
          ev (Pe_free (lo, hi));
          place rest
      | (_, _, R_preserved) :: rest -> place rest
    in
    place regions;
    {
      pl_entry = fa.Parse.fa_sym.Symbol.addr;
      pl_blocks = List.length fa.Parse.fa_cfg.Cfg.blocks;
      pl_cfl_causes = cfl_causes_l;
      pl_preserved =
        List.filter_map
          (fun (lo, hi, k) -> if k = R_preserved then Some (lo, hi) else None)
          regions;
      pl_events = List.rev !events;
    }
  in
  (* A plan reads: the shared context, the function's analysis, its
     relocated-block label values, and the trailing padding bytes up to the
     next function start (the only binary bytes [function_regions] decodes
     beyond what [fa] already fixes) — so that is exactly what its cache
     key digests. *)
  let plan_key fa =
    let sym = fa.Parse.fa_sym in
    let fend = sym.Symbol.addr + sym.Symbol.size in
    let nxt = next_start_of fa in
    let lim = min nxt (Section.end_vaddr text) in
    let pad =
      if lim > fend && fend >= text.Section.vaddr then
        Bytes.sub_string text.Section.data
          (fend - text.Section.vaddr)
          (lim - fend)
      else ""
    in
    let block_labels =
      List.map
        (fun (b : Cfg.block) ->
          Hashtbl.find_opt labels (block_label b.Cfg.b_start))
        fa.Parse.fa_cfg.Cfg.blocks
    in
    Cache.kjoin
      [
        Lazy.force cache_ctx;
        Cache.dval fa;
        Cache.dval (nxt, block_labels);
        pad;
      ]
  in
  let plans =
    Trace.span "place:plan" @@ fun () ->
    Cache.memo_map ?cache ~jobs ~stage:"rewrite/plan" ~key:plan_key
      plan_function sorted_ifuncs
  in
  (* ...then a serial replay in sorted function order threads the scratch
     pool and the deferred-hop list exactly as a serial pass would. *)
  let deferred = ref [] in
  let preserved_ranges = ref [] in
  (* Placement cause per CFL block start (block starts are unique across
     functions), filled by the replay (direct writes) and the hop pass
     (deferred outcomes) — attribution input only. *)
  let place_causes : (int, Attribution.cause) Hashtbl.t = Hashtbl.create 64 in
  (Trace.span "place:replay" @@ fun () ->
  List.iter
    (fun pl ->
      n_blocks := !n_blocks + pl.pl_blocks;
      n_cfl := !n_cfl + List.length pl.pl_cfl_causes;
      List.iter
        (fun r -> preserved_ranges := r :: !preserved_ranges)
        pl.pl_preserved;
      List.iter
        (function
          | Pe_write (lo, bytes, cls) ->
              writes := (lo, bytes) :: !writes;
              (match cls with
              | T_short -> incr n_short
              | T_long -> incr n_long
              | T_trap -> incr n_trap);
              Hashtbl.replace place_causes lo
                (match cls with
                | T_short -> Attribution.Tramp_short
                | T_long -> Attribution.Tramp_long
                | T_trap -> Attribution.Trap_no_reach)
          | Pe_defer (lo, se, target, dead) ->
              deferred := (lo, se, target, dead) :: !deferred
          | Pe_free (lo, hi) -> pool_add pool lo hi)
        pl.pl_events)
    plans);
  (* Second pass: multi-trampoline hops, then traps. *)
  (Trace.span "place:hops" @@ fun () ->
  List.iter
    (fun (lo, se, target, dead) ->
      let short_len = Encode.short_jmp_len arch in
      let reach = Arch.short_branch_range arch in
      let hop_kind_len =
        match arch with
        | Arch.X86_64 -> Some (Trampoline.Long None, 5)
        | Arch.Ppc64le ->
            if Reg.Set.is_empty dead then
              Some (Trampoline.Long_save_restore Reg.r12, 24)
            else Some (Trampoline.Long (Some (Reg.Set.choose dead)), 16)
        | Arch.Aarch64 ->
            if Reg.Set.is_empty dead then None
            else Some (Trampoline.Long (Some (Reg.Set.choose dead)), 12)
      in
      (* The pool allocation must stay ahead of the reach guards: a chunk
         that then fails them is consumed anyway, exactly as the serial
         placement always did — only the trap's *cause* is refined here. *)
      let outcome =
        if not opts.use_scratch_pool then
          `Trap Attribution.Scratch_pool_disabled
        else
          match hop_kind_len with
          | None -> `Trap Attribution.No_hop_kind
          | Some (kind, size) -> (
              match pool_alloc pool ~near:lo ~size ~reach with
              | None -> `Trap Attribution.No_scratch_space
              | Some chunk ->
                  if
                    se - lo >= short_len
                    && Encode.jmp_fits arch ~wide:false (chunk - lo)
                    && Trampoline.long_reaches arch ~at:chunk ~target ~toc
                  then `Hop (chunk, kind)
                  else `Trap Attribution.Trap_no_reach)
      in
      match outcome with
      | `Hop (chunk, kind) ->
          let hop1 = Encode.encode_jmp arch ~wide:false (chunk - lo) in
          let hop2 = Trampoline.emit arch ~at:chunk ~target ~toc kind in
          writes := (lo, hop1) :: (chunk, hop2) :: !writes;
          incr n_hop;
          Hashtbl.replace place_causes lo Attribution.Tramp_hop
      | `Trap cause ->
          writes := (lo, Encode.encode arch Insn.Trap) :: !writes;
          Hashtbl.replace trap_map lo target;
          incr n_trap;
          Hashtbl.replace place_causes lo cause)
    !deferred);
  (* Coverage attribution: assembled from the per-function plans in sorted
     function order plus the placement-cause map, so it is a pure function
     of the rewrite output (jobs-independent) and never feeds back into it. *)
  let attribution =
    let block_sites =
      List.map
        (fun pl ->
          ( pl.pl_entry,
            List.map
              (fun (a, c) ->
                {
                  Attribution.bs_addr = a;
                  bs_cfl = c;
                  bs_place = Hashtbl.find_opt place_causes a;
                })
              pl.pl_cfl_causes ))
        plans
    in
    let blocks_tbl = Hashtbl.create 64 in
    List.iter (fun pl -> Hashtbl.replace blocks_tbl pl.pl_entry pl.pl_blocks) plans;
    Attribution.build ~mode:opts.mode ~instrumented:is_instrumented
      ~block_sites
      ~blocks_of:(fun a ->
        Option.value ~default:0 (Hashtbl.find_opt blocks_tbl a))
      p
  in
  (* 8. Build the output binary. *)
  Trace.span "emit" @@ fun () ->
  let out = Binary.copy bin in
  (* Rename the retired dynamic-linking sections and make them executable
     scratch. *)
  let renamed_sections =
    List.map
      (fun (s : Section.t) ->
        if List.mem s.Section.name [ ".dynsym"; ".dynstr"; ".rela_dyn" ] then
          { s with Section.name = s.Section.name ^ ".old"; perm = Section.r_x }
        else s)
      out.Binary.sections
  in
  let out = Binary.with_sections out renamed_sections in
  (* Overwrite relocated functions with illegal bytes (the strong test). *)
  if opts.overwrite_original then
    List.iter
      (fun fa ->
        let sym = fa.Parse.fa_sym in
        Binary.write_string out sym.Symbol.addr
          (String.make sym.Symbol.size '\000'))
      ifuncs;
  (* Restore preserved in-code tables. *)
  List.iter
    (fun (lo, hi) ->
      let b = Bytes.create (hi - lo) in
      for i = 0 to hi - lo - 1 do
        Bytes.set_uint8 b i (Binary.read8 bin (lo + i) land 0xff)
      done;
      Binary.write_string out lo (Bytes.to_string b))
    !preserved_ranges;
  (* Install trampolines (and hop chunks). *)
  List.iter (fun (addr, bytes) -> Binary.write_string out addr bytes) !writes;
  (* Rewrite function-pointer data slots. *)
  let slot_patches = Hashtbl.create 16 in
  if Mode.rewrites_func_ptrs opts.mode then (
    List.iter
      (function
        | Func_ptr.Fp_slot { slot; target; _ } when is_instrumented target ->
            Hashtbl.replace slot_patches slot (reloc_of target)
        | _ -> ())
      p.Parse.fptrs;
    (* Adjusted uses override the plain patch: compensate so that the
       run-time arithmetic lands on the relocated split block. *)
    List.iter
      (function
        | Func_ptr.Fp_adjusted { src_slot; target; adjust }
          when is_instrumented target ->
            (match Hashtbl.find_opt labels (block_label (target + adjust)) with
            | Some reloc_tgt -> Hashtbl.replace slot_patches src_slot (reloc_tgt - adjust)
            | None -> ())
        | _ -> ())
      p.Parse.fptrs);
  Hashtbl.iter (fun slot v -> Binary.write64 out slot v) slot_patches;
  (* Original relocations into repurposed bytes (cloned in-code tables and
     overwritten text of instrumented functions) must be dropped, or the
     loader would clobber installed trampolines and scratch chunks. *)
  let repurposed off =
    List.exists
      (fun fa ->
        let sym = fa.Parse.fa_sym in
        off >= sym.Symbol.addr && off < sym.Symbol.addr + sym.Symbol.size)
      ifuncs
    && not
         (List.exists (fun (lo, hi) -> off >= lo && off < hi) !preserved_ranges)
  in
  let relocs =
    List.filter_map
      (fun (r : Reloc.t) ->
        if Reloc.is_runtime r && repurposed r.Reloc.offset then None
        else
          match Hashtbl.find_opt slot_patches r.Reloc.offset with
          | Some v when Reloc.is_runtime r -> Some { r with Reloc.addend = v }
          | _ -> Some r)
      out.Binary.relocs
    @ instr_relocs @ jt_relocs
  in
  (* New sections. The RA map is stored in the binary only when some
     runtime actually unwinds (C++ exceptions or a Go runtime) — the
     paper's ".ra_map (when needed)". *)
  let ra_bytes =
    if
      opts.ra_translation
      && (bin.Binary.features.Binary.cpp_exceptions
         || bin.Binary.features.Binary.go_runtime)
    then Ra_map.encode ra_map
    else Bytes.create 0
  in
  let dynsym_base = align_up jt_lay.Asm.l_end 0x100 in
  let dynsym_size = 24 * (Array.length dynsyms + List.length (Binary.func_symbols bin)) in
  let dynstr_base = dynsym_base + dynsym_size in
  let dynstr_size =
    Array.fold_left (fun a s -> a + String.length s + 1) 16 dynsyms
  in
  let rela_base = dynstr_base + dynstr_size in
  let rela_size = (24 * List.length relocs) + 24 in
  let ra_base = align_up (rela_base + rela_size) 0x100 in
  let filler n seed = Bytes.init n (fun i -> Char.chr ((i * 89 + seed) land 0xff)) in
  let new_sections =
    [
      Section.make ~name:".instr" ~vaddr:instr_base ~perm:Section.r_x instr_bytes;
    ]
    @ (if Bytes.length jt_bytes > 0 then
         [ Section.make ~name:".jtnew" ~vaddr:jt_base ~perm:Section.r_only jt_bytes ]
       else [])
    @ [
        Section.make ~name:".dynsym" ~vaddr:dynsym_base ~perm:Section.r_only
          (filler dynsym_size 13);
        Section.make ~name:".dynstr" ~vaddr:dynstr_base ~perm:Section.r_only
          (filler dynstr_size 17);
        Section.make ~name:".rela_dyn" ~vaddr:rela_base ~perm:Section.r_only
          (filler rela_size 19);
      ]
    @
    if Bytes.length ra_bytes > 0 then
      [ Section.make ~name:".ra_map" ~vaddr:ra_base ~perm:Section.r_only ra_bytes ]
    else []
  in
  let out =
    {
      (List.fold_left Binary.add_section out new_sections) with
      Binary.relocs;
      dynsyms;
    }
  in
  let stats =
    {
      s_funcs_total = List.length p.Parse.funcs;
      s_funcs_instrumented = List.length ifuncs;
      s_blocks = !n_blocks;
      s_cfl_blocks = !n_cfl;
      s_trampolines = !n_short + !n_long + !n_hop + !n_trap;
      s_short_trampolines = !n_short;
      s_long_trampolines = !n_long;
      s_multi_hop = !n_hop;
      s_trap_trampolines = !n_trap;
      s_cloned_tables = n_cloned;
      s_rewritten_slots = Hashtbl.length slot_patches;
      s_orig_size = Binary.loaded_size bin;
      s_new_size = Binary.loaded_size out;
    }
  in
  ignore translate_idx;
  (* Named counters mirror [stats] plus byte-level measures. Everything
     reported here must be a pure function of the rewrite output — never of
     the parallel schedule (lane/chunk counts) — so totals are identical for
     any jobs value (asserted by test/test_trace.ml). *)
  if Trace.active () then begin
    Trace.add "rewrite/funcs-total" stats.s_funcs_total;
    Trace.add "rewrite/funcs-instrumented" stats.s_funcs_instrumented;
    Trace.add "rewrite/blocks" stats.s_blocks;
    Trace.add "rewrite/cfl-blocks" stats.s_cfl_blocks;
    Trace.add "rewrite/trampolines" stats.s_trampolines;
    Trace.add "rewrite/trampolines:short" stats.s_short_trampolines;
    Trace.add "rewrite/trampolines:long" stats.s_long_trampolines;
    Trace.add "rewrite/trampolines:hop" stats.s_multi_hop;
    Trace.add "rewrite/trampolines:trap" stats.s_trap_trampolines;
    Trace.add "rewrite/trampoline-bytes"
      (List.fold_left (fun a (_, b) -> a + String.length b) 0 !writes);
    Trace.add "rewrite/cloned-tables" stats.s_cloned_tables;
    Trace.add "rewrite/rewritten-slots" stats.s_rewritten_slots;
    Trace.add "rewrite/instr-bytes" (Bytes.length instr_bytes);
    Trace.add "rewrite/jtnew-bytes" (Bytes.length jt_bytes);
    Trace.add "rewrite/ra-pairs" (List.length (Ra_map.pairs ra_map));
    Trace.add "rewrite/size-growth" (stats.s_new_size - stats.s_orig_size)
  end;
  {
    rw_binary = out;
    rw_ra_map = ra_map;
    rw_trap_map = trap_map;
    rw_counter_of_site = counter_of_site;
    rw_dt_sites = dt_sites;
    rw_go_hook = go_hook_funcs <> [];
    rw_translate_hook = opts.ra_translation || opts.call_emulation;
    rw_stats = stats;
    rw_attribution = attribution;
    rw_relocated_entry =
      (fun a -> Hashtbl.find_opt labels (block_label a));
  }

let rewrite ?cache ?(options = default_options) (p : Parse.t) =
  Trace.span "rewrite" (fun () -> rewrite_inner ?cache ~options p)

let vm_config_for t (cfg : Icfg_runtime.Vm.config) =
  let translate = Ra_map.translate t.rw_ra_map in
  {
    cfg with
    Icfg_runtime.Vm.trap_map = t.rw_trap_map;
    translate = (if t.rw_translate_hook then Some translate else None);
    go_translate = (if t.rw_go_hook then Some translate else None);
  }

let routines_for t ~counters =
  let key_of site =
    Option.value ~default:site (Hashtbl.find_opt t.rw_counter_of_site site)
  in
  let dt_routine vm =
    let lb = Icfg_runtime.Vm.load_base vm in
    let site = Icfg_runtime.Vm.pc vm - lb in
    match Hashtbl.find_opt t.rw_dt_sites site with
    | None -> Icfg_runtime.Vm.abort vm "dynamic translation: unknown site"
    | Some reg -> (
        let v = Icfg_runtime.Vm.reg vm reg in
        match t.rw_relocated_entry (v - lb) with
        | Some reloc -> Icfg_runtime.Vm.set_reg vm reg (reloc + lb)
        | None -> ())
  in
  Icfg_runtime.Runtime_lib.standard ()
  @ [
      Icfg_runtime.Runtime_lib.count_routine counters ~key_of;
      Icfg_runtime.Runtime_lib.translate_r0_routine t.rw_ra_map;
      (Abi.dyn_translate, dt_routine);
    ]
