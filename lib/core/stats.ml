let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let max_f = function [] -> 0. | l -> List.fold_left max neg_infinity l
let min_f = function [] -> 0. | l -> List.fold_left min infinity l

(* NaN/infinity reach this formatter when a ratio was computed by hand from
   an empty bench (0/0); render them as "n/a" rather than "+nan%". *)
let pct v = if Float.is_finite v then Printf.sprintf "%+.2f%%" v else "n/a"

(* An empty or degenerate base (no cycles measured, empty bench) has no
   meaningful growth ratio; define it as 0 rather than dividing by zero —
   the old [max 1 base] clamp reported value*100 for base = 0. *)
let ratio_pct ~base ~value =
  if base <= 0 then 0.
  else 100. *. float_of_int (value - base) /. float_of_int base

(* Plain quotient of two counts, 0 on an empty denominator: trampolines per
   CFL block, trap share and the like. *)
let ratio ~den ~num =
  if den <= 0 then 0. else float_of_int num /. float_of_int den

(* [share ~total ~part] as a percentage of [total], 0 when nothing was
   counted at all. *)
let share ~total ~part =
  if total <= 0 then 0. else 100. *. float_of_int part /. float_of_int total
