(** Coverage attribution: a typed *cause* for every residual control-flow-
    landing block, every placed trampoline, every uninstrumentable function
    and every jump-table / function-pointer site (the paper's section 4.3
    graded-failure taxonomy, made inspectable).

    Attribution is strictly observation-only: it is assembled from the same
    per-function placement plans the rewriter already computes, in sorted
    function order, so it is a pure function of the rewrite output —
    identical for any [jobs] value and its presence never changes the
    rewritten bytes or {!Rewriter.stats} (enforced by [test/test_report.ml],
    whose reconciliation battery also asserts that the per-cause totals here
    exactly tile the aggregate [stats]). *)

type cause =
  (* function axis *)
  | Unresolved_indirect_jump
      (** function left uninstrumented: an indirect jump neither resolved
          nor accepted as a tail call *)
  (* jump-table axis (per indirect-jump site) *)
  | Jt_resolved_exact  (** resolved, bound matches the guard *)
  | Jt_bound_over  (** resolved with an over-approximated bound *)
  | Jt_bound_under  (** resolved with an under-approximated bound *)
  | Jt_tail_call  (** unresolved jump accepted as an indirect tail call *)
  | Jt_unresolved_spill
      (** slice hit an untracked stack spill ([track_spills] off) *)
  | Jt_unresolved_join  (** slice crossed a CFG join point *)
  | Jt_unresolved_opaque  (** opaque/unrecognized computation in the slice *)
  | Jt_unresolved_base  (** table base writable or not constant *)
  | Jt_unresolved_bound  (** no range-check guard: bound unknown *)
  | Jt_unresolved_targets  (** bound applied but no feasible targets *)
  | Jt_pointer_load  (** single pointer load (indirect tail-call shape) *)
  | Jt_unresolved_jump  (** jump not decoded / not in any block *)
  (* function-pointer axis (per site) *)
  | Fptr_reloc  (** data slot rewritten via its run-time relocation *)
  | Fptr_no_reloc
      (** data slot rewritten by the value-match heuristic (no relocation —
          the inherently risky case the paper flags) *)
  | Fptr_mater  (** code materialization sites patched *)
  | Fptr_adjusted  (** adjusted-pointer slot compensated (Listing 1) *)
  | Fptr_uninstrumented_target
      (** site found but its target function is not instrumented *)
  | Mode_excluded
      (** site found but the mode does not rewrite function pointers *)
  (* CFL axis (why a block is a control-flow-landing block) *)
  | Cfl_entry  (** function entry *)
  | Cfl_landing_pad  (** exception landing pad *)
  | Cfl_jt_target  (** jump-table target (tables not cloned in this mode) *)
  | Cfl_ptr_target  (** reachable by an unrewritten/adjusted pointer *)
  | Cfl_call_fallthrough  (** call-emulation return point *)
  | Cfl_every_block  (** baseline placement: trampoline at every block *)
  (* trampoline axis (what was placed on a CFL block) *)
  | Tramp_short
  | Tramp_long
  | Tramp_hop  (** multi-trampoline hop through a scratch-pool chunk *)
  | Trap_no_reach
      (** trap: a hop chunk was available but no encoding reached *)
  | No_scratch_space  (** trap: no pool chunk within short-branch range *)
  | No_hop_kind
      (** trap: no long-form encoding exists (aarch64, no dead register) *)
  | Scratch_pool_disabled  (** trap: the scratch pool is disabled *)

val axis : cause -> string
(** ["func"], ["jt"], ["fptr"], ["cfl"] or ["tramp"]. *)

val name : cause -> string
(** Kebab-case cause name without the axis (e.g. ["unresolved-spill"]). *)

val key : cause -> string
(** [axis ^ "/" ^ name] — the JSON histogram key
    (e.g. ["jt/unresolved-spill"]). *)

val is_trap : cause -> bool
(** Is this a trap-trampoline placement cause? *)

type block_site = {
  bs_addr : int;  (** block start address *)
  bs_cfl : cause;  (** why the block is a CFL block *)
  bs_place : cause option;
      (** what was placed there; [None] only in the degenerate corner where
          a CFL candidate has no matching placement region *)
}

type func_row = {
  fr_name : string;
  fr_addr : int;
  fr_instrumented : bool;
  fr_fail : cause option;  (** [Some] iff not instrumentable *)
  fr_blocks : int;  (** total blocks (0 for non-instrumented functions) *)
  fr_sites : block_site list;  (** CFL blocks, by address *)
  fr_jt : (int * cause) list;  (** per-indirect-jump outcome, by address *)
}

type t = {
  a_mode : Mode.t;
  a_rows : func_row list;  (** in sorted function-address order *)
  a_fptr : (int * cause) list;
      (** per function-pointer site (keyed by slot / first provenance
          address), binary-level *)
}

val build :
  mode:Mode.t ->
  instrumented:(int -> bool) ->
  block_sites:(int * block_site list) list ->
  blocks_of:(int -> int) ->
  Icfg_analysis.Parse.t ->
  t
(** Assemble attribution from the parse and the rewriter's per-function
    placement outcomes. [block_sites] maps an instrumented function's entry
    address to its CFL sites; [blocks_of] gives its total block count (both
    empty/0 for non-instrumented functions). *)

(** {1 Rollups} *)

val histogram : t -> (cause * int) list
(** Counts over every recorded cause (function failures, jt sites, fptr
    sites, CFL causes, placement causes), sorted by {!key}. *)

val cfl_total : t -> int
(** Number of recorded CFL block sites (= [stats.s_cfl_blocks]). *)

val tramp_total : t -> int
(** Number of placed trampolines (= [stats.s_trampolines]). *)

val trap_total : t -> int
(** Number of trap placements (= [stats.s_trap_trampolines]). *)

val count : t -> cause -> int
(** Histogram lookup, 0 when absent. *)

type delta = {
  d_cfl : int;  (** cfl_total t - cfl_total dir *)
  d_trampolines : int;
  d_traps : int;
}

val delta : dir:t -> t -> delta
(** The mode's incremental effect vs the [Dir] baseline (negative values =
    blocks/trampolines removed by the richer mode). *)

val pp : Format.formatter -> t -> unit
(** Per-function coverage table plus the cause histogram. *)

val to_json : ?dir:t -> t -> string
(** Machine-readable report, schema ["icfg-report/1"]: totals, per-cause
    histogram (keyed by {!key}), per-function rollups, and — when [dir] is
    given and the mode is not [Dir] — the [delta_vs_dir] object. *)
