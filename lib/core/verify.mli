(** The paper's strong correctness test (section 8) as a library.

    Instruments every basic block with counting instrumentation, overwrites
    every original code byte of relocated functions with illegal
    instructions, runs the original binary under a ground-truth block
    profiler and the rewritten binary with its counters, and compares:

    - both runs terminate;
    - observable outputs are identical;
    - every block of every instrumented function executed exactly as many
      times in both runs (instrumentation integrity, section 4.1). *)

type failure =
  | Original_crashed of string
  | Rewritten_crashed of string
  | Output_mismatch
  | Count_mismatch of { block : int; expected : int; got : int }

type report = {
  ok : bool;
  failures : failure list;
  blocks_checked : int;
  blocks_executed : int;
  orig_cycles : int;
  rewritten_cycles : int;
  rewritten_traps : int;
  stats : Rewriter.stats;
  trace : Trace.t;
      (** spans and counters for the whole test — the parse/rewrite
          pipeline plus both VM runs ([vm/original/*], [vm/rewritten/*]) —
          so a report explains where cycles and traps went *)
}

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit

val strong_test :
  ?options:Rewriter.options ->
  ?fm:Icfg_analysis.Failure_model.t ->
  Icfg_obj.Binary.t ->
  report
(** Runs the complete pipeline on the binary. The [options]' payload is
    forced to [P_count] and granularity to [G_block] (the test needs them);
    everything else (mode, placement knobs, partial instrumentation) is
    honoured. *)
