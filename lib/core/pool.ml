let recommended_jobs () = Domain.recommended_domain_count ()

exception Incomplete_map of { lane : int; index : int; total : int }

let () =
  Printexc.register_printer (function
    | Incomplete_map { lane; index; total } ->
        Some
          (Printf.sprintf
             "Pool.map: result slot %d/%d left unfilled (claimed by lane %d)"
             index total lane)
    | _ -> None)

(* A pool is a bag of worker domains draining one shared queue of batch
   thunks. Scheduling state for a particular [map] call (the index and
   completion counters) lives in the thunk's closure, so the pool itself is
   reusable across unrelated batches. *)
type pool = {
  q : (unit -> unit) Queue.t;
  m : Mutex.t;
  work_available : Condition.t;
  mutable n_workers : int;
}

let worker pool () =
  let rec loop () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.q do
      Condition.wait pool.work_available pool.m
    done;
    let task = Queue.pop pool.q in
    Mutex.unlock pool.m;
    task ();
    loop ()
  in
  loop ()

(* One shared pool for the whole process, grown on demand to the largest
   lane count ever requested and kept for the process lifetime (idle worker
   domains block in [Condition.wait], which does not hold the runtime lock,
   so they cost nothing). A single pool — rather than one per distinct
   worker count — means a process that maps with jobs 2, then 4, then 8
   ends up with 7 worker domains, not 1+3+7. *)
let the_pool =
  {
    q = Queue.create ();
    m = Mutex.create ();
    work_available = Condition.create ();
    n_workers = 0;
  }

let pool_m = Mutex.create ()

let get_pool workers =
  Mutex.lock pool_m;
  if workers > the_pool.n_workers then begin
    for _ = the_pool.n_workers + 1 to workers do
      ignore (Domain.spawn (worker the_pool))
    done;
    the_pool.n_workers <- workers
  end;
  Mutex.unlock pool_m;
  the_pool

let live_workers () =
  Mutex.lock pool_m;
  let n = the_pool.n_workers in
  Mutex.unlock pool_m;
  n

let map_array ~jobs f arr =
  let n = Array.length arr in
  (* Lanes beyond the hardware's domain recommendation only oversubscribe
     the runtime (and OCaml caps the total domain count), so jobs is an
     upper bound, not a demand. *)
  let lanes = min (min (max 1 jobs) n) (max 1 (recommended_jobs ())) in
  if lanes <= 1 then Array.map f arr
  else begin
    let pool = get_pool (lanes - 1) in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let failure = Atomic.make None in
    let done_m = Mutex.create () in
    let all_done = Condition.create () in
    (* Every lane (workers and the caller) runs the same batch body: steal
       the next input index, fill the matching result slot. Slots are
       written by exactly one lane and read only after the completion
       barrier, so results come back in input order by construction.

       Once any lane records a failure the others stop applying [f]: they
       still drain the remaining indices (the completion barrier counts
       every index exactly once), but each drained index is a counter
       bump, not a unit of wasted work, so a failing batch aborts after
       at most the calls already in flight. *)
    (* Capture the caller's open span so each lane's span tree attaches
       under it even from a worker domain; [trace_ctx] is [None] (and the
       wrappers are pass-through) when no trace is ambient. *)
    let trace_ctx = Trace.fork () in
    (* Which lane claimed each index, for the diagnostic below: a slot
       still [None] after a clean barrier is an impossible state, and when
       the impossible happens the error should name the culprit rather
       than die as a bare [Assert_failure]. *)
    let owners = Array.make n (-1) in
    let body lane () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          owners.(i) <- lane;
          (if Atomic.get failure = None then
             try results.(i) <- Some (f arr.(i))
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          if Atomic.fetch_and_add completed 1 + 1 = n then begin
            Mutex.lock done_m;
            Condition.broadcast all_done;
            Mutex.unlock done_m
          end;
          go ()
        end
      in
      go ()
    in
    Mutex.lock pool.m;
    for k = 1 to lanes - 1 do
      Queue.push
        (fun () -> Trace.lane trace_ctx ("lane-" ^ string_of_int k) (body k))
        pool.q
    done;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.m;
    Trace.lane trace_ctx "lane-0" (body 0);
    Mutex.lock done_m;
    while Atomic.get completed < n do
      Condition.wait all_done done_m
    done;
    Mutex.unlock done_m;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.mapi
      (fun i -> function
        | Some v -> v
        | None ->
            raise (Incomplete_map { lane = owners.(i); index = i; total = n }))
      results
  end

let map ~jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 -> List.map f xs
  | _ -> Array.to_list (map_array ~jobs f (Array.of_list xs))
