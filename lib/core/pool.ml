let recommended_jobs () = Domain.recommended_domain_count ()

(* A pool is a bag of worker domains draining one shared queue of batch
   thunks. Scheduling state for a particular [map] call (the index and
   completion counters) lives in the thunk's closure, so the pool itself is
   reusable across unrelated batches. *)
type pool = {
  q : (unit -> unit) Queue.t;
  m : Mutex.t;
  work_available : Condition.t;
}

let worker pool () =
  let rec loop () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.q do
      Condition.wait pool.work_available pool.m
    done;
    let task = Queue.pop pool.q in
    Mutex.unlock pool.m;
    task ();
    loop ()
  in
  loop ()

(* One cached pool per distinct worker count, spawned on first use and kept
   for the process lifetime (worker domains block in [Condition.wait] while
   idle; a domain blocked there does not hold the runtime lock, so idle
   pools cost nothing). *)
let pools : (int, pool) Hashtbl.t = Hashtbl.create 4
let pools_m = Mutex.create ()

let get_pool workers =
  Mutex.lock pools_m;
  let p =
    match Hashtbl.find_opt pools workers with
    | Some p -> p
    | None ->
        let p =
          { q = Queue.create (); m = Mutex.create (); work_available = Condition.create () }
        in
        for _ = 1 to workers do
          ignore (Domain.spawn (worker p))
        done;
        Hashtbl.add pools workers p;
        p
  in
  Mutex.unlock pools_m;
  p

let map_array ~jobs f arr =
  let n = Array.length arr in
  let lanes = min (max 1 jobs) n in
  if lanes <= 1 then Array.map f arr
  else begin
    let pool = get_pool (lanes - 1) in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let failure = Atomic.make None in
    let done_m = Mutex.create () in
    let all_done = Condition.create () in
    (* Every lane (workers and the caller) runs the same batch body: steal
       the next input index, fill the matching result slot. Slots are
       written by exactly one lane and read only after the completion
       barrier, so results come back in input order by construction. *)
    let body () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try results.(i) <- Some (f arr.(i))
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          if Atomic.fetch_and_add completed 1 + 1 = n then begin
            Mutex.lock done_m;
            Condition.broadcast all_done;
            Mutex.unlock done_m
          end;
          go ()
        end
      in
      go ()
    in
    Mutex.lock pool.m;
    for _ = 1 to lanes - 1 do
      Queue.push body pool.q
    done;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.m;
    body ();
    Mutex.lock done_m;
    while Atomic.get completed < n do
      Condition.wait all_done done_m
    done;
    Mutex.unlock done_m;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ~jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 -> List.map f xs
  | _ -> Array.to_list (map_array ~jobs f (Array.of_list xs))
