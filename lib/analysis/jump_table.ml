open Icfg_isa
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section

(* ------------------------------------------------------------------ *)
(* Symbolic expressions for backward slicing                           *)
(* ------------------------------------------------------------------ *)

(* Constants carry provenance: the addresses of the instructions that
   contributed them, so the rewriter knows what to patch when cloning. *)
type sym =
  | SReg of Reg.t
  | SStack of int  (** value spilled at [sp + off] *)
  | SConst of int * int list
  | SAdd of sym * sym
  | SMul of sym * int
  | STableLoad of Insn.width * sym * int * Reg.t * int
      (** [STableLoad (w, base, scale, idx_reg, load_addr)] *)
  | SMemLoad of Insn.width * sym  (** plain pointer load *)
  | SOrlo of sym * int
  | STop
  | STopSpill
      (** top introduced by an untracked stack spill ([track_spills] off);
          behaves exactly like [STop] but keeps the failure attributable *)

let rec simplify = function
  | SAdd (a, b) -> (
      match (simplify a, simplify b) with
      | SConst (x, p1), SConst (y, p2) -> SConst (x + y, p1 @ p2)
      | SConst _ as c, other -> simp_add other c
      | a', b' -> simp_add a' b')
  | SMul (a, m) -> (
      match simplify a with
      | SConst (x, p) -> SConst (x * m, p)
      | SMul (inner, m') -> SMul (inner, m * m')
      | a' -> SMul (a', m))
  | SOrlo (a, lo) -> (
      match simplify a with
      | SConst (x, p) -> SConst (x lor (lo land 0xffff), p)
      | a' -> SOrlo (a', lo))
  | STableLoad (w, b, s, i, l) -> STableLoad (w, simplify b, s, i, l)
  | SMemLoad (w, a) -> SMemLoad (w, simplify a)
  | (SReg _ | SStack _ | SConst _ | STop | STopSpill) as e -> e

and simp_add a b =
  (* Normalize constants to the right and re-associate. *)
  match (a, b) with
  | SAdd (x, (SConst _ as c1)), (SConst _ as c2) ->
      simplify (SAdd (x, SAdd (c1, c2)))
  | (SConst _ as c), other -> SAdd (other, c)
  | a, b -> SAdd (a, b)

let rec contains_reg r = function
  | SReg r' -> Reg.equal r r'
  | SAdd (a, b) -> contains_reg r a || contains_reg r b
  | SMul (a, _) | SOrlo (a, _) | SMemLoad (_, a) -> contains_reg r a
  | STableLoad (_, b, _, _, _) -> contains_reg r b
  | SStack _ | SConst _ | STop | STopSpill -> false

let rec subst_reg r repl = function
  | SReg r' when Reg.equal r r' -> repl
  | SAdd (a, b) -> SAdd (subst_reg r repl a, subst_reg r repl b)
  | SMul (a, m) -> SMul (subst_reg r repl a, m)
  | SOrlo (a, lo) -> SOrlo (subst_reg r repl a, lo)
  | SMemLoad (w, a) -> SMemLoad (w, subst_reg r repl a)
  | STableLoad (w, b, s, i, l) -> STableLoad (w, subst_reg r repl b, s, i, l)
  | (SReg _ | SStack _ | SConst _ | STop | STopSpill) as e -> e

let rec subst_stack off repl = function
  | SStack o when o = off -> repl
  | SAdd (a, b) -> SAdd (subst_stack off repl a, subst_stack off repl b)
  | SMul (a, m) -> SMul (subst_stack off repl a, m)
  | SOrlo (a, lo) -> SOrlo (subst_stack off repl a, lo)
  | SMemLoad (w, a) -> SMemLoad (w, subst_stack off repl a)
  | STableLoad (w, b, s, i, l) -> STableLoad (w, subst_stack off repl b, s, i, l)
  | (SReg _ | SStack _ | SConst _ | STop | STopSpill) as e -> e

let rec has_unknowns = function
  | SReg _ | SStack _ -> true
  | STop | STopSpill -> false
  | SAdd (a, b) -> has_unknowns a || has_unknowns b
  | SMul (a, _) | SOrlo (a, _) | SMemLoad (_, a) -> has_unknowns a
  | STableLoad (_, b, _, _, _) -> has_unknowns b
  | SConst _ -> false

let rec has_top = function
  | STop | STopSpill -> true
  | SAdd (a, b) -> has_top a || has_top b
  | SMul (a, _) | SOrlo (a, _) | SMemLoad (_, a) -> has_top a
  | STableLoad (_, b, _, _, _) -> has_top b
  | SReg _ | SStack _ | SConst _ -> false

let rec has_spill_top = function
  | STopSpill -> true
  | STop -> false
  | SAdd (a, b) -> has_spill_top a || has_spill_top b
  | SMul (a, _) | SOrlo (a, _) | SMemLoad (_, a) -> has_spill_top a
  | STableLoad (_, b, _, _, _) -> has_spill_top b
  | SReg _ | SStack _ | SConst _ -> false

(* ------------------------------------------------------------------ *)
(* Backward transfer                                                   *)
(* ------------------------------------------------------------------ *)

let toc_of (bin : Binary.t) = bin.Binary.toc_base

(* Substitute the effect of [insn] (at [addr]) into [expr], walking
   backwards. [fm] gates stack-spill tracking. *)
let back_subst bin (fm : Failure_model.t) addr insn expr =
  let def_subst r repl = subst_reg r (simplify repl) expr in
  match (insn : Insn.t) with
  | Mov (r, Imm n) when contains_reg r expr -> def_subst r (SConst (n, [ addr ]))
  | Mov (r, Reg s) when contains_reg r expr -> def_subst r (SReg s)
  | Movabs (r, v) when contains_reg r expr -> def_subst r (SConst (v, [ addr ]))
  | Lea (r, d) when contains_reg r expr -> def_subst r (SConst (addr + d, [ addr ]))
  | Adrp (r, d) when contains_reg r expr ->
      def_subst r (SConst ((addr land lnot 4095) + d, [ addr ]))
  | Addis (r, rs, hi) when contains_reg r expr ->
      if Reg.equal rs Reg.toc then
        def_subst r (SConst (toc_of bin + (hi lsl 16), [ addr ]))
      else def_subst r (SAdd (SReg rs, SConst (hi lsl 16, [ addr ])))
  | Movhi (r, hi) when contains_reg r expr ->
      def_subst r (SConst (hi lsl 16, [ addr ]))
  | Orlo (r, lo) when contains_reg r expr -> subst_reg r (SOrlo (SReg r, lo)) expr
  | Add (r, Imm n) when contains_reg r expr ->
      subst_reg r (SAdd (SReg r, SConst (n, [ addr ]))) expr
  | Add (r, Reg s) when contains_reg r expr ->
      subst_reg r (SAdd (SReg r, SReg s)) expr
  | Sub (r, Imm n) when contains_reg r expr ->
      subst_reg r (SAdd (SReg r, SConst (-n, [ addr ]))) expr
  | Shl (r, k) when contains_reg r expr -> subst_reg r (SMul (SReg r, 1 lsl k)) expr
  | LoadIdx (w, r, rb, ri, s) when contains_reg r expr ->
      def_subst r (STableLoad (w, SReg rb, s, ri, addr))
  | Load (_, r, BSp, off) when contains_reg r expr ->
      if fm.track_spills then def_subst r (SStack off)
      else def_subst r STopSpill
  | Load (w, r, BReg rb, d) when contains_reg r expr ->
      def_subst r (SMemLoad (w, SAdd (SReg rb, SConst (d, []))))
  | Store (W64, BSp, off, rs) -> simplify (subst_stack off (SReg rs) expr)
  | _ ->
      (* Any other definition of a register in the expression is opaque. *)
      let defs = Insn.defs insn in
      Reg.Set.fold (fun r e -> subst_reg r STop e) defs expr

(* ------------------------------------------------------------------ *)
(* Slicing                                                             *)
(* ------------------------------------------------------------------ *)

type pre_table = {
  p_jump : int;
  p_load : int;
  p_width : Insn.width;
  p_scale : int;
  p_index : Reg.t;
  p_table : int;
  p_table_prov : int list;
  p_base : (int * int list) option;
  p_mult : int;
  p_in_code : bool;
  p_guard : int option;  (** entry count from the range-check guard *)
}

(* Typed failure kinds backing the attribution layer's cause taxonomy: each
   [Unresolved] carries the machine-readable kind alongside the human
   message, so reports never have to parse message strings. *)
type unres =
  | U_spill  (** slice hit an untracked stack spill (track_spills off) *)
  | U_join  (** slice crossed a join point *)
  | U_opaque  (** opaque computation in the slice *)
  | U_base_writable  (** table base resolved into writable memory *)
  | U_base_unknown  (** table base is not a constant *)
  | U_no_bound  (** no range-check guard to bound the table *)
  | U_no_targets  (** every candidate entry was infeasible *)
  | U_pointer_load  (** plain pointer load — indirect tail-call shape *)
  | U_bad_jump  (** the jump itself could not be analyzed *)

(* How the final entry count relates to the range-check guard: exact, or
   perturbed by the injected over-/under-approximation policy (after the
   known-data clamp). The graded-failure taxonomy of section 4.3. *)
type bound_cause = B_exact | B_over | B_under

type slice =
  | S_table of pre_table
  | S_pointer_load
  | S_unresolved of unres * string

type table = {
  t_jump : int;
  t_load : int;
  t_width : Insn.width;
  t_scale : int;
  t_index : Reg.t;
  t_table : int;
  t_base : int option;
  t_base_tied : bool;
  t_mult : int;
  t_count : int;
  t_entries : int list;
  t_slots : int option list;
  t_targets : int list;
  t_mater : int list;
  t_in_code : bool;
  t_bound : bound_cause;
}

let pre_table_addr p = p.p_table

(* Find the range-check guard [cmp idx, n; jcc ge ...] in the blocks
   leading to the dispatch block. *)
let find_guard (cfg : Cfg.t) dispatch_start idx =
  let check_block (b : Cfg.block) =
    let rec scan = function
      | (_, Insn.Cmp (r, Imm n), _) :: (_, Insn.Jcc (Insn.Ge, _), _) :: _
        when Reg.equal r idx && n > 0 ->
          Some n
      | _ :: rest -> scan rest
      | [] -> None
    in
    scan b.Cfg.b_insns
  in
  let rec up addr depth =
    if depth > 3 then None
    else
      match Cfg.block_at cfg addr with
      | None -> None
      | Some b -> (
          match check_block b with
          | Some n -> Some n
          | None -> (
              match Cfg.predecessors cfg addr with
              | [ p ] -> up p (depth + 1)
              | _ -> None))
  in
  up dispatch_start 0

let slice_jump bin fm (cfg : Cfg.t) jump_addr =
  match Cfg.block_containing cfg jump_addr with
  | None -> S_unresolved (U_bad_jump, "indirect jump not in any block")
  | Some block -> (
      let jump_insn =
        List.find_opt (fun (a, _, _) -> a = jump_addr) block.Cfg.b_insns
      in
      match jump_insn with
      | Some (_, Insn.IndJmp r, _) -> (
          (* Walk backwards through this block (and unique predecessors). *)
          let rec walk expr insns_rev cur_block depth =
            let expr =
              List.fold_left
                (fun e (a, i, _) ->
                  if has_unknowns e then simplify (back_subst bin fm a i e) else e)
                expr insns_rev
            in
            if not (has_unknowns expr) then Some expr
            else if depth >= 4 then None
            else
              match Cfg.predecessors cfg cur_block with
              | [ p ] -> (
                  match Cfg.block_at cfg p with
                  | Some pb -> walk expr (List.rev pb.Cfg.b_insns) p (depth + 1)
                  | None -> None)
              | _ -> Some expr (* stop: leave residual unknowns *)
          in
          let before_jump =
            List.filter (fun (a, _, _) -> a < jump_addr) block.Cfg.b_insns
          in
          let expr =
            walk (SReg r) (List.rev before_jump) block.Cfg.b_start 0
          in
          match expr with
          | None -> S_unresolved (U_join, "slice crossed a join point")
          | Some expr -> (
              let expr = simplify expr in
              if has_top expr || has_unknowns expr then
                if has_spill_top expr then
                  S_unresolved (U_spill, "untracked stack spill in slice")
                else S_unresolved (U_opaque, "opaque computation in slice")
              else
                let classify w base_sym scale idx load base =
                  match base_sym with
                  | SConst (t, prov) ->
                      let in_code =
                        match Binary.section_at bin t with
                        | Some s -> s.Section.perm.Section.execute
                        | None -> false
                      in
                      let writable =
                        match Binary.section_at bin t with
                        | Some s -> s.Section.perm.Section.write
                        | None -> true
                      in
                      if writable then
                        S_unresolved
                          (U_base_writable, "table base in writable memory")
                      else
                        S_table
                          {
                            p_jump = jump_addr;
                            p_load = load;
                            p_width = w;
                            p_scale = scale;
                            p_index = idx;
                            p_table = t;
                            p_table_prov = prov;
                            p_base = base;
                            p_mult =
                              (match base with Some _ -> 1 | None -> 1);
                            p_in_code = in_code;
                            p_guard = find_guard cfg block.Cfg.b_start idx;
                          }
                  | _ ->
                      S_unresolved (U_base_unknown, "table base is not constant")
                in
                match expr with
                | STableLoad (w, base_sym, s, idx, load) ->
                    classify w base_sym s idx load None
                | SAdd (STableLoad (w, base_sym, s, idx, load), SConst (b, bp)) ->
                    classify w base_sym s idx load (Some (b, bp))
                | SAdd (SMul (STableLoad (w, base_sym, s, idx, load), m), SConst (b, bp))
                  -> (
                    match classify w base_sym s idx load (Some (b, bp)) with
                    | S_table p -> S_table { p with p_mult = m }
                    | other -> other)
                | SMemLoad _ -> S_pointer_load
                | _ ->
                    S_unresolved
                      (U_opaque, "unrecognized jump-target expression")))
      | Some _ -> S_unresolved (U_bad_jump, "not an indirect jump")
      | None -> S_unresolved (U_bad_jump, "jump address not decoded"))

(* ------------------------------------------------------------------ *)
(* Bounds and finalization                                             *)
(* ------------------------------------------------------------------ *)

let known_data bin pres =
  let tables = List.map (fun p -> p.p_table) pres in
  let section_ends =
    List.concat_map
      (fun (s : Section.t) -> [ s.Section.vaddr; Section.end_vaddr s ])
      bin.Binary.sections
  in
  List.sort_uniq compare (tables @ section_ends)

type result = Resolved of table | Unresolved of unres * string

let finalize bin (fm : Failure_model.t) ~known_data (cfg : Cfg.t) p =
  let entry_bytes = Insn.width_bytes p.p_width in
  let count =
    match (p.p_guard, fm.bound_policy) with
    | Some n, Failure_model.Bound_guard -> Some n
    | Some n, Failure_model.Bound_under k -> Some (max 1 (n - k))
    | Some n, Failure_model.Bound_over k -> Some (n + k)
    | None, _ -> None
  in
  match count with
  | None -> Unresolved (U_no_bound, "cannot infer the table bound")
  | Some count ->
      (* Assumption 2: never let the table run into known non-table data or
         another jump table. *)
      let count =
        if fm.extend_to_known_data then
          let next_boundary =
            List.fold_left
              (fun acc d -> if d > p.p_table && d < acc then d else acc)
              max_int known_data
          in
          let cap = (next_boundary - p.p_table) / entry_bytes in
          min count (max 1 cap)
        else count
      in
      let flo = cfg.Cfg.fsym.Icfg_obj.Symbol.addr in
      let fhi = flo + cfg.Cfg.fsym.Icfg_obj.Symbol.size in
      let entries =
        List.init count (fun i ->
            try Some (Binary.read bin (p.p_table + (i * entry_bytes)) p.p_width)
            with Invalid_argument _ -> None)
      in
      let entries = List.filter_map (fun x -> x) entries in
      let raw_targets =
        List.map
          (fun x ->
            match p.p_base with
            | Some (b, _) -> b + (p.p_mult * x)
            | None -> x)
          entries
      in
      (* Sanity-screen targets that cannot be code in this function; keep
         positions so a cloned table stays index-compatible. *)
      let slots =
        List.map2
          (fun _ t -> if t >= flo && t < fhi then Some t else None)
          entries raw_targets
      in
      let targets = List.filter_map (fun x -> x) slots in
      if targets = [] then
        Unresolved (U_no_targets, "no feasible targets")
      else
        let base_tied =
          match p.p_base with
          | Some (_, bp) -> List.sort compare bp = List.sort compare p.p_table_prov
          | None -> false
        in
        Resolved
          {
            t_jump = p.p_jump;
            t_load = p.p_load;
            t_width = p.p_width;
            t_scale = p.p_scale;
            t_index = p.p_index;
            t_table = p.p_table;
            t_base = Option.map fst p.p_base;
            t_base_tied = base_tied;
            t_mult = p.p_mult;
            t_count = List.length slots;
            t_entries = entries;
            t_slots = slots;
            t_targets = targets;
            t_mater = List.sort_uniq compare p.p_table_prov;
            t_in_code = p.p_in_code;
            t_bound =
              (* Relative to the guard's entry count: the *effective* count
                 (after the policy and the known-data clamp), so a clamp
                 that undoes an injected over-approximation reads as exact. *)
              (match p.p_guard with
              | Some n when List.length slots > n -> B_over
              | Some n when List.length slots < n -> B_under
              | _ -> B_exact);
          }

let analyze bin fm ~known_data:kd (cfg : Cfg.t) =
  List.map
    (fun j ->
      match slice_jump bin fm cfg j with
      | S_table p -> (j, finalize bin fm ~known_data:kd cfg p)
      | S_pointer_load -> (j, Unresolved (U_pointer_load, "pointer-load"))
      | S_unresolved (u, msg) -> (j, Unresolved (u, msg)))
    cfg.Cfg.ind_jumps
