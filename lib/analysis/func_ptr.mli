(** Function-pointer analysis (section 5.2).

    Discovers the {e definitions} of function pointers — the rewriter never
    needs to know where an indirect call goes, only where pointers are
    created:

    - data slots carrying run-time relocations whose value is a function
      entry (PIE);
    - data words in writable data whose value matches a function entry
      (position-dependent code; inherently heuristic — a forged integer that
      happens to equal an entry address will be mis-identified, which is why
      the paper requires precision for safety);
    - address materializations in code ([movabs]/[lea]/[addis+addi]/
      [adrp+add] sequences);
    - values loaded from known pointer slots, adjusted by arithmetic and
      stored elsewhere — forward slicing that captures Go's
      [&runtime.goexit + 1] idiom (Listing 1 of the paper). *)

type site =
  | Fp_slot of { slot : int; target : int; via_reloc : bool }
      (** an 8-byte data word at [slot] holding [target] *)
  | Fp_mater of { prov : int list; target : int }
      (** code materialization; [prov] are the instruction addresses to
          patch *)
  | Fp_adjusted of { src_slot : int; target : int; adjust : int }
      (** the pointer loaded from [src_slot] flows through [+adjust] before
          being stored/used: the rewriter must compensate the slot so the
          adjusted value lands on the relocated block of [target + adjust] *)

type par = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }
(** An order-preserving map used to fan the per-CFG scans out across
    domains (same shape as {!Parse.par}; duplicated so the analysis layer
    needs no scheduler dependency). *)

val serial : par
(** [List.map] — the default. *)

val analyze :
  ?par:par ->
  ?scan_map:
    (extra:string -> (Cfg.t -> site list) -> Cfg.t list -> site list list) ->
  Icfg_obj.Binary.t ->
  Failure_model.t ->
  Cfg.t list ->
  site list
(** Two-phase analysis: a serial data-slot pass (relocation- and
    value-match slots, which also builds the slot-target map the forward
    slicer reads) followed by per-CFG code scans fanned out through [par].
    The scans read only frozen state and results are merged in CFG order,
    so the site list is independent of the mapper used. [scan_map], when
    given, replaces [par.pmap] for the per-CFG scans — the hook Parse uses
    to interpose the content-addressed rewrite cache; it must be an
    order-preserving observation-equivalent of [par.pmap]. [extra] is the
    canonical bytes of every cross-CFG input the scan closure reads
    (failure model, TOC base, entry set, slot-target map): [extra] plus a
    digest of the scanned CFG covers the scan's inputs completely, so a
    memoizer may key on exactly those two parts. *)

val dedup : site list -> site list
(** Keep the first occurrence of each distinct site: materializations are
    keyed by their full sorted provenance list plus target, slots by
    address, adjusted uses by (slot, adjust). Exposed for the dedup
    regression battery; {!analyze} already returns deduplicated sites. *)

val derived_block_targets : site list -> int list
(** Addresses that unrewritten or adjusted pointers may transfer control to
    (entry-adjusted targets); the rewriter adds them as block leaders and
    control-flow-landing candidates in every mode. *)

val pp_site : Format.formatter -> site -> unit
