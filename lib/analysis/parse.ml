open Icfg_isa
module Binary = Icfg_obj.Binary
module Symbol = Icfg_obj.Symbol
module Section = Icfg_obj.Section

type jt_site =
  | Js_resolved of Jump_table.bound_cause
  | Js_tail_call
  | Js_unresolved of Jump_table.unres * string

type func_analysis = {
  fa_sym : Symbol.t;
  fa_cfg : Cfg.t;
  fa_tables : Jump_table.table list;
  fa_tail_jumps : int list;
  fa_jt_sites : (int * jt_site) list;
  fa_instrumentable : bool;
  fa_fail_reason : string option;
  fa_liveness : Liveness.t;
}

type t = {
  bin : Binary.t;
  fm : Failure_model.t;
  funcs : func_analysis list;
  fptrs : Func_ptr.site list;
  pointer_targets : int list;
}

(* Do the bytes of [lo, hi) decode as pure nop padding? *)
let nop_only bin lo hi =
  let rec go a =
    if a >= hi then true
    else
      match Binary.decode_at bin a with
      | Insn.Nop, len -> go (a + len)
      | _ -> false
      | exception Invalid_argument _ -> false
  in
  go lo

(* SRBI-era tail-call heuristic: frame-teardown instructions appear right
   before the indirect jump. *)
let teardown_before_jump (cfg : Cfg.t) jump =
  match Cfg.block_containing cfg jump with
  | None -> false
  | Some b ->
      List.exists
        (fun (a, insn, _) ->
          a < jump && (match insn with Insn.AddSp n -> n > 0 | _ -> false))
        b.Cfg.b_insns

let analyze_function bin fm (sym : Symbol.t) =
  (* Pass 1: initial CFG and jump-table slices. *)
  let cfg0 = Cfg.build bin sym in
  let slices = List.map (fun j -> (j, Jump_table.slice_jump bin fm cfg0 j)) cfg0.Cfg.ind_jumps in
  let pres =
    List.filter_map
      (fun (_, s) -> match s with Jump_table.S_table p -> Some p | _ -> None)
      slices
  in
  (cfg0, slices, pres)

let finalize_function bin (fm : Failure_model.t) ~known_data fptr_targets
    ((sym : Symbol.t), (cfg0 : Cfg.t), slices) =
  let results =
    List.map
      (fun (j, s) ->
        match s with
        | Jump_table.S_table p ->
            (j, Jump_table.finalize bin fm ~known_data cfg0 p)
        | Jump_table.S_pointer_load ->
            (j, Jump_table.Unresolved (Jump_table.U_pointer_load, "pointer-load"))
        | Jump_table.S_unresolved (u, m) -> (j, Jump_table.Unresolved (u, m)))
      slices
  in
  let tables =
    List.filter_map
      (fun (_, r) ->
        match r with Jump_table.Resolved t -> Some t | _ -> None)
      results
  in
  let unresolved =
    List.filter_map
      (fun (j, r) ->
        match r with Jump_table.Unresolved (u, m) -> Some (j, (u, m)) | _ -> None)
      results
  in
  let jump_table_edges =
    List.map (fun (t : Jump_table.table) -> (t.t_jump, t.t_targets)) tables
  in
  let extra_targets =
    List.filter
      (fun a -> a >= sym.Symbol.addr && a < sym.Symbol.addr + sym.Symbol.size)
      fptr_targets
  in
  let cfg1 = Cfg.build ~extra_targets ~jump_table_edges bin sym in
  (* Classify unresolved jumps. *)
  let table_ranges =
    List.map
      (fun (t : Jump_table.table) ->
        ( t.Jump_table.t_table,
          t.Jump_table.t_table
          + (t.Jump_table.t_count * Insn.width_bytes t.Jump_table.t_width) ))
      (List.filter (fun (t : Jump_table.table) -> t.Jump_table.t_in_code) tables)
  in
  let gap_is_benign (lo, hi) =
    (* Known in-code table data is not a gap; nop padding is benign. *)
    List.exists (fun (tlo, thi) -> lo >= tlo && hi <= thi) table_ranges
    || nop_only bin lo hi
  in
  let tail_jumps, fail_reason =
    if unresolved = [] then ([], None)
    else if fm.layout_tail_call_heuristic then
      if List.for_all gap_is_benign (Cfg.gaps cfg1) then
        (List.map fst unresolved, None)
      else
        ( [],
          Some (snd (snd (List.hd unresolved)) ^ " (function has code gaps)") )
    else
      (* Baseline heuristic: frame tear-down right before the jump. *)
      let tails, fails =
        List.partition (fun (j, _) -> teardown_before_jump cfg1 j) unresolved
      in
      if fails = [] then (List.map fst tails, None)
      else ([], Some (snd (snd (List.hd fails))))
  in
  let instrumentable = fail_reason = None in
  (* Per-site outcome record for coverage attribution: every indirect jump
     resolves to a table (with its bound grading), is accepted as a tail
     call, or stays unresolved with its typed cause. *)
  let jt_sites =
    List.map
      (fun (j, r) ->
        match r with
        | Jump_table.Resolved t -> (j, Js_resolved t.Jump_table.t_bound)
        | Jump_table.Unresolved (u, m) ->
            if List.mem j tail_jumps then (j, Js_tail_call)
            else (j, Js_unresolved (u, m)))
      results
  in
  {
    fa_sym = sym;
    fa_cfg = cfg1;
    fa_tables = tables;
    fa_tail_jumps = tail_jumps;
    fa_jt_sites = jt_sites;
    fa_instrumentable = instrumentable;
    fa_fail_reason = fail_reason;
    fa_liveness = Liveness.analyze cfg1;
  }

type par = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

let serial = { pmap = List.map }

(* Observability hooks injected by the caller (the core library's Trace sits
   above this one, so it cannot be named here — same inversion as [par]).
   The default probe is pass-through, so unprobed parses cost nothing. *)
type probe = {
  pspan : 'a. string -> (unit -> 'a) -> 'a;
  pcount : string -> int -> unit;
}

let no_probe = { pspan = (fun _ f -> f ()); pcount = (fun _ _ -> ()) }

(* Memoizing mapper injected by the caller (the content-addressed cache
   lives in the core library, above this one — same inversion as [par] and
   [probe]). [mmap ~stage ~key f xs] must be observation-equivalent to
   [par.pmap f xs] whenever [f] is a pure function of what [key] digests. *)
type memo = {
  mmap :
    'a 'b.
    stage:string -> key:('a -> string) -> ('a -> 'b) -> 'a list -> 'b list;
}

(* ------------------------------------------------------------------ *)
(* Cache keys (computed only when a [memo] is injected)                *)
(* ------------------------------------------------------------------ *)

(* Canonical bytes of a structural value; [No_sharing] so equal values
   digest equally regardless of sharing history. *)
let mdig v = Marshal.to_string v [ Marshal.No_sharing ]

(* Injective (length-prefixed) join of key parts. *)
let kjoin parts =
  let b = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Buffer.contents b

(* Whole-binary context, split into per-section digests compared
   piecewise: each stage's key mixes in only the digests of what that
   stage actually reads, so an edit invalidates the stages that depend
   on it and nothing else.

   - [cd_common]: arch/ABI facts, the failure model, the nameless symbol
     map (addresses/sizes/kinds — what CFG building and entry detection
     consume), per-section metadata, and the text bytes before the first
     function. Read by every per-function text stage.
   - [cd_eh]: the eh_frame tables ([Cfg.build] reads landing pads).
   - [cd_data]: every non-text section's bytes. Only jump-table
     finalization dereferences data words, so a data-only edit costs the
     finalize stage and keeps every other text-stage hit.

   Symbol {e names} are deliberately excluded from [cd_common]: no
   per-function analysis of function [f] reads another function's name,
   and [f]'s own name is already in its per-function key — so renaming
   one symbol costs exactly that function's entries instead of flushing
   the store. Relocations are excluded entirely: their only cached
   consumers are the function-pointer scans, whose keys digest the
   reloc-derived slot-target map directly (the [extra] computed inside
   {!Func_ptr.analyze}). The binary's [name] is excluded too — renaming
   a file must not invalidate its entries.

   Each digest is collapsed to 16 bytes here: the raw marshals can be
   tens of MiB for bulk-data binaries, and these strings are copied into
   every per-function key of every stage — digesting once per parse
   keeps key construction O(function size), not O(binary size). *)
type context_digests = {
  cd_common : string;
  cd_eh : string;
  cd_data : string;
}

let context_digests bin fm syms =
  let text = Binary.text bin in
  let first_func =
    List.fold_left
      (fun acc (s : Symbol.t) -> min acc s.Symbol.addr)
      (Section.end_vaddr text) syms
  in
  let head_len = max 0 (first_func - text.Section.vaddr) in
  let head = Bytes.sub_string text.Section.data 0 head_len in
  let section_meta =
    List.map
      (fun (s : Section.t) ->
        ( s.Section.name,
          s.Section.vaddr,
          s.Section.perm,
          s.Section.loaded,
          Bytes.length s.Section.data ))
      bin.Binary.sections
  in
  let nameless_symbols =
    List.map
      (fun (s : Symbol.t) ->
        (s.Symbol.addr, s.Symbol.size, s.Symbol.kind, s.Symbol.global, s.Symbol.version))
      bin.Binary.symbols
  in
  let data_bodies =
    List.filter_map
      (fun (s : Section.t) ->
        if s.Section.name = text.Section.name then None
        else Some (s.Section.name, Bytes.to_string s.Section.data))
      bin.Binary.sections
  in
  {
    cd_common =
      Digest.string
        (mdig
           ( bin.Binary.arch,
             bin.Binary.pie,
             bin.Binary.entry,
             bin.Binary.toc_base,
             bin.Binary.dynsyms,
             bin.Binary.features,
             fm,
             nameless_symbols,
             section_meta,
             head ));
    cd_eh = Digest.string (mdig bin.Binary.eh_frame);
    cd_data = Digest.string (mdig data_bodies);
  }

(* A function's content slice: its text bytes extended to the next
   function start (clamped to the text section), so the padding bytes that
   gap classification and trampoline-region discovery read are part of the
   owning function's key. *)
let func_slices bin syms =
  let text = Binary.text bin in
  let tlo = text.Section.vaddr in
  let thi = Section.end_vaddr text in
  let starts =
    List.sort_uniq compare (List.map (fun (s : Symbol.t) -> s.Symbol.addr) syms)
  in
  let next = Hashtbl.create 64 in
  let rec link = function
    | a :: (b :: _ as rest) ->
        Hashtbl.replace next a b;
        link rest
    | _ -> ()
  in
  link starts;
  fun (sym : Symbol.t) ->
    let lo = max tlo (min thi sym.Symbol.addr) in
    let stop =
      match Hashtbl.find_opt next sym.Symbol.addr with
      | Some nxt -> nxt
      | None -> thi
    in
    let hi = max lo (min thi (max stop (sym.Symbol.addr + sym.Symbol.size))) in
    Bytes.sub_string text.Section.data (lo - tlo) (hi - lo)

let parse ?(fm = Failure_model.ours) ?(par = serial) ?(probe = no_probe) ?memo
    bin =
  probe.pspan "parse" @@ fun () ->
  let syms = Binary.func_symbols bin in
  (* Key machinery is forced only when a memo is injected, so the default
     path costs (and does) exactly what it did before memoization. *)
  let keys =
    lazy
      (let cd = context_digests bin fm syms in
       let slice = func_slices bin syms in
       fun pieces (sym : Symbol.t) ->
         kjoin
           (pieces cd
           @ [
               mdig (sym.Symbol.addr, sym.Symbol.size, sym.Symbol.name);
               slice sym;
             ]))
  in
  (* [pieces] selects which context digests this stage's key mixes in —
     the piecewise comparison that keeps unrelated edits from flushing
     the stage. *)
  let fkey pieces sym = (Lazy.force keys) pieces sym in
  let mmap ~stage ~key f l =
    match memo with None -> par.pmap f l | Some m -> m.mmap ~stage ~key f l
  in
  (* The per-CFG function-pointer scans are keyed on exactly their
     inputs: the scanned CFG's content plus the [extra] digest
     {!Func_ptr.analyze} computes from its frozen cross-CFG state
     (failure model, TOC base, entry set, slot-target map). No context
     digest is needed — everything the scan reads is in those two
     parts. *)
  let scan_map stage =
    Option.map
      (fun m ~extra scan cfgs ->
        m.mmap ~stage
          ~key:(fun (cfg : Cfg.t) -> kjoin [ extra; mdig cfg ])
          scan cfgs)
      memo
  in
  (* Pass 1 over every function: slices for global known-data collection.
     Per-function analysis only reads the (immutable) binary, so both
     per-function passes fan out through [par]. *)
  let pass1 =
    probe.pspan "pass1" (fun () ->
        mmap ~stage:"parse/pass1"
          ~key:(fkey (fun cd -> [ cd.cd_common; cd.cd_eh ]))
          (fun sym ->
            let cfg0, slices, pres = analyze_function bin fm sym in
            ((sym, cfg0, slices), pres))
          syms)
  in
  let all_pres = List.concat_map snd pass1 in
  let known_data =
    probe.pspan "known-data" (fun () -> Jump_table.known_data bin all_pres)
  in
  (* Function pointers need CFGs; use the pass-1 CFGs (pointer creation
     sites live in code reachable without jump-table edges, and case-body
     sites are found after the final CFG rebuild below if needed). The
     per-CFG scans shard through the same injected mapper as the
     per-function passes; only the data-slot pass stays serial. *)
  let fpar = { Func_ptr.pmap = par.pmap } in
  let cfg0s = List.map (fun ((_, c, _), _) -> c) pass1 in
  let fptrs =
    probe.pspan "func-ptr" (fun () ->
        Func_ptr.analyze ~par:fpar
          ?scan_map:(scan_map "parse/fptr")
          bin fm cfg0s)
  in
  let pointer_targets = Func_ptr.derived_block_targets fptrs in
  (* Finalization also reads the cross-function results of round 1 and —
     alone among the text stages — dereferences data words (resolved
     table entries), so its key adds [round1] and [cd_data]. *)
  let round1 = lazy (mdig (known_data, pointer_targets)) in
  let funcs =
    probe.pspan "finalize" (fun () ->
        mmap ~stage:"parse/finalize"
          ~key:(fun ((sym, _, _), _) ->
            fkey
              (fun cd ->
                [ cd.cd_common; cd.cd_eh; cd.cd_data; Lazy.force round1 ])
              sym)
          (fun ((sym, cfg0, slices), _) ->
            finalize_function bin fm ~known_data pointer_targets
              (sym, cfg0, slices))
          pass1)
  in
  (* Second function-pointer pass over the final CFGs (covers pointer
     materializations inside switch-case blocks). The per-CFG keys digest
     the finalized CFGs themselves, which already embed every round-1
     influence (jump-table edges, pointer-target leaders) — so no extra
     round-1 digest is needed, and an unchanged CFG hits even when a
     distant function's analysis moved. *)
  let fptrs =
    probe.pspan "func-ptr-2" (fun () ->
        Func_ptr.analyze ~par:fpar
          ?scan_map:(scan_map "parse/fptr2")
          bin fm
          (List.map (fun f -> f.fa_cfg) funcs))
  in
  let pointer_targets = Func_ptr.derived_block_targets fptrs in
  let t = { bin; fm; funcs; fptrs; pointer_targets } in
  probe.pcount "parse/funcs" (List.length t.funcs);
  probe.pcount "parse/instrumentable"
    (List.length (List.filter (fun f -> f.fa_instrumentable) t.funcs));
  probe.pcount "parse/jump-tables"
    (List.fold_left (fun n f -> n + List.length f.fa_tables) 0 t.funcs);
  probe.pcount "parse/tail-jumps"
    (List.fold_left (fun n f -> n + List.length f.fa_tail_jumps) 0 t.funcs);
  probe.pcount "parse/known-data-addrs" (List.length known_data);
  probe.pcount "parse/fptr-sites" (List.length t.fptrs);
  probe.pcount "parse/pointer-targets" (List.length t.pointer_targets);
  t

let func t name =
  List.find_opt (fun f -> f.fa_sym.Symbol.name = name) t.funcs

let func_at t addr =
  List.find_opt
    (fun f ->
      addr >= f.fa_sym.Symbol.addr
      && addr < f.fa_sym.Symbol.addr + f.fa_sym.Symbol.size)
    t.funcs

let instrumentable_count t =
  List.length (List.filter (fun f -> f.fa_instrumentable) t.funcs)

let total_funcs t = List.length t.funcs

let coverage t =
  if t.funcs = [] then 1.0
  else float_of_int (instrumentable_count t) /. float_of_int (total_funcs t)

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d/%d functions instrumentable (%.2f%%), %d fptr sites@."
    t.bin.Binary.name (instrumentable_count t) (total_funcs t)
    (100. *. coverage t)
    (List.length t.fptrs);
  List.iter
    (fun f ->
      match f.fa_fail_reason with
      | Some r ->
          Format.fprintf ppf "  uninstrumentable %s: %s@." f.fa_sym.Symbol.name r
      | None -> ())
    t.funcs
