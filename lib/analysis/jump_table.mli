(** Jump-table analysis: backward slicing from indirect jumps (section 5.1).

    The slicer walks backwards from an indirect jump, building a symbolic
    expression for the jump target. Recognized shapes are:

    - [mem64(T + 8*idx)] — absolute entries (ppc64le, and writable data
      dispatch, which is rejected as unresolvable);
    - [T + mem32(T + 4*idx)] — table-relative entries (x86-64);
    - [B + 4*mem{8,16}(T + s*idx)] — narrow, code-base-relative entries
      (aarch64).

    Value spills through the stack are followed only when the failure model
    enables [track_spills]; the table bound comes from the preceding
    range-check guard or from the injected over/under-approximation policy,
    with extension trimmed at known non-table data (Assumption 2). *)

type unres =
  | U_spill  (** slice hit a stack value spilled while [track_spills] is off *)
  | U_join  (** slice crossed a CFG join point *)
  | U_opaque  (** opaque or unrecognized computation in the slice *)
  | U_base_writable  (** table base points into writable memory *)
  | U_base_unknown  (** table base is not a constant *)
  | U_no_bound  (** no range-check guard found, table bound unknown *)
  | U_no_targets  (** bound applied but no entry yields a feasible target *)
  | U_pointer_load  (** single pointer load — indirect tail-call shape *)
  | U_bad_jump  (** not an indirect jump / not decoded / not in a block *)

(** Why slicing or finalization failed, for coverage attribution. *)

type bound_cause =
  | B_exact  (** effective entry count matches the guard *)
  | B_over  (** effective count exceeds the guard (wasted clone space) *)
  | B_under  (** effective count below the guard (lost coverage) *)

(** How the applied bound relates to the range-check guard's entry count
    (section 4.3's graded-failure axis for jump tables). *)

type table = {
  t_jump : int;  (** address of the indirect jump *)
  t_load : int;  (** address of the table-read instruction *)
  t_width : Icfg_isa.Insn.width;
  t_scale : int;  (** byte stride used by the table read *)
  t_index : Icfg_isa.Reg.t;  (** index register *)
  t_table : int;  (** table start address *)
  t_base : int option;  (** [None] when entries are absolute *)
  t_base_tied : bool;
      (** the tar() base is the same value as the table address (x86-64
          idiom), so retargeting the table retargets the base *)
  t_mult : int;  (** target = base + mult * entry *)
  t_count : int;
  t_entries : int list;  (** raw entry values *)
  t_slots : int option list;
      (** per-entry feasible target, positionally ([None] = infeasible
          over-approximated entry; a clone writes a zero there) *)
  t_targets : int list;  (** feasible targets, in entry order *)
  t_mater : int list;
      (** addresses of the instructions that materialize the table address
          (patched by jump-table cloning) *)
  t_in_code : bool;  (** the table lives in an executable section *)
  t_bound : bound_cause;
      (** effective count vs the guard, after policy and known-data clamp *)
}

type slice =
  | S_table of pre_table  (** recognized dispatch; bound not yet applied *)
  | S_pointer_load  (** a single pointer load — indirect tail-call shape *)
  | S_unresolved of unres * string
      (** slicing failed: typed cause plus human-readable message *)

and pre_table

val slice_jump : Icfg_obj.Binary.t -> Failure_model.t -> Cfg.t -> int -> slice
(** Slice one indirect jump of the function. *)

val pre_table_addr : pre_table -> int

val known_data :
  Icfg_obj.Binary.t -> pre_table list -> int list
(** Sorted addresses of known non-jump-table data and other table starts,
    used to trim over-approximated bounds. *)

type result =
  | Resolved of table
  | Unresolved of unres * string

val finalize :
  Icfg_obj.Binary.t ->
  Failure_model.t ->
  known_data:int list ->
  Cfg.t ->
  pre_table ->
  result
(** Apply the bound policy, read entries, compute and sanity-trim targets. *)

val analyze :
  Icfg_obj.Binary.t ->
  Failure_model.t ->
  known_data:int list ->
  Cfg.t ->
  (int * result) list
(** Slice and finalize every indirect jump of the function; pointer loads
    surface as [Unresolved (U_pointer_load, _)]. *)
