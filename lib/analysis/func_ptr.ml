open Icfg_isa
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Symbol = Icfg_obj.Symbol
module Reloc = Icfg_obj.Reloc

type site =
  | Fp_slot of { slot : int; target : int; via_reloc : bool }
  | Fp_mater of { prov : int list; target : int }
  | Fp_adjusted of { src_slot : int; target : int; adjust : int }

let pp_site ppf = function
  | Fp_slot { slot; target; via_reloc } ->
      Format.fprintf ppf "slot 0x%x -> 0x%x%s" slot target
        (if via_reloc then " (reloc)" else "")
  | Fp_mater { prov; target } ->
      Format.fprintf ppf "mater [%s] -> 0x%x"
        (String.concat "," (List.map (Printf.sprintf "0x%x") prov))
        target
  | Fp_adjusted { src_slot; target; adjust } ->
      Format.fprintf ppf "adjusted slot 0x%x -> 0x%x%+d" src_slot target adjust

(* A value is "a function entry" if it exactly matches a function symbol's
   start address. *)
let entry_set bin =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Symbol.t) -> if Symbol.is_func s then Hashtbl.replace tbl s.addr ())
    bin.Binary.symbols;
  tbl

let is_entry entries v = Hashtbl.mem entries v

(* ------------------------------------------------------------------ *)
(* Data-resident pointers                                              *)
(* ------------------------------------------------------------------ *)

let reloc_slots bin entries =
  List.filter_map
    (fun (r : Reloc.t) ->
      match r.kind with
      | Reloc.R_relative when is_entry entries r.addend ->
          Some (Fp_slot { slot = r.offset; target = r.addend; via_reloc = true })
      | Reloc.R_relative | Reloc.R_link _ -> None)
    bin.Binary.relocs

let value_match_slots bin entries =
  (* Only writable data is scanned: read-only metadata sections (e.g. the
     Go function table) hold code addresses that are not function
     pointers. *)
  let reloc_offsets =
    List.filter_map
      (fun (r : Reloc.t) -> if Reloc.is_runtime r then Some r.offset else None)
      bin.Binary.relocs
  in
  let relocated = Hashtbl.create 16 in
  List.iter (fun o -> Hashtbl.replace relocated o ()) reloc_offsets;
  List.concat_map
    (fun (s : Section.t) ->
      if not (s.Section.perm.Section.write && s.Section.loaded) then []
      else if s.Section.name = ".bigdata" then []
      else
        let n = Section.size s / 8 in
        List.filter_map
          (fun i ->
            let slot = s.Section.vaddr + (8 * i) in
            if Hashtbl.mem relocated slot then None
            else
              let v = Binary.read64 bin slot in
              if is_entry entries v then
                Some (Fp_slot { slot; target = v; via_reloc = false })
              else None)
          (List.init n (fun i -> i)))
    bin.Binary.sections

(* ------------------------------------------------------------------ *)
(* Code-resident pointers and forward slicing                          *)
(* ------------------------------------------------------------------ *)

type fval =
  | Fconst of int * int list  (** known constant with provenance *)
  | Fptr of int * int * int  (** (src_slot, target, adjust) *)
  | Funknown

let fp_scan_block bin (fm : Failure_model.t) entries slot_targets
    (b : Cfg.block) =
  let env : (int, fval) Hashtbl.t = Hashtbl.create 8 in
  let getv r = Option.value ~default:Funknown (Hashtbl.find_opt env (Reg.index r)) in
  let setv r v = Hashtbl.replace env (Reg.index r) v in
  let sites = ref [] in
  let emit s = sites := s :: !sites in
  let note_const_use v prov =
    if is_entry entries v && prov <> [] then
      emit (Fp_mater { prov; target = v })
  in
  let toc = bin.Binary.toc_base in
  List.iter
    (fun (addr, insn, _len) ->
      match (insn : Insn.t) with
      | Mov (r, Imm n) -> setv r (Fconst (n, [ addr ]))
      | Mov (rd, Reg rs) -> setv rd (getv rs)
      | Movabs (r, v) -> setv r (Fconst (v, [ addr ]))
      | Lea (r, d) -> setv r (Fconst (addr + d, [ addr ]))
      | Adrp (r, d) -> setv r (Fconst ((addr land lnot 4095) + d, [ addr ]))
      | Addis (rd, rs, hi) ->
          if Reg.equal rs Reg.toc && toc <> 0 then
            setv rd (Fconst (toc + (hi lsl 16), [ addr ]))
          else (
            (match getv rs with
            | Fconst (v, p) -> setv rd (Fconst (v + (hi lsl 16), addr :: p))
            | _ -> setv rd Funknown))
      | Movhi (r, hi) -> setv r (Fconst (hi lsl 16, [ addr ]))
      | Orlo (r, lo) -> (
          match getv r with
          | Fconst (v, p) -> setv r (Fconst (v lor (lo land 0xffff), addr :: p))
          | _ -> setv r Funknown)
      | Add (r, Imm n) -> (
          match getv r with
          | Fconst (v, p) -> setv r (Fconst (v + n, addr :: p))
          | Fptr (src, tgt, adj) when fm.forward_slice_fptrs ->
              setv r (Fptr (src, tgt, adj + n))
          | _ -> setv r Funknown)
      | Add (r, Reg _) | Sub (r, _) | Mul (r, _) | And_ (r, _) | Or_ (r, _)
      | Xor (r, _) | Shl (r, _) | Shr (r, _) ->
          setv r Funknown
      | Load (W64, rd, BReg rb, d) -> (
          match getv rb with
          | Fconst (a, _) -> (
              match Hashtbl.find_opt slot_targets (a + d) with
              | Some target when fm.forward_slice_fptrs ->
                  setv rd (Fptr (a + d, target, 0))
              | _ -> setv rd Funknown)
          | _ -> setv rd Funknown)
      | Load (_, rd, _, _) | LoadIdx (_, rd, _, _, _) -> setv rd Funknown
      | Store (W64, BReg rb, d, rs) -> (
          (match getv rs with
          | Fconst (v, p) -> note_const_use v p
          | Fptr (src, tgt, adj) when adj <> 0 ->
              emit (Fp_adjusted { src_slot = src; target = tgt; adjust = adj });
              ignore (rb, d)
          | Fptr _ | Funknown -> ()))
      | Store (_, _, _, rs) -> (
          match getv rs with
          | Fconst (v, p) -> note_const_use v p
          | Fptr (src, tgt, adj) when adj <> 0 ->
              emit (Fp_adjusted { src_slot = src; target = tgt; adjust = adj })
          | _ -> ())
      | IndCall r | IndJmp r -> (
          match getv r with
          | Fconst (v, p) -> note_const_use v p
          | Fptr (src, tgt, adj) when adj <> 0 ->
              emit (Fp_adjusted { src_slot = src; target = tgt; adjust = adj })
          | _ -> ())
      | Out r | Mtlr r | Mttar r -> (
          match getv r with Fconst (v, p) -> note_const_use v p | _ -> ())
      | Mflr r -> setv r Funknown
      | Call _ | IndCallMem _ | CallRt _ ->
          (* calls clobber caller-saved state *)
          List.iter (fun r -> setv r Funknown) (Reg.arg_regs @ [ Reg.ret ])
      | Nop | Halt | Trap | Illegal | Cmp _ | AddSp _ | Jmp _ | Jcc _ | Ret
      | Throw | Btar ->
          ())
    b.Cfg.b_insns;
  (* Any register still holding a function-entry constant at the block end
     is a materialized pointer (it escaped into the next block or a call). *)
  Hashtbl.iter
    (fun _ v -> match v with Fconst (c, p) -> note_const_use c p | _ -> ())
    env;
  !sites

(* Deduplicate materializations by provenance, adjusted uses by slot. A
   materialization's identity is the full (order-insensitive) provenance
   list plus its target: keying by the provenance sum and length collides
   distinct sites (e.g. [0x10;0x30] vs [0x20;0x20]) and silently drops a
   rewrite site in func-ptr mode. *)
let dedup sites =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      let key =
        match s with
        | Fp_slot { slot; _ } -> `Slot slot
        | Fp_mater { prov; target } -> `Mater (List.sort compare prov, target)
        | Fp_adjusted { src_slot; adjust; _ } -> `Adjusted (src_slot, adjust)
      in
      if Hashtbl.mem seen key then false
      else (
        Hashtbl.replace seen key ();
        true))
    sites

type par = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

let serial = { pmap = List.map }

(* Serial pass: data-resident slots, which double as the slot-target map
   the forward slicer consults. Everything the per-CFG scan reads — the
   binary, the entry set and [slot_targets] — is frozen before the fan-out,
   and the scan of one CFG touches no other CFG's state, so [analyze] can
   shard the scans across domains and merge in CFG order. *)
let data_slot_pass bin (fm : Failure_model.t) entries =
  let data_sites =
    (if fm.reloc_fptrs then reloc_slots bin entries else [])
    @ (if fm.value_match_fptrs && not bin.Binary.pie then
         value_match_slots bin entries
       else [])
  in
  let slot_targets = Hashtbl.create 16 in
  List.iter
    (function
      | Fp_slot { slot; target; _ } -> Hashtbl.replace slot_targets slot target
      | Fp_mater _ | Fp_adjusted _ -> ())
    data_sites;
  (data_sites, slot_targets)

let analyze ?(par = serial) ?scan_map bin (fm : Failure_model.t)
    (cfgs : Cfg.t list) =
  let entries = entry_set bin in
  let data_sites, slot_targets = data_slot_pass bin fm entries in
  (* Per-CFG scans fan out through the injected mapper; the mapper is
     order-preserving, so concatenating per-CFG results reproduces the
     serial [List.concat_map] site order exactly, and dedup (which keeps
     first occurrences) is schedule-independent. [scan_map] lets a caller
     interpose a memoizing mapper (Parse threads the rewrite cache through
     here); it must be observation-equivalent to [par.pmap]. *)
  let scan cfg =
    List.concat_map
      (fun b -> fp_scan_block bin fm entries slot_targets b)
      cfg.Cfg.blocks
  in
  let per_cfg =
    match scan_map with
    | Some m ->
        (* Canonical bytes of exactly the frozen cross-CFG state a scan
           reads besides the CFG itself: the failure model, the TOC base,
           the entry set and the slot-target map (tables folded to sorted
           lists so the digest is independent of insertion order). A
           memoizer combining this with the scanned CFG's content has
           covered every input of [scan]. *)
        let extra =
          Marshal.to_string
            ( fm,
              bin.Binary.toc_base,
              List.sort compare
                (Hashtbl.fold (fun a () acc -> a :: acc) entries []),
              List.sort compare
                (Hashtbl.fold (fun s t acc -> (s, t) :: acc) slot_targets []) )
            [ Marshal.No_sharing ]
        in
        m ~extra scan cfgs
    | None -> par.pmap scan cfgs
  in
  dedup (data_sites @ List.concat per_cfg)

let derived_block_targets sites =
  List.filter_map
    (function
      | Fp_adjusted { target; adjust; _ } -> Some (target + adjust)
      | Fp_slot _ | Fp_mater _ -> None)
    sites
  |> List.sort_uniq compare
