(** Whole-binary parsing: the driver that produces everything the rewriter
    consumes.

    Per function: a CFG built by traversal, jump-table analysis results,
    indirect-tail-call classification via the function-layout gap heuristic
    (section 5.1), instrumentability, and register liveness. Per binary:
    function-pointer sites and the pointer-derived block targets that every
    rewriting mode must treat as potential control-flow landing points. *)

type jt_site =
  | Js_resolved of Jump_table.bound_cause
      (** resolved table, graded by how its bound relates to the guard *)
  | Js_tail_call  (** unresolved jump accepted as an indirect tail call *)
  | Js_unresolved of Jump_table.unres * string
      (** unresolved: typed cause plus human-readable message *)

(** Per-indirect-jump analysis outcome, for coverage attribution. *)

type func_analysis = {
  fa_sym : Icfg_obj.Symbol.t;
  fa_cfg : Cfg.t;  (** final CFG (jump-table edges and pointer targets added) *)
  fa_tables : Jump_table.table list;  (** resolved jump tables *)
  fa_tail_jumps : int list;  (** unresolved jumps classified as tail calls *)
  fa_jt_sites : (int * jt_site) list;
      (** outcome of every indirect jump, keyed by jump address *)
  fa_instrumentable : bool;
  fa_fail_reason : string option;
  fa_liveness : Liveness.t;
}

type t = {
  bin : Icfg_obj.Binary.t;
  fm : Failure_model.t;
  funcs : func_analysis list;
  fptrs : Func_ptr.site list;
  pointer_targets : int list;
      (** addresses that unrewritten pointers may reach (adjusted-entry
          targets, Listing 1) *)
}

type par = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }
(** An order-preserving map used to fan the per-function analysis passes out
    across domains. The analysis layer stays scheduler-agnostic: callers
    inject a parallel mapper (e.g. [Icfg_core.Pool.map ~jobs]); results must
    come back in input order so parsing is deterministic for any mapper. *)

val serial : par
(** [List.map] — the default. *)

type probe = {
  pspan : 'a. string -> (unit -> 'a) -> 'a;
  pcount : string -> int -> unit;
}
(** Observability hooks, injected the same way as [par] (the tracing layer
    lives above this library): [pspan name f] times [f] as a nested span,
    [pcount name n] bumps a named counter. Probes must be observation-only —
    [parse] output does not depend on them. *)

val no_probe : probe
(** Pass-through — the default. *)

type memo = {
  mmap :
    'a 'b.
    stage:string -> key:('a -> string) -> ('a -> 'b) -> 'a list -> 'b list;
}
(** A memoizing order-preserving map, injected like [par]/[probe] (the
    content-addressed cache lives in the core library, above this one).
    [mmap ~stage ~key f xs] must be observation-equivalent to
    [par.pmap f xs]; [key x] digests every input [f x] reads, so the
    memoizer may serve a stored result for an equal key. *)

val parse :
  ?fm:Failure_model.t ->
  ?par:par ->
  ?probe:probe ->
  ?memo:memo ->
  Icfg_obj.Binary.t ->
  t
(** Whole-binary parse. [par] parallelizes the two per-function passes
    (initial CFG + jump-table slicing, then finalization + liveness) and
    the per-CFG function-pointer scans ({!Func_ptr.analyze}); only the
    cross-function steps (known-data collection, the data-slot pass) stay
    serial. Output is independent of the mapper used. [probe] wraps each
    stage in a span ([pass1], [known-data], [func-ptr], [finalize],
    [func-ptr-2] under [parse]) and reports whole-binary counters
    ([parse/funcs], [parse/instrumentable], [parse/jump-tables], ...).

    [memo] memoizes the four per-function stages (stage tags
    [parse/pass1], [parse/fptr], [parse/finalize], [parse/fptr2]). The
    whole-binary context is digested per section kind and compared
    piecewise: every stage key carries the common digest (ABI facts,
    failure model, nameless symbol map, section metadata, pre-function
    text bytes) plus the eh_frame digest; only [parse/finalize] — the
    one stage that dereferences data words — adds the non-text section
    bytes and the round-1 results, so a data-only edit keeps every other
    text-stage hit and a one-symbol rename costs exactly that function's
    entries. Per-function stages additionally key on the function's
    symbol and content slice (extended to the next function start so
    padding is owned); the per-CFG pointer scans key on the scanned
    CFG's content plus the scan-input digest computed inside
    {!Func_ptr.analyze}. Without [memo] the key machinery is never even
    forced, so the default path is bit- and cost-identical to an
    unmemoized parse. *)

val func : t -> string -> func_analysis option
val func_at : t -> int -> func_analysis option
val instrumentable_count : t -> int
val total_funcs : t -> int
val coverage : t -> float
(** Fraction of functions that are instrumentable (the paper's
    instrumentation-coverage metric). *)

val pp_summary : Format.formatter -> t -> unit
