open Icfg_codegen
module Binary = Icfg_obj.Binary

type spec = {
  seed : int;
  name : string;
  langs : Binary.lang list;
  exceptions : bool;
  n_compute : int;
  n_switch : int;
  n_dispatch : int;
  n_hard_spill : int;
  n_frameless_tail : int;
  n_data_table : int;
  iters : int;
  inner : int;
  work : int;
  cases : int;
}

let default_spec =
  {
    seed = 1;
    name = "bench";
    langs = [ Binary.C ];
    exceptions = false;
    n_compute = 6;
    n_switch = 2;
    n_dispatch = 2;
    n_hard_spill = 0;
    n_frameless_tail = 0;
    n_data_table = 0;
    iters = 120;
    inner = 4;
    work = 12;
    cases = 8;
  }

let max_iters = 30000

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Out-of-range fields used to be clamped or accepted silently; a spec
   that asks for more than the VM budget allows (or a non-power-of-two
   table that the [x land (cases-1)] index would silently alias) now
   fails loudly instead of producing a subtly different program. *)
let validate spec =
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  if spec.iters < 1 || spec.iters > max_iters then
    bad "Gen.build %s: iters %d out of range [1, %d]" spec.name spec.iters
      max_iters;
  if not (is_power_of_two spec.cases) then
    bad "Gen.build %s: cases %d is not a power of two" spec.name spec.cases;
  if spec.inner < 1 then bad "Gen.build %s: inner %d < 1" spec.name spec.inner;
  if spec.work < 1 then bad "Gen.build %s: work %d < 1" spec.name spec.work;
  if spec.n_compute < 1 then
    bad "Gen.build %s: n_compute %d < 1 (the dispatch tables need a target)"
      spec.name spec.n_compute;
  List.iter
    (fun (field, v) ->
      if v < 0 then bad "Gen.build %s: %s %d < 0" spec.name field v)
    [
      ("n_switch", spec.n_switch);
      ("n_dispatch", spec.n_dispatch);
      ("n_hard_spill", spec.n_hard_spill);
      ("n_frameless_tail", spec.n_frameless_tail);
      ("n_data_table", spec.n_data_table);
    ]

let mask = 0xFFFFF

let masked e = Ir.Bin (Band, e, Int mask)

(* ------------------------------------------------------------------ *)
(* Kernel templates                                                    *)
(* ------------------------------------------------------------------ *)

let compute_body rng i work =
  let step =
    Ir.Set
      ( Lvar "acc",
        masked
          (Bin
             ( Badd,
               Bin (Bxor, Bin (Bshl, Var "acc", Int (1 + Rng.int rng 3)), Var "j"),
               Int (i + Rng.int rng 97) )) )
  in
  [
    Ir.Let ("acc", masked (Bin (Badd, Var "x", Int (i * 31))));
    Ir.For ("j", 0, work, [ step ]);
    Ir.Return (Var "acc");
  ]

let compute_func rng i work =
  Ir.func (Printf.sprintf "compute%d" i) [ "x" ] (compute_body rng i work)

let switch_func rng style i cases =
  let case k =
    [
      Ir.Return
        (masked (Bin (Badd, Bin (Bmul, Var "x", Int (k + 3)), Int (k * 7 + Rng.int rng 11))));
    ]
  in
  Ir.func
    (Printf.sprintf "switch%d" i)
    [ "x" ]
    [
      Ir.Let ("idx", Bin (Band, Var "x", Int (cases - 1)));
      Ir.Switch (style, Var "idx", Array.init cases case, [ Ir.Return (Int 0) ]);
    ]

let dispatch_func rng i ~table ~table_size =
  let const_slot = Rng.int rng table_size in
  Ir.func
    (Printf.sprintf "dispatch%d" i)
    [ "x" ]
    [
      Ir.Let ("idx", Bin (Band, Var "x", Int (table_size - 1)));
      Ir.Call (Some "a", Via_ptr (Table_elt (table, Var "idx")), [ Var "x" ]);
      Ir.Call (Some "b", Via_table (table, const_slot), [ Var "a" ]);
      Ir.Return (masked (Bin (Badd, Var "a", Var "b")));
    ]

let thrower_func i =
  Ir.func
    (Printf.sprintf "thrower%d" i)
    [ "x" ]
    [
      Ir.If
        ( Icfg_isa.Insn.Eq,
          Bin (Band, Var "x", Int 7),
          Int 0,
          [ Ir.Throw (Var "x") ],
          [] );
      Ir.Return (masked (Bin (Badd, Var "x", Int 13)));
    ]

let catcher_func i =
  Ir.func
    (Printf.sprintf "catcher%d" i)
    [ "x" ]
    [
      Ir.Let ("out", Int 0);
      Ir.Try
        ( [
            (* The throw unwinds through an indirect-call frame: exactly the
               case Dyninst-10.2's x86-64 call emulation mishandles. *)
            Ir.Call
              ( Some "r",
                Via_ptr (Func_addr (Printf.sprintf "thrower%d" i)),
                [ Var "x" ] );
            Ir.Set (Lvar "out", Var "r");
          ],
          "e",
          [ Ir.Set (Lvar "out", masked (Bin (Badd, Var "e", Int 1000))) ] );
      (* A guaranteed throw: (x lsl 3) land 7 = 0 always. *)
      Ir.Try
        ( [
            Ir.Call
              ( Some "r2",
                Via_ptr (Func_addr (Printf.sprintf "thrower%d" i)),
                [ Bin (Bshl, Var "x", Int 3) ] );
            Ir.Set (Lvar "out", masked (Bin (Badd, Var "out", Var "r2")));
          ],
          "e2",
          [
            Ir.Set
              ( Lvar "out",
                masked (Bin (Badd, Var "out", Bin (Badd, Var "e2", Int 2000))) );
          ] );
      Ir.Return (Var "out");
    ]

let tail_target_func i =
  Ir.func
    (Printf.sprintf "tail_target%d" i)
    []
    [ Ir.Return (Int (17 + (i * 3))) ]

(* A frame-less function whose only statement is an indirect tail call
   through a data slot: the construct whose unresolved jump defeats the
   frame-teardown heuristic but not the layout heuristic (section 5.1). *)
let frameless_tail_func i ~slot =
  Ir.func (Printf.sprintf "fi_tail%d" i) [] [ Ir.Tail_call (Via_ptr (Global slot)) ]

(* ------------------------------------------------------------------ *)
(* Program assembly                                                    *)
(* ------------------------------------------------------------------ *)

let driver_func rng kernels inner =
  let calls =
    List.concat
      (List.mapi
         (fun k fname ->
           let v = Printf.sprintf "v%d" k in
           [
             Ir.Call (Some v, Direct fname, [ masked (Bin (Badd, Var "acc", Int k)) ]);
             Ir.Set (Lvar "acc", masked (Bin (Badd, Var "acc", Var v)));
           ])
         kernels)
  in
  ignore rng;
  Ir.func "driver" [ "x" ]
    [
      Ir.Let ("acc", Var "x");
      Ir.For ("r", 0, inner, calls);
      Ir.Return (Var "acc");
    ]

let main_func iters =
  Ir.func "main" []
    [
      Ir.Let ("acc", Int 7);
      Ir.For
        ( "i",
          0,
          iters,
          [
            Ir.Call (Some "d", Direct "driver", [ masked (Bin (Badd, Var "acc", Var "i")) ]);
            Ir.Set (Lvar "acc", masked (Bin (Badd, Var "acc", Var "d")));
          ] );
      Ir.Print (Var "acc");
      Ir.Return (Int 0);
    ]

let build spec =
  validate spec;
  let rng = Rng.create spec.seed in
  let computes = List.init spec.n_compute (fun i -> compute_func rng i spec.work) in
  let switches =
    List.init spec.n_switch (fun i ->
        let style =
          if i < spec.n_hard_spill then Ir.Jt_spilled_base else Ir.Jt_plain
        in
        switch_func rng style i spec.cases)
  in
  let data_tables =
    List.init spec.n_data_table (fun i ->
        switch_func rng Ir.Jt_data_table (spec.n_switch + i) spec.cases)
  in
  (* Function-pointer tables over the compute kernels (power-of-two size). *)
  let table_size = 4 in
  let table_names = List.init spec.n_dispatch (fun i -> Printf.sprintf "ftbl%d" i) in
  let tables =
    List.map
      (fun t ->
        Ir.Func_table
          ( t,
            List.init table_size (fun _ ->
                Printf.sprintf "compute%d" (Rng.int rng spec.n_compute)) ))
      table_names
  in
  let dispatchers =
    List.mapi
      (fun i t -> dispatch_func rng i ~table:t ~table_size)
      table_names
  in
  let exc_funcs =
    if spec.exceptions then [ thrower_func 0; catcher_func 0 ] else []
  in
  let tail_targets = List.init 2 tail_target_func in
  let tail_slots =
    List.init spec.n_frameless_tail (fun i ->
        ( Printf.sprintf "gt%d" i,
          Printf.sprintf "tail_target%d" (Rng.int rng 2) ))
  in
  let frameless =
    List.mapi (fun i (slot, _) -> frameless_tail_func i ~slot) tail_slots
  in
  let tail_data = List.map (fun (slot, f) -> Ir.Word_addr (slot, f)) tail_slots in
  (* The driver calls a seeded sample of kernels. *)
  let kernel_names =
    List.map (fun (f : Ir.func) -> f.Ir.fname)
      (computes @ switches @ data_tables @ dispatchers
      @ (if spec.exceptions then [ catcher_func 0 ] else [])
      @ frameless)
  in
  let is_compute n = String.length n > 7 && String.sub n 0 7 = "compute" in
  let is_switch n = String.length n > 6 && String.sub n 0 6 = "switch" in
  let sample =
    (* every switch/dispatch/exception kernel (switches twice: switch
       dispatch dominates the control-flow mix of the suite), plus a few
       computes *)
    List.concat_map
      (fun n -> if is_switch n then [ n; n ] else [ n ])
      (List.filter (fun n -> not (is_compute n)) kernel_names)
    @ List.filteri (fun i _ -> i < 3) (List.filter is_compute kernel_names)
  in
  let sample = Rng.shuffle rng sample in
  let cstrings =
    [
      Ir.Cstring ("banner", spec.name ^ " synthetic benchmark");
      Ir.Cstring ("version", "1.0.2");
      Ir.Cstring ("usage", String.concat " " (List.init 24 (fun i -> Printf.sprintf "opt%d" i)));
    ]
  in
  (* Constant and working-set data: real programs are not all code, and the
     size-increase ratios of Table 3 are relative to the whole image. *)
  let data_words =
    [
      Ir.Word_array
        ("gdata", List.init (60 + (spec.work * 2)) (fun i -> i * 17));
      Ir.Word_array ("gtab2", List.init 48 (fun i -> i * 3));
    ]
  in
  let features =
    {
      Binary.no_features with
      Binary.langs = spec.langs;
      cpp_exceptions = spec.exceptions;
    }
  in
  Ir.program ~name:spec.name
    ~data:(tables @ tail_data @ cstrings @ data_words @ [ Ir.Word ("gseed", spec.seed) ])
    ~features ~main:"main"
    (computes @ switches @ data_tables @ dispatchers @ exc_funcs @ tail_targets
   @ frameless
    @ [ driver_func rng sample spec.inner; main_func spec.iters ])

(* ------------------------------------------------------------------ *)
(* Go programs                                                         *)
(* ------------------------------------------------------------------ *)

let go_spec ~seed ~name ~iters =
  {
    default_spec with
    seed;
    name;
    langs = [ Binary.Go ];
    n_switch = 0;
    n_dispatch = 2;
    iters;
  }

(* If-chain classifier: Go's compiler does not emit jump tables. *)
let go_classify_func i cases =
  let rec chain k =
    if k >= cases then [ Ir.Return (Int 0) ]
    else
      [
        Ir.If
          ( Icfg_isa.Insn.Eq,
            Var "idx",
            Int k,
            [ Ir.Return (masked (Bin (Bmul, Var "x", Int (k + 3)))) ],
            chain (k + 1) );
      ]
  in
  Ir.func
    (Printf.sprintf "classify%d" i)
    [ "x" ]
    (Ir.Let ("idx", Bin (Band, Var "x", Int (cases - 1))) :: chain 0)

let build_go ?(vtab_check = true) ?(goexit_adjust = 1) spec =
  validate spec;
  let rng = Rng.create spec.seed in
  let computes = List.init spec.n_compute (fun i -> compute_func rng i spec.work) in
  let classifies = List.init 2 (fun i -> go_classify_func i 4) in
  let goexit =
    Ir.func "runtime.goexit" []
      [ Ir.Nops 1; Ir.Return (Int 11) ]
  in
  let table_size = 4 in
  let tables =
    [
      Ir.Func_table
        ( "ftbl0",
          List.init table_size (fun _ ->
              Printf.sprintf "compute%d" (Rng.int rng spec.n_compute)) );
      Ir.Func_table
        ( "vtab",
          List.init 2 (fun _ ->
              Printf.sprintf "compute%d" (Rng.int rng spec.n_compute)) );
    ]
  in
  let dispatchers = [ dispatch_func rng 0 ~table:"ftbl0" ~table_size ] in
  (* Interface-style use: the same slot value is both called and looked up
     in the Go function table. Rewriting the slot breaks the comparison —
     why func-ptr mode is unsafe for Go binaries (section 8.2). *)
  let vtab_user =
    Ir.func "iface_call" [ "x" ]
      ([ Ir.Let ("v", Table_elt ("vtab", Bin (Band, Var "x", Int 1))) ]
      @ (if vtab_check then
           [
             Ir.Call (Some "id", Direct "runtime.findfunc", [ Var "v" ]);
             Ir.If
               ( Icfg_isa.Insn.Lt,
                 Var "id",
                 Int 0,
                 [ Ir.Print (Int (-424242)); Ir.Throw (Int (-1)) ],
                 [] );
           ]
         else [])
      @ [
          Ir.Call (Some "r", Via_ptr (Var "v"), [ Var "x" ]);
          Ir.Return (Var "r");
        ])
  in
  (* Listing 1: a pointer to goexit's entry is loaded, incremented past the
     entry nop, stored, and later called. *)
  let goexit_user =
    Ir.func "spawn" [ "x" ]
      [
        Ir.Set (Lglobal "g_exit2", Bin (Badd, Global "g_exit1", Int goexit_adjust));
        Ir.Call (Some "r", Via_ptr (Global "g_exit2"), []);
        Ir.Return (masked (Bin (Badd, Var "r", Var "x")));
      ]
  in
  let kernels =
    List.map (fun (f : Ir.func) -> f.Ir.fname)
      (classifies @ dispatchers @ [ vtab_user; goexit_user ])
    @ [ "compute0" ]
  in
  let driver =
    Ir.func "driver" [ "x" ]
      [
        Ir.Let ("acc", Var "x");
        Ir.For
          ( "r",
            0,
            spec.inner,
            List.concat
              (List.mapi
                 (fun k fname ->
                   let v = Printf.sprintf "v%d" k in
                   [
                     Ir.Call
                       (Some v, Direct fname, [ masked (Bin (Badd, Var "acc", Int k)) ]);
                     Ir.Set (Lvar "acc", masked (Bin (Badd, Var "acc", Var v)));
                   ])
                 kernels) );
        Ir.Return (Var "acc");
      ]
  in
  let main =
    Ir.func "main" []
      [
        Ir.Let ("acc", Int 3);
        Ir.For
          ( "i",
            0,
            spec.iters,
            [
              Ir.Call (Some "d", Direct "driver", [ masked (Bin (Badd, Var "acc", Var "i")) ]);
              Ir.Set (Lvar "acc", masked (Bin (Badd, Var "acc", Var "d")));
              (* Periodic GC-style stack walk. *)
              Ir.If
                ( Icfg_isa.Insn.Eq,
                  Bin (Band, Var "i", Int 63),
                  Int 0,
                  [ Ir.Go_traceback ],
                  [] );
            ] );
        Ir.Print (Var "acc");
        Ir.Return (Int 0);
      ]
  in
  let features =
    {
      Binary.no_features with
      Binary.langs = [ Binary.Go ];
      go_runtime = true;
      go_vtab = vtab_check;
    }
  in
  Ir.program ~name:spec.name
    ~data:
      (tables
      @ [ Ir.Word_addr ("g_exit1", "runtime.goexit"); Ir.Word ("g_exit2", 0) ])
    ~features ~go_functab:true ~main:"main"
    (computes @ classifies @ [ goexit ] @ dispatchers
    @ [ vtab_user; goexit_user; driver; main ])
