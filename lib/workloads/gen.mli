(** IR program generator: composable kernel templates.

    Each benchmark is a [main] driving an outer iteration loop over a
    [driver] function that calls a seeded mix of kernels:
    - compute kernels (arithmetic loops — the Fortran-ish workload),
    - switch kernels (jump tables, optionally with the spilled-base pattern
      or a writable data table),
    - dispatch kernels (indirect calls through function-pointer tables),
    - throw/catch kernels (C++ exceptions),
    - tail-call kernels (direct and frame-less indirect tail calls).

    The dynamic instruction mix (how often switch dispatch and indirect
    calls execute relative to straight-line arithmetic) is what determines
    the relative overheads of the dir/jt/func-ptr rewriting modes, mirroring
    the paper's Table 3. *)

type spec = {
  seed : int;
  name : string;
  langs : Icfg_obj.Binary.lang list;
  exceptions : bool;  (** include throw/catch kernels *)
  n_compute : int;
  n_switch : int;
  n_dispatch : int;
  n_hard_spill : int;  (** switches with a stack-spilled table base *)
  n_frameless_tail : int;  (** frame-less indirect tail calls *)
  n_data_table : int;  (** unresolvable writable-table dispatchers *)
  iters : int;  (** outer iterations (in [1, 30000]) *)
  inner : int;  (** driver-level repetitions per iteration *)
  work : int;  (** arithmetic loop length inside compute kernels *)
  cases : int;  (** jump-table size; must be a power of two *)
}

val default_spec : spec

val max_iters : int
(** Upper bound on [iters] accepted by {!validate} (30000). *)

val validate : spec -> unit
(** Raises [Invalid_argument] on out-of-range fields: [iters] outside
    [1, 30000], non-power-of-two [cases], non-positive [inner]/[work]/
    [n_compute], or any negative kernel count. Called by {!build} and
    {!build_go} — out-of-range specs fail loudly rather than being
    silently clamped into a different program. *)

val build : spec -> Icfg_codegen.Ir.program
(** Deterministic for a given [spec]. Raises [Invalid_argument] on an
    invalid spec (see {!validate}). *)

val go_spec : seed:int -> name:string -> iters:int -> spec
(** Go programs get no jump tables (Go's compiler does not emit them,
    section 8.2); [build_go] must be used instead of [build]. *)

val build_go : ?vtab_check:bool -> ?goexit_adjust:int -> spec -> Icfg_codegen.Ir.program
(** Raises [Invalid_argument] like {!build}. A Go-style program: if-chains instead of switches, a [.gopclntab]
    function table, periodic tracebacks, the [&goexit + adjust] pointer
    idiom of Listing 1, and (with [vtab_check]) interface-table slots whose
    values are both called and compared against the function table — the
    construct that makes func-ptr mode unsafe for Go binaries. *)
