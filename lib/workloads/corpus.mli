(** Seeded adversarial corpus: hundreds of spec-derived binaries across
    sizes, languages/ISAs and the shapes that separate binary rewriters in
    practice (the synthetic analogue of the thousands-of-binaries sweeps in
    "A Broad Comparative Evaluation of x86-64 Binary Rewriters").

    The whole corpus is a pure function of one corpus seed: entry specs are
    drawn serially from a single {!Rng} stream, so the same seed yields
    byte-identical programs regardless of how the builds are later fanned
    out, and distinct seeds yield distinct corpora. A fraction of entries
    are {e twins} — exact duplicates of an earlier entry — so a shared
    content-addressed cache measurably hits across binaries. *)

type shape =
  | Plain  (** suite-like mix of compute/switch/dispatch kernels *)
  | Huge_jt  (** oversized jump tables (32-128 cases) *)
  | Dense_fptr  (** dense function-pointer dispatch graphs *)
  | Starved
      (** ppc64le with a >32 MiB working set: scratch-space starvation,
          trap-trampoline pressure (the 602.gcc failure shape) *)
  | Cpp_exc  (** C++ exceptions (throw/catch through indirect frames) *)
  | Go_vtab
      (** Go runtime with vtab checks: func-ptr rewriting is unsafe *)
  | Data_table  (** writable-table dispatch: genuinely unresolvable *)

val all_shapes : shape array
(** Every shape, in the order the corpus cycles through them. *)

val shape_name : shape -> string
(** Kebab-case name (["huge-jt"], ["go-vtab"], ...). *)

type entry = {
  e_id : int;  (** position in the corpus *)
  e_shape : shape;
  e_arch : Icfg_isa.Arch.t;
  e_pie : bool;
  e_bulk : int;  (** extra zeroed working-set bytes *)
  e_go : bool;  (** built with {!Gen.build_go} *)
  e_rust : bool;  (** salt: Rust metadata flagged post-compile *)
  e_symver : bool;  (** salt: symbol versioning flagged post-compile *)
  e_spec : Gen.spec;
  e_twin_of : int option;
      (** [Some j]: exact duplicate of entry [j] (the cache-sharing probe) *)
}

val generate : seed:int -> count:int -> entry list
(** The first [count] entries of the corpus for [seed]. Deterministic;
    shapes cycle so any prefix of at least 7 entries covers every shape.
    Raises [Invalid_argument] on a negative count. *)

val build : entry -> Icfg_obj.Binary.t
(** Compile one entry (deterministic). Twins build byte-identical
    binaries. *)

val digest : Icfg_obj.Binary.t -> string
(** Hex digest of the binary's full marshalled image — the determinism
    probe the corpus property tests compare across [--jobs] values. *)
