module Binary = Icfg_obj.Binary
module Arch = Icfg_isa.Arch

type shape =
  | Plain
  | Huge_jt
  | Dense_fptr
  | Starved
  | Cpp_exc
  | Go_vtab
  | Data_table

let all_shapes =
  [| Plain; Huge_jt; Dense_fptr; Starved; Cpp_exc; Go_vtab; Data_table |]

let shape_name = function
  | Plain -> "plain"
  | Huge_jt -> "huge-jt"
  | Dense_fptr -> "dense-fptr"
  | Starved -> "starved"
  | Cpp_exc -> "cpp-exc"
  | Go_vtab -> "go-vtab"
  | Data_table -> "data-table"

type entry = {
  e_id : int;
  e_shape : shape;
  e_arch : Arch.t;
  e_pie : bool;
  e_bulk : int;
  e_go : bool;
  e_rust : bool;
  e_symver : bool;
  e_spec : Gen.spec;
  e_twin_of : int option;
}

let arches = [ Arch.X86_64; Arch.Aarch64; Arch.Ppc64le ]

(* Beyond the 32 MiB ppc64le short-branch range: the relocated code area
   lands out of reach of every scratch chunk, so an SRBI-era rewrite needs
   trap trampolines on most blocks (the 602.gcc failure). *)
let starved_bulk = 34 * 1024 * 1024

(* One fresh entry. All draws come from the single corpus stream, in a
   fixed order per shape, so the whole corpus is a pure function of the
   corpus seed. *)
let fresh rng id =
  let shape = all_shapes.(id mod Array.length all_shapes) in
  let name = Printf.sprintf "c%04d-%s" id (shape_name shape) in
  let seed = Rng.int rng 1_000_000_000 in
  let base =
    {
      Gen.default_spec with
      Gen.seed;
      name;
      inner = 2;
      iters = Rng.range rng 6 18;
      work = Rng.range rng 8 24;
      n_compute = Rng.range rng 4 7;
      n_hard_spill = 0;
      n_frameless_tail = 0;
      n_data_table = 0;
    }
  in
  let arch = Rng.pick rng arches in
  let pie = Rng.bool rng in
  let entry ?(arch = arch) ?(pie = pie) ?(bulk = 0) ?(go = false)
      ?(rust = false) ?(symver = false) spec =
    {
      e_id = id;
      e_shape = shape;
      e_arch = arch;
      e_pie = pie;
      e_bulk = bulk;
      e_go = go;
      e_rust = rust;
      e_symver = symver;
      e_spec = spec;
      e_twin_of = None;
    }
  in
  match shape with
  | Plain ->
      let spec =
        {
          base with
          Gen.n_switch = Rng.range rng 1 2;
          n_dispatch = Rng.range rng 1 2;
          n_hard_spill = Rng.int rng 2;
          n_frameless_tail = Rng.int rng 2;
        }
      in
      entry ~rust:(Rng.chance rng 0.15) ~symver:(Rng.chance rng 0.15) spec
  | Huge_jt ->
      (* Jump tables far larger than the suite's: the resolved-target sets
         and bound guards get big, and every mode that clones tables pays. *)
      entry
        {
          base with
          Gen.cases = Rng.pick rng [ 32; 64; 128 ];
          n_switch = Rng.range rng 3 5;
          n_dispatch = 1;
          iters = Rng.range rng 6 10;
        }
  | Dense_fptr ->
      (* A dense function-pointer graph: many tables over many targets
         stresses the slot/materialization scans and func-ptr mode. *)
      entry
        ~rust:(Rng.chance rng 0.15)
        {
          base with
          Gen.n_compute = Rng.range rng 8 12;
          n_dispatch = Rng.range rng 4 8;
          n_switch = Rng.int rng 2;
          iters = Rng.range rng 6 10;
        }
  | Starved ->
      (* Scratch-space starvation (always ppc64le, always huge): bulk data
         pushes .instr past the short-branch range. *)
      entry ~arch:Arch.Ppc64le ~bulk:starved_bulk
        {
          base with
          Gen.n_switch = Rng.range rng 3 4;
          n_dispatch = 2;
          n_hard_spill = 1;
          n_frameless_tail = 1;
          iters = Rng.range rng 6 10;
        }
  | Cpp_exc ->
      entry
        {
          base with
          Gen.langs = [ Binary.Cpp ];
          exceptions = true;
          n_switch = Rng.range rng 1 2;
          n_dispatch = Rng.range rng 1 2;
          iters = Rng.range rng 6 10;
        }
  | Go_vtab ->
      (* Go vtab-check binaries are always PIE (matching the docker
         analogue); func-ptr mode must not pass on these. *)
      entry ~pie:true ~go:true
        {
          base with
          Gen.langs = [ Binary.Go ];
          n_switch = 0;
          n_dispatch = 2;
          iters = Rng.range rng 8 16;
        }
  | Data_table ->
      (* Writable-table dispatch is genuinely unresolvable: ours degrades
         gracefully, all-or-nothing regeneration refuses. *)
      entry
        {
          base with
          Gen.n_data_table = Rng.range rng 1 2;
          n_switch = Rng.range rng 1 2;
          n_dispatch = 1;
          iters = Rng.range rng 6 10;
        }

let generate ~seed ~count =
  if count < 0 then invalid_arg "Corpus.generate: negative count";
  let rng = Rng.create seed in
  let prev = Array.make (max count 1) None in
  List.init count (fun id ->
      let e =
        (* Every sixth entry past the first shape cycle duplicates an
           earlier entry byte-for-byte (same spec, same name): the
           cross-binary cache-sharing probe. A fresh entry's draws are
           consumed either way so twin placement never shifts later
           entries' contents. *)
        let f = fresh rng id in
        if id >= Array.length all_shapes && id mod 6 = 3 then
          let src = Rng.int rng id in
          match prev.(src) with
          | Some s -> { s with e_id = id; e_twin_of = Some src }
          | None -> f
        else f
      in
      prev.(id) <- Some e;
      e)

let build e =
  let prog =
    if e.e_go then Gen.build_go e.e_spec else Gen.build e.e_spec
  in
  let bin, _ =
    Icfg_codegen.Compile.compile ~pie:e.e_pie ~bulk_data:e.e_bulk e.e_arch
      prog
  in
  let f = bin.Binary.features in
  {
    bin with
    Binary.features =
      {
        f with
        Binary.rust_metadata = f.Binary.rust_metadata || e.e_rust;
        symbol_versioning = f.Binary.symbol_versioning || e.e_symver;
      };
  }

let digest bin =
  Digest.to_hex (Digest.string (Marshal.to_string bin [ Marshal.No_sharing ]))
