open Icfg_isa

type aexpr =
  | Const of int
  | Addr of string
  | Diff of string * string * int
  | Diff_const of string * int * int

type item =
  | Insn of Insn.t
  | Jmp_to of string
  | Jcc_to of Insn.cond * string
  | Call_to of string
  | Lea_of of Reg.t * string
  | Adrp_of of Reg.t * string
  | Addlo_page of Reg.t * string
  | Addis_toc of Reg.t * string
  | Addlo_toc of Reg.t * string
  | Movabs_of of Reg.t * string
  | Movhi_of of Reg.t * string
  | Orlo_of of Reg.t * string
  | Jmp_abs of int
  | Jcc_abs of Insn.cond * int
  | Call_abs of int
  | Mater_const of Reg.t * int
  | Label of string
  | Align of int * [ `Nop | `Zero ]
  | Data of Insn.width * aexpr * [ `Reloc | `No_reloc ]
  | Raw of string
  | Space of int

exception Undefined_label of string

let pad_for ~at align = (align - (at mod align)) mod align

let item_size arch ~pie ~at = function
  | Jmp_abs _ -> Encode.wide_jmp_len arch
  | Jcc_abs _ -> Encode.length arch (Insn.Jcc (Eq, 0))
  | Call_abs _ -> Encode.length arch (Insn.Call 0)
  | Mater_const _ -> Mater.length arch ~pie
  | Insn i -> Encode.length arch i
  | Jmp_to _ -> Encode.wide_jmp_len arch
  | Jcc_to _ -> Encode.length arch (Insn.Jcc (Eq, 0))
  | Call_to _ -> Encode.length arch (Insn.Call 0)
  | Lea_of _ -> Encode.length arch (Insn.Lea (Reg.r0, 0))
  | Adrp_of _ | Addlo_page _ | Addis_toc _ | Addlo_toc _ ->
      if arch = Arch.X86_64 then
        raise (Encode.Not_encodable "RISC address-formation item on x86-64")
      else 4
  | Movabs_of _ ->
      if arch <> Arch.X86_64 then
        raise (Encode.Not_encodable "movabs item on a RISC flavour")
      else 10
  | Movhi_of _ | Orlo_of _ -> Encode.length arch (Insn.Movhi (Reg.r0, 0))
  | Label _ -> 0
  | Align (n, _) -> pad_for ~at n
  | Data (w, _, _) -> Insn.width_bytes w
  | Raw s -> String.length s
  | Space n -> n

type layout = { items : (item * int) list; l_base : int; l_end : int }

let layout arch ~pie ~labels ~base items =
  let addr = ref base in
  let placed =
    List.map
      (fun it ->
        let at = !addr in
        (match it with
        | Label l ->
            if Hashtbl.mem labels l then
              invalid_arg (Printf.sprintf "Asm: duplicate label %s" l);
            Hashtbl.add labels l at
        | _ -> ());
        addr := at + item_size arch ~pie ~at it;
        (it, at))
      items
  in
  { items = placed; l_base = base; l_end = !addr }

let label_exn labels l =
  match Hashtbl.find_opt labels l with
  | Some a -> a
  | None -> raise (Undefined_label l)

let eval labels = function
  | Const n -> n
  | Addr l -> label_exn labels l
  | Diff (a, b, scale) ->
      let d = label_exn labels a - label_exn labels b in
      if d mod scale <> 0 then
        invalid_arg
          (Printf.sprintf "Asm: %s - %s = %d not divisible by %d" a b d scale);
      d / scale
  | Diff_const (a, base, scale) ->
      let d = label_exn labels a - base in
      if d mod scale <> 0 then
        invalid_arg
          (Printf.sprintf "Asm: %s - 0x%x = %d not divisible by %d" a base d
             scale);
      d / scale

let check_data_range w v =
  let fits bits =
    let lim = 1 lsl (bits - 1) in
    v >= -lim && v < lim * 2
    (* accept both signed and unsigned interpretations *)
  in
  match (w : Insn.width) with
  | W8 when not (fits 8) ->
      raise
        (Encode.Not_encodable
           (Printf.sprintf "data value %d overflows 1 byte" v))
  | W16 when not (fits 16) ->
      raise
        (Encode.Not_encodable
           (Printf.sprintf "data value %d overflows 2 bytes" v))
  | W32 when not (fits 32) ->
      raise
        (Encode.Not_encodable
           (Printf.sprintf "data value %d overflows 4 bytes" v))
  | W8 | W16 | W32 | W64 -> ()

(* Encode the placed items in [items.(i0) .. items.(i1 - 1)] into [data],
   whose byte 0 is address [org]. Reads the (frozen) label table only;
   returns the segment's relocs in item order. [encode] passes the whole
   layout; the sharded encoder passes contiguous chunks, each with its own
   buffer. *)
let encode_run arch ~pie ~toc ~labels ~org data items i0 i1 =
  let base = org in
  let relocs = ref [] in
  let emit_insn at i = ignore (Encode.encode_into arch data ~pos:(at - base) i) in
  for idx = i0 to i1 - 1 do
    let it, at = items.(idx) in
    (match it with
      | Insn i -> emit_insn at i
      | Jmp_to l -> emit_insn at (Insn.Jmp (label_exn labels l - at))
      | Jcc_to (c, l) -> emit_insn at (Insn.Jcc (c, label_exn labels l - at))
      | Call_to l -> emit_insn at (Insn.Call (label_exn labels l - at))
      | Lea_of (r, l) -> emit_insn at (Insn.Lea (r, label_exn labels l - at))
      | Adrp_of (r, l) ->
          let target = label_exn labels l in
          emit_insn at
            (Insn.Adrp (r, (target land lnot 4095) - (at land lnot 4095)))
      | Addlo_page (r, l) ->
          emit_insn at (Insn.Add (r, Imm (label_exn labels l land 4095)))
      | Addis_toc (r, l) ->
          let hi, _ = Mater.split_hi_lo (label_exn labels l - toc) in
          emit_insn at (Insn.Addis (r, Reg.toc, hi))
      | Addlo_toc (r, l) ->
          let _, lo = Mater.split_hi_lo (label_exn labels l - toc) in
          emit_insn at (Insn.Add (r, Imm lo))
      | Movabs_of (r, l) -> emit_insn at (Insn.Movabs (r, label_exn labels l))
      | Movhi_of (r, l) ->
          emit_insn at (Insn.Movhi (r, label_exn labels l asr 16))
      | Orlo_of (r, l) ->
          emit_insn at (Insn.Orlo (r, label_exn labels l land 0xffff))
      | Jmp_abs target -> emit_insn at (Insn.Jmp (target - at))
      | Jcc_abs (c, target) -> emit_insn at (Insn.Jcc (c, target - at))
      | Call_abs target -> emit_insn at (Insn.Call (target - at))
      | Mater_const (r, target) ->
          let insns =
            Mater.insns arch ~pie ~toc ~at ~target ~reg:r
          in
          let pos = ref at in
          List.iter
            (fun i ->
              emit_insn !pos i;
              pos := !pos + Encode.length arch i)
            insns
      | Label _ -> ()
      | Align (n, fill) -> (
          let pad = pad_for ~at n in
          match fill with
          | `Zero -> ()
          | `Nop ->
              let nop_len = Encode.length arch Insn.Nop in
              let pos = ref (at - base) in
              while !pos + nop_len <= at - base + pad do
                ignore (Encode.encode_into arch data ~pos:!pos Insn.Nop);
                pos := !pos + nop_len
              done)
      | Data (w, expr, reloc) -> (
          let v = eval labels expr in
          check_data_range w v;
          let pos = at - base in
          (match w with
          | Insn.W8 -> Bytes.set_uint8 data pos (v land 0xff)
          | Insn.W16 -> Bytes.set_uint16_le data pos (v land 0xffff)
          | Insn.W32 -> Bytes.set_int32_le data pos (Int32.of_int v)
          | Insn.W64 -> Bytes.set_int64_le data pos (Int64.of_int v));
          match (reloc, expr) with
          | `Reloc, Addr _ when pie ->
              relocs := Icfg_obj.Reloc.relative ~offset:at ~addend:v :: !relocs
          | _ -> ())
      | Raw s -> Bytes.blit_string s 0 data (at - base) (String.length s)
      | Space _ -> ())
  done;
  List.rev !relocs

let encode arch ~pie ~toc ~labels lay =
  let items = Array.of_list lay.items in
  let data = Bytes.make (lay.l_end - lay.l_base) '\000' in
  let relocs =
    encode_run arch ~pie ~toc ~labels ~org:lay.l_base data items 0
      (Array.length items)
  in
  (data, relocs)

type par = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

let serial = { pmap = List.map }

type chunk = { c_items : (item * int) list; c_lo : int; c_hi : int }

type memo = {
  cmap :
    stage:string ->
    key:(chunk -> string) ->
    (chunk -> Bytes.t * Icfg_obj.Reloc.t list) ->
    chunk list ->
    (Bytes.t * Icfg_obj.Reloc.t list) list;
}

(* Labels an item reads through the frozen table. A chunk's encoded bytes
   depend only on its placed items and the *values* of these labels, so a
   memo key resolves them eagerly: identical layouts hit, shifted layouts
   change some resolved value and miss. *)
let item_labels = function
  | Jmp_to l
  | Jcc_to (_, l)
  | Call_to l
  | Lea_of (_, l)
  | Adrp_of (_, l)
  | Addlo_page (_, l)
  | Addis_toc (_, l)
  | Addlo_toc (_, l)
  | Movabs_of (_, l)
  | Movhi_of (_, l)
  | Orlo_of (_, l)
  | Data (_, Addr l, _)
  | Data (_, Diff_const (l, _, _), _) ->
      [ l ]
  | Data (_, Diff (a, b, _), _) -> [ a; b ]
  | Insn _ | Jmp_abs _ | Jcc_abs _ | Call_abs _ | Mater_const _ | Label _
  | Align _
  | Data (_, Const _, _)
  | Raw _ | Space _ ->
      []

let chunk_key arch ~pie ~toc ~labels ch =
  let resolved =
    List.map
      (fun (it, at) -> (it, at, List.map (label_exn labels) (item_labels it)))
      ch.c_items
  in
  Marshal.to_string
    (arch, pie, toc, ch.c_lo, ch.c_hi, resolved)
    [ Marshal.No_sharing ]

let encode_chunk arch ~pie ~toc ~labels ch =
  let citems = Array.of_list ch.c_items in
  let data = Bytes.make (ch.c_hi - ch.c_lo) '\000' in
  let relocs =
    encode_run arch ~pie ~toc ~labels ~org:ch.c_lo data citems 0
      (Array.length citems)
  in
  (data, relocs)

(* Encode an explicit chunk list against a frozen label table, blitting
   into one buffer spanning the layout. Chunks need not tile the extent:
   address ranges no chunk covers (holes a pinned layout left behind)
   stay zero-filled. Relocs concatenate in chunk (address) order. *)
let encode_chunks arch ~pie ~toc ~labels ?(par = serial) ?memo lay chunks =
  let enc = encode_chunk arch ~pie ~toc ~labels in
  let encoded =
    match memo with
    | None -> par.pmap enc chunks
    | Some m ->
        m.cmap ~stage:"encode" ~key:(chunk_key arch ~pie ~toc ~labels) enc
          chunks
  in
  let data = Bytes.make (lay.l_end - lay.l_base) '\000' in
  List.iter2
    (fun ch (d, _) ->
      Bytes.blit d 0 data (ch.c_lo - lay.l_base) (Bytes.length d))
    chunks encoded;
  (data, List.concat_map snd encoded)

(* Sharded second pass. Layout is inherently sequential (each address
   depends on every earlier item's size), but once the label table is
   frozen, encoding any item depends only on its own (item, address) pair
   and that read-only table — so the item list splits into contiguous
   chunks encoded independently, each into a private buffer sized by its
   address extent. Item addresses are contiguous by construction
   (next addr = addr + size), so chunk extents tile [l_base, l_end) and a
   serial blit reassembles the exact serial image; per-chunk reloc lists
   concatenated in chunk order reproduce the serial (item-order) reloc
   list. Nothing about the result can depend on the schedule or the chunk
   count — the battery in [test_parallel] pins this byte-for-byte.

   With [memo], each chunk's (bytes, relocs) additionally goes through the
   injected memoizer, keyed on the chunk content plus its resolved label
   values — the memoizer's cache layer decides hit/miss/parallelism. *)
let encode_sharded arch ~pie ~toc ~labels ?(par = serial) ?memo ?(chunks = 1)
    lay =
  let items = Array.of_list lay.items in
  let n = Array.length items in
  let chunks = max 1 (min chunks n) in
  match memo with
  | None when chunks <= 1 -> encode arch ~pie ~toc ~labels lay
  | _ ->
      let start k = k * n / chunks in
      let addr_of i = if i >= n then lay.l_end else snd items.(i) in
      let chs =
        List.init chunks (fun k ->
            let i0 = start k and i1 = start (k + 1) in
            {
              c_items = Array.to_list (Array.sub items i0 (i1 - i0));
              c_lo = addr_of i0;
              c_hi = addr_of i1;
            })
      in
      encode_chunks arch ~pie ~toc ~labels ~par ?memo lay chs

(* ------------------------------------------------------------------ *)
(* Pinned-address incremental layout                                   *)
(* ------------------------------------------------------------------ *)

type seg_rec = {
  sr_id : int;
  sr_digest : string;
  sr_start : int;
  sr_len : int;
}

type pinned_result = {
  p_layout : layout;
  p_recs : seg_rec list;
  p_chunks : chunk list;
  p_pinned : int;
  p_moved : int;
}

let seg_digest items =
  Digest.string (Marshal.to_string items [ Marshal.No_sharing ])

let seg_len arch ~pie ~start items =
  List.fold_left (fun at it -> at + item_size arch ~pie ~at it) start items
  - start

(* Zipr-style incremental placement: a segment whose content digest,
   recorded address and recomputed size all match its previous record is
   pinned exactly where it was; only the dirty segments are re-solved,
   first-fit into the holes the pinned extents leave (ending in the
   unbounded tail, which always accepts). Segment sizes are recomputed at
   each candidate address because [Align] items are position-dependent.

   Without [prev] every segment is dirty and first-fit against the single
   tail hole degenerates to sequential emission-order placement — bit- and
   address-identical to {!layout} over the concatenated item lists, which
   is what makes a cold pinned layout indistinguishable from the plain
   one. *)
let layout_pinned arch ~pie ~labels ~base ?(prev = []) segs =
  let prev_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace prev_tbl r.sr_id r) prev;
  let tagged =
    List.mapi (fun eidx (id, items) -> (eidx, id, items, seg_digest items)) segs
  in
  let pinned_segs, dirty_segs =
    List.partition_map
      (fun (eidx, id, items, dg) ->
        match Hashtbl.find_opt prev_tbl id with
        | Some r
          when r.sr_digest = dg && r.sr_start >= base
               && seg_len arch ~pie ~start:r.sr_start items = r.sr_len ->
            Either.Left (eidx, id, items, dg, r.sr_start, r.sr_len, true)
        | _ -> Either.Right (eidx, id, items, dg))
      tagged
  in
  (* The free holes: the complement of the pinned extents above [base],
     closed by an unbounded tail. *)
  let extents =
    List.sort compare
      (List.map (fun (_, _, _, _, s, l, _) -> (s, s + l)) pinned_segs)
  in
  let rev_holes, tail_lo =
    List.fold_left
      (fun (acc, pos) (s, e) ->
        ((if s > pos then (pos, Some s) :: acc else acc), max pos e))
      ([], base) extents
  in
  let holes = ref (List.rev ((tail_lo, None) :: rev_holes)) in
  let place items =
    let rec go acc = function
      | [] -> invalid_arg "Asm.layout_pinned: exhausted the unbounded tail"
      | (lo, hi) :: rest -> (
          let len = seg_len arch ~pie ~start:lo items in
          match hi with
          | Some h when lo + len > h -> go ((lo, hi) :: acc) rest
          | _ -> (lo, len, List.rev_append acc ((lo + len, hi) :: rest)))
    in
    let lo, len, hs = go [] !holes in
    holes := hs;
    (lo, len)
  in
  let placed_dirty =
    List.map
      (fun (eidx, id, items, dg) ->
        let start, len = place items in
        (eidx, id, items, dg, start, len, false))
      dirty_segs
  in
  (* Register labels walking the segments in address order (emission order
     breaks ties so zero-length segments keep their relative position),
     producing the placed-item runs the layout and the chunks share. *)
  let ordered =
    List.sort
      (fun (e1, _, _, _, s1, _, _) (e2, _, _, _, s2, _, _) ->
        compare (s1, e1) (s2, e2))
      (pinned_segs @ placed_dirty)
  in
  let place_items start items =
    let addr = ref start in
    List.map
      (fun it ->
        let at = !addr in
        (match it with
        | Label l ->
            if Hashtbl.mem labels l then
              invalid_arg (Printf.sprintf "Asm: duplicate label %s" l);
            Hashtbl.add labels l at
        | _ -> ());
        addr := at + item_size arch ~pie ~at it;
        (it, at))
      items
  in
  let seg_placed =
    List.map
      (fun (_, id, items, dg, s, l, pinned) ->
        (id, dg, s, l, pinned, place_items s items))
      ordered
  in
  let l_end =
    List.fold_left (fun e (_, _, s, l, _, _) -> max e (s + l)) base seg_placed
  in
  let count pred =
    List.length
      (List.filter (fun (_, _, _, l, pinned, _) -> l > 0 && pred pinned)
         seg_placed)
  in
  {
    p_layout =
      {
        items = List.concat_map (fun (_, _, _, _, _, pi) -> pi) seg_placed;
        l_base = base;
        l_end;
      };
    p_recs =
      List.map
        (fun (id, dg, s, l, _, _) ->
          { sr_id = id; sr_digest = dg; sr_start = s; sr_len = l })
        seg_placed;
    p_chunks =
      List.filter_map
        (fun (_, _, s, l, _, pi) ->
          if l = 0 then None else Some { c_items = pi; c_lo = s; c_hi = s + l })
        seg_placed;
    p_pinned = count (fun pinned -> pinned);
    p_moved = count (fun pinned -> not pinned);
  }

type result = {
  data : Bytes.t;
  base : int;
  labels : (string, int) Hashtbl.t;
  relocs : Icfg_obj.Reloc.t list;
}

let assemble arch ~pie ~toc ~base items =
  let labels = Hashtbl.create 64 in
  let lay = layout arch ~pie ~labels ~base items in
  let data, relocs = encode arch ~pie ~toc ~labels lay in
  { data; base; labels; relocs }
