(** A two-pass, label-based assembler with multi-section support.

    Items either have a fixed encoded length (every pseudo-instruction
    resolves to one concrete instruction whose length does not depend on the
    final displacement — the synthetic compilers always emit wide branch
    forms, like real compilers) or are data/alignment directives. {!layout}
    assigns addresses and records labels; {!encode} resolves references and
    produces bytes. Sections share one label namespace, so code can
    reference jump tables in [.rodata] and data can hold code addresses.

    Absolute 8-byte data words referring to labels become run-time
    relocations when encoding in PIE mode, mirroring how compilers emit
    [R_*_RELATIVE] entries for address-holding data. *)

type aexpr =
  | Const of int
  | Addr of string  (** absolute address of a label *)
  | Diff of string * string * int
      (** [Diff (a, b, scale)] = (addr a - addr b) / scale; position
          independent by construction (jump-table entries) *)
  | Diff_const of string * int * int
      (** [(addr a - base) / scale] against a fixed base address (cloned
          aarch64 jump-table entries keep the original code base) *)

type item =
  | Insn of Icfg_isa.Insn.t
  | Jmp_to of string
  | Jcc_to of Icfg_isa.Insn.cond * string
  | Call_to of string
  | Lea_of of Icfg_isa.Reg.t * string  (** PC-relative address of label *)
  | Adrp_of of Icfg_isa.Reg.t * string  (** aarch64 page-relative high part *)
  | Addlo_page of Icfg_isa.Reg.t * string  (** aarch64 low 12 bits *)
  | Addis_toc of Icfg_isa.Reg.t * string  (** ppc64le TOC-relative high part *)
  | Addlo_toc of Icfg_isa.Reg.t * string  (** ppc64le TOC-relative low part *)
  | Movabs_of of Icfg_isa.Reg.t * string  (** x86-64 absolute address *)
  | Movhi_of of Icfg_isa.Reg.t * string  (** RISC absolute high 16 bits *)
  | Orlo_of of Icfg_isa.Reg.t * string  (** RISC absolute low 16 bits *)
  | Jmp_abs of int  (** direct branch to a fixed (original) address *)
  | Jcc_abs of Icfg_isa.Insn.cond * int
  | Call_abs of int
  | Mater_const of Icfg_isa.Reg.t * int
      (** load a fixed absolute address position-independently (expands to
          the {!Icfg_isa.Mater} sequence for the target architecture) *)
  | Label of string
  | Align of int * [ `Nop | `Zero ]
  | Data of Icfg_isa.Insn.width * aexpr * [ `Reloc | `No_reloc ]
      (** emit a data word; [`Reloc] marks address-holding words that need a
          run-time relocation under PIE. Narrow widths are range-checked. *)
  | Raw of string  (** literal bytes (strings, filler constants) *)
  | Space of int  (** zero padding *)

exception Undefined_label of string

val item_size : Icfg_isa.Arch.t -> pie:bool -> at:int -> item -> int
(** Size the item occupies when placed at address [at] (only [Align] depends
    on the address; [Mater_const] depends on [pie]). *)

type layout = { items : (item * int) list; l_base : int; l_end : int }

val layout :
  Icfg_isa.Arch.t -> pie:bool -> labels:(string, int) Hashtbl.t -> base:int ->
  item list -> layout
(** First pass: assign addresses, adding label definitions to [labels].
    Duplicate labels raise [Invalid_argument]. *)

val encode :
  Icfg_isa.Arch.t ->
  pie:bool ->
  toc:int ->
  labels:(string, int) Hashtbl.t ->
  layout ->
  Bytes.t * Icfg_obj.Reloc.t list
(** Second pass. Raises {!Undefined_label} for unresolved names and
    {!Icfg_isa.Encode.Not_encodable} if a resolved displacement or a narrow
    data word overflows its field. *)

type par = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }
(** An order-preserving map used to fan chunk encoding out across domains
    (same shape as [Parse.par]; duplicated so the codegen layer needs no
    scheduler dependency). *)

val serial : par
(** [List.map] — the default. *)

type chunk = { c_items : (item * int) list; c_lo : int; c_hi : int }
(** A contiguous run of placed items covering addresses
    [[c_lo, c_hi)] — the unit of sharded (and memoized) encoding. *)

type memo = {
  cmap :
    stage:string ->
    key:(chunk -> string) ->
    (chunk -> Bytes.t * Icfg_obj.Reloc.t list) ->
    chunk list ->
    (Bytes.t * Icfg_obj.Reloc.t list) list;
}
(** Injected memoizing map (same inversion as [par]: the codegen layer
    cannot name the cache living above it). [key] digests a chunk's items
    {e plus the resolved values of every label they reference}, so equal
    layouts hit and shifted layouts miss — the memoizer never has to
    re-fix bytes against a new label table. *)

val encode_sharded :
  Icfg_isa.Arch.t ->
  pie:bool ->
  toc:int ->
  labels:(string, int) Hashtbl.t ->
  ?par:par ->
  ?memo:memo ->
  ?chunks:int ->
  layout ->
  Bytes.t * Icfg_obj.Reloc.t list
(** {!encode}, with the item list split into [chunks] contiguous runs
    encoded independently through [par] (the label table is frozen after
    {!layout}, so chunk encoding is pure). Bytes and reloc order are
    identical to {!encode} for every [par], [memo] and [chunks] — chunk
    extents tile the section and per-chunk reloc lists concatenate in
    chunk order. [chunks <= 1] without [memo] is exactly {!encode}; with
    [memo], per-chunk encoding goes through [memo.cmap] under stage
    ["encode"] instead of [par]. *)

val encode_chunks :
  Icfg_isa.Arch.t ->
  pie:bool ->
  toc:int ->
  labels:(string, int) Hashtbl.t ->
  ?par:par ->
  ?memo:memo ->
  layout ->
  chunk list ->
  Bytes.t * Icfg_obj.Reloc.t list
(** Encode an explicit chunk list (e.g. {!pinned_result.p_chunks}) against
    a frozen label table into one buffer spanning
    [[lay.l_base, lay.l_end)]. Unlike {!encode_sharded} the chunks need
    not tile the extent: uncovered holes (gaps a pinned layout left
    behind) stay zero-filled. Relocs concatenate in chunk (address)
    order. *)

(** {1 Pinned-address incremental layout}

    Zipr-style (arXiv 2312.00714) re-layout for warm rewrites: the caller
    splits the item stream into identified segments (one per function);
    segments whose content and recorded placement still fit are pinned at
    their previous addresses, and only the dirty segments are re-solved
    into the holes the pinned extents leave. A segment that keeps its
    address keeps every label it defines, so downstream chunk-encode keys
    and placement replays for it stay warm. *)

type seg_rec = {
  sr_id : int;  (** caller-chosen stable segment identity *)
  sr_digest : string;  (** content digest of the segment's items *)
  sr_start : int;
  sr_len : int;
}
(** One placed segment, as persisted between runs. *)

type pinned_result = {
  p_layout : layout;  (** placed items in address order *)
  p_recs : seg_rec list;  (** records to persist for the next run *)
  p_chunks : chunk list;
      (** one chunk per nonzero-length segment, in address order — feed to
          {!encode_chunks} *)
  p_pinned : int;  (** nonzero-length segments kept at their prior address *)
  p_moved : int;  (** nonzero-length segments (re-)solved this run *)
}

val layout_pinned :
  Icfg_isa.Arch.t ->
  pie:bool ->
  labels:(string, int) Hashtbl.t ->
  base:int ->
  ?prev:seg_rec list ->
  (int * item list) list ->
  pinned_result
(** [layout_pinned arch ~pie ~labels ~base ?prev segs] places each
    [(id, items)] segment. A segment is pinned when [prev] holds a record
    with the same [sr_id] and content digest whose recorded extent starts
    at or above [base] and whose size, recomputed at that address, is
    unchanged; every other segment is placed first-fit (in emission
    order) into the address holes between pinned extents, falling back to
    the unbounded tail. Without [prev] (or with nothing pinnable) the
    result is address- and item-identical to {!layout} over the
    concatenated segment items. Duplicate labels raise
    [Invalid_argument], as in {!layout}. *)

type result = {
  data : Bytes.t;
  base : int;
  labels : (string, int) Hashtbl.t;
  relocs : Icfg_obj.Reloc.t list;
}

val assemble :
  Icfg_isa.Arch.t -> pie:bool -> toc:int -> base:int -> item list -> result
(** Single-section convenience wrapper over {!layout} + {!encode}. *)

val label_exn : (string, int) Hashtbl.t -> string -> int
