exception Not_encodable of string

let not_encodable fmt = Format.kasprintf (fun s -> raise (Not_encodable s)) fmt

let fits_signed v bits =
  let lim = 1 lsl (bits - 1) in
  v >= -lim && v < lim

let fits_unsigned v bits = v >= 0 && v < 1 lsl bits

let check_signed what v bits =
  if not (fits_signed v bits) then
    not_encodable "%s %d does not fit in %d signed bits" what v bits

let check_unsigned what v bits =
  if not (fits_unsigned v bits) then
    not_encodable "%s %d does not fit in %d unsigned bits" what v bits

let sign_extend v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

(* ------------------------------------------------------------------ *)
(* Field codecs shared by both encodings                               *)
(* ------------------------------------------------------------------ *)

let cond_to_int : Insn.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5

let cond_of_int = function
  | 0 -> Insn.Eq
  | 1 -> Insn.Ne
  | 2 -> Insn.Lt
  | 3 -> Insn.Le
  | 4 -> Insn.Gt
  | 5 -> Insn.Ge
  | n -> invalid_arg (Printf.sprintf "cond_of_int %d" n)

let width_to_int : Insn.width -> int = function
  | W8 -> 0
  | W16 -> 1
  | W32 -> 2
  | W64 -> 3

let width_of_int = function
  | 0 -> Insn.W8
  | 1 -> Insn.W16
  | 2 -> Insn.W32
  | _ -> Insn.W64

let base_to_int : Insn.base -> int = function
  | BReg r -> Reg.index r
  | BSp -> 16

let base_of_int n = if n = 16 then Insn.BSp else Insn.BReg (Reg.make (n land 15))

(* ------------------------------------------------------------------ *)
(* Byte-buffer helpers                                                 *)
(* ------------------------------------------------------------------ *)

let put8 b pos v = Bytes.set_uint8 b pos (v land 0xff)
let put16 b pos v = Bytes.set_uint16_le b pos (v land 0xffff)
let put32 b pos v = Bytes.set_int32_le b pos (Int32.of_int v)
let put64 b pos v = Bytes.set_int64_le b pos (Int64.of_int v)
let get8u s pos = Char.code (String.unsafe_get s pos)
let get8s s pos = sign_extend (get8u s pos) 8
let get16u s pos = get8u s pos lor (get8u s (pos + 1) lsl 8)
let get16s s pos = sign_extend (get16u s pos) 16

let get32s s pos =
  sign_extend
    (get16u s pos lor (get16u s (pos + 2) lsl 16))
    32

let get64 s pos =
  let lo = get32s s pos land 0xFFFFFFFF in
  let hi = get32s s (pos + 4) in
  (hi lsl 32) lor lo

(* ------------------------------------------------------------------ *)
(* x86-64-flavoured variable-length encoding                           *)
(* ------------------------------------------------------------------ *)

(* Opcode map. Lengths mimic typical x86-64 instruction sizes. *)
let xop_illegal = 0x00
let xop_nop = 0x01
let xop_halt = 0x02
let xop_trap = 0x03
let xop_ret = 0x04
let xop_throw = 0x05
let xop_out = 0x06
let xop_mov_ri = 0x10
let xop_mov_rr = 0x11
let xop_movabs = 0x12
let xop_movhi = 0x13
let xop_orlo = 0x14
let xop_add_ri = 0x15
let xop_add_rr = 0x16
let xop_sub_ri = 0x17
let xop_sub_rr = 0x18
let xop_mul_ri = 0x19
let xop_mul_rr = 0x1a
let xop_and_ri = 0x1b
let xop_and_rr = 0x1c
let xop_or_ri = 0x1d
let xop_or_rr = 0x1e
let xop_xor_ri = 0x1f
let xop_xor_rr = 0x20
let xop_cmp_ri = 0x21
let xop_cmp_rr = 0x22
let xop_shl = 0x23
let xop_shr = 0x24
let xop_load = 0x25
let xop_store = 0x26
let xop_loadidx = 0x27
let xop_lea = 0x28
let xop_addsp = 0x29
let xop_jmp_short = 0x2a
let xop_jmp_near = 0x2b
let xop_call = 0x2d
let xop_indjmp = 0x2e
let xop_indcall = 0x2f
let xop_jcc_short = 0x30 (* .. 0x35 *)
let xop_jcc_near = 0x38 (* .. 0x3d *)
let xop_indcallmem = 0x3e
let xop_callrt = 0x3f

let x86_alu_ri_len = 6
let x86_alu_rr_len = 3

let x86_length (i : Insn.t) =
  match i with
  | Illegal | Nop | Halt | Trap | Ret | Throw -> 1
  | Out _ -> 2
  | Mov (_, Imm _) -> 6
  | Mov (_, Reg _) -> x86_alu_rr_len
  | Movabs _ -> 10
  | Movhi _ | Orlo _ -> 4
  | Add (_, Imm _) | Sub (_, Imm _) | Mul (_, Imm _) | And_ (_, Imm _)
  | Or_ (_, Imm _) | Xor (_, Imm _) | Cmp (_, Imm _) ->
      x86_alu_ri_len
  | Add (_, Reg _) | Sub (_, Reg _) | Mul (_, Reg _) | And_ (_, Reg _)
  | Or_ (_, Reg _) | Xor (_, Reg _) | Cmp (_, Reg _) ->
      x86_alu_rr_len
  | Shl _ | Shr _ -> 3
  | Load _ | Store _ -> 7
  | LoadIdx _ -> 5
  | Lea _ -> 7
  | AddSp _ -> 5
  | Jmp _ -> 5 (* canonical near form *)
  | Jcc _ -> 6
  | Call _ -> 5
  | IndJmp _ | IndCall _ -> 2
  | IndCallMem _ -> 6
  | CallRt _ -> 5
  | Mflr _ | Mtlr _ | Mttar _ | Btar | Adrp _ | Addis _ ->
      not_encodable "%s is not an x86-64 instruction" (Insn.to_string i)

let x86_encode_into b ~pos (i : Insn.t) =
  let op1 code =
    put8 b pos code;
    1
  in
  let op_r code r =
    put8 b pos code;
    put8 b (pos + 1) (Reg.index r);
    2
  in
  let op_rr code rd rs =
    put8 b pos code;
    put8 b (pos + 1) ((Reg.index rd lsl 4) lor Reg.index rs);
    put8 b (pos + 2) 0;
    3
  in
  let op_ri32 code r v =
    check_signed "immediate" v 32;
    put8 b pos code;
    put8 b (pos + 1) (Reg.index r);
    put32 b (pos + 2) v;
    6
  in
  let op_ri16 code r v =
    check_signed "immediate" v 17;
    put8 b pos code;
    put8 b (pos + 1) (Reg.index r);
    put16 b (pos + 2) v;
    4
  in
  let alu code_ri code_rr r (o : Insn.operand) =
    match o with Imm v -> op_ri32 code_ri r v | Reg rs -> op_rr code_rr r rs
  in
  match i with
  | Illegal -> op1 xop_illegal
  | Nop -> op1 xop_nop
  | Halt -> op1 xop_halt
  | Trap -> op1 xop_trap
  | Ret -> op1 xop_ret
  | Throw -> op1 xop_throw
  | Out r -> op_r xop_out r
  | Mov (r, Imm v) -> op_ri32 xop_mov_ri r v
  | Mov (r, Reg rs) -> op_rr xop_mov_rr r rs
  | Movabs (r, v) ->
      put8 b pos xop_movabs;
      put8 b (pos + 1) (Reg.index r);
      put64 b (pos + 2) v;
      10
  | Movhi (r, v) -> op_ri16 xop_movhi r v
  | Orlo (r, v) ->
      check_unsigned "orlo immediate" v 16;
      put8 b pos xop_orlo;
      put8 b (pos + 1) (Reg.index r);
      put16 b (pos + 2) v;
      4
  | Add (r, o) -> alu xop_add_ri xop_add_rr r o
  | Sub (r, o) -> alu xop_sub_ri xop_sub_rr r o
  | Mul (r, o) -> alu xop_mul_ri xop_mul_rr r o
  | And_ (r, o) -> alu xop_and_ri xop_and_rr r o
  | Or_ (r, o) -> alu xop_or_ri xop_or_rr r o
  | Xor (r, o) -> alu xop_xor_ri xop_xor_rr r o
  | Cmp (r, o) -> alu xop_cmp_ri xop_cmp_rr r o
  | Shl (r, v) | Shr (r, v) ->
      check_unsigned "shift amount" v 6;
      put8 b pos (match i with Shl _ -> xop_shl | _ -> xop_shr);
      put8 b (pos + 1) (Reg.index r);
      put8 b (pos + 2) v;
      3
  | Load (w, rd, base, disp) ->
      check_signed "displacement" disp 32;
      put8 b pos xop_load;
      put8 b (pos + 1) ((width_to_int w lsl 4) lor Reg.index rd);
      put8 b (pos + 2) (base_to_int base);
      put32 b (pos + 3) disp;
      7
  | Store (w, base, disp, rs) ->
      check_signed "displacement" disp 32;
      put8 b pos xop_store;
      put8 b (pos + 1) ((width_to_int w lsl 4) lor Reg.index rs);
      put8 b (pos + 2) (base_to_int base);
      put32 b (pos + 3) disp;
      7
  | LoadIdx (w, rd, rb, ri, scale) ->
      check_unsigned "scale" scale 4;
      put8 b pos xop_loadidx;
      put8 b (pos + 1) ((width_to_int w lsl 4) lor Reg.index rd);
      put8 b (pos + 2) (Reg.index rb);
      put8 b (pos + 3) (Reg.index ri);
      put8 b (pos + 4) scale;
      5
  | Lea (r, disp) ->
      check_signed "displacement" disp 32;
      put8 b pos xop_lea;
      put8 b (pos + 1) (Reg.index r);
      put32 b (pos + 2) disp;
      put8 b (pos + 6) 0;
      7
  | AddSp v ->
      check_signed "immediate" v 32;
      put8 b pos xop_addsp;
      put32 b (pos + 1) v;
      5
  | Jmp disp ->
      check_signed "branch displacement" disp 32;
      put8 b pos xop_jmp_near;
      put32 b (pos + 1) disp;
      5
  | Jcc (c, disp) ->
      check_signed "branch displacement" disp 32;
      put8 b pos (xop_jcc_near + cond_to_int c);
      put32 b (pos + 1) disp;
      put8 b (pos + 5) 0;
      6
  | Call disp ->
      check_signed "branch displacement" disp 32;
      put8 b pos xop_call;
      put32 b (pos + 1) disp;
      5
  | IndJmp r -> op_r xop_indjmp r
  | IndCall r -> op_r xop_indcall r
  | IndCallMem (base, disp) ->
      check_signed "displacement" disp 32;
      put8 b pos xop_indcallmem;
      put8 b (pos + 1) (base_to_int base);
      put32 b (pos + 2) disp;
      6
  | CallRt idx ->
      check_unsigned "runtime routine index" idx 32;
      put8 b pos xop_callrt;
      put32 b (pos + 1) idx;
      5
  | Mflr _ | Mtlr _ | Mttar _ | Btar | Adrp _ | Addis _ ->
      not_encodable "%s is not an x86-64 instruction" (Insn.to_string i)

let x86_decode s ~pos : Insn.t * int =
  let len = String.length s in
  let have n = pos + n <= len in
  let opc = get8u s pos in
  let illegal = (Insn.Illegal, 1) in
  let rd_rs k =
    if not (have 3) then illegal
    else
      let byte = get8u s (pos + 1) in
      (k (Reg.make (byte lsr 4)) (Reg.make (byte land 15)), 3)
  in
  let r_imm32 k =
    if not (have 6) then illegal
    else (k (Reg.make (get8u s (pos + 1) land 15)) (get32s s (pos + 2)), 6)
  in
  let r_imm16 k =
    if not (have 4) then illegal
    else (k (Reg.make (get8u s (pos + 1) land 15)) (get16s s (pos + 2)), 4)
  in
  let reg_only k =
    if not (have 2) then illegal
    else (k (Reg.make (get8u s (pos + 1) land 15)), 2)
  in
  if opc = xop_illegal then illegal
  else if opc = xop_nop then (Nop, 1)
  else if opc = xop_halt then (Halt, 1)
  else if opc = xop_trap then (Trap, 1)
  else if opc = xop_ret then (Ret, 1)
  else if opc = xop_throw then (Throw, 1)
  else if opc = xop_out then reg_only (fun r -> Insn.Out r)
  else if opc = xop_mov_ri then r_imm32 (fun r v -> Insn.Mov (r, Imm v))
  else if opc = xop_mov_rr then rd_rs (fun rd rs -> Insn.Mov (rd, Reg rs))
  else if opc = xop_movabs then
    if not (have 10) then illegal
    else (Movabs (Reg.make (get8u s (pos + 1) land 15), get64 s (pos + 2)), 10)
  else if opc = xop_movhi then r_imm16 (fun r v -> Insn.Movhi (r, v))
  else if opc = xop_orlo then
    if not (have 4) then illegal
    else (Orlo (Reg.make (get8u s (pos + 1) land 15), get16u s (pos + 2)), 4)
  else if opc = xop_add_ri then r_imm32 (fun r v -> Insn.Add (r, Imm v))
  else if opc = xop_add_rr then rd_rs (fun rd rs -> Insn.Add (rd, Reg rs))
  else if opc = xop_sub_ri then r_imm32 (fun r v -> Insn.Sub (r, Imm v))
  else if opc = xop_sub_rr then rd_rs (fun rd rs -> Insn.Sub (rd, Reg rs))
  else if opc = xop_mul_ri then r_imm32 (fun r v -> Insn.Mul (r, Imm v))
  else if opc = xop_mul_rr then rd_rs (fun rd rs -> Insn.Mul (rd, Reg rs))
  else if opc = xop_and_ri then r_imm32 (fun r v -> Insn.And_ (r, Imm v))
  else if opc = xop_and_rr then rd_rs (fun rd rs -> Insn.And_ (rd, Reg rs))
  else if opc = xop_or_ri then r_imm32 (fun r v -> Insn.Or_ (r, Imm v))
  else if opc = xop_or_rr then rd_rs (fun rd rs -> Insn.Or_ (rd, Reg rs))
  else if opc = xop_xor_ri then r_imm32 (fun r v -> Insn.Xor (r, Imm v))
  else if opc = xop_xor_rr then rd_rs (fun rd rs -> Insn.Xor (rd, Reg rs))
  else if opc = xop_cmp_ri then r_imm32 (fun r v -> Insn.Cmp (r, Imm v))
  else if opc = xop_cmp_rr then rd_rs (fun rd rs -> Insn.Cmp (rd, Reg rs))
  else if opc = xop_shl || opc = xop_shr then
    if not (have 3) then illegal
    else
      let r = Reg.make (get8u s (pos + 1) land 15) in
      let v = get8u s (pos + 2) in
      ((if opc = xop_shl then Insn.Shl (r, v) else Insn.Shr (r, v)), 3)
  else if opc = xop_load || opc = xop_store then
    if not (have 7) then illegal
    else
      let b1 = get8u s (pos + 1) in
      let w = width_of_int (b1 lsr 4) in
      let r = Reg.make (b1 land 15) in
      let base = base_of_int (get8u s (pos + 2) land 31) in
      let disp = get32s s (pos + 3) in
      ( (if opc = xop_load then Insn.Load (w, r, base, disp)
         else Insn.Store (w, base, disp, r)),
        7 )
  else if opc = xop_loadidx then
    if not (have 5) then illegal
    else
      let b1 = get8u s (pos + 1) in
      ( LoadIdx
          ( width_of_int (b1 lsr 4),
            Reg.make (b1 land 15),
            Reg.make (get8u s (pos + 2) land 15),
            Reg.make (get8u s (pos + 3) land 15),
            get8u s (pos + 4) land 15 ),
        5 )
  else if opc = xop_lea then
    if not (have 7) then illegal
    else (Lea (Reg.make (get8u s (pos + 1) land 15), get32s s (pos + 2)), 7)
  else if opc = xop_addsp then
    if not (have 5) then illegal else (AddSp (get32s s (pos + 1)), 5)
  else if opc = xop_jmp_short then
    if not (have 2) then illegal else (Jmp (get8s s (pos + 1)), 2)
  else if opc = xop_jmp_near then
    if not (have 5) then illegal else (Jmp (get32s s (pos + 1)), 5)
  else if opc = xop_call then
    if not (have 5) then illegal else (Call (get32s s (pos + 1)), 5)
  else if opc = xop_indjmp then reg_only (fun r -> Insn.IndJmp r)
  else if opc = xop_indcall then reg_only (fun r -> Insn.IndCall r)
  else if opc >= xop_jcc_short && opc < xop_jcc_short + 6 then
    if not (have 2) then illegal
    else (Jcc (cond_of_int (opc - xop_jcc_short), get8s s (pos + 1)), 2)
  else if opc >= xop_jcc_near && opc < xop_jcc_near + 6 then
    if not (have 6) then illegal
    else (Jcc (cond_of_int (opc - xop_jcc_near), get32s s (pos + 1)), 6)
  else if opc = xop_indcallmem then
    if not (have 6) then illegal
    else
      (IndCallMem (base_of_int (get8u s (pos + 1) land 31), get32s s (pos + 2)), 6)
  else if opc = xop_callrt then
    if not (have 5) then illegal
    else (CallRt (get32s s (pos + 1) land 0xFFFF), 5)
  else illegal

(* ------------------------------------------------------------------ *)
(* Fixed-length 4-byte encoding (ppc64le and aarch64 flavours)         *)
(* ------------------------------------------------------------------ *)

(* Word layout: bits 31..26 = opcode, bits 25..0 = payload (low-aligned
   fields, documented per opcode below). *)

let rop_illegal = 0
let rop_nop = 1
let rop_halt = 2
let rop_trap = 3
let rop_ret = 4
let rop_throw = 5
let rop_out = 6 (* reg[3:0] *)
let rop_mov_ri = 7 (* rd[19:16] imm16[15:0] *)
let rop_mov_rr = 8 (* rd[7:4] rs[3:0] *)
let rop_movhi = 9
let rop_orlo = 10
let rop_add_ri = 11
let rop_sub_ri = 12
let rop_mul_ri = 13
let rop_and_ri = 14
let rop_or_ri = 15
let rop_xor_ri = 16
let rop_cmp_ri = 17
let rop_add_rr = 18
let rop_sub_rr = 19
let rop_mul_rr = 20
let rop_and_rr = 21
let rop_or_rr = 22
let rop_xor_rr = 23
let rop_cmp_rr = 24
let rop_shl = 25 (* rd[9:6] imm6[5:0] *)
let rop_shr = 26
let rop_load = 27 (* w[24:23] rd[22:19] base[18:14] disp14[13:0] *)
let rop_store = 28
let rop_loadidx = 29 (* w[17:16] rd[15:12] rb[11:8] ri[7:4] scale[3:0] *)
let rop_lea = 30 (* rd[23:20] disp20[19:0] *)
let rop_addsp = 31 (* imm20[19:0] *)
let rop_jmp = 32 (* disp in insn units, width per arch *)
let rop_jcc = 33 (* cond[16:14] disp14[13:0] in insn units *)
let rop_call = 34
let rop_indjmp = 35
let rop_indcall = 36
let rop_indcallmem = 37 (* base[18:14] disp14[13:0] *)
let rop_callrt = 38 (* idx[15:0] *)
let rop_mflr = 39
let rop_mtlr = 40
let rop_mttar = 41
let rop_btar = 42
let rop_adrp = 43 (* rd[24:21] pages21[20:0] *)
let rop_addis = 44 (* rd[23:20] rs[19:16] imm16[15:0] *)

let branch_disp_bits ?(opcode = "branch") (arch : Arch.t) =
  (* Displacement field width in 4-byte instruction units: 24 bits gives
     +/-32 MiB (ppc64le b), 26 bits gives +/-128 MiB (aarch64 b). x86-64
     branches encode byte displacements, so asking is a caller bug — name
     the opcode instead of dying as a bare [Assert_failure]. *)
  match arch with
  | Arch.Ppc64le -> 24
  | Arch.Aarch64 -> 26
  | Arch.X86_64 ->
      invalid_arg
        (Printf.sprintf
           "Encode.branch_disp_bits: x86-64 %s uses byte-granular \
            displacements, not 4-byte instruction units"
           opcode)

let risc_word arch (i : Insn.t) =
  let mk opc payload = (opc lsl 26) lor (payload land 0x3FFFFFF) in
  let r4 r = Reg.index r land 15 in
  let ri16 opc rd v =
    check_signed "immediate" v 16;
    mk opc ((r4 rd lsl 16) lor (v land 0xFFFF))
  in
  let rr opc rd rs = mk opc ((r4 rd lsl 4) lor r4 rs) in
  let mem opc w r base disp =
    check_signed "displacement" disp 14;
    mk opc
      ((width_to_int w lsl 23)
      lor (r4 r lsl 19)
      lor ((base_to_int base land 31) lsl 14)
      lor (disp land 0x3FFF))
  in
  let branch opc disp =
    if disp land 3 <> 0 then
      not_encodable "branch displacement %d is not 4-byte aligned" disp;
    let units = disp asr 2 in
    let opcode =
      if opc = rop_call then "call" else if opc = rop_jcc then "jcc" else "jmp"
    in
    let bits = branch_disp_bits ~opcode arch in
    if not (fits_signed units bits) then
      not_encodable "branch displacement %d out of range" disp;
    mk opc (units land ((1 lsl bits) - 1))
  in
  let alu_ri opc rd v = ri16 opc rd v in
  match i with
  | Illegal -> mk rop_illegal 0
  | Nop -> mk rop_nop 0
  | Halt -> mk rop_halt 0
  | Trap -> mk rop_trap 0
  | Ret -> mk rop_ret 0
  | Throw -> mk rop_throw 0
  | Out r -> mk rop_out (r4 r)
  | Mov (r, Imm v) -> alu_ri rop_mov_ri r v
  | Mov (rd, Reg rs) -> rr rop_mov_rr rd rs
  | Movhi (r, v) -> ri16 rop_movhi r v
  | Orlo (r, v) ->
      check_unsigned "orlo immediate" v 16;
      mk rop_orlo ((r4 r lsl 16) lor (v land 0xFFFF))
  | Movabs _ -> not_encodable "movabs requires the x86-64 flavour"
  | Add (r, Imm v) -> alu_ri rop_add_ri r v
  | Add (rd, Reg rs) -> rr rop_add_rr rd rs
  | Sub (r, Imm v) -> alu_ri rop_sub_ri r v
  | Sub (rd, Reg rs) -> rr rop_sub_rr rd rs
  | Mul (r, Imm v) -> alu_ri rop_mul_ri r v
  | Mul (rd, Reg rs) -> rr rop_mul_rr rd rs
  | And_ (r, Imm v) -> alu_ri rop_and_ri r v
  | And_ (rd, Reg rs) -> rr rop_and_rr rd rs
  | Or_ (r, Imm v) -> alu_ri rop_or_ri r v
  | Or_ (rd, Reg rs) -> rr rop_or_rr rd rs
  | Xor (r, Imm v) -> alu_ri rop_xor_ri r v
  | Xor (rd, Reg rs) -> rr rop_xor_rr rd rs
  | Cmp (r, Imm v) -> alu_ri rop_cmp_ri r v
  | Cmp (rd, Reg rs) -> rr rop_cmp_rr rd rs
  | Shl (r, v) ->
      check_unsigned "shift amount" v 6;
      mk rop_shl ((r4 r lsl 6) lor v)
  | Shr (r, v) ->
      check_unsigned "shift amount" v 6;
      mk rop_shr ((r4 r lsl 6) lor v)
  | Load (w, rd, base, disp) -> mem rop_load w rd base disp
  | Store (w, base, disp, rs) -> mem rop_store w rs base disp
  | LoadIdx (w, rd, rb, ri, scale) ->
      check_unsigned "scale" scale 4;
      mk rop_loadidx
        ((width_to_int w lsl 16)
        lor (r4 rd lsl 12)
        lor (r4 rb lsl 8)
        lor (r4 ri lsl 4)
        lor scale)
  | Lea (r, disp) ->
      check_signed "lea displacement" disp 20;
      mk rop_lea ((r4 r lsl 20) lor (disp land 0xFFFFF))
  | AddSp v ->
      check_signed "immediate" v 20;
      mk rop_addsp (v land 0xFFFFF)
  | Jmp disp -> branch rop_jmp disp
  | Jcc (c, disp) ->
      if disp land 3 <> 0 then
        not_encodable "branch displacement %d is not 4-byte aligned" disp;
      let units = disp asr 2 in
      check_signed "conditional branch displacement" units 14;
      mk rop_jcc ((cond_to_int c lsl 14) lor (units land 0x3FFF))
  | Call disp -> branch rop_call disp
  | IndJmp r -> mk rop_indjmp (r4 r)
  | IndCall r -> mk rop_indcall (r4 r)
  | IndCallMem (base, disp) ->
      check_signed "displacement" disp 14;
      mk rop_indcallmem (((base_to_int base land 31) lsl 14) lor (disp land 0x3FFF))
  | CallRt idx ->
      check_unsigned "runtime routine index" idx 16;
      mk rop_callrt idx
  | Mflr r -> mk rop_mflr (r4 r)
  | Mtlr r -> mk rop_mtlr (r4 r)
  | Mttar r -> mk rop_mttar (r4 r)
  | Btar -> mk rop_btar 0
  | Adrp (r, disp) ->
      if disp land 4095 <> 0 then
        not_encodable "adrp displacement %d is not page aligned" disp;
      let pages = disp asr 12 in
      check_signed "adrp page displacement" pages 21;
      mk rop_adrp ((r4 r lsl 21) lor (pages land 0x1FFFFF))
  | Addis (rd, rs, v) ->
      check_signed "addis immediate" v 16;
      mk rop_addis ((r4 rd lsl 20) lor (r4 rs lsl 16) lor (v land 0xFFFF))

let risc_decode arch s ~pos : Insn.t * int =
  if pos + 4 > String.length s then (Insn.Illegal, 4)
  else
    let w =
      get8u s pos
      lor (get8u s (pos + 1) lsl 8)
      lor (get8u s (pos + 2) lsl 16)
      lor (get8u s (pos + 3) lsl 24)
    in
    let opc = (w lsr 26) land 63 in
    let payload = w land 0x3FFFFFF in
    let r4 shift = Reg.make ((payload lsr shift) land 15) in
    let imm16s = sign_extend (payload land 0xFFFF) 16 in
    let insn : Insn.t =
      if opc = rop_illegal then Illegal
      else if opc = rop_nop then Nop
      else if opc = rop_halt then Halt
      else if opc = rop_trap then Trap
      else if opc = rop_ret then Ret
      else if opc = rop_throw then Throw
      else if opc = rop_out then Out (r4 0)
      else if opc = rop_mov_ri then Mov (r4 16, Imm imm16s)
      else if opc = rop_mov_rr then Mov (r4 4, Reg (r4 0))
      else if opc = rop_movhi then Movhi (r4 16, imm16s)
      else if opc = rop_orlo then Orlo (r4 16, payload land 0xFFFF)
      else if opc = rop_add_ri then Add (r4 16, Imm imm16s)
      else if opc = rop_sub_ri then Sub (r4 16, Imm imm16s)
      else if opc = rop_mul_ri then Mul (r4 16, Imm imm16s)
      else if opc = rop_and_ri then And_ (r4 16, Imm imm16s)
      else if opc = rop_or_ri then Or_ (r4 16, Imm imm16s)
      else if opc = rop_xor_ri then Xor (r4 16, Imm imm16s)
      else if opc = rop_cmp_ri then Cmp (r4 16, Imm imm16s)
      else if opc = rop_add_rr then Add (r4 4, Reg (r4 0))
      else if opc = rop_sub_rr then Sub (r4 4, Reg (r4 0))
      else if opc = rop_mul_rr then Mul (r4 4, Reg (r4 0))
      else if opc = rop_and_rr then And_ (r4 4, Reg (r4 0))
      else if opc = rop_or_rr then Or_ (r4 4, Reg (r4 0))
      else if opc = rop_xor_rr then Xor (r4 4, Reg (r4 0))
      else if opc = rop_cmp_rr then Cmp (r4 4, Reg (r4 0))
      else if opc = rop_shl then Shl (r4 6, payload land 63)
      else if opc = rop_shr then Shr (r4 6, payload land 63)
      else if opc = rop_load || opc = rop_store then
        let w' = width_of_int ((payload lsr 23) land 3) in
        let r = r4 19 in
        let base = base_of_int ((payload lsr 14) land 31) in
        let disp = sign_extend (payload land 0x3FFF) 14 in
        if opc = rop_load then Load (w', r, base, disp)
        else Store (w', base, disp, r)
      else if opc = rop_loadidx then
        LoadIdx
          ( width_of_int ((payload lsr 16) land 3),
            r4 12,
            r4 8,
            r4 4,
            payload land 15 )
      else if opc = rop_lea then
        Lea (r4 20, sign_extend (payload land 0xFFFFF) 20)
      else if opc = rop_addsp then AddSp (sign_extend (payload land 0xFFFFF) 20)
      else if opc = rop_jmp || opc = rop_call then
        let bits = branch_disp_bits arch in
        let disp = sign_extend (payload land ((1 lsl bits) - 1)) bits * 4 in
        if opc = rop_jmp then Jmp disp else Call disp
      else if opc = rop_jcc then
        let c = cond_of_int ((payload lsr 14) land 7) in
        Jcc (c, sign_extend (payload land 0x3FFF) 14 * 4)
      else if opc = rop_indjmp then IndJmp (r4 0)
      else if opc = rop_indcall then IndCall (r4 0)
      else if opc = rop_indcallmem then
        IndCallMem
          ( base_of_int ((payload lsr 14) land 31),
            sign_extend (payload land 0x3FFF) 14 )
      else if opc = rop_callrt then CallRt (payload land 0xFFFF)
      else if opc = rop_mflr then Mflr (r4 0)
      else if opc = rop_mtlr then Mtlr (r4 0)
      else if opc = rop_mttar then Mttar (r4 0)
      else if opc = rop_btar then Btar
      else if opc = rop_adrp then
        Adrp (r4 21, sign_extend (payload land 0x1FFFFF) 21 * 4096)
      else if opc = rop_addis then Addis (r4 20, r4 16, imm16s)
      else Illegal
    in
    (* A decoded conditional-branch payload for cond 6 or 7 is invalid. *)
    let insn =
      if opc = rop_jcc && (payload lsr 14) land 7 > 5 then Insn.Illegal
      else insn
    in
    (insn, 4)

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)
(* ------------------------------------------------------------------ *)

let length arch i =
  match arch with
  | Arch.X86_64 -> x86_length i
  | Arch.Ppc64le | Arch.Aarch64 ->
      (* Validate encodability eagerly so [length] and [encode] agree. *)
      ignore (risc_word arch i);
      4

let encode_into arch b ~pos i =
  match arch with
  | Arch.X86_64 -> x86_encode_into b ~pos i
  | Arch.Ppc64le | Arch.Aarch64 ->
      let w = risc_word arch i in
      put32 b pos w;
      4

let encode arch i =
  let b = Bytes.make 16 '\000' in
  let n = encode_into arch b ~pos:0 i in
  Bytes.sub_string b 0 n

let decode arch s ~pos =
  if pos >= String.length s then (Insn.Illegal, Arch.min_insn_size arch)
  else
    match arch with
    | Arch.X86_64 -> x86_decode s ~pos
    | Arch.Ppc64le | Arch.Aarch64 -> risc_decode arch s ~pos

let decode_bytes arch b ~pos = decode arch (Bytes.unsafe_to_string b) ~pos

let short_jmp_len = function Arch.X86_64 -> 2 | Arch.Ppc64le | Arch.Aarch64 -> 4
let wide_jmp_len = function Arch.X86_64 -> 5 | Arch.Ppc64le | Arch.Aarch64 -> 4

let jmp_fits arch ~wide d =
  match arch with
  | Arch.X86_64 -> if wide then fits_signed d 32 else fits_signed d 8
  | Arch.Ppc64le | Arch.Aarch64 ->
      d land 3 = 0 && fits_signed (d asr 2) (branch_disp_bits arch)

let encode_jmp arch ~wide d =
  match arch with
  | Arch.X86_64 ->
      if wide then (
        check_signed "branch displacement" d 32;
        let b = Bytes.make 5 '\000' in
        put8 b 0 xop_jmp_near;
        put32 b 1 d;
        Bytes.to_string b)
      else (
        check_signed "branch displacement" d 8;
        let b = Bytes.make 2 '\000' in
        put8 b 0 xop_jmp_short;
        put8 b 1 d;
        Bytes.to_string b)
  | Arch.Ppc64le | Arch.Aarch64 -> encode arch (Jmp d)

let max_insn_len = function Arch.X86_64 -> 15 | Arch.Ppc64le | Arch.Aarch64 -> 4
