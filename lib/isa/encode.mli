(** Per-architecture instruction encoding.

    x86-64 uses a variable-length byte encoding (1-10 bytes); ppc64le and
    aarch64 use fixed 4-byte words with bit-packed fields. Displacement
    fields have architecture-specific widths which give exactly the branching
    ranges of Table 2 in the paper; encoding a branch whose displacement does
    not fit raises {!Not_encodable}, which is what forces the rewriter into
    long trampoline sequences, multi-trampoline hops, or traps.

    The decoder is total: any byte sequence decodes, with undecodable bytes
    yielding {!Insn.Illegal}. This supports the paper's strong correctness
    test, which overwrites all original code bytes with illegal instructions
    before installing trampolines (section 8). *)

exception Not_encodable of string

val length : Arch.t -> Insn.t -> int
(** Encoded length in bytes of the canonical encoding. On x86-64 the
    canonical [Jmp]/[Jcc] encoding is the wide (near) form, matching the
    synthetic compiler, which never emits short branches; short forms are
    produced only via {!encode_jmp}. *)

val encode : Arch.t -> Insn.t -> string
(** Canonical encoding. Raises {!Not_encodable} if the instruction does not
    exist on the architecture or a field overflows. *)

val encode_into : Arch.t -> Bytes.t -> pos:int -> Insn.t -> int
(** Encode in place; returns the number of bytes written. *)

val decode : Arch.t -> string -> pos:int -> Insn.t * int
(** [decode arch code ~pos] decodes one instruction, returning it with its
    length. Never raises on in-bounds [pos]; undecodable bytes give
    [(Illegal, min_insn_size)]. *)

val decode_bytes : Arch.t -> Bytes.t -> pos:int -> Insn.t * int

(** {1 Branch encodings for trampolines} *)

val short_jmp_len : Arch.t -> int
(** Length of the short unconditional branch (2 bytes on x86-64, 4 on
    ppc64le/aarch64) — the first row of each architecture in Table 2. *)

val wide_jmp_len : Arch.t -> int
(** Length of the wide direct branch encoding: 5 bytes on x86-64; on
    ppc64le/aarch64 the direct branch has a single form so this equals
    {!short_jmp_len}. *)

val jmp_fits : Arch.t -> wide:bool -> int -> bool
(** Whether displacement [d] fits the (short or wide) direct branch. *)

val branch_disp_bits : ?opcode:string -> Arch.t -> int
(** Width of the RISC branch displacement field in 4-byte instruction
    units (24 on ppc64le, 26 on aarch64). x86-64 branches carry
    byte-granular displacements, so asking for it there raises
    [Invalid_argument] naming [opcode] (default ["branch"]) — a
    descriptive caller-bug diagnostic rather than an [Assert_failure]. *)

val encode_jmp : Arch.t -> wide:bool -> int -> string
(** Encode a direct branch with displacement [d] in the requested form.
    Raises {!Not_encodable} if out of range. *)

val max_insn_len : Arch.t -> int
(** Upper bound on instruction length (15 on x86-64 per the real ISA's
    limit; 4 elsewhere). *)
