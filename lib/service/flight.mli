(** Flight recorder: a bounded, constant-memory record of the daemon's
    recent and worst behavior, so [icfg serve] can explain itself after
    the fact without keeping every request's trace alive.

    Three bounded retention classes:
    - the last [ring] request {e summaries} (approach, outcome, ns —
      cheap, no trace);
    - the full traces of the [slowest] slowest requests seen so far
      (latency post-mortems);
    - the full traces of the last [errors] {e errored} requests (crash
      post-mortems — the trace an [Error] frame would otherwise discard
      with the request).

    Recording takes the recorder's mutex and is O(bound); concurrent
    executor domains may record freely. Observation-only: nothing in the
    request path reads the recorder. *)

type summary = {
  fs_id : int;  (** dense per-recorder sequence number, from 1 *)
  fs_approach : string;
  fs_outcome : string;  (** ["rewritten"], ["error"], ["classified-verified"], … *)
  fs_ns : int;  (** request body wall time *)
  fs_errored : bool;
}

type t

val create : ?ring:int -> ?slowest:int -> ?errors:int -> unit -> t
(** Bounds (all min 1): [ring] summaries (default 64), [slowest] retained
    slow traces (default 8), [errors] retained errored traces
    (default 16). *)

val record :
  t ->
  approach:string ->
  outcome:string ->
  ns:int ->
  errored:bool ->
  trace_json:string ->
  unit
(** Record one completed request. [trace_json] is the request's full
    {!Icfg_core.Trace.to_json} dump; it is retained only if the request
    errored or ranks among the slowest seen. *)

type snapshot = {
  fl_recorded : int;  (** requests ever recorded (≥ ring length) *)
  fl_recent : summary list;  (** newest first, ≤ ring bound *)
  fl_slowest : (summary * string) list;  (** slowest first, with traces *)
  fl_errors : (summary * string) list;  (** newest first, with traces *)
}

val snapshot : t -> snapshot

val to_json : snapshot -> string
(** Schema [icfg-flight/1]. Retained traces are embedded as parsed
    objects (they are already [icfg-trace/1] JSON), not re-escaped
    strings, so the document stays grep-able. *)
