(** Corpus sweep through a live daemon — the deployment-shaped twin of
    {!Icfg_harness.Matrix.run}: every (binary, approach) cell travels the
    wire as a [Classify] request and is evaluated in-daemon by the same
    [Matrix.eval_cell], so classification rows must equal the in-process
    sweep's exactly (wall times aside). {!check} pins that equality and
    the CI serve-smoke step gates it. *)

type payload_mode =
  | Full_upload  (** every request ships the whole Binfile (the default) *)
  | By_ref
      (** register every binary once up front, then ship 32-byte [Ref]
          digests; a [NeedFull] (evicted base) falls back to a full
          upload, which re-registers *)

type result = {
  sw_seed : int;
  sw_count : int;
  sw_clients : int;
  sw_rows : Icfg_harness.Matrix.row list;
      (** roster order; cells aggregated in corpus order *)
  sw_requests : int;  (** daemon-side answered work requests *)
  sw_overloaded : int;  (** should be 0: the sweep bounds in-flight by clients *)
  sw_errors : int;  (** client-observed transport/Error responses *)
  sw_cache : Icfg_core.Cache.stats;  (** the daemon's cross-request cache *)
  sw_hit_rate : float;
  sw_wall_ns : float;
  sw_rps : float;  (** cells per second through the daemon *)
  sw_metrics : Icfg_core.Metrics.snapshot;
      (** the daemon's merged telemetry snapshot taken just before stop —
          exactly what a live [Stats] frame would have answered *)
  sw_wire_req_bytes : int;
      (** request wire bytes actually shipped during the timed stream
          (computed from the frame grammar; excludes registration) *)
  sw_full_req_bytes : int;
      (** what the same stream would have shipped as all-[Full] uploads *)
  sw_register_bytes : int;  (** one-time [Register] upload bytes (By_ref) *)
  sw_needfull : int;  (** typed [NeedFull] fallbacks taken *)
}

val run :
  ?seed:int ->
  ?count:int ->
  ?clients:int ->
  ?jobs:int ->
  ?workers:int ->
  ?bound:int ->
  ?payload_mode:payload_mode ->
  unit ->
  result
(** Start a daemon on a fresh temp socket, drive the
    [Corpus.generate ~seed ~count] × roster grid through it with
    [clients] concurrent client threads (corpus-major item order), stop
    the daemon. Binaries are prebuilt (and serialized) serially before
    the clock starts; [By_ref] registration also happens off the clock. *)

val check :
  ?seed:int ->
  ?count:int ->
  ?clients:int ->
  ?jobs:int ->
  unit ->
  bool * string * result
(** Run {!run} and {!Icfg_harness.Matrix.run} on the same slice and
    compare per-approach classification rows with times stripped.
    Returns (match?, printable report, daemon result). *)
