module Cache = Icfg_core.Cache
module Baseline = Icfg_baselines.Baseline
module Corpus = Icfg_workloads.Corpus
module Matrix = Icfg_harness.Matrix

(* Corpus sweep through a live daemon: the deployment-shaped twin of
   [Matrix.run]. Every (binary, approach) cell travels the wire as a
   [Classify] request and is evaluated in-daemon by the same
   [Matrix.eval_cell] the in-process sweep uses, so the per-approach
   classification rows must match [Matrix.run] exactly (times aside) —
   [check] pins that, and CI gates it.

   Client model: [clients] threads, each with its own connection,
   pulling (entry, approach) work items off one shared index in corpus-
   major order. Classifications are interleaving-independent because
   cache hits are content-addressed (a hit returns exactly what a miss
   would compute); only wall times and the hit/miss split vary. *)

type payload_mode = Full_upload | By_ref

type result = {
  sw_seed : int;
  sw_count : int;
  sw_clients : int;
  sw_rows : Matrix.row list; (* roster order; cells in corpus order *)
  sw_requests : int;
  sw_overloaded : int;
  sw_errors : int;
  sw_cache : Cache.stats;
  sw_hit_rate : float;
  sw_wall_ns : float;
  sw_rps : float;
  sw_metrics : Icfg_core.Metrics.snapshot;
  sw_wire_req_bytes : int;
  sw_full_req_bytes : int;
  sw_register_bytes : int;
  sw_needfull : int;
}

(* Request wire cost, computed arithmetically from the frame grammar
   (DESIGN §15) rather than by instrumenting the socket: deterministic,
   and exactly what [write_frame] ships. *)
let req_overhead ~approach =
  4 (* frame len *) + String.length Protocol.magic + 1 (* tag *)
  + 4 + String.length approach
  + 4 (* jobs *)

let full_bpay_len bin_len = 1 + 4 + bin_len
let ref_bpay_len = 1 + 4 + 32 (* hex MD5 digest *)

let register_wire_bytes bin_len =
  4 + String.length Protocol.magic + 1 + 4 + bin_len

let socket_counter = Atomic.make 0

let fresh_socket_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "icfg-serve-%d-%d.sock" (Unix.getpid ())
       (Atomic.fetch_and_add socket_counter 1))

let run ?(seed = 7) ?(count = 48) ?(clients = 4) ?(jobs = 1) ?workers ?bound
    ?(payload_mode = Full_upload) () =
  let clients = max 1 clients in
  let entries = Corpus.generate ~seed ~count in
  (* Build once, serially: the daemon rewrites binaries, it does not
     generate them, and building inside client threads would race the
     wall clock the throughput number measures. *)
  let bins = Array.of_list (List.map Corpus.build entries) in
  (* Serialize once too: both payload modes need the container bytes
     (the wire body in Full_upload, the registration upload + NeedFull
     fallback in By_ref), and serializing inside client threads would
     also race the clock. *)
  let bin_strs = Array.map Icfg_obj.Binfile.to_string bins in
  let digests = Array.map Store.digest bin_strs in
  let approaches = Array.of_list (List.map fst Baseline.approaches) in
  let n_app = Array.length approaches in
  let n_items = Array.length bins * n_app in
  let cells = Array.make n_items (0., Matrix.Crashed "unvisited") in
  let errors = Atomic.make 0 in
  let needfull = Atomic.make 0 in
  let retry_bytes = Atomic.make 0 in
  (* Connection threads block per in-flight request, so [clients] bounds
     daemon concurrency; a bound of [clients] can therefore never refuse
     — sweeps must be refusal-free or the equality gate would compare
     incomplete rows. *)
  let bound = match bound with Some b -> b | None -> max 64 clients in
  let workers = match workers with Some w -> w | None -> min 4 clients in
  let path = fresh_socket_path () in
  let srv = Server.start ~path ~bound ~workers ~jobs () in
  (* By_ref: one setup connection uploads every binary once, before the
     clock starts — the steady-state stream then ships 32-byte handles.
     Registration cost is reported separately ([sw_register_bytes]). *)
  let register_bytes =
    match payload_mode with
    | Full_upload -> 0
    | By_ref ->
        Client.with_connection path (fun c ->
            Array.fold_left
              (fun acc s ->
                (match Client.register_bytes c s with
                | Ok (Protocol.Registered _) -> ()
                | _ -> Atomic.incr errors);
                acc + register_wire_bytes (String.length s))
              0 bin_strs)
  in
  let next = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let client_body () =
    Client.with_connection path @@ fun c ->
    let rec pull () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n_items then begin
        let ei = i / n_app in
        let approach = approaches.(i mod n_app) in
        let resp =
          match payload_mode with
          | Full_upload ->
              Client.classify_payload c ~approach ~jobs
                (Protocol.Full bin_strs.(ei))
          | By_ref -> (
              match
                Client.classify_payload c ~approach ~jobs
                  (Protocol.Ref digests.(ei))
              with
              | Ok (Protocol.NeedFull _) ->
                  (* Evicted or unseen base: fall back to a full upload
                     (re-registering it), and book the extra wire. *)
                  Atomic.incr needfull;
                  let b = bin_strs.(ei) in
                  Atomic.fetch_and_add retry_bytes
                    (req_overhead ~approach
                    + full_bpay_len (String.length b))
                  |> ignore;
                  Client.classify_payload c ~approach ~jobs (Protocol.Full b)
              | r -> r)
        in
        (match resp with
        | Ok (Protocol.Classified { cls; ns; _ }) -> cells.(i) <- (ns, cls)
        | Ok (Protocol.Overloaded) ->
            Atomic.incr errors;
            cells.(i) <- (0., Matrix.Crashed "overloaded")
        | Ok (Protocol.Error { message = m; _ }) | Stdlib.Error m ->
            Atomic.incr errors;
            cells.(i) <- (0., Matrix.Crashed ("transport: " ^ m))
        | Ok _ ->
            Atomic.incr errors;
            cells.(i) <- (0., Matrix.Crashed "unexpected response"));
        pull ()
      end
    in
    pull ()
  in
  let threads =
    List.init clients (fun _ -> Thread.create client_body ())
  in
  List.iter Thread.join threads;
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let st = Server.stats srv in
  let cstats = Cache.stats (Server.cache srv) in
  (* Snapshot before stop: same merged view a live [Stats] frame gets. *)
  let msnap = Server.snapshot srv in
  Server.stop srv;
  let rows =
    List.mapi
      (fun ai approach ->
        let cells_of =
          List.init (Array.length bins) (fun ei -> cells.((ei * n_app) + ai))
        in
        Matrix.row_of ~approach cells_of)
      (Array.to_list approaches)
  in
  (* What every cell would cost as a full upload vs what this mode
     actually shipped — the per-request wire saving the serve-ref bench
     row reports. *)
  let per_item_full ai ei =
    req_overhead ~approach:approaches.(ai)
    + full_bpay_len (String.length bin_strs.(ei))
  in
  let full_req_bytes = ref 0 in
  for i = 0 to n_items - 1 do
    full_req_bytes := !full_req_bytes + per_item_full (i mod n_app) (i / n_app)
  done;
  let wire_req_bytes =
    match payload_mode with
    | Full_upload -> !full_req_bytes
    | By_ref ->
        let base = ref 0 in
        for i = 0 to n_items - 1 do
          base := !base + req_overhead ~approach:approaches.(i mod n_app)
                  + ref_bpay_len
        done;
        !base + Atomic.get retry_bytes
  in
  {
    sw_seed = seed;
    sw_count = count;
    sw_clients = clients;
    sw_rows = rows;
    sw_requests = st.Server.requests;
    sw_overloaded = st.Server.overloaded;
    sw_errors = Atomic.get errors;
    sw_cache = cstats;
    sw_hit_rate = Cache.hit_rate cstats;
    sw_wall_ns = wall_ns;
    sw_rps =
      (if wall_ns > 0. then float_of_int n_items /. (wall_ns /. 1e9) else 0.);
    sw_metrics = msnap;
    sw_wire_req_bytes = wire_req_bytes;
    sw_full_req_bytes = !full_req_bytes;
    sw_register_bytes = register_bytes;
    sw_needfull = Atomic.get needfull;
  }

(* Strip what legitimately varies (wall times) and keep what must not
   (classification counts and refusal histograms, per approach). *)
let strip_row (r : Matrix.row) =
  { r with Matrix.row_p50_ns = 0.; row_p95_ns = 0. }

let row_to_string (r : Matrix.row) =
  Printf.sprintf "%-16s cells=%d verified=%d diverged=%d refused=%d crashed=%d%s"
    r.Matrix.row_approach r.Matrix.row_cells r.Matrix.row_verified
    r.Matrix.row_diverged r.Matrix.row_refused r.Matrix.row_crashed
    (match r.Matrix.row_refusals with
    | [] -> ""
    | l ->
        " refusals="
        ^ String.concat ","
            (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) l))

let check ?(seed = 7) ?(count = 48) ?(clients = 4) ?(jobs = 1) () =
  let daemon = run ~seed ~count ~clients ~jobs () in
  let inproc = Matrix.run ~seed ~count ~jobs () in
  let d_rows = List.map strip_row daemon.sw_rows in
  let m_rows = List.map strip_row inproc.Matrix.m_rows in
  let b = Buffer.create 512 in
  Printf.bprintf b
    "serve-check: seed %d, %d binaries, %d clients, jobs %d — %d requests, \
     %d overloaded, %d transport errors, cache hit-rate %.1f%%, %.1f req/s\n"
    seed count clients jobs daemon.sw_requests daemon.sw_overloaded
    daemon.sw_errors
    (100. *. daemon.sw_hit_rate)
    daemon.sw_rps;
  let ok = ref (daemon.sw_errors = 0 && daemon.sw_overloaded = 0) in
  if not !ok then
    Buffer.add_string b "  FAIL: sweep saw transport errors or refusals\n";
  List.iter2
    (fun (d : Matrix.row) (m : Matrix.row) ->
      if d = m then
        Printf.bprintf b "  ok    %s\n" (row_to_string d)
      else begin
        ok := false;
        Printf.bprintf b "  FAIL  daemon     %s\n" (row_to_string d);
        Printf.bprintf b "        in-process %s\n" (row_to_string m)
      end)
    d_rows m_rows;
  if !ok then Buffer.add_string b "  daemon == in-process: PASS\n";
  (!ok, Buffer.contents b, daemon)
