(** The [icfg serve] wire protocol: length-prefixed frames on a Unix
    socket, each framing one tagged, versioned payload (magic ["isrv1"]).

    Layout (see DESIGN §13 for the byte-level grammar):
    [frame := len:u32le payload], [payload := "isrv1" tag:u8 body], with
    every variable-length body field itself length-prefixed. Frames are
    capped at {!max_frame}; binaries travel as {!Icfg_obj.Binfile}
    container bytes.

    Decoding is total: [request_of_payload]/[response_of_payload] return
    [Error] on malformed input instead of raising, so a garbage frame
    costs one error response, never the connection loop. *)

val magic : string
val max_frame : int

type request =
  | Ping  (** liveness probe; answered inline by the accept side *)
  | Rewrite of { approach : string; jobs : int; bin : string }
      (** rewrite [bin] ({!Icfg_obj.Binfile} bytes) with the named
          {!Icfg_baselines.Baseline.approaches} roster entry *)
  | Classify of { approach : string; jobs : int; bin : string }
      (** run the full corpus-matrix cell (original run + rewrite + VM
          verification) in the daemon and return the classification *)
  | Stats of { flight : bool }
      (** telemetry scrape; answered inline by the connection thread
          (like {!Ping}), so a saturated daemon still answers and a
          scrape never perturbs the request queue it is observing. With
          [flight] the response also carries the flight-recorder dump. *)

type response =
  | Pong
  | Rewritten of { bin : string; counters : (string * int) list }
      (** rewritten {!Icfg_obj.Binfile} bytes + the request's isolated
          trace counter totals *)
  | Refused of { reason : string; counters : (string * int) list }
      (** the approach refused the binary (raw refusal message) *)
  | Classified of {
      cls : Icfg_harness.Matrix.cls;
      ns : float;
      counters : (string * int) list;
    }
  | Error of { message : string; counters : (string * int) list }
      (** typed crash containment: the driver raised; the daemon lives.
          Carries the request's isolated counter snapshot up to the point
          of the crash, same as the success paths — the counters nearest
          the fault are exactly the ones worth having. *)
  | Overloaded
      (** typed backpressure: the request queue was at its bound when the
          request arrived; nothing was enqueued *)
  | StatsSnapshot of {
      snap : Icfg_core.Metrics.snapshot;
      flight : string option;
    }
      (** structured registry snapshot (clients render JSON / Prometheus
          text locally, tests compare totals structurally); [flight] is
          the [icfg-flight/1] JSON dump when requested *)

val request_to_payload : request -> string
val response_to_payload : response -> string
val request_of_payload : string -> (request, string) result
val response_of_payload : string -> (response, string) result

(** {1 Framing over a file descriptor}

    Blocking, whole-frame reads/writes — connection handling runs on
    per-connection sys-threads, request execution on dedicated domains. *)

exception Malformed of string

val write_frame : Unix.file_descr -> string -> unit
(** Write one [len:u32le + payload] frame. [Invalid_argument] beyond
    {!max_frame}. *)

val read_frame : Unix.file_descr -> string option
(** Read one frame. [None] on a clean EOF at a frame boundary (normal
    client hang-up); raises {!Malformed} on mid-frame EOF or an
    out-of-bounds length. *)
