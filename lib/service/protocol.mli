(** The [icfg serve] wire protocol: length-prefixed frames on a Unix
    socket, each framing one tagged, versioned payload (magic ["isrv1"]).

    Layout (see DESIGN §13/§15 for the byte-level grammar):
    [frame := len:u32le payload], [payload := "isrv1" tag:u8 body], with
    every variable-length body field itself length-prefixed. Frames are
    capped at {!max_frame}; binaries travel as {!Icfg_obj.Binfile}
    container bytes — in full, by registered digest, or as a sparse
    byte-delta against a registered base.

    Decoding is total: [request_of_payload]/[response_of_payload] return
    [Error] on malformed input instead of raising, so a garbage frame
    costs one error response, never the connection loop. *)

val magic : string
val max_frame : int

type payload =
  | Full of string  (** whole {!Icfg_obj.Binfile} container bytes *)
  | Ref of string
      (** digest of a binary already registered with the daemon; costs
          32 wire bytes instead of the binary *)
  | Patch of { base : string; total_len : int; ranges : (int * string) list }
      (** sparse byte-delta against registered base [base]: reconstruct
          by truncating/zero-extending the base to [total_len], then
          blitting each [(offset, bytes)] range. The edit→re-rewrite
          loop ships only its edits. *)

type request =
  | Ping  (** liveness probe; answered inline by the accept side *)
  | Rewrite of { approach : string; jobs : int; payload : payload }
      (** rewrite the payload binary with the named
          {!Icfg_baselines.Baseline.approaches} roster entry *)
  | Classify of { approach : string; jobs : int; payload : payload }
      (** run the full corpus-matrix cell (original run + rewrite + VM
          verification) in the daemon and return the classification *)
  | Stats of { flight : bool }
      (** telemetry scrape; answered inline by the connection thread
          (like {!Ping}), so a saturated daemon still answers and a
          scrape never perturbs the request queue it is observing. With
          [flight] the response also carries the flight-recorder dump. *)
  | Register of { bin : string }
      (** upload {!Icfg_obj.Binfile} bytes into the daemon's bounded
          content-addressed store once; later requests reference them by
          digest ([Ref]) or patch against them ([Patch]) *)

type response =
  | Pong
  | Rewritten of {
      bin : string;
      digest : string;
      counters : (string * int) list;
    }
      (** rewritten {!Icfg_obj.Binfile} bytes + the request's isolated
          trace counter totals. [digest] names the {e result}, which the
          daemon has registered — chain the next [Patch] against it. *)
  | Refused of {
      reason : string;
      digest : string;
      counters : (string * int) list;
    }
      (** the approach refused the binary (raw refusal message);
          [digest] names the resolved input, now registered *)
  | Classified of {
      cls : Icfg_harness.Matrix.cls;
      ns : float;
      digest : string;
      counters : (string * int) list;
    }  (** [digest] names the resolved input, now registered *)
  | Error of { message : string; counters : (string * int) list }
      (** typed crash containment: the driver raised; the daemon lives.
          Carries the request's isolated counter snapshot up to the point
          of the crash, same as the success paths — the counters nearest
          the fault are exactly the ones worth having. Also the answer to
          an unreconstructible [Patch] (bad offsets, overlap). *)
  | Overloaded
      (** typed backpressure: the request queue was at its bound when the
          request arrived; nothing was enqueued *)
  | StatsSnapshot of {
      snap : Icfg_core.Metrics.snapshot;
      flight : string option;
    }
      (** structured registry snapshot (clients render JSON / Prometheus
          text locally, tests compare totals structurally); [flight] is
          the [icfg-flight/1] JSON dump when requested *)
  | Registered of { digest : string }  (** the store now holds the bytes *)
  | NeedFull of { digest : string }
      (** a [Ref]/[Patch] named a digest the store does not hold (never
          seen, or evicted) — re-send with a [Full] payload *)
  | Rejected of { reason : string }
      (** typed refusal of an upload the daemon will not hold: a frame
          over its configured limit, or a binary larger than the whole
          store. The connection stays open. *)

val request_to_payload : request -> string
val response_to_payload : response -> string
val request_of_payload : string -> (request, string) result
val response_of_payload : string -> (response, string) result

(** {1 Sparse byte deltas} *)

val apply_patch :
  base:string ->
  total_len:int ->
  (int * string) list ->
  (string, string) result
(** Reconstruct a binary from [base] (truncated or zero-extended to
    [total_len]) plus sorted-or-not byte ranges. Total: negative or
    out-of-bounds offsets, overlapping ranges, or an absurd [total_len]
    return [Error reason]. An empty range list is a valid (pure
    truncate/extend or identity) patch. *)

val diff_ranges : base:string -> string -> (int * string) list
(** [diff_ranges ~base target] computes sparse ranges such that
    [apply_patch ~base ~total_len:(String.length target) (diff_ranges
    ~base target) = Ok target]. Nearby differing runs coalesce, so a
    one-function edit stays a handful of ranges. *)

(** {1 Framing over a file descriptor}

    Blocking, whole-frame reads/writes — connection handling runs on
    per-connection sys-threads, request execution on dedicated domains. *)

exception Malformed of string

exception Oversized of int
(** A well-framed payload exceeded the caller's [?max] budget; the
    payload has been drained off the wire, so the connection is still
    frame-aligned and usable. Carries the offending length. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one [len:u32le + payload] frame. [Invalid_argument] beyond
    {!max_frame}. *)

val read_frame : ?max:int -> Unix.file_descr -> string option
(** Read one frame. [None] on a clean EOF at a frame boundary (normal
    client hang-up); raises {!Malformed} on mid-frame EOF or an
    out-of-bounds length, {!Oversized} on a frame over [max] (default
    and hard ceiling {!max_frame}) — the oversized payload is consumed,
    so the caller can refuse in-band and keep the connection. *)
