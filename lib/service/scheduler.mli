(** Bounded request scheduler for the [icfg serve] daemon: a FIFO of
    thunks drained by [workers] dedicated executor {e domains}.

    Domains, not sys-threads: {!Icfg_core.Trace.with_current} installs the
    ambient trace per-domain, so per-request isolation requires each
    in-flight request body to own its domain. The queue bound counts
    queued (not running) jobs; a full queue refuses at submit time —
    explicit backpressure, never blocking the accept loop. *)

type t

type 'a ticket
(** A one-shot mailbox for a submitted job's result. *)

val create :
  ?bound:int -> ?workers:int -> ?metrics:Icfg_core.Metrics.t -> unit -> t
(** [bound] (default 64, min 1): max queued jobs. [workers] (default 2,
    min 1): executor domains, spawned eagerly. With [metrics], the
    scheduler exports the [sched.queue_depth]/[sched.in_flight] gauges
    (updated at every enqueue/dequeue/completion), the [sched.jobs]
    executed-jobs counter, and the [sched.queue_wait] histogram (ns each
    job spent queued before an executor picked it up) — the saturation
    picture behind any [Overloaded] refusal. Telemetry is
    observation-only: scheduling decisions never read it. *)

val submit : t -> (unit -> 'a) -> 'a ticket option
(** Enqueue a job. [None] — and nothing enqueued — if the queue is at its
    bound or the scheduler is shutting down: the caller's typed
    [Overloaded] path. *)

val await : 'a ticket -> 'a
(** Block until the job finishes; re-raises the job's exception. (Server
    request bodies catch everything and return a typed error response,
    so awaiting a server ticket does not raise.) *)

val pending : t -> int
(** Jobs currently queued (excludes running). *)

val in_flight : t -> int
(** Jobs dequeued by an executor and still running. [pending] alone
    understates saturation — a full complement of executors with an
    empty queue is one submit away from refusing — so the server's
    stats report both. *)

val pause : t -> unit
(** Stop dequeueing; submissions still accepted up to the bound. With the
    executors parked, a test can fill the queue deterministically and pin
    the exact-[M]-refusals backpressure contract. *)

val resume : t -> unit

val shutdown : t -> unit
(** Drain the queue (accepted jobs hold tickets someone may be awaiting),
    stop and {e join} all executor domains. Idempotent. Further submits
    return [None]. *)
