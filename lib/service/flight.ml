type summary = {
  fs_id : int;
  fs_approach : string;
  fs_outcome : string;
  fs_ns : int;
  fs_errored : bool;
}

type t = {
  m : Mutex.t;
  ring_bound : int;
  slow_bound : int;
  err_bound : int;
  mutable next_id : int;
  mutable recorded : int;
  mutable ring : summary list; (* newest first, length <= ring_bound *)
  mutable ring_len : int;
  mutable slowest : (summary * string) list; (* ns-descending, <= slow_bound *)
  mutable errors : (summary * string) list; (* newest first, <= err_bound *)
}

let create ?(ring = 64) ?(slowest = 8) ?(errors = 16) () =
  {
    m = Mutex.create ();
    ring_bound = max 1 ring;
    slow_bound = max 1 slowest;
    err_bound = max 1 errors;
    next_id = 1;
    recorded = 0;
    ring = [];
    ring_len = 0;
    slowest = [];
    errors = [];
  }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Insert into the ns-descending slowest list, keeping the bound. Ties
   keep the earlier request (stable insert after equal elements). *)
let insert_slow bound entry l =
  let ns (s, _) = s.fs_ns in
  let rec ins = function
    | [] -> [ entry ]
    | x :: rest when ns x >= ns entry -> x :: ins rest
    | rest -> entry :: rest
  in
  take bound (ins l)

let record t ~approach ~outcome ~ns ~errored ~trace_json =
  Mutex.lock t.m;
  let s =
    {
      fs_id = t.next_id;
      fs_approach = approach;
      fs_outcome = outcome;
      fs_ns = ns;
      fs_errored = errored;
    }
  in
  t.next_id <- t.next_id + 1;
  t.recorded <- t.recorded + 1;
  t.ring <- s :: t.ring;
  t.ring_len <- t.ring_len + 1;
  if t.ring_len > t.ring_bound then begin
    t.ring <- take t.ring_bound t.ring;
    t.ring_len <- t.ring_bound
  end;
  t.slowest <- insert_slow t.slow_bound (s, trace_json) t.slowest;
  if errored then t.errors <- take t.err_bound ((s, trace_json) :: t.errors);
  Mutex.unlock t.m

type snapshot = {
  fl_recorded : int;
  fl_recent : summary list;
  fl_slowest : (summary * string) list;
  fl_errors : (summary * string) list;
}

let snapshot t =
  Mutex.lock t.m;
  let s =
    {
      fl_recorded = t.recorded;
      fl_recent = t.ring;
      fl_slowest = t.slowest;
      fl_errors = t.errors;
    }
  in
  Mutex.unlock t.m;
  s

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let summary_json s =
  Printf.sprintf
    "{\"id\": %d, \"approach\": \"%s\", \"outcome\": \"%s\", \"ns\": %d, \
     \"errored\": %b}"
    s.fs_id (json_escape s.fs_approach) (json_escape s.fs_outcome) s.fs_ns
    s.fs_errored

let to_json snap =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"icfg-flight/1\",\n";
  Printf.bprintf b "  \"recorded\": %d,\n" snap.fl_recorded;
  Buffer.add_string b "  \"recent\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      Buffer.add_string b (summary_json s))
    snap.fl_recent;
  Buffer.add_string b "\n  ],\n";
  let traced label entries =
    Printf.bprintf b "  \"%s\": [" label;
    List.iteri
      (fun i (s, trace) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "\n    {\"summary\": ";
        Buffer.add_string b (summary_json s);
        (* The retained trace is already an icfg-trace/1 document; embed
           it as an object (trim the trailing newline) so the flight dump
           stays one parseable tree. *)
        Buffer.add_string b ", \"trace\": ";
        Buffer.add_string b (String.trim trace);
        Buffer.add_string b "}")
      entries;
    Buffer.add_string b "\n  ]"
  in
  traced "slowest" snap.fl_slowest;
  Buffer.add_string b ",\n";
  traced "errors" snap.fl_errors;
  Buffer.add_string b "\n}\n";
  Buffer.contents b
