(** Bounded in-memory byte store with deterministic LRU eviction — the
    daemon's content-addressed binary store and its whole-response memo
    are both instances of this one structure.

    Eviction reuses {!Icfg_core.Cache}'s discipline: least-recently-used
    by an in-process access tick, ties broken by key, so the victim
    order is a deterministic function of the access history. A value
    larger than the whole store is refused ([add] returns [false]) —
    the server turns that into a typed [Rejected] frame. Thread-safe. *)

type t

type stats = {
  st_hits : int;  (** [find] found the key *)
  st_misses : int;  (** [find] did not *)
  st_stores : int;  (** successful [add]s *)
  st_evictions : int;  (** entries dropped to fit an [add] *)
  st_rejected : int;  (** [add]s refused: value over the whole capacity *)
  st_bytes : int;  (** current footprint, value bytes only *)
  st_entries : int;
}

val create : ?max_bytes:int -> unit -> t
(** Default capacity 1 GiB. *)

val digest : string -> string
(** Content digest used as the wire-visible binary handle (32 hex
    chars). *)

val add : t -> key:string -> string -> bool
(** Insert (or refresh) [key], evicting LRU entries until the value
    fits. [false] iff the value alone exceeds the store capacity —
    nothing is evicted in that case. *)

val find : t -> string -> string option
(** Lookup; a hit refreshes the entry's LRU tick. *)

val mem : t -> string -> bool
(** Presence probe that does not touch the LRU tick or hit/miss
    counters. *)

val stats : t -> stats
val max_bytes : t -> int
