(* Bounded in-memory byte store with deterministic LRU eviction — the
   daemon's binary store and its whole-response memo are both instances.

   Eviction reuses [Icfg_core.Cache]'s discipline: every access stamps
   the entry with a monotonically increasing tick, and when an insert
   would push the store past [max_bytes] the victim is the entry with
   the smallest tick, ties broken by key — so the victim order is a
   deterministic function of the access history, never of hash order.

   A value larger than the whole store is refused ([add] returns
   [false]) rather than evicting everything for nothing: the caller
   turns that into a typed wire refusal. All operations are
   mutex-protected; the store is shared by every connection thread. *)

type stats = {
  st_hits : int;
  st_misses : int;
  st_stores : int;
  st_evictions : int;
  st_rejected : int;  (* values over the whole-store capacity *)
  st_bytes : int;  (* current footprint (values only) *)
  st_entries : int;
}

type t = {
  max_bytes : int;
  tbl : (string, string * int ref) Hashtbl.t; (* key -> (value, last tick) *)
  lock : Mutex.t;
  mutable total : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable rejected : int;
}

let create ?(max_bytes = 1 lsl 30) () =
  {
    max_bytes = max 1 max_bytes;
    tbl = Hashtbl.create 64;
    lock = Mutex.create ();
    total = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
    rejected = 0;
  }

let digest s = Digest.to_hex (Digest.string s)

let bump t r =
  t.tick <- t.tick + 1;
  r := t.tick

(* Smallest tick wins; ties (possible only for entries never touched
   since a bulk seed) break by key, like Cache's disk victims. *)
let victim t =
  Hashtbl.fold
    (fun k (_, tick) best ->
      match best with
      | Some (bk, bt) when bt < !tick || (bt = !tick && bk <= k) -> best
      | _ -> Some (k, !tick))
    t.tbl None

let evict_until_fits t need =
  let rec go () =
    if t.total + need > t.max_bytes then
      match victim t with
      | None -> ()
      | Some (k, _) ->
          (match Hashtbl.find_opt t.tbl k with
          | Some (v, _) ->
              t.total <- t.total - String.length v;
              Hashtbl.remove t.tbl k;
              t.evictions <- t.evictions + 1
          | None -> ());
          go ()
  in
  go ()

let add t ~key value =
  Mutex.protect t.lock @@ fun () ->
  let n = String.length value in
  if n > t.max_bytes then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    (match Hashtbl.find_opt t.tbl key with
    | Some (old, tick) ->
        (* Content-addressed callers re-add the same bytes; keyed callers
           may genuinely replace. Either way the footprint stays exact. *)
        t.total <- t.total - String.length old;
        Hashtbl.remove t.tbl key;
        ignore tick
    | None -> ());
    evict_until_fits t n;
    t.total <- t.total + n;
    let tick = ref 0 in
    Hashtbl.replace t.tbl key (value, tick);
    bump t tick;
    t.stores <- t.stores + 1;
    true
  end

let find t key =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | Some (v, tick) ->
      bump t tick;
      t.hits <- t.hits + 1;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key =
  Mutex.protect t.lock @@ fun () -> Hashtbl.mem t.tbl key

let stats t =
  Mutex.protect t.lock @@ fun () ->
  {
    st_hits = t.hits;
    st_misses = t.misses;
    st_stores = t.stores;
    st_evictions = t.evictions;
    st_rejected = t.rejected;
    st_bytes = t.total;
    st_entries = Hashtbl.length t.tbl;
  }

let max_bytes t = t.max_bytes
