module Binfile = Icfg_obj.Binfile

type t = { fd : Unix.file_descr }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd }

let close c = try Unix.close c.fd with _ -> ()
let fd c = c.fd

let with_connection path f =
  let c = connect path in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

let call c req =
  Protocol.write_frame c.fd (Protocol.request_to_payload req);
  match Protocol.read_frame c.fd with
  | None -> Stdlib.Error "server closed the connection"
  | Some p -> Protocol.response_of_payload p
  | exception Protocol.Malformed m -> Stdlib.Error m

let ping c = call c Protocol.Ping

let rewrite c ~approach ?(jobs = 0) bin =
  call c
    (Protocol.Rewrite
       { approach; jobs; bin = Bytes.to_string (Binfile.to_bytes bin) })

let classify c ~approach ?(jobs = 0) bin =
  call c
    (Protocol.Classify
       { approach; jobs; bin = Bytes.to_string (Binfile.to_bytes bin) })

let stats c ?(flight = false) () = call c (Protocol.Stats { flight })
