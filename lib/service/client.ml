module Binfile = Icfg_obj.Binfile

type t = { fd : Unix.file_descr }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd }

let close c = try Unix.close c.fd with _ -> ()
let fd c = c.fd

let with_connection path f =
  let c = connect path in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

let call c req =
  Protocol.write_frame c.fd (Protocol.request_to_payload req);
  match Protocol.read_frame c.fd with
  | None -> Stdlib.Error "server closed the connection"
  | Some p -> Protocol.response_of_payload p
  | exception Protocol.Malformed m -> Stdlib.Error m

let ping c = call c Protocol.Ping
let register_bytes c bin = call c (Protocol.Register { bin })
let register c bin = register_bytes c (Binfile.to_string bin)

(* NeedFull fallback: re-send with the full bytes when we have them
   ([fallback]), which also re-registers the base — the store heals and
   the next Ref/Patch round-trip is incremental again. One retry only:
   a Full payload cannot itself draw NeedFull. *)
let call_payload c make ~fallback payload =
  match call c (make payload) with
  | Ok (Protocol.NeedFull _) when fallback <> None -> (
      match fallback with
      | Some bin -> call c (make (Protocol.Full bin))
      | None -> assert false)
  | r -> r

let rewrite_payload c ~approach ?(jobs = 0) ?fallback payload =
  call_payload c
    (fun payload -> Protocol.Rewrite { approach; jobs; payload })
    ~fallback payload

let classify_payload c ~approach ?(jobs = 0) ?fallback payload =
  call_payload c
    (fun payload -> Protocol.Classify { approach; jobs; payload })
    ~fallback payload

let rewrite c ~approach ?(jobs = 0) bin =
  rewrite_payload c ~approach ~jobs (Protocol.Full (Binfile.to_string bin))

let classify c ~approach ?(jobs = 0) bin =
  classify_payload c ~approach ~jobs (Protocol.Full (Binfile.to_string bin))

let stats c ?(flight = false) () = call c (Protocol.Stats { flight })
