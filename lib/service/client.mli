(** Blocking client for the [icfg serve] daemon: one connection, one
    in-flight request at a time (concurrency = many clients, the model
    the throughput bench and the determinism battery use). *)

type t

val connect : string -> t
(** Connect to the daemon's Unix socket; raises [Unix.Unix_error] if no
    daemon is listening. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** The raw connection descriptor — lets tests speak raw frames at the
    daemon (e.g. the malformed-frame containment battery). *)

val with_connection : string -> (t -> 'a) -> 'a

val call : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request, await its response. [Error] covers a malformed
    response and a server hang-up; it never raises on protocol faults. *)

val ping : t -> (Protocol.response, string) result

val register :
  t -> Icfg_obj.Binary.t -> (Protocol.response, string) result
(** Upload a binary into the daemon's content-addressed store once
    ([Registered] with its digest on success, [Rejected] if the daemon
    will not hold it); later requests can ship [Ref]/[Patch] payloads
    against the digest instead of the binary. *)

val register_bytes : t -> string -> (Protocol.response, string) result
(** [register] for already-serialized {!Icfg_obj.Binfile} bytes. *)

val rewrite_payload :
  t ->
  approach:string ->
  ?jobs:int ->
  ?fallback:string ->
  Protocol.payload ->
  (Protocol.response, string) result
(** Submit a rewrite with an explicit payload (full bytes, [Ref digest],
    or a sparse [Patch]). With [fallback] (the full Binfile bytes), a
    typed [NeedFull] — the referenced base was evicted or never seen —
    is transparently retried as a full upload, which also re-registers
    the bytes so the incremental path heals for subsequent requests. *)

val classify_payload :
  t ->
  approach:string ->
  ?jobs:int ->
  ?fallback:string ->
  Protocol.payload ->
  (Protocol.response, string) result

val rewrite :
  t ->
  approach:string ->
  ?jobs:int ->
  Icfg_obj.Binary.t ->
  (Protocol.response, string) result
(** Submit [bin] for rewriting by the named roster approach ([jobs <= 0]
    or omitted: the daemon's default). Ships a [Full] payload. *)

val classify :
  t ->
  approach:string ->
  ?jobs:int ->
  Icfg_obj.Binary.t ->
  (Protocol.response, string) result
(** Submit a full corpus-matrix cell evaluation. Ships a [Full]
    payload. *)

val stats : t -> ?flight:bool -> unit -> (Protocol.response, string) result
(** Scrape the daemon's telemetry ([StatsSnapshot] on success). Answered
    inline by the connection thread — works while the daemon is
    saturated, and does not count as a served request. With [flight]
    the snapshot also carries the [icfg-flight/1] recorder dump. *)
