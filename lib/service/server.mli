(** The [icfg serve] daemon: a Unix-socket server speaking {!Protocol},
    scheduling request bodies on {!Scheduler} executor domains, reusing
    one {!Icfg_core.Cache.t} across every request it ever serves.

    Isolation contract: each request body runs under a fresh per-domain
    ambient trace ({!Icfg_core.Trace.with_current}), so two concurrent
    requests' counter totals each equal their solo-run totals.
    Backpressure contract: a request arriving while the scheduler queue
    is at its bound gets a typed [Overloaded] response immediately —
    the accept loop never blocks on a full queue. Crash containment:
    request bodies catch everything ([Error] response), connection
    failures kill only their connection, and no code path in the server
    calls [exit].

    Telemetry contract: every completed request is folded into a
    daemon-lifetime {!Icfg_core.Metrics.t} registry (its trace counter
    totals under [trace.*], schedule-independent stage times as
    [stage.*] histograms, and body wall time in a per-approach ×
    per-outcome [request.latency:<approach>:<outcome>] histogram) and
    summarized into a bounded {!Flight} recorder — after which the
    request's trace is dropped; memory use does not grow with requests
    served. Telemetry is observation-only: serving with and without a
    scraper attached produces byte-identical responses (pinned by the
    serve test battery), and a [Stats] request is answered inline on its
    connection thread, never scheduled, so a saturated daemon still
    answers and a scrape never perturbs the queue it reports on. *)

type t

val start :
  path:string ->
  ?bound:int ->
  ?workers:int ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  ?flight:Flight.t ->
  ?max_frame:int ->
  ?store_bytes:int ->
  ?memo_bytes:int ->
  unit ->
  t
(** Bind a Unix socket at [path] (an existing file is replaced), spawn
    the accept thread and [workers] executor domains (default 2).
    [bound] (default 64) is the request-queue bound. [jobs] (default 1)
    is the per-request pipeline parallelism used when a request carries
    [jobs <= 0]. [cache] (default: fresh) is the shared cross-request
    cache. [flight] (default: fresh with default bounds) is the flight
    recorder — injectable so tests can shrink the bounds.

    Incremental-protocol knobs: [max_frame] (default
    {!Protocol.max_frame}, clamped to it) bounds accepted request
    frames — an over-limit frame is drained and answered with a typed
    [Rejected], not a dropped connection. [store_bytes] / [memo_bytes]
    (default 1 GiB each) bound the content-addressed binary store and
    the whole-response memo; both evict LRU, and an evicted base turns
    later [Ref]/[Patch] requests into typed [NeedFull] responses. *)

val stop : t -> unit
(** Graceful shutdown, idempotent: stop accepting, drain queued requests
    (their connections get answers), join executor domains and
    connection threads, remove the socket file. *)

type stats = {
  requests : int;  (** work requests answered (rewritten/refused/classified/error) *)
  overloaded : int;  (** typed backpressure refusals *)
  errors : int;  (** [Error] responses (crashed drivers, malformed frames) *)
  pending : int;  (** scheduler jobs queued, not yet picked up *)
  in_flight : int;
      (** scheduler jobs running on executors right now. [pending] alone
          understates saturation — a full executor complement with an
          empty queue is one submit away from [Overloaded]. *)
}

val stats : t -> stats
val cache : t -> Icfg_core.Cache.t
val scheduler : t -> Scheduler.t
(** Exposed for the test battery ([pause]/[resume] make the
    exact-[M]-refusals backpressure test deterministic). *)

val sock_path : t -> string

val metrics : t -> Icfg_core.Metrics.t
(** The daemon-lifetime registry (scheduler gauges, [serve.*] totals,
    [trace.*] folds, [request.latency:*]/[stage.*] histograms). *)

val flight : t -> Flight.t

val store : t -> Store.t
(** The content-addressed binary store behind [Register]/[Ref]/[Patch]. *)

val response_memo : t -> Store.t
(** The whole-response memo: (kind, approach, normalized jobs, input
    digest) → first pipeline response's encoded payload. Replays answer
    from here on the connection thread, byte-identical, without entering
    the scheduler. Memo hits count as served requests and reach the
    flight recorder, but fold no [trace.*]/[stage.*] telemetry — there
    was no pipeline run to observe. *)

val snapshot : t -> Icfg_core.Metrics.snapshot
(** What a [Stats] frame answers: the registry snapshot merged with the
    shared cache's lifetime counters ([cache.hits], [cache.misses],
    [cache.stores], [cache.bytes_reused], [cache.evict_corrupt],
    [cache.evict_lru]), the binary store's ([store.hits], [store.misses],
    [store.stores], [store.evict_lru], [store.rejected] + [store.bytes]
    / [store.entries] gauges) and the response memo's, mirrored as
    [response_cache.hit], [response_cache.miss], [response_cache.stores],
    [response_cache.evict_lru] + [response_cache.bytes] /
    [response_cache.entries] gauges. *)
