(** The [icfg serve] daemon: a Unix-socket server speaking {!Protocol},
    scheduling request bodies on {!Scheduler} executor domains, reusing
    one {!Icfg_core.Cache.t} across every request it ever serves.

    Isolation contract: each request body runs under a fresh per-domain
    ambient trace ({!Icfg_core.Trace.with_current}), so two concurrent
    requests' counter totals each equal their solo-run totals.
    Backpressure contract: a request arriving while the scheduler queue
    is at its bound gets a typed [Overloaded] response immediately —
    the accept loop never blocks on a full queue. Crash containment:
    request bodies catch everything ([Error] response), connection
    failures kill only their connection, and no code path in the server
    calls [exit]. *)

type t

val start :
  path:string ->
  ?bound:int ->
  ?workers:int ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  unit ->
  t
(** Bind a Unix socket at [path] (an existing file is replaced), spawn
    the accept thread and [workers] executor domains (default 2).
    [bound] (default 64) is the request-queue bound. [jobs] (default 1)
    is the per-request pipeline parallelism used when a request carries
    [jobs <= 0]. [cache] (default: fresh) is the shared cross-request
    cache. *)

val stop : t -> unit
(** Graceful shutdown, idempotent: stop accepting, drain queued requests
    (their connections get answers), join executor domains and
    connection threads, remove the socket file. *)

type stats = {
  requests : int;  (** work requests answered (rewritten/refused/classified/error) *)
  overloaded : int;  (** typed backpressure refusals *)
  errors : int;  (** [Error] responses (crashed drivers, malformed frames) *)
}

val stats : t -> stats
val cache : t -> Icfg_core.Cache.t
val scheduler : t -> Scheduler.t
(** Exposed for the test battery ([pause]/[resume] make the
    exact-[M]-refusals backpressure test deterministic). *)

val sock_path : t -> string
