(* Bounded request scheduler: a FIFO of thunks drained by N dedicated
   executor *domains*.

   Domains, not sys-threads, on purpose: the per-request trace isolation
   contract (Trace.with_current is per-domain) only holds if two requests
   never share a domain's ambient slot. Threads of one domain share DLS;
   executor domains do not. Connection I/O threads never record traces,
   so they may share the accept domain freely.

   The bound counts *queued* jobs only. A submit that finds the queue at
   its bound returns None immediately — the caller turns that into a
   typed Overloaded response; nothing blocks, nothing is dropped
   silently. [pause]/[resume] gate dequeueing (not submission), which
   gives tests a deterministic way to fill the queue and lets a server
   drain gracefully. *)

type job = { run : unit -> unit }

type t = {
  m : Mutex.t;
  wake : Condition.t; (* queue became non-empty / unpaused / stopping *)
  queue : job Queue.t;
  bound : int;
  mutable paused : bool;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type 'a ticket = {
  tm : Mutex.t;
  tc : Condition.t;
  mutable result : ('a, exn) result option;
}

let worker_loop t =
  let rec next () =
    Mutex.lock t.m;
    let rec wait () =
      if (not t.stopping) && (t.paused || Queue.is_empty t.queue) then begin
        Condition.wait t.wake t.m;
        wait ()
      end
    in
    wait ();
    (* On shutdown the queue is drained first: every accepted job holds a
       ticket somebody may be awaiting, so dropping it would hang them. *)
    if Queue.is_empty t.queue then begin
      Mutex.unlock t.m;
      ()
    end
    else begin
      let j = Queue.pop t.queue in
      Mutex.unlock t.m;
      j.run ();
      next ()
    end
  in
  next ()

let create ?(bound = 64) ?(workers = 2) () =
  let t =
    {
      m = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      bound = max 1 bound;
      paused = false;
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t f =
  let tk = { tm = Mutex.create (); tc = Condition.create (); result = None } in
  let job () =
    let r = try Ok (f ()) with e -> Error e in
    Mutex.lock tk.tm;
    tk.result <- Some r;
    Condition.broadcast tk.tc;
    Mutex.unlock tk.tm
  in
  Mutex.lock t.m;
  if t.stopping || Queue.length t.queue >= t.bound then begin
    Mutex.unlock t.m;
    None
  end
  else begin
    Queue.push { run = job } t.queue;
    Condition.signal t.wake;
    Mutex.unlock t.m;
    Some tk
  end

let await tk =
  Mutex.lock tk.tm;
  let rec wait () =
    match tk.result with
    | None ->
        Condition.wait tk.tc tk.tm;
        wait ()
    | Some r -> r
  in
  let r = wait () in
  Mutex.unlock tk.tm;
  match r with Ok v -> v | Error e -> raise e

let pending t =
  Mutex.lock t.m;
  let n = Queue.length t.queue in
  Mutex.unlock t.m;
  n

let pause t =
  Mutex.lock t.m;
  t.paused <- true;
  Mutex.unlock t.m

let resume t =
  Mutex.lock t.m;
  t.paused <- false;
  Condition.broadcast t.wake;
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  t.paused <- false;
  Condition.broadcast t.wake;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.m;
  (* Join so short-lived servers (every test) release their domains:
     the runtime caps live domains, and unlike the global Pool these
     executors are per-server, not a process-wide singleton. *)
  List.iter Domain.join ws
