module Metrics = Icfg_core.Metrics

(* Bounded request scheduler: a FIFO of thunks drained by N dedicated
   executor *domains*.

   Domains, not sys-threads, on purpose: the per-request trace isolation
   contract (Trace.with_current is per-domain) only holds if two requests
   never share a domain's ambient slot. Threads of one domain share DLS;
   executor domains do not. Connection I/O threads never record traces,
   so they may share the accept domain freely.

   The bound counts *queued* jobs only. A submit that finds the queue at
   its bound returns None immediately — the caller turns that into a
   typed Overloaded response; nothing blocks, nothing is dropped
   silently. [pause]/[resume] gate dequeueing (not submission), which
   gives tests a deterministic way to fill the queue and lets a server
   drain gracefully.

   Telemetry (observation-only, optional): with [?metrics] the scheduler
   keeps the [sched.queue_depth] and [sched.in_flight] gauges current at
   every transition, counts executed jobs in [sched.jobs], and observes
   each job's submit→dequeue wait in the [sched.queue_wait] histogram —
   the saturation signals an Overloaded response should be correlated
   with. *)

(* [run] receives a [retire] thunk and must call it after computing its
   result but *before* publishing it: once a caller can observe the
   response, the telemetry gauges must already show the job gone — a
   scrape racing right behind the last response of a stream reads
   in-flight 0, not a transient 1. [retire] is idempotent; the worker
   calls it again in a [finally] as a backstop. *)
type job = { run : retire:(unit -> unit) -> unit; enq_ns : int64 }

type t = {
  m : Mutex.t;
  wake : Condition.t; (* queue became non-empty / unpaused / stopping *)
  queue : job Queue.t;
  bound : int;
  metrics : Metrics.t option;
  in_flight : int Atomic.t; (* dequeued, still running *)
  mutable paused : bool;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type 'a ticket = {
  tm : Mutex.t;
  tc : Condition.t;
  mutable result : ('a, exn) result option;
}

let gauge t name v =
  match t.metrics with Some m -> Metrics.set_gauge m name v | None -> ()

let worker_loop t =
  let rec next () =
    Mutex.lock t.m;
    let rec wait () =
      if (not t.stopping) && (t.paused || Queue.is_empty t.queue) then begin
        Condition.wait t.wake t.m;
        wait ()
      end
    in
    wait ();
    (* On shutdown the queue is drained first: every accepted job holds a
       ticket somebody may be awaiting, so dropping it would hang them. *)
    if Queue.is_empty t.queue then begin
      Mutex.unlock t.m;
      ()
    end
    else begin
      let j = Queue.pop t.queue in
      gauge t "sched.queue_depth" (Queue.length t.queue);
      Mutex.unlock t.m;
      Atomic.incr t.in_flight;
      (match t.metrics with
      | Some m ->
          Metrics.set_gauge m "sched.in_flight" (Atomic.get t.in_flight);
          Metrics.incr m "sched.jobs";
          Metrics.observe m "sched.queue_wait"
            (Int64.to_int (Int64.sub (Metrics.now_ns ()) j.enq_ns))
      | None -> ());
      let retired = ref false in
      let retire () =
        if not !retired then begin
          retired := true;
          Atomic.decr t.in_flight;
          gauge t "sched.in_flight" (Atomic.get t.in_flight)
        end
      in
      Fun.protect ~finally:retire (fun () -> j.run ~retire);
      next ()
    end
  in
  next ()

let create ?(bound = 64) ?(workers = 2) ?metrics () =
  let t =
    {
      m = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      bound = max 1 bound;
      metrics;
      in_flight = Atomic.make 0;
      paused = false;
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t f =
  let tk = { tm = Mutex.create (); tc = Condition.create (); result = None } in
  let job ~retire =
    let r = try Ok (f ()) with e -> Error e in
    retire ();
    Mutex.lock tk.tm;
    tk.result <- Some r;
    Condition.broadcast tk.tc;
    Mutex.unlock tk.tm
  in
  Mutex.lock t.m;
  if t.stopping || Queue.length t.queue >= t.bound then begin
    Mutex.unlock t.m;
    None
  end
  else begin
    Queue.push { run = job; enq_ns = Metrics.now_ns () } t.queue;
    gauge t "sched.queue_depth" (Queue.length t.queue);
    Condition.signal t.wake;
    Mutex.unlock t.m;
    Some tk
  end

let await tk =
  Mutex.lock tk.tm;
  let rec wait () =
    match tk.result with
    | None ->
        Condition.wait tk.tc tk.tm;
        wait ()
    | Some r -> r
  in
  let r = wait () in
  Mutex.unlock tk.tm;
  match r with Ok v -> v | Error e -> raise e

let pending t =
  Mutex.lock t.m;
  let n = Queue.length t.queue in
  Mutex.unlock t.m;
  n

let in_flight t = Atomic.get t.in_flight

let pause t =
  Mutex.lock t.m;
  t.paused <- true;
  Mutex.unlock t.m

let resume t =
  Mutex.lock t.m;
  t.paused <- false;
  Condition.broadcast t.wake;
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  t.paused <- false;
  Condition.broadcast t.wake;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.m;
  (* Join so short-lived servers (every test) release their domains:
     the runtime caps live domains, and unlike the global Pool these
     executors are per-server, not a process-wide singleton. *)
  List.iter Domain.join ws
