module Matrix = Icfg_harness.Matrix
module Metrics = Icfg_core.Metrics

(* Wire format (DESIGN §13, §15):

   frame   := len:u32le payload            len = |payload|, <= max_frame
   payload := magic:"isrv1" tag:u8 body

   body fields are themselves length-prefixed:
     str  := n:u32le byte*n
     i64  := 8 bytes LE
     f64  := IEEE-754 bits as i64
     ctrs := n:u32le (str i64)*n
     hist := n:u32le (str i64:count i64:sum k:u32le (u32:idx i64:n)*k)*n
     bpay := kind:u8 body                  binary payload, one of
               0x00 Full  body = str bin (Binfile bytes)
               0x01 Ref   body = str digest
               0x02 Patch body = str base_digest, u32 total_len,
                                 u32 nranges, (u32 off, str bytes)*nranges

   Request tags (high bit clear):
     0x01 Ping
     0x02 Rewrite   body = str approach, u32 jobs, bpay
     0x03 Classify  body = str approach, u32 jobs, bpay
     0x04 Stats     body = u8 flight?
     0x05 Register  body = str bin (Binfile bytes)
   Response tags (high bit set):
     0x81 Pong
     0x82 Rewritten     body = str bin, str digest (of the result), ctrs
     0x83 Refused       body = str reason, str digest (of the input), ctrs
     0x84 Classified    body = str cls (Matrix.cls_to_string), f64 ns,
                               str digest (of the input), ctrs
     0x85 Error         body = str message, ctrs
     0x86 Overloaded
     0x87 StatsSnapshot body = ctrs counters, ctrs gauges, hist,
                               u8 has_flight, str flight (if has_flight)
     0x88 Registered    body = str digest
     0x89 NeedFull      body = str digest (the unknown/evicted one)
     0x8A Rejected      body = str reason

   Decoding never raises across the module boundary: [request_of_payload]
   and [response_of_payload] return [Error _] on any malformed input, so a
   garbage frame is a refused request, not a dead connection thread. *)

let magic = "isrv1"
let max_frame = 256 * 1024 * 1024

type payload =
  | Full of string
  | Ref of string
  | Patch of { base : string; total_len : int; ranges : (int * string) list }

type request =
  | Ping
  | Rewrite of { approach : string; jobs : int; payload : payload }
  | Classify of { approach : string; jobs : int; payload : payload }
  | Stats of { flight : bool }
  | Register of { bin : string }

type response =
  | Pong
  | Rewritten of {
      bin : string;
      digest : string;
      counters : (string * int) list;
    }
  | Refused of {
      reason : string;
      digest : string;
      counters : (string * int) list;
    }
  | Classified of {
      cls : Matrix.cls;
      ns : float;
      digest : string;
      counters : (string * int) list;
    }
  | Error of { message : string; counters : (string * int) list }
  | Overloaded
  | StatsSnapshot of { snap : Metrics.snapshot; flight : string option }
  | Registered of { digest : string }
  | NeedFull of { digest : string }
  | Rejected of { reason : string }

(* ---------------- encoding ---------------- *)

let put_u32 b n = Buffer.add_int32_le b (Int32.of_int n)
let put_i64 b n = Buffer.add_int64_le b (Int64.of_int n)
let put_f64 b x = Buffer.add_int64_le b (Int64.bits_of_float x)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_ctrs b ctrs =
  put_u32 b (List.length ctrs);
  List.iter
    (fun (k, v) ->
      put_str b k;
      put_i64 b v)
    ctrs

let payload tag body =
  let b = Buffer.create (16 + String.length body) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr tag);
  Buffer.add_string b body;
  Buffer.contents b

let body f =
  let b = Buffer.create 64 in
  f b;
  Buffer.contents b

let put_payload b = function
  | Full bin ->
      Buffer.add_char b '\x00';
      put_str b bin
  | Ref digest ->
      Buffer.add_char b '\x01';
      put_str b digest
  | Patch { base; total_len; ranges } ->
      Buffer.add_char b '\x02';
      put_str b base;
      put_u32 b total_len;
      put_u32 b (List.length ranges);
      List.iter
        (fun (off, bytes) ->
          put_u32 b off;
          put_str b bytes)
        ranges

let request_to_payload = function
  | Ping -> payload 0x01 ""
  | Rewrite { approach; jobs; payload = p } ->
      payload 0x02
        (body (fun b ->
             put_str b approach;
             put_u32 b jobs;
             put_payload b p))
  | Classify { approach; jobs; payload = p } ->
      payload 0x03
        (body (fun b ->
             put_str b approach;
             put_u32 b jobs;
             put_payload b p))
  | Stats { flight } ->
      payload 0x04 (body (fun b -> Buffer.add_char b (if flight then '\x01' else '\x00')))
  | Register { bin } -> payload 0x05 (body (fun b -> put_str b bin))

let put_histos b histos =
  put_u32 b (List.length histos);
  List.iter
    (fun (name, (h : Metrics.histo)) ->
      put_str b name;
      put_i64 b h.Metrics.h_count;
      put_i64 b h.Metrics.h_sum;
      put_u32 b (List.length h.Metrics.h_buckets);
      List.iter
        (fun (idx, n) ->
          put_u32 b idx;
          put_i64 b n)
        h.Metrics.h_buckets)
    histos

let response_to_payload = function
  | Pong -> payload 0x81 ""
  | Rewritten { bin; digest; counters } ->
      payload 0x82
        (body (fun b ->
             put_str b bin;
             put_str b digest;
             put_ctrs b counters))
  | Refused { reason; digest; counters } ->
      payload 0x83
        (body (fun b ->
             put_str b reason;
             put_str b digest;
             put_ctrs b counters))
  | Classified { cls; ns; digest; counters } ->
      payload 0x84
        (body (fun b ->
             put_str b (Matrix.cls_to_string cls);
             put_f64 b ns;
             put_str b digest;
             put_ctrs b counters))
  | Error { message; counters } ->
      payload 0x85
        (body (fun b ->
             put_str b message;
             put_ctrs b counters))
  | Overloaded -> payload 0x86 ""
  | StatsSnapshot { snap; flight } ->
      payload 0x87
        (body (fun b ->
             put_ctrs b snap.Metrics.s_counters;
             put_ctrs b snap.Metrics.s_gauges;
             put_histos b snap.Metrics.s_histos;
             match flight with
             | None -> Buffer.add_char b '\x00'
             | Some f ->
                 Buffer.add_char b '\x01';
                 put_str b f))
  | Registered { digest } -> payload 0x88 (body (fun b -> put_str b digest))
  | NeedFull { digest } -> payload 0x89 (body (fun b -> put_str b digest))
  | Rejected { reason } -> payload 0x8A (body (fun b -> put_str b reason))

(* ---------------- decoding ---------------- *)

exception Malformed of string

type cursor = { s : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.s then raise (Malformed "truncated payload")

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Malformed "negative length") else v

let get_i64 c =
  need c 8;
  let v = Int64.to_int (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let get_f64 c =
  need c 8;
  let v = Int64.float_of_bits (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let get_str c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_ctrs c =
  let n = get_u32 c in
  if n > String.length c.s then raise (Malformed "counter count overflow");
  List.init n (fun _ ->
      let k = get_str c in
      let v = get_i64 c in
      (k, v))

let open_cursor s =
  let ml = String.length magic in
  if String.length s < ml + 1 then raise (Malformed "short payload");
  if String.sub s 0 ml <> magic then raise (Malformed "bad magic");
  let tag = Char.code s.[ml] in
  (tag, { s; pos = ml + 1 })

let finish c v =
  if c.pos <> String.length c.s then raise (Malformed "trailing bytes") else v

let decode f s =
  match f s with
  | v -> Ok v
  | exception Malformed m -> Stdlib.Error m
  | exception _ -> Stdlib.Error "malformed payload"

let get_payload c =
  need c 1;
  let kind = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  match kind with
  | 0x00 -> Full (get_str c)
  | 0x01 -> Ref (get_str c)
  | 0x02 ->
      let base = get_str c in
      let total_len = get_u32 c in
      let n = get_u32 c in
      if n > String.length c.s then raise (Malformed "range count overflow");
      let ranges =
        List.init n (fun _ ->
            let off = get_u32 c in
            let bytes = get_str c in
            (off, bytes))
      in
      Patch { base; total_len; ranges }
  | k -> raise (Malformed (Printf.sprintf "unknown payload kind 0x%02x" k))

let request_of_payload =
  decode (fun s ->
      let tag, c = open_cursor s in
      match tag with
      | 0x01 -> finish c Ping
      | 0x02 | 0x03 ->
          let approach = get_str c in
          let jobs = get_u32 c in
          let p = get_payload c in
          finish c
            (if tag = 0x02 then Rewrite { approach; jobs; payload = p }
             else Classify { approach; jobs; payload = p })
      | 0x04 ->
          need c 1;
          let flight = c.s.[c.pos] <> '\x00' in
          c.pos <- c.pos + 1;
          finish c (Stats { flight })
      | 0x05 ->
          let bin = get_str c in
          finish c (Register { bin })
      | t -> raise (Malformed (Printf.sprintf "unknown request tag 0x%02x" t)))

let get_histos c =
  let n = get_u32 c in
  if n > String.length c.s then raise (Malformed "histogram count overflow");
  List.init n (fun _ ->
      let name = get_str c in
      let h_count = get_i64 c in
      let h_sum = get_i64 c in
      let k = get_u32 c in
      if k > String.length c.s then raise (Malformed "bucket count overflow");
      let h_buckets =
        List.init k (fun _ ->
            let idx = get_u32 c in
            let v = get_i64 c in
            (idx, v))
      in
      (name, { Metrics.h_count; h_sum; h_buckets }))

let response_of_payload =
  decode (fun s ->
      let tag, c = open_cursor s in
      match tag with
      | 0x81 -> finish c Pong
      | 0x82 ->
          let bin = get_str c in
          let digest = get_str c in
          let counters = get_ctrs c in
          finish c (Rewritten { bin; digest; counters })
      | 0x83 ->
          let reason = get_str c in
          let digest = get_str c in
          let counters = get_ctrs c in
          finish c (Refused { reason; digest; counters })
      | 0x84 ->
          let cls_s = get_str c in
          let ns = get_f64 c in
          let digest = get_str c in
          let counters = get_ctrs c in
          let cls =
            match Matrix.cls_of_string cls_s with
            | Some cls -> cls
            | None -> raise (Malformed ("bad classification: " ^ cls_s))
          in
          finish c (Classified { cls; ns; digest; counters })
      | 0x85 ->
          let message = get_str c in
          let counters = get_ctrs c in
          finish c (Error { message; counters })
      | 0x86 -> finish c Overloaded
      | 0x87 ->
          let s_counters = get_ctrs c in
          let s_gauges = get_ctrs c in
          let s_histos = get_histos c in
          need c 1;
          let has_flight = c.s.[c.pos] <> '\x00' in
          c.pos <- c.pos + 1;
          let flight = if has_flight then Some (get_str c) else None in
          finish c
            (StatsSnapshot
               { snap = { Metrics.s_counters; s_gauges; s_histos }; flight })
      | 0x88 ->
          let digest = get_str c in
          finish c (Registered { digest })
      | 0x89 ->
          let digest = get_str c in
          finish c (NeedFull { digest })
      | 0x8A ->
          let reason = get_str c in
          finish c (Rejected { reason })
      | t -> raise (Malformed (Printf.sprintf "unknown response tag 0x%02x" t)))

(* ---------------- sparse byte deltas ---------------- *)

(* Reconstruction semantics: start from [base] truncated or zero-extended
   to [total_len], then blit each range. Validation is total — a hostile
   patch costs the requester a typed [Error], never a daemon fault. *)
let apply_patch ~base ~total_len ranges =
  if total_len < 0 then Stdlib.Error "bad patch: negative total length"
  else if total_len > max_frame then
    Stdlib.Error
      (Printf.sprintf "bad patch: total length %d over max frame" total_len)
  else begin
    let out = Bytes.make total_len '\x00' in
    Bytes.blit_string base 0 out 0 (min total_len (String.length base));
    let sorted =
      List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) ranges
    in
    let rec go prev_end = function
      | [] -> Ok (Bytes.unsafe_to_string out)
      | (off, bytes) :: rest ->
          let n = String.length bytes in
          if off < 0 then
            Stdlib.Error (Printf.sprintf "bad patch: negative offset %d" off)
          else if off + n > total_len then
            Stdlib.Error
              (Printf.sprintf "bad patch: range [%d,%d) outside length %d" off
                 (off + n) total_len)
          else if off < prev_end then
            Stdlib.Error
              (Printf.sprintf "bad patch: overlapping range at offset %d" off)
          else begin
            Bytes.blit_string bytes 0 out off n;
            go (off + n) rest
          end
    in
    go 0 sorted
  end

(* Byte-diff [target] against [base] (conceptually zero-padded to the
   target's length, mirroring [apply_patch]). Runs of differing bytes
   closer than [gap] apart coalesce into one range — fewer, slightly
   fatter ranges beat many 4-byte ones on framing overhead. *)
let diff_ranges ~base target =
  let bn = String.length base and tn = String.length target in
  let differs i =
    let t = String.unsafe_get target i in
    if i < bn then not (Char.equal t (String.unsafe_get base i))
    else not (Char.equal t '\x00')
  in
  let gap = 16 in
  let runs = ref [] in
  let i = ref 0 in
  while !i < tn do
    if differs !i then begin
      let start = !i in
      let stop = ref (!i + 1) in
      let j = ref (!i + 1) in
      let last_diff = ref !i in
      let scanning = ref true in
      while !scanning && !j < tn do
        if differs !j then begin
          last_diff := !j;
          stop := !j + 1;
          incr j
        end
        else if !j - !last_diff < gap then incr j
        else scanning := false
      done;
      runs := (start, !stop) :: !runs;
      i := !j
    end
    else incr i
  done;
  List.rev_map
    (fun (start, stop) -> (start, String.sub target start (stop - start)))
    !runs

(* ---------------- framing over a fd ---------------- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Bytes.unsafe_to_string b
    else
      match Unix.read fd b off (n - off) with
      | 0 -> raise (Malformed "connection closed mid-frame")
      | r -> go (off + r)
  in
  go 0

let write_frame fd p =
  let n = String.length p in
  if n > max_frame then invalid_arg "Protocol.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int n);
  write_all fd (Bytes.unsafe_to_string hdr ^ p)

exception Oversized of int

let drain fd n =
  let chunk = Bytes.create 65536 in
  let rec go remaining =
    if remaining > 0 then
      match Unix.read fd chunk 0 (min remaining (Bytes.length chunk)) with
      | 0 -> raise (Malformed "connection closed mid-frame")
      | r -> go (remaining - r)
  in
  go n

let read_frame ?(max = max_frame) fd =
  (* A clean EOF at a frame boundary is a normal hang-up (None); anything
     else mid-frame is a protocol violation and raises [Malformed] —
     except a well-framed payload over the caller's [max], which is
     drained off the wire and raised as [Oversized] so the connection
     stays usable for a typed refusal. *)
  let max = min max max_frame in
  let hdr = Bytes.create 4 in
  let r = Unix.read fd hdr 0 1 in
  if r = 0 then None
  else begin
    let rec go off =
      if off < 4 then
        match Unix.read fd hdr off (4 - off) with
        | 0 -> raise (Malformed "connection closed mid-frame")
        | r -> go (off + r)
    in
    go 1;
    let n = Int32.to_int (Bytes.get_int32_le hdr 0) in
    if n < 0 || n > max_frame then
      raise (Malformed (Printf.sprintf "frame length %d out of bounds" n));
    if n > max then begin
      drain fd n;
      raise (Oversized n)
    end;
    Some (read_exact fd n)
  end
