module Cache = Icfg_core.Cache
module Trace = Icfg_core.Trace
module Metrics = Icfg_core.Metrics
module Binfile = Icfg_obj.Binfile
module Baseline = Icfg_baselines.Baseline
module Rewriter = Icfg_core.Rewriter
module Runner = Icfg_harness.Runner
module Matrix = Icfg_harness.Matrix

(* The [icfg serve] daemon.

   Thread/domain layout: one accept sys-thread plus one sys-thread per
   connection do the framing I/O (they never record traces, so sharing
   the accept domain's DLS is harmless); request *bodies* run on the
   scheduler's dedicated executor domains, each under a fresh
   [Trace.with_current] — per-domain ambient traces are what keeps two
   concurrent requests' counters from bleeding into each other. One
   [Cache.t] is shared across every request for the life of the daemon:
   cross-request reuse is the point of serving.

   Crash containment: the request body catches everything and returns a
   typed [Error] response; the accept loop and connection loops never
   call [exit]. A malformed frame costs one [Error] response; a torn
   connection costs that connection only.

   Telemetry: every completed request folds its isolated trace into the
   daemon-lifetime [Metrics.t] registry (counter totals under [trace.*],
   schedule-independent span times as [stage.*] histograms, body wall
   time in a per-approach × per-outcome [request.latency:*] histogram)
   and drops a summary into the [Flight] recorder — then the trace is
   garbage; nothing per-request is kept alive. [Stats] requests are
   answered inline on the connection thread, like [Ping]: a saturated
   daemon still answers, and a scrape never touches the request queue,
   the cache, or any per-request state it is observing.

   Incremental protocol (DESIGN §15): two bounded [Store.t]s make the
   service boundary incremental. The *binary store* holds registered
   Binfile bytes content-addressed by digest, so [Ref]/[Patch] payloads
   ship a handle or a sparse delta instead of the binary; payload
   resolution happens on the connection thread (pure byte work, no
   pipeline state). The *response memo* maps (kind, approach, normalized
   jobs, input digest) to the encoded response payload of the first run,
   so a byte-identical replay is answered in O(1) on the connection
   thread without touching the scheduler — and, being the stored bytes
   of a real pipeline response, is byte-identical to what the pipeline
   would produce (pinned by the serve test battery). Memo hits fold no
   [trace.*]/[stage.*] telemetry — there was no pipeline run to
   observe — but still count as served requests and land in the flight
   recorder. *)

type t = {
  sock_path : string;
  listen_fd : Unix.file_descr;
  sched : Scheduler.t;
  srv_cache : Cache.t;
  store : Store.t;
  memo : Store.t;
  max_req : int;
  registry : Metrics.t;
  fl : Flight.t;
  default_jobs : int;
  cm : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable stopping : bool;
  n_requests : int Atomic.t;
  n_overloaded : int Atomic.t;
  n_errors : int Atomic.t;
}

type stats = {
  requests : int;
  overloaded : int;
  errors : int;
  pending : int;
  in_flight : int;
}

let stats t =
  {
    requests = Atomic.get t.n_requests;
    overloaded = Atomic.get t.n_overloaded;
    errors = Atomic.get t.n_errors;
    pending = Scheduler.pending t.sched;
    in_flight = Scheduler.in_flight t.sched;
  }

let cache t = t.srv_cache
let scheduler t = t.sched
let sock_path t = t.sock_path
let metrics t = t.registry
let flight t = t.fl
let store t = t.store
let response_memo t = t.memo

(* Registry snapshot + the shared cache's/stores' lifetime counters (each
   keeps its own stats; mirroring them per-lookup would double-count). *)
let snapshot t =
  let cs = Cache.stats t.srv_cache in
  let ss = Store.stats t.store in
  let ms = Store.stats t.memo in
  let cache_snap =
    {
      Metrics.empty with
      Metrics.s_counters =
        [
          ("cache.bytes_reused", cs.Cache.c_bytes_reused);
          ("cache.evict_corrupt", cs.Cache.c_evict_corrupt);
          ("cache.evict_lru", cs.Cache.c_evict_lru);
          ("cache.hits", cs.Cache.c_hits);
          ("cache.misses", cs.Cache.c_misses);
          ("cache.stores", cs.Cache.c_stores);
          ("response_cache.evict_lru", ms.Store.st_evictions);
          ("response_cache.hit", ms.Store.st_hits);
          ("response_cache.miss", ms.Store.st_misses);
          ("response_cache.stores", ms.Store.st_stores);
          ("store.evict_lru", ss.Store.st_evictions);
          ("store.hits", ss.Store.st_hits);
          ("store.misses", ss.Store.st_misses);
          ("store.rejected", ss.Store.st_rejected);
          ("store.stores", ss.Store.st_stores);
        ];
      Metrics.s_gauges =
        [
          ("response_cache.bytes", ms.Store.st_bytes);
          ("response_cache.entries", ms.Store.st_entries);
          ("store.bytes", ss.Store.st_bytes);
          ("store.entries", ss.Store.st_entries);
        ];
    }
  in
  Metrics.merge (Metrics.snapshot t.registry) cache_snap

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.sub s i m = sub || go (i + 1))
  in
  m > 0 && go 0

(* Histogram names must be deterministic across runs: keep the approach
   and the outcome *kind*, drop refusal keys / crash messages (those
   stay in the flight recorder where per-request detail belongs). *)
let outcome_label (resp : Protocol.response) =
  match resp with
  | Protocol.Pong -> "pong"
  | Protocol.Rewritten _ -> "rewritten"
  | Protocol.Refused _ -> "refused"
  | Protocol.Classified { cls; _ } ->
      let s = Matrix.cls_to_string cls in
      let kind =
        match String.index_opt s ':' with
        | Some i -> String.sub s 0 i
        | None -> s
      in
      "classified-" ^ kind
  | Protocol.Error _ -> "error"
  | Protocol.Overloaded -> "overloaded"
  | Protocol.StatsSnapshot _ -> "stats"
  | Protocol.Registered _ -> "registered"
  | Protocol.NeedFull _ -> "needfull"
  | Protocol.Rejected _ -> "rejected"

(* Fold one finished request into the lifetime telemetry. Counter totals
   are jobs-independent by the Trace contract, so [trace.*] sums across
   requests equal the sums of solo-run totals (pinned by the serve test
   battery). Span *shapes* are schedule-dependent only below [lane-*]
   forks — those rows are skipped; everything else lands in a [stage.*]
   latency histogram. *)
let fold_trace t tr ~approach ~outcome ~ns ~errored =
  let m = t.registry in
  Metrics.observe m ("request.latency:" ^ approach ^ ":" ^ outcome) ns;
  List.iter (fun (k, v) -> Metrics.add m ("trace." ^ k) v) (Trace.counters tr);
  List.iter
    (fun (r : Trace.row) ->
      if not (contains_sub r.Trace.r_path "lane-") then
        Metrics.observe m ("stage." ^ r.Trace.r_path) r.Trace.r_ns)
    (Trace.rows tr);
  Flight.record t.fl ~approach ~outcome ~ns ~errored
    ~trace_json:(Trace.to_json tr)

(* A fully resolved unit of scheduled work: the connection thread has
   already turned the payload (Full/Ref/Patch) into container bytes and
   their digest; executor domains only ever see bytes. *)
type work = {
  wk_kind : [ `Rewrite | `Classify ];
  wk_approach : string;
  wk_jobs : int;  (* normalized: the memo key needs one canonical value *)
  wk_bin : string;  (* resolved Binfile container bytes *)
  wk_digest : string;
}

(* Runs on an executor domain. Total: every failure becomes a typed
   response, so the daemon keeps serving whatever a request throws at
   it (the Matrix Crashed-cell contract, lifted to the wire). *)
let run_request t (w : work) : Protocol.response =
  let tr = Trace.create () in
  let t0 = Metrics.now_ns () in
  let resp =
    try
      Trace.with_current tr @@ fun () ->
      (* Decoding straight from the wire string (no [Bytes.of_string]
         round-trip) saves one whole-binary copy per request; the saved
         bytes are counted so the win shows up in [trace.*]. *)
      Trace.add "serve.bin_bytes_zero_copy" (String.length w.wk_bin);
      let bin = Binfile.of_string w.wk_bin in
      match w.wk_kind with
      | `Rewrite -> (
          match
            Runner.drive ~approach:w.wk_approach ~jobs:w.wk_jobs
              ~cache:t.srv_cache bin
          with
          | None ->
              Protocol.Error
                {
                  message = "unknown approach: " ^ w.wk_approach;
                  counters = Trace.counters tr;
                }
          | Some (Baseline.Rewritten rw) ->
              let out = Binfile.to_string rw.Rewriter.rw_binary in
              Trace.add "serve.bin_bytes_zero_copy" (String.length out);
              (* Register the result so the editor loop can chain its
                 next [Patch] against the digest we return. *)
              let digest = Store.digest out in
              ignore (Store.add t.store ~key:digest out);
              Protocol.Rewritten
                { bin = out; digest; counters = Trace.counters tr }
          | Some (Baseline.Refused reason) ->
              Protocol.Refused
                { reason; digest = w.wk_digest; counters = Trace.counters tr }
          )
      | `Classify ->
          let orig = Runner.run_original bin in
          let ns, cls =
            Matrix.eval_cell ~orig ~approach:w.wk_approach ~jobs:w.wk_jobs
              ~cache:t.srv_cache bin
          in
          Protocol.Classified
            { cls; ns; digest = w.wk_digest; counters = Trace.counters tr }
    with e ->
      (* [tr] was created before [with_current], so the counters the
         request accumulated up to the crash are still readable — the
         Error frame carries them like every success frame does. *)
      Protocol.Error
        { message = Printexc.to_string e; counters = Trace.counters tr }
  in
  let ns = Int64.to_int (Int64.sub (Metrics.now_ns ()) t0) in
  let errored = match resp with Protocol.Error _ -> true | _ -> false in
  fold_trace t tr ~approach:w.wk_approach
    ~outcome:(outcome_label resp)
    ~ns ~errored;
  resp

(* Turn a request payload into container bytes + digest, registering
   full uploads and patch results along the way (a reconstructed binary
   is as referenceable as an uploaded one). Pure byte work — runs on the
   connection thread, never the executors. *)
let resolve_payload t = function
  | Protocol.Full bin ->
      let digest = Store.digest bin in
      (* Opportunistic: a binary too large for the store still rewrites
         fine, it just can't be referenced later. *)
      ignore (Store.add t.store ~key:digest bin);
      Ok (bin, digest)
  | Protocol.Ref digest -> (
      match Store.find t.store digest with
      | Some bin -> Ok (bin, digest)
      | None -> Error (`Need_full digest))
  | Protocol.Patch { base; total_len; ranges } -> (
      match Store.find t.store base with
      | None -> Error (`Need_full base)
      | Some base_bytes -> (
          match Protocol.apply_patch ~base:base_bytes ~total_len ranges with
          | Ok bin ->
              let digest = Store.digest bin in
              ignore (Store.add t.store ~key:digest bin);
              Ok (bin, digest)
          | Error m -> Error (`Bad m)))

(* The response memo entry is the already-encoded response payload of
   the first (pipeline-computed) run, prefixed by its outcome label, so
   a replay answers with byte-identical wire bytes and still books the
   right serve.responses:* / error totals. *)
let memo_key (w : work) =
  (match w.wk_kind with `Rewrite -> "R:" | `Classify -> "C:")
  ^ w.wk_approach ^ ":"
  ^ string_of_int w.wk_jobs
  ^ ":" ^ w.wk_digest

let memo_pack ~outcome payload =
  String.make 1 (Char.chr (String.length outcome land 0xff)) ^ outcome ^ payload

let memo_unpack entry =
  let n = Char.code entry.[0] in
  (String.sub entry 1 n, String.sub entry (1 + n) (String.length entry - 1 - n))

let conn_loop t fd =
  let finally () =
    (try Unix.close fd with _ -> ());
    Mutex.lock t.cm;
    t.conns <- List.filter (fun f -> f != fd) t.conns;
    Mutex.unlock t.cm
  in
  Fun.protect ~finally @@ fun () ->
  let write_resp resp =
    Protocol.write_frame fd (Protocol.response_to_payload resp)
  in
  let error_resp m =
    Atomic.incr t.n_errors;
    Metrics.incr t.registry "serve.errors";
    write_resp (Protocol.Error { message = m; counters = [] })
  in
  (* Run (or replay) one resolved unit of work. The memo is consulted
     first: a byte-identical re-request answers with the stored payload
     of its first pipeline run — same wire bytes, same serve.* booking,
     a flight-recorder entry, and no scheduler traffic at all. *)
  let run_work w =
    let key = memo_key w in
    match Store.find t.memo key with
    | Some entry ->
        let t0 = Metrics.now_ns () in
        let outcome, payload = memo_unpack entry in
        let errored = String.equal outcome "error" in
        if errored then begin
          Atomic.incr t.n_errors;
          Metrics.incr t.registry "serve.errors"
        end;
        Atomic.incr t.n_requests;
        Metrics.incr t.registry "serve.requests";
        Metrics.incr t.registry ("serve.responses:" ^ outcome);
        let ns = Int64.to_int (Int64.sub (Metrics.now_ns ()) t0) in
        Metrics.observe t.registry
          ("request.latency:" ^ w.wk_approach ^ ":" ^ outcome)
          ns;
        Flight.record t.fl ~approach:w.wk_approach ~outcome ~ns ~errored
          ~trace_json:"{}";
        Protocol.write_frame fd payload
    | None ->
        let resp =
          match Scheduler.submit t.sched (fun () -> run_request t w) with
          | None ->
              Atomic.incr t.n_overloaded;
              Metrics.incr t.registry "serve.overloaded";
              Protocol.Overloaded
          | Some tk ->
              let r = Scheduler.await tk in
              (match r with
              | Protocol.Error _ ->
                  Atomic.incr t.n_errors;
                  Metrics.incr t.registry "serve.errors"
              | _ -> ());
              Atomic.incr t.n_requests;
              Metrics.incr t.registry "serve.requests";
              Metrics.incr t.registry ("serve.responses:" ^ outcome_label r);
              (match r with
              | Protocol.Rewritten _ | Protocol.Refused _
              | Protocol.Classified _ | Protocol.Error _ ->
                  ignore
                    (Store.add t.memo ~key
                       (memo_pack ~outcome:(outcome_label r)
                          (Protocol.response_to_payload r)))
              | _ -> ());
              r
        in
        write_resp resp
  in
  let handle kind ~approach ~jobs payload =
    match resolve_payload t payload with
    | Ok (bin, digest) ->
        run_work
          {
            wk_kind = kind;
            wk_approach = approach;
            wk_jobs = (if jobs <= 0 then t.default_jobs else jobs);
            wk_bin = bin;
            wk_digest = digest;
          }
    | Error (`Need_full digest) ->
        (* Typed miss, not an error: the base was evicted or never seen.
           Clients fall back to a full upload (which re-registers). *)
        Metrics.incr t.registry "serve.needfull";
        Metrics.incr t.registry "serve.responses:needfull";
        write_resp (Protocol.NeedFull { digest })
    | Error (`Bad m) -> error_resp m
  in
  try
    let rec loop () =
      match
        match Protocol.read_frame ~max:t.max_req fd with
        | frame -> `Frame frame
        | exception Protocol.Oversized n -> `Oversized n
      with
      | `Oversized n ->
          (* The payload was drained: refuse in-band, keep serving. *)
          Metrics.incr t.registry "serve.rejected";
          Metrics.incr t.registry "serve.responses:rejected";
          write_resp
            (Protocol.Rejected
               {
                 reason =
                   Printf.sprintf "frame of %d bytes over limit %d" n t.max_req;
               });
          loop ()
      | `Frame None -> ()
      | `Frame (Some p) ->
          (match Protocol.request_of_payload p with
          | Error m ->
              Atomic.incr t.n_errors;
              Metrics.incr t.registry "serve.errors";
              write_resp
                (Protocol.Error
                   { message = "malformed request: " ^ m; counters = [] })
          | Ok Protocol.Ping -> write_resp Protocol.Pong
          | Ok (Protocol.Stats { flight }) ->
              (* Inline, like Ping: scrapes must work under saturation
                 and must not count as served requests — a scrape is a
                 reading of the instruments, not a flight. *)
              let fl =
                if flight then Some (Flight.to_json (Flight.snapshot t.fl))
                else None
              in
              write_resp
                (Protocol.StatsSnapshot { snap = snapshot t; flight = fl })
          | Ok (Protocol.Register { bin }) ->
              (* Inline: pure store work, no pipeline state. A binary
                 larger than the whole store gets a typed refusal — the
                 connection (and daemon) keep going. *)
              let digest = Store.digest bin in
              if Store.add t.store ~key:digest bin then begin
                Metrics.incr t.registry "serve.registered";
                Metrics.incr t.registry "serve.responses:registered";
                write_resp (Protocol.Registered { digest })
              end
              else begin
                Metrics.incr t.registry "serve.rejected";
                Metrics.incr t.registry "serve.responses:rejected";
                write_resp
                  (Protocol.Rejected
                     {
                       reason =
                         Printf.sprintf
                           "binary of %d bytes exceeds store capacity %d"
                           (String.length bin)
                           (Store.max_bytes t.store);
                     })
              end
          | Ok (Protocol.Rewrite { approach; jobs; payload }) ->
              handle `Rewrite ~approach ~jobs payload
          | Ok (Protocol.Classify { approach; jobs; payload }) ->
              handle `Classify ~approach ~jobs payload);
          loop ()
    in
    loop ()
  with
  | Protocol.Malformed _ | Unix.Unix_error _ | End_of_file ->
      (* A torn or protocol-violating connection dies alone; the daemon
         and its other connections keep serving. *)
      ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if t.stopping then (try Unix.close fd with _ -> ())
        else begin
          Mutex.lock t.cm;
          t.conns <- fd :: t.conns;
          let th = Thread.create (fun () -> conn_loop t fd) () in
          t.conn_threads <- th :: t.conn_threads;
          Mutex.unlock t.cm
        end;
        if t.stopping then () else loop ()
    | exception Unix.Unix_error _ ->
        if t.stopping then ()
        else begin
          (* Spurious accept failure: back off briefly, keep accepting. *)
          Unix.sleepf 0.01;
          loop ()
        end
  in
  loop ()

let start ~path ?(bound = 64) ?(workers = 2) ?(jobs = 1) ?cache ?flight
    ?max_frame ?store_bytes ?memo_bytes () =
  (try Unix.unlink path with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let registry = Metrics.create () in
  let t =
    {
      sock_path = path;
      listen_fd;
      sched = Scheduler.create ~bound ~workers ~metrics:registry ();
      srv_cache = (match cache with Some c -> c | None -> Cache.create ());
      store = Store.create ?max_bytes:store_bytes ();
      memo = Store.create ?max_bytes:memo_bytes ();
      max_req =
        (match max_frame with
        | Some m -> max 1 (min m Protocol.max_frame)
        | None -> Protocol.max_frame);
      registry;
      fl = (match flight with Some f -> f | None -> Flight.create ());
      default_jobs = max 1 jobs;
      cm = Mutex.create ();
      conns = [];
      conn_threads = [];
      accept_thread = None;
      stopping = false;
      n_requests = Atomic.make 0;
      n_overloaded = Atomic.make 0;
      n_errors = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  Mutex.lock t.cm;
  let already = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.cm;
  if not already then begin
    (* Wake the accept loop portably: a blocked [Unix.accept] is not
       reliably interrupted by closing the fd from another thread, so
       poke it with a throwaway connection, then close. *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.sock_path) with _ -> ());
       Unix.close fd
     with _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (* Drain queued requests so awaiting connections get their answers,
       then stop and join the executor domains. *)
    Scheduler.shutdown t.sched;
    Mutex.lock t.cm;
    let conns = t.conns and threads = t.conn_threads in
    Mutex.unlock t.cm;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    List.iter Thread.join threads;
    (try Unix.unlink t.sock_path with _ -> ())
  end
