module Cache = Icfg_core.Cache
module Trace = Icfg_core.Trace
module Metrics = Icfg_core.Metrics
module Binfile = Icfg_obj.Binfile
module Baseline = Icfg_baselines.Baseline
module Rewriter = Icfg_core.Rewriter
module Runner = Icfg_harness.Runner
module Matrix = Icfg_harness.Matrix

(* The [icfg serve] daemon.

   Thread/domain layout: one accept sys-thread plus one sys-thread per
   connection do the framing I/O (they never record traces, so sharing
   the accept domain's DLS is harmless); request *bodies* run on the
   scheduler's dedicated executor domains, each under a fresh
   [Trace.with_current] — per-domain ambient traces are what keeps two
   concurrent requests' counters from bleeding into each other. One
   [Cache.t] is shared across every request for the life of the daemon:
   cross-request reuse is the point of serving.

   Crash containment: the request body catches everything and returns a
   typed [Error] response; the accept loop and connection loops never
   call [exit]. A malformed frame costs one [Error] response; a torn
   connection costs that connection only.

   Telemetry: every completed request folds its isolated trace into the
   daemon-lifetime [Metrics.t] registry (counter totals under [trace.*],
   schedule-independent span times as [stage.*] histograms, body wall
   time in a per-approach × per-outcome [request.latency:*] histogram)
   and drops a summary into the [Flight] recorder — then the trace is
   garbage; nothing per-request is kept alive. [Stats] requests are
   answered inline on the connection thread, like [Ping]: a saturated
   daemon still answers, and a scrape never touches the request queue,
   the cache, or any per-request state it is observing. *)

type t = {
  sock_path : string;
  listen_fd : Unix.file_descr;
  sched : Scheduler.t;
  srv_cache : Cache.t;
  registry : Metrics.t;
  fl : Flight.t;
  default_jobs : int;
  cm : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable stopping : bool;
  n_requests : int Atomic.t;
  n_overloaded : int Atomic.t;
  n_errors : int Atomic.t;
}

type stats = {
  requests : int;
  overloaded : int;
  errors : int;
  pending : int;
  in_flight : int;
}

let stats t =
  {
    requests = Atomic.get t.n_requests;
    overloaded = Atomic.get t.n_overloaded;
    errors = Atomic.get t.n_errors;
    pending = Scheduler.pending t.sched;
    in_flight = Scheduler.in_flight t.sched;
  }

let cache t = t.srv_cache
let scheduler t = t.sched
let sock_path t = t.sock_path
let metrics t = t.registry
let flight t = t.fl

(* Registry snapshot + the shared cache's lifetime counters (the cache
   keeps its own stats; mirroring them per-lookup would double-count). *)
let snapshot t =
  let cs = Cache.stats t.srv_cache in
  let cache_snap =
    {
      Metrics.empty with
      Metrics.s_counters =
        [
          ("cache.bytes_reused", cs.Cache.c_bytes_reused);
          ("cache.evict_corrupt", cs.Cache.c_evict_corrupt);
          ("cache.evict_lru", cs.Cache.c_evict_lru);
          ("cache.hits", cs.Cache.c_hits);
          ("cache.misses", cs.Cache.c_misses);
          ("cache.stores", cs.Cache.c_stores);
        ];
    }
  in
  Metrics.merge (Metrics.snapshot t.registry) cache_snap

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.sub s i m = sub || go (i + 1))
  in
  m > 0 && go 0

(* Histogram names must be deterministic across runs: keep the approach
   and the outcome *kind*, drop refusal keys / crash messages (those
   stay in the flight recorder where per-request detail belongs). *)
let outcome_label (resp : Protocol.response) =
  match resp with
  | Protocol.Pong -> "pong"
  | Protocol.Rewritten _ -> "rewritten"
  | Protocol.Refused _ -> "refused"
  | Protocol.Classified { cls; _ } ->
      let s = Matrix.cls_to_string cls in
      let kind =
        match String.index_opt s ':' with
        | Some i -> String.sub s 0 i
        | None -> s
      in
      "classified-" ^ kind
  | Protocol.Error _ -> "error"
  | Protocol.Overloaded -> "overloaded"
  | Protocol.StatsSnapshot _ -> "stats"

let approach_of (req : Protocol.request) =
  match req with
  | Protocol.Rewrite { approach; _ } | Protocol.Classify { approach; _ } ->
      approach
  | Protocol.Ping | Protocol.Stats _ -> "-"

(* Fold one finished request into the lifetime telemetry. Counter totals
   are jobs-independent by the Trace contract, so [trace.*] sums across
   requests equal the sums of solo-run totals (pinned by the serve test
   battery). Span *shapes* are schedule-dependent only below [lane-*]
   forks — those rows are skipped; everything else lands in a [stage.*]
   latency histogram. *)
let fold_trace t tr ~approach ~outcome ~ns ~errored =
  let m = t.registry in
  Metrics.observe m ("request.latency:" ^ approach ^ ":" ^ outcome) ns;
  List.iter (fun (k, v) -> Metrics.add m ("trace." ^ k) v) (Trace.counters tr);
  List.iter
    (fun (r : Trace.row) ->
      if not (contains_sub r.Trace.r_path "lane-") then
        Metrics.observe m ("stage." ^ r.Trace.r_path) r.Trace.r_ns)
    (Trace.rows tr);
  Flight.record t.fl ~approach ~outcome ~ns ~errored
    ~trace_json:(Trace.to_json tr)

(* Runs on an executor domain. Total: every failure becomes a typed
   response, so the daemon keeps serving whatever a request throws at
   it (the Matrix Crashed-cell contract, lifted to the wire). *)
let run_request t (req : Protocol.request) : Protocol.response =
  let jobs_of j = if j <= 0 then t.default_jobs else j in
  let tr = Trace.create () in
  let t0 = Metrics.now_ns () in
  let resp =
    try
      Trace.with_current tr @@ fun () ->
      match req with
      | Protocol.Ping -> Protocol.Pong
      | Protocol.Stats { flight } ->
          (* Normally intercepted inline by the connection loop; kept
             total here so a future scheduling path cannot crash it. *)
          let fl =
            if flight then Some (Flight.to_json (Flight.snapshot t.fl))
            else None
          in
          Protocol.StatsSnapshot { snap = snapshot t; flight = fl }
      | Protocol.Rewrite { approach; jobs; bin } -> (
          let bin = Binfile.of_bytes (Bytes.of_string bin) in
          match
            Runner.drive ~approach ~jobs:(jobs_of jobs) ~cache:t.srv_cache bin
          with
          | None ->
              Protocol.Error
                {
                  message = "unknown approach: " ^ approach;
                  counters = Trace.counters tr;
                }
          | Some (Baseline.Rewritten rw) ->
              Protocol.Rewritten
                {
                  bin =
                    Bytes.to_string (Binfile.to_bytes rw.Rewriter.rw_binary);
                  counters = Trace.counters tr;
                }
          | Some (Baseline.Refused reason) ->
              Protocol.Refused { reason; counters = Trace.counters tr })
      | Protocol.Classify { approach; jobs; bin } ->
          let bin = Binfile.of_bytes (Bytes.of_string bin) in
          let orig = Runner.run_original bin in
          let ns, cls =
            Matrix.eval_cell ~orig ~approach ~jobs:(jobs_of jobs)
              ~cache:t.srv_cache bin
          in
          Protocol.Classified { cls; ns; counters = Trace.counters tr }
    with e ->
      (* [tr] was created before [with_current], so the counters the
         request accumulated up to the crash are still readable — the
         Error frame carries them like every success frame does. *)
      Protocol.Error
        { message = Printexc.to_string e; counters = Trace.counters tr }
  in
  let ns = Int64.to_int (Int64.sub (Metrics.now_ns ()) t0) in
  let errored = match resp with Protocol.Error _ -> true | _ -> false in
  fold_trace t tr
    ~approach:(approach_of req)
    ~outcome:(outcome_label resp)
    ~ns ~errored;
  resp

let conn_loop t fd =
  let finally () =
    (try Unix.close fd with _ -> ());
    Mutex.lock t.cm;
    t.conns <- List.filter (fun f -> f != fd) t.conns;
    Mutex.unlock t.cm
  in
  Fun.protect ~finally @@ fun () ->
  try
    let rec loop () =
      match Protocol.read_frame fd with
      | None -> ()
      | Some p ->
          (match Protocol.request_of_payload p with
          | Error m ->
              Atomic.incr t.n_errors;
              Metrics.incr t.registry "serve.errors";
              Protocol.write_frame fd
                (Protocol.response_to_payload
                   (Protocol.Error
                      { message = "malformed request: " ^ m; counters = [] }))
          | Ok Protocol.Ping ->
              Protocol.write_frame fd (Protocol.response_to_payload Protocol.Pong)
          | Ok (Protocol.Stats { flight }) ->
              (* Inline, like Ping: scrapes must work under saturation
                 and must not count as served requests — a scrape is a
                 reading of the instruments, not a flight. *)
              let fl =
                if flight then Some (Flight.to_json (Flight.snapshot t.fl))
                else None
              in
              Protocol.write_frame fd
                (Protocol.response_to_payload
                   (Protocol.StatsSnapshot { snap = snapshot t; flight = fl }))
          | Ok req ->
              let resp =
                match Scheduler.submit t.sched (fun () -> run_request t req) with
                | None ->
                    Atomic.incr t.n_overloaded;
                    Metrics.incr t.registry "serve.overloaded";
                    Protocol.Overloaded
                | Some tk ->
                    let r = Scheduler.await tk in
                    (match r with
                    | Protocol.Error _ ->
                        Atomic.incr t.n_errors;
                        Metrics.incr t.registry "serve.errors"
                    | _ -> ());
                    Atomic.incr t.n_requests;
                    Metrics.incr t.registry "serve.requests";
                    Metrics.incr t.registry ("serve.responses:" ^ outcome_label r);
                    r
              in
              Protocol.write_frame fd (Protocol.response_to_payload resp));
          loop ()
    in
    loop ()
  with
  | Protocol.Malformed _ | Unix.Unix_error _ | End_of_file ->
      (* A torn or protocol-violating connection dies alone; the daemon
         and its other connections keep serving. *)
      ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if t.stopping then (try Unix.close fd with _ -> ())
        else begin
          Mutex.lock t.cm;
          t.conns <- fd :: t.conns;
          let th = Thread.create (fun () -> conn_loop t fd) () in
          t.conn_threads <- th :: t.conn_threads;
          Mutex.unlock t.cm
        end;
        if t.stopping then () else loop ()
    | exception Unix.Unix_error _ ->
        if t.stopping then ()
        else begin
          (* Spurious accept failure: back off briefly, keep accepting. *)
          Unix.sleepf 0.01;
          loop ()
        end
  in
  loop ()

let start ~path ?(bound = 64) ?(workers = 2) ?(jobs = 1) ?cache ?flight () =
  (try Unix.unlink path with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let registry = Metrics.create () in
  let t =
    {
      sock_path = path;
      listen_fd;
      sched = Scheduler.create ~bound ~workers ~metrics:registry ();
      srv_cache = (match cache with Some c -> c | None -> Cache.create ());
      registry;
      fl = (match flight with Some f -> f | None -> Flight.create ());
      default_jobs = max 1 jobs;
      cm = Mutex.create ();
      conns = [];
      conn_threads = [];
      accept_thread = None;
      stopping = false;
      n_requests = Atomic.make 0;
      n_overloaded = Atomic.make 0;
      n_errors = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  Mutex.lock t.cm;
  let already = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.cm;
  if not already then begin
    (* Wake the accept loop portably: a blocked [Unix.accept] is not
       reliably interrupted by closing the fd from another thread, so
       poke it with a throwaway connection, then close. *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.sock_path) with _ -> ());
       Unix.close fd
     with _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (* Drain queued requests so awaiting connections get their answers,
       then stop and join the executor domains. *)
    Scheduler.shutdown t.sched;
    Mutex.lock t.cm;
    let conns = t.conns and threads = t.conn_threads in
    Mutex.unlock t.cm;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    List.iter Thread.join threads;
    (try Unix.unlink t.sock_path with _ -> ())
  end
