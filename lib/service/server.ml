module Cache = Icfg_core.Cache
module Trace = Icfg_core.Trace
module Binfile = Icfg_obj.Binfile
module Baseline = Icfg_baselines.Baseline
module Rewriter = Icfg_core.Rewriter
module Runner = Icfg_harness.Runner
module Matrix = Icfg_harness.Matrix

(* The [icfg serve] daemon.

   Thread/domain layout: one accept sys-thread plus one sys-thread per
   connection do the framing I/O (they never record traces, so sharing
   the accept domain's DLS is harmless); request *bodies* run on the
   scheduler's dedicated executor domains, each under a fresh
   [Trace.with_current] — per-domain ambient traces are what keeps two
   concurrent requests' counters from bleeding into each other. One
   [Cache.t] is shared across every request for the life of the daemon:
   cross-request reuse is the point of serving.

   Crash containment: the request body catches everything and returns a
   typed [Error] response; the accept loop and connection loops never
   call [exit]. A malformed frame costs one [Error] response; a torn
   connection costs that connection only. *)

type t = {
  sock_path : string;
  listen_fd : Unix.file_descr;
  sched : Scheduler.t;
  srv_cache : Cache.t;
  default_jobs : int;
  cm : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable stopping : bool;
  n_requests : int Atomic.t;
  n_overloaded : int Atomic.t;
  n_errors : int Atomic.t;
}

type stats = { requests : int; overloaded : int; errors : int }

let stats t =
  {
    requests = Atomic.get t.n_requests;
    overloaded = Atomic.get t.n_overloaded;
    errors = Atomic.get t.n_errors;
  }

let cache t = t.srv_cache
let scheduler t = t.sched
let sock_path t = t.sock_path

(* Runs on an executor domain. Total: every failure becomes a typed
   response, so the daemon keeps serving whatever a request throws at
   it (the Matrix Crashed-cell contract, lifted to the wire). *)
let run_request t (req : Protocol.request) : Protocol.response =
  let jobs_of j = if j <= 0 then t.default_jobs else j in
  let tr = Trace.create () in
  try
    Trace.with_current tr @@ fun () ->
    match req with
    | Protocol.Ping -> Protocol.Pong
    | Protocol.Rewrite { approach; jobs; bin } -> (
        let bin = Binfile.of_bytes (Bytes.of_string bin) in
        match
          Runner.drive ~approach ~jobs:(jobs_of jobs) ~cache:t.srv_cache bin
        with
        | None -> Protocol.Error ("unknown approach: " ^ approach)
        | Some (Baseline.Rewritten rw) ->
            Protocol.Rewritten
              {
                bin = Bytes.to_string (Binfile.to_bytes rw.Rewriter.rw_binary);
                counters = Trace.counters tr;
              }
        | Some (Baseline.Refused reason) ->
            Protocol.Refused { reason; counters = Trace.counters tr })
    | Protocol.Classify { approach; jobs; bin } ->
        let bin = Binfile.of_bytes (Bytes.of_string bin) in
        let orig = Runner.run_original bin in
        let ns, cls =
          Matrix.eval_cell ~orig ~approach ~jobs:(jobs_of jobs)
            ~cache:t.srv_cache bin
        in
        Protocol.Classified { cls; ns; counters = Trace.counters tr }
  with e -> Protocol.Error (Printexc.to_string e)

let conn_loop t fd =
  let finally () =
    (try Unix.close fd with _ -> ());
    Mutex.lock t.cm;
    t.conns <- List.filter (fun f -> f != fd) t.conns;
    Mutex.unlock t.cm
  in
  Fun.protect ~finally @@ fun () ->
  try
    let rec loop () =
      match Protocol.read_frame fd with
      | None -> ()
      | Some p ->
          (match Protocol.request_of_payload p with
          | Error m ->
              Atomic.incr t.n_errors;
              Protocol.write_frame fd
                (Protocol.response_to_payload
                   (Protocol.Error ("malformed request: " ^ m)))
          | Ok Protocol.Ping ->
              Protocol.write_frame fd (Protocol.response_to_payload Protocol.Pong)
          | Ok req ->
              let resp =
                match Scheduler.submit t.sched (fun () -> run_request t req) with
                | None ->
                    Atomic.incr t.n_overloaded;
                    Protocol.Overloaded
                | Some tk ->
                    let r = Scheduler.await tk in
                    (match r with
                    | Protocol.Error _ -> Atomic.incr t.n_errors
                    | _ -> ());
                    Atomic.incr t.n_requests;
                    r
              in
              Protocol.write_frame fd (Protocol.response_to_payload resp));
          loop ()
    in
    loop ()
  with
  | Protocol.Malformed _ | Unix.Unix_error _ | End_of_file ->
      (* A torn or protocol-violating connection dies alone; the daemon
         and its other connections keep serving. *)
      ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if t.stopping then (try Unix.close fd with _ -> ())
        else begin
          Mutex.lock t.cm;
          t.conns <- fd :: t.conns;
          let th = Thread.create (fun () -> conn_loop t fd) () in
          t.conn_threads <- th :: t.conn_threads;
          Mutex.unlock t.cm
        end;
        if t.stopping then () else loop ()
    | exception Unix.Unix_error _ ->
        if t.stopping then ()
        else begin
          (* Spurious accept failure: back off briefly, keep accepting. *)
          Unix.sleepf 0.01;
          loop ()
        end
  in
  loop ()

let start ~path ?(bound = 64) ?(workers = 2) ?(jobs = 1) ?cache () =
  (try Unix.unlink path with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let t =
    {
      sock_path = path;
      listen_fd;
      sched = Scheduler.create ~bound ~workers ();
      srv_cache = (match cache with Some c -> c | None -> Cache.create ());
      default_jobs = max 1 jobs;
      cm = Mutex.create ();
      conns = [];
      conn_threads = [];
      accept_thread = None;
      stopping = false;
      n_requests = Atomic.make 0;
      n_overloaded = Atomic.make 0;
      n_errors = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  Mutex.lock t.cm;
  let already = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.cm;
  if not already then begin
    (* Wake the accept loop portably: a blocked [Unix.accept] is not
       reliably interrupted by closing the fd from another thread, so
       poke it with a throwaway connection, then close. *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.sock_path) with _ -> ());
       Unix.close fd
     with _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (* Drain queued requests so awaiting connections get their answers,
       then stop and join the executor domains. *)
    Scheduler.shutdown t.sched;
    Mutex.lock t.cm;
    let conns = t.conns and threads = t.conn_threads in
    Mutex.unlock t.cm;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    List.iter Thread.join threads;
    (try Unix.unlink t.sock_path with _ -> ())
  end
