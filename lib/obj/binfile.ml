let magic = "ICFG1"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let w8 b v = Buffer.add_uint8 b (v land 0xff)

let w64 b v =
  let t = Bytes.create 8 in
  Bytes.set_int64_le t 0 (Int64.of_int v);
  Buffer.add_bytes b t

let wstr b s =
  w64 b (String.length s);
  Buffer.add_string b s

let wbool b v = w8 b (if v then 1 else 0)
let wopt b f = function None -> w8 b 0 | Some v -> w8 b 1; f v
let wlist b f l =
  w64 b (List.length l);
  List.iter f l

let arch_tag : Icfg_isa.Arch.t -> int = function
  | X86_64 -> 0
  | Ppc64le -> 1
  | Aarch64 -> 2

let arch_of_tag = function
  | 0 -> Icfg_isa.Arch.X86_64
  | 1 -> Icfg_isa.Arch.Ppc64le
  | 2 -> Icfg_isa.Arch.Aarch64
  | n -> invalid_arg (Printf.sprintf "Binfile: bad architecture tag %d" n)

let lang_tag : Binary.lang -> int = function
  | C -> 0
  | Cpp -> 1
  | Fortran -> 2
  | Rust -> 3
  | Go -> 4

let lang_of_tag = function
  | 0 -> Binary.C
  | 1 -> Binary.Cpp
  | 2 -> Binary.Fortran
  | 3 -> Binary.Rust
  | 4 -> Binary.Go
  | n -> invalid_arg (Printf.sprintf "Binfile: bad language tag %d" n)

let to_buffer (bin : Binary.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  wstr b bin.Binary.name;
  w8 b (arch_tag bin.Binary.arch);
  wbool b bin.Binary.pie;
  w64 b bin.Binary.entry;
  w64 b bin.Binary.toc_base;
  (* features *)
  let f = bin.Binary.features in
  wlist b (fun l -> w8 b (lang_tag l)) f.Binary.langs;
  wbool b f.Binary.cpp_exceptions;
  wbool b f.Binary.go_runtime;
  wbool b f.Binary.go_vtab;
  wbool b f.Binary.rust_metadata;
  wbool b f.Binary.symbol_versioning;
  (* dynsyms *)
  w64 b (Array.length bin.Binary.dynsyms);
  Array.iter (wstr b) bin.Binary.dynsyms;
  (* sections *)
  wlist b
    (fun (s : Section.t) ->
      wstr b s.Section.name;
      w64 b s.Section.vaddr;
      w8 b
        ((if s.Section.perm.Section.read then 1 else 0)
        lor (if s.Section.perm.Section.write then 2 else 0)
        lor if s.Section.perm.Section.execute then 4 else 0);
      wbool b s.Section.loaded;
      wstr b (Bytes.to_string s.Section.data))
    bin.Binary.sections;
  (* symbols *)
  wlist b
    (fun (s : Symbol.t) ->
      wstr b s.Symbol.name;
      w64 b s.Symbol.addr;
      w64 b s.Symbol.size;
      w8 b (match s.Symbol.kind with Symbol.Func -> 0 | Symbol.Object -> 1 | Symbol.Dynamic -> 2);
      wbool b s.Symbol.global;
      wopt b (wstr b) s.Symbol.version)
    bin.Binary.symbols;
  (* relocations *)
  let wreloc (r : Reloc.t) =
    w64 b r.Reloc.offset;
    (match r.Reloc.kind with
    | Reloc.R_relative -> w8 b 0
    | Reloc.R_link sym ->
        w8 b 1;
        wstr b sym);
    w64 b r.Reloc.addend
  in
  wlist b wreloc bin.Binary.relocs;
  wlist b wreloc bin.Binary.link_relocs;
  (* eh_frame *)
  wlist b
    (fun (f : Ehframe.fde) ->
      w64 b f.Ehframe.func_start;
      w64 b f.Ehframe.func_end;
      w64 b f.Ehframe.frame_size;
      (match f.Ehframe.ra_loc with
      | Ehframe.Ra_on_stack off ->
          w8 b 0;
          w64 b off
      | Ehframe.Ra_in_lr -> w8 b 1);
      wlist b
        (fun (lo, hi, h) ->
          w64 b lo;
          w64 b hi;
          w64 b h)
        f.Ehframe.landing_pads)
    (Ehframe.fdes bin.Binary.eh_frame);
  b

let to_bytes bin = Buffer.to_bytes (to_buffer bin)

(* [Buffer.contents] is the one copy an immutable result needs; callers
   shipping container bytes over a wire (the serve daemon) avoid the
   extra [Bytes.to_string] round-trip [to_bytes] would force. *)
let to_string bin = Buffer.contents (to_buffer bin)

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type reader = { buf : Bytes.t; mutable pos : int }

let need r n =
  if r.pos + n > Bytes.length r.buf then
    invalid_arg "Binfile: truncated input"

let r8 r =
  need r 1;
  let v = Bytes.get_uint8 r.buf r.pos in
  r.pos <- r.pos + 1;
  v

let r64 r =
  need r 8;
  let v = Int64.to_int (Bytes.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let rstr r =
  let n = r64 r in
  if n < 0 || n > Bytes.length r.buf then invalid_arg "Binfile: bad string";
  need r n;
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let rbool r = r8 r <> 0
let ropt r f = if r8 r = 0 then None else Some (f ())

let rlist r f =
  let n = r64 r in
  if n < 0 then invalid_arg "Binfile: bad list length";
  List.init n (fun _ -> f ())

let of_bytes buf =
  let r = { buf; pos = 0 } in
  need r (String.length magic);
  let m = Bytes.sub_string buf 0 (String.length magic) in
  if m <> magic then invalid_arg "Binfile: bad magic";
  r.pos <- String.length magic;
  let name = rstr r in
  let arch = arch_of_tag (r8 r) in
  let pie = rbool r in
  let entry = r64 r in
  let toc_base = r64 r in
  let langs = rlist r (fun () -> lang_of_tag (r8 r)) in
  let cpp_exceptions = rbool r in
  let go_runtime = rbool r in
  let go_vtab = rbool r in
  let rust_metadata = rbool r in
  let symbol_versioning = rbool r in
  let features =
    {
      Binary.langs;
      cpp_exceptions;
      go_runtime;
      go_vtab;
      rust_metadata;
      symbol_versioning;
    }
  in
  let ndyn = r64 r in
  let dynsyms = Array.init ndyn (fun _ -> rstr r) in
  let sections =
    rlist r (fun () ->
        let name = rstr r in
        let vaddr = r64 r in
        let p = r8 r in
        let perm =
          {
            Section.read = p land 1 <> 0;
            write = p land 2 <> 0;
            execute = p land 4 <> 0;
          }
        in
        let loaded = rbool r in
        let data = Bytes.of_string (rstr r) in
        Section.make ~loaded ~name ~vaddr ~perm data)
  in
  let symbols =
    rlist r (fun () ->
        let name = rstr r in
        let addr = r64 r in
        let size = r64 r in
        let kind =
          match r8 r with
          | 0 -> Symbol.Func
          | 1 -> Symbol.Object
          | 2 -> Symbol.Dynamic
          | n -> invalid_arg (Printf.sprintf "Binfile: bad symbol kind %d" n)
        in
        let global = rbool r in
        let version = ropt r (fun () -> rstr r) in
        { Symbol.name; addr; size; kind; global; version })
  in
  let rreloc () =
    let offset = r64 r in
    let kind =
      match r8 r with
      | 0 -> Reloc.R_relative
      | 1 -> Reloc.R_link (rstr r)
      | n -> invalid_arg (Printf.sprintf "Binfile: bad reloc kind %d" n)
    in
    let addend = r64 r in
    { Reloc.offset; kind; addend }
  in
  let relocs = rlist r rreloc in
  let link_relocs = rlist r rreloc in
  let fdes =
    rlist r (fun () ->
        let func_start = r64 r in
        let func_end = r64 r in
        let frame_size = r64 r in
        let ra_loc =
          match r8 r with
          | 0 -> Ehframe.Ra_on_stack (r64 r)
          | 1 -> Ehframe.Ra_in_lr
          | n -> invalid_arg (Printf.sprintf "Binfile: bad ra_loc %d" n)
        in
        let landing_pads =
          rlist r (fun () ->
              let lo = r64 r in
              let hi = r64 r in
              let h = r64 r in
              (lo, hi, h))
        in
        { Ehframe.func_start; func_end; frame_size; ra_loc; landing_pads })
  in
  Binary.make ~pie ~relocs ~link_relocs ~eh_frame:(Ehframe.of_fdes fdes)
    ~toc_base ~dynsyms ~features ~name ~arch ~entry ~symbols sections

(* Zero-copy decode from an immutable string: the reader above only ever
   reads ([need]/[Bytes.get*]/[Bytes.sub_string]), so viewing the string
   as bytes without copying is safe — and saves one whole-binary copy per
   request on the serve hot path. *)
let of_string s = of_bytes (Bytes.unsafe_of_string s)

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let save path bin =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes bin))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      of_bytes b)
