(** On-disk serialization of binaries.

    A compact, versioned container format (magic ["ICFG1"]) so rewritten
    binaries can be written out, inspected later, and re-run — what a real
    binary rewriter produces. Round-trips every field of {!Binary.t}. *)

val to_bytes : Binary.t -> Bytes.t
val of_bytes : Bytes.t -> Binary.t
(** Raises [Invalid_argument] on a bad magic, version, or truncation. *)

val to_string : Binary.t -> string
(** [to_bytes] without the extra [Bytes.to_string] copy — for callers
    that ship container bytes as immutable strings (the serve wire). *)

val of_string : string -> Binary.t
(** Zero-copy twin of {!of_bytes}: decodes directly from the string
    (the reader never mutates its input). Raises [Invalid_argument]
    like {!of_bytes}. *)

val save : string -> Binary.t -> unit
(** Write to a file. *)

val load : string -> Binary.t
(** Read from a file; raises [Sys_error] or [Invalid_argument]. *)
