(** Behaviourally-faithful baseline rewriters, built on the same substrate.

    Each baseline either produces a rewritten binary (sharing the
    {!Icfg_core.Rewriter.t} result type) or refuses with the failure the
    corresponding tool exhibits on that input. *)

type outcome =
  | Rewritten of Icfg_core.Rewriter.t
  | Refused of string
      (** the tool rejects the binary up front (e.g. Egalito on non-PIE,
          Dyninst-10.2 call emulation on a non-x86 C++ binary) *)

(** Every rewriting baseline below accepts [?jobs] (fan the per-function
    pipeline stages out over that many {!Icfg_core.Pool} domains) and
    [?cache] (memoize per-function artifacts in a shared
    {!Icfg_core.Cache}). Both default to the serial, uncached pipeline;
    output is bit-identical for every combination. *)

(** {1 Dyninst-10.2 / SRBI} *)

val srbi :
  ?payload:Icfg_core.Rewriter.payload ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  Icfg_obj.Binary.t ->
  outcome
(** Every-block trampolines, call emulation, SRBI-era analysis (no spill
    tracking, no layout tail-call heuristic), no superblocks or scratch
    pool. Refuses C++-exception binaries on ppc64le/aarch64 (call emulation
    was only implemented on x86-64) and refuses when its rewrite needed trap
    trampolines (the broken runtime-library signal delivery the paper
    reports for 602.gcc). On ppc64le it additionally carries a large
    conservatively-sized trap-mapping section, reproducing the Table 3 size
    blow-up. *)

(** {1 Egalito-style IR lowering} *)

val ir_lowering :
  ?payload:Icfg_core.Rewriter.payload ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  Icfg_obj.Binary.t ->
  outcome
(** All-or-nothing binary regeneration: requires PIE with run-time
    relocations and complete analysis of every function; refuses binaries
    with C++ exceptions, Go runtimes, Rust metadata, or symbol versioning
    (the failures sections 8 and 9 report). On success the original code is
    dropped and the entry point moves into the regenerated code, so there
    are no trampoline bounces at all. *)

(** {1 E9Patch-style instruction patching} *)

val insn_patching :
  ?payload:Icfg_core.Rewriter.payload ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  Icfg_obj.Binary.t ->
  outcome
(** No binary analysis is consumed: direct control flow keeps its original
    targets, every block bounces back into original code, and every block
    needs a trampoline — maximal reliability, maximal ping-pong. *)

(** {1 Multiverse-style dynamic translation} *)

val dynamic_translation :
  ?payload:Icfg_core.Rewriter.payload ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  Icfg_obj.Binary.t ->
  outcome
(** Direct control flow is rewritten; every indirect transfer calls a
    runtime translation function; calls are emulated for unwinding. *)

(** {1 BOLT-like optimizer} *)

val bolt_function_reorder : Icfg_obj.Binary.t -> outcome
(** Requires link-time relocations: prints the paper's
    "BOLT-ERROR: function reordering only works when relocations are
    enabled" refusal otherwise (even for PIE, section 8.3). *)

val bolt_block_reorder : Icfg_obj.Binary.t -> outcome
(** Reorders blocks within functions. Reproduces the corruption the paper
    observed on 10 of 19 benchmarks: binaries containing memory-indirect
    calls come out corrupted (entry clobbered — the "bad .interp" analogue). *)

(** {1 This paper's system, for symmetric driving} *)

val ours :
  ?payload:Icfg_core.Rewriter.payload ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  mode:Icfg_core.Mode.t ->
  Icfg_obj.Binary.t ->
  outcome

(** {1 The comparative-sweep roster} *)

val approaches :
  (string
  * (?jobs:int -> ?cache:Icfg_core.Cache.t -> Icfg_obj.Binary.t -> outcome))
  list
(** The corpus-matrix roster: the four comparable rewriting baselines
    ([srbi], [ir-lowering], [insn-patching], [dyn-translation]) plus this
    paper's system once per mode ([ours/dir], [ours/jt], [ours/func-ptr]).
    The BOLT entries are excluded: one is an optimizer that intentionally
    emits corrupt images on half the suite, not a comparable rewriter. *)

val refusal_key : string -> string
(** Stable axis/name histogram key for a {!Refused} message, aligned with
    {!Icfg_core.Attribution.key} naming: ["tramp/trap"],
    ["func/unresolved-indirect-jump"], ["feature/cpp-exceptions"],
    ["feature/non-pie"], ["feature/go-runtime"], ["feature/rust-metadata"],
    ["feature/symbol-versioning"], ["feature/link-relocs"], or
    ["feature/other"]. Keys are stable across wording tweaks in the tail of
    the message — the corpus matrix and its regression gate depend on
    them. *)

val legacy_dyninst :
  ?payload:Icfg_core.Rewriter.payload -> only:string list ->
  Icfg_obj.Binary.t -> outcome
(** Mainstream-Dyninst configuration for the Diogenes case study (section
    9): SRBI-style placement with the legacy far relocation area, partial
    instrumentation allowed, traps permitted (slow but functional). *)

val ours_partial :
  ?payload:Icfg_core.Rewriter.payload ->
  mode:Icfg_core.Mode.t ->
  only:string list ->
  Icfg_obj.Binary.t ->
  outcome
