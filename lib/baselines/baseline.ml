open Icfg_isa
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Parse = Icfg_analysis.Parse
module Failure_model = Icfg_analysis.Failure_model
module Cfg = Icfg_analysis.Cfg
module Rewriter = Icfg_core.Rewriter
module Mode = Icfg_core.Mode

type outcome = Rewritten of Rewriter.t | Refused of string

let default_payload = Rewriter.P_empty

(* Shared pipeline wiring: every baseline consumes the same sharded,
   memoizable parse the paper's system uses (identical to
   [Runner.parse], which lives above this library), so a corpus sweep can
   thread one pool and one cache through all of them. Output is
   bit-identical for every [jobs] value and with or without a cache. *)
let pipeline_parse ?fm ?(jobs = 1) ?cache bin =
  let jobs = max 1 jobs in
  let par = { Parse.pmap = (fun f l -> Icfg_core.Pool.map ~jobs f l) } in
  let memo =
    Option.map
      (fun cache ->
        {
          Parse.mmap =
            (fun ~stage ~key f l ->
              Icfg_core.Cache.memo_map ~cache ~jobs ~stage ~key f l);
        })
      cache
  in
  Parse.parse ?fm ~par ~probe:(Icfg_core.Trace.parse_probe ()) ?memo bin

let with_jobs ?jobs options =
  match jobs with
  | None -> options
  | Some j -> { options with Rewriter.jobs = max 1 j }

(* ------------------------------------------------------------------ *)
(* Dyninst-10.2 / SRBI                                                 *)
(* ------------------------------------------------------------------ *)

let srbi ?(payload = default_payload) ?jobs ?cache bin =
  if
    bin.Binary.features.Binary.cpp_exceptions
    && bin.Binary.arch <> Arch.X86_64
  then
    Refused
      "call emulation for C++ exceptions is only implemented on x86-64 in \
       Dyninst-10.2"
  else
    let parse = pipeline_parse ~fm:Failure_model.srbi ?jobs ?cache bin in
    let rw =
      Rewriter.rewrite ?cache
        ~options:(with_jobs ?jobs (Rewriter.srbi_like payload))
        parse
    in
    if rw.Rewriter.rw_stats.Rewriter.s_trap_trampolines > 10 then
      Refused
        "heavy trap-trampoline use; Dyninst-10.2's runtime-library signal \
         delivery is broken (the 602.gcc failure)"
    else if bin.Binary.arch = Arch.Ppc64le then
      (* Dyninst-10.2 reserves a conservatively-sized trap-mapping area per
         basic block on ppc64le — the Table 3 size blow-up. *)
      let blocks = rw.Rewriter.rw_stats.Rewriter.s_blocks in
      let map_size = 72 * blocks in
      let out = rw.Rewriter.rw_binary in
      let out =
        Binary.add_section out
          (Section.make ~name:".trapmap"
             ~vaddr:((Binary.code_end out + 0xfff) / 0x1000 * 0x1000)
             ~perm:Section.r_only
             (Bytes.make map_size '\000'))
      in
      let stats =
        { rw.Rewriter.rw_stats with Rewriter.s_new_size = Binary.loaded_size out }
      in
      Rewritten { rw with Rewriter.rw_binary = out; rw_stats = stats }
    else Rewritten rw

(* ------------------------------------------------------------------ *)
(* Egalito-style IR lowering                                           *)
(* ------------------------------------------------------------------ *)

let ir_lowering ?(payload = default_payload) ?jobs ?cache bin =
  let feat = bin.Binary.features in
  if not bin.Binary.pie then
    Refused "IR lowering requires PIE with run-time relocation entries"
  else if feat.Binary.cpp_exceptions then
    Refused "C++ exceptions are not supported (known Egalito limitation)"
  else if feat.Binary.go_runtime then
    Refused "Go metadata and builtin stack unwinding are not supported"
  else if feat.Binary.rust_metadata then
    Refused "unsupported Rust metadata (the libxul failure)"
  else if feat.Binary.symbol_versioning then
    Refused "cannot rewrite symbol versioning information (the libcuda failure)"
  else
    let parse = pipeline_parse ?jobs ?cache bin in
    if Parse.coverage parse < 1.0 then
      let bad =
        List.find (fun f -> not f.Parse.fa_instrumentable) parse.Parse.funcs
      in
      Refused
        (Printf.sprintf
           "all-or-nothing: cannot lift function %s (%s)"
           bad.Parse.fa_sym.Icfg_obj.Symbol.name
           (Option.value ~default:"?" bad.Parse.fa_fail_reason))
    else
      let options =
        {
          Rewriter.default_options with
          Rewriter.mode = Mode.Func_ptr;
          payload;
          ra_translation = false;
        }
      in
      let rw = Rewriter.rewrite ?cache ~options:(with_jobs ?jobs options) parse in
      (* Regeneration: the original code and retired metadata are dropped
         and the entry point moves into the regenerated code. *)
      let entry =
        match rw.Rewriter.rw_relocated_entry bin.Binary.entry with
        | Some e -> e
        | None -> bin.Binary.entry
      in
      let dropped =
        [ ".text"; ".dynsym.old"; ".dynstr.old"; ".rela_dyn.old"; ".ra_map" ]
      in
      let sections =
        List.filter
          (fun (s : Section.t) -> not (List.mem s.Section.name dropped))
          rw.Rewriter.rw_binary.Binary.sections
      in
      let out = { (Binary.with_sections rw.Rewriter.rw_binary sections) with Binary.entry } in
      let stats =
        { rw.Rewriter.rw_stats with Rewriter.s_new_size = Binary.loaded_size out }
      in
      Rewritten { rw with Rewriter.rw_binary = out; rw_stats = stats }

(* ------------------------------------------------------------------ *)
(* E9Patch-style instruction patching                                  *)
(* ------------------------------------------------------------------ *)

let insn_patching ?(payload = default_payload) ?jobs ?cache bin =
  let parse = pipeline_parse ?jobs ?cache bin in
  let options =
    {
      Rewriter.default_options with
      Rewriter.mode = Mode.Dir;
      payload;
      tramp_at_every_block = true;
      rewrite_direct = false;
      bounce_back = true;
      ra_translation = false;
      use_superblocks = false;
      use_scratch_pool = false;
    }
  in
  Rewritten (Rewriter.rewrite ?cache ~options:(with_jobs ?jobs options) parse)

(* ------------------------------------------------------------------ *)
(* Multiverse-style dynamic translation                                *)
(* ------------------------------------------------------------------ *)

let dynamic_translation ?(payload = default_payload) ?jobs ?cache bin =
  let parse = pipeline_parse ?jobs ?cache bin in
  let options =
    {
      Rewriter.default_options with
      Rewriter.mode = Mode.Dir;
      payload;
      dyn_translate = true;
      call_emulation = true;
      ra_translation = false;
    }
  in
  Rewritten (Rewriter.rewrite ?cache ~options:(with_jobs ?jobs options) parse)

(* ------------------------------------------------------------------ *)
(* BOLT-like optimizer                                                 *)
(* ------------------------------------------------------------------ *)

let bolt_function_reorder bin =
  if bin.Binary.link_relocs = [] then
    Refused
      "BOLT-ERROR: function reordering only works when relocations are \
       enabled"
  else
    let parse = Parse.parse bin in
    let options =
      { Rewriter.default_options with Rewriter.order = `Reverse_funcs }
    in
    Rewritten (Rewriter.rewrite ~options parse)

let has_mem_indirect_call (parse : Parse.t) =
  List.exists
    (fun fa ->
      List.exists
        (fun (b : Cfg.block) ->
          List.exists
            (fun (_, insn, _) ->
              match insn with Insn.IndCallMem _ -> true | _ -> false)
            b.Cfg.b_insns)
        fa.Parse.fa_cfg.Cfg.blocks)
    parse.Parse.funcs

let bolt_block_reorder bin =
  let parse = Parse.parse bin in
  let options =
    { Rewriter.default_options with Rewriter.order = `Reverse_blocks }
  in
  let rw = Rewriter.rewrite ~options parse in
  if has_mem_indirect_call parse then
    (* Emit a corrupted image: the entry is clobbered, so the binary cannot
       be loaded — the "bad .interp data" failure of section 8.3. *)
    Rewritten
      { rw with Rewriter.rw_binary = { rw.Rewriter.rw_binary with Binary.entry = 2 } }
  else Rewritten rw

(* ------------------------------------------------------------------ *)
(* This paper's system                                                 *)
(* ------------------------------------------------------------------ *)

let ours ?(payload = default_payload) ?jobs ?cache ~mode bin =
  let parse = pipeline_parse ?jobs ?cache bin in
  let options = { Rewriter.default_options with Rewriter.mode; payload } in
  Rewritten (Rewriter.rewrite ?cache ~options:(with_jobs ?jobs options) parse)

let ours_partial ?(payload = default_payload) ~mode ~only bin =
  let parse = Parse.parse bin in
  let options =
    { Rewriter.default_options with Rewriter.mode; payload; only = Some only }
  in
  Rewritten (Rewriter.rewrite ~options parse)

(* ------------------------------------------------------------------ *)
(* The comparative-sweep roster                                        *)
(* ------------------------------------------------------------------ *)

let approaches =
  [
    ("srbi", fun ?jobs ?cache bin -> srbi ?jobs ?cache bin);
    ("ir-lowering", fun ?jobs ?cache bin -> ir_lowering ?jobs ?cache bin);
    ("insn-patching", fun ?jobs ?cache bin -> insn_patching ?jobs ?cache bin);
    ( "dyn-translation",
      fun ?jobs ?cache bin -> dynamic_translation ?jobs ?cache bin );
    ("ours/dir", fun ?jobs ?cache bin -> ours ?jobs ?cache ~mode:Mode.Dir bin);
    ("ours/jt", fun ?jobs ?cache bin -> ours ?jobs ?cache ~mode:Mode.Jt bin);
    ( "ours/func-ptr",
      fun ?jobs ?cache bin -> ours ?jobs ?cache ~mode:Mode.Func_ptr bin );
  ]

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

(* Stable histogram keys for the documented refusal messages, in the
   axis/name style of [Attribution.key]: whole-binary metadata refusals get
   the "feature" axis; the all-or-nothing analysis refusal maps onto the
   attribution cause of the function that defeated it ("func/unresolved-
   indirect-jump"); the SRBI trap refusal is a trampoline-placement
   failure ("tramp/trap"). *)
let refusal_key reason =
  if contains ~sub:"trap-trampoline" reason then "tramp/trap"
  else if contains ~sub:"all-or-nothing" reason then
    "func/unresolved-indirect-jump"
  else if contains ~sub:"C++ exceptions" reason then "feature/cpp-exceptions"
  else if contains ~sub:"requires PIE" reason then "feature/non-pie"
  else if contains ~sub:"Go metadata" reason then "feature/go-runtime"
  else if contains ~sub:"Rust metadata" reason then "feature/rust-metadata"
  else if contains ~sub:"symbol versioning" reason then
    "feature/symbol-versioning"
  else if contains ~sub:"relocations are enabled" reason then
    "feature/link-relocs"
  else "feature/other"

let legacy_dyninst ?(payload = default_payload) ~only bin =
  let parse = Parse.parse ~fm:Failure_model.srbi bin in
  let options =
    {
      (Rewriter.srbi_like payload) with
      Rewriter.only = Some only;
      (* Mainstream Dyninst placed the relocated area at a fixed far
         address; for driver-sized binaries that exceeds the ppc64le and
         aarch64 short-branch ranges. *)
      instr_gap = 160 * 1024 * 1024;
    }
  in
  Rewritten (Rewriter.rewrite ~options parse)
