(** The execution substrate: a byte-accurate interpreter for binaries.

    The VM decodes the actual section bytes at each step (so trampolines,
    overwritten code, and illegal filler behave exactly as written), charges
    a configurable cycle cost per instruction, models an instruction cache,
    delivers trap signals to the runtime-library trap map at a high cost, and
    implements DWARF-style stack unwinding over the binary's original
    [.eh_frame] with an optional return-address translation hook — the
    runtime-library mechanisms of sections 3 and 6 of the paper. *)

type cost_model = {
  base : int;  (** cycles per instruction *)
  mem : int;  (** extra cycles for loads/stores *)
  mul : int;  (** extra cycles for multiplies *)
  branch_taken : int;  (** extra cycles for a taken branch/call/return *)
  indirect : int;  (** extra cycles for indirect control flow *)
  callrt : int;  (** cycles for a runtime-library (PLT) call *)
  trap : int;  (** cycles to deliver a trap signal (section 7) *)
}

val default_costs : cost_model

type config = {
  load_base : int;  (** applied to every section when the binary is PIE *)
  stack_base : int;
  stack_size : int;
  max_steps : int;
  costs : cost_model;
  icache : Icache.config option;
  trap_map : (int, int) Hashtbl.t;
      (** link-time trap address -> link-time target (the runtime library's
          trap-signal table) *)
  translate : (int -> int) option;
      (** RA translation hook wrapped around the unwinder's step function
          (the libunwind function-wrapping of section 6.1); receives and
          returns link-time addresses *)
  go_translate : (int -> int) option;
      (** translation used by the Go traceback walker's own frame stepping;
          installed together with the findfunc/pcvalue entry instrumentation
          (section 6.2) *)
  profile : (int, int) Hashtbl.t option;
      (** when set, pre-seeded keys (link-time block addresses) are
          incremented on every fetch at that address — the ground-truth
          block profiler used to verify counting instrumentation *)
  compiled_unwind : bool;
      (** model an frdwarf-style unwinder whose recipes are compiled to
          code (~10x cheaper per frame step); RA translation is agnostic to
          the unwinder implementation, per sections 2.3 and 6 of the paper *)
}

val default_config : unit -> config
(** Fresh config: no PIE base, no icache, empty trap map, no translation. *)

type outcome =
  | Halted
  | Crashed of string  (** illegal instruction, unmapped access, trap without
                           mapping, unhandled exception, Go panic, timeout *)

type result = {
  outcome : outcome;
  output : int list;  (** values emitted by [Out], in order *)
  steps : int;
  cycles : int;
  icache_misses : int;
  icache_accesses : int;  (** total icache line touches (0 with no icache) *)
  trap_hits : int;
  unwind_steps : int;
  ra_translations : int;
      (** invocations of the RA-translation hooks ([translate],
          [go_translate], and explicit runtime-library translation calls) *)
  cycle_buckets : (string * int) list;
      (** per-cost-bucket cycle attribution, in [bucket_names] order; the
          bucket totals partition [cycles] *)
}

val bucket_names : string array
(** base, mem, mul, branch, indirect, callrt, trap, unwind, icache. *)

type t
(** A running VM instance (exposed so runtime-library routines can inspect
    and modify machine state). *)

(** {1 Running} *)

val run :
  ?config:config ->
  ?routines:(string * (t -> unit)) list ->
  Icfg_obj.Binary.t ->
  result
(** Load the binary (applying run-time relocations under PIE), bind the
    runtime-library [routines] by dynamic-symbol name, and execute from the
    entry point. Unbound [CallRt] names crash the run. *)

(** {1 State access for runtime-library routines} *)

val reg : t -> Icfg_isa.Reg.t -> int
val set_reg : t -> Icfg_isa.Reg.t -> int -> unit
val pc : t -> int
(** Runtime address of the currently-executing [CallRt] instruction. *)

val sp : t -> int
val lr : t -> int
val load_base : t -> int
val binary : t -> Icfg_obj.Binary.t
val read_mem : t -> int -> Icfg_isa.Insn.width -> int
val write_mem : t -> int -> Icfg_isa.Insn.width -> int -> unit
val emit_output : t -> int -> unit
val abort : t -> string -> unit
(** Terminate the run with [Crashed]. *)

val count_ra_translation : t -> unit
(** Bump the run's [ra_translations] counter; for runtime-library routines
    that translate return addresses outside the unwinder's hook. *)

val call_function : t -> addr:int -> args:int list -> int
(** Re-entrant call: execute the function at runtime address [addr] with the
    given arguments and return its result ([r0]); machine state is saved and
    restored. Used by the Go traceback walker to invoke the binary's own
    [runtime.findfunc]. *)

val find_symbol : t -> string -> int option
(** Runtime address of a function symbol. *)

(** {1 Unwinding helpers} *)

val frames : t -> (int * int) list
(** Current call-frame chain as [(runtime_pc, sp)] pairs, innermost first,
    stepped with the binary's FDEs and the [go_translate]/identity hook.
    Stops at the entry function, or at the first PC with no frame
    information (in which case the last pair has [pc = -1] as a marker). *)
