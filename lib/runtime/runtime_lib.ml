module Abi = Icfg_obj.Abi

module Ra_map = struct
  (* Parallel sorted arrays for binary search. *)
  type t = { keys : int array; vals : int array; exact_only : bool }

  let of_pairs ?(exact_only = false) pairs =
    let a = Array.of_list pairs in
    Array.sort (fun (k1, _) (k2, _) -> compare k1 k2) a;
    { keys = Array.map fst a; vals = Array.map snd a; exact_only }

  let size t = Array.length t.keys
  let pairs t = Array.to_list (Array.map2 (fun k v -> (k, v)) t.keys t.vals)

  (* Floor lookup: greatest key <= pc. *)
  let floor t pc =
    let lo = ref 0 and hi = ref (Array.length t.keys - 1) and res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.keys.(mid) <= pc then (
        res := mid;
        lo := mid + 1)
      else hi := mid - 1
    done;
    !res

  (* Relocated blocks are at most this far from their mapped start; a floor
     hit further away than this is outside the mapped region. *)
  let max_block_span = 65536

  let translate t pc =
    if Array.length t.keys = 0 then pc
    else
      let i = floor t pc in
      if i < 0 then pc
      else if t.exact_only && t.keys.(i) <> pc then pc
      else if pc - t.keys.(i) > max_block_span then pc
      else
        (* Exact keys (return addresses) translate exactly; a PC inside a
           mapped block translates to the block's original start, which is
           always inside the original function — sufficient for FDE and
           findfunc lookups. *)
        t.vals.(i)

  (* Compact encoding: a 16-byte header with the key and value bases,
     then 8 bytes per pair (two base-relative u32 deltas). *)
  let encode t =
    let n = size t in
    if n = 0 then Bytes.create 0
    else begin
      let kbase = Array.fold_left min max_int t.keys in
      let vbase = Array.fold_left min max_int t.vals in
      let b = Bytes.make (16 + (8 * n)) '\000' in
      Bytes.set_int64_le b 0 (Int64.of_int kbase);
      Bytes.set_int64_le b 8 (Int64.of_int vbase);
      for i = 0 to n - 1 do
        Bytes.set_int32_le b (16 + (8 * i)) (Int32.of_int (t.keys.(i) - kbase));
        Bytes.set_int32_le b (16 + (8 * i) + 4) (Int32.of_int (t.vals.(i) - vbase))
      done;
      b
    end

  let decode b =
    if Bytes.length b < 16 then of_pairs []
    else
      let kbase = Int64.to_int (Bytes.get_int64_le b 0) in
      let vbase = Int64.to_int (Bytes.get_int64_le b 8) in
      let n = (Bytes.length b - 16) / 8 in
      of_pairs
        (List.init n (fun i ->
             ( kbase + Int32.to_int (Bytes.get_int32_le b (16 + (8 * i))),
               vbase + Int32.to_int (Bytes.get_int32_le b (16 + (8 * i) + 4)) )))
end

let go_walk_routine () =
  let routine vm =
    match Vm.find_symbol vm "runtime.findfunc" with
    | None -> Vm.abort vm "go traceback: no runtime.findfunc"
    | Some findfunc ->
        let frames = Vm.frames vm in
        let n = List.length frames in
        List.iteri
          (fun i (pc_rt, _sp) ->
            if pc_rt = -1 then (
              if i < n - 1 || i = 0 then
                Vm.abort vm "go traceback: missing frame info")
            else
              (* Go passes runtime PCs: the functab was relocated by the
                 loader, so entries are runtime addresses too. *)
              let id = Vm.call_function vm ~addr:findfunc ~args:[ pc_rt ] in
              if id >= 0 then Vm.emit_output vm id
              else if i < n - 1 then
                Vm.abort vm
                  (Printf.sprintf "go traceback: unknown pc 0x%x in frame %d"
                     pc_rt i))
          frames
  in
  (Abi.go_walk, routine)

let count_routine counters ~key_of =
  let routine vm =
    let site = Vm.pc vm - Vm.load_base vm in
    let key = key_of site in
    Hashtbl.replace counters key
      (1 + Option.value ~default:0 (Hashtbl.find_opt counters key))
  in
  (Abi.count, routine)

let translate_r0_routine map =
  let routine vm =
    (* The RA map is keyed by link-time addresses; the PC argument is a
       runtime address. *)
    let lb = Vm.load_base vm in
    let v = Vm.reg vm Icfg_isa.Reg.r0 in
    Vm.count_ra_translation vm;
    Vm.set_reg vm Icfg_isa.Reg.r0 (Ra_map.translate map (v - lb) + lb)
  in
  (Abi.translate_r0, routine)

let empty_routine () = (Abi.empty_payload, fun _ -> ())
let standard () = [ go_walk_routine (); empty_routine () ]
