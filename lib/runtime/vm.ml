open Icfg_isa
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Ehframe = Icfg_obj.Ehframe

type cost_model = {
  base : int;
  mem : int;
  mul : int;
  branch_taken : int;
  indirect : int;
  callrt : int;
  trap : int;
}

let default_costs =
  { base = 1; mem = 1; mul = 2; branch_taken = 1; indirect = 2; callrt = 12; trap = 4000 }

type config = {
  load_base : int;
  stack_base : int;
  stack_size : int;
  max_steps : int;
  costs : cost_model;
  icache : Icache.config option;
  trap_map : (int, int) Hashtbl.t;
  translate : (int -> int) option;
  go_translate : (int -> int) option;
  profile : (int, int) Hashtbl.t option;
  compiled_unwind : bool;
}

let default_config () =
  {
    load_base = 0;
    stack_base = 0x7E000000;
    stack_size = 1 lsl 20;
    max_steps = 200_000_000;
    costs = default_costs;
    icache = None;
    trap_map = Hashtbl.create 16;
    translate = None;
    go_translate = None;
    profile = None;
    compiled_unwind = false;
  }

type outcome = Halted | Crashed of string

type result = {
  outcome : outcome;
  output : int list;
  steps : int;
  cycles : int;
  icache_misses : int;
  icache_accesses : int;
  trap_hits : int;
  unwind_steps : int;
  ra_translations : int;
  cycle_buckets : (string * int) list;
}

(* Every cycle charged is attributed to exactly one bucket, so the bucket
   totals partition [cycles] (asserted by test/test_trace.ml). *)
let bucket_names =
  [| "base"; "mem"; "mul"; "branch"; "indirect"; "callrt"; "trap"; "unwind";
     "icache" |]

let b_base = 0
and b_mem = 1
and b_mul = 2
and b_branch = 3
and b_indirect = 4
and b_callrt = 5
and b_trap = 6
and b_unwind = 7
and b_icache = 8

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

type segment = {
  seg_base : int;
  seg_bytes : Bytes.t;
  seg_perm : Section.perm;
  seg_decode : (Insn.t * int) option array;
      (** per-offset decode cache (code never changes during execution) *)
}

let seg_end s = s.seg_base + Bytes.length s.seg_bytes

type t = {
  bin : Binary.t;
  cfg : config;
  segments : segment array;  (** sorted by base *)
  mutable last_seg : int;  (** cache of the last segment hit *)
  regs : int array;
  mutable sp_ : int;
  mutable lr_ : int;
  mutable tar : int;
  mutable cmp_delta : int;
  mutable pc_ : int;
  mutable out_rev : int list;
  mutable steps : int;
  mutable cycles : int;
  buckets : int array;  (** per-cost-bucket cycle attribution *)
  mutable trap_hits : int;
  mutable unwind_count : int;
  mutable ra_count : int;  (** RA-translation hook invocations *)
  mutable state : [ `Running | `Halted | `Crashed of string ];
  icache : Icache.t option;
  routines : (t -> unit) option array;
  routine_names : string array;
}

exception Vm_stop

let crash vm msg =
  (match vm.state with `Running -> vm.state <- `Crashed msg | _ -> ());
  raise Vm_stop

let charge vm bucket n =
  vm.cycles <- vm.cycles + n;
  vm.buckets.(bucket) <- vm.buckets.(bucket) + n

let find_segment vm addr =
  let segs = vm.segments in
  let cached = segs.(vm.last_seg) in
  if addr >= cached.seg_base && addr < seg_end cached then Some cached
  else
    let lo = ref 0 and hi = ref (Array.length segs - 1) and res = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let s = segs.(mid) in
      if addr < s.seg_base then hi := mid - 1
      else if addr >= seg_end s then lo := mid + 1
      else (
        res := Some s;
        vm.last_seg <- mid;
        lo := !hi + 1)
    done;
    !res

let sign_extend v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let read_mem vm addr (w : Insn.width) =
  match find_segment vm addr with
  | Some s when addr + Insn.width_bytes w <= seg_end s ->
      let off = addr - s.seg_base in
      let b = s.seg_bytes in
      (match w with
      | W8 -> sign_extend (Bytes.get_uint8 b off) 8
      | W16 -> sign_extend (Bytes.get_uint16_le b off) 16
      | W32 -> Int32.to_int (Bytes.get_int32_le b off)
      | W64 -> Int64.to_int (Bytes.get_int64_le b off))
  | _ -> crash vm (Printf.sprintf "read from unmapped address 0x%x" addr)

let write_mem vm addr (w : Insn.width) v =
  match find_segment vm addr with
  | Some s when addr + Insn.width_bytes w <= seg_end s ->
      if not s.seg_perm.Section.write then
        crash vm (Printf.sprintf "write to read-only address 0x%x" addr);
      let off = addr - s.seg_base in
      let b = s.seg_bytes in
      (match w with
      | W8 -> Bytes.set_uint8 b off (v land 0xff)
      | W16 -> Bytes.set_uint16_le b off (v land 0xffff)
      | W32 -> Bytes.set_int32_le b off (Int32.of_int v)
      | W64 -> Bytes.set_int64_le b off (Int64.of_int v))
  | _ -> crash vm (Printf.sprintf "write to unmapped address 0x%x" addr)

(* Loader-time write: relocations may target read-only sections (the loader
   relocates before write-protecting). *)
let write_mem_raw vm addr v =
  match find_segment vm addr with
  | Some s when addr + 8 <= seg_end s ->
      Bytes.set_int64_le s.seg_bytes (addr - s.seg_base) (Int64.of_int v)
  | _ -> crash vm (Printf.sprintf "relocation outside any segment: 0x%x" addr)

let fetch vm addr =
  match find_segment vm addr with
  | Some s when s.seg_perm.Section.execute -> (
      let off = addr - s.seg_base in
      match s.seg_decode.(off) with
      | Some cached -> cached
      | None ->
          let d = Encode.decode_bytes vm.bin.Binary.arch s.seg_bytes ~pos:off in
          s.seg_decode.(off) <- Some d;
          d)
  | Some _ -> crash vm (Printf.sprintf "execute non-executable address 0x%x" addr)
  | None -> crash vm (Printf.sprintf "execute unmapped address 0x%x" addr)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let reg vm r = vm.regs.(Reg.index r)
let set_reg vm r v = vm.regs.(Reg.index r) <- v
let pc vm = vm.pc_
let sp vm = vm.sp_
let lr vm = vm.lr_
let load_base vm = if vm.bin.Binary.pie then vm.cfg.load_base else 0
let binary vm = vm.bin
let emit_output vm v = vm.out_rev <- v :: vm.out_rev
let abort vm msg = crash vm msg

let count_ra_translation vm = vm.ra_count <- vm.ra_count + 1

let find_symbol vm name =
  match Binary.symbol vm.bin name with
  | Some s -> Some (s.Icfg_obj.Symbol.addr + load_base vm)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Unwinding                                                           *)
(* ------------------------------------------------------------------ *)

let dwarf_unwind_step_cost = 60
let compiled_unwind_step_cost = 6 (* frdwarf-style compiled unwind recipes *)

let fde_at vm ~hook pc_rt =
  let link = pc_rt - load_base vm in
  let link =
    match hook with
    | Some f ->
        vm.ra_count <- vm.ra_count + 1;
        f link
    | None -> link
  in
  (link, Ehframe.find vm.bin.Binary.eh_frame link)

let ra_of_frame vm fde sp lr =
  match fde.Ehframe.ra_loc with
  | Ehframe.Ra_on_stack off -> read_mem vm (sp + off) W64
  | Ehframe.Ra_in_lr -> lr

(* Deliver the exception currently in r0: walk frames using the original
   .eh_frame (through the RA-translation hook when installed) until a
   landing pad covers the translated PC. *)
let throw vm =
  let exc = vm.regs.(Reg.index Reg.r0) in
  let rec go pc_rt sp lr depth =
    if depth > 512 then crash vm "unwind: too many frames";
    vm.unwind_count <- vm.unwind_count + 1;
    charge vm b_unwind
      (if vm.cfg.compiled_unwind then compiled_unwind_step_cost
       else dwarf_unwind_step_cost);
    let link, fde = fde_at vm ~hook:vm.cfg.translate pc_rt in
    match fde with
    | None ->
        if pc_rt = 0 then crash vm "unhandled exception"
        else crash vm (Printf.sprintf "unwind: no FDE for 0x%x" link)
    | Some fde -> (
        match Ehframe.handler_for fde ~pc:link with
        | Some handler ->
            vm.pc_ <- handler + load_base vm;
            vm.sp_ <- sp;
            vm.regs.(Reg.index Reg.r0) <- exc
        | None ->
            let ra = ra_of_frame vm fde sp lr in
            if ra = 0 then crash vm "unhandled exception"
            else
              (* Standard IP-1 convention: match the caller frame against
                 the address of its call instruction, not the return
                 address, so calls ending a try range still find their
                 landing pad. *)
              go (ra - 1) (sp + fde.Ehframe.frame_size) 0 (depth + 1))
  in
  go vm.pc_ vm.sp_ vm.lr_ 0

let frames vm =
  let rec go pc_rt sp lr depth acc =
    if depth > 512 then List.rev ((-1, sp) :: acc)
    else
      let _, fde = fde_at vm ~hook:vm.cfg.go_translate pc_rt in
      match fde with
      | None -> List.rev ((-1, sp) :: acc)
      | Some fde ->
          let acc = (pc_rt, sp) :: acc in
          if fde.Ehframe.func_start = vm.bin.Binary.entry then List.rev acc
          else
            let ra = ra_of_frame vm fde sp lr in
            if ra = 0 then List.rev ((-1, sp) :: acc)
            else go ra (sp + fde.Ehframe.frame_size) 0 (depth + 1) acc
  in
  go vm.pc_ vm.sp_ vm.lr_ 0 []

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let operand_value vm (o : Insn.operand) =
  match o with Reg r -> vm.regs.(Reg.index r) | Imm n -> n

let base_value vm = function
  | Insn.BReg r -> vm.regs.(Reg.index r)
  | Insn.BSp -> vm.sp_

let cond_holds delta (c : Insn.cond) =
  match c with
  | Eq -> delta = 0
  | Ne -> delta <> 0
  | Lt -> delta < 0
  | Le -> delta <= 0
  | Gt -> delta > 0
  | Ge -> delta >= 0

let has_lr vm = Arch.has_link_register vm.bin.Binary.arch

let do_call vm ~retaddr ~target =
  (if has_lr vm then vm.lr_ <- retaddr
   else (
     vm.sp_ <- vm.sp_ - 8;
     write_mem vm vm.sp_ W64 retaddr));
  vm.pc_ <- target

let step vm =
  if vm.steps >= vm.cfg.max_steps then crash vm "timeout: max steps exceeded";
  vm.steps <- vm.steps + 1;
  let pc0 = vm.pc_ in
  (match vm.cfg.profile with
  | Some tbl ->
      let key = pc0 - load_base vm in
      if Hashtbl.mem tbl key then
        Hashtbl.replace tbl key (1 + Hashtbl.find tbl key)
  | None -> ());
  (match vm.icache with
  | Some ic ->
      if Icache.access ic pc0 then
        charge vm b_icache
          (match vm.cfg.icache with Some c -> c.Icache.miss_cost | None -> 0)
  | None -> ());
  let insn, len = fetch vm pc0 in
  let c = vm.cfg.costs in
  charge vm b_base c.base;
  let next = pc0 + len in
  let setr r v = vm.regs.(Reg.index r) <- v in
  let getr r = vm.regs.(Reg.index r) in
  match insn with
  | Nop -> vm.pc_ <- next
  | Halt ->
      vm.state <- `Halted;
      raise Vm_stop
  | Illegal -> crash vm (Printf.sprintf "illegal instruction at 0x%x" pc0)
  | Trap -> (
      vm.trap_hits <- vm.trap_hits + 1;
      charge vm b_trap c.trap;
      let link = pc0 - load_base vm in
      match Hashtbl.find_opt vm.cfg.trap_map link with
      | Some target -> vm.pc_ <- target + load_base vm
      | None -> crash vm (Printf.sprintf "trap without mapping at 0x%x" link))
  | Mov (r, o) ->
      setr r (operand_value vm o);
      vm.pc_ <- next
  | Movhi (r, n) ->
      setr r (n lsl 16);
      vm.pc_ <- next
  | Orlo (r, n) ->
      setr r (getr r lor (n land 0xffff));
      vm.pc_ <- next
  | Movabs (r, n) ->
      setr r n;
      vm.pc_ <- next
  | Add (r, o) ->
      setr r (getr r + operand_value vm o);
      vm.pc_ <- next
  | Sub (r, o) ->
      setr r (getr r - operand_value vm o);
      vm.pc_ <- next
  | Mul (r, o) ->
      charge vm b_mul c.mul;
      setr r (getr r * operand_value vm o);
      vm.pc_ <- next
  | And_ (r, o) ->
      setr r (getr r land operand_value vm o);
      vm.pc_ <- next
  | Or_ (r, o) ->
      setr r (getr r lor operand_value vm o);
      vm.pc_ <- next
  | Xor (r, o) ->
      setr r (getr r lxor operand_value vm o);
      vm.pc_ <- next
  | Shl (r, n) ->
      setr r (getr r lsl n);
      vm.pc_ <- next
  | Shr (r, n) ->
      setr r (getr r asr n);
      vm.pc_ <- next
  | Cmp (r, o) ->
      vm.cmp_delta <- getr r - operand_value vm o;
      vm.pc_ <- next
  | Load (w, rd, b, d) ->
      charge vm b_mem c.mem;
      setr rd (read_mem vm (base_value vm b + d) w);
      vm.pc_ <- next
  | Store (w, b, d, rs) ->
      charge vm b_mem c.mem;
      write_mem vm (base_value vm b + d) w (getr rs);
      vm.pc_ <- next
  | LoadIdx (w, rd, rb, ri, s) ->
      charge vm b_mem c.mem;
      setr rd (read_mem vm (getr rb + (getr ri * s)) w);
      vm.pc_ <- next
  | Lea (r, d) ->
      setr r (pc0 + d);
      vm.pc_ <- next
  | AddSp n ->
      vm.sp_ <- vm.sp_ + n;
      vm.pc_ <- next
  | Jmp d ->
      charge vm b_branch c.branch_taken;
      vm.pc_ <- pc0 + d
  | Jcc (cond, d) ->
      if cond_holds vm.cmp_delta cond then (
        charge vm b_branch c.branch_taken;
        vm.pc_ <- pc0 + d)
      else vm.pc_ <- next
  | Call d ->
      charge vm b_branch c.branch_taken;
      do_call vm ~retaddr:next ~target:(pc0 + d)
  | IndJmp r ->
      charge vm b_indirect c.indirect;
      vm.pc_ <- getr r
  | IndCall r ->
      charge vm b_indirect c.indirect;
      do_call vm ~retaddr:next ~target:(getr r)
  | IndCallMem (b, d) ->
      charge vm b_mem c.mem;
      charge vm b_indirect c.indirect;
      let target = read_mem vm (base_value vm b + d) W64 in
      do_call vm ~retaddr:next ~target
  | Ret ->
      charge vm b_branch c.branch_taken;
      if has_lr vm then vm.pc_ <- vm.lr_
      else (
        let ra = read_mem vm vm.sp_ W64 in
        vm.sp_ <- vm.sp_ + 8;
        vm.pc_ <- ra)
  | CallRt idx -> (
      charge vm b_callrt c.callrt;
      if idx >= Array.length vm.routines then
        crash vm (Printf.sprintf "callrt: bad dynamic symbol index %d" idx)
      else
        match vm.routines.(idx) with
        | None ->
            crash vm
              (Printf.sprintf "callrt: unbound routine %s" vm.routine_names.(idx))
        | Some f ->
            f vm;
            vm.pc_ <- next)
  | Throw ->
      charge vm b_indirect c.indirect;
      throw vm
  | Out r ->
      emit_output vm (getr r);
      vm.pc_ <- next
  | Mflr r ->
      setr r vm.lr_;
      vm.pc_ <- next
  | Mtlr r ->
      vm.lr_ <- getr r;
      vm.pc_ <- next
  | Mttar r ->
      vm.tar <- getr r;
      vm.pc_ <- next
  | Btar ->
      charge vm b_indirect c.indirect;
      vm.pc_ <- vm.tar
  | Adrp (r, d) ->
      setr r ((pc0 land lnot 4095) + d);
      vm.pc_ <- next
  | Addis (rd, rs, n) ->
      setr rd (getr rs + (n lsl 16));
      vm.pc_ <- next

let sentinel = 2

let call_function vm ~addr ~args =
  let saved_regs = Array.copy vm.regs in
  let saved = (vm.sp_, vm.lr_, vm.tar, vm.cmp_delta, vm.pc_) in
  List.iteri
    (fun i v ->
      if i >= List.length Reg.arg_regs then
        invalid_arg "call_function: too many arguments";
      vm.regs.(Reg.index (List.nth Reg.arg_regs i)) <- v)
    args;
  (if has_lr vm then vm.lr_ <- sentinel
   else (
     vm.sp_ <- vm.sp_ - 8;
     write_mem vm vm.sp_ W64 sentinel));
  vm.pc_ <- addr;
  (try
     while vm.pc_ <> sentinel && vm.state = `Running do
       step vm
     done
   with Vm_stop -> ());
  let result = vm.regs.(Reg.index Reg.r0) in
  Array.blit saved_regs 0 vm.regs 0 (Array.length saved_regs);
  let sp', lr', tar', cmp', pc' = saved in
  vm.sp_ <- sp';
  vm.lr_ <- lr';
  vm.tar <- tar';
  vm.cmp_delta <- cmp';
  vm.pc_ <- pc';
  (match vm.state with `Crashed m -> crash vm m | `Halted | `Running -> ());
  result

(* ------------------------------------------------------------------ *)
(* Loading and running                                                 *)
(* ------------------------------------------------------------------ *)

let load ?(config : config option) ?(routines = []) (bin : Binary.t) =
  let cfg = match config with Some c -> c | None -> default_config () in
  let lb = if bin.Binary.pie then cfg.load_base else 0 in
  let seg_of_section (s : Section.t) =
    {
      seg_base = s.Section.vaddr + lb;
      seg_bytes = Bytes.copy s.Section.data;
      seg_perm = s.Section.perm;
      seg_decode =
        (if s.Section.perm.Section.execute then
           Array.make (Bytes.length s.Section.data) None
         else [||]);
    }
  in
  let stack =
    {
      seg_base = cfg.stack_base;
      seg_bytes = Bytes.make cfg.stack_size '\000';
      seg_perm = Section.r_w;
      seg_decode = [||];
    }
  in
  let segments =
    Array.of_list
      (List.sort
         (fun a b -> compare a.seg_base b.seg_base)
         (stack :: List.map seg_of_section (List.filter (fun s -> s.Section.loaded) bin.Binary.sections)))
  in
  let routine_names = bin.Binary.dynsyms in
  let resolved =
    Array.map (fun name -> List.assoc_opt name routines) routine_names
  in
  let vm =
    {
      bin;
      cfg;
      segments;
      last_seg = 0;
      regs = Array.make Reg.count 0;
      sp_ = cfg.stack_base + cfg.stack_size - 64;
      lr_ = 0;
      tar = 0;
      cmp_delta = 0;
      pc_ = bin.Binary.entry + lb;
      out_rev = [];
      steps = 0;
      cycles = 0;
      buckets = Array.make (Array.length bucket_names) 0;
      trap_hits = 0;
      unwind_count = 0;
      ra_count = 0;
      state = `Running;
      icache = Option.map Icache.create cfg.icache;
      routines = resolved;
      routine_names;
    }
  in
  (* Apply run-time relocations (the loader's job under PIE). *)
  if bin.Binary.pie then
    List.iter
      (fun (r : Icfg_obj.Reloc.t) ->
        match r.kind with
        | Icfg_obj.Reloc.R_relative ->
            write_mem_raw vm (r.offset + lb) (r.addend + lb)
        | Icfg_obj.Reloc.R_link _ -> ())
      bin.Binary.relocs;
  (* The ppc64le loader materializes the TOC base in r2. *)
  if bin.Binary.arch = Arch.Ppc64le then
    vm.regs.(Reg.index Reg.toc) <- bin.Binary.toc_base + lb;
  vm

let run ?config ?routines bin =
  let vm = load ?config ?routines bin in
  (try
     while vm.state = `Running do
       step vm
     done
   with Vm_stop -> ());
  {
    outcome =
      (match vm.state with
      | `Halted -> Halted
      | `Crashed m -> Crashed m
      | `Running -> Crashed "stopped while running");
    output = List.rev vm.out_rev;
    steps = vm.steps;
    cycles = vm.cycles;
    icache_misses = (match vm.icache with Some ic -> Icache.misses ic | None -> 0);
    icache_accesses =
      (match vm.icache with Some ic -> Icache.accesses ic | None -> 0);
    trap_hits = vm.trap_hits;
    unwind_steps = vm.unwind_count;
    ra_translations = vm.ra_count;
    cycle_buckets =
      Array.to_list (Array.mapi (fun i n -> (bucket_names.(i), n)) vm.buckets);
  }
