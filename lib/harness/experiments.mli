(** Reproductions of every table and figure in the paper's evaluation.

    Each function runs the full pipeline (generate → compile → parse →
    rewrite → execute both binaries → compare) and renders a paper-shaped
    report; the [*_data] variants expose the structured numbers for the test
    suite and EXPERIMENTS.md. *)

(** {1 Table 1 — qualitative comparison} *)

val table1 : unit -> string

(** {1 Table 2 — trampoline instruction sequences} *)

val table2 : unit -> string

(** {1 Figure 1 — rewritten binary layout} *)

val figure1 : unit -> string

(** {1 Figure 2 — failure-mode analysis} *)

type figure2_row = {
  f2_failure : string;
  f2_coverage_pct : float;
  f2_trampolines : int;
  f2_correct : bool;
}

val figure2_data : Icfg_isa.Arch.t -> figure2_row list
val figure2 : unit -> string

(** {1 Table 3 — SPEC-like block-level empty instrumentation} *)

type t3_row = {
  t3_approach : string;
  t3_time_max : float;
  t3_time_mean : float;
  t3_cov_min : float;
  t3_cov_mean : float;
  t3_size_max : float;
  t3_size_mean : float;
  t3_pass : int;
  t3_total : int;
}

val table3_data : Icfg_isa.Arch.t -> t3_row list
(** Rows: SRBI, dir, jt, func-ptr, and (on x86-64) Egalito. *)

val table3 : ?arches:Icfg_isa.Arch.t list -> unit -> string

val table3_detail : ?arch:Icfg_isa.Arch.t -> unit -> string
(** Per-benchmark rows (what the paper's artifact run_result.sh prints). *)

(** {1 Section 8.2 — Firefox's libxul and Docker} *)

val firefox : unit -> string
val docker : unit -> string

(** {1 Section 8.3 — comparison with BOLT} *)

type bolt_result = {
  bolt_ok : int;  (** benchmarks BOLT handled *)
  bolt_total : int;
  ours_ok : int;
}

val bolt_data :
  Icfg_isa.Arch.t -> [ `Funcs | `Blocks ] -> bolt_result

val bolt : unit -> string

(** {1 Section 9 — the Diogenes case study} *)

val diogenes_data : Icfg_isa.Arch.t -> (float, string) result
(** Speedup factor of our configuration over mainstream-Dyninst-style
    instrumentation of the libcuda subset, or [Error reason] when either
    rewriter refuses the binary — a reportable outcome (the caller prints
    a skipped cell), not a harness failure. *)

val diogenes : unit -> string

val ablation : unit -> string
(** Ablations of the design choices DESIGN.md calls out: superblocks,
    the scratch pool, CFL-only vs. every-block placement (on the ppc64le
    branch-range-stressed benchmark), and RA translation vs. call emulation
    (on the C++ exception benchmark). *)

(** {1 Coverage attribution} *)

type attribution_cell = {
  at_cfl : int;  (** residual CFL blocks *)
  at_trampolines : int;  (** placed trampolines *)
  at_traps : int;  (** trap fallbacks among them *)
}

val attribution_data :
  Icfg_isa.Arch.t ->
  (string * Icfg_core.Attribution.t * Icfg_core.Attribution.t list) list
(** Per benchmark: name, the SRBI-baseline attribution, and the attributions
    for modes [dir; jt; func-ptr] in that order. *)

val attribution_cell : Icfg_core.Attribution.t -> attribution_cell

val attribution : unit -> string
(** The paper's coverage-table view (per-benchmark CFL/trampoline/trap
    counts per configuration), the aggregate per-cause histogram, and a
    monotonicity check that residual CFL blocks and traps never increase
    along [dir -> jt -> func-ptr]. *)

val all : unit -> string
(** Every experiment, in paper order, plus the ablations. *)
