(** Aggregation helpers for experiment reports. *)

val mean : float list -> float
val max_f : float list -> float
val min_f : float list -> float
val pct : float -> string
(** Format as a signed percentage with two decimals ("+1.35%"); non-finite
    values (a ratio over an empty bench) render as ["n/a"]. *)

val ratio_pct : base:int -> value:int -> float
(** [(value - base) / base * 100], or [0.] when [base <= 0] (an empty bench
    has no meaningful growth ratio). *)
