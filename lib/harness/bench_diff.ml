type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

(* -------------------------------------------------------------------- *)
(* Parser                                                                *)
(* -------------------------------------------------------------------- *)

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char b '\r';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with Failure _ -> fail "bad \\u escape"
              in
              (* Non-ASCII escapes keep a replacement byte; counter/stage
                 names are ASCII so this never loses a key. *)
              Buffer.add_char b
                (if code < 0x80 then Char.chr code else '?');
              go ()
          | Some c ->
              Buffer.add_char b c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* -------------------------------------------------------------------- *)
(* Accessors                                                             *)
(* -------------------------------------------------------------------- *)

let member k = function Obj l -> List.assoc_opt k l | _ -> None
let as_list = function List l -> l | _ -> []
let as_num = function Num f -> Some f | _ -> None
let as_str = function Str s -> Some s | _ -> None

let str_member k j = Option.bind (member k j) as_str
let num_member k j = Option.bind (member k j) as_num

(* -------------------------------------------------------------------- *)
(* Diff                                                                  *)
(* -------------------------------------------------------------------- *)

type severity = Regression | Added | Info

type finding = { f_severity : severity; f_metric : string; f_msg : string }

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

(* Counters where a higher value is unambiguously worse; everything else
   moving is reported but does not gate. *)
let counter_worse_higher name =
  List.exists
    (fun sub -> contains ~sub name)
    [ "trampolines:trap"; "/traps"; "size-growth"; "icache-misses";
      "evict_corrupt"; "overloaded"; "errors"; "needfull"; "mismatch";
      "pipeline_misses"; "rejected" ]

(* A [lane-<k>] path segment marks a schedule-dependent span: lanes exist
   only when the domain pool actually spawns, so their presence varies
   across machines and must not gate. *)
let is_lane_row path = contains ~sub:"lane-" path

(* Sub-50µs one-shot spans are dominated by scheduling jitter; a relative
   gate alone flaps on them, so a time regression also needs this much
   absolute growth. *)
let time_noise_floor_ns = 50_000.

let diff ?gate old_json new_json =
  let schema j = str_member "schema" j in
  match (schema old_json, schema new_json) with
  | Some "icfg-bench-micro/1", Some "icfg-bench-micro/1" ->
      let findings = ref [] in
      let report sev metric msg =
        findings := { f_severity = sev; f_metric = metric; f_msg = msg } :: !findings
      in
      let same_cores =
        match (num_member "cores" old_json, num_member "cores" new_json) with
        | Some a, Some b -> a = b
        | _ -> false
      in
      let gate_times = gate <> None && same_cores in
      (if gate <> None && not same_cores then
         report Info "cores"
           "core counts differ between runs; time metrics not gated");
      let check_time metric old_ns new_ns =
        match (old_ns, new_ns) with
        | Some o, Some nw when Float.is_finite o && Float.is_finite nw ->
            if gate_times then
              let g = Option.get gate in
              if nw > o *. (1. +. (g /. 100.)) && nw -. o > time_noise_floor_ns
              then
                report Regression metric
                  (Printf.sprintf "time %.0f ns -> %.0f ns (+%.1f%%, gate %.1f%%)"
                     o nw
                     (100. *. (nw -. o) /. Float.max 1. o)
                     g)
        | _ -> ()
      in
      (* Generic keyed-row comparison: OLD rows drive the regression check,
         NEW-only rows are informational. *)
      let compare_rows ~section ~key_of ~on_pair =
        let old_rows = as_list (Option.value ~default:(List []) (member section old_json)) in
        let new_rows = as_list (Option.value ~default:(List []) (member section new_json)) in
        let keyed rows =
          List.filter_map
            (fun r -> match key_of r with Some k -> Some (k, r) | None -> None)
            rows
        in
        let olds = keyed old_rows and news = keyed new_rows in
        List.iter
          (fun (k, orow) ->
            match List.assoc_opt k news with
            | Some nrow -> on_pair k orow nrow
            | None ->
                if is_lane_row k then
                  report Info (section ^ ":" ^ k)
                    "schedule-dependent lane row absent in NEW run"
                else
                  report Regression (section ^ ":" ^ k)
                    "row present in OLD but missing in NEW")
          olds;
        (* Added-row policy: a row only NEW knows about is expected when a
           run grows coverage (new benchmarks, new cache rows) — always
           reported, never gating, distinctly flagged so a growing suite
           is visible in the report. *)
        List.iter
          (fun (k, _) ->
            if List.assoc_opt k olds = None then
              report Added (section ^ ":" ^ k) "row added in NEW (not in OLD)")
          news
      in
      (* Counter totals merged into a row: exact comparison; only
         worse-is-higher counters moving up gate. *)
      let check_counters k orow nrow =
        let counters r =
          match member "counters" r with Some (Obj l) -> l | _ -> []
        in
        let oc = counters orow and nc = counters nrow in
        List.iter
          (fun (name, ov) ->
            let metric = Printf.sprintf "counter:%s:%s" k name in
            match (as_num ov, Option.bind (List.assoc_opt name nc) as_num) with
            | Some o, Some nw when o <> nw ->
                if nw > o && counter_worse_higher name then
                  report Regression metric
                    (Printf.sprintf "counter %.0f -> %.0f" o nw)
                else
                  report Info metric (Printf.sprintf "counter %.0f -> %.0f" o nw)
            | Some _, None -> report Info metric "counter absent in NEW run"
            | _ -> ())
          oc;
        List.iter
          (fun (name, _) ->
            if List.assoc_opt name oc = None then
              report Added
                (Printf.sprintf "counter:%s:%s" k name)
                "counter added in NEW (not in OLD)")
          nc
      in
      compare_rows ~section:"micro"
        ~key_of:(fun r -> str_member "name" r)
        ~on_pair:(fun k orow nrow ->
          check_time ("micro:" ^ k) (num_member "ns_per_run" orow)
            (num_member "ns_per_run" nrow));
      let stage_jobs_key r =
        match (str_member "stage" r, num_member "jobs" r) with
        | Some st, Some j -> Some (Printf.sprintf "%s@j%d" st (int_of_float j))
        | _ -> None
      in
      compare_rows ~section:"parallel" ~key_of:stage_jobs_key
        ~on_pair:(fun k orow nrow ->
          check_time ("parallel:" ^ k) (num_member "ns_per_run" orow)
            (num_member "ns_per_run" nrow));
      compare_rows ~section:"stages" ~key_of:stage_jobs_key
        ~on_pair:(fun k orow nrow ->
          check_time ("stages:" ^ k) (num_member "ns" orow)
            (num_member "ns" nrow);
          check_counters k orow nrow);
      (* Cache rows (cold/warm rewrites): same shape as micro rows plus a
         merged counter bag — time-gated like micro, counters exact. *)
      compare_rows ~section:"cache"
        ~key_of:(fun r -> str_member "name" r)
        ~on_pair:(fun k orow nrow ->
          check_time ("cache:" ^ k) (num_member "ns_per_run" orow)
            (num_member "ns_per_run" nrow);
          check_counters ("cache:" ^ k) orow nrow);
      (* Serve throughput rows (the daemon's request stream): per-request
         wall time gates like every other time metric; the counter bag
         gates [overloaded]/[errors] going up (a stream sized under the
         queue bound must never be refused, and classify requests never
         error). Additionally the cross-request cache must keep hitting —
         the stream contains corpus twins, so a NEW run whose [hits]
         counter drops to zero means cache reuse across requests broke,
         regardless of what OLD measured. *)
      compare_rows ~section:"serve"
        ~key_of:(fun r -> str_member "name" r)
        ~on_pair:(fun k orow nrow ->
          check_time ("serve:" ^ k)
            (num_member "ns_per_request" orow)
            (num_member "ns_per_request" nrow);
          check_counters ("serve:" ^ k) orow nrow;
          let hits r =
            match member "counters" r with
            | Some c -> num_member "hits" c
            | None -> None
          in
          match hits nrow with
          | Some h when h <= 0. ->
              report Regression ("serve:" ^ k ^ ":hit-rate")
                "cross-request cache saw zero hits on a twin-bearing stream"
          | _ -> ());
      (* Incremental-protocol invariants, checked within the NEW run only
         (like the corpus pass-rate, these are absolute claims the run
         itself must satisfy, not old-vs-new comparisons). Gates fire
         whenever the named serve rows exist, and pass/fail lines are
         both emitted so the ratios stay visible in reports. *)
      let serve_new =
        as_list (Option.value ~default:(List []) (member "serve" new_json))
      in
      let serve_row name =
        List.find_opt (fun r -> str_member "name" r = Some name) serve_new
      in
      let serve_counter r name =
        Option.bind (member "counters" r) (num_member name)
      in
      (* Replay speedup: a byte-identical second pass must be answered by
         the response memo in O(1), so per-request time must beat the
         cold single-client stream by 10x. Unconditional — no --gate, no
         same-cores requirement: both rows come from the same NEW run on
         the same machine, and the margin is orders of magnitude. *)
      (match (serve_row "serve-replay-stream", serve_row "serve-stream-c1") with
      | Some replay, Some full -> (
          match
            ( num_member "ns_per_request" replay,
              num_member "ns_per_request" full )
          with
          | Some rns, Some fns when rns > 0. && fns > 0. ->
              let speedup = fns /. rns in
              if speedup < 10. then
                report Regression "serve:replay:speedup"
                  (Printf.sprintf
                     "memoized replay only %.1fx faster per request than \
                      serve-stream-c1 (want >= 10x)"
                     speedup)
              else
                report Info "serve:replay:speedup"
                  (Printf.sprintf
                     "memoized replay %.1fx faster per request than \
                      serve-stream-c1 (gate: >= 10x)"
                     speedup)
          | _ ->
              report Regression "serve:replay:speedup"
                "replay/full rows lack usable ns_per_request values")
      | Some _, None ->
          report Regression "serve:replay:speedup"
            "serve-replay-stream present but serve-stream-c1 row missing"
      | None, _ -> ());
      (match serve_row "serve-replay-stream" with
      | None -> ()
      | Some replay ->
          (match serve_counter replay "response_hit_rate_pct" with
          | Some p when p <> 100. ->
              report Regression "serve:replay:response-hit-rate"
                (Printf.sprintf
                   "only %.0f%% of replayed requests hit the response memo \
                    (want 100%%)"
                   p)
          | Some _ ->
              report Info "serve:replay:response-hit-rate"
                "every replayed request answered from the response memo"
          | None ->
              report Regression "serve:replay:response-hit-rate"
                "replay row lacks a response_hit_rate_pct counter");
          (match serve_counter replay "pipeline_misses" with
          | Some m when m <> 0. ->
              report Regression "serve:replay:pipeline-misses"
                (Printf.sprintf
                   "%.0f replayed requests re-entered the pipeline (want 0)" m)
          | Some _ -> ()
          | None ->
              report Regression "serve:replay:pipeline-misses"
                "replay row lacks a pipeline_misses counter");
          (match serve_counter replay "mismatches" with
          | Some m when m <> 0. ->
              report Regression "serve:replay:mismatches"
                (Printf.sprintf
                   "%.0f memoized responses were not byte-identical to the \
                    first pass (want 0)"
                   m)
          | Some _ -> ()
          | None ->
              report Regression "serve:replay:mismatches"
                "replay row lacks a mismatches counter"));
      (* Patch wire economy: a one-function edit shipped as a sparse
         [Patch] must cost at most 10% of the full upload it replaces,
         and must neither fall back ([needfull]) nor diverge from the
         full-upload rewrite ([mismatches]). *)
      (match serve_row "serve-patch-stream" with
      | None -> ()
      | Some patch ->
          (match
             ( serve_counter patch "wire_bytes_per_request",
               serve_counter patch "full_upload_bytes_per_request" )
           with
          | Some w, Some f when f > 0. ->
              let pct = 100. *. w /. f in
              if w *. 10. > f then
                report Regression "serve:patch:wire-bytes"
                  (Printf.sprintf
                     "patch requests ship %.1f%% of the full-upload bytes \
                      (want <= 10%%)"
                     pct)
              else
                report Info "serve:patch:wire-bytes"
                  (Printf.sprintf
                     "patch requests ship %.1f%% of the full-upload bytes \
                      (gate: <= 10%%)"
                     pct)
          | _ ->
              report Regression "serve:patch:wire-bytes"
                "patch row lacks wire/full byte counters");
          (match serve_counter patch "needfull" with
          | Some m when m <> 0. ->
              report Regression "serve:patch:needfull"
                (Printf.sprintf
                   "%.0f patch requests fell back to full upload (want 0)" m)
          | _ -> ());
          (match serve_counter patch "mismatches" with
          | Some m when m <> 0. ->
              report Regression "serve:patch:mismatches"
                (Printf.sprintf
                   "%.0f patched rewrites diverged from the full-upload \
                    result (want 0)"
                   m)
          | Some _ -> ()
          | None ->
              report Regression "serve:patch:mismatches"
                "patch row lacks a mismatches counter"));
      (* Telemetry rows (the daemon registry snapshot distilled after each
         serve stream): every counter emitted here is by construction a
         deterministic function of the served stream — request/outcome
         totals, per-approach × per-outcome latency histogram observation
         counts, eviction counters — so ANY drift, in either direction,
         is a behavior change and gates exactly (a dropped count is a
         lost request as surely as a risen error count is a new fault).
         The "times" bag holds machine-varying ns sums and follows the
         usual time policy (gated only with --gate on same-cores runs,
         above the noise floor). *)
      compare_rows ~section:"metrics"
        ~key_of:(fun r -> str_member "name" r)
        ~on_pair:(fun k orow nrow ->
          let bag field r =
            match member field r with Some (Obj l) -> l | _ -> []
          in
          let oc = bag "counters" orow and nc = bag "counters" nrow in
          List.iter
            (fun (name, ov) ->
              let metric = Printf.sprintf "metrics:%s:%s" k name in
              match (as_num ov, Option.bind (List.assoc_opt name nc) as_num) with
              | Some o, Some nw when o <> nw ->
                  report Regression metric
                    (Printf.sprintf "deterministic counter %.0f -> %.0f" o nw)
              | Some _, None ->
                  report Regression metric "counter absent in NEW run"
              | _ -> ())
            oc;
          List.iter
            (fun (name, _) ->
              if List.assoc_opt name oc = None then
                report Added
                  (Printf.sprintf "metrics:%s:%s" k name)
                  "counter added in NEW (not in OLD)")
            nc;
          let ot = bag "times" orow and nt = bag "times" nrow in
          List.iter
            (fun (name, ov) ->
              check_time
                (Printf.sprintf "metrics:%s:%s" k name)
                (as_num ov)
                (Option.bind (List.assoc_opt name nt) as_num))
            ot);
      (* Corpus robustness rows: classification is deterministic (serial
         cache probing, seeded corpus), so [pass_rate_pct] is compared
         exactly and a drop gates unconditionally — no noise floor, no
         same-cores requirement, no [--gate] threshold. Only comparable
         sweeps gate: if the corpus itself differs ([cells] changed), the
         rates measure different populations and the mismatch is reported
         instead. Refusal-histogram movement is informational; p50/p95
         wall times gate like every other time metric. *)
      compare_rows ~section:"corpus"
        ~key_of:(fun r -> str_member "approach" r)
        ~on_pair:(fun k orow nrow ->
          let metric = "corpus:" ^ k in
          let same_cells =
            match (num_member "cells" orow, num_member "cells" nrow) with
            | Some a, Some b when a <> b ->
                report Info (metric ^ ":cells")
                  (Printf.sprintf
                     "corpus size %.0f -> %.0f; pass rate not gated" a b);
                false
            | _ -> true
          in
          (match
             ( num_member "pass_rate_pct" orow,
               num_member "pass_rate_pct" nrow )
           with
          | Some o, Some nw when nw < o && same_cells ->
              report Regression (metric ^ ":pass-rate")
                (Printf.sprintf "pass rate %.1f%% -> %.1f%%" o nw)
          | Some o, Some nw when o <> nw ->
              report Info (metric ^ ":pass-rate")
                (Printf.sprintf "pass rate %.1f%% -> %.1f%%" o nw)
          | _ -> ());
          check_time (metric ^ ":p50")
            (num_member "p50_ns" orow)
            (num_member "p50_ns" nrow);
          check_time (metric ^ ":p95")
            (num_member "p95_ns" orow)
            (num_member "p95_ns" nrow);
          let refusals r =
            match member "refusals" r with Some (Obj l) -> l | _ -> []
          in
          let oref = refusals orow and nref = refusals nrow in
          List.iter
            (fun (name, ov) ->
              let m = Printf.sprintf "refusal:%s:%s" k name in
              match
                (as_num ov, Option.bind (List.assoc_opt name nref) as_num)
              with
              | Some o, Some nw when o <> nw ->
                  report Info m (Printf.sprintf "refusals %.0f -> %.0f" o nw)
              | Some _, None -> report Info m "refusal key absent in NEW run"
              | _ -> ())
            oref;
          List.iter
            (fun (name, _) ->
              if List.assoc_opt name oref = None then
                report Added
                  (Printf.sprintf "refusal:%s:%s" k name)
                  "refusal key added in NEW (not in OLD)")
            nref);
      Ok (List.rev !findings)
  | _ -> Error "not icfg-bench-micro/1 documents"

let diff_strings ?gate old_s new_s =
  match (parse_json old_s, parse_json new_s) with
  | Ok o, Ok nw -> diff ?gate o nw
  | Error e, _ -> Error ("OLD: " ^ e)
  | _, Error e -> Error ("NEW: " ^ e)

let read_file path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Ok s
  with Sys_error e -> Error e

let diff_files ?gate old_path new_path =
  match (read_file old_path, read_file new_path) with
  | Ok o, Ok nw -> diff_strings ?gate o nw
  | Error e, _ | _, Error e -> Error e

(* -------------------------------------------------------------------- *)
(* Warm-path gate                                                        *)
(* -------------------------------------------------------------------- *)

(* The per-stage miss counters that must stay exactly zero on the
   data-only-edit warm row: with piecewise context digests, a validated
   data edit invalidates only [parse/finalize] (the one stage that
   dereferences data words) — any other stage going cold means a digest
   leaked data bytes into a text-stage key. *)
let data_edit_zero_misses =
  [
    "miss:parse/pass1";
    "miss:parse/fptr";
    "miss:parse/fptr2";
    "miss:rewrite/relocate";
    "miss:rewrite/plan";
    "miss:encode";
  ]

let check_cache ?(max_ratio = 1.3) doc =
  match member "schema" doc with
  | Some (Str ("icfg-bench-micro/1" | "icfg-bench-cache/1")) ->
      let rows = Option.fold ~none:[] ~some:as_list (member "cache" doc) in
      let row name =
        List.find_opt
          (fun r ->
            match member "name" r with Some (Str s) -> s = name | _ -> false)
          rows
      in
      let ns r = Option.bind (member "ns_per_run" r) as_num in
      let findings = ref [] in
      let report sev metric msg =
        findings := { f_severity = sev; f_metric = metric; f_msg = msg } :: !findings
      in
      (match (row "cache-warm-identical", row "cache-warm-perturbed") with
      | Some wi, Some wp -> (
          match (ns wi, ns wp) with
          | Some ident, Some pert when ident > 0. ->
              let ratio = pert /. ident in
              if ratio > max_ratio then
                report Regression "cache:warm-perturbed-ratio"
                  (Printf.sprintf
                     "warm-perturbed is %.2fx warm-identical (limit %.2fx)"
                     ratio max_ratio)
              else
                report Info "cache:warm-perturbed-ratio"
                  (Printf.sprintf
                     "warm-perturbed is %.2fx warm-identical (limit %.2fx)"
                     ratio max_ratio)
          | _ ->
              report Regression "cache:warm-perturbed-ratio"
                "warm rows lack usable ns_per_run values")
      | _ ->
          report Regression "cache:warm-perturbed-ratio"
            "cache-warm-identical / cache-warm-perturbed rows missing");
      (match row "cache-warm-data-edit" with
      | None ->
          report Regression "cache:data-edit"
            "cache-warm-data-edit row missing"
      | Some r -> (
          (* Per-stage miss counters are only emitted when nonzero, so an
             absent key IS the passing case — but a row with no counter
             object at all is malformed, not a pass. *)
          match member "counters" r with
          | Some (Obj counters) ->
              List.iter
                (fun k ->
                  match List.assoc_opt k counters with
                  | None | Some (Num 0.) -> ()
                  | Some (Num v) ->
                      report Regression ("cache:data-edit:" ^ k)
                        (Printf.sprintf
                           "%.0f misses on a data-only edit (want 0)" v)
                  | Some _ ->
                      report Regression ("cache:data-edit:" ^ k)
                        "counter is not a number")
                data_edit_zero_misses
          | _ ->
              report Regression "cache:data-edit"
                "data-edit row lacks a counter object"));
      Ok (List.rev !findings)
  | _ -> Error "not an icfg-bench-micro/1 or icfg-bench-cache/1 document"

let check_cache_string ?max_ratio s =
  match parse_json s with
  | Ok doc -> check_cache ?max_ratio doc
  | Error e -> Error e

let check_cache_file ?max_ratio path =
  match read_file path with
  | Ok s -> check_cache_string ?max_ratio s
  | Error e -> Error e

let has_regression = List.exists (fun f -> f.f_severity = Regression)

let render findings =
  let b = Buffer.create 1024 in
  let part sev label =
    let fs = List.filter (fun f -> f.f_severity = sev) findings in
    if fs <> [] then begin
      Printf.bprintf b "%s (%d):\n" label (List.length fs);
      List.iter
        (fun f -> Printf.bprintf b "  %-40s %s\n" f.f_metric f.f_msg)
        fs
    end
  in
  part Regression "REGRESSIONS";
  part Added "added";
  part Info "info";
  if findings = [] then Buffer.add_string b "no differences\n";
  Buffer.contents b
