module Vm = Icfg_runtime.Vm
module Baseline = Icfg_baselines.Baseline
module Cache = Icfg_core.Cache
module Trace = Icfg_core.Trace
module Corpus = Icfg_workloads.Corpus

type cls =
  | Verified
  | Diverged
  | Refused of string
  | Crashed of string

type row = {
  row_approach : string;
  row_cells : int;
  row_verified : int;
  row_diverged : int;
  row_refused : int;
  row_crashed : int;
  row_refusals : (string * int) list;
  row_p50_ns : float;
  row_p95_ns : float;
}

type t = {
  m_seed : int;
  m_count : int;
  m_jobs : int;
  m_rows : row list;
  m_cache : Cache.stats;
  m_hit_rate : float;
}

let pass_rate_pct r =
  if r.row_cells = 0 then 0.
  else 100. *. float_of_int r.row_verified /. float_of_int r.row_cells

(* Nearest-rank percentile. Non-finite samples are dropped before
   ranking: the polymorphic [compare] orders [nan] arbitrarily against
   other floats, so one poisoned timing cell would otherwise silently
   shift every rank. The sample is sorted once into an array and each
   query indexes directly — O(1) per rank instead of [List.nth]'s O(n). *)
let sorted_sample xs =
  let a = Array.of_list (List.filter Float.is_finite xs) in
  Array.sort Float.compare a;
  a

let rank_of_sorted a p =
  let n = Array.length a in
  if n = 0 then 0.
  else
    let i = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    a.(max 0 (min (n - 1) i))

let percentile p xs = rank_of_sorted (sorted_sample xs) p

let classify ~orig outcome =
  match outcome with
  | Baseline.Refused reason -> Refused (Baseline.refusal_key reason)
  | Baseline.Rewritten rw -> (
      let r = Runner.run_rewritten rw in
      match r.Runner.r_outcome with
      | Vm.Crashed m -> Crashed m
      | Vm.Halted ->
          if r.Runner.r_output = orig.Runner.r_output then Verified
          else Diverged)

let cls_to_string = function
  | Verified -> "verified"
  | Diverged -> "diverged"
  | Refused k -> "refused:" ^ k
  | Crashed m -> "crashed:" ^ m

let cls_of_string s =
  let tail p = String.sub s (String.length p) (String.length s - String.length p) in
  let has p =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  match s with
  | "verified" -> Some Verified
  | "diverged" -> Some Diverged
  | _ when has "refused:" -> Some (Refused (tail "refused:"))
  | _ when has "crashed:" -> Some (Crashed (tail "crashed:"))
  | _ -> None

(* One (binary, approach) cell, exceptions contained: an adversarial
   shape may defeat a rewriter outright (e.g. an encoder range
   overflow); that is a [Crashed] cell, not the end of the sweep — and
   in the serve daemon, a typed error, not a dead process. *)
let eval_cell ~orig ~approach ?(jobs = 1) ?cache bin =
  let t0 = Unix.gettimeofday () in
  let c =
    match Runner.drive ~approach ~jobs ?cache bin with
    | None -> Crashed ("unknown approach: " ^ approach)
    | Some outcome -> classify ~orig outcome
    | exception e -> Crashed (Printexc.to_string e)
  in
  let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  (match c with
  | Verified -> Trace.add "corpus.verified" 1
  | Diverged -> Trace.add "corpus.diverged" 1
  | Refused _ -> Trace.add "corpus.refused" 1
  | Crashed _ -> Trace.add "corpus.crashed" 1);
  (ns, c)

let row_of ~approach cells =
  let count pred = List.length (List.filter pred cells) in
  let refusals =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, c) -> match c with Refused k -> Some k | _ -> None)
         cells)
  in
  let refusal_count k =
    count (fun (_, c) -> match c with Refused k' -> k' = k | _ -> false)
  in
  let times = sorted_sample (List.map fst cells) in
  {
    row_approach = approach;
    row_cells = List.length cells;
    row_verified = count (fun (_, c) -> c = Verified);
    row_diverged = count (fun (_, c) -> c = Diverged);
    row_refused = count (fun (_, c) -> match c with Refused _ -> true | _ -> false);
    row_crashed = count (fun (_, c) -> match c with Crashed _ -> true | _ -> false);
    row_refusals = List.map (fun k -> (k, refusal_count k)) refusals;
    row_p50_ns = rank_of_sorted times 0.50;
    row_p95_ns = rank_of_sorted times 0.95;
  }

let run ?(seed = 7) ?(count = 300) ?(jobs = 1) ?(progress = fun _ -> ()) () =
  let jobs = max 1 jobs in
  let entries = Corpus.generate ~seed ~count in
  let cache = Cache.create () in
  (* One shared cache, cells evaluated serially in corpus order: hit/miss
     counts (and thus the corpus-wide hit rate) are jobs-independent,
     because [Cache.memo_map] probes serially and only fans misses out.
     Parallelism lives inside each cell's parse/rewrite pipeline — the
     pool must not be entered twice (no nested [Pool.map]). *)
  let cells = Hashtbl.create 8 in
  List.iter
    (fun (name, _) -> Hashtbl.replace cells name [])
    Baseline.approaches;
  List.iteri
    (fun i e ->
      let bin = Corpus.build e in
      let orig = Runner.run_original bin in
      List.iter
        (fun (name, _) ->
          let cell = eval_cell ~orig ~approach:name ~jobs ~cache bin in
          Hashtbl.replace cells name (cell :: Hashtbl.find cells name))
        Baseline.approaches;
      progress (i + 1))
    entries;
  let rows =
    List.map
      (fun (name, _) ->
        row_of ~approach:name (List.rev (Hashtbl.find cells name)))
      Baseline.approaches
  in
  let stats = Cache.stats cache in
  {
    m_seed = seed;
    m_count = count;
    m_jobs = jobs;
    m_rows = rows;
    m_cache = stats;
    m_hit_rate = Cache.hit_rate stats;
  }

let render m =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "== Corpus robustness matrix (seed %d, %d binaries, jobs %d) ==\n"
    m.m_seed m.m_count m.m_jobs;
  Printf.bprintf b "  %-16s %6s %9s %9s %8s %8s %10s %10s\n" "approach"
    "pass%" "verified" "diverged" "refused" "crashed" "p50(ms)" "p95(ms)";
  List.iter
    (fun r ->
      Printf.bprintf b "  %-16s %6.1f %9d %9d %8d %8d %10.2f %10.2f\n"
        r.row_approach (pass_rate_pct r) r.row_verified r.row_diverged
        r.row_refused r.row_crashed
        (r.row_p50_ns /. 1e6)
        (r.row_p95_ns /. 1e6))
    m.m_rows;
  let with_refusals =
    List.filter (fun r -> r.row_refusals <> []) m.m_rows
  in
  if with_refusals <> [] then begin
    Buffer.add_string b "  refusals:\n";
    List.iter
      (fun r ->
        Printf.bprintf b "    %-16s %s\n" r.row_approach
          (String.concat " "
             (List.map
                (fun (k, n) -> Printf.sprintf "%s=%d" k n)
                r.row_refusals)))
      with_refusals
  end;
  Printf.bprintf b
    "  cache: %d hits, %d misses, %d stores (corpus-wide hit-rate %.1f%%)\n"
    m.m_cache.Cache.c_hits m.m_cache.Cache.c_misses m.m_cache.Cache.c_stores
    (100. *. m.m_hit_rate);
  Buffer.contents b
