open Icfg_isa
module Binary = Icfg_obj.Binary
module Parse = Icfg_analysis.Parse
module Failure_model = Icfg_analysis.Failure_model
module Rewriter = Icfg_core.Rewriter
module Mode = Icfg_core.Mode
module Baseline = Icfg_baselines.Baseline
module Capabilities = Icfg_baselines.Capabilities
module Spec_suite = Icfg_workloads.Spec_suite
module Apps = Icfg_workloads.Apps
module Vm = Icfg_runtime.Vm

let buf_out f =
  let b = Buffer.create 4096 in
  f b;
  Buffer.contents b

let line b fmt = Format.kasprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  let rows =
    List.map
      (fun (r : Capabilities.row) ->
        [
          r.Capabilities.approach;
          Capabilities.rewrites_name r.Capabilities.rewrites;
          Capabilities.reloc_name r.Capabilities.reloc_use;
          Capabilities.unmodified_name r.Capabilities.unmodified;
          Capabilities.unwinding_name r.Capabilities.unwinding;
        ])
      Capabilities.table1
  in
  "== Table 1: Comparison of binary rewriting approaches ==\n"
  ^ Table.render
      ~header:
        [
          "Approach"; "Types to rewrite"; "Use of relocation";
          "Unmodified control flow"; "Stack unwinding";
        ]
      rows

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let human_range n =
  if n >= 1 lsl 30 then Printf.sprintf "%dGB" (n / (1 lsl 30))
  else if n >= 1 lsl 20 then Printf.sprintf "%dMB" (n / (1 lsl 20))
  else Printf.sprintf "%dB" n

let table2 () =
  let rows =
    List.map
      (fun (r : Trampoline.row) ->
        [
          Arch.name r.Trampoline.arch;
          r.Trampoline.instructions;
          human_range r.Trampoline.range;
          r.Trampoline.length_desc;
        ])
      Trampoline.catalogue
  in
  "== Table 2: Trampoline instruction sequences ==\n"
  ^ Table.render ~header:[ "Arch."; "Instructions"; "Range"; "Len." ] rows

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let quickstart_prog =
  let spec = { Icfg_workloads.Gen.default_spec with Icfg_workloads.Gen.name = "quickstart"; iters = 20 } in
  Icfg_workloads.Gen.build spec

let figure1 () =
  buf_out (fun b ->
      line b "== Figure 1: layout of a rewritten binary (x86-64, jt mode) ==";
      let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 quickstart_prog in
      let parse = Parse.parse bin in
      let rw = Rewriter.rewrite parse in
      line b "-- input binary --";
      line b "%s" (Format.asprintf "%a" Binary.pp bin);
      line b "-- rewritten binary --";
      line b "%s" (Format.asprintf "%a" Binary.pp rw.Rewriter.rw_binary);
      line b "-- rewrite stats --";
      line b "%s" (Format.asprintf "%a" Rewriter.pp_stats rw.Rewriter.rw_stats))

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

type figure2_row = {
  f2_failure : string;
  f2_coverage_pct : float;
  f2_trampolines : int;
  f2_correct : bool;
}

let figure2_case arch label fm prog =
  let bin, _ = Icfg_codegen.Compile.compile arch prog in
  let parse = Parse.parse ~fm bin in
  (* dir mode: jump-table target blocks are CFL, so phantom
     (over-approximated) targets surface as extra trampolines, and missing
     (under-approximated) targets surface as missing trampolines. *)
  let rw =
    Rewriter.rewrite
      ~options:{ Rewriter.default_options with Rewriter.mode = Mode.Dir }
      parse
  in
  let orig = Runner.run_original bin in
  let v =
    Runner.evaluate ~orig ~coverage:(Parse.coverage parse)
      ~orig_size:(Binary.loaded_size bin) (Baseline.Rewritten rw)
  in
  {
    f2_failure = label;
    f2_coverage_pct = v.Runner.v_coverage_pct;
    f2_trampolines = rw.Rewriter.rw_stats.Rewriter.s_trampolines;
    f2_correct = v.Runner.v_pass;
  }

let figure2_data arch =
  let mk ?(data_table = 0) () =
    Icfg_workloads.Gen.build
      {
        Icfg_workloads.Gen.default_spec with
        Icfg_workloads.Gen.seed = 42;
        name = "figure2";
        n_switch = 3;
        n_data_table = data_table;
        iters = 40;
      }
  in
  [
    figure2_case arch "none (accurate CFG)" Failure_model.ours (mk ());
    figure2_case arch "analysis failure (graceful)" Failure_model.ours
      (mk ~data_table:1 ());
    figure2_case arch "over-approximation (+8 entries)"
      {
        (Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_over 8)) with
        Failure_model.extend_to_known_data = false;
      }
      (mk ());
    figure2_case arch "under-approximation (-2 entries)"
      (Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_under 2))
      (mk ());
  ]

let figure2 () =
  buf_out (fun b ->
      line b "== Figure 2: failure modes of binary analysis vs. rewriting ==";
      List.iter
        (fun arch ->
          line b "-- %s --" (Arch.name arch);
          let rows =
            List.map
              (fun r ->
                [
                  r.f2_failure;
                  Printf.sprintf "%.2f%%" r.f2_coverage_pct;
                  string_of_int r.f2_trampolines;
                  (if r.f2_correct then "correct" else "WRONG INSTRUMENTATION");
                ])
              (figure2_data arch)
          in
          Buffer.add_string b
            (Table.render
               ~header:[ "CFG failure"; "Coverage"; "Trampolines"; "Rewriting" ]
               rows))
        [ Arch.X86_64 ])

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

type t3_row = {
  t3_approach : string;
  t3_time_max : float;
  t3_time_mean : float;
  t3_cov_min : float;
  t3_cov_mean : float;
  t3_size_max : float;
  t3_size_mean : float;
  t3_pass : int;
  t3_total : int;
}

let aggregate name verdicts =
  let passing = List.filter (fun v -> v.Runner.v_pass) verdicts in
  let times = List.map (fun v -> v.Runner.v_overhead_pct) passing in
  let covs = List.map (fun v -> v.Runner.v_coverage_pct) verdicts in
  let sizes =
    List.filter_map
      (fun v -> if v.Runner.v_size_pct <> 0. then Some v.Runner.v_size_pct else None)
      verdicts
  in
  {
    t3_approach = name;
    t3_time_max = Stats.max_f times;
    t3_time_mean = Stats.mean times;
    t3_cov_min = Stats.min_f covs;
    t3_cov_mean = Stats.mean covs;
    t3_size_max = Stats.max_f sizes;
    t3_size_mean = Stats.mean sizes;
    t3_pass = List.length passing;
    t3_total = List.length verdicts;
  }

let table3_data arch =
  let benches = Spec_suite.benchmarks arch in
  let cells =
    List.map
      (fun bench ->
        let bin, _ = Spec_suite.compile arch bench in
        let orig = Runner.run_original bin in
        let orig_size = Binary.loaded_size bin in
        let cov fm = Parse.coverage (Parse.parse ~fm bin) in
        let cov_srbi = cov Failure_model.srbi in
        let cov_ours = cov Failure_model.ours in
        let eval coverage outcome =
          Runner.evaluate ~orig ~coverage ~orig_size outcome
        in
        let srbi = eval cov_srbi (Baseline.srbi bin) in
        let dir = eval cov_ours (Baseline.ours ~mode:Mode.Dir bin) in
        let jt = eval cov_ours (Baseline.ours ~mode:Mode.Jt bin) in
        let fp = eval cov_ours (Baseline.ours ~mode:Mode.Func_ptr bin) in
        let egalito =
          if arch <> Arch.X86_64 then None
          else
            let bin_pie, _ = Spec_suite.compile ~pie:true arch bench in
            let orig_pie = Runner.run_original bin_pie in
            Some
              (Runner.evaluate ~orig:orig_pie
                 ~coverage:(Parse.coverage (Parse.parse bin_pie))
                 ~orig_size:(Binary.loaded_size bin_pie)
                 (Baseline.ir_lowering bin_pie))
        in
        (srbi, dir, jt, fp, egalito))
      benches
  in
  let col f = List.map f cells in
  let rows =
    [
      aggregate "SRBI" (col (fun (s, _, _, _, _) -> s));
      aggregate "dir" (col (fun (_, d, _, _, _) -> d));
      aggregate "jt" (col (fun (_, _, j, _, _) -> j));
      aggregate "func-ptr" (col (fun (_, _, _, f, _) -> f));
    ]
  in
  if arch = Arch.X86_64 then
    rows
    @ [
        aggregate "Egalito"
          (List.filter_map (fun (_, _, _, _, e) -> e) cells);
      ]
  else rows

let render_t3 rows =
  Table.render
    ~header:
      [
        ""; "Time max"; "Time mean"; "Cov min"; "Cov mean"; "Size max";
        "Size mean"; "Pass";
      ]
    (List.map
       (fun r ->
         [
           r.t3_approach;
           Stats.pct r.t3_time_max;
           Stats.pct r.t3_time_mean;
           Printf.sprintf "%.2f%%" r.t3_cov_min;
           Printf.sprintf "%.2f%%" r.t3_cov_mean;
           Stats.pct r.t3_size_max;
           Stats.pct r.t3_size_mean;
           Printf.sprintf "%d/%d" r.t3_pass r.t3_total;
         ])
       rows)

(* Per-benchmark detail rows, as the paper's artifact scripts print. *)
let table3_detail ?(arch = Arch.X86_64) () =
  buf_out (fun b ->
      line b "== Table 3 detail: per-benchmark results (%s) ==" (Arch.name arch);
      let rows =
        List.map
          (fun bench ->
            let bin, _ = Spec_suite.compile arch bench in
            let orig = Runner.run_original bin in
            let orig_size = Binary.loaded_size bin in
            let coverage = Parse.coverage (Parse.parse bin) in
            let cell mode =
              let v =
                Runner.evaluate ~orig ~coverage ~orig_size
                  (Baseline.ours ~mode bin)
              in
              if v.Runner.v_pass then Stats.pct v.Runner.v_overhead_pct
              else "FAIL"
            in
            let srbi =
              let v =
                Runner.evaluate ~orig
                  ~coverage:
                    (Parse.coverage
                       (Parse.parse ~fm:Icfg_analysis.Failure_model.srbi bin))
                  ~orig_size (Baseline.srbi bin)
              in
              if v.Runner.v_pass then Stats.pct v.Runner.v_overhead_pct
              else "FAIL"
            in
            [
              bench.Spec_suite.bench_name;
              String.concat "/"
                (List.map Binary.lang_name bench.Spec_suite.langs);
              srbi;
              cell Mode.Dir;
              cell Mode.Jt;
              cell Mode.Func_ptr;
              Printf.sprintf "%.1f%%" (100. *. coverage);
            ])
          (Spec_suite.benchmarks arch)
      in
      Buffer.add_string b
        (Table.render
           ~header:
             [ "benchmark"; "langs"; "SRBI"; "dir"; "jt"; "func-ptr"; "cov" ]
           rows))

let table3 ?(arches = Arch.all) () =
  buf_out (fun b ->
      line b "== Table 3: block-level empty instrumentation (SPEC-like suite) ==";
      List.iter
        (fun arch ->
          line b "-- %s --" (Arch.name arch);
          Buffer.add_string b (render_t3 (table3_data arch)))
        arches)

(* ------------------------------------------------------------------ *)
(* Section 8.2: Firefox's libxul and Docker                            *)
(* ------------------------------------------------------------------ *)

let firefox () =
  buf_out (fun b ->
      line b "== Firefox libxul.so analogue (x86-64, PIE) ==";
      let arch = Arch.X86_64 in
      let bin, _ = Apps.libxul arch in
      let orig = Runner.run_original bin in
      let orig_size = Binary.loaded_size bin in
      let parse = Parse.parse bin in
      let coverage = Parse.coverage parse in
      line b "functions: %d, coverage: %.2f%%" (Parse.total_funcs parse)
        (100. *. coverage);
      List.iter
        (fun mode ->
          let v =
            Runner.evaluate ~orig ~coverage ~orig_size
              (Baseline.ours ~mode bin)
          in
          (* Latency-style metric: overhead; score-style metric (JetStream):
             score reduction = overhead/(1+overhead). *)
          let score_red =
            100. *. (v.Runner.v_overhead_pct /. (100. +. v.Runner.v_overhead_pct))
          in
          if v.Runner.v_pass then
            line b
              "%-8s: latency overhead %s, score reduction %.2f%%, size %s, \
               traps %d"
              (Mode.name mode)
              (Stats.pct v.Runner.v_overhead_pct)
              score_red
              (Stats.pct v.Runner.v_size_pct)
              v.Runner.v_traps
          else
            line b "%-8s: FAILED (%s)" (Mode.name mode) v.Runner.v_reason)
        [ Mode.Dir; Mode.Jt; Mode.Func_ptr ];
      (match Baseline.ir_lowering bin with
      | Baseline.Refused r -> line b "Egalito : REFUSED (%s)" r
      | Baseline.Rewritten _ -> line b "Egalito : unexpectedly succeeded"))

let docker () =
  buf_out (fun b ->
      line b "== Docker analogue (Go, x86-64, PIE) ==";
      let arch = Arch.X86_64 in
      let bin, _ = Apps.docker arch in
      let orig = Runner.run_original bin in
      let orig_size = Binary.loaded_size bin in
      let parse = Parse.parse bin in
      let coverage = Parse.coverage parse in
      line b "functions: %d, coverage: %.2f%%" (Parse.total_funcs parse)
        (100. *. coverage);
      let results =
        List.map
          (fun mode ->
            let out = Baseline.ours ~mode bin in
            let cloned =
              match out with
              | Baseline.Rewritten rw ->
                  rw.Rewriter.rw_stats.Rewriter.s_cloned_tables
              | Baseline.Refused _ -> 0
            in
            (mode, Runner.evaluate ~orig ~coverage ~orig_size out, cloned))
          [ Mode.Dir; Mode.Jt; Mode.Func_ptr ]
      in
      List.iter
        (fun (mode, v, cloned) ->
          if v.Runner.v_pass then
            line b "%-8s: overhead %s, size %s, cloned tables %d"
              (Mode.name mode)
              (Stats.pct v.Runner.v_overhead_pct)
              (Stats.pct v.Runner.v_size_pct)
              cloned
          else line b "%-8s: FAILED (%s)" (Mode.name mode) v.Runner.v_reason)
        results;
      line b
        "(Go's compiler emits no jump tables, so dir and jt coincide; \
         func-ptr fails on the Go function tables.)";
      match Baseline.ir_lowering bin with
      | Baseline.Refused r -> line b "Egalito : REFUSED (%s)" r
      | Baseline.Rewritten _ -> line b "Egalito : unexpectedly succeeded")

(* ------------------------------------------------------------------ *)
(* Section 8.3: BOLT                                                   *)
(* ------------------------------------------------------------------ *)

type bolt_result = { bolt_ok : int; bolt_total : int; ours_ok : int }

let bolt_data arch which =
  let benches = Spec_suite.benchmarks arch in
  let count f = List.length (List.filter f benches) in
  let run_ok bench reorder =
    let bin, _ = Spec_suite.compile arch bench in
    let orig = Runner.run_original bin in
    let v =
      Runner.evaluate ~orig ~coverage:1.0 ~orig_size:(Binary.loaded_size bin)
        (reorder bin)
    in
    v.Runner.v_pass
  in
  match which with
  | `Funcs ->
      {
        bolt_ok = count (fun bench -> run_ok bench Baseline.bolt_function_reorder);
        bolt_total = List.length benches;
        ours_ok =
          count (fun bench ->
              run_ok bench (fun bin ->
                  let parse = Parse.parse bin in
                  Baseline.Rewritten
                    (Rewriter.rewrite
                       ~options:
                         {
                           Rewriter.default_options with
                           Rewriter.order = `Reverse_funcs;
                         }
                       parse)));
      }
  | `Blocks ->
      {
        bolt_ok = count (fun bench -> run_ok bench Baseline.bolt_block_reorder);
        bolt_total = List.length benches;
        ours_ok =
          count (fun bench ->
              run_ok bench (fun bin ->
                  let parse = Parse.parse bin in
                  Baseline.Rewritten
                    (Rewriter.rewrite
                       ~options:
                         {
                           Rewriter.default_options with
                           Rewriter.order = `Reverse_blocks;
                         }
                       parse)));
      }

let bolt () =
  buf_out (fun b ->
      line b "== Section 8.3: comparison with BOLT (x86-64) ==";
      let f = bolt_data Arch.X86_64 `Funcs in
      line b
        "function reversal : BOLT %d/%d (refuses without link-time \
         relocations, even for PIE); ours %d/%d"
        f.bolt_ok f.bolt_total f.ours_ok f.bolt_total;
      (* With a -Wl,-q style build BOLT works. *)
      let bench = List.hd (Spec_suite.benchmarks Arch.X86_64) in
      let bin_q, _ =
        Icfg_codegen.Compile.compile ~link_relocs:true Arch.X86_64
          bench.Spec_suite.prog
      in
      (match Baseline.bolt_function_reorder bin_q with
      | Baseline.Rewritten _ ->
          line b "with -Wl,-q link-time relocations retained: BOLT succeeds"
      | Baseline.Refused r -> line b "with -Wl,-q: still refused (%s)" r);
      let bl = bolt_data Arch.X86_64 `Blocks in
      line b
        "block reversal    : BOLT %d/%d (%d corrupted binaries — the bad \
         .interp failure); ours %d/%d"
        bl.bolt_ok bl.bolt_total (bl.bolt_total - bl.bolt_ok) bl.ours_ok
        bl.bolt_total)

(* ------------------------------------------------------------------ *)
(* Section 9: Diogenes                                                 *)
(* ------------------------------------------------------------------ *)

(* A refusal from either rewriter is a data-shape outcome, not a harness
   crash: report it as [Error reason] so the experiment table can print a
   skipped cell instead of [failwith] killing the whole bench run. *)
let diogenes_data arch =
  let bin, _ = Apps.libcuda arch in
  let subset = Apps.libcuda_api_subset bin in
  let run label outcome =
    match outcome with
    | Baseline.Rewritten rw -> Ok (Runner.run_rewritten rw)
    | Baseline.Refused r -> Error (label ^ ": " ^ r)
  in
  match
    ( run "dyninst" (Baseline.legacy_dyninst ~only:subset bin),
      run "ours" (Baseline.ours_partial ~mode:Mode.Jt ~only:subset bin) )
  with
  | Ok legacy, Ok ours ->
      Ok
        (float_of_int legacy.Runner.r_cycles
        /. float_of_int (max 1 ours.Runner.r_cycles))
  | Error r, _ | _, Error r -> Error r

let diogenes () =
  buf_out (fun b ->
      line b "== Section 9: Diogenes case study (libcuda analogue) ==";
      List.iter
        (fun arch ->
          let bin, _ = Apps.libcuda arch in
          let subset = Apps.libcuda_api_subset bin in
          let parse = Parse.parse bin in
          line b
            "%s: instrumenting %d of %d functions (partial instrumentation)"
            (Arch.name arch) (List.length subset) (Parse.total_funcs parse);
          let describe label outcome =
            match outcome with
            | Baseline.Rewritten rw ->
                let r = Runner.run_rewritten rw in
                line b "  %-22s cycles %10d, traps %6d (%s)" label
                  r.Runner.r_cycles r.Runner.r_traps
                  (match r.Runner.r_outcome with
                  | Vm.Halted -> "ok"
                  | Vm.Crashed m -> "CRASH: " ^ m)
            | Baseline.Refused r -> line b "  %-22s REFUSED (%s)" label r
          in
          describe "Dyninst mainstream:" (Baseline.legacy_dyninst ~only:subset bin);
          describe "our approach:" (Baseline.ours_partial ~mode:Mode.Jt ~only:subset bin);
          (match diogenes_data arch with
          | Ok s -> line b "  speedup: %.1fx" s
          | Error r -> line b "  speedup: skipped (refused: %s)" r);
          match Baseline.ir_lowering bin with
          | Baseline.Refused r -> line b "  Egalito: REFUSED (%s)" r
          | Baseline.Rewritten _ -> line b "  Egalito: unexpectedly succeeded")
        [ Arch.X86_64; Arch.Ppc64le; Arch.Aarch64 ])

(* ------------------------------------------------------------------ *)
(* Ablations: the placement and unwinding design choices               *)
(* ------------------------------------------------------------------ *)

let ablation () =
  buf_out (fun b ->
      line b "== Ablations: trampoline placement and unwinding choices ==";
      (* Placement ablation on ppc64le with a large working set: the
         relocated area is beyond the 32 MiB short-branch range, so
         placement quality decides between long trampolines, hops and
         traps. *)
      let arch = Arch.Ppc64le in
      let bench =
        List.find
          (fun bch -> bch.Spec_suite.bench_name = "602.gcc_s")
          (Spec_suite.benchmarks arch)
      in
      let bin, _ = Spec_suite.compile arch bench in
      let orig = Runner.run_original bin in
      let parse = Parse.parse bin in
      line b "-- placement (ppc64le, 602.gcc-like with 40 MiB working set) --";
      let rows =
        List.map
          (fun (label, options) ->
            let rw = Rewriter.rewrite ~options parse in
            let s = rw.Rewriter.rw_stats in
            let r = Runner.run_rewritten rw in
            let overhead =
              match r.Runner.r_outcome with
              | Vm.Halted when r.Runner.r_output = orig.Runner.r_output ->
                  Stats.pct
                    (100.
                    *. float_of_int (r.Runner.r_cycles - orig.Runner.r_cycles)
                    /. float_of_int (max 1 orig.Runner.r_cycles))
              | Vm.Halted -> "MISMATCH"
              | Vm.Crashed m -> "CRASH: " ^ m
            in
            [
              label;
              string_of_int s.Rewriter.s_short_trampolines;
              string_of_int s.Rewriter.s_long_trampolines;
              string_of_int s.Rewriter.s_multi_hop;
              string_of_int s.Rewriter.s_trap_trampolines;
              string_of_int r.Runner.r_traps;
              overhead;
            ])
          [
            ("full placement (ours)", Rewriter.default_options);
            ( "no superblocks",
              { Rewriter.default_options with Rewriter.use_superblocks = false } );
            ( "no scratch pool",
              { Rewriter.default_options with Rewriter.use_scratch_pool = false } );
            ( "no superblocks, no pool",
              {
                Rewriter.default_options with
                Rewriter.use_superblocks = false;
                use_scratch_pool = false;
              } );
            ( "every-block placement",
              { Rewriter.default_options with Rewriter.tramp_at_every_block = true } );
          ]
      in
      Buffer.add_string b
        (Table.render
           ~header:[ ""; "short"; "long"; "hop"; "trap"; "trap hits"; "overhead" ]
           rows);
      (* Unwinding ablation on the C++ exception benchmark: RA translation
         vs call emulation (section 6 vs the SRBI approach). *)
      line b "-- unwinding (x86-64, 620.omnetpp-like with C++ exceptions) --";
      let arch = Arch.X86_64 in
      let bench =
        List.find
          (fun bch -> bch.Spec_suite.bench_name = "620.omnetpp_s")
          (Spec_suite.benchmarks arch)
      in
      let bin, _ = Spec_suite.compile arch bench in
      let orig = Runner.run_original bin in
      let parse = Parse.parse bin in
      List.iter
        (fun (label, options) ->
          let rw = Rewriter.rewrite ~options parse in
          let r = Runner.run_rewritten rw in
          match r.Runner.r_outcome with
          | Vm.Halted when r.Runner.r_output = orig.Runner.r_output ->
              line b "  %-28s overhead %s" label
                (Stats.pct
                   (100.
                   *. float_of_int (r.Runner.r_cycles - orig.Runner.r_cycles)
                   /. float_of_int (max 1 orig.Runner.r_cycles)))
          | Vm.Halted -> line b "  %-28s OUTPUT MISMATCH" label
          | Vm.Crashed m -> line b "  %-28s CRASH (%s)" label m)
        [
          ("runtime RA translation (ours)", Rewriter.default_options);
          ( "call emulation",
            {
              Rewriter.default_options with
              Rewriter.call_emulation = true;
              ra_translation = false;
            } );
          ( "no unwinding support",
            { Rewriter.default_options with Rewriter.ra_translation = false } );
        ])

(* ------------------------------------------------------------------ *)
(* Coverage attribution across modes and baselines                     *)
(* ------------------------------------------------------------------ *)

module Attribution = Icfg_core.Attribution

type attribution_cell = {
  at_cfl : int;
  at_trampolines : int;
  at_traps : int;
}

(* Per benchmark: SRBI baseline plus the three incremental modes, in
   [dir; jt; func-ptr] order for the monotonicity check. *)
let attribution_data arch =
  List.map
    (fun bench ->
      let bin, _ = Spec_suite.compile arch bench in
      let p_ours = Parse.parse bin in
      let p_srbi = Parse.parse ~fm:Failure_model.srbi bin in
      let srbi =
        (Rewriter.rewrite ~options:(Rewriter.srbi_like Rewriter.P_empty) p_srbi)
          .Rewriter.rw_attribution
      in
      let by_mode mode =
        (Rewriter.rewrite
           ~options:{ Rewriter.default_options with Rewriter.mode }
           p_ours)
          .Rewriter.rw_attribution
      in
      ( bench.Spec_suite.bench_name,
        srbi,
        [ by_mode Mode.Dir; by_mode Mode.Jt; by_mode Mode.Func_ptr ] ))
    (Spec_suite.benchmarks arch)

let attribution_cell a =
  {
    at_cfl = Attribution.cfl_total a;
    at_trampolines = Attribution.tramp_total a;
    at_traps = Attribution.trap_total a;
  }

let attribution () =
  buf_out (fun b ->
      line b "== Coverage attribution: causes across modes and baselines ==";
      let arch = Arch.X86_64 in
      let data = attribution_data arch in
      let columns = [ "SRBI"; "dir"; "jt"; "func-ptr" ] in
      (* The paper's coverage-table view: residual CFL blocks, placed
         trampolines and trap fallbacks per benchmark and configuration. *)
      line b "-- per-benchmark coverage (cfl blocks / trampolines / traps) --";
      Buffer.add_string b
        (Table.render
           ~header:("benchmark" :: columns)
           (List.map
              (fun (name, srbi, modes) ->
                name
                :: List.map
                     (fun a ->
                       let c = attribution_cell a in
                       Printf.sprintf "%d/%d/%d" c.at_cfl c.at_trampolines
                         c.at_traps)
                     (srbi :: modes))
              data));
      (* Aggregate per-cause histogram, one column per configuration. *)
      let agg =
        List.map
          (fun i ->
            let tbl = Hashtbl.create 32 in
            List.iter
              (fun (_, srbi, modes) ->
                let a = List.nth (srbi :: modes) i in
                List.iter
                  (fun (c, n) ->
                    Hashtbl.replace tbl c
                      (n + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
                  (Attribution.histogram a))
              data;
            tbl)
          [ 0; 1; 2; 3 ]
      in
      let causes =
        List.sort_uniq compare
          (List.concat_map
             (fun tbl -> Hashtbl.fold (fun c _ acc -> Attribution.key c :: acc) tbl [])
             agg)
      in
      let by_key tbl k =
        Hashtbl.fold
          (fun c n acc -> if Attribution.key c = k then acc + n else acc)
          tbl 0
      in
      line b "-- aggregate cause histogram --";
      Buffer.add_string b
        (Table.render
           ~header:("cause" :: columns)
           (List.map
              (fun k -> k :: List.map (fun tbl -> string_of_int (by_key tbl k)) agg)
              causes));
      (* Each mode rewrites strictly more control flow than the previous
         one, so residual CFL blocks and trap fallbacks must not increase
         along dir -> jt -> func-ptr. *)
      let violations =
        List.concat_map
          (fun (name, _, modes) ->
            let cells = List.map attribution_cell modes in
            let rec pairs = function
              | a :: (bx :: _ as rest) -> (a, bx) :: pairs rest
              | _ -> []
            in
            List.concat_map
              (fun (a, bx) ->
                (if bx.at_cfl > a.at_cfl then
                   [ Printf.sprintf "%s: cfl blocks increased (%d -> %d)" name a.at_cfl bx.at_cfl ]
                 else [])
                @
                if bx.at_traps > a.at_traps then
                  [ Printf.sprintf "%s: traps increased (%d -> %d)" name a.at_traps bx.at_traps ]
                else [])
              (pairs cells))
          data
      in
      match violations with
      | [] -> line b "monotonicity dir -> jt -> func-ptr: OK"
      | vs ->
          line b "monotonicity dir -> jt -> func-ptr: VIOLATED";
          List.iter (fun v -> line b "  %s" v) vs)

let all () =
  String.concat "\n"
    [
      table1 ();
      figure1 ();
      figure2 ();
      table2 ();
      table3 ();
      firefox ();
      docker ();
      bolt ();
      diogenes ();
      ablation ();
      attribution ();
    ]
