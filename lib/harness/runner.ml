module Vm = Icfg_runtime.Vm
module Runtime_lib = Icfg_runtime.Runtime_lib
module Rewriter = Icfg_core.Rewriter
module Pool = Icfg_core.Pool
module Parse = Icfg_analysis.Parse
module Binary = Icfg_obj.Binary
module Baseline = Icfg_baselines.Baseline

(* ------------------------------------------------------------------ *)
(* The sharded rewriting pipeline entry points                         *)
(* ------------------------------------------------------------------ *)

let par_of_jobs jobs = { Parse.pmap = (fun f l -> Pool.map ~jobs f l) }

let memo_of_cache ~jobs cache =
  {
    Parse.mmap =
      (fun ~stage ~key f l ->
        Icfg_core.Cache.memo_map ~cache ~jobs ~stage ~key f l);
  }

let parse ?fm ?(jobs = 1) ?cache bin =
  let jobs = max 1 jobs in
  Parse.parse ?fm ~par:(par_of_jobs jobs)
    ~probe:(Icfg_core.Trace.parse_probe ())
    ?memo:(Option.map (memo_of_cache ~jobs) cache)
    bin

let rewrite ?fm ?(options = Rewriter.default_options) ?jobs ?cache bin =
  let jobs = max 1 (Option.value ~default:options.Rewriter.jobs jobs) in
  let p = parse ?fm ~jobs ?cache bin in
  Rewriter.rewrite ?cache ~options:{ options with Rewriter.jobs } p

(* Name-addressed driving: the one resolution point shared by the corpus
   matrix and the serve daemon, so a request naming an approach runs the
   exact code path the in-process sweep runs (classification equality
   between the two is a gated invariant). *)
let drive ~approach ?jobs ?cache bin =
  Option.map
    (fun (driver :
           ?jobs:int ->
           ?cache:Icfg_core.Cache.t ->
           Binary.t ->
           Baseline.outcome) -> driver ?jobs ?cache bin)
    (List.assoc_opt approach Baseline.approaches)

(* ------------------------------------------------------------------ *)
(* Content perturbation (cache invalidation probes)                    *)
(* ------------------------------------------------------------------ *)

(* Flip the low bit of one mov-immediate in one function, choosing a site
   that provably changes nothing but that function's bytes: the function
   has no jump tables or indirect jumps, the instruction is not a
   function-pointer materialization (neither old nor new value is a
   function entry, and the address is outside every [Fp_mater]
   provenance), and the re-encoded instruction has the same length. The
   perturbed binary then parses and rewrites identically except for that
   one function — the probe the incremental-cache tests and benchmarks
   use to pin per-function invalidation. *)
let perturb_function (p : Parse.t) =
  let bin = p.Parse.bin in
  let arch = bin.Binary.arch in
  let entries =
    List.map
      (fun (s : Icfg_obj.Symbol.t) -> s.Icfg_obj.Symbol.addr)
      (Binary.func_symbols bin)
  in
  let prov_addrs =
    List.concat_map
      (function
        | Icfg_analysis.Func_ptr.Fp_mater { prov; _ } -> prov
        | Icfg_analysis.Func_ptr.Fp_slot _ | Icfg_analysis.Func_ptr.Fp_adjusted _
          ->
            [])
      p.Parse.fptrs
  in
  let try_insn (addr, insn, len) =
    match (insn : Icfg_isa.Insn.t) with
    | Icfg_isa.Insn.Mov (r, Icfg_isa.Insn.Imm v)
      when (not (List.mem v entries))
           && (not (List.mem (v lxor 1) entries))
           && not (List.mem addr prov_addrs) -> (
        let insn' = Icfg_isa.Insn.Mov (r, Icfg_isa.Insn.Imm (v lxor 1)) in
        match Icfg_isa.Encode.encode arch insn' with
        | s when String.length s = len -> Some (addr, s)
        | _ -> None
        | exception Icfg_isa.Encode.Not_encodable _ -> None)
    | _ -> None
  in
  let candidate (fa : Parse.func_analysis) =
    fa.Parse.fa_instrumentable
    && fa.Parse.fa_tables = []
    && fa.Parse.fa_jt_sites = []
  in
  let rec find = function
    | [] -> None
    | fa :: rest when not (candidate fa) -> find rest
    | fa :: rest -> (
        let insns =
          List.concat_map
            (fun (b : Icfg_analysis.Cfg.block) -> b.Icfg_analysis.Cfg.b_insns)
            fa.Parse.fa_cfg.Icfg_analysis.Cfg.blocks
        in
        match List.find_map try_insn insns with
        | Some (addr, s) ->
            let out = Binary.copy bin in
            Binary.write_string out addr s;
            Some (out, fa.Parse.fa_sym.Icfg_obj.Symbol.name)
        | None -> find rest)
  in
  find p.Parse.funcs

(* Flip one byte of one loaded, non-executable section, choosing a site
   that provably changes nothing the text-stage analyses compute: the
   perturbed binary is re-parsed (serially) and must reproduce the
   identical analysis — CFGs, jump tables, pointer sites — so the edit's
   only cache-visible effect is the data bytes themselves. This is the
   probe behind the data-only-edit battery and the [cache-warm-data-edit]
   bench row: with piecewise context digests, only [parse/finalize] (the
   one stage that dereferences data words) may go cold. Read-only
   sections are tried first — writable words feed the value-match pointer
   scan on non-PIE binaries — and [.eh_frame] is excluded because its
   bytes are a text-stage input. *)
let perturb_data (p : Parse.t) =
  let bin = p.Parse.bin in
  let digest_of (q : Parse.t) =
    Digest.string
      (Marshal.to_string
         (q.Parse.funcs, q.Parse.fptrs, q.Parse.pointer_targets)
         [ Marshal.No_sharing ])
  in
  let want = digest_of p in
  let eligible (s : Icfg_obj.Section.t) =
    s.Icfg_obj.Section.loaded
    && (not s.Icfg_obj.Section.perm.Icfg_obj.Section.execute)
    && Icfg_obj.Section.size s > 0
    && s.Icfg_obj.Section.name <> ".eh_frame"
  in
  let ro, rw =
    List.partition
      (fun (s : Icfg_obj.Section.t) ->
        not s.Icfg_obj.Section.perm.Icfg_obj.Section.write)
      (List.filter eligible bin.Binary.sections)
  in
  let candidates =
    List.concat_map
      (fun (s : Icfg_obj.Section.t) ->
        let n = Icfg_obj.Section.size s in
        List.map
          (fun off -> (s, off))
          (List.sort_uniq compare
             (List.filter
                (fun off -> off >= 0 && off < n)
                [ n / 2; n / 3; 2 * n / 3; n - 1; 0 ])))
      (ro @ rw)
  in
  let try_one ((s : Icfg_obj.Section.t), off) =
    let out = Binary.copy bin in
    let addr = s.Icfg_obj.Section.vaddr + off in
    let c = Char.code (Bytes.get s.Icfg_obj.Section.data off) in
    Binary.write_string out addr (String.make 1 (Char.chr (c lxor 1)));
    let q = Parse.parse ~fm:p.Parse.fm out in
    if digest_of q = want then Some (out, s.Icfg_obj.Section.name) else None
  in
  (* Each probe costs a serial re-parse, so the attempt budget is small. *)
  let rec find k = function
    | [] -> None
    | _ when k <= 0 -> None
    | c :: rest -> (
        match try_one c with Some r -> Some r | None -> find (k - 1) rest)
  in
  find 16 candidates

(* Rename one instrumentable function symbol. Symbol names are not
   analysis or layout inputs anywhere else — relocated-block labels are
   address-namespaced and the cache digests other functions' symbols
   namelessly — so a rename must cost exactly the renamed function's own
   cache entries and nothing downstream (in particular zero encode
   misses), which is what the one-symbol-edit battery pins. Go-hook names
   are skipped: those are matched by name in the rewriter. *)
let perturb_symbol (p : Parse.t) =
  let bin = p.Parse.bin in
  let hook n = n = "runtime.findfunc" || n = "runtime.pcvalue" in
  let pick (fa : Parse.func_analysis) =
    fa.Parse.fa_instrumentable
    && not (hook fa.Parse.fa_sym.Icfg_obj.Symbol.name)
  in
  match List.find_opt pick p.Parse.funcs with
  | None -> None
  | Some fa ->
      let old = fa.Parse.fa_sym.Icfg_obj.Symbol.name in
      let fresh = old ^ "$renamed" in
      if
        List.exists
          (fun (s : Icfg_obj.Symbol.t) -> s.Icfg_obj.Symbol.name = fresh)
          bin.Binary.symbols
      then None
      else
        let symbols =
          List.sort Icfg_obj.Symbol.compare_by_addr
            (List.map
               (fun (s : Icfg_obj.Symbol.t) ->
                 if
                   s.Icfg_obj.Symbol.addr = fa.Parse.fa_sym.Icfg_obj.Symbol.addr
                   && s.Icfg_obj.Symbol.name = old
                 then { s with Icfg_obj.Symbol.name = fresh }
                 else s)
               bin.Binary.symbols)
        in
        Some ({ (Binary.copy bin) with Binary.symbols = symbols }, old)

type run = {
  r_outcome : Vm.outcome;
  r_cycles : int;
  r_output : int list;
  r_traps : int;
  r_icache_misses : int;
  r_steps : int;
}

let measure_config ~pie =
  let c = Vm.default_config () in
  {
    c with
    Vm.load_base = (if pie then 0x20000000 else 0);
    icache =
      Some
        {
          Icfg_runtime.Icache.line_bytes = 64;
          lines = 64 (* a scaled-down 4 KiB L1i for scaled-down programs *);
          miss_cost = 25;
        };
  }

let of_result (r : Vm.result) =
  {
    r_outcome = r.Vm.outcome;
    r_cycles = r.Vm.cycles;
    r_output = r.Vm.output;
    r_traps = r.Vm.trap_hits;
    r_icache_misses = r.Vm.icache_misses;
    r_steps = r.Vm.steps;
  }

let run_original (bin : Binary.t) =
  let config = measure_config ~pie:bin.Binary.pie in
  let r =
    Icfg_core.Trace.span "run:original" @@ fun () ->
    Vm.run ~config ~routines:(Runtime_lib.standard ()) bin
  in
  Icfg_core.Trace.add_vm ~prefix:"vm/original" r;
  of_result r

let run_rewritten (rw : Rewriter.t) =
  let bin = rw.Rewriter.rw_binary in
  let config = Rewriter.vm_config_for rw (measure_config ~pie:bin.Binary.pie) in
  let counters = Hashtbl.create 16 in
  let r =
    Icfg_core.Trace.span "run:rewritten" @@ fun () ->
    Vm.run ~config ~routines:(Rewriter.routines_for rw ~counters) bin
  in
  Icfg_core.Trace.add_vm ~prefix:"vm/rewritten" r;
  of_result r

type verdict = {
  v_pass : bool;
  v_reason : string;
  v_overhead_pct : float;
  v_coverage_pct : float;
  v_size_pct : float;
  v_traps : int;
}

let evaluate ~orig ~coverage ~orig_size outcome =
  let coverage_pct = 100. *. coverage in
  match outcome with
  | Baseline.Refused reason ->
      {
        v_pass = false;
        v_reason = reason;
        v_overhead_pct = 0.;
        v_coverage_pct = coverage_pct;
        v_size_pct = 0.;
        v_traps = 0;
      }
  | Baseline.Rewritten rw ->
      let size_pct =
        Stats.ratio_pct ~base:orig_size
          ~value:rw.Rewriter.rw_stats.Rewriter.s_new_size
      in
      let r = run_rewritten rw in
      let pass, reason =
        match r.r_outcome with
        | Vm.Crashed m -> (false, m)
        | Vm.Halted ->
            if r.r_output = orig.r_output then (true, "")
            else (false, "output mismatch")
      in
      {
        v_pass = pass;
        v_reason = reason;
        v_overhead_pct =
          (if pass then
             100.
             *. float_of_int (r.r_cycles - orig.r_cycles)
             /. float_of_int (max 1 orig.r_cycles)
           else 0.);
        v_coverage_pct = coverage_pct;
        v_size_pct = size_pct;
        v_traps = r.r_traps;
      }
