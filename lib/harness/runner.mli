(** Measured executions: the experiment harness's view of one benchmark.

    Every measurement runs with the instruction-cache model enabled (the
    ping-pong between original and relocated code is the paper's stated
    overhead source) and the empty instrumentation payload, exactly like the
    paper's block-level empty-instrumentation test. *)

(** {1 Sharded rewriting pipeline}

    The whole-binary pipeline (per-function parse passes, then per-function
    relocation and trampoline planning) fanned out over [jobs] domains.
    Output is bit-identical for every [jobs] value; [test_parallel]
    enforces this. *)

val par_of_jobs : int -> Icfg_analysis.Parse.par
(** A {!Icfg_core.Pool}-backed mapper for [Parse.parse ~par]. *)

val memo_of_cache : jobs:int -> Icfg_core.Cache.t -> Icfg_analysis.Parse.memo
(** A {!Icfg_core.Cache.memo_map}-backed memoizer for [Parse.parse ~memo]. *)

val parse :
  ?fm:Icfg_analysis.Failure_model.t ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  Icfg_obj.Binary.t ->
  Icfg_analysis.Parse.t

val rewrite :
  ?fm:Icfg_analysis.Failure_model.t ->
  ?options:Icfg_core.Rewriter.options ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  Icfg_obj.Binary.t ->
  Icfg_core.Rewriter.t
(** Parse + rewrite. [jobs] (default: [options.jobs]) and [cache] are
    threaded through both stages; output is bit-identical with and without
    a cache. *)

val drive :
  approach:string ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  Icfg_obj.Binary.t ->
  Icfg_baselines.Baseline.outcome option
(** Run one {!Icfg_baselines.Baseline.approaches} roster entry by name.
    [None] if [approach] is not on the roster. This is the single
    resolution point shared by the corpus matrix and the serve daemon:
    both drive cells through it, which is what makes daemon-vs-in-process
    classification equality a meaningful (and gated) invariant. *)

val perturb_function : Icfg_analysis.Parse.t -> (Icfg_obj.Binary.t * string) option
(** A copy of the parsed binary with the low bit of one mov-immediate
    flipped in one function (plus that function's name), chosen so only
    that function's analysis/rewrite artifacts change — the probe the
    incremental-cache tests use to prove per-function invalidation.
    [None] if no safely perturbable site exists. *)

val perturb_data : Icfg_analysis.Parse.t -> (Icfg_obj.Binary.t * string) option
(** A copy of the parsed binary with one byte flipped in one loaded
    non-executable section (plus that section's name), validated by
    re-parsing: the perturbed binary must reproduce the identical analysis,
    so the edit's only cache-visible input change is the data bytes — with
    piecewise context digests, a warm rewrite re-runs only
    [parse/finalize]. [None] if no validated site is found within the
    attempt budget. *)

val perturb_symbol :
  Icfg_analysis.Parse.t -> (Icfg_obj.Binary.t * string) option
(** A copy of the parsed binary with one instrumentable function's symbol
    renamed (plus the original name): names feed only that function's own
    cache keys, so a warm rewrite after a rename costs exactly that
    function's per-function entries and zero encode chunks. [None] if no
    suitable symbol exists. *)

type run = {
  r_outcome : Icfg_runtime.Vm.outcome;
  r_cycles : int;
  r_output : int list;
  r_traps : int;
  r_icache_misses : int;
  r_steps : int;
}

val measure_config : pie:bool -> Icfg_runtime.Vm.config
(** Icache enabled; PIE binaries load at a fixed non-zero base. *)

val run_original : Icfg_obj.Binary.t -> run

val run_rewritten : Icfg_core.Rewriter.t -> run
(** Runs with the rewriter's trap map and translation hooks installed. *)

(** Result of one (benchmark, approach) cell. *)
type verdict = {
  v_pass : bool;
  v_reason : string;  (** failure reason, or "" *)
  v_overhead_pct : float;  (** cycles vs. the original run (when passing) *)
  v_coverage_pct : float;  (** instrumented functions / total *)
  v_size_pct : float;  (** loaded-size increase *)
  v_traps : int;
}

val evaluate :
  orig:run ->
  coverage:float ->
  orig_size:int ->
  Icfg_baselines.Baseline.outcome ->
  verdict
(** Runs the rewritten binary (if any) and checks outcome and output
    equality against the original run. *)
