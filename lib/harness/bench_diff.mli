(** The bench regression gate: compare two [BENCH_micro.json] runs
    (schema [icfg-bench-micro/1]) — micro rows, parallel rows, per-stage
    trace rows and their merged counter totals — and classify every
    difference.

    Policy:

    - Counters are compared exactly per [(stage, jobs, name)]. An increase
      in a worse-is-higher counter (trap trampolines, runtime traps, size
      growth, icache misses) is a {e regression}; any other change is
      informational (deterministic counters should not move, but a changed
      workload legitimately moves them).
    - Time metrics ([ns_per_run], stage [ns]) are gated only when [gate]
      is given {e and} both runs report the same core count — wall-clock
      comparisons across machines are noise. A new value above
      [old * (1 + gate/100)] that also grew by more than an absolute
      50µs noise floor is a regression (one-shot sub-µs spans jitter by
      integer factors and must not flap the gate).
    - A row present in OLD but missing in NEW is a regression (lost
      coverage), except [lane-*] trace rows, which exist only when the
      domain pool actually spawns and are schedule-dependent.
    - A row (or counter) present only in NEW carries the explicit
      {!severity.Added} classification: always reported — a growing
      suite should be visible — and never gating, so landing new bench
      rows (e.g. the cache cold/warm rows) cannot trip the gate against
      an older baseline.
    - Corpus robustness rows ([corpus] section, keyed by approach) hold a
      deterministic [pass_rate_pct]: a drop is a regression
      {e unconditionally} — no [gate], no noise floor, no same-cores
      requirement — unless the two runs swept different corpus sizes
      ([cells] differ), in which case the rates measure different
      populations and only the mismatch is reported. Refusal-histogram
      counts moving are informational, new refusal keys are
      {!severity.Added}, and the per-approach [p50_ns]/[p95_ns] wall
      times follow the normal time policy above.
    - Telemetry rows ([metrics] section, keyed by name) hold only
      counters that are deterministic functions of the served stream
      (request/outcome totals, per-approach × per-outcome latency
      histogram observation counts, eviction counters), so any drift in
      either direction is a regression — a dropped count is a lost
      request as surely as a risen error count is a new fault. Counters
      only NEW knows are {!severity.Added}; the ns sums in the row's
      [times] bag follow the normal time policy. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Hand-rolled recursive-descent JSON parser (no JSON dependency — same
    policy as the writers in [bench/main.ml] and {!Icfg_core.Trace}). *)

type severity = Regression | Added | Info

type finding = { f_severity : severity; f_metric : string; f_msg : string }

val diff : ?gate:float -> json -> json -> (finding list, string) result
(** [diff ?gate old new] compares two parsed [icfg-bench-micro/1]
    documents. [gate] is the allowed time growth in percent; when absent,
    times are never gated. [Error] on documents that are not bench-micro
    objects. *)

val diff_strings : ?gate:float -> string -> string -> (finding list, string) result

val diff_files :
  ?gate:float -> string -> string -> (finding list, string) result
(** [diff_files ?gate old_path new_path]. [Error] on unreadable files or
    parse failures. *)

val check_cache : ?max_ratio:float -> json -> (finding list, string) result
(** Warm-path gate over the ["cache"] section of a parsed
    [icfg-bench-micro/1] (or standalone [icfg-bench-cache/1]) document:
    the [cache-warm-perturbed] row's time must stay within [max_ratio]
    (default [1.3]) of [cache-warm-identical], and the
    [cache-warm-data-edit] row must report zero misses for every
    text-stage counter ([miss:parse/pass1], [miss:parse/fptr],
    [miss:parse/fptr2], [miss:rewrite/relocate], [miss:rewrite/plan],
    [miss:encode]) — a data-only edit may cold only [parse/finalize].
    Violations come back as [Regression] findings (the passing ratio is
    reported as [Info]); [Error] on non-bench documents. *)

val check_cache_string :
  ?max_ratio:float -> string -> (finding list, string) result

val check_cache_file :
  ?max_ratio:float -> string -> (finding list, string) result

val has_regression : finding list -> bool

val render : finding list -> string
(** Human-readable report, regressions first. *)
