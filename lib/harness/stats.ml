(* Thin re-export of the core helpers so harness reports and the core
   rewriter's [pp_stats] format percentages identically (the rewriter sits
   below this library and cannot use harness modules). *)

let mean = Icfg_core.Stats.mean
let max_f = Icfg_core.Stats.max_f
let min_f = Icfg_core.Stats.min_f
let pct = Icfg_core.Stats.pct
let ratio_pct = Icfg_core.Stats.ratio_pct
