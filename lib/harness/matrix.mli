(** Corpus-scale robustness matrix: every {!Icfg_baselines.Baseline}
    roster entry swept over a seeded {!Icfg_workloads.Corpus}, each cell
    classified by what actually happened, aggregated into per-approach
    pass-rate / refusal-histogram / latency rows.

    Cells are evaluated serially in corpus order against one shared
    {!Icfg_core.Cache}; parallelism ([jobs]) lives {e inside} each cell's
    parse/rewrite pipeline (the {!Icfg_core.Pool} must not be entered
    twice). Because {!Icfg_core.Cache.memo_map} probes serially, every
    classification count and the corpus-wide hit rate are deterministic:
    independent of [jobs] and of the machine. Only the [p50]/[p95] wall
    times vary between runs. *)

(** What one (binary, approach) cell did. *)
type cls =
  | Verified  (** rewritten; output matches the original run *)
  | Diverged  (** rewritten and ran to completion, but output differs *)
  | Refused of string
      (** the approach refused up front; payload is the stable
          {!Icfg_baselines.Baseline.refusal_key} *)
  | Crashed of string  (** the rewritten binary crashed in the VM *)

type row = {
  row_approach : string;  (** roster name, e.g. ["srbi"], ["ours/jt"] *)
  row_cells : int;  (** corpus size; the four counts below sum to it *)
  row_verified : int;
  row_diverged : int;
  row_refused : int;
  row_crashed : int;
  row_refusals : (string * int) list;
      (** refusal histogram, keyed by {!Icfg_baselines.Baseline.refusal_key},
          sorted by key *)
  row_p50_ns : float;  (** median per-cell rewrite wall time *)
  row_p95_ns : float;
}

type t = {
  m_seed : int;
  m_count : int;
  m_jobs : int;
  m_rows : row list;  (** one per roster entry, in roster order *)
  m_cache : Icfg_core.Cache.stats;  (** shared-cache stats for the sweep *)
  m_hit_rate : float;  (** corpus-wide {!Icfg_core.Cache.hit_rate} *)
}

val pass_rate_pct : row -> float
(** [100 * verified / cells]; [0.] on an empty row. Deterministic — this
    is the number the bench gate compares exactly. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the nearest-rank [p]-percentile ([0. <= p <= 1.])
    of the finite values in [xs]; non-finite samples ([nan], infinities)
    are dropped before ranking and the empty sample yields [0.]. Exposed
    for the harness statistics tests. *)

val cls_to_string : cls -> string
(** Stable textual form: ["verified"], ["diverged"], ["refused:<key>"],
    ["crashed:<msg>"] — the form carried on the serve wire protocol and
    compared by the daemon-vs-in-process equality gate. *)

val cls_of_string : string -> cls option
(** Inverse of {!cls_to_string}; [None] on malformed input. *)

val classify :
  orig:Runner.run -> Icfg_baselines.Baseline.outcome -> cls
(** Classify one driver outcome: refusals are bucketed by
    {!Icfg_baselines.Baseline.refusal_key}; rewritten binaries are run in
    the VM and their output compared against [orig]. *)

val eval_cell :
  orig:Runner.run ->
  approach:string ->
  ?jobs:int ->
  ?cache:Icfg_core.Cache.t ->
  Icfg_obj.Binary.t ->
  float * cls
(** Evaluate one (binary, approach) cell: resolve the roster driver by
    name via {!Runner.drive}, classify, contain driver exceptions as
    [Crashed] cells, bump the ambient [corpus.*] trace counters. Returns
    (wall ns, classification). Both the in-process sweep ({!run}) and the
    serve daemon evaluate cells through this one function — the basis of
    the classification-equality gate. *)

val row_of : approach:string -> (float * cls) list -> row
(** Aggregate cells (in corpus order) into a row. *)

val run :
  ?seed:int -> ?count:int -> ?jobs:int -> ?progress:(int -> unit) -> unit -> t
(** Sweep [Corpus.generate ~seed ~count] (defaults: seed 7, count 300)
    through every roster approach. [progress] is called with the number of
    corpus entries completed after each binary. *)

val render : t -> string
(** Human-readable table: one line per approach, then the non-empty
    refusal histograms and the shared-cache summary. *)
