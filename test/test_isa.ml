(* Tests for the ISA substrate: encoding round-trips, instruction lengths,
   branch ranges, and the Table 2 trampoline catalogue. *)

open Icfg_isa

let arch_cases f = List.map (fun a -> (a, f a)) Arch.all

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_reg = QCheck2.Gen.map Reg.make (QCheck2.Gen.int_bound 15)

let gen_operand =
  QCheck2.Gen.(
    oneof
      [
        map (fun r -> Insn.Reg r) gen_reg;
        map (fun n -> Insn.Imm n) (int_range (-30000) 30000);
      ])

let gen_base =
  QCheck2.Gen.(
    oneof [ map (fun r -> Insn.BReg r) gen_reg; return Insn.BSp ])

let gen_width =
  QCheck2.Gen.oneofl [ Insn.W8; Insn.W16; Insn.W32; Insn.W64 ]

let gen_cond =
  QCheck2.Gen.oneofl [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge ]

let gen_disp14 =
  (* 4-byte aligned displacement fitting the RISC conditional field *)
  QCheck2.Gen.map (fun n -> n * 4) (QCheck2.Gen.int_range (-8000) 7999)

(* Instructions encodable on every architecture. *)
let gen_common_insn =
  let open QCheck2.Gen in
  let open Insn in
  oneof
    [
      return Nop;
      return Halt;
      return Trap;
      return Ret;
      return Throw;
      map (fun r -> Out r) gen_reg;
      map2 (fun r o -> Mov (r, o)) gen_reg gen_operand;
      map2 (fun r n -> Movhi (r, n)) gen_reg (int_range (-30000) 30000);
      map2 (fun r n -> Orlo (r, n)) gen_reg (int_bound 65535);
      map2 (fun r o -> Add (r, o)) gen_reg gen_operand;
      map2 (fun r o -> Sub (r, o)) gen_reg gen_operand;
      map2 (fun r o -> Mul (r, o)) gen_reg gen_operand;
      map2 (fun r o -> And_ (r, o)) gen_reg gen_operand;
      map2 (fun r o -> Or_ (r, o)) gen_reg gen_operand;
      map2 (fun r o -> Xor (r, o)) gen_reg gen_operand;
      map2 (fun r o -> Cmp (r, o)) gen_reg gen_operand;
      map2 (fun r n -> Shl (r, n)) gen_reg (int_bound 63);
      map2 (fun r n -> Shr (r, n)) gen_reg (int_bound 63);
      (let* w = gen_width and* r = gen_reg and* b = gen_base and* d = gen_disp14 in
       return (Load (w, r, b, d / 4)));
      (let* w = gen_width and* r = gen_reg and* b = gen_base and* d = gen_disp14 in
       return (Store (w, b, d / 4, r)));
      (let* w = gen_width
       and* rd = gen_reg
       and* rb = gen_reg
       and* ri = gen_reg
       and* s = oneofl [ 1; 2; 4; 8 ] in
       return (LoadIdx (w, rd, rb, ri, s)));
      map2 (fun r d -> Lea (r, d)) gen_reg gen_disp14;
      map (fun n -> AddSp (n * 4)) (int_range (-80000) 80000);
      map (fun d -> Jmp d) gen_disp14;
      map2 (fun c d -> Jcc (c, d)) gen_cond gen_disp14;
      map (fun d -> Call d) gen_disp14;
      map (fun r -> IndJmp r) gen_reg;
      map (fun r -> IndCall r) gen_reg;
      (let* b = gen_base and* d = gen_disp14 in
       return (IndCallMem (b, d / 4)));
      map (fun n -> CallRt n) (int_bound 65535);
      map (fun r -> Mflr r) gen_reg;
      map (fun r -> Mtlr r) gen_reg;
    ]

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                               *)
(* ------------------------------------------------------------------ *)

let riscy arch insn =
  (* Mflr/Mtlr only exist on the link-register architectures. *)
  match (arch, insn) with
  | Arch.X86_64, (Insn.Mflr _ | Insn.Mtlr _) -> false
  | _ -> true

let roundtrip_test arch =
  QCheck2.Test.make ~count:2000
    ~name:(Printf.sprintf "encode/decode roundtrip (%s)" (Arch.name arch))
    gen_common_insn (fun insn ->
      QCheck2.assume (riscy arch insn);
      let s = Encode.encode arch insn in
      let decoded, n = Encode.decode arch s ~pos:0 in
      n = String.length s && Insn.equal decoded insn)

let length_matches_encode arch =
  QCheck2.Test.make ~count:2000
    ~name:(Printf.sprintf "length agrees with encode (%s)" (Arch.name arch))
    gen_common_insn (fun insn ->
      QCheck2.assume (riscy arch insn);
      Encode.length arch insn = String.length (Encode.encode arch insn))

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_x86_lengths () =
  let a = Arch.X86_64 in
  Alcotest.(check int) "nop" 1 (Encode.length a Insn.Nop);
  Alcotest.(check int) "ret" 1 (Encode.length a Insn.Ret);
  Alcotest.(check int) "trap" 1 (Encode.length a Insn.Trap);
  Alcotest.(check int) "jmp near" 5 (Encode.length a (Insn.Jmp 1000));
  Alcotest.(check int) "call" 5 (Encode.length a (Insn.Call 1000));
  Alcotest.(check int) "movabs" 10 (Encode.length a (Insn.Movabs (Reg.r0, 1)));
  Alcotest.(check int) "short jmp" 2
    (String.length (Encode.encode_jmp a ~wide:false 100))

let test_fixed_lengths () =
  List.iter
    (fun a ->
      List.iter
        (fun i -> Alcotest.(check int) (Insn.to_string i) 4 (Encode.length a i))
        [
          Insn.Nop;
          Insn.Ret;
          Insn.Trap;
          Insn.Jmp 4096;
          Insn.Call (-4096);
          Insn.Mov (Reg.r3, Imm 17);
        ])
    [ Arch.Ppc64le; Arch.Aarch64 ]

let test_branch_ranges () =
  (* ppc64le b reaches +/-32MiB; aarch64 reaches +/-128MiB. *)
  let mib = 1024 * 1024 in
  Alcotest.(check bool) "ppc 32M ok" true
    (Encode.jmp_fits Arch.Ppc64le ~wide:false ((32 * mib) - 4));
  Alcotest.(check bool) "ppc 32M+4 too far" false
    (Encode.jmp_fits Arch.Ppc64le ~wide:false (32 * mib));
  Alcotest.(check bool) "aarch64 128M ok" true
    (Encode.jmp_fits Arch.Aarch64 ~wide:false ((128 * mib) - 4));
  Alcotest.(check bool) "aarch64 128M+4 too far" false
    (Encode.jmp_fits Arch.Aarch64 ~wide:false (128 * mib));
  Alcotest.(check bool) "x86 short 127 ok" true
    (Encode.jmp_fits Arch.X86_64 ~wide:false 127);
  Alcotest.(check bool) "x86 short 128 too far" false
    (Encode.jmp_fits Arch.X86_64 ~wide:false 128);
  Alcotest.(check bool) "x86 wide 1G ok" true
    (Encode.jmp_fits Arch.X86_64 ~wide:true (1024 * mib))

let test_branch_roundtrip_far () =
  (* Maximum-range branches survive the encode/decode cycle. *)
  let check arch disp =
    let s = Encode.encode_jmp arch ~wide:false disp in
    match Encode.decode arch s ~pos:0 with
    | Insn.Jmp d, _ ->
        Alcotest.(check int) (Printf.sprintf "%s %d" (Arch.name arch) disp) disp d
    | i, _ -> Alcotest.failf "decoded %s" (Insn.to_string i)
  in
  check Arch.Ppc64le ((32 * 1024 * 1024) - 4);
  check Arch.Ppc64le (-32 * 1024 * 1024);
  check Arch.Aarch64 ((128 * 1024 * 1024) - 4);
  check Arch.Aarch64 (-128 * 1024 * 1024);
  check Arch.X86_64 127;
  check Arch.X86_64 (-128)

let test_boundary_immediates () =
  (* Field-edge values must round-trip exactly. *)
  let check arch insn =
    let s = Encode.encode arch insn in
    let decoded, n = Encode.decode arch s ~pos:0 in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %s" (Arch.name arch) (Insn.to_string insn))
      true
      (Insn.equal decoded insn && n = String.length s)
  in
  List.iter
    (fun arch ->
      (* RISC 16-bit immediate edges *)
      check arch (Insn.Mov (Reg.r1, Imm 32767));
      check arch (Insn.Mov (Reg.r1, Imm (-32768)));
      check arch (Insn.Add (Reg.r1, Imm (-32768)));
      check arch (Insn.Orlo (Reg.r1, 0xFFFF));
      check arch (Insn.Movhi (Reg.r1, -32768));
      check arch (Insn.Shl (Reg.r1, 63));
      (* 14-bit memory displacement edges *)
      check arch (Insn.Load (W64, Reg.r1, BSp, 8191));
      check arch (Insn.Store (W64, BSp, -8192, Reg.r1));
      check arch (Insn.CallRt 65535))
    [ Arch.Ppc64le; Arch.Aarch64 ];
  (* x86 32-bit edges *)
  check Arch.X86_64 (Insn.Mov (Reg.r1, Imm 0x7FFFFFFF));
  check Arch.X86_64 (Insn.Mov (Reg.r1, Imm (-0x80000000)));
  check Arch.X86_64 (Insn.Movabs (Reg.r1, 0x123456789AB));
  check Arch.X86_64 (Insn.Movabs (Reg.r1, -0x123456789AB));
  check Arch.X86_64 (Insn.Jmp 0x7FFFFFFF);
  (* overflow rejection on RISC *)
  List.iter
    (fun arch ->
      match Encode.encode arch (Insn.Mov (Reg.r1, Imm 32768)) with
      | exception Encode.Not_encodable _ -> ()
      | _ -> Alcotest.failf "%s: 32768 must overflow imm16" (Arch.name arch))
    [ Arch.Ppc64le; Arch.Aarch64 ];
  (* adrp page-alignment enforcement *)
  match Encode.encode Arch.Aarch64 (Insn.Adrp (Reg.r1, 4097)) with
  | exception Encode.Not_encodable _ -> ()
  | _ -> Alcotest.fail "unaligned adrp must be rejected"

let test_decode_total () =
  (* Any byte soup decodes without raising; illegal opcodes map to Illegal. *)
  List.iter
    (fun arch ->
      let s = String.init 64 (fun i -> Char.chr (i * 67 mod 256)) in
      let pos = ref 0 in
      while !pos < String.length s do
        let _, n = Encode.decode arch s ~pos:!pos in
        Alcotest.(check bool) "progress" true (n > 0);
        pos := !pos + n
      done)
    Arch.all

let test_zero_bytes_are_illegal () =
  List.iter
    (fun arch ->
      let s = String.make 8 '\000' in
      let i, _ = Encode.decode arch s ~pos:0 in
      Alcotest.(check bool) "zero decodes to illegal" true (i = Insn.Illegal))
    Arch.all

let test_not_encodable () =
  let raises f =
    match f () with
    | exception Encode.Not_encodable _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "movabs on ppc" true
    (raises (fun () -> Encode.encode Arch.Ppc64le (Insn.Movabs (Reg.r0, 5))));
  Alcotest.(check bool) "mflr on x86" true
    (raises (fun () -> Encode.encode Arch.X86_64 (Insn.Mflr Reg.r0)));
  Alcotest.(check bool) "ppc branch too far" true
    (raises (fun () -> Encode.encode Arch.Ppc64le (Insn.Jmp (64 * 1024 * 1024))));
  Alcotest.(check bool) "unaligned risc branch" true
    (raises (fun () -> Encode.encode Arch.Aarch64 (Insn.Jmp 6)))

(* Asking for the word-granular displacement field on x86-64 is a caller
   bug; it must fail as [Invalid_argument] naming the opcode, not as a
   bare assertion. *)
let test_branch_disp_bits () =
  List.iter
    (fun arch ->
      Alcotest.(check bool)
        (Arch.name arch ^ " has a displacement field")
        true
        (Encode.branch_disp_bits arch > 0))
    [ Arch.Ppc64le; Arch.Aarch64 ];
  match Encode.branch_disp_bits ~opcode:"jcc" Arch.X86_64 with
  | exception Invalid_argument m ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i =
          i + n <= h && (String.sub hay i n = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "message names the opcode (%s)" m)
        true (contains m "jcc")
  | _ -> Alcotest.fail "x86-64 branch_disp_bits must be rejected"

(* ------------------------------------------------------------------ *)
(* Trampolines                                                         *)
(* ------------------------------------------------------------------ *)

let test_trampoline_lengths () =
  Alcotest.(check int) "x86 short" 2 (Trampoline.len Arch.X86_64 Trampoline.Short);
  Alcotest.(check int) "x86 long" 5 (Trampoline.len Arch.X86_64 (Trampoline.Long None));
  Alcotest.(check int) "ppc short" 4 (Trampoline.len Arch.Ppc64le Trampoline.Short);
  Alcotest.(check int) "ppc long" 16
    (Trampoline.len Arch.Ppc64le (Trampoline.Long (Some Reg.r12)));
  Alcotest.(check int) "ppc save/restore" 24
    (Trampoline.len Arch.Ppc64le (Trampoline.Long_save_restore Reg.r12));
  Alcotest.(check int) "aarch64 long" 12
    (Trampoline.len Arch.Aarch64 (Trampoline.Long (Some Reg.r12)));
  Alcotest.(check int) "x86 trap" 1 (Trampoline.len Arch.X86_64 Trampoline.Trap_tramp);
  Alcotest.(check int) "ppc trap" 4 (Trampoline.len Arch.Ppc64le Trampoline.Trap_tramp)

let decode_all arch s =
  let rec go pos acc =
    if pos >= String.length s then List.rev acc
    else
      let i, n = Encode.decode arch s ~pos in
      go (pos + n) (i :: acc)
  in
  go 0 []

let test_trampoline_emit_short () =
  List.iter
    (fun arch ->
      let at = 0x1000 and target = 0x1060 in
      let s = Trampoline.emit arch ~at ~target ~toc:0 Trampoline.Short in
      Alcotest.(check int) "len" (Trampoline.len arch Trampoline.Short)
        (String.length s);
      match decode_all arch s with
      | [ Insn.Jmp d ] ->
          Alcotest.(check int) (Arch.name arch) target (at + d)
      | _ -> Alcotest.fail "expected a single jmp")
    Arch.all

let test_trampoline_emit_ppc_long () =
  let toc = 0x8000000 in
  let at = 0x1000 and target = 0x40001230 in
  let s =
    Trampoline.emit Arch.Ppc64le ~at ~target ~toc (Trampoline.Long (Some Reg.r12))
  in
  match decode_all Arch.Ppc64le s with
  | [ Insn.Addis (rd, rs, hi); Insn.Add (rd2, Imm lo); Insn.Mttar rd3; Insn.Btar ]
    ->
      Alcotest.(check bool) "same reg" true
        (Reg.equal rd rd2 && Reg.equal rd rd3);
      Alcotest.(check bool) "toc base" true (Reg.equal rs Reg.toc);
      Alcotest.(check int) "computes target" target (toc + (hi lsl 16) + lo)
  | l ->
      Alcotest.failf "unexpected sequence: %s"
        (String.concat "; " (List.map Insn.to_string l))

let test_trampoline_emit_aarch64_long () =
  let at = 0x1234 and target = 0x40005678 in
  let s =
    Trampoline.emit Arch.Aarch64 ~at ~target ~toc:0
      (Trampoline.Long (Some Reg.r13))
  in
  match decode_all Arch.Aarch64 s with
  | [ Insn.Adrp (rd, pages); Insn.Add (rd2, Imm lo); Insn.IndJmp rd3 ] ->
      Alcotest.(check bool) "same reg" true
        (Reg.equal rd rd2 && Reg.equal rd rd3);
      let computed = (at land lnot 4095) + pages + lo in
      Alcotest.(check int) "computes target" target computed
  | l ->
      Alcotest.failf "unexpected sequence: %s"
        (String.concat "; " (List.map Insn.to_string l))

let test_trampoline_select () =
  let dead = Reg.Set.of_list [ Reg.r12 ] in
  let none = Reg.Set.empty in
  (* Short branch preferred whenever it reaches. *)
  Alcotest.(check bool) "x86 short" true
    (Trampoline.select Arch.X86_64 ~at:0 ~space:2 ~target:100 ~dead:none ~toc:0
    = Some Trampoline.Short);
  (* Out-of-short-range on x86 needs 5 bytes. *)
  Alcotest.(check bool) "x86 long" true
    (Trampoline.select Arch.X86_64 ~at:0 ~space:5 ~target:100000 ~dead:none
       ~toc:0
    = Some (Trampoline.Long None));
  Alcotest.(check bool) "x86 no space" true
    (Trampoline.select Arch.X86_64 ~at:0 ~space:4 ~target:100000 ~dead:none
       ~toc:0
    = None);
  (* ppc64le beyond 32MiB: needs the 4-instruction sequence and a register. *)
  let far = 64 * 1024 * 1024 in
  (match
     Trampoline.select Arch.Ppc64le ~at:0 ~space:16 ~target:far ~dead ~toc:0
   with
  | Some (Trampoline.Long (Some _)) -> ()
  | _ -> Alcotest.fail "ppc long expected");
  (match
     Trampoline.select Arch.Ppc64le ~at:0 ~space:24 ~target:far ~dead:none
       ~toc:0
   with
  | Some (Trampoline.Long_save_restore _) -> ()
  | _ -> Alcotest.fail "ppc save/restore expected");
  Alcotest.(check bool) "ppc too small" true
    (Trampoline.select Arch.Ppc64le ~at:0 ~space:12 ~target:far ~dead ~toc:0
    = None);
  (* aarch64 with no dead register cannot use the long form. *)
  let very_far = 256 * 1024 * 1024 in
  Alcotest.(check bool) "aarch64 no reg" true
    (Trampoline.select Arch.Aarch64 ~at:0 ~space:12 ~target:very_far ~dead:none
       ~toc:0
    = None);
  match
    Trampoline.select Arch.Aarch64 ~at:0 ~space:12 ~target:very_far ~dead ~toc:0
  with
  | Some (Trampoline.Long (Some _)) -> ()
  | _ -> Alcotest.fail "aarch64 long expected"

(* Properties: whatever [select] chooses must fit the space, and [emit]
   must produce exactly [len] bytes whose decoded first branch reaches the
   target (for the short kind). *)
let trampoline_select_sound =
  QCheck2.Test.make ~count:1000 ~name:"trampoline select is sound"
    QCheck2.Gen.(
      let* arch = oneofl Arch.all in
      let* at = map (fun n -> n * 4) (int_range 0x100000 0x200000) in
      let* dist = oneofl [ 64; 4096; 1 lsl 20; 40 * (1 lsl 20); 200 * (1 lsl 20) ] in
      let* neg = bool in
      let* space = map (fun n -> n * 4) (int_range 1 8) in
      let* have_dead = bool in
      return (arch, at, (if neg then at - dist else at + dist), space, have_dead))
    (fun (arch, at, target, space, have_dead) ->
      QCheck2.assume (target > 0);
      let dead = if have_dead then Reg.Set.of_list [ Reg.r13; Reg.r15 ] else Reg.Set.empty in
      let toc = 0x600000 in
      match Trampoline.select arch ~at ~space ~target ~dead ~toc with
      | None -> true
      | Some kind ->
          let bytes = Trampoline.emit arch ~at ~target ~toc kind in
          String.length bytes = Trampoline.len arch kind
          && String.length bytes <= space
          &&
          (* a short trampoline must decode to a branch hitting the target *)
          (match kind with
          | Trampoline.Short -> (
              match Encode.decode arch bytes ~pos:0 with
              | Insn.Jmp d, _ -> at + d = target
              | _ -> false)
          | _ -> true))

let trampoline_emit_len =
  QCheck2.Test.make ~count:500 ~name:"trampoline emit length = len"
    QCheck2.Gen.(
      let* arch = oneofl Arch.all in
      let* kind =
        match arch with
        | Arch.X86_64 -> oneofl [ Trampoline.Short; Trampoline.Long None; Trampoline.Trap_tramp ]
        | Arch.Ppc64le ->
            oneofl
              [
                Trampoline.Short;
                Trampoline.Long (Some Reg.r12);
                Trampoline.Long_save_restore Reg.r13;
                Trampoline.Trap_tramp;
              ]
        | Arch.Aarch64 ->
            oneofl [ Trampoline.Short; Trampoline.Long (Some Reg.r14); Trampoline.Trap_tramp ]
      in
      let* at = map (fun n -> n * 4) (int_range 0x100000 0x140000) in
      return (arch, kind, at))
    (fun (arch, kind, at) ->
      let target = at + 64 in
      let bytes = Trampoline.emit arch ~at ~target ~toc:0x600000 kind in
      String.length bytes = Trampoline.len arch kind)

let test_catalogue_matches_arch_ranges () =
  List.iter
    (fun (r : Trampoline.row) ->
      let shorts =
        List.filter (fun (x : Trampoline.row) -> x.arch = r.arch) Trampoline.catalogue
      in
      Alcotest.(check int) "two rows per arch" 2 (List.length shorts))
    Trampoline.catalogue;
  List.iter
    (fun arch ->
      match
        List.filter (fun (x : Trampoline.row) -> x.arch = arch) Trampoline.catalogue
      with
      | [ short; long ] ->
          Alcotest.(check int) "short range" (Arch.short_branch_range arch)
            short.range;
          Alcotest.(check int) "long range" (Arch.long_branch_range arch)
            long.range
      | _ -> Alcotest.fail "catalogue shape")
    Arch.all

(* ------------------------------------------------------------------ *)
(* Dataflow helpers                                                    *)
(* ------------------------------------------------------------------ *)

let test_defs_uses () =
  let check_mem insn expect_defs expect_uses =
    let d = Insn.defs insn and u = Insn.uses insn in
    Alcotest.(check (list int))
      ("defs " ^ Insn.to_string insn)
      (List.map Reg.index expect_defs)
      (List.map Reg.index (Reg.Set.elements d));
    Alcotest.(check (list int))
      ("uses " ^ Insn.to_string insn)
      (List.map Reg.index expect_uses)
      (List.map Reg.index (Reg.Set.elements u))
  in
  check_mem (Insn.Mov (Reg.r1, Reg Reg.r2)) [ Reg.r1 ] [ Reg.r2 ];
  check_mem (Insn.Add (Reg.r1, Imm 3)) [ Reg.r1 ] [ Reg.r1 ];
  check_mem (Insn.Load (W64, Reg.r4, BReg Reg.r5, 8)) [ Reg.r4 ] [ Reg.r5 ];
  check_mem (Insn.Store (W64, BSp, 8, Reg.r3)) [] [ Reg.r3 ];
  check_mem (Insn.IndJmp Reg.r7) [] [ Reg.r7 ];
  check_mem (Insn.LoadIdx (W32, Reg.r1, Reg.r2, Reg.r3, 4)) [ Reg.r1 ]
    [ Reg.r2; Reg.r3 ];
  check_mem Insn.Ret [] []

let test_direct_target () =
  let i = Insn.Jmp 100 in
  Alcotest.(check (option int)) "jmp" (Some 1100)
    (Insn.direct_target ~addr:1000 i);
  let i' = Insn.with_direct_target ~addr:1000 i 2000 in
  Alcotest.(check (option int)) "retarget" (Some 2000)
    (Insn.direct_target ~addr:1000 i');
  Alcotest.(check (option int)) "non-branch" None
    (Insn.direct_target ~addr:1000 Insn.Nop)

let suite =
  let qt t = QCheck_alcotest.to_alcotest t in
  [
    ( "isa:encode",
      List.map (fun (_, t) -> qt t) (arch_cases roundtrip_test)
      @ List.map (fun (_, t) -> qt t) (arch_cases length_matches_encode)
      @ [
          Alcotest.test_case "x86 lengths" `Quick test_x86_lengths;
          Alcotest.test_case "fixed lengths" `Quick test_fixed_lengths;
          Alcotest.test_case "branch ranges" `Quick test_branch_ranges;
          Alcotest.test_case "far branch roundtrip" `Quick
            test_branch_roundtrip_far;
          Alcotest.test_case "boundary immediates" `Quick
            test_boundary_immediates;
          Alcotest.test_case "decode is total" `Quick test_decode_total;
          Alcotest.test_case "zero bytes illegal" `Quick
            test_zero_bytes_are_illegal;
          Alcotest.test_case "not encodable" `Quick test_not_encodable;
          Alcotest.test_case "branch disp bits" `Quick test_branch_disp_bits;
        ] );
    ( "isa:trampoline",
      [
        Alcotest.test_case "lengths (Table 2)" `Quick test_trampoline_lengths;
        Alcotest.test_case "emit short" `Quick test_trampoline_emit_short;
        Alcotest.test_case "emit ppc long" `Quick test_trampoline_emit_ppc_long;
        Alcotest.test_case "emit aarch64 long" `Quick
          test_trampoline_emit_aarch64_long;
        Alcotest.test_case "select" `Quick test_trampoline_select;
        qt trampoline_select_sound;
        qt trampoline_emit_len;
        Alcotest.test_case "catalogue ranges" `Quick
          test_catalogue_matches_arch_ranges;
      ] );
    ( "isa:insn",
      [
        Alcotest.test_case "defs/uses" `Quick test_defs_uses;
        Alcotest.test_case "direct targets" `Quick test_direct_target;
      ] );
  ]
