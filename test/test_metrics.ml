(* Unit battery for the telemetry registry (lib/core/metrics.mli).

   Contracts under test:
   (a) bucket determinism — log₂ bucket boundaries are pure functions of
       the integers (pinned values + round-trip property), so snapshots
       taken on different machines bucket identically;
   (b) recording — counters/gauges/histograms accumulate as specified,
       negative observations clamp to 0, snapshots are sorted and
       self-consistent (bucket counts sum to h_count);
   (c) merge algebra — associative, commutative, [empty] identity, and
       pointwise union-sum (the fleet-aggregation contract);
   (d) jobs-independence — a registry fed from concurrent [Pool] lanes
       snapshots identically regardless of the lane count, provided the
       recorded values are schedule-independent (the same contract Trace
       counters carry);
   (e) expositions — icfg-metrics/1 JSON and the Prometheus text render
       what the snapshot holds (cumulative buckets, name/tag split). *)

open Icfg_core
module M = Metrics

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------- (a) bucket determinism ---------------- *)

let bucket_pinned () =
  List.iter
    (fun (v, want) ->
      Alcotest.(check int) (Printf.sprintf "bucket_index %d" v) want
        (M.bucket_index v))
    [
      (0, 0);
      (1, 0);
      (2, 1);
      (3, 1);
      (4, 2);
      (7, 2);
      (8, 3);
      (1023, 9);
      (1024, 10);
      (1_000_000_000, 29);
      (max_int, M.n_buckets - 1);
      (-5, 0);
    ];
  (* Boundary self-consistency: every bucket contains its own bounds,
     and the bounds tile the non-negative ints without gaps. *)
  for i = 0 to M.n_buckets - 1 do
    Alcotest.(check int)
      (Printf.sprintf "lo of bucket %d round-trips" i)
      i
      (M.bucket_index (M.bucket_lo i));
    Alcotest.(check int)
      (Printf.sprintf "hi of bucket %d round-trips" i)
      i
      (M.bucket_index (M.bucket_hi i));
    if i < M.n_buckets - 1 then
      Alcotest.(check int)
        (Printf.sprintf "bucket %d tiles into %d" i (i + 1))
        (M.bucket_lo (i + 1))
        (M.bucket_hi i + 1)
  done

let bucket_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"metrics: v lands inside its bucket"
    QCheck2.Gen.(map abs big_nat)
    (fun v ->
      let i = M.bucket_index v in
      i >= 0 && i < M.n_buckets && M.bucket_lo i <= v && v <= M.bucket_hi i)

(* ---------------- (b) recording ---------------- *)

let recording () =
  let t = M.create () in
  M.add t "c.a" 3;
  M.incr t "c.a";
  M.add t "c.b" 0;
  M.set_gauge t "g.depth" 5;
  M.add_gauge t "g.depth" (-2);
  M.observe t "h.lat" 1;
  M.observe t "h.lat" 1000;
  M.observe t "h.lat" 1500;
  M.observe t "h.lat" (-7);
  (* clamps to 0: bucket 0 *)
  let s = M.snapshot t in
  Alcotest.(check (option int)) "counter accumulates" (Some 4)
    (M.find_counter s "c.a");
  Alcotest.(check (option int)) "zero-add creates the counter" (Some 0)
    (M.find_counter s "c.b");
  Alcotest.(check (option int)) "gauge set+delta" (Some 3)
    (M.find_gauge s "g.depth");
  (match M.find_histo s "h.lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "observation count" 4 h.M.h_count;
      Alcotest.(check int) "sum (clamped)" 2501 h.M.h_sum;
      Alcotest.(check int) "bucket counts sum to count" h.M.h_count
        (List.fold_left (fun a (_, n) -> a + n) 0 h.M.h_buckets);
      (* 1 and the clamped -7 share bucket 0; 1000 → 9 (512..1023),
         1500 → 10 (1024..2047). *)
      Alcotest.(check bool) "expected sparse buckets" true
        (h.M.h_buckets = [ (0, 2); (9, 1); (10, 1) ]);
      Alcotest.(check (float 0.001)) "mean" 625.25 (M.histo_mean h));
  (* Snapshot lists are name-sorted (the merge normal form). *)
  let sorted l = List.sort compare l = l in
  Alcotest.(check bool) "counters sorted" true (sorted s.M.s_counters);
  Alcotest.(check bool) "gauges sorted" true (sorted s.M.s_gauges);
  Alcotest.(check bool) "histos sorted" true
    (sorted (List.map fst s.M.s_histos))

(* ---------------- (c) merge algebra ---------------- *)

let snap_of ops =
  let t = M.create () in
  List.iter
    (fun (kind, name, v) ->
      match kind with
      | `C -> M.add t name v
      | `G -> M.add_gauge t name v
      | `H -> M.observe t name v)
    ops;
  M.snapshot t

let merge_algebra () =
  let a =
    snap_of
      [ (`C, "x", 1); (`C, "y", 2); (`G, "q", 3); (`H, "h", 10); (`H, "h", 2000) ]
  in
  let b = snap_of [ (`C, "y", 5); (`C, "z", 7); (`H, "h", 10); (`H, "k", 1) ] in
  let c = snap_of [ (`G, "q", -1); (`H, "k", 4096) ] in
  let eq = Alcotest.(check bool) in
  eq "left identity" true (M.merge M.empty a = a);
  eq "right identity" true (M.merge a M.empty = a);
  eq "commutative" true (M.merge a b = M.merge b a);
  eq "associative" true
    (M.merge (M.merge a b) c = M.merge a (M.merge b c));
  let ab = M.merge a b in
  Alcotest.(check (option int)) "counters union-sum" (Some 7)
    (M.find_counter ab "y");
  Alcotest.(check (option int)) "disjoint keys kept" (Some 1)
    (M.find_counter ab "x");
  (match M.find_histo ab "h" with
  | Some h ->
      Alcotest.(check int) "histogram counts add" 3 h.M.h_count;
      Alcotest.(check int) "histogram sums add" 2020 h.M.h_sum;
      Alcotest.(check int) "bucket counts add" h.M.h_count
        (List.fold_left (fun acc (_, n) -> acc + n) 0 h.M.h_buckets)
  | None -> Alcotest.fail "merged histogram missing");
  (* Merging a snapshot with itself doubles every total. *)
  let aa = M.merge a a in
  List.iter2
    (fun (k, v) (k', v') ->
      Alcotest.(check string) "same key" k k';
      Alcotest.(check int) (k ^ " doubled") (2 * v) v')
    a.M.s_counters aa.M.s_counters

(* ---------------- (d) jobs-independence under Pool lanes ---------------- *)

let jobs_independent () =
  (* Record the same schedule-independent values from Pool lanes at
     jobs 1 and jobs 4: snapshots must be exactly equal — the registry
     counterpart of the Trace counter jobs-independence contract. Only
     commutative ops (add/add_gauge/observe) are used; set_gauge is
     last-writer-wins and carries no cross-schedule guarantee. *)
  let feed jobs =
    let t = M.create () in
    let items = List.init 100 Fun.id in
    ignore
      (Pool.map ~jobs
         (fun i ->
           M.incr t "items";
           M.add t "payload" i;
           M.add_gauge t "level" (if i mod 2 = 0 then 1 else -1);
           M.observe t "work" (i * i))
         items);
    M.snapshot t
  in
  let s1 = feed 1 and s4 = feed 4 in
  Alcotest.(check bool) "jobs=1 snapshot == jobs=4 snapshot" true (s1 = s4);
  Alcotest.(check (option int)) "items" (Some 100) (M.find_counter s1 "items");
  Alcotest.(check (option int)) "payload" (Some 4950)
    (M.find_counter s1 "payload");
  match M.find_histo s1 "work" with
  | Some h -> Alcotest.(check int) "observations" 100 h.M.h_count
  | None -> Alcotest.fail "work histogram missing"

(* ---------------- (e) expositions ---------------- *)

let expositions () =
  let s =
    snap_of
      [
        (`C, "serve.requests", 12);
        (`G, "sched.queue_depth", 2);
        (`H, "request.latency:ours/jt:rewritten", 900);
        (`H, "request.latency:ours/jt:rewritten", 5000);
      ]
  in
  let j = M.to_json s in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("json has " ^ sub) true (contains j sub))
    [
      "\"schema\": \"icfg-metrics/1\"";
      "\"serve.requests\": 12";
      "\"sched.queue_depth\": 2";
      "\"count\": 2";
      "\"sum\": 5900";
    ];
  let p = M.to_prom s in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("prom has " ^ sub) true (contains p sub))
    [
      "# TYPE icfg_serve_requests counter";
      "icfg_serve_requests 12";
      "# TYPE icfg_sched_queue_depth gauge";
      "# TYPE icfg_request_latency histogram";
      (* name splits at the first ':'; the remainder is one opaque tag *)
      "tag=\"ours/jt:rewritten\"";
      (* cumulative buckets: 900 → bucket 9 (le 1023), then both ≤ +Inf *)
      "le=\"1023\"} 1";
      "le=\"+Inf\"} 2";
      "icfg_request_latency_sum{tag=\"ours/jt:rewritten\"} 5900";
      "icfg_request_latency_count{tag=\"ours/jt:rewritten\"} 2";
    ]

let suite =
  [
    ( "metrics",
      [
        Alcotest.test_case "log2 buckets: pinned boundaries" `Quick
          bucket_pinned;
        QCheck_alcotest.to_alcotest bucket_roundtrip;
        Alcotest.test_case "recording and snapshots" `Quick recording;
        Alcotest.test_case "merge is a commutative monoid" `Quick
          merge_algebra;
        Alcotest.test_case "jobs-independent under Pool lanes" `Quick
          jobs_independent;
        Alcotest.test_case "JSON and Prometheus expositions" `Quick
          expositions;
      ] );
  ]
