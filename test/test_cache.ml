(* The content-addressed cache in isolation: key construction, the
   memo_map contract, clone semantics, and — the part that earns its own
   battery — fault tolerance of the on-disk tier. A corrupt, truncated,
   version-skewed or hand-forged entry must degrade to a silent miss with
   a correct rewrite and a counted eviction; it must never surface as an
   error or as wrong bytes. *)

module Cache = Icfg_core.Cache
module Runner = Icfg_harness.Runner

let spec_bin () =
  let arch = Icfg_isa.Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  fst (Icfg_workloads.Spec_suite.compile arch bench)

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

let key_injectivity () =
  (* Length-prefixing makes adjacent parts unable to alias. *)
  Alcotest.(check bool) "kjoin [ab;c] <> kjoin [a;bc]" true
    (Cache.kjoin [ "ab"; "c" ] <> Cache.kjoin [ "a"; "bc" ]);
  Alcotest.(check bool) "kjoin [] <> kjoin [empty]" true
    (Cache.kjoin [] <> Cache.kjoin [ "" ]);
  (* dval is structural: equal values digest equally however built. *)
  let a = [ 1; 2; 3 ] in
  let b = 1 :: List.tl [ 0; 2; 3 ] in
  Alcotest.(check string) "dval structural" (Cache.dval a) (Cache.dval b)

(* ------------------------------------------------------------------ *)
(* memo_map contract                                                   *)
(* ------------------------------------------------------------------ *)

let memo_map_no_cache () =
  (* Without a cache, memo_map is Pool.map and the key function is never
     consulted. *)
  let xs = List.init 100 (fun i -> i) in
  let r =
    Cache.memo_map ~jobs:4 ~stage:"t"
      ~key:(fun _ -> Alcotest.fail "key called without a cache")
      (fun x -> x * x)
      xs
  in
  Alcotest.(check (list int)) "identity with Pool.map" (List.map (fun x -> x * x) xs) r

let memo_map_basic () =
  let c = Cache.create () in
  let xs = List.init 50 (fun i -> i) in
  let calls = Atomic.make 0 in
  let f x =
    Atomic.incr calls;
    (x, string_of_int x)
  in
  let key x = Cache.dval x in
  let r1 = Cache.memo_map ~cache:c ~jobs:2 ~stage:"t" ~key f xs in
  Alcotest.(check int) "cold: one call per item" 50 (Atomic.get calls);
  let r2 = Cache.memo_map ~cache:c ~jobs:2 ~stage:"t" ~key f xs in
  Alcotest.(check int) "warm: no new calls" 50 (Atomic.get calls);
  Alcotest.(check bool) "warm result identical" true (r1 = r2);
  let s = Cache.stats c in
  Alcotest.(check int) "misses" 50 s.Cache.c_misses;
  Alcotest.(check int) "hits" 50 s.Cache.c_hits;
  Alcotest.(check int) "stores" 50 s.Cache.c_stores;
  (* Same raw key under a different stage tag is a different entry. *)
  let r3 = Cache.memo_map ~cache:c ~jobs:1 ~stage:"u" ~key f xs in
  Alcotest.(check int) "stage tag separates entries" 100 (Atomic.get calls);
  Alcotest.(check bool) "other-stage result identical" true (r1 = r3)

let clone_isolation () =
  let c = Cache.create () in
  let xs = [ 1; 2; 3 ] in
  let f x = x + 1 in
  let key x = Cache.dval x in
  ignore (Cache.memo_map ~cache:c ~jobs:1 ~stage:"t" ~key f xs);
  let k = Cache.clone c in
  Alcotest.(check int) "clone stats start at zero" 0 (Cache.stats k).Cache.c_hits;
  ignore (Cache.memo_map ~cache:k ~jobs:1 ~stage:"t" ~key f xs);
  Alcotest.(check int) "clone serves the copied entries" 3
    (Cache.stats k).Cache.c_hits;
  (* New entries stored into the clone do not leak back. *)
  ignore (Cache.memo_map ~cache:k ~jobs:1 ~stage:"t" ~key f [ 99 ]);
  ignore (Cache.memo_map ~cache:c ~jobs:1 ~stage:"t" ~key f [ 99 ]);
  Alcotest.(check int) "original missed the clone's entry" 4
    (Cache.stats c).Cache.c_misses

(* ------------------------------------------------------------------ *)
(* Disk-tier fault tolerance                                           *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Warm an on-disk store with a full rewrite, mangle one entry with
   [damage], then rewrite through a fresh cache over the same directory:
   the output must still be byte-identical to the uncached rewrite, the
   damaged entry must be silently evicted (one counted eviction, one
   miss), and everything else must hit. *)
let damage_case ~what damage =
  Test_parallel.with_temp_dir (fun dir ->
      let bin = spec_bin () in
      let options = Test_parallel.opts Icfg_core.Mode.Jt in
      let uncached = Runner.rewrite ~options ~jobs:1 bin in
      let c1 = Cache.create ~dir () in
      ignore (Runner.rewrite ~options ~jobs:1 ~cache:c1 bin);
      let total = (Cache.stats c1).Cache.c_misses in
      let victim =
        match Cache.entry_files c1 with
        | f :: _ -> f
        | [] -> Alcotest.fail "no on-disk entries after a cold rewrite"
      in
      damage victim;
      let c2 = Cache.create ~dir () in
      let rw = Runner.rewrite ~options ~jobs:1 ~cache:c2 bin in
      Test_parallel.check_same ~what uncached rw;
      let s = Cache.stats c2 in
      Alcotest.(check int) (what ^ ": one eviction") 1 s.Cache.c_evict_corrupt;
      Alcotest.(check int) (what ^ ": one miss") 1 s.Cache.c_misses;
      Alcotest.(check int) (what ^ ": rest hits") (total - 1) s.Cache.c_hits;
      (* The miss re-stored a valid entry: a third run is all hits. *)
      let c3 = Cache.create ~dir () in
      ignore (Runner.rewrite ~options ~jobs:1 ~cache:c3 bin);
      Alcotest.(check int) (what ^ ": store healed") 0
        (Cache.stats c3).Cache.c_misses)

let disk_truncated () =
  damage_case ~what:"truncated entry" (fun path ->
      let s = read_file path in
      write_file path (String.sub s 0 (String.length s / 2)))

let disk_garbage () =
  damage_case ~what:"garbage entry" (fun path ->
      write_file path (String.make 64 '\xfe'))

let disk_empty () =
  damage_case ~what:"empty entry" (fun path -> write_file path "")

let disk_version_skew () =
  (* A future format version: same layout, bumped magic. Must read as
     stale, not as valid. *)
  damage_case ~what:"version-skewed entry" (fun path ->
      let s = read_file path in
      let i = String.index s '\n' in
      write_file path ("icfgcache/2" ^ String.sub s i (String.length s - i)))

let disk_forged_payload () =
  (* A foreign writer with a self-consistent entry (magic, key echo,
     length and digest all valid) around a payload that is not a marshal
     image. The disk layer accepts it; memo_map must catch the unmarshal
     failure, evict, and recompute. *)
  damage_case ~what:"forged payload" (fun path ->
      let key = Filename.chop_suffix (Filename.basename path) ".entry" in
      let payload = "not a marshal image" in
      write_file path
        (String.concat "\n"
           [
             "icfgcache/1";
             key;
             string_of_int (String.length payload);
             Digest.to_hex (Digest.string payload);
             payload;
           ]))

(* ------------------------------------------------------------------ *)
(* Disk-tier size bound (LRU)                                          *)
(* ------------------------------------------------------------------ *)

(* Payloads dwarf the per-entry framing, so "how many entries fit" is
   easy to pin: a bound of three payloads holds exactly the three most
   recently stored of eight. Eviction loses only the disk file — the
   in-memory copies keep serving — and a fresh cache over the directory
   misses exactly the five oldest. *)
let disk_lru_bound () =
  Test_parallel.with_temp_dir (fun dir ->
      let calls = ref [] in
      let f x =
        calls := x :: !calls;
        String.make 2048 (Char.chr (x land 0xff))
      in
      let key x = Cache.dval x in
      let xs = List.init 8 (fun i -> i) in
      let c = Cache.create ~dir ~max_disk_bytes:(3 * 2200) () in
      ignore (Cache.memo_map ~cache:c ~jobs:1 ~stage:"t" ~key f xs);
      let s = Cache.stats c in
      Alcotest.(check int) "evictions counted" 5 s.Cache.c_evict_lru;
      Alcotest.(check int) "bound holds three disk entries" 3
        (List.length (Cache.entry_files c));
      (* The in-memory tier kept every evicted entry. *)
      calls := [];
      ignore (Cache.memo_map ~cache:c ~jobs:1 ~stage:"t" ~key f xs);
      Alcotest.(check (list int)) "warm run recomputes nothing" [] !calls;
      Alcotest.(check int) "warm run all hits" 8 (Cache.stats c).Cache.c_hits;
      (* A fresh cache sees only the survivors: the five oldest stores
         lost their files and recompute. *)
      let c2 = Cache.create ~dir () in
      ignore (Cache.memo_map ~cache:c2 ~jobs:1 ~stage:"t" ~key f xs);
      let s2 = Cache.stats c2 in
      Alcotest.(check int) "survivors hit" 3 s2.Cache.c_hits;
      Alcotest.(check int) "evicted miss" 5 s2.Cache.c_misses;
      Alcotest.(check (list int)) "victims were the oldest" [ 0; 1; 2; 3; 4 ]
        (List.sort compare !calls))

(* A disk hit refreshes the entry's LRU tick: entries seeded from a
   pre-existing store are all equally cold, and touching one protects it
   from the next eviction. *)
let disk_lru_refresh () =
  Test_parallel.with_temp_dir (fun dir ->
      let f x = String.make 2048 (Char.chr (x land 0xff)) in
      let key x = Cache.dval x in
      let seed = Cache.create ~dir () in
      ignore (Cache.memo_map ~cache:seed ~jobs:1 ~stage:"t" ~key f [ 0; 1; 2 ]);
      let c = Cache.create ~dir ~max_disk_bytes:(3 * 2200) () in
      (* Disk hit on item 0: its tick is now newer than the other seeds. *)
      ignore (Cache.memo_map ~cache:c ~jobs:1 ~stage:"t" ~key f [ 0 ]);
      (* A fourth store overflows the bound; the victim must be one of
         the untouched seeds. *)
      ignore (Cache.memo_map ~cache:c ~jobs:1 ~stage:"t" ~key f [ 3 ]);
      Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.c_evict_lru;
      let c2 = Cache.create ~dir () in
      ignore (Cache.memo_map ~cache:c2 ~jobs:1 ~stage:"t" ~key f [ 0 ]);
      Alcotest.(check int) "the touched seed survived" 1
        (Cache.stats c2).Cache.c_hits)

(* ------------------------------------------------------------------ *)
(* Slots                                                               *)
(* ------------------------------------------------------------------ *)

let slot_files dir =
  List.filter
    (fun f -> Filename.check_suffix f ".slot")
    (Array.to_list (Sys.readdir dir))

let slot_battery () =
  Test_parallel.with_temp_dir (fun dir ->
      let c = Cache.create ~dir () in
      Alcotest.(check bool) "absent initially" true
        ((Cache.find_slot c "layout" : int list option) = None);
      Cache.store_slot c "layout" [ 1; 2; 3 ];
      Alcotest.(check (list int)) "round-trip" [ 1; 2; 3 ]
        (Option.get (Cache.find_slot c "layout"));
      Cache.store_slot c "layout" [ 9 ];
      Alcotest.(check (list int)) "overwrite" [ 9 ]
        (Option.get (Cache.find_slot c "layout"));
      (* Slots are invisible to statistics and the entry tier. *)
      let s = Cache.stats c in
      Alcotest.(check int) "no hits" 0 s.Cache.c_hits;
      Alcotest.(check int) "no misses" 0 s.Cache.c_misses;
      Alcotest.(check int) "no stores" 0 s.Cache.c_stores;
      Alcotest.(check (list string)) "no entry files" [] (Cache.entry_files c);
      Alcotest.(check int) "one slot file" 1 (List.length (slot_files dir));
      (* clone carries slots into warm replays (and drops the disk tier). *)
      let k = Cache.clone c in
      Alcotest.(check (list int)) "clone carries the slot" [ 9 ]
        (Option.get (Cache.find_slot k "layout"));
      (* A fresh cache over the directory reads last run's slot. *)
      let c2 = Cache.create ~dir () in
      Alcotest.(check (list int)) "slot persists on disk" [ 9 ]
        (Option.get (Cache.find_slot c2 "layout"));
      (* A mangled slot file reads as absent and is evicted, counted. *)
      (match slot_files dir with
      | [ f ] -> write_file (Filename.concat dir f) "not a slot"
      | fs -> Alcotest.fail (Printf.sprintf "%d slot files" (List.length fs)));
      let c3 = Cache.create ~dir () in
      Alcotest.(check bool) "corrupt slot reads as absent" true
        ((Cache.find_slot c3 "layout" : int list option) = None);
      Alcotest.(check int) "corrupt slot evicted" 1
        (Cache.stats c3).Cache.c_evict_corrupt;
      Alcotest.(check (list string)) "corrupt slot file removed" []
        (slot_files dir))

(* ------------------------------------------------------------------ *)
(* Cross-request reuse through the serve daemon                        *)
(* ------------------------------------------------------------------ *)

module Corpus = Icfg_workloads.Corpus
module Protocol = Icfg_service.Protocol
module Server = Icfg_service.Server
module Client = Icfg_service.Client

let rewritten_counters ~what = function
  | Ok (Protocol.Rewritten { counters; _ }) -> counters
  | Ok _ -> Alcotest.failf "%s: unexpected response kind" what
  | Error m -> Alcotest.failf "%s: transport error %s" what m

(* The PR 6 twin entries, as separate daemon requests: the daemon's one
   cross-request cache makes the twin's rewrite hit on every stage the
   source stored — zero misses in any text stage (or anywhere else),
   and exactly as many hits as the source had misses. This is the
   cross-request payoff the serve mode exists for. *)
let serve_twin_hits () =
  let entries = Corpus.generate ~seed:7 ~count:10 in
  let twin_entry = List.nth entries 9 in
  let src_id =
    match twin_entry.Corpus.e_twin_of with
    | Some j -> j
    | None -> Alcotest.fail "corpus entry 9 is expected to be a twin"
  in
  let src_bin = Corpus.build (List.nth entries src_id) in
  let twin_bin = Corpus.build twin_entry in
  Test_serve.with_server ~workers:1 () @@ fun _srv path ->
  Client.with_connection path @@ fun c ->
  let c_src =
    rewritten_counters ~what:"source request"
      (Client.rewrite c ~approach:"ours/jt" src_bin)
  in
  (* The twin is byte-identical to the source, so at equal jobs the
     daemon would answer it from the whole-response memo without running
     anything — correct service behavior, but this test pins the *stage*
     cache. jobs=2 changes the memo key (never the counters: totals are
     jobs-independent), forcing a real pipeline run over the shared
     cache. *)
  let c_twin =
    rewritten_counters ~what:"twin request"
      (Client.rewrite c ~approach:"ours/jt" ~jobs:2 twin_bin)
  in
  let get l n = Option.value ~default:0 (List.assoc_opt n l) in
  Alcotest.(check bool) "source request ran cold" true
    (get c_src "cache.miss" > 0 && get c_src "cache.hit" = 0);
  List.iter
    (fun stage ->
      Alcotest.(check int)
        (Printf.sprintf "twin request: zero misses in %s" stage)
        0
        (get c_twin ("cache.miss:" ^ stage)))
    [
      "parse/pass1"; "parse/fptr"; "parse/finalize"; "parse/fptr2";
      "rewrite/relocate"; "rewrite/plan"; "encode";
    ];
  Alcotest.(check int) "twin request: zero misses anywhere" 0
    (get c_twin "cache.miss");
  Alcotest.(check int) "twin hits everything the source stored"
    (get c_src "cache.miss") (get c_twin "cache.hit")

(* The LRU disk bound holds while requests are in flight: concurrent
   requests store through the daemon's shared disk-backed cache, and
   when the dust settles the entry tier is within the bound with the
   evictions counted — no request ever saw an error. *)
let serve_lru_eviction () =
  Test_parallel.with_temp_dir @@ fun dir ->
  let bound = 64 * 1024 in
  let cache = Cache.create ~dir ~max_disk_bytes:bound () in
  let bins =
    List.map
      (fun arch ->
        let b = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
        fst (Icfg_workloads.Spec_suite.compile arch b))
      Icfg_isa.Arch.all
  in
  Test_serve.with_server ~workers:2 ~cache () @@ fun srv path ->
  let threads =
    List.map
      (fun bin ->
        Thread.create
          (fun () ->
            Client.with_connection path @@ fun c ->
            ignore
              (rewritten_counters ~what:"in-flight rewrite"
                 (Client.rewrite c ~approach:"ours/jt" bin)))
          ())
      bins
  in
  List.iter Thread.join threads;
  let st = Server.stats srv in
  Alcotest.(check int) "no error responses" 0 st.Server.errors;
  let cstats = Cache.stats (Server.cache srv) in
  Alcotest.(check bool) "evictions happened under service" true
    (cstats.Cache.c_evict_lru > 0);
  let disk_bytes =
    List.fold_left
      (fun acc f -> acc + (Unix.stat f).Unix.st_size)
      0 (Cache.entry_files cache)
  in
  Alcotest.(check bool)
    (Printf.sprintf "disk entry tier within bound (%d <= %d)" disk_bytes bound)
    true (disk_bytes <= bound)

let suite =
  [
    ( "cache",
      [
        Alcotest.test_case "key injectivity" `Quick key_injectivity;
        Alcotest.test_case "memo_map: no cache = Pool.map" `Quick
          memo_map_no_cache;
        Alcotest.test_case "memo_map: basic hit/miss/stage" `Quick
          memo_map_basic;
        Alcotest.test_case "clone isolation" `Quick clone_isolation;
        Alcotest.test_case "disk: truncated entry" `Quick disk_truncated;
        Alcotest.test_case "disk: garbage entry" `Quick disk_garbage;
        Alcotest.test_case "disk: empty entry" `Quick disk_empty;
        Alcotest.test_case "disk: version skew" `Quick disk_version_skew;
        Alcotest.test_case "disk: forged payload" `Quick disk_forged_payload;
        Alcotest.test_case "disk: LRU size bound" `Quick disk_lru_bound;
        Alcotest.test_case "disk: LRU hit refresh" `Quick disk_lru_refresh;
        Alcotest.test_case "slots: round-trip, clone, corruption" `Quick
          slot_battery;
        Alcotest.test_case "serve: twin cross-request all-hits" `Slow
          serve_twin_hits;
        Alcotest.test_case "serve: LRU bound under in-flight requests" `Quick
          serve_lru_eviction;
      ] );
  ]
