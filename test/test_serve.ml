(* Concurrency/isolation battery for the [icfg serve] daemon.

   Contracts under test (lib/service/*.mli):

   (a) response equivalence — a binary rewritten through the daemon is
       byte-identical to the one-shot in-process path, for every
       mode x ISA;
   (b) determinism — concurrent clients submitting a fixed corpus slice
       get identical per-request classifications regardless of client
       count, arrival interleaving, and jobs;
   (c) backpressure — a queue bound of K with K+M in-flight requests
       yields exactly M typed Overloaded refusals and zero crashes, and
       the daemon keeps serving afterwards;
   (d) isolation — two concurrent requests' trace counter totals each
       equal their solo-run totals (per-domain ambient traces: no
       cross-request bleed);
   (e) crash containment — a request whose driver raises comes back as a
       typed Error (or Crashed classification) frame and the daemon
       lives; ditto malformed frames and unknown approaches. *)

open Icfg_isa
open Icfg_core
module Runner = Icfg_harness.Runner
module Matrix = Icfg_harness.Matrix
module Corpus = Icfg_workloads.Corpus
module Binfile = Icfg_obj.Binfile
module Protocol = Icfg_service.Protocol
module Scheduler = Icfg_service.Scheduler
module Server = Icfg_service.Server
module Client = Icfg_service.Client
module Sweep = Icfg_service.Sweep
module Flight = Icfg_service.Flight

let sock_counter = ref 0

let with_server ?bound ?workers ?jobs ?cache ?flight ?max_frame ?store_bytes
    ?memo_bytes () f =
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "icfg-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let srv =
    Server.start ~path ?bound ?workers ?jobs ?cache ?flight ?max_frame
      ?store_bytes ?memo_bytes ()
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv path)

let first_bench arch =
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  fst (Icfg_workloads.Spec_suite.compile arch bench)

let astr_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let response_label = function
  | Protocol.Pong -> "pong"
  | Protocol.Rewritten _ -> "rewritten"
  | Protocol.Refused _ -> "refused"
  | Protocol.Classified _ -> "classified"
  | Protocol.Error { message; _ } -> "error: " ^ message
  | Protocol.Overloaded -> "overloaded"
  | Protocol.StatsSnapshot _ -> "stats-snapshot"
  | Protocol.Registered _ -> "registered"
  | Protocol.NeedFull _ -> "need-full"
  | Protocol.Rejected { reason } -> "rejected: " ^ reason

(* ------------------------------------------------------------------ *)
(* Protocol codec round-trips                                          *)
(* ------------------------------------------------------------------ *)

let codec_roundtrip () =
  let reqs =
    [
      Protocol.Ping;
      Protocol.Rewrite
        { approach = "ours/jt"; jobs = 4; payload = Protocol.Full "\x00\xffbin" };
      Protocol.Classify
        { approach = "srbi"; jobs = 0; payload = Protocol.Full "" };
      Protocol.Rewrite
        {
          approach = "ours/dir";
          jobs = 1;
          payload = Protocol.Ref (String.make 32 'a');
        };
      Protocol.Classify
        {
          approach = "ours/jt";
          jobs = 2;
          payload =
            Protocol.Patch
              {
                base = String.make 32 'b';
                total_len = 10;
                ranges = [ (0, "ab"); (5, "\x00\xff") ];
              };
        };
      Protocol.Rewrite
        {
          approach = "x";
          jobs = 0;
          payload = Protocol.Patch { base = ""; total_len = 0; ranges = [] };
        };
      Protocol.Register { bin = "container bytes" };
      Protocol.Stats { flight = false };
      Protocol.Stats { flight = true };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.request_of_payload (Protocol.request_to_payload r) with
      | Ok r' -> Alcotest.(check bool) "request round-trip" true (r = r')
      | Error m -> Alcotest.failf "request decode failed: %s" m)
    reqs;
  let resps =
    [
      Protocol.Pong;
      Protocol.Rewritten
        {
          bin = String.make 64 '\x7f';
          digest = String.make 32 'c';
          counters = [ ("a", 1); ("b", -2) ];
        };
      Protocol.Refused { reason = "non-PIE"; digest = ""; counters = [] };
      Protocol.Classified
        {
          cls = Matrix.Refused "feature/non-pie";
          ns = 1234.5;
          digest = String.make 32 'd';
          counters = [ ("cache.hit", 9) ];
        };
      Protocol.Classified
        { cls = Matrix.Verified; ns = 0.; digest = ""; counters = [] };
      Protocol.Registered { digest = String.make 32 'e' };
      Protocol.NeedFull { digest = String.make 32 'f' };
      Protocol.Rejected { reason = "frame of 9 bytes over limit 8" };
      Protocol.Error
        { message = "boom"; counters = [ ("parse.bytes", 12) ] };
      Protocol.Error { message = ""; counters = [] };
      Protocol.Overloaded;
      Protocol.StatsSnapshot { snap = Metrics.empty; flight = None };
      Protocol.StatsSnapshot
        {
          snap =
            {
              Metrics.s_counters = [ ("serve.requests", 7) ];
              s_gauges = [ ("sched.queue_depth", 2) ];
              s_histos =
                [
                  ( "request.latency:ours/jt:rewritten",
                    {
                      Metrics.h_count = 3;
                      h_sum = 4096;
                      h_buckets = [ (0, 1); (10, 2) ];
                    } );
                ];
            };
          flight = Some "{\"schema\": \"icfg-flight/1\"}";
        };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.response_of_payload (Protocol.response_to_payload r) with
      | Ok r' -> Alcotest.(check bool) "response round-trip" true (r = r')
      | Error m -> Alcotest.failf "response decode failed: %s" m)
    resps;
  (* Malformed payloads decode to Error, never raise. *)
  List.iter
    (fun p ->
      match Protocol.request_of_payload p with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "garbage accepted as request")
    [ ""; "bogus"; "isrv1"; "isrv1\xff"; "isrv1\x02\x04\x00\x00\x00ab" ];
  (* A payload kind byte the grammar doesn't know decodes to Error, not a
     crash: corrupt the kind byte of an otherwise valid Rewrite frame. *)
  (let p =
     Protocol.request_to_payload
       (Protocol.Rewrite
          { approach = "x"; jobs = 1; payload = Protocol.Full "y" })
   in
   let b = Bytes.of_string p in
   let kind_pos = String.length Protocol.magic + 1 + (4 + 1) + 4 in
   Alcotest.(check char) "kind byte located" '\x00' (Bytes.get b kind_pos);
   Bytes.set b kind_pos '\x07';
   match Protocol.request_of_payload (Bytes.to_string b) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown payload kind accepted");
  (* cls codec is total on the wire forms and rejects junk. *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        "cls round-trip" true
        (Matrix.cls_of_string (Matrix.cls_to_string c) = Some c))
    [
      Matrix.Verified;
      Matrix.Diverged;
      Matrix.Refused "tramp/trap";
      Matrix.Crashed "Not_encodable(\"x\")";
    ];
  Alcotest.(check bool)
    "junk cls rejected" true
    (Matrix.cls_of_string "meh" = None)

(* ------------------------------------------------------------------ *)
(* Scheduler: bound, pause/resume, shutdown drain                      *)
(* ------------------------------------------------------------------ *)

let scheduler_unit () =
  let s = Scheduler.create ~bound:2 ~workers:1 () in
  Scheduler.pause s;
  let t1 = Scheduler.submit s (fun () -> 1) in
  let t2 = Scheduler.submit s (fun () -> 2) in
  let t3 = Scheduler.submit s (fun () -> 3) in
  Alcotest.(check bool) "two accepted" true (t1 <> None && t2 <> None);
  Alcotest.(check bool) "third refused at bound" true (t3 = None);
  Alcotest.(check int) "pending counts queued" 2 (Scheduler.pending s);
  Scheduler.resume s;
  (match (t1, t2) with
  | Some a, Some b ->
      Alcotest.(check int) "first result" 1 (Scheduler.await a);
      Alcotest.(check int) "second result" 2 (Scheduler.await b)
  | _ -> Alcotest.fail "accepted tickets missing");
  (* Shutdown drains accepted work and joins; later submits refuse. *)
  Scheduler.pause s;
  let t4 = Scheduler.submit s (fun () -> 4) in
  Scheduler.shutdown s;
  (match t4 with
  | Some t -> Alcotest.(check int) "drained on shutdown" 4 (Scheduler.await t)
  | None -> Alcotest.fail "submit before shutdown refused");
  Alcotest.(check bool)
    "submit after shutdown refused" true
    (Scheduler.submit s (fun () -> 5) = None);
  (* A raising job re-raises at await, not in the executor. *)
  let s2 = Scheduler.create ~bound:2 ~workers:1 () in
  (match Scheduler.submit s2 (fun () -> failwith "job boom") with
  | Some t -> (
      match Scheduler.await t with
      | _ -> Alcotest.fail "raising job returned"
      | exception Failure m -> Alcotest.(check string) "re-raised" "job boom" m)
  | None -> Alcotest.fail "submit refused");
  Scheduler.shutdown s2

(* ------------------------------------------------------------------ *)
(* (a) response equivalence: daemon == one-shot, every mode x ISA      *)
(* ------------------------------------------------------------------ *)

let response_equivalence () =
  with_server ~workers:2 () @@ fun _srv path ->
  Client.with_connection path @@ fun c ->
  List.iter
    (fun arch ->
      let bin = first_bench arch in
      List.iter
        (fun mode ->
          let what =
            Printf.sprintf "%s/%s" (Arch.name arch) (Mode.name mode)
          in
          (* The daemon path: roster driver behind the wire protocol. *)
          let daemon_bytes =
            match Client.rewrite c ~approach:("ours/" ^ Mode.name mode) bin with
            | Ok (Protocol.Rewritten { bin; _ }) -> bin
            | Ok r -> Alcotest.failf "%s: daemon said %s" what (response_label r)
            | Error m -> Alcotest.failf "%s: transport error %s" what m
          in
          (* The one-shot path: same options, no daemon, no cache. *)
          let rw =
            Runner.rewrite
              ~options:{ Rewriter.default_options with Rewriter.mode }
              ~jobs:1 bin
          in
          let oneshot_bytes =
            Bytes.to_string (Binfile.to_bytes rw.Rewriter.rw_binary)
          in
          Alcotest.(check bool)
            (what ^ ": daemon bytes == one-shot bytes")
            true
            (daemon_bytes = oneshot_bytes))
        Mode.all)
    Arch.all

(* ------------------------------------------------------------------ *)
(* (b) determinism under concurrent clients / jobs                     *)
(* ------------------------------------------------------------------ *)

let strip (r : Matrix.row) = { r with Matrix.row_p50_ns = 0.; row_p95_ns = 0. }

let concurrent_determinism () =
  let seed = 11 and count = 6 in
  let d1 = Sweep.run ~seed ~count ~clients:1 ~jobs:1 () in
  let d4 = Sweep.run ~seed ~count ~clients:4 ~jobs:2 () in
  let m = Matrix.run ~seed ~count ~jobs:1 () in
  Alcotest.(check int) "no transport errors (serial)" 0 d1.Sweep.sw_errors;
  Alcotest.(check int) "no transport errors (concurrent)" 0 d4.Sweep.sw_errors;
  Alcotest.(check int) "no refusals (serial)" 0 d1.Sweep.sw_overloaded;
  Alcotest.(check int) "no refusals (concurrent)" 0 d4.Sweep.sw_overloaded;
  let r1 = List.map strip d1.Sweep.sw_rows in
  let r4 = List.map strip d4.Sweep.sw_rows in
  let rm = List.map strip m.Matrix.m_rows in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: 1 client == 4 clients" a.Matrix.row_approach)
        true (a = b))
    r1 r4;
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: daemon == in-process" a.Matrix.row_approach)
        true (a = b))
    r4 rm

(* ------------------------------------------------------------------ *)
(* (c) backpressure: K-bounded queue, K+M in-flight, exactly M refused *)
(* ------------------------------------------------------------------ *)

let backpressure () =
  let k = 3 and m = 2 in
  let bin = first_bench Arch.X86_64 in
  with_server ~bound:k ~workers:1 () @@ fun srv path ->
  (* Park the executor so the queue fills deterministically: K requests
     queue, the next M find the queue at its bound. *)
  Scheduler.pause (Server.scheduler srv);
  let results = Array.make (k + m) None in
  let threads =
    List.init (k + m) (fun i ->
        Thread.create
          (fun () ->
            Client.with_connection path @@ fun c ->
            results.(i) <- Some (Client.rewrite c ~approach:"ours/jt" bin))
          ())
  in
  (* Wait until all K+M requests have reached the daemon: K parked in
     the queue, M already refused. *)
  let deadline = Unix.gettimeofday () +. 30. in
  let rec settle () =
    let st = Server.stats srv in
    if
      Scheduler.pending (Server.scheduler srv) = k
      && st.Server.overloaded = m
    then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "queue never settled: pending=%d overloaded=%d"
        (Scheduler.pending (Server.scheduler srv))
        (Server.stats srv).Server.overloaded
    else begin
      Thread.delay 0.01;
      settle ()
    end
  in
  settle ();
  Scheduler.resume (Server.scheduler srv);
  List.iter Thread.join threads;
  let count pred = Array.fold_left (fun n r -> if pred r then n + 1 else n) 0 results in
  Alcotest.(check int) "exactly M overloaded" m
    (count (function Some (Ok Protocol.Overloaded) -> true | _ -> false));
  Alcotest.(check int) "exactly K rewritten" k
    (count (function Some (Ok (Protocol.Rewritten _)) -> true | _ -> false));
  let st = Server.stats srv in
  Alcotest.(check int) "zero error responses" 0 st.Server.errors;
  Alcotest.(check int) "overloaded stat" m st.Server.overloaded;
  (* The refusals cost nothing: the daemon is still serving. *)
  Client.with_connection path @@ fun c ->
  (match Client.ping c with
  | Ok Protocol.Pong -> ()
  | r ->
      Alcotest.failf "daemon not serving after refusals: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  match Client.rewrite c ~approach:"ours/jt" bin with
  | Ok (Protocol.Rewritten _) -> ()
  | r ->
      Alcotest.failf "rewrite after refusals: %s"
        (match r with Ok x -> response_label x | Error m -> m)

(* ------------------------------------------------------------------ *)
(* (d) isolation: concurrent requests' counters == solo totals         *)
(* ------------------------------------------------------------------ *)

let solo_counters bin =
  let tr = Trace.create () in
  let cache = Cache.create () in
  Trace.with_current tr (fun () ->
      ignore (Runner.drive ~approach:"ours/jt" ~jobs:1 ~cache bin));
  Trace.counters tr

let isolation () =
  (* Two binaries with disjoint content: their cache keys are disjoint,
     so sharing the daemon cache cannot change either request's hit/miss
     counters — any difference from the solo totals is trace bleed. *)
  let bin_a = first_bench Arch.X86_64 in
  let bin_b = first_bench Arch.Aarch64 in
  let solo_a = solo_counters bin_a and solo_b = solo_counters bin_b in
  Alcotest.(check bool) "solo counters nonempty" true (solo_a <> []);
  with_server ~workers:2 () @@ fun _srv path ->
  let got = [| []; [] |] in
  let request i bin =
    Thread.create
      (fun () ->
        Client.with_connection path @@ fun c ->
        match Client.rewrite c ~approach:"ours/jt" ~jobs:1 bin with
        | Ok (Protocol.Rewritten { counters; _ }) -> got.(i) <- counters
        | r ->
            Alcotest.failf "request %d: %s" i
              (match r with Ok x -> response_label x | Error m -> m))
      ()
  in
  let ta = request 0 bin_a and tb = request 1 bin_b in
  Thread.join ta;
  Thread.join tb;
  (* The daemon adds its own [serve.*] trace counters (wire-copy savings)
     on top of the pipeline's; strip them before comparing to the solo
     in-process totals. *)
  let strip_serve =
    List.filter (fun (k, _) ->
        not (String.length k >= 6 && String.sub k 0 6 = "serve."))
  in
  Alcotest.(check bool)
    "request A counters == solo A totals" true (strip_serve got.(0) = solo_a);
  Alcotest.(check bool)
    "request B counters == solo B totals" true (strip_serve got.(1) = solo_b)

(* ------------------------------------------------------------------ *)
(* (e) crash containment: raising drivers, garbage frames, bad names   *)
(* ------------------------------------------------------------------ *)

let crash_containment () =
  (* Corpus seed 7, entry 8 (c0008-huge-jt) defeats insn-patching's
     encoder outright — self-validate that the driver still raises
     in-process, so this test fails loudly if the corpus shifts. *)
  let entries = Corpus.generate ~seed:7 ~count:9 in
  let crasher = Corpus.build (List.nth entries 8) in
  (match Runner.drive ~approach:"insn-patching" ~jobs:1 crasher with
  | exception _ -> ()
  | _ -> Alcotest.fail "expected insn-patching to raise on c0008-huge-jt");
  with_server ~workers:1 () @@ fun srv path ->
  Client.with_connection path @@ fun c ->
  (* A raising driver is a typed Error frame... *)
  (match Client.rewrite c ~approach:"insn-patching" crasher with
  | Ok (Protocol.Error _) -> ()
  | r ->
      Alcotest.failf "raising driver: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* ...and through the Matrix machinery, a typed Crashed cell. *)
  (match Client.classify c ~approach:"insn-patching" crasher with
  | Ok (Protocol.Classified { cls = Matrix.Crashed _; _ }) -> ()
  | r ->
      Alcotest.failf "raising driver (classify): %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* Unknown approach: typed error, not a dead daemon. *)
  (match Client.rewrite c ~approach:"no-such-rewriter" crasher with
  | Ok (Protocol.Error _) -> ()
  | r ->
      Alcotest.failf "unknown approach: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* Garbage binary bytes: typed error. *)
  (match
     Client.call c
       (Protocol.Rewrite
          {
            approach = "ours/jt";
            jobs = 1;
            payload = Protocol.Full "not a binfile";
          })
   with
  | Ok (Protocol.Error _) -> ()
  | r ->
      Alcotest.failf "garbage binfile: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* The daemon survived all of it and still rewrites. *)
  (match Client.rewrite c ~approach:"ours/jt" crasher with
  | Ok (Protocol.Rewritten _) -> ()
  | r ->
      Alcotest.failf "daemon not serving after crashes: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  let st = Server.stats srv in
  Alcotest.(check bool) "errors were counted" true (st.Server.errors >= 3)

(* A garbage *frame* (valid length prefix, junk payload) gets a typed
   error response and the connection keeps working. *)
let malformed_frame () =
  let bin = first_bench Arch.X86_64 in
  with_server ~workers:1 () @@ fun _srv path ->
  let c = Client.connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let fd = Client.fd c in
  Protocol.write_frame fd "complete nonsense";
  (match Protocol.read_frame fd with
  | Some p -> (
      match Protocol.response_of_payload p with
      | Ok (Protocol.Error _) -> ()
      | Ok r -> Alcotest.failf "garbage frame: %s" (response_label r)
      | Error m -> Alcotest.failf "garbage frame: bad response: %s" m)
  | None -> Alcotest.fail "server closed connection on garbage frame");
  match Client.rewrite c ~approach:"ours/jt" bin with
  | Ok (Protocol.Rewritten _) -> ()
  | r ->
      Alcotest.failf "connection dead after garbage frame: %s"
        (match r with Ok x -> response_label x | Error m -> m)

(* ------------------------------------------------------------------ *)
(* Telemetry: Stats totals == served stream, flight recorder, and the  *)
(* observation-only contract                                           *)
(* ------------------------------------------------------------------ *)

let scrape ?(flight = false) path =
  Client.with_connection path @@ fun c ->
  match Client.stats c ~flight () with
  | Ok (Protocol.StatsSnapshot { snap; flight }) -> (snap, flight)
  | r ->
      Alcotest.failf "stats scrape: %s"
        (match r with Ok x -> response_label x | Error m -> m)

let counter snap name =
  Option.value ~default:0 (Metrics.find_counter snap name)

(* The daemon's aggregated totals must exactly equal the served stream:
   serve.requests and the per-approach × per-outcome latency histogram
   counts are pinned against the requests we just sent, and the trace.*
   counter totals against the sum of the per-request counter snapshots
   the responses themselves carried. Scrapes must not show up anywhere:
   a scrape is a reading of the instruments, not a flight. *)
let stats_totals () =
  let bin_a = first_bench Arch.X86_64 in
  let bin_b = first_bench Arch.Aarch64 in
  with_server ~workers:2 () @@ fun _srv path ->
  let snap0, _ = scrape path in
  Alcotest.(check int) "fresh daemon: no requests" 0
    (counter snap0 "serve.requests");
  Client.with_connection path @@ fun c ->
  let sum = Hashtbl.create 32 in
  let fold counters =
    List.iter
      (fun (k, v) ->
        Hashtbl.replace sum k (v + Option.value ~default:0 (Hashtbl.find_opt sum k)))
      counters
  in
  let rewrite ?(jobs = 1) bin =
    match Client.rewrite c ~approach:"ours/jt" ~jobs bin with
    | Ok (Protocol.Rewritten { counters; _ }) -> fold counters
    | r ->
        Alcotest.failf "rewrite: %s"
          (match r with Ok x -> response_label x | Error m -> m)
  in
  (* Three rewrites (the repeat hits the shared cache — its counters
     differ from the first's, which is exactly why we sum what each
     response reported rather than 3 × solo). The repeat runs at jobs=2
     so its memo key differs from the first's: this test pins the
     telemetry of *scheduled* requests; the memo fast path (which folds
     no trace) has its own test. Counter totals are jobs-independent,
     so the sum-of-responses check is unaffected. *)
  rewrite bin_a;
  rewrite bin_b;
  rewrite ~jobs:2 bin_a;
  let cls =
    match Client.classify c ~approach:"ours/jt" ~jobs:1 bin_a with
    | Ok (Protocol.Classified { cls; counters; _ }) ->
        fold counters;
        cls
    | r ->
        Alcotest.failf "classify: %s"
          (match r with Ok x -> response_label x | Error m -> m)
  in
  let snap, _ = scrape path in
  Alcotest.(check int) "serve.requests == served stream" 4
    (counter snap "serve.requests");
  Alcotest.(check int) "no errors" 0 (counter snap "serve.errors");
  Alcotest.(check int) "rewritten outcomes" 3
    (counter snap "serve.responses:rewritten");
  (match Metrics.find_histo snap "request.latency:ours/jt:rewritten" with
  | Some h ->
      Alcotest.(check int) "rewrite latency histogram count" 3
        h.Metrics.h_count;
      Alcotest.(check int) "bucket counts sum to h_count" h.Metrics.h_count
        (List.fold_left (fun a (_, n) -> a + n) 0 h.Metrics.h_buckets)
  | None -> Alcotest.fail "missing rewrite latency histogram");
  let cls_kind =
    match Matrix.cls_to_string cls with
    | s -> (
        match String.index_opt s ':' with
        | Some i -> String.sub s 0 i
        | None -> s)
  in
  (match
     Metrics.find_histo snap
       ("request.latency:ours/jt:classified-" ^ cls_kind)
   with
  | Some h ->
      Alcotest.(check int) "classify latency histogram count" 1
        h.Metrics.h_count
  | None -> Alcotest.fail "missing classify latency histogram");
  (* trace.* totals == sum of the per-request counters the responses
     carried: the registry aggregated exactly the served stream. *)
  Hashtbl.iter
    (fun k v ->
      Alcotest.(check int)
        (Printf.sprintf "trace.%s == sum of response counters" k)
        v
        (counter snap ("trace." ^ k)))
    sum;
  Alcotest.(check bool) "stream recorded some counters" true
    (Hashtbl.length sum > 0);
  (* Scheduler telemetry saw the four scheduled jobs, and nothing is
     left queued or running after the last response. *)
  Alcotest.(check int) "sched.jobs == scheduled requests" 4
    (counter snap "sched.jobs");
  (match Metrics.find_histo snap "sched.queue_wait" with
  | Some h -> Alcotest.(check int) "queue-wait observations" 4 h.Metrics.h_count
  | None -> Alcotest.fail "missing queue-wait histogram");
  Alcotest.(check int) "drained: queue_depth gauge" 0
    (Option.value ~default:0 (Metrics.find_gauge snap "sched.queue_depth"));
  Alcotest.(check int) "drained: in_flight gauge" 0
    (Option.value ~default:0 (Metrics.find_gauge snap "sched.in_flight"));
  (* Scrapes are invisible: this is the third scrape and the registry
     still reports the same served stream. *)
  let snap', _ = scrape path in
  Alcotest.(check int) "scrapes don't count as requests" 4
    (counter snap' "serve.requests");
  Alcotest.(check int) "scrapes don't error" 0 (counter snap' "serve.errors")

(* The flight recorder retains the full trace of exactly the errored
   request, ranks the slowest, and keeps its ring bounded. *)
let flight_recorder () =
  let entries = Corpus.generate ~seed:7 ~count:9 in
  let crasher = Corpus.build (List.nth entries 8) in
  let bin = first_bench Arch.X86_64 in
  let fl = Flight.create ~ring:4 ~slowest:2 ~errors:4 () in
  with_server ~workers:1 ~flight:fl () @@ fun srv path ->
  Client.with_connection path @@ fun c ->
  let rewrite approach b =
    match Client.rewrite c ~approach ~jobs:1 b with r -> r
  in
  (match rewrite "ours/jt" bin with
  | Ok (Protocol.Rewritten _) -> ()
  | r ->
      Alcotest.failf "warmup rewrite: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* Satellite: the Error frame carries the request's counter snapshot
     up to the crash, like every success frame. *)
  (match rewrite "insn-patching" crasher with
  | Ok (Protocol.Error { counters; _ }) ->
      Alcotest.(check bool) "Error response carries counters" true
        (counters <> [])
  | r ->
      Alcotest.failf "crasher: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  List.iter
    (fun _ ->
      match rewrite "ours/jt" bin with
      | Ok (Protocol.Rewritten _) -> ()
      | r ->
          Alcotest.failf "filler rewrite: %s"
            (match r with Ok x -> response_label x | Error m -> m))
    [ (); (); (); () ];
  let snap = Flight.snapshot (Server.flight srv) in
  Alcotest.(check int) "all requests recorded" 6 snap.Flight.fl_recorded;
  Alcotest.(check int) "ring stays bounded" 4
    (List.length snap.Flight.fl_recent);
  Alcotest.(check bool) "slowest stays bounded" true
    (List.length snap.Flight.fl_slowest <= 2);
  (match snap.Flight.fl_errors with
  | [ (s, trace) ] ->
      Alcotest.(check string) "errored approach" "insn-patching"
        s.Flight.fs_approach;
      Alcotest.(check string) "errored outcome" "error" s.Flight.fs_outcome;
      Alcotest.(check bool) "errored flag" true s.Flight.fs_errored;
      Alcotest.(check bool) "full trace retained" true
        (String.length trace > 0
        && String.sub trace 0 1 = "{"
        (* the retained document is the request's icfg-trace/1 dump *)
        && astr_contains trace "icfg-trace/1")
  | l ->
      Alcotest.failf "expected exactly the errored request, got %d"
        (List.length l));
  (* The same dump travels the wire on Stats{flight=true}. *)
  let _, fljson = scrape ~flight:true path in
  match fljson with
  | Some f ->
      Alcotest.(check bool) "wire dump is icfg-flight/1" true
        (astr_contains f "icfg-flight/1");
      Alcotest.(check bool) "wire dump names the errored approach" true
        (astr_contains f "insn-patching")
  | None -> Alcotest.fail "Stats{flight=true} carried no dump"

(* Observation-only: the responses a client sees are byte-identical
   whether or not anyone is scraping the daemon. *)
let observation_only () =
  let bin_a = first_bench Arch.X86_64 in
  let bin_b = first_bench Arch.Aarch64 in
  let serve_stream ~scraped =
    with_server ~workers:1 () @@ fun _srv path ->
    Client.with_connection path @@ fun c ->
    List.map
      (fun b ->
        if scraped then ignore (scrape ~flight:true path);
        let r =
          match Client.rewrite c ~approach:"ours/jt" ~jobs:1 b with
          | Ok r -> Protocol.response_to_payload r
          | Error m -> Alcotest.failf "transport: %s" m
        in
        if scraped then ignore (scrape path);
        r)
      [ bin_a; bin_b; bin_a ]
  in
  let quiet = serve_stream ~scraped:false in
  let watched = serve_stream ~scraped:true in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "response %d byte-identical under scraping" i)
        true (a = b))
    (List.combine quiet watched)

(* ------------------------------------------------------------------ *)
(* Incremental protocol: sparse patches, the binary store, the memo    *)
(* ------------------------------------------------------------------ *)

(* Pure codec-level edge cases for [apply_patch]/[diff_ranges]: empty
   deltas, truncation/extension via total_len alone, out-of-bounds and
   overlapping ranges as typed Errors, and the round-trip law. *)
let patch_codec () =
  let base = "hello, world of binaries" in
  let apply ~base ~total_len ranges =
    Protocol.apply_patch ~base ~total_len ranges
  in
  let expect_ok what = function
    | Stdlib.Ok s -> s
    | Stdlib.Error m -> Alcotest.failf "%s: unexpected Error %s" what m
  in
  let expect_err what = function
    | Stdlib.Ok _ -> Alcotest.failf "%s: bad patch accepted" what
    | Stdlib.Error _ -> ()
  in
  Alcotest.(check string) "empty delta is identity" base
    (expect_ok "identity" (apply ~base ~total_len:(String.length base) []));
  Alcotest.(check string) "total_len truncates" "hello"
    (expect_ok "truncate" (apply ~base ~total_len:5 []));
  Alcotest.(check string) "total_len zero-extends" "ab\x00\x00"
    (expect_ok "extend" (apply ~base:"ab" ~total_len:4 []));
  Alcotest.(check string) "in-range blit" "HELLO, world of binaries"
    (expect_ok "blit"
       (apply ~base ~total_len:(String.length base) [ (0, "HELLO") ]));
  expect_err "negative offset" (apply ~base ~total_len:5 [ (-1, "x") ]);
  expect_err "range past total_len" (apply ~base ~total_len:5 [ (4, "xy") ]);
  expect_err "overlapping ranges"
    (apply ~base ~total_len:10 [ (0, "abc"); (2, "def") ]);
  expect_err "negative total_len" (apply ~base ~total_len:(-1) []);
  Alcotest.(check bool) "identical strings diff to empty" true
    (Protocol.diff_ranges ~base "hello, world of binaries" = []);
  (* Round-trip law: apply (diff base target) base == target, including
     pure truncations/extensions and disjoint multi-site edits. *)
  List.iter
    (fun (b, target) ->
      let ranges = Protocol.diff_ranges ~base:b target in
      let got =
        expect_ok "round-trip"
          (apply ~base:b ~total_len:(String.length target) ranges)
      in
      Alcotest.(check string) "diff/apply round-trip" target got)
    [
      ("", "");
      ("", "abc");
      ("abc", "");
      ("abcdef", "abcdef");
      ("abcdef", "abcdeX");
      ("abcdef", "Xbcdef");
      ("short", "a much longer replacement string");
      ("a much longer base string than the target", "tiny");
      ( String.make 400 'a',
        String.make 100 'a' ^ "EDIT" ^ String.make 196 'a' ^ "TAIL"
        ^ String.make 100 'a' );
    ]

(* The daemon-side incremental protocol: Ref before registration is a
   typed NeedFull; after registration Ref and Patch rewrites are
   byte-identical to full uploads; an unreconstructible patch is a typed
   Error; eviction turns Refs into NeedFull and the client-side fallback
   heals the store — and through all of it the daemon keeps serving. *)
let incremental_protocol () =
  let bin_a = first_bench Arch.X86_64 in
  let str_a = Binfile.to_string bin_a in
  let dig_a = Icfg_service.Store.digest str_a in
  let edited =
    match Runner.perturb_function (Runner.parse bin_a) with
    | Some (b, _fname) -> b
    | None -> Alcotest.fail "no perturbable function in first bench"
  in
  let str_e = Binfile.to_string edited in
  with_server ~workers:1 () @@ fun _srv path ->
  Client.with_connection path @@ fun c ->
  (* Ref before any upload: typed NeedFull naming the digest. *)
  (match Client.rewrite_payload c ~approach:"ours/jt" (Protocol.Ref dig_a) with
  | Ok (Protocol.NeedFull { digest }) ->
      Alcotest.(check string) "NeedFull names the digest" dig_a digest
  | r ->
      Alcotest.failf "unregistered ref: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (match Client.register_bytes c str_a with
  | Ok (Protocol.Registered { digest }) ->
      Alcotest.(check string) "Registered echoes the digest" dig_a digest
  | r ->
      Alcotest.failf "register: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  let rewritten what = function
    | Ok (Protocol.Rewritten { bin; _ }) -> bin
    | r ->
        Alcotest.failf "%s: %s" what
          (match r with Ok x -> response_label x | Error m -> m)
  in
  let by_ref =
    rewritten "by-ref rewrite"
      (Client.rewrite_payload c ~approach:"ours/jt" (Protocol.Ref dig_a))
  in
  let full =
    rewritten "full rewrite" (Client.rewrite c ~approach:"ours/jt" bin_a)
  in
  Alcotest.(check bool) "ref rewrite == full rewrite bytes" true
    (by_ref = full);
  (* A sparse patch of a one-function edit reconstructs and rewrites
     byte-identically to uploading the edited binary whole. *)
  let patch =
    Protocol.Patch
      {
        base = dig_a;
        total_len = String.length str_e;
        ranges = Protocol.diff_ranges ~base:str_a str_e;
      }
  in
  let by_patch =
    rewritten "patched rewrite"
      (Client.rewrite_payload c ~approach:"ours/jt" patch)
  in
  let full_e =
    rewritten "full edited rewrite"
      (Client.rewrite c ~approach:"ours/jt" edited)
  in
  Alcotest.(check bool) "patched rewrite == full edited rewrite" true
    (by_patch = full_e);
  (* An unreconstructible patch (overlap, OOB) is a typed Error — and the
     connection keeps working afterwards. *)
  List.iter
    (fun (what, ranges) ->
      match
        Client.rewrite_payload c ~approach:"ours/jt"
          (Protocol.Patch { base = dig_a; total_len = 16; ranges })
      with
      | Ok (Protocol.Error _) -> ()
      | r ->
          Alcotest.failf "%s: %s" what
            (match r with Ok x -> response_label x | Error m -> m))
    [
      ("overlapping patch", [ (0, "abc"); (1, "xyz") ]);
      ("out-of-bounds patch", [ (12, "abcdefgh") ]);
    ];
  (match Client.ping c with
  | Ok Protocol.Pong -> ()
  | _ -> Alcotest.fail "daemon dead after bad patches")

(* Eviction: a store sized for one binary forgets the older of two
   registrations; the client-side [~fallback] turns the NeedFull into a
   full upload that re-registers the bytes, healing later Refs. *)
let eviction_needfull_heals () =
  let bin_a = first_bench Arch.X86_64 in
  let bin_b = first_bench Arch.Aarch64 in
  let str_a = Binfile.to_string bin_a in
  let str_b = Binfile.to_string bin_b in
  let dig_a = Icfg_service.Store.digest str_a in
  let store_bytes = max (String.length str_a) (String.length str_b) in
  with_server ~workers:1 ~store_bytes () @@ fun srv path ->
  Client.with_connection path @@ fun c ->
  let registered what r =
    match r with
    | Ok (Protocol.Registered _) -> ()
    | r ->
        Alcotest.failf "%s: %s" what
          (match r with Ok x -> response_label x | Error m -> m)
  in
  registered "register A" (Client.register_bytes c str_a);
  registered "register B (evicts A)" (Client.register_bytes c str_b);
  (match
     Client.classify_payload c ~approach:"ours/jt" ~jobs:1 (Protocol.Ref dig_a)
   with
  | Ok (Protocol.NeedFull { digest }) ->
      Alcotest.(check string) "evicted base answers NeedFull" dig_a digest
  | r ->
      Alcotest.failf "evicted ref: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* The transparent fallback: same Ref, now with the bytes on hand. *)
  (match
     Client.classify_payload c ~approach:"ours/jt" ~jobs:1 ~fallback:str_a
       (Protocol.Ref dig_a)
   with
  | Ok (Protocol.Classified _) -> ()
  | r ->
      Alcotest.failf "fallback classify: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* The fallback's full upload re-registered A: the same Ref now works
     without any bytes on hand. *)
  (match
     Client.classify_payload c ~approach:"ours/jt" ~jobs:1 (Protocol.Ref dig_a)
   with
  | Ok (Protocol.Classified _) -> ()
  | r ->
      Alcotest.failf "healed ref: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  let snap = Server.snapshot srv in
  Alcotest.(check int) "two NeedFull responses booked" 2
    (counter snap "serve.needfull");
  Alcotest.(check bool) "store eviction booked" true
    (counter snap "store.evict_lru" >= 1)

(* Bounds: an over-limit frame and an over-capacity Register both get
   typed [Rejected] responses — the connection survives both. *)
let bounds_rejection () =
  let bin = first_bench Arch.X86_64 in
  let str = Binfile.to_string bin in
  (* A daemon whose frame limit is far below the binary. *)
  with_server ~workers:1 ~max_frame:1024 () (fun _srv path ->
      Client.with_connection path @@ fun c ->
      Alcotest.(check bool) "test binary is over the frame limit" true
        (String.length str > 1024);
      (match Client.rewrite c ~approach:"ours/jt" bin with
      | Ok (Protocol.Rejected { reason }) ->
          Alcotest.(check bool) "rejection names the limit" true
            (astr_contains reason "1024")
      | r ->
          Alcotest.failf "oversized frame: %s"
            (match r with Ok x -> response_label x | Error m -> m));
      match Client.ping c with
      | Ok Protocol.Pong -> ()
      | _ -> Alcotest.fail "connection dead after oversized frame");
  (* A daemon whose whole store is smaller than the upload. *)
  with_server ~workers:1 ~store_bytes:100 () (fun srv path ->
      Client.with_connection path @@ fun c ->
      (match Client.register_bytes c str with
      | Ok (Protocol.Rejected { reason }) ->
          Alcotest.(check bool) "rejection names the capacity" true
            (astr_contains reason "store capacity")
      | r ->
          Alcotest.failf "over-capacity register: %s"
            (match r with Ok x -> response_label x | Error m -> m));
      (match Client.ping c with
      | Ok Protocol.Pong -> ()
      | _ -> Alcotest.fail "connection dead after rejected register");
      let snap = Server.snapshot srv in
      Alcotest.(check int) "store.rejected booked" 1
        (counter snap "store.rejected");
      Alcotest.(check bool) "serve.rejected booked" true
        (counter snap "serve.rejected" >= 1))

(* Whole-response memoization: a byte-identical replay answers with the
   stored bytes of the first pipeline run — same wire bytes, no
   scheduler traffic — and equals what a fresh pipeline would produce. *)
let response_memo () =
  let bin = first_bench Arch.X86_64 in
  let first_payload path =
    Client.with_connection path @@ fun c ->
    match Client.rewrite c ~approach:"ours/jt" ~jobs:1 bin with
    | Ok r -> Protocol.response_to_payload r
    | Error m -> Alcotest.failf "transport: %s" m
  in
  with_server ~workers:1 () @@ fun srv path ->
  let p1 = first_payload path in
  let snap1 = Server.snapshot srv in
  let p2 = first_payload path in
  let snap2 = Server.snapshot srv in
  Alcotest.(check bool) "replay is byte-identical" true (p1 = p2);
  Alcotest.(check int) "first request missed the memo" 0
    (counter snap1 "response_cache.hit");
  Alcotest.(check int) "replay hit the memo" 1
    (counter snap2 "response_cache.hit");
  Alcotest.(check int) "replay never entered the scheduler"
    (counter snap1 "sched.jobs")
    (counter snap2 "sched.jobs");
  Alcotest.(check int) "both count as served requests" 2
    (counter snap2 "serve.requests");
  Alcotest.(check int) "both book the rewritten outcome" 2
    (counter snap2 "serve.responses:rewritten");
  (* Observation-only: a fresh daemon's pipeline-computed response equals
     the memoized replay byte-for-byte (fresh cache both times, so the
     per-request counters the payload embeds agree too). *)
  let p3 = with_server ~workers:1 () (fun _srv2 path2 -> first_payload path2) in
  Alcotest.(check bool) "memoized replay == fresh pipeline response" true
    (p2 = p3)

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "protocol codec round-trips" `Quick codec_roundtrip;
        Alcotest.test_case "scheduler bound/pause/drain" `Quick scheduler_unit;
        Alcotest.test_case "response equivalence (mode x ISA)" `Slow
          response_equivalence;
        Alcotest.test_case "concurrent-client determinism" `Slow
          concurrent_determinism;
        Alcotest.test_case "backpressure: exactly M refusals" `Quick
          backpressure;
        Alcotest.test_case "trace isolation across requests" `Quick isolation;
        Alcotest.test_case "crash containment" `Slow crash_containment;
        Alcotest.test_case "malformed frame containment" `Quick
          malformed_frame;
        Alcotest.test_case "stats totals == served stream" `Quick
          stats_totals;
        Alcotest.test_case "flight recorder retention" `Quick flight_recorder;
        Alcotest.test_case "telemetry is observation-only" `Quick
          observation_only;
        Alcotest.test_case "patch codec edge cases" `Quick patch_codec;
        Alcotest.test_case "incremental protocol (ref/patch)" `Slow
          incremental_protocol;
        Alcotest.test_case "eviction -> NeedFull -> fallback heals" `Slow
          eviction_needfull_heals;
        Alcotest.test_case "bounds: typed Rejected refusals" `Quick
          bounds_rejection;
        Alcotest.test_case "whole-response memoization" `Quick response_memo;
      ] );
  ]
