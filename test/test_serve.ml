(* Concurrency/isolation battery for the [icfg serve] daemon.

   Contracts under test (lib/service/*.mli):

   (a) response equivalence — a binary rewritten through the daemon is
       byte-identical to the one-shot in-process path, for every
       mode x ISA;
   (b) determinism — concurrent clients submitting a fixed corpus slice
       get identical per-request classifications regardless of client
       count, arrival interleaving, and jobs;
   (c) backpressure — a queue bound of K with K+M in-flight requests
       yields exactly M typed Overloaded refusals and zero crashes, and
       the daemon keeps serving afterwards;
   (d) isolation — two concurrent requests' trace counter totals each
       equal their solo-run totals (per-domain ambient traces: no
       cross-request bleed);
   (e) crash containment — a request whose driver raises comes back as a
       typed Error (or Crashed classification) frame and the daemon
       lives; ditto malformed frames and unknown approaches. *)

open Icfg_isa
open Icfg_core
module Runner = Icfg_harness.Runner
module Matrix = Icfg_harness.Matrix
module Corpus = Icfg_workloads.Corpus
module Binfile = Icfg_obj.Binfile
module Protocol = Icfg_service.Protocol
module Scheduler = Icfg_service.Scheduler
module Server = Icfg_service.Server
module Client = Icfg_service.Client
module Sweep = Icfg_service.Sweep

let sock_counter = ref 0

let with_server ?bound ?workers ?jobs ?cache () f =
  incr sock_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "icfg-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  let srv = Server.start ~path ?bound ?workers ?jobs ?cache () in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv path)

let first_bench arch =
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  fst (Icfg_workloads.Spec_suite.compile arch bench)

let response_label = function
  | Protocol.Pong -> "pong"
  | Protocol.Rewritten _ -> "rewritten"
  | Protocol.Refused _ -> "refused"
  | Protocol.Classified _ -> "classified"
  | Protocol.Error m -> "error: " ^ m
  | Protocol.Overloaded -> "overloaded"

(* ------------------------------------------------------------------ *)
(* Protocol codec round-trips                                          *)
(* ------------------------------------------------------------------ *)

let codec_roundtrip () =
  let reqs =
    [
      Protocol.Ping;
      Protocol.Rewrite { approach = "ours/jt"; jobs = 4; bin = "\x00\xffbin" };
      Protocol.Classify { approach = "srbi"; jobs = 0; bin = "" };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.request_of_payload (Protocol.request_to_payload r) with
      | Ok r' -> Alcotest.(check bool) "request round-trip" true (r = r')
      | Error m -> Alcotest.failf "request decode failed: %s" m)
    reqs;
  let resps =
    [
      Protocol.Pong;
      Protocol.Rewritten
        { bin = String.make 64 '\x7f'; counters = [ ("a", 1); ("b", -2) ] };
      Protocol.Refused { reason = "non-PIE"; counters = [] };
      Protocol.Classified
        {
          cls = Matrix.Refused "feature/non-pie";
          ns = 1234.5;
          counters = [ ("cache.hit", 9) ];
        };
      Protocol.Classified
        { cls = Matrix.Verified; ns = 0.; counters = [] };
      Protocol.Error "boom";
      Protocol.Overloaded;
    ]
  in
  List.iter
    (fun r ->
      match Protocol.response_of_payload (Protocol.response_to_payload r) with
      | Ok r' -> Alcotest.(check bool) "response round-trip" true (r = r')
      | Error m -> Alcotest.failf "response decode failed: %s" m)
    resps;
  (* Malformed payloads decode to Error, never raise. *)
  List.iter
    (fun p ->
      match Protocol.request_of_payload p with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "garbage accepted as request")
    [ ""; "bogus"; "isrv1"; "isrv1\xff"; "isrv1\x02\x04\x00\x00\x00ab" ];
  (* cls codec is total on the wire forms and rejects junk. *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        "cls round-trip" true
        (Matrix.cls_of_string (Matrix.cls_to_string c) = Some c))
    [
      Matrix.Verified;
      Matrix.Diverged;
      Matrix.Refused "tramp/trap";
      Matrix.Crashed "Not_encodable(\"x\")";
    ];
  Alcotest.(check bool)
    "junk cls rejected" true
    (Matrix.cls_of_string "meh" = None)

(* ------------------------------------------------------------------ *)
(* Scheduler: bound, pause/resume, shutdown drain                      *)
(* ------------------------------------------------------------------ *)

let scheduler_unit () =
  let s = Scheduler.create ~bound:2 ~workers:1 () in
  Scheduler.pause s;
  let t1 = Scheduler.submit s (fun () -> 1) in
  let t2 = Scheduler.submit s (fun () -> 2) in
  let t3 = Scheduler.submit s (fun () -> 3) in
  Alcotest.(check bool) "two accepted" true (t1 <> None && t2 <> None);
  Alcotest.(check bool) "third refused at bound" true (t3 = None);
  Alcotest.(check int) "pending counts queued" 2 (Scheduler.pending s);
  Scheduler.resume s;
  (match (t1, t2) with
  | Some a, Some b ->
      Alcotest.(check int) "first result" 1 (Scheduler.await a);
      Alcotest.(check int) "second result" 2 (Scheduler.await b)
  | _ -> Alcotest.fail "accepted tickets missing");
  (* Shutdown drains accepted work and joins; later submits refuse. *)
  Scheduler.pause s;
  let t4 = Scheduler.submit s (fun () -> 4) in
  Scheduler.shutdown s;
  (match t4 with
  | Some t -> Alcotest.(check int) "drained on shutdown" 4 (Scheduler.await t)
  | None -> Alcotest.fail "submit before shutdown refused");
  Alcotest.(check bool)
    "submit after shutdown refused" true
    (Scheduler.submit s (fun () -> 5) = None);
  (* A raising job re-raises at await, not in the executor. *)
  let s2 = Scheduler.create ~bound:2 ~workers:1 () in
  (match Scheduler.submit s2 (fun () -> failwith "job boom") with
  | Some t -> (
      match Scheduler.await t with
      | _ -> Alcotest.fail "raising job returned"
      | exception Failure m -> Alcotest.(check string) "re-raised" "job boom" m)
  | None -> Alcotest.fail "submit refused");
  Scheduler.shutdown s2

(* ------------------------------------------------------------------ *)
(* (a) response equivalence: daemon == one-shot, every mode x ISA      *)
(* ------------------------------------------------------------------ *)

let response_equivalence () =
  with_server ~workers:2 () @@ fun _srv path ->
  Client.with_connection path @@ fun c ->
  List.iter
    (fun arch ->
      let bin = first_bench arch in
      List.iter
        (fun mode ->
          let what =
            Printf.sprintf "%s/%s" (Arch.name arch) (Mode.name mode)
          in
          (* The daemon path: roster driver behind the wire protocol. *)
          let daemon_bytes =
            match Client.rewrite c ~approach:("ours/" ^ Mode.name mode) bin with
            | Ok (Protocol.Rewritten { bin; _ }) -> bin
            | Ok r -> Alcotest.failf "%s: daemon said %s" what (response_label r)
            | Error m -> Alcotest.failf "%s: transport error %s" what m
          in
          (* The one-shot path: same options, no daemon, no cache. *)
          let rw =
            Runner.rewrite
              ~options:{ Rewriter.default_options with Rewriter.mode }
              ~jobs:1 bin
          in
          let oneshot_bytes =
            Bytes.to_string (Binfile.to_bytes rw.Rewriter.rw_binary)
          in
          Alcotest.(check bool)
            (what ^ ": daemon bytes == one-shot bytes")
            true
            (daemon_bytes = oneshot_bytes))
        Mode.all)
    Arch.all

(* ------------------------------------------------------------------ *)
(* (b) determinism under concurrent clients / jobs                     *)
(* ------------------------------------------------------------------ *)

let strip (r : Matrix.row) = { r with Matrix.row_p50_ns = 0.; row_p95_ns = 0. }

let concurrent_determinism () =
  let seed = 11 and count = 6 in
  let d1 = Sweep.run ~seed ~count ~clients:1 ~jobs:1 () in
  let d4 = Sweep.run ~seed ~count ~clients:4 ~jobs:2 () in
  let m = Matrix.run ~seed ~count ~jobs:1 () in
  Alcotest.(check int) "no transport errors (serial)" 0 d1.Sweep.sw_errors;
  Alcotest.(check int) "no transport errors (concurrent)" 0 d4.Sweep.sw_errors;
  Alcotest.(check int) "no refusals (serial)" 0 d1.Sweep.sw_overloaded;
  Alcotest.(check int) "no refusals (concurrent)" 0 d4.Sweep.sw_overloaded;
  let r1 = List.map strip d1.Sweep.sw_rows in
  let r4 = List.map strip d4.Sweep.sw_rows in
  let rm = List.map strip m.Matrix.m_rows in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: 1 client == 4 clients" a.Matrix.row_approach)
        true (a = b))
    r1 r4;
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: daemon == in-process" a.Matrix.row_approach)
        true (a = b))
    r4 rm

(* ------------------------------------------------------------------ *)
(* (c) backpressure: K-bounded queue, K+M in-flight, exactly M refused *)
(* ------------------------------------------------------------------ *)

let backpressure () =
  let k = 3 and m = 2 in
  let bin = first_bench Arch.X86_64 in
  with_server ~bound:k ~workers:1 () @@ fun srv path ->
  (* Park the executor so the queue fills deterministically: K requests
     queue, the next M find the queue at its bound. *)
  Scheduler.pause (Server.scheduler srv);
  let results = Array.make (k + m) None in
  let threads =
    List.init (k + m) (fun i ->
        Thread.create
          (fun () ->
            Client.with_connection path @@ fun c ->
            results.(i) <- Some (Client.rewrite c ~approach:"ours/jt" bin))
          ())
  in
  (* Wait until all K+M requests have reached the daemon: K parked in
     the queue, M already refused. *)
  let deadline = Unix.gettimeofday () +. 30. in
  let rec settle () =
    let st = Server.stats srv in
    if
      Scheduler.pending (Server.scheduler srv) = k
      && st.Server.overloaded = m
    then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "queue never settled: pending=%d overloaded=%d"
        (Scheduler.pending (Server.scheduler srv))
        (Server.stats srv).Server.overloaded
    else begin
      Thread.delay 0.01;
      settle ()
    end
  in
  settle ();
  Scheduler.resume (Server.scheduler srv);
  List.iter Thread.join threads;
  let count pred = Array.fold_left (fun n r -> if pred r then n + 1 else n) 0 results in
  Alcotest.(check int) "exactly M overloaded" m
    (count (function Some (Ok Protocol.Overloaded) -> true | _ -> false));
  Alcotest.(check int) "exactly K rewritten" k
    (count (function Some (Ok (Protocol.Rewritten _)) -> true | _ -> false));
  let st = Server.stats srv in
  Alcotest.(check int) "zero error responses" 0 st.Server.errors;
  Alcotest.(check int) "overloaded stat" m st.Server.overloaded;
  (* The refusals cost nothing: the daemon is still serving. *)
  Client.with_connection path @@ fun c ->
  (match Client.ping c with
  | Ok Protocol.Pong -> ()
  | r ->
      Alcotest.failf "daemon not serving after refusals: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  match Client.rewrite c ~approach:"ours/jt" bin with
  | Ok (Protocol.Rewritten _) -> ()
  | r ->
      Alcotest.failf "rewrite after refusals: %s"
        (match r with Ok x -> response_label x | Error m -> m)

(* ------------------------------------------------------------------ *)
(* (d) isolation: concurrent requests' counters == solo totals         *)
(* ------------------------------------------------------------------ *)

let solo_counters bin =
  let tr = Trace.create () in
  let cache = Cache.create () in
  Trace.with_current tr (fun () ->
      ignore (Runner.drive ~approach:"ours/jt" ~jobs:1 ~cache bin));
  Trace.counters tr

let isolation () =
  (* Two binaries with disjoint content: their cache keys are disjoint,
     so sharing the daemon cache cannot change either request's hit/miss
     counters — any difference from the solo totals is trace bleed. *)
  let bin_a = first_bench Arch.X86_64 in
  let bin_b = first_bench Arch.Aarch64 in
  let solo_a = solo_counters bin_a and solo_b = solo_counters bin_b in
  Alcotest.(check bool) "solo counters nonempty" true (solo_a <> []);
  with_server ~workers:2 () @@ fun _srv path ->
  let got = [| []; [] |] in
  let request i bin =
    Thread.create
      (fun () ->
        Client.with_connection path @@ fun c ->
        match Client.rewrite c ~approach:"ours/jt" ~jobs:1 bin with
        | Ok (Protocol.Rewritten { counters; _ }) -> got.(i) <- counters
        | r ->
            Alcotest.failf "request %d: %s" i
              (match r with Ok x -> response_label x | Error m -> m))
      ()
  in
  let ta = request 0 bin_a and tb = request 1 bin_b in
  Thread.join ta;
  Thread.join tb;
  Alcotest.(check bool)
    "request A counters == solo A totals" true (got.(0) = solo_a);
  Alcotest.(check bool)
    "request B counters == solo B totals" true (got.(1) = solo_b)

(* ------------------------------------------------------------------ *)
(* (e) crash containment: raising drivers, garbage frames, bad names   *)
(* ------------------------------------------------------------------ *)

let crash_containment () =
  (* Corpus seed 7, entry 8 (c0008-huge-jt) defeats insn-patching's
     encoder outright — self-validate that the driver still raises
     in-process, so this test fails loudly if the corpus shifts. *)
  let entries = Corpus.generate ~seed:7 ~count:9 in
  let crasher = Corpus.build (List.nth entries 8) in
  (match Runner.drive ~approach:"insn-patching" ~jobs:1 crasher with
  | exception _ -> ()
  | _ -> Alcotest.fail "expected insn-patching to raise on c0008-huge-jt");
  with_server ~workers:1 () @@ fun srv path ->
  Client.with_connection path @@ fun c ->
  (* A raising driver is a typed Error frame... *)
  (match Client.rewrite c ~approach:"insn-patching" crasher with
  | Ok (Protocol.Error _) -> ()
  | r ->
      Alcotest.failf "raising driver: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* ...and through the Matrix machinery, a typed Crashed cell. *)
  (match Client.classify c ~approach:"insn-patching" crasher with
  | Ok (Protocol.Classified { cls = Matrix.Crashed _; _ }) -> ()
  | r ->
      Alcotest.failf "raising driver (classify): %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* Unknown approach: typed error, not a dead daemon. *)
  (match Client.rewrite c ~approach:"no-such-rewriter" crasher with
  | Ok (Protocol.Error _) -> ()
  | r ->
      Alcotest.failf "unknown approach: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* Garbage binary bytes: typed error. *)
  (match
     Client.call c
       (Protocol.Rewrite { approach = "ours/jt"; jobs = 1; bin = "not a binfile" })
   with
  | Ok (Protocol.Error _) -> ()
  | r ->
      Alcotest.failf "garbage binfile: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  (* The daemon survived all of it and still rewrites. *)
  (match Client.rewrite c ~approach:"ours/jt" crasher with
  | Ok (Protocol.Rewritten _) -> ()
  | r ->
      Alcotest.failf "daemon not serving after crashes: %s"
        (match r with Ok x -> response_label x | Error m -> m));
  let st = Server.stats srv in
  Alcotest.(check bool) "errors were counted" true (st.Server.errors >= 3)

(* A garbage *frame* (valid length prefix, junk payload) gets a typed
   error response and the connection keeps working. *)
let malformed_frame () =
  let bin = first_bench Arch.X86_64 in
  with_server ~workers:1 () @@ fun _srv path ->
  let c = Client.connect path in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let fd = Client.fd c in
  Protocol.write_frame fd "complete nonsense";
  (match Protocol.read_frame fd with
  | Some p -> (
      match Protocol.response_of_payload p with
      | Ok (Protocol.Error _) -> ()
      | Ok r -> Alcotest.failf "garbage frame: %s" (response_label r)
      | Error m -> Alcotest.failf "garbage frame: bad response: %s" m)
  | None -> Alcotest.fail "server closed connection on garbage frame");
  match Client.rewrite c ~approach:"ours/jt" bin with
  | Ok (Protocol.Rewritten _) -> ()
  | r ->
      Alcotest.failf "connection dead after garbage frame: %s"
        (match r with Ok x -> response_label x | Error m -> m)

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "protocol codec round-trips" `Quick codec_roundtrip;
        Alcotest.test_case "scheduler bound/pause/drain" `Quick scheduler_unit;
        Alcotest.test_case "response equivalence (mode x ISA)" `Slow
          response_equivalence;
        Alcotest.test_case "concurrent-client determinism" `Slow
          concurrent_determinism;
        Alcotest.test_case "backpressure: exactly M refusals" `Quick
          backpressure;
        Alcotest.test_case "trace isolation across requests" `Quick isolation;
        Alcotest.test_case "crash containment" `Slow crash_containment;
        Alcotest.test_case "malformed frame containment" `Quick
          malformed_frame;
      ] );
  ]
