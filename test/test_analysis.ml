(* Analysis-layer tests: CFG construction, jump-table slicing vs. compiler
   ground truth, tail-call classification, function-pointer discovery, and
   liveness. *)

open Icfg_isa
open Icfg_codegen
open Icfg_analysis
module Binary = Icfg_obj.Binary

let compile ?pie arch prog = Compile.compile ?pie arch prog

(* Reuse the programs from the codegen tests. *)
let switch_prog = Test_codegen.switch_prog
let prog_fptr = Test_codegen.prog_fptr
let prog_tailcall = Test_codegen.prog_tailcall

let on_all_arches f = List.iter f Arch.all

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* CFG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cfg_basic () =
  on_all_arches (fun arch ->
      let bin, _ = compile arch Test_codegen.prog_loop in
      let sym = Option.get (Binary.symbol bin "main") in
      let cfg = Cfg.build bin sym in
      Alcotest.(check bool)
        (Arch.name arch ^ " has blocks")
        true
        (List.length cfg.Cfg.blocks >= 3);
      (* entry block exists *)
      let entry = Cfg.entry_block cfg in
      Alcotest.(check int) "entry start" sym.Icfg_obj.Symbol.addr entry.Cfg.b_start;
      (* a loop means some block has a backward edge *)
      let has_back_edge =
        List.exists
          (fun b ->
            List.exists (fun (d, _) -> d < b.Cfg.b_start) (Cfg.successors cfg b.Cfg.b_start))
          cfg.Cfg.blocks
      in
      Alcotest.(check bool) "back edge" true has_back_edge;
      (* no gaps in a fully-direct function *)
      Alcotest.(check (list (pair int int))) "no gaps" [] (Cfg.gaps cfg))

let test_cfg_blocks_partition () =
  (* Blocks must not overlap and each must end after it starts. *)
  on_all_arches (fun arch ->
      let bin, _ = compile arch (switch_prog Ir.Jt_plain) in
      List.iter
        (fun sym ->
          let cfg = Cfg.build bin sym in
          let rec check = function
            | a :: (b : Cfg.block) :: rest ->
                Alcotest.(check bool) "ordered" true (a.Cfg.b_end <= b.Cfg.b_start);
                check (b :: rest)
            | [ b ] -> Alcotest.(check bool) "nonempty" true (b.Cfg.b_end > b.Cfg.b_start)
            | [] -> ()
          in
          check cfg.Cfg.blocks)
        (Binary.func_symbols bin))

let test_cfg_call_edges () =
  on_all_arches (fun arch ->
      let bin, _ = compile arch Test_codegen.prog_calls in
      let sym = Option.get (Binary.symbol bin "main") in
      let cfg = Cfg.build bin sym in
      let add3 = (Option.get (Binary.symbol bin "add3")).Icfg_obj.Symbol.addr in
      let callees = List.filter_map snd cfg.Cfg.calls in
      Alcotest.(check bool)
        (Arch.name arch ^ " calls add3")
        true
        (List.mem add3 callees))

let test_cfg_skips_embedded_table () =
  (* On ppc64le the jump table is embedded in .text; traversal must not
     decode it as code. *)
  let bin, dbg = compile Arch.Ppc64le (switch_prog Ir.Jt_plain) in
  let sym = Option.get (Binary.symbol bin "classify") in
  let cfg = Cfg.build bin sym in
  let jt = List.hd dbg.Debug.jump_tables in
  let table_lo = jt.Debug.jt_table_addr in
  let table_hi = table_lo + (8 * jt.Debug.jt_count) in
  List.iter
    (fun b ->
      List.iter
        (fun (a, _, l) ->
          Alcotest.(check bool) "no insn inside table" false
            (a >= table_lo && a + l <= table_hi))
        b.Cfg.b_insns)
    cfg.Cfg.blocks;
  (* Without jump-table edges, the case bodies are gaps. *)
  Alcotest.(check bool) "has gaps" true (Cfg.gaps cfg <> [])

(* ------------------------------------------------------------------ *)
(* Jump tables                                                         *)
(* ------------------------------------------------------------------ *)

let resolve_tables ?(fm = Failure_model.ours) arch style =
  let bin, dbg = compile arch (switch_prog style) in
  let p = Parse.parse ~fm bin in
  (bin, dbg, p)

let test_jt_plain_resolves () =
  on_all_arches (fun arch ->
      let _, dbg, p = resolve_tables arch Ir.Jt_plain in
      let fa = Option.get (Parse.func p "classify") in
      Alcotest.(check bool) (Arch.name arch ^ " instrumentable") true fa.Parse.fa_instrumentable;
      match (fa.Parse.fa_tables, dbg.Debug.jump_tables) with
      | [ t ], [ g ] ->
          Alcotest.(check int) "jump addr" g.Debug.jt_jump_addr t.Jump_table.t_jump;
          Alcotest.(check int) "table addr" g.Debug.jt_table_addr t.Jump_table.t_table;
          Alcotest.(check int) "count" g.Debug.jt_count t.Jump_table.t_count;
          Alcotest.(check (list int))
            "targets" g.Debug.jt_targets t.Jump_table.t_targets;
          Alcotest.(check bool) "width" true (g.Debug.jt_entry_width = t.Jump_table.t_width);
          Alcotest.(check bool)
            "x86 base tied"
            (arch = Arch.X86_64)
            t.Jump_table.t_base_tied
      | ts, gs ->
          Alcotest.failf "%s: %d resolved vs %d ground truth" (Arch.name arch)
            (List.length ts) (List.length gs))

let test_jt_spilled_ours_vs_srbi () =
  on_all_arches (fun arch ->
      (* Ours tracks the spill and resolves. *)
      let _, dbg, p = resolve_tables arch Ir.Jt_spilled_base in
      let fa = Option.get (Parse.func p "classify") in
      Alcotest.(check bool) (Arch.name arch ^ " ours resolves") true
        fa.Parse.fa_instrumentable;
      (match (fa.Parse.fa_tables, dbg.Debug.jump_tables) with
      | [ t ], [ g ] ->
          Alcotest.(check (list int)) "targets" g.Debug.jt_targets t.Jump_table.t_targets
      | _ -> Alcotest.fail "expected one table");
      (* The SRBI-era model cannot. *)
      let _, _, p' = resolve_tables ~fm:Failure_model.srbi arch Ir.Jt_spilled_base in
      let fa' = Option.get (Parse.func p' "classify") in
      Alcotest.(check bool)
        (Arch.name arch ^ " srbi fails")
        false fa'.Parse.fa_instrumentable)

let test_jt_data_table_unresolvable () =
  on_all_arches (fun arch ->
      let _, _, p = resolve_tables arch Ir.Jt_data_table in
      let fa = Option.get (Parse.func p "classify") in
      Alcotest.(check bool)
        (Arch.name arch ^ " uninstrumentable")
        false fa.Parse.fa_instrumentable;
      Alcotest.(check bool) "reports writable table" true
        (match fa.Parse.fa_fail_reason with
        | Some r -> contains r "writable" || contains r "gaps"
        | None -> false))

let test_jt_bound_under () =
  on_all_arches (fun arch ->
      let fm =
        Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_under 2)
      in
      let bin, dbg, _ = resolve_tables arch Ir.Jt_plain in
      ignore bin;
      let bin2, _ = compile arch (switch_prog Ir.Jt_plain) in
      let p = Parse.parse ~fm bin2 in
      let fa = Option.get (Parse.func p "classify") in
      match fa.Parse.fa_tables with
      | [ t ] ->
          let g = List.hd dbg.Debug.jump_tables in
          Alcotest.(check int)
            (Arch.name arch ^ " under-approximated")
            (g.Debug.jt_count - 2) t.Jump_table.t_count
      | _ -> Alcotest.fail "expected one table")

let test_jt_bound_over_trimmed () =
  (* Over-approximation extends the table, but extension stops at the next
     known data boundary and infeasible targets are dropped. *)
  on_all_arches (fun arch ->
      let fm =
        Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_over 64)
      in
      let bin, dbg = compile arch (switch_prog Ir.Jt_plain) in
      let p = Parse.parse ~fm bin in
      let fa = Option.get (Parse.func p "classify") in
      match fa.Parse.fa_tables with
      | [ t ] ->
          let g = List.hd dbg.Debug.jump_tables in
          Alcotest.(check bool)
            (Arch.name arch ^ " at least truth")
            true
            (t.Jump_table.t_count >= g.Debug.jt_count);
          (* every ground-truth target must be covered *)
          List.iter
            (fun gt ->
              Alcotest.(check bool) "covers truth" true
                (List.mem gt t.Jump_table.t_targets))
            g.Debug.jt_targets
      | _ -> Alcotest.fail "expected one table")

let big_switch_prog n =
  Ir.program ~name:"bigswitch" ~main:"main"
    [
      Ir.func "classify" [ "x" ]
        [
          Ir.Switch
            ( Ir.Jt_plain,
              Bin (Band, Var "x", Int (n - 1)),
              Array.init n (fun k -> [ Ir.Return (Int (100 * (k + 1))) ]),
              [ Ir.Return (Int 0) ] );
        ];
      Ir.func "main" []
        [
          Ir.For
            ( "i",
              0,
              n + 2,
              [
                Ir.Call (Some "r", Direct "classify", [ Var "i" ]);
                Ir.Print (Var "r");
              ] );
          Ir.Return (Int 0);
        ];
    ]

let test_jt_aarch64_wide_entries () =
  (* A switch with many cases exceeds the 1-byte entry span, so the
     compiler emits 2-byte entries; the analysis must recover the width. *)
  let bin, dbg = compile Arch.Aarch64 (big_switch_prog 32) in
  let g = List.hd dbg.Debug.jump_tables in
  Alcotest.(check bool) "compiler chose W16" true
    (g.Debug.jt_entry_width = Insn.W16);
  let p = Parse.parse bin in
  let fa = Option.get (Parse.func p "classify") in
  match fa.Parse.fa_tables with
  | [ t ] ->
      Alcotest.(check bool) "width recovered" true (t.Jump_table.t_width = Insn.W16);
      Alcotest.(check int) "count" 32 t.Jump_table.t_count;
      Alcotest.(check (list int)) "targets" g.Debug.jt_targets t.Jump_table.t_targets
  | _ -> Alcotest.fail "one table"

let test_jt_slots_positional () =
  (* The positional slot list must line up with raw table entries: slot i
     corresponds to runtime index i (clone index-compatibility). *)
  on_all_arches (fun arch ->
      let bin, dbg = compile arch (switch_prog Ir.Jt_plain) in
      let p = Parse.parse bin in
      let fa = Option.get (Parse.func p "classify") in
      let t = List.hd fa.Parse.fa_tables in
      let g = List.hd dbg.Debug.jump_tables in
      Alcotest.(check int)
        (Arch.name arch ^ " slot count")
        g.Debug.jt_count
        (List.length t.Jump_table.t_slots);
      List.iteri
        (fun i slot ->
          match slot with
          | Some target ->
              Alcotest.(check int)
                (Printf.sprintf "%s slot %d" (Arch.name arch) i)
                (List.nth g.Debug.jt_targets i)
                target
          | None -> Alcotest.failf "slot %d infeasible" i)
        t.Jump_table.t_slots)

let test_known_data_trims_adjacent_tables () =
  (* Two adjacent tables in .rodata: over-approximating the first must stop
     at the second table's start (Assumption 2). *)
  let prog =
    Ir.program ~name:"twotables" ~main:"main"
      [
        Ir.func "c1" [ "x" ]
          [
            Ir.Switch
              ( Ir.Jt_plain,
                Bin (Band, Var "x", Int 3),
                Array.init 4 (fun k -> [ Ir.Return (Int k) ]),
                [ Ir.Return (Int 9) ] );
          ];
        Ir.func "c2" [ "x" ]
          [
            Ir.Switch
              ( Ir.Jt_plain,
                Bin (Band, Var "x", Int 3),
                Array.init 4 (fun k -> [ Ir.Return (Int (k * 2)) ]),
                [ Ir.Return (Int 9) ] );
          ];
        Ir.func "main" []
          [
            Ir.Call (Some "a", Direct "c1", [ Int 2 ]);
            Ir.Call (Some "b", Direct "c2", [ Int 3 ]);
            Ir.Print (Bin (Badd, Var "a", Var "b"));
            Ir.Return (Int 0);
          ];
      ]
  in
  (* x86: both tables in .rodata back to back *)
  let bin, dbg = compile Arch.X86_64 prog in
  let fm =
    Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_over 64)
  in
  let p = Parse.parse ~fm bin in
  let fa1 = Option.get (Parse.func p "c1") in
  let t1 = List.hd fa1.Parse.fa_tables in
  let g1 =
    List.find (fun g -> g.Debug.jt_func = "c1") dbg.Debug.jump_tables
  in
  let g2 =
    List.find (fun g -> g.Debug.jt_func = "c2") dbg.Debug.jump_tables
  in
  if g2.Debug.jt_table_addr > g1.Debug.jt_table_addr then
    (* extension capped before the second table *)
    Alcotest.(check bool) "capped at next table" true
      (t1.Jump_table.t_table
       + (t1.Jump_table.t_count * Insn.width_bytes t1.Jump_table.t_width)
      <= g2.Debug.jt_table_addr)

let test_guard_bound_matches_truth () =
  on_all_arches (fun arch ->
      let bin, dbg = compile arch (big_switch_prog 16) in
      let p = Parse.parse bin in
      let fa = Option.get (Parse.func p "classify") in
      let t = List.hd fa.Parse.fa_tables in
      let g = List.hd dbg.Debug.jump_tables in
      Alcotest.(check int) (Arch.name arch) g.Debug.jt_count t.Jump_table.t_count)

(* ------------------------------------------------------------------ *)
(* Tail calls                                                          *)
(* ------------------------------------------------------------------ *)

let test_indirect_tail_call_heuristics () =
  on_all_arches (fun arch ->
      let bin, _ = compile arch prog_tailcall in
      (* Ours: the layout heuristic accepts the frame-less function. *)
      let p = Parse.parse bin in
      let fa = Option.get (Parse.func p "indirect_tail") in
      Alcotest.(check bool) (Arch.name arch ^ " ours ok") true fa.Parse.fa_instrumentable;
      Alcotest.(check int) "classified tail jumps" 1
        (List.length fa.Parse.fa_tail_jumps);
      (* SRBI: no frame tear-down before the jump (frameless function), so
         the function is marked uninstrumentable. *)
      let p' = Parse.parse ~fm:Failure_model.srbi bin in
      let fa' = Option.get (Parse.func p' "indirect_tail") in
      Alcotest.(check bool)
        (Arch.name arch ^ " srbi fails")
        false fa'.Parse.fa_instrumentable)

(* ------------------------------------------------------------------ *)
(* Function pointers                                                   *)
(* ------------------------------------------------------------------ *)

let test_fptr_discovery () =
  on_all_arches (fun arch ->
      List.iter
        (fun pie ->
          let bin, dbg = compile ~pie arch prog_fptr in
          let p = Parse.parse bin in
          let truth_slots =
            List.filter_map
              (function
                | Debug.Fp_slot { slot; target; _ } -> Some (slot, target)
                | Debug.Fp_mater _ -> None)
              dbg.Debug.fptrs
          in
          let found_slots =
            List.filter_map
              (function
                | Func_ptr.Fp_slot { slot; target; _ } -> Some (slot, target)
                | _ -> None)
              p.Parse.fptrs
          in
          List.iter
            (fun (s, t) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s pie=%b finds slot 0x%x" (Arch.name arch) pie s)
                true
                (List.mem (s, t) found_slots))
            truth_slots;
          (* code materialization found *)
          let maters =
            List.filter
              (function Func_ptr.Fp_mater _ -> true | _ -> false)
              p.Parse.fptrs
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s pie=%b mater" (Arch.name arch) pie)
            true
            (List.length maters >= 1))
        [ false; true ])

let go_arith_prog adj =
  Ir.program ~name:"goarith"
    ~data:[ Ir.Word_addr ("g1", "goexit"); Ir.Word ("g2", 0) ]
    ~main:"main"
    [
      Ir.func "goexit" [] [ Ir.Nops 1; Ir.Print (Int 77); Ir.Return (Int 0) ];
      Ir.func "main" []
        [
          (* The Go idiom of Listing 1: load pointer, add, store. *)
          Ir.Set (Lglobal "g2", Bin (Badd, Global "g1", Int adj));
          Ir.Call (None, Via_ptr (Global "g2"), []);
          Ir.Return (Int 0);
        ];
    ]

let test_fptr_adjusted () =
  on_all_arches (fun arch ->
      let adj = if arch = Arch.X86_64 then 1 else 4 in
      let bin, _ = compile arch (go_arith_prog adj) in
      let p = Parse.parse bin in
      let adjusted =
        List.filter_map
          (function
            | Func_ptr.Fp_adjusted { target; adjust; _ } -> Some (target, adjust)
            | _ -> None)
          p.Parse.fptrs
      in
      let goexit = (Option.get (Binary.symbol bin "goexit")).Icfg_obj.Symbol.addr in
      Alcotest.(check bool)
        (Arch.name arch ^ " finds adjusted pointer")
        true
        (List.mem (goexit, adj) adjusted);
      Alcotest.(check (list int))
        (Arch.name arch ^ " derived targets")
        [ goexit + adj ]
        p.Parse.pointer_targets;
      (* The derived target must exist as a block leader in goexit's CFG. *)
      let fa = Option.get (Parse.func p "goexit") in
      Alcotest.(check bool)
        "block split at goexit+adj" true
        (Cfg.block_at fa.Parse.fa_cfg (goexit + adj) <> None))

let test_fptr_no_forward_slice_baseline () =
  on_all_arches (fun arch ->
      let adj = if arch = Arch.X86_64 then 1 else 4 in
      let bin, _ = compile arch (go_arith_prog adj) in
      let p = Parse.parse ~fm:Failure_model.srbi bin in
      let adjusted =
        List.filter (function Func_ptr.Fp_adjusted _ -> true | _ -> false) p.Parse.fptrs
      in
      Alcotest.(check int) (Arch.name arch ^ " baseline misses it") 0
        (List.length adjusted))

(* Regression: the dedup key for materializations was (sum of prov,
   length of prov), so distinct sites with equal provenance sums — e.g.
   [0x10;0x30] vs [0x20;0x20] — collided and one rewrite site was
   silently dropped in func-ptr mode. The key is now the full sorted
   provenance list plus the target. *)
let test_fptr_dedup_collision () =
  let t = 0x1000 in
  let sites =
    [
      Func_ptr.Fp_mater { prov = [ 0x10; 0x30 ]; target = t };
      Func_ptr.Fp_mater { prov = [ 0x20; 0x20 ]; target = t };
    ]
  in
  Alcotest.(check int)
    "equal-sum sites both survive" 2
    (List.length (Func_ptr.dedup sites));
  (* Same provenance set in a different order is the same site. *)
  Alcotest.(check int)
    "true duplicate collapses" 1
    (List.length
       (Func_ptr.dedup
          [
            Func_ptr.Fp_mater { prov = [ 0x10; 0x30 ]; target = t };
            Func_ptr.Fp_mater { prov = [ 0x30; 0x10 ]; target = t };
          ]));
  (* Same provenance, different targets: distinct sites. *)
  Alcotest.(check int)
    "distinct targets survive" 2
    (List.length
       (Func_ptr.dedup
          [
            Func_ptr.Fp_mater { prov = [ 0x10 ]; target = t };
            Func_ptr.Fp_mater { prov = [ 0x10 ]; target = t + 8 };
          ]))

(* The same collision driven through [Func_ptr.analyze], with hand-built
   CFGs: two Movhi/Orlo materializations of the same function entry whose
   instruction addresses sum equal ([0x10;0x30] vs [0x20;0x20]). *)
let test_fptr_dedup_analyze () =
  let arch = Arch.X86_64 in
  let bin, _ = compile arch Test_codegen.prog_loop in
  let entry = (Option.get (Binary.symbol bin "main")).Icfg_obj.Symbol.addr in
  let hi = entry asr 16 and lo = entry land 0xffff in
  let block insns =
    let a0 = match insns with (a, _, _) :: _ -> a | [] -> 0 in
    { Cfg.b_start = a0; b_end = a0 + 8; b_insns = insns }
  in
  let cfg blocks =
    {
      Cfg.fsym = Option.get (Binary.symbol bin "main");
      blocks;
      succs = Hashtbl.create 1;
      preds = Hashtbl.create 1;
      calls = [];
      ind_jumps = [];
      tail_targets = [];
    }
  in
  let b1 =
    block [ (0x10, Insn.Movhi (Reg.r0, hi), 4); (0x30, Insn.Orlo (Reg.r0, lo), 4) ]
  in
  let b2 =
    block [ (0x20, Insn.Movhi (Reg.r1, hi), 4); (0x20, Insn.Orlo (Reg.r1, lo), 4) ]
  in
  let sites = Func_ptr.analyze bin Failure_model.ours [ cfg [ b1; b2 ] ] in
  let maters =
    List.filter_map
      (function
        | Func_ptr.Fp_mater { prov; target } when target = entry ->
            Some (List.sort compare prov)
        | _ -> None)
      sites
  in
  Alcotest.(check bool)
    "site [0x10;0x30] survives" true
    (List.mem [ 0x10; 0x30 ] maters);
  Alcotest.(check bool)
    "site [0x20;0x20] survives" true
    (List.mem [ 0x20; 0x20 ] maters)

(* Property: dedup never drops a materialization whose (provenance set,
   target) is distinct from every other site's. *)
let fptr_dedup_never_drops =
  QCheck2.Test.make ~count:200
    ~name:"func-ptr dedup keeps every distinct (prov, target)"
    QCheck2.Gen.(
      small_list (pair (small_list (int_range 0 64)) (int_range 0 8)))
    (fun pairs ->
      let pairs = List.filter (fun (p, _) -> p <> []) pairs in
      let sites =
        List.map (fun (prov, target) -> Func_ptr.Fp_mater { prov; target }) pairs
      in
      let distinct =
        List.sort_uniq compare
          (List.map (fun (p, t) -> (List.sort compare p, t)) pairs)
      in
      List.length (Func_ptr.dedup sites) = List.length distinct)

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let test_liveness_dead_temps () =
  on_all_arches (fun arch ->
      let bin, _ = compile arch Test_codegen.prog_loop in
      let sym = Option.get (Binary.symbol bin "main") in
      let cfg = Cfg.build bin sym in
      let lv = Liveness.analyze cfg in
      let entry = Cfg.entry_block cfg in
      let dead = Liveness.dead_in arch lv entry.Cfg.b_start in
      (* At function entry the expression temporaries are dead. *)
      Alcotest.(check bool)
        (Arch.name arch ^ " r15 dead at entry")
        true
        (Reg.Set.mem Reg.r15 dead);
      (* The TOC register is never a scratch candidate on ppc64le. *)
      if arch = Arch.Ppc64le then
        Alcotest.(check bool) "toc not dead" false (Reg.Set.mem Reg.toc dead))

let test_liveness_conservative_on_args () =
  on_all_arches (fun arch ->
      let bin, _ = compile arch Test_codegen.prog_calls in
      let sym = Option.get (Binary.symbol bin "add3") in
      let cfg = Cfg.build bin sym in
      let lv = Liveness.analyze cfg in
      let entry = Cfg.entry_block cfg in
      let live = Liveness.live_in lv entry.Cfg.b_start in
      (* Incoming arguments are live at entry. *)
      Alcotest.(check bool) (Arch.name arch ^ " r0 live") true (Reg.Set.mem Reg.r0 live);
      Alcotest.(check bool) "r1 live" true (Reg.Set.mem Reg.r1 live))

(* ------------------------------------------------------------------ *)
(* Whole-binary parse                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_coverage () =
  on_all_arches (fun arch ->
      let bin, _ = compile arch (switch_prog Ir.Jt_plain) in
      let p = Parse.parse bin in
      Alcotest.(check bool) "full coverage" true (Parse.coverage p = 1.0);
      let bin', _ = compile arch (switch_prog Ir.Jt_data_table) in
      let p' = Parse.parse bin' in
      Alcotest.(check bool)
        (Arch.name arch ^ " partial coverage")
        true
        (Parse.coverage p' < 1.0))

let suite =
  [
    ( "analysis:cfg",
      [
        Alcotest.test_case "basic blocks" `Quick test_cfg_basic;
        Alcotest.test_case "block partition" `Quick test_cfg_blocks_partition;
        Alcotest.test_case "call edges" `Quick test_cfg_call_edges;
        Alcotest.test_case "embedded table skipped" `Quick
          test_cfg_skips_embedded_table;
      ] );
    ( "analysis:jump-table",
      [
        Alcotest.test_case "plain resolves (all arches)" `Quick
          test_jt_plain_resolves;
        Alcotest.test_case "spilled base: ours vs srbi" `Quick
          test_jt_spilled_ours_vs_srbi;
        Alcotest.test_case "data table unresolvable" `Quick
          test_jt_data_table_unresolvable;
        Alcotest.test_case "forced under-approximation" `Quick test_jt_bound_under;
        Alcotest.test_case "over-approximation trimmed" `Quick
          test_jt_bound_over_trimmed;
        Alcotest.test_case "aarch64 wide entries" `Quick
          test_jt_aarch64_wide_entries;
        Alcotest.test_case "slots positional" `Quick test_jt_slots_positional;
        Alcotest.test_case "adjacent tables trim extension" `Quick
          test_known_data_trims_adjacent_tables;
        Alcotest.test_case "guard bound = truth" `Quick
          test_guard_bound_matches_truth;
      ] );
    ( "analysis:tail-call",
      [
        Alcotest.test_case "layout heuristic vs teardown" `Quick
          test_indirect_tail_call_heuristics;
      ] );
    ( "analysis:func-ptr",
      [
        Alcotest.test_case "slot and mater discovery" `Quick test_fptr_discovery;
        Alcotest.test_case "adjusted pointer (Listing 1)" `Quick test_fptr_adjusted;
        Alcotest.test_case "baseline misses adjusted" `Quick
          test_fptr_no_forward_slice_baseline;
        Alcotest.test_case "dedup: equal-provenance-sum collision" `Quick
          test_fptr_dedup_collision;
        Alcotest.test_case "dedup collision through analyze" `Quick
          test_fptr_dedup_analyze;
        QCheck_alcotest.to_alcotest fptr_dedup_never_drops;
      ] );
    ( "analysis:liveness",
      [
        Alcotest.test_case "dead temps at entry" `Quick test_liveness_dead_temps;
        Alcotest.test_case "args live at entry" `Quick
          test_liveness_conservative_on_args;
      ] );
    ( "analysis:parse",
      [ Alcotest.test_case "coverage" `Quick test_parse_coverage ] );
  ]
