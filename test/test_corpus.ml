(* Corpus + matrix battery (ISSUE 6).

   Contracts under test:

   1. [Corpus.generate] is a pure function of (seed, count): identical
      calls agree, shorter counts are prefixes of longer ones, the first
      seven entries cover every adversarial shape, and distinct seeds
      produce distinct corpora.

   2. Corpus binaries are deterministic artifacts: building an entry
      yields byte-identical binaries no matter how the builds are
      scheduled across a [Pool], and a twin entry builds byte-identical
      to its source (the corpus-level cache-hit fodder).

   3. [Matrix.run] classification is deterministic: the same seed gives
      identical rows and identical shared-cache statistics for every
      [jobs] value — only wall times may differ — and the per-row counts
      tile ([verified + diverged + refused + crashed = cells], refusal
      histograms sum to [refused]). *)

module Corpus = Icfg_workloads.Corpus
module Matrix = Icfg_harness.Matrix
module Pool = Icfg_core.Pool
module Cache = Icfg_core.Cache

(* ------------------------------------------------------------------ *)
(* 1. Corpus generation determinism                                    *)
(* ------------------------------------------------------------------ *)

let test_generate_deterministic_and_prefix () =
  let a = Corpus.generate ~seed:7 ~count:40 in
  let b = Corpus.generate ~seed:7 ~count:40 in
  Alcotest.(check bool) "same seed, same corpus" true (a = b);
  let prefix = Corpus.generate ~seed:7 ~count:20 in
  Alcotest.(check bool) "shorter count is a prefix" true
    (prefix = List.filteri (fun i _ -> i < 20) a)

let test_shape_coverage () =
  List.iter
    (fun seed ->
      let es = Corpus.generate ~seed ~count:7 in
      let shapes =
        List.sort_uniq compare
          (List.map (fun e -> Corpus.shape_name e.Corpus.e_shape) es)
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: first 7 entries cover all shapes" seed)
        (Array.length Corpus.all_shapes)
        (List.length shapes))
    [ 1; 7; 9999 ]

let distinct_seeds =
  QCheck2.Test.make ~count:20 ~name:"corpus: distinct seeds, distinct corpora"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let specs s =
        List.map (fun e -> e.Corpus.e_spec) (Corpus.generate ~seed:s ~count:10)
      in
      specs seed <> specs (seed + 1))

(* ------------------------------------------------------------------ *)
(* 2. Built binaries are deterministic artifacts                       *)
(* ------------------------------------------------------------------ *)

let digest_jobs_independent =
  QCheck2.Test.make ~count:4
    ~name:"corpus: build digests independent of the pool schedule"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let entries = Corpus.generate ~seed ~count:8 in
      let serial = List.map (fun e -> Corpus.digest (Corpus.build e)) entries in
      let pooled =
        Pool.map ~jobs:3 (fun e -> Corpus.digest (Corpus.build e)) entries
      in
      serial = pooled)

let test_twins_build_identical () =
  let entries = Corpus.generate ~seed:7 ~count:30 in
  let arr = Array.of_list entries in
  let twins =
    List.filter (fun e -> e.Corpus.e_twin_of <> None) entries
  in
  Alcotest.(check bool) "a 30-entry corpus contains twins" true (twins <> []);
  List.iter
    (fun e ->
      let src = arr.(Option.get e.Corpus.e_twin_of) in
      Alcotest.(check string)
        (Printf.sprintf "entry %d builds identical to its twin %d"
           e.Corpus.e_id src.Corpus.e_id)
        (Corpus.digest (Corpus.build src))
        (Corpus.digest (Corpus.build e)))
    twins

(* ------------------------------------------------------------------ *)
(* 3. Matrix classification determinism                                *)
(* ------------------------------------------------------------------ *)

let strip (m : Matrix.t) =
  ( m.Matrix.m_seed,
    m.Matrix.m_count,
    m.Matrix.m_cache,
    List.map
      (fun (r : Matrix.row) ->
        { r with Matrix.row_p50_ns = 0.; row_p95_ns = 0. })
      m.Matrix.m_rows )

let test_matrix_smoke_and_determinism () =
  let m1 = Matrix.run ~seed:11 ~count:8 () in
  Alcotest.(check int) "seven roster rows" 7 (List.length m1.Matrix.m_rows);
  List.iter
    (fun (r : Matrix.row) ->
      let name fmt = Printf.sprintf "%s: %s" r.Matrix.row_approach fmt in
      Alcotest.(check int) (name "cells = corpus size") 8 r.Matrix.row_cells;
      Alcotest.(check int)
        (name "classes tile the cells")
        8
        (r.Matrix.row_verified + r.Matrix.row_diverged + r.Matrix.row_refused
       + r.Matrix.row_crashed);
      Alcotest.(check int)
        (name "refusal histogram sums to refused")
        r.Matrix.row_refused
        (List.fold_left (fun n (_, c) -> n + c) 0 r.Matrix.row_refusals);
      Alcotest.(check bool)
        (name "pass rate in range")
        true
        (Matrix.pass_rate_pct r >= 0. && Matrix.pass_rate_pct r <= 100.))
    m1.Matrix.m_rows;
  let s = m1.Matrix.m_cache in
  Alcotest.(check bool) "the shared cache was exercised" true
    (s.Cache.c_hits + s.Cache.c_misses > 0);
  Alcotest.(check bool) "hit rate agrees with the counters" true
    (Float.abs
       (m1.Matrix.m_hit_rate
       -. float_of_int s.Cache.c_hits
          /. float_of_int (s.Cache.c_hits + s.Cache.c_misses))
    < 1e-9);
  let m2 = Matrix.run ~seed:11 ~count:8 ~jobs:3 () in
  Alcotest.(check bool)
    "classification and cache stats identical across jobs" true
    (strip m1 = strip m2)

let test_hit_rate () =
  let stats ~hits ~misses =
    {
      Cache.c_hits = hits;
      c_misses = misses;
      c_stores = 0;
      c_bytes_reused = 0;
      c_evict_corrupt = 0;
      c_evict_lru = 0;
    }
  in
  Alcotest.(check (float 1e-9)) "no lookups" 0.
    (Cache.hit_rate (stats ~hits:0 ~misses:0));
  Alcotest.(check (float 1e-9)) "3/4" 0.75
    (Cache.hit_rate (stats ~hits:3 ~misses:1))

(* [Matrix.percentile]: nearest-rank on the finite values only. NaN and
   infinities must be dropped, not allowed to poison the sort order, and
   an empty (or all-non-finite) sample reads as 0. *)
let test_percentile () =
  let check name want got = Alcotest.(check (float 1e-9)) name want got in
  check "empty" 0. (Matrix.percentile 0.5 []);
  check "singleton" 42. (Matrix.percentile 0.95 [ 42. ]);
  let xs = [ 5.; 1.; 4.; 2.; 3. ] in
  check "median of 1..5" 3. (Matrix.percentile 0.5 xs);
  check "p0 is the min" 1. (Matrix.percentile 0. xs);
  check "p100 is the max" 5. (Matrix.percentile 1. xs);
  (* Nearest rank: p95 over five values rounds to the last index. *)
  check "p95 of 1..5" 5. (Matrix.percentile 0.95 xs);
  let poisoned = [ Float.nan; 5.; Float.infinity; 1.; 4.; Float.nan; 2.; 3. ] in
  check "nan/inf dropped" 3. (Matrix.percentile 0.5 poisoned);
  check "all non-finite" 0. (Matrix.percentile 0.5 [ Float.nan; Float.nan ])

let suite =
  [
    ( "corpus",
      [
        Alcotest.test_case "generate deterministic + prefix" `Quick
          test_generate_deterministic_and_prefix;
        Alcotest.test_case "shape coverage" `Quick test_shape_coverage;
        QCheck_alcotest.to_alcotest distinct_seeds;
        QCheck_alcotest.to_alcotest digest_jobs_independent;
        Alcotest.test_case "twins build identical" `Quick
          test_twins_build_identical;
        Alcotest.test_case "matrix smoke + determinism" `Slow
          test_matrix_smoke_and_determinism;
        Alcotest.test_case "cache hit rate" `Quick test_hit_rate;
        Alcotest.test_case "percentile" `Quick test_percentile;
      ] );
  ]
