(* Harness tests: the experiment drivers must reproduce the paper's
   qualitative claims. These are the repository's headline integration
   tests — if they pass, the reproduction holds. *)

open Icfg_isa
module E = Icfg_harness.Experiments
module Runner = Icfg_harness.Runner
module Stats = Icfg_harness.Stats
module Baseline = Icfg_baselines.Baseline

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let test_figure2_claims () =
  let rows = E.figure2_data Arch.X86_64 in
  let find name =
    List.find
      (fun r ->
        String.length r.E.f2_failure >= String.length name
        && String.sub r.E.f2_failure 0 (String.length name) = name)
      rows
  in
  let accurate = find "none" in
  let graceful = find "analysis failure" in
  let over = find "over" in
  let under = find "under" in
  (* analysis failure: lower coverage, still correct *)
  Alcotest.(check bool) "accurate correct" true accurate.E.f2_correct;
  Alcotest.(check bool) "graceful correct" true graceful.E.f2_correct;
  Alcotest.(check bool) "graceful lowers coverage" true
    (graceful.E.f2_coverage_pct < accurate.E.f2_coverage_pct);
  (* over-approximation: correct, never fewer trampolines *)
  Alcotest.(check bool) "over correct" true over.E.f2_correct;
  Alcotest.(check bool) "over does not drop trampolines" true
    (over.E.f2_trampolines >= accurate.E.f2_trampolines);
  (* under-approximation: catastrophic *)
  Alcotest.(check bool) "under WRONG" false under.E.f2_correct

(* ------------------------------------------------------------------ *)
(* Table 3 (x86-64 slice)                                              *)
(* ------------------------------------------------------------------ *)

let test_table3_x86_claims () =
  let rows = E.table3_data Arch.X86_64 in
  let get name = List.find (fun r -> r.E.t3_approach = name) rows in
  let srbi = get "SRBI" in
  let dir = get "dir" in
  let jt = get "jt" in
  let fp = get "func-ptr" in
  let egalito = get "Egalito" in
  (* overhead strictly decreases with stronger rewriting *)
  Alcotest.(check bool)
    (Printf.sprintf "srbi (%.2f) > dir (%.2f)" srbi.E.t3_time_mean dir.E.t3_time_mean)
    true
    (srbi.E.t3_time_mean > dir.E.t3_time_mean);
  Alcotest.(check bool) "dir > jt" true (dir.E.t3_time_mean > jt.E.t3_time_mean);
  Alcotest.(check bool) "jt > fp" true (jt.E.t3_time_mean > fp.E.t3_time_mean);
  Alcotest.(check bool) "fp near zero" true (abs_float fp.E.t3_time_mean < 1.0);
  Alcotest.(check bool) "egalito <= fp" true
    (egalito.E.t3_time_mean <= fp.E.t3_time_mean +. 0.2);
  (* coverage: ours 100% on x86-64, above SRBI *)
  Alcotest.(check (float 0.001)) "ours full coverage" 100.0 dir.E.t3_cov_min;
  Alcotest.(check bool) "srbi lower coverage" true (srbi.E.t3_cov_min < 100.0);
  (* pass counts: ours all 19; egalito refuses the two C++ benchmarks *)
  Alcotest.(check int) "dir pass" 19 dir.E.t3_pass;
  Alcotest.(check int) "jt pass" 19 jt.E.t3_pass;
  Alcotest.(check int) "fp pass" 19 fp.E.t3_pass;
  Alcotest.(check int) "egalito pass" 17 egalito.E.t3_pass;
  Alcotest.(check bool) "srbi fails some" true (srbi.E.t3_pass < 19);
  (* size: egalito regenerates (roughly original size); ours grows *)
  Alcotest.(check bool) "egalito small" true (egalito.E.t3_size_mean < 5.0);
  Alcotest.(check bool) "ours grows" true (jt.E.t3_size_mean > 20.0)

let test_table3_ppc_size_inversion () =
  (* The paper's ppc64le headline: SRBI binaries are drastically larger
     than ours (trap mapping), the reverse of x86-64. *)
  let rows = E.table3_data Arch.Ppc64le in
  let get name = List.find (fun r -> r.E.t3_approach = name) rows in
  let srbi = get "SRBI" in
  let jt = get "jt" in
  Alcotest.(check bool)
    (Printf.sprintf "ppc64le srbi size (%.1f) >> ours (%.1f)"
       srbi.E.t3_size_mean jt.E.t3_size_mean)
    true
    (srbi.E.t3_size_mean > 2.0 *. jt.E.t3_size_mean);
  Alcotest.(check int) "ours pass 19" 19 jt.E.t3_pass;
  Alcotest.(check bool) "srbi fails the bulk benchmarks" true (srbi.E.t3_pass <= 17)

(* ------------------------------------------------------------------ *)
(* BOLT                                                                *)
(* ------------------------------------------------------------------ *)

let test_bolt_claims () =
  let f = E.bolt_data Arch.X86_64 `Funcs in
  Alcotest.(check int) "bolt cannot reorder functions" 0 f.E.bolt_ok;
  Alcotest.(check int) "ours reorders all" f.E.bolt_total f.E.ours_ok;
  let b = E.bolt_data Arch.X86_64 `Blocks in
  Alcotest.(check int) "bolt corrupts 10 of 19" 9 b.E.bolt_ok;
  Alcotest.(check int) "ours blocks all 19" 19 b.E.ours_ok

(* ------------------------------------------------------------------ *)
(* Diogenes                                                            *)
(* ------------------------------------------------------------------ *)

let test_diogenes_speedup_mechanism () =
  (* Scaled-down run: the legacy configuration needs trap trampolines, ours
     does not, and that's where the speedup comes from. *)
  List.iter
    (fun arch ->
      let bin, _ = Icfg_workloads.Apps.libcuda ~iters:25 arch in
      let subset = Icfg_workloads.Apps.libcuda_api_subset bin in
      let run outcome =
        match outcome with
        | Baseline.Rewritten rw -> Runner.run_rewritten rw
        | Baseline.Refused r -> Alcotest.failf "refused: %s" r
      in
      let legacy = run (Baseline.legacy_dyninst ~only:subset bin) in
      let ours = run (Baseline.ours_partial ~mode:Icfg_core.Mode.Jt ~only:subset bin) in
      Alcotest.(check bool) (Arch.name arch ^ " both ok") true
        (legacy.Runner.r_outcome = Icfg_runtime.Vm.Halted
        && ours.Runner.r_outcome = Icfg_runtime.Vm.Halted);
      Alcotest.(check int) (Arch.name arch ^ " ours trap-free") 0 ours.Runner.r_traps;
      if arch <> Arch.X86_64 then begin
        Alcotest.(check bool)
          (Arch.name arch ^ " legacy traps")
          true (legacy.Runner.r_traps > 100);
        Alcotest.(check bool)
          (Printf.sprintf "%s speedup (%d vs %d)" (Arch.name arch)
             legacy.Runner.r_cycles ours.Runner.r_cycles)
          true
          (legacy.Runner.r_cycles > 5 * ours.Runner.r_cycles)
      end)
    Arch.all

(* ------------------------------------------------------------------ *)
(* Stats helpers                                                       *)
(* ------------------------------------------------------------------ *)

let test_stats () =
  Alcotest.(check (float 0.0001)) "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 0.0001)) "max" 3.0 (Stats.max_f [ 1.; 3.; 2. ]);
  Alcotest.(check (float 0.0001)) "min" 1.0 (Stats.min_f [ 2.; 1.; 3. ]);
  Alcotest.(check (float 0.0001)) "empty mean" 0.0 (Stats.mean []);
  Alcotest.(check (float 0.0001)) "ratio" 50.0 (Stats.ratio_pct ~base:100 ~value:150);
  (* Degenerate bases (empty bench, zero cycles) must not divide by zero:
     the growth ratio over nothing is defined as 0, not value*100. *)
  Alcotest.(check (float 0.0001)) "ratio over zero base" 0.0
    (Stats.ratio_pct ~base:0 ~value:37);
  Alcotest.(check (float 0.0001)) "ratio over negative base" 0.0
    (Stats.ratio_pct ~base:(-4) ~value:10);
  Alcotest.(check string) "pct finite" "+50.00%" (Stats.pct 50.);
  Alcotest.(check string) "pct nan" "n/a" (Stats.pct Float.nan);
  Alcotest.(check string) "pct infinity" "n/a" (Stats.pct Float.infinity)

let test_table_render () =
  let s = Icfg_harness.Table.render ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ] ] in
  Alcotest.(check bool) "contains cells" true
    (String.length s > 10
    && String.index_opt s 'x' <> None
    && String.index_opt s '-' <> None)

let suite =
  [
    ( "harness:figure2",
      [ Alcotest.test_case "failure-mode claims" `Quick test_figure2_claims ] );
    ( "harness:table3",
      [
        Alcotest.test_case "x86-64 claims" `Slow test_table3_x86_claims;
        Alcotest.test_case "ppc64le size inversion" `Slow
          test_table3_ppc_size_inversion;
      ] );
    ("harness:bolt", [ Alcotest.test_case "claims" `Slow test_bolt_claims ]);
    ( "harness:diogenes",
      [ Alcotest.test_case "trap-elimination speedup" `Slow
          test_diogenes_speedup_mechanism ] );
    ( "harness:util",
      [
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "table render" `Quick test_table_render;
      ] );
  ]
