(* Observability battery for the tracing layer (lib/core/trace.ml).

   Three contracts under test:

   1. Paper-claims monotonicity (Table 3): the modes form a chain of
      shrinking CFL sets — dir keeps every indirect target CFL, jt resolves
      jump tables out, func-ptr additionally relocates function pointers —
      so trampoline counts, trap-trampoline counts, and rewritten-run trap
      deliveries are monotonically non-increasing across dir -> jt ->
      func-ptr, measured through the new Trace counters.

   2. Graded failures (section 4.3): over-approximated jump-table bounds
      only waste space (extra trampolines, still correct under the strong
      test); under-approximation is caught as a real failure;
      SRBI-generation analyses only lower coverage.

   3. Observation-only: tracing must never perturb the rewrite (identical
      bytes with tracing on and off) and counter totals must be independent
      of the parallel schedule (identical across jobs values). *)

open Icfg_isa
open Icfg_core
module Gen = Icfg_workloads.Gen
module Runner = Icfg_harness.Runner
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Failure_model = Icfg_analysis.Failure_model
module Vm = Icfg_runtime.Vm

let opts mode =
  { Rewriter.default_options with Rewriter.mode; payload = Rewriter.P_count }

let counter t name = Option.value ~default:0 (Trace.find_counter t name)
let rcounter (r : Verify.report) name = counter r.Verify.trace name

let first_bench arch =
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  fst (Icfg_workloads.Spec_suite.compile arch bench)

(* ------------------------------------------------------------------ *)
(* Trace mechanics                                                     *)
(* ------------------------------------------------------------------ *)

let trace_basics () =
  let t = Trace.create () in
  Alcotest.(check bool) "inactive before" false (Trace.active ());
  (* Probes outside [with_current] are no-ops, not errors. *)
  Trace.add "orphan" 5;
  Trace.span "orphan" (fun () -> ());
  let v =
    Trace.with_current t (fun () ->
        Alcotest.(check bool) "active inside" true (Trace.active ());
        Trace.span "outer" (fun () ->
            Trace.add "n" 2;
            Trace.span "inner" (fun () -> Trace.incr "n");
            Trace.span "inner" (fun () -> ()));
        41 + 1)
  in
  Alcotest.(check int) "result passthrough" 42 v;
  Alcotest.(check bool) "inactive after" false (Trace.active ());
  Alcotest.(check (list (pair string int)))
    "counters" [ ("n", 3) ] (Trace.counters t);
  Alcotest.(check (option int)) "find_counter" (Some 3) (Trace.find_counter t "n");
  Alcotest.(check (option int)) "missing counter" None
    (Trace.find_counter t "orphan");
  let rows = Trace.rows t in
  Alcotest.(check (list string))
    "row paths (tree order, merged)" [ "outer"; "outer/inner" ]
    (List.map (fun r -> r.Trace.r_path) rows);
  let inner = List.nth rows 1 and outer = List.hd rows in
  Alcotest.(check int) "two inner spans merged" 2 inner.Trace.r_count;
  Alcotest.(check bool) "non-negative times" true
    (inner.Trace.r_ns >= 0 && outer.Trace.r_ns >= inner.Trace.r_ns);
  let json = Trace.to_json t in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json schema tag" true (contains "\"icfg-trace/1\"");
  Alcotest.(check bool) "json counter" true (contains "\"n\": 3");
  Alcotest.(check bool) "json span tree" true (contains "\"name\": \"inner\"")

(* The exceptional path must still close the span and restore the ambient
   trace. *)
let trace_unwind () =
  let t = Trace.create () in
  (try
     Trace.with_current t (fun () ->
         Trace.span "will-raise" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check bool) "inactive after raise" false (Trace.active ());
  Alcotest.(check (list string))
    "raised span still recorded" [ "will-raise" ]
    (List.map (fun r -> r.Trace.r_path) (Trace.rows t))

(* ------------------------------------------------------------------ *)
(* Pipeline coverage: every step shows up as a span                    *)
(* ------------------------------------------------------------------ *)

let pipeline_spans = [
  "parse"; "parse/pass1"; "parse/known-data"; "parse/func-ptr";
  "parse/finalize"; "parse/func-ptr-2";
  "rewrite"; "rewrite/relocate";
  "rewrite/layout:instr"; "rewrite/layout:jtnew";
  "rewrite/encode:instr"; "rewrite/encode:jtnew";
  "rewrite/ra-map"; "rewrite/place:plan"; "rewrite/place:replay";
  "rewrite/place:hops"; "rewrite/emit";
]

let pipeline_coverage () =
  let bin = first_bench Arch.X86_64 in
  let t = Trace.create () in
  let rw =
    Trace.with_current t (fun () ->
        Runner.rewrite ~options:(opts Mode.Jt) ~jobs:2 bin)
  in
  let rows = Trace.rows t in
  let paths = List.map (fun r -> r.Trace.r_path) rows in
  List.iter
    (fun p -> Alcotest.(check bool) ("span " ^ p) true (List.mem p paths))
    pipeline_spans;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Trace.r_path ^ " sane") true
        (r.Trace.r_ns >= 0 && r.Trace.r_count >= 1))
    rows;
  (* Counters agree with the stats record the rewrite returned. *)
  let st = rw.Rewriter.rw_stats in
  List.iter
    (fun (name, want) ->
      Alcotest.(check int) name want (counter t name))
    [
      ("rewrite/funcs-total", st.Rewriter.s_funcs_total);
      ("rewrite/funcs-instrumented", st.Rewriter.s_funcs_instrumented);
      ("rewrite/blocks", st.Rewriter.s_blocks);
      ("rewrite/cfl-blocks", st.Rewriter.s_cfl_blocks);
      ("rewrite/trampolines", st.Rewriter.s_trampolines);
      ("rewrite/trampolines:trap", st.Rewriter.s_trap_trampolines);
      ("rewrite/cloned-tables", st.Rewriter.s_cloned_tables);
      ("rewrite/size-growth", st.Rewriter.s_new_size - st.Rewriter.s_orig_size);
      ("parse/funcs", st.Rewriter.s_funcs_total);
    ];
  Alcotest.(check bool) "some trampoline bytes" true
    (counter t "rewrite/trampoline-bytes" > 0);
  (* Per-lane child spans appear only when the pool actually fans out
     (lanes are clamped to recommended_jobs, so a 1-core host runs the
     batch inline on the caller). *)
  if Pool.recommended_jobs () > 1 then
    Alcotest.(check bool) "lane spans recorded" true
      (List.exists
         (fun r ->
           List.exists
             (fun seg ->
               String.length seg >= 5 && String.sub seg 0 5 = "lane-")
             (String.split_on_char '/' r.Trace.r_path))
         rows)

(* ------------------------------------------------------------------ *)
(* Satellite 1: mode monotonicity on generated workloads (QCheck)      *)
(* ------------------------------------------------------------------ *)

(* Workloads with at least one switch and one dispatch kernel so all three
   modes actually differ in what they leave CFL. *)
let mono_spec_gen =
  let open QCheck2.Gen in
  let* seed = int_range 1 100_000 in
  let* n_compute = int_range 1 3 in
  let* n_switch = int_range 1 3 in
  let* n_dispatch = int_range 1 2 in
  let* exceptions = bool in
  return
    {
      Gen.seed;
      name = Printf.sprintf "mono%d" seed;
      langs = [ Binary.C ];
      exceptions;
      n_compute;
      n_switch;
      n_dispatch;
      n_hard_spill = 0;
      n_frameless_tail = 0;
      n_data_table = 1;
      iters = 4;
      inner = 2;
      work = 3;
      cases = 4;
    }

let mode_chain = [ Mode.Dir; Mode.Jt; Mode.Func_ptr ]

let mode_monotonicity =
  QCheck2.Test.make ~count:10
    ~name:"trace: trampolines/traps non-increasing over dir -> jt -> func-ptr"
    ~print:(fun (spec, (arch, pie)) ->
      Printf.sprintf "seed=%d %s%s" spec.Gen.seed (Arch.name arch)
        (if pie then " pie" else ""))
    QCheck2.Gen.(pair mono_spec_gen (pair (oneofl Arch.all) bool))
    (fun (spec, (arch, pie)) ->
      let prog = Gen.build spec in
      let bin, _ = Icfg_codegen.Compile.compile ~pie arch prog in
      let reports =
        List.map (fun m -> Verify.strong_test ~options:(opts m) bin) mode_chain
      in
      List.for_all (fun r -> r.Verify.ok) reports
      &&
      let non_increasing name =
        let vals = List.map (fun r -> rcounter r name) reports in
        match vals with
        | [ dir; jt; fp ] -> dir >= jt && jt >= fp
        | _ -> false
      in
      non_increasing "rewrite/trampolines"
      && non_increasing "rewrite/trampolines:trap"
      && non_increasing "vm/rewritten/traps")

(* ------------------------------------------------------------------ *)
(* Satellite 2: graded failures under the strong test (section 4.3)    *)
(* ------------------------------------------------------------------ *)

let graded_spec =
  { Gen.default_spec with Gen.seed = 42; name = "graded"; n_switch = 3; iters = 40 }

let graded_bounds () =
  let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 (Gen.build graded_spec) in
  let over_fm =
    {
      (Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_over 8))
      with
      Failure_model.extend_to_known_data = false;
    }
  in
  (* Over-approximated bounds (8 phantom entries per table) only waste
     space, never correctness. In dir mode the phantom targets are already
     CFL so nothing even changes; in jt mode the cloned tables carry the
     phantom entries, so the new-table bytes and total size growth go up
     while the strong test still passes. *)
  let base_dir = Verify.strong_test ~options:(opts Mode.Dir) ~fm:Failure_model.ours bin in
  Alcotest.(check bool) "exact bounds: strong test passes" true base_dir.Verify.ok;
  let over_dir = Verify.strong_test ~options:(opts Mode.Dir) ~fm:over_fm bin in
  Alcotest.(check bool) "over-approx dir: still correct" true over_dir.Verify.ok;
  Alcotest.(check bool) "over-approx dir: never fewer trampolines" true
    (over_dir.Verify.stats.Rewriter.s_trampolines
    >= base_dir.Verify.stats.Rewriter.s_trampolines);
  let base_jt = Verify.strong_test ~options:(opts Mode.Jt) ~fm:Failure_model.ours bin in
  let over_jt = Verify.strong_test ~options:(opts Mode.Jt) ~fm:over_fm bin in
  Alcotest.(check bool) "exact bounds jt: ok" true base_jt.Verify.ok;
  Alcotest.(check bool) "over-approx jt: still correct" true over_jt.Verify.ok;
  Alcotest.(check bool)
    (Printf.sprintf "over-approx jt: bigger cloned tables (%d > %d)"
       (rcounter over_jt "rewrite/jtnew-bytes")
       (rcounter base_jt "rewrite/jtnew-bytes"))
    true
    (rcounter over_jt "rewrite/jtnew-bytes"
    > rcounter base_jt "rewrite/jtnew-bytes");
  Alcotest.(check bool) "over-approx jt: more size growth" true
    (rcounter over_jt "rewrite/size-growth"
    > rcounter base_jt "rewrite/size-growth");
  (* Under-approximated bounds miss real targets; with the original bytes
     overwritten the strong test catches this as a real failure. *)
  let under_fm =
    Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_under 2)
  in
  let under = Verify.strong_test ~options:(opts Mode.Dir) ~fm:under_fm bin in
  Alcotest.(check bool) "under-approx: caught" false under.Verify.ok;
  Alcotest.(check bool) "under-approx: failures reported" true
    (under.Verify.failures <> [])

let graded_srbi () =
  (* One switch keeps its table base spilled to the stack; SRBI's analyses
     (no spill tracking) cannot bound it, so that function is skipped —
     coverage drops but the strong test still passes. *)
  let spec = { graded_spec with Gen.name = "graded-srbi"; n_hard_spill = 1 } in
  let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 (Gen.build spec) in
  let options = opts Mode.Dir in
  let base = Verify.strong_test ~options ~fm:Failure_model.ours bin in
  let srbi = Verify.strong_test ~options ~fm:Failure_model.srbi bin in
  Alcotest.(check bool) "ours: ok" true base.Verify.ok;
  Alcotest.(check bool) "srbi: still correct" true srbi.Verify.ok;
  Alcotest.(check int) "same function population"
    base.Verify.stats.Rewriter.s_funcs_total
    srbi.Verify.stats.Rewriter.s_funcs_total;
  Alcotest.(check bool)
    (Printf.sprintf "srbi covers fewer functions (%d < %d)"
       srbi.Verify.stats.Rewriter.s_funcs_instrumented
       base.Verify.stats.Rewriter.s_funcs_instrumented)
    true
    (srbi.Verify.stats.Rewriter.s_funcs_instrumented
    < base.Verify.stats.Rewriter.s_funcs_instrumented);
  Alcotest.(check bool) "ours covers the spilled-base switch" true
    (base.Verify.stats.Rewriter.s_funcs_instrumented
    = base.Verify.stats.Rewriter.s_funcs_total)

(* ------------------------------------------------------------------ *)
(* Satellite 3: tracing is observation-only                            *)
(* ------------------------------------------------------------------ *)

let section_image (s : Section.t) =
  (s.Section.name, s.Section.vaddr, Bytes.to_string s.Section.data)

let sections (rw : Rewriter.t) =
  List.map section_image rw.Rewriter.rw_binary.Binary.sections

let observation_only () =
  let bin = first_bench Arch.X86_64 in
  let options = opts Mode.Jt in
  List.iter
    (fun jobs ->
      let plain = Runner.rewrite ~options ~jobs bin in
      let t = Trace.create () in
      let traced =
        Trace.with_current t (fun () -> Runner.rewrite ~options ~jobs bin)
      in
      Alcotest.(check bool)
        (Printf.sprintf "bytes identical with tracing, jobs=%d" jobs)
        true
        (sections plain = sections traced
        && plain.Rewriter.rw_stats = traced.Rewriter.rw_stats))
    [ 1; 4 ]

let counter_totals_schedule_independent () =
  let bin = first_bench Arch.X86_64 in
  let options = opts Mode.Jt in
  let rewrite_totals jobs =
    let t = Trace.create () in
    ignore (Trace.with_current t (fun () -> Runner.rewrite ~options ~jobs bin));
    Trace.counters t
  in
  let base = rewrite_totals 1 in
  Alcotest.(check bool) "rewrite records counters" true (base <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "rewrite counter totals, jobs=%d" jobs)
        base (rewrite_totals jobs))
    [ 2; 4; 8 ];
  let strong_totals jobs =
    let r =
      Verify.strong_test ~options:{ options with Rewriter.jobs } bin
    in
    Trace.counters r.Verify.trace
  in
  let base = strong_totals 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "strong-test counter totals, jobs=%d" jobs)
        base (strong_totals jobs))
    [ 4 ]

(* ------------------------------------------------------------------ *)
(* VM runtime counters: buckets partition cycles; RA translations      *)
(* ------------------------------------------------------------------ *)

let vm_buckets () =
  let bin = first_bench Arch.X86_64 in
  let config = Runner.measure_config ~pie:bin.Binary.pie in
  let r =
    Vm.run ~config ~routines:(Icfg_runtime.Runtime_lib.standard ()) bin
  in
  Alcotest.(check bool) "halted" true (r.Vm.outcome = Vm.Halted);
  let sum = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Vm.cycle_buckets in
  Alcotest.(check int) "buckets partition cycles" r.Vm.cycles sum;
  Alcotest.(check (list string))
    "bucket order" (Array.to_list Vm.bucket_names)
    (List.map fst r.Vm.cycle_buckets);
  Alcotest.(check bool) "icache modelled" true
    (r.Vm.icache_accesses > 0 && r.Vm.icache_misses <= r.Vm.icache_accesses);
  Alcotest.(check int) "icache bucket = misses * miss cost"
    (r.Vm.icache_misses * 25)
    (List.assoc "icache" r.Vm.cycle_buckets)

let vm_ra_translations () =
  (* An exception-throwing workload rewritten in jt mode: unwinding the
     rewritten binary goes through the RA-translation hook, and the new
     counters must see it. *)
  let spec =
    {
      Gen.default_spec with
      Gen.seed = 9;
      name = "vmtrace";
      exceptions = true;
      n_switch = 1;
      iters = 6;
    }
  in
  let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 (Gen.build spec) in
  let r = Verify.strong_test ~options:(opts Mode.Jt) bin in
  Alcotest.(check bool) "strong test ok" true r.Verify.ok;
  Alcotest.(check int) "trap counter mirrors report"
    r.Verify.rewritten_traps
    (rcounter r "vm/rewritten/traps");
  Alcotest.(check int) "cycle counter mirrors report"
    r.Verify.rewritten_cycles
    (rcounter r "vm/rewritten/cycles");
  Alcotest.(check bool) "unwinding happened" true
    (rcounter r "vm/rewritten/unwind-steps" > 0);
  Alcotest.(check bool) "RA translations counted" true
    (rcounter r "vm/rewritten/ra-translations" > 0);
  Alcotest.(check int) "original run needs no translation" 0
    (rcounter r "vm/original/ra-translations")

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "trace mechanics" `Quick trace_basics;
        Alcotest.test_case "trace unwind safety" `Quick trace_unwind;
        Alcotest.test_case "pipeline span coverage" `Quick pipeline_coverage;
        Alcotest.test_case "graded failures: table bounds" `Quick graded_bounds;
        Alcotest.test_case "graded failures: srbi coverage" `Quick graded_srbi;
        Alcotest.test_case "tracing is observation-only" `Quick observation_only;
        Alcotest.test_case "counter totals vs schedule" `Quick
          counter_totals_schedule_independent;
        Alcotest.test_case "vm cycle buckets" `Quick vm_buckets;
        Alcotest.test_case "vm ra translations" `Quick vm_ra_translations;
        QCheck_alcotest.to_alcotest mode_monotonicity;
      ] );
  ]
