(* Determinism battery for the sharded rewriting engine.

   The contract under test (lib/core/pool.mli, Rewriter.options.jobs): for
   every jobs value the rewritten binary is bit-for-bit identical to the
   serial run — same section bytes, same stats, same RA map, same trap and
   counter maps, same dynamic relocations.  The battery covers every
   spec-suite binary on every architecture in every mode, the option
   variants that exercise different placement machinery, parallel parsing,
   Go binaries, and a random-program differential property. *)

open Icfg_isa
open Icfg_core
module Gen = Icfg_workloads.Gen
module Parse = Icfg_analysis.Parse
module Runner = Icfg_harness.Runner
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Ra_map = Icfg_runtime.Runtime_lib.Ra_map

(* ------------------------------------------------------------------ *)
(* Structural comparison of two rewrites                               *)
(* ------------------------------------------------------------------ *)

let section_image (s : Section.t) =
  (s.Section.name, s.Section.vaddr, Bytes.to_string s.Section.data,
   s.Section.perm, s.Section.loaded)

let sorted_tbl tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Everything observable about a rewrite except [rw_relocated_entry]
   (a closure; its behaviour is pinned by the trap map and RA map). *)
let fingerprint (rw : Rewriter.t) =
  let bin = rw.Rewriter.rw_binary in
  ( List.map section_image bin.Binary.sections,
    (bin.Binary.entry, bin.Binary.pie, bin.Binary.relocs, bin.Binary.symbols),
    rw.Rewriter.rw_stats,
    Ra_map.pairs rw.Rewriter.rw_ra_map,
    ( sorted_tbl rw.Rewriter.rw_trap_map,
      sorted_tbl rw.Rewriter.rw_counter_of_site,
      sorted_tbl rw.Rewriter.rw_dt_sites,
      rw.Rewriter.rw_go_hook,
      rw.Rewriter.rw_translate_hook ) )

let equal_rewrite a b = fingerprint a = fingerprint b

(* Describe the first difference; "" when identical. *)
let diff_rewrite a b =
  let (sa, ba, sta, ra, ma) = fingerprint a in
  let (sb, bb, stb, rb, mb) = fingerprint b in
  if sa <> sb then
    match
      List.find_opt
        (fun ((n, v, d, p, l), (n', v', d', p', l')) ->
          (n, v, p, l) <> (n', v', p', l') || d <> d')
        (try List.combine sa sb with Invalid_argument _ -> [])
    with
    | Some ((n, v, _, _, _), _) ->
        Printf.sprintf "section %s@0x%x differs" n v
    | None -> "section lists differ in length"
  else if ba <> bb then "binary header/relocs/symbols differ"
  else if sta <> stb then "stats differ"
  else if ra <> rb then "RA maps differ"
  else if ma <> mb then "runtime maps differ"
  else ""

let check_same ~what serial parallel =
  let d = diff_rewrite serial parallel in
  Alcotest.(check string) what "" d

(* ------------------------------------------------------------------ *)
(* Spec-suite battery: every binary, arch, mode; jobs in {2,4,8}       *)
(* ------------------------------------------------------------------ *)

let opts mode = { Rewriter.default_options with Rewriter.mode; payload = Rewriter.P_count }

let spec_battery arch () =
  List.iter
    (fun bench ->
      let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
      List.iter
        (fun mode ->
          let options = opts mode in
          let serial = Runner.rewrite ~options ~jobs:1 bin in
          List.iter
            (fun jobs ->
              let par = Runner.rewrite ~options ~jobs bin in
              check_same
                ~what:
                  (Printf.sprintf "%s/%s/%s jobs=%d"
                     bench.Icfg_workloads.Spec_suite.bench_name
                     (Arch.name arch) (Mode.name mode) jobs)
                serial par)
            [ 2; 4; 8 ])
        Mode.all)
    (Icfg_workloads.Spec_suite.benchmarks arch)

(* ------------------------------------------------------------------ *)
(* Option variants: each exercises a different placement/codegen path  *)
(* ------------------------------------------------------------------ *)

let variants =
  [
    ("srbi-like", Rewriter.srbi_like Rewriter.P_count);
    ( "reverse-funcs",
      { (opts Mode.Jt) with Rewriter.order = `Reverse_funcs } );
    ( "reverse-blocks",
      { (opts Mode.Jt) with Rewriter.order = `Reverse_blocks } );
    ( "sparse-placement",
      {
        (opts Mode.Func_ptr) with
        Rewriter.granularity = Rewriter.G_func_entry;
        overwrite_original = false;
        sparse_placement = true;
      } );
    ("dyn-translate", { (opts Mode.Jt) with Rewriter.dyn_translate = true });
  ]

let variant_battery () =
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  List.iter
    (fun (name, options) ->
      let serial = Runner.rewrite ~options ~jobs:1 bin in
      List.iter
        (fun jobs ->
          let par = Runner.rewrite ~options ~jobs bin in
          check_same ~what:(Printf.sprintf "%s jobs=%d" name jobs) serial par)
        [ 2; 4; 8 ])
    variants

(* ------------------------------------------------------------------ *)
(* Parallel parsing is deterministic                                   *)
(* ------------------------------------------------------------------ *)

(* Liveness carries hashtables, so compare a projection instead of the
   whole structure. The full function-pointer site list is included: the
   per-CFG scans shard across domains, and both site order and site
   contents must be schedule-independent. *)
let parse_view (p : Parse.t) =
  ( List.map
      (fun fa ->
        ( fa.Parse.fa_sym.Icfg_obj.Symbol.name,
          fa.Parse.fa_sym.Icfg_obj.Symbol.addr,
          fa.Parse.fa_instrumentable,
          fa.Parse.fa_fail_reason,
          List.map
            (fun (b : Icfg_analysis.Cfg.block) -> b.Icfg_analysis.Cfg.b_start)
            fa.Parse.fa_cfg.Icfg_analysis.Cfg.blocks,
          List.length fa.Parse.fa_tables,
          fa.Parse.fa_tail_jumps ))
      p.Parse.funcs,
    p.Parse.fptrs,
    p.Parse.pointer_targets )

let parse_battery () =
  List.iter
    (fun arch ->
      let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
      let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
      let serial = parse_view (Runner.parse ~jobs:1 bin) in
      List.iter
        (fun jobs ->
          let par = parse_view (Runner.parse ~jobs bin) in
          Alcotest.(check bool)
            (Printf.sprintf "parse %s jobs=%d" (Arch.name arch) jobs)
            true (serial = par))
        [ 2; 4; 8 ])
    Arch.all

(* ------------------------------------------------------------------ *)
(* Sharded function-pointer analysis is deterministic                  *)
(* ------------------------------------------------------------------ *)

module Func_ptr = Icfg_analysis.Func_ptr

let pool_fpar jobs =
  { Func_ptr.pmap = (fun f l -> Icfg_core.Pool.map ~jobs f l) }

let funcptr_battery () =
  List.iter
    (fun arch ->
      let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
      let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
      let p = Runner.parse ~jobs:1 bin in
      let cfgs = List.map (fun fa -> fa.Parse.fa_cfg) p.Parse.funcs in
      let fm = Icfg_analysis.Failure_model.ours in
      let serial = Func_ptr.analyze bin fm cfgs in
      List.iter
        (fun jobs ->
          let par = Func_ptr.analyze ~par:(pool_fpar jobs) bin fm cfgs in
          Alcotest.(check bool)
            (Printf.sprintf "func-ptr %s jobs=%d" (Arch.name arch) jobs)
            true (serial = par))
        [ 2; 4; 8 ])
    Arch.all

(* ------------------------------------------------------------------ *)
(* Sharded section encoding is byte-identical for any chunking         *)
(* ------------------------------------------------------------------ *)

module Asm = Icfg_codegen.Asm

(* An item stream exercising every boundary shape a chunk split can cut
   through: zero-size labels, address-dependent alignment, multi-insn
   materializations, raw bytes, space, and data words that resolve labels
   both backwards and forwards (and emit relocs under PIE). *)
let shard_items n =
  List.concat
    (List.init n (fun i ->
         [
           Asm.Label (Printf.sprintf "S%d" i);
           Asm.Insn (Insn.Mov (Reg.r0, Imm (i * 7)));
           Asm.Jcc_to (Insn.Eq, Printf.sprintf "S%d" (i / 2));
           Asm.Align (8, `Nop);
           Asm.Data
             ( Insn.W64,
               Asm.Addr (Printf.sprintf "S%d" (min (n - 1) (i + 1))),
               `Reloc );
           Asm.Data (Insn.W32, Asm.Diff (Printf.sprintf "S%d" i, "S0", 1), `No_reloc);
           (* sizes stay multiples of 4 so RISC branch targets remain
              aligned, as in any real item stream *)
           Asm.Raw "abcd";
           Asm.Space 4;
           Asm.Mater_const (Reg.r0, 0x400000 + (i * 16));
         ]))

let asm_shard_battery () =
  List.iter
    (fun arch ->
      List.iter
        (fun pie ->
          let labels = Hashtbl.create 256 in
          let lay =
            Asm.layout arch ~pie ~labels ~base:0x400000 (shard_items 97)
          in
          let serial_bytes, serial_relocs =
            Asm.encode arch ~pie ~toc:0 ~labels lay
          in
          List.iter
            (fun chunks ->
              let bytes, relocs =
                Asm.encode_sharded arch ~pie ~toc:0 ~labels
                  ~par:{ Asm.pmap = (fun f l -> Icfg_core.Pool.map ~jobs:4 f l) }
                  ~chunks lay
              in
              let what =
                Printf.sprintf "encode %s pie=%b chunks=%d" (Arch.name arch)
                  pie chunks
              in
              Alcotest.(check bool)
                (what ^ " bytes") true
                (Bytes.equal serial_bytes bytes);
              Alcotest.(check bool)
                (what ^ " relocs") true (serial_relocs = relocs))
            [ 2; 3; 7; 16; 64; 1000 ])
        [ false; true ])
    Arch.all

(* ------------------------------------------------------------------ *)
(* Pool: shared growth, lane clamping, fail-fast on exceptions         *)
(* ------------------------------------------------------------------ *)

module Pool = Icfg_core.Pool

let pool_shared_growth () =
  let xs = List.init 64 (fun i -> i) in
  let run jobs = Pool.map ~jobs (fun x -> x * x) xs in
  let want = List.map (fun x -> x * x) xs in
  Alcotest.(check (list int)) "jobs=2 result" want (run 2);
  let w2 = Pool.live_workers () in
  Alcotest.(check (list int)) "jobs=8 result" want (run 8);
  let w8 = Pool.live_workers () in
  Alcotest.(check (list int)) "jobs=4 result" want (run 4);
  let w4 = Pool.live_workers () in
  (* One shared pool: growing to 8 lanes then mapping with 4 spawns
     nothing new, and the total never exceeds the clamp (lanes are capped
     at recommended_jobs, the caller being one lane). *)
  Alcotest.(check bool) "monotone growth" true (w2 <= w8);
  Alcotest.(check int) "no extra pool for smaller jobs" w8 w4;
  Alcotest.(check bool) "clamped to recommended_jobs" true
    (w8 <= max 0 (Pool.recommended_jobs () - 1) && w8 <= 7)

exception Boom of int

let pool_fail_fast () =
  let n = 10_000 in
  let arr = Array.init n (fun i -> i) in
  let calls = Atomic.make 0 in
  let f i =
    Atomic.incr calls;
    raise (Boom i)
  in
  (match Pool.map_array ~jobs:8 f arr with
  | _ -> Alcotest.fail "expected the failure to propagate"
  | exception Boom _ -> ());
  (* Every call raises, so the first call on each lane records the
     failure; after that the steal loop only drains indices without
     applying [f]. Anything near [n] calls would mean the batch kept
     doing the wasted work. *)
  Alcotest.(check bool)
    (Printf.sprintf "aborted promptly (%d calls)" (Atomic.get calls))
    true
    (Atomic.get calls <= 8)

let pool_partial_failure () =
  let xs = List.init 1000 (fun i -> i) in
  (match Pool.map ~jobs:4 (fun x -> if x = 500 then failwith "mid" else x) xs with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "message" "mid" m);
  (* The pool survives a failed batch and serves later ones. *)
  Alcotest.(check (list int))
    "pool usable after failure"
    (List.map (fun x -> x + 1) xs)
    (Pool.map ~jobs:4 (fun x -> x + 1) xs)

(* The impossible-state diagnostic: if a result slot were ever left
   unfilled, the raised exception names the slot and the lane that
   claimed it instead of a bare [Assert_failure]. *)
let pool_incomplete_diag () =
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let msg =
    Printexc.to_string (Pool.Incomplete_map { lane = 2; index = 5; total = 9 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "names the slot (%s)" msg)
    true (contains msg "5/9");
  Alcotest.(check bool)
    (Printf.sprintf "names the lane (%s)" msg)
    true (contains msg "lane 2")

(* ------------------------------------------------------------------ *)
(* Go binaries (hooks + vtable paths)                                  *)
(* ------------------------------------------------------------------ *)

let go_battery () =
  List.iter
    (fun arch ->
      let adjust = if arch = Arch.X86_64 then 1 else 4 in
      let spec = Gen.go_spec ~seed:7 ~name:"goparallel" ~iters:5 in
      let prog = Gen.build_go ~vtab_check:false ~goexit_adjust:adjust spec in
      let bin, _ = Icfg_codegen.Compile.compile ~pie:true arch prog in
      let options = opts Mode.Jt in
      let serial = Runner.rewrite ~options ~jobs:1 bin in
      List.iter
        (fun jobs ->
          let par = Runner.rewrite ~options ~jobs bin in
          check_same
            ~what:(Printf.sprintf "go/%s jobs=%d" (Arch.name arch) jobs)
            serial par)
        [ 2; 4 ])
    Arch.all

(* ------------------------------------------------------------------ *)
(* Incremental cache: cached == uncached, jobs-independent counters,   *)
(* per-function invalidation                                           *)
(* ------------------------------------------------------------------ *)

module Cache = Icfg_core.Cache
module Trace = Icfg_core.Trace

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "icfgcache-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then (
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir))
    (fun () -> f dir)

(* Cached rewrites are byte-identical to uncached ones for every mode and
   jobs value, cold and warm alike, and the hit/miss statistics are
   jobs-independent (the ISSUE's observation-safety requirement). *)
let cache_battery () =
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  List.iter
    (fun mode ->
      let options = opts mode in
      let uncached = Runner.rewrite ~options ~jobs:1 bin in
      let stats_by_jobs =
        List.map
          (fun jobs ->
            let c = Cache.create () in
            let cold = Runner.rewrite ~options ~jobs ~cache:c bin in
            check_same
              ~what:(Printf.sprintf "%s cold jobs=%d" (Mode.name mode) jobs)
              uncached cold;
            let cold_stats = Cache.stats c in
            Alcotest.(check int)
              (Printf.sprintf "%s cold jobs=%d: no hits" (Mode.name mode) jobs)
              0 cold_stats.Cache.c_hits;
            Alcotest.(check bool)
              (Printf.sprintf "%s cold jobs=%d: misses" (Mode.name mode) jobs)
              true
              (cold_stats.Cache.c_misses > 0);
            (* Warm replay through a clone: fresh statistics, shared
               entries. Everything per-function must hit. *)
            let wc = Cache.clone c in
            let warm = Runner.rewrite ~options ~jobs ~cache:wc bin in
            check_same
              ~what:(Printf.sprintf "%s warm jobs=%d" (Mode.name mode) jobs)
              uncached warm;
            let warm_stats = Cache.stats wc in
            Alcotest.(check int)
              (Printf.sprintf "%s warm jobs=%d: no misses" (Mode.name mode) jobs)
              0 warm_stats.Cache.c_misses;
            Alcotest.(check int)
              (Printf.sprintf "%s warm jobs=%d: all hits" (Mode.name mode) jobs)
              cold_stats.Cache.c_misses warm_stats.Cache.c_hits;
            (cold_stats, warm_stats))
          [ 1; 2; 4 ]
      in
      match stats_by_jobs with
      | ref_stats :: rest ->
          List.iteri
            (fun i s ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: stats jobs-independent (%d)" (Mode.name mode)
                   i)
                true (s = ref_stats))
            rest
      | [] -> ())
    Mode.all

(* The on-disk tier: a second cache instance over the same directory (a
   fresh process in real life) serves every per-function artifact from
   disk — zero misses — and the output stays byte-identical. *)
let cache_disk_battery () =
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  let options = opts Mode.Jt in
  let uncached = Runner.rewrite ~options ~jobs:1 bin in
  with_temp_dir (fun dir ->
      let c1 = Cache.create ~dir () in
      let cold = Runner.rewrite ~options ~jobs:1 ~cache:c1 bin in
      check_same ~what:"disk cold" uncached cold;
      Alcotest.(check bool) "entries on disk" true (Cache.entry_files c1 <> []);
      let c2 = Cache.create ~dir () in
      let warm = Runner.rewrite ~options ~jobs:2 ~cache:c2 bin in
      check_same ~what:"disk warm" uncached warm;
      let s = Cache.stats c2 in
      Alcotest.(check int) "disk warm: no misses" 0 s.Cache.c_misses;
      Alcotest.(check int) "disk warm: all hits" (Cache.stats c1).Cache.c_misses
        s.Cache.c_hits;
      Alcotest.(check bool) "disk warm: bytes reused" true
        (s.Cache.c_bytes_reused > 0))

(* Perturbing one function's bytes invalidates exactly that function's
   entries: each per-function stage misses once, everything else hits, and
   the rewrite of the perturbed binary is still byte-identical to its
   uncached rewrite. *)
let cache_invalidation () =
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  let options = opts Mode.Jt in
  let warm = Cache.create () in
  ignore (Runner.rewrite ~options ~jobs:1 ~cache:warm bin);
  match Runner.perturb_function (Runner.parse ~jobs:1 bin) with
  | None -> Alcotest.fail "no safely perturbable function in the spec binary"
  | Some (pbin, fname) ->
      let uncached = Runner.rewrite ~options ~jobs:1 pbin in
      let t = Trace.create () in
      let rw =
        Trace.with_current t (fun () ->
            Runner.rewrite ~options ~jobs:1 ~cache:(Cache.clone warm) pbin)
      in
      check_same ~what:(Printf.sprintf "perturbed %s" fname) uncached rw;
      let get name = Option.value ~default:0 (Trace.find_counter t name) in
      List.iter
        (fun stage ->
          Alcotest.(check int)
            (Printf.sprintf "one miss in %s" stage)
            1
            (get ("cache.miss:" ^ stage)))
        [
          "parse/pass1"; "parse/fptr"; "parse/finalize"; "parse/fptr2";
          "rewrite/relocate"; "rewrite/plan";
        ];
      (* Encode chunks under a cache are per-function, and the pinned
         layout re-places the (same-length) perturbed function back into
         its old slot, so every other function's chunk key is untouched:
         exactly the perturbed function's chunk re-encodes. *)
      Alcotest.(check int) "exactly one encode miss" 1
        (get "cache.miss:encode");
      (* Everything else hits: total activity matches the cold run. *)
      let cold = Cache.stats warm in
      Alcotest.(check int) "hits + misses = cold misses"
        cold.Cache.c_misses
        (get "cache.hit" + get "cache.miss")

(* A data-only edit — one byte flipped in a loaded data section,
   validated to leave the parsed analysis identical — keeps every
   text-stage entry warm: with piecewise context digests only
   [parse/finalize] (the one stage dereferencing data words) may miss,
   and the cached rewrite still matches the uncached rewrite of the
   edited binary byte-for-byte. *)
let cache_data_edit () =
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  let options = opts Mode.Jt in
  let warm = Cache.create () in
  ignore (Runner.rewrite ~options ~jobs:1 ~cache:warm bin);
  match Runner.perturb_data (Runner.parse ~jobs:1 bin) with
  | None -> Alcotest.fail "no safely perturbable data byte in the spec binary"
  | Some (pbin, sname) ->
      let uncached = Runner.rewrite ~options ~jobs:1 pbin in
      let t = Trace.create () in
      let rw =
        Trace.with_current t (fun () ->
            Runner.rewrite ~options ~jobs:1 ~cache:(Cache.clone warm) pbin)
      in
      check_same ~what:(Printf.sprintf "data edit in %s" sname) uncached rw;
      let get name = Option.value ~default:0 (Trace.find_counter t name) in
      List.iter
        (fun stage ->
          Alcotest.(check int)
            (Printf.sprintf "zero misses in %s" stage)
            0
            (get ("cache.miss:" ^ stage)))
        [
          "parse/pass1"; "parse/fptr"; "parse/fptr2"; "rewrite/relocate";
          "rewrite/plan"; "encode";
        ];
      Alcotest.(check bool) "finalize recomputed" true
        (get "cache.miss:parse/finalize" > 0);
      Alcotest.(check int) "every miss is a finalize miss" (get "cache.miss")
        (get "cache.miss:parse/finalize")

(* Renaming one function symbol costs exactly that function's own
   entries: symbol names are digested namelessly in every cross-function
   key and relocated-block labels are address-namespaced, so each
   per-function stage misses once for the renamed function — and encode
   misses zero chunks, because the pinned layout keeps every address and
   no chunk's items or resolved labels change. *)
let cache_symbol_edit () =
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  let options = opts Mode.Jt in
  let warm = Cache.create () in
  ignore (Runner.rewrite ~options ~jobs:1 ~cache:warm bin);
  match Runner.perturb_symbol (Runner.parse ~jobs:1 bin) with
  | None -> Alcotest.fail "no renamable function symbol in the spec binary"
  | Some (pbin, fname) ->
      let uncached = Runner.rewrite ~options ~jobs:1 pbin in
      let t = Trace.create () in
      let rw =
        Trace.with_current t (fun () ->
            Runner.rewrite ~options ~jobs:1 ~cache:(Cache.clone warm) pbin)
      in
      check_same ~what:(Printf.sprintf "renamed %s" fname) uncached rw;
      let get name = Option.value ~default:0 (Trace.find_counter t name) in
      List.iter
        (fun stage ->
          Alcotest.(check int)
            (Printf.sprintf "one miss in %s" stage)
            1
            (get ("cache.miss:" ^ stage)))
        [
          "parse/pass1"; "parse/fptr"; "parse/finalize"; "parse/fptr2";
          "rewrite/relocate"; "rewrite/plan";
        ];
      Alcotest.(check int) "zero encode misses" 0 (get "cache.miss:encode")

(* The pinned incremental layout is jobs-independent: warm rewrites of a
   perturbed binary at any jobs count produce identical cache statistics
   and bit-identical output (the layout/pin decisions are serial; only
   encoding fans out). *)
let cache_pinning_jobs () =
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  let options = opts Mode.Jt in
  let warm = Cache.create () in
  ignore (Runner.rewrite ~options ~jobs:1 ~cache:warm bin);
  match Runner.perturb_function (Runner.parse ~jobs:1 bin) with
  | None -> Alcotest.fail "no safely perturbable function in the spec binary"
  | Some (pbin, _) -> (
      let uncached = Runner.rewrite ~options ~jobs:1 pbin in
      let stats =
        List.map
          (fun jobs ->
            let c = Cache.clone warm in
            let rw = Runner.rewrite ~options ~jobs ~cache:c pbin in
            check_same
              ~what:(Printf.sprintf "warm perturbed jobs=%d" jobs)
              uncached rw;
            Cache.stats c)
          [ 1; 2; 4 ]
      in
      match stats with
      | s0 :: rest ->
          List.iteri
            (fun i s ->
              Alcotest.(check bool)
                (Printf.sprintf "pinned stats jobs-independent (%d)" i)
                true (s = s0))
            rest
      | [] -> ())

(* ------------------------------------------------------------------ *)
(* Random programs: differential property                              *)
(* ------------------------------------------------------------------ *)

let random_spec_gen =
  let open QCheck2.Gen in
  let* seed = int_range 1 100_000 in
  let* n_compute = int_range 1 4 in
  let* n_switch = int_range 0 3 in
  let* n_dispatch = int_range 0 2 in
  let* exceptions = bool in
  return
    {
      Gen.seed;
      name = Printf.sprintf "par%d" seed;
      langs = [ Binary.C ];
      exceptions;
      n_compute;
      n_switch;
      n_dispatch;
      n_hard_spill = 0;
      n_frameless_tail = 0;
      n_data_table = 1;
      iters = 4;
      inner = 2;
      work = 3;
      cases = 4;
    }

let parallel_equals_serial =
  QCheck2.Test.make ~count:30
    ~name:"parallel: rewrite ~jobs:k = rewrite ~jobs:1"
    ~print:(fun (spec, (arch, mode, pie, jobs)) ->
      Printf.sprintf "seed=%d %s/%s%s jobs=%d" spec.Gen.seed (Arch.name arch)
        (Mode.name mode)
        (if pie then " pie" else "")
        jobs)
    QCheck2.Gen.(
      pair random_spec_gen
        (quad (oneofl Arch.all) (oneofl Mode.all) bool (oneofl [ 2; 4; 8 ])))
    (fun (spec, (arch, mode, pie, jobs)) ->
      let prog = Gen.build spec in
      let bin, _ = Icfg_codegen.Compile.compile ~pie arch prog in
      let options = opts mode in
      equal_rewrite
        (Runner.rewrite ~options ~jobs:1 bin)
        (Runner.rewrite ~options ~jobs bin))

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "spec battery x86_64" `Quick (spec_battery Arch.X86_64);
        Alcotest.test_case "spec battery aarch64" `Quick (spec_battery Arch.Aarch64);
        Alcotest.test_case "spec battery ppc64le" `Quick (spec_battery Arch.Ppc64le);
        Alcotest.test_case "option variants" `Quick variant_battery;
        Alcotest.test_case "parallel parse" `Quick parse_battery;
        Alcotest.test_case "sharded func-ptr analysis" `Quick funcptr_battery;
        Alcotest.test_case "sharded section encoding" `Quick asm_shard_battery;
        Alcotest.test_case "pool: shared growth + clamp" `Quick pool_shared_growth;
        Alcotest.test_case "pool: fail-fast abort" `Quick pool_fail_fast;
        Alcotest.test_case "pool: usable after failure" `Quick pool_partial_failure;
        Alcotest.test_case "pool: incomplete-map diagnostic" `Quick
          pool_incomplete_diag;
        Alcotest.test_case "go binaries" `Quick go_battery;
        Alcotest.test_case "cache: cached = uncached, jobs-independent" `Quick
          cache_battery;
        Alcotest.test_case "cache: disk tier round-trip" `Quick
          cache_disk_battery;
        Alcotest.test_case "cache: per-function invalidation" `Quick
          cache_invalidation;
        Alcotest.test_case "cache: data-only edit keeps text stages warm"
          `Quick cache_data_edit;
        Alcotest.test_case "cache: one-symbol edit is function-local" `Quick
          cache_symbol_edit;
        Alcotest.test_case "cache: pinned layout jobs-independent" `Quick
          cache_pinning_jobs;
        QCheck_alcotest.to_alcotest parallel_equals_serial;
      ] );
  ]
