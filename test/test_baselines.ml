(* Baseline tests: each baseline's characteristic behaviour — refusals,
   failure modes, and overhead ordering relative to our system. *)

open Icfg_isa
open Icfg_codegen
module Binary = Icfg_obj.Binary
module Baseline = Icfg_baselines.Baseline
module Capabilities = Icfg_baselines.Capabilities
module Rewriter = Icfg_core.Rewriter
module Mode = Icfg_core.Mode
module Vm = Icfg_runtime.Vm

let run_outcome ?(pie = false) orig_bin outcome =
  let config =
    { (Vm.default_config ()) with Vm.load_base = (if pie then 0x20000000 else 0) }
  in
  let orig =
    Vm.run ~config ~routines:(Icfg_runtime.Runtime_lib.standard ()) orig_bin
  in
  match outcome with
  | Baseline.Refused r -> `Refused r
  | Baseline.Rewritten rw -> (
      let config = Rewriter.vm_config_for rw config in
      let r =
        Vm.run ~config
          ~routines:(Rewriter.routines_for rw ~counters:(Hashtbl.create 4))
          rw.Rewriter.rw_binary
      in
      match r.Vm.outcome with
      | Vm.Crashed m -> `Crashed m
      | Vm.Halted ->
          if r.Vm.output = orig.Vm.output then `Pass (r, rw) else `Mismatch)

let check_pass name result =
  match result with
  | `Pass _ -> ()
  | `Refused r -> Alcotest.failf "%s refused: %s" name r
  | `Crashed m -> Alcotest.failf "%s crashed: %s" name m
  | `Mismatch -> Alcotest.failf "%s output mismatch" name

(* ------------------------------------------------------------------ *)
(* Capabilities (Table 1)                                              *)
(* ------------------------------------------------------------------ *)

let test_table1_shape () =
  Alcotest.(check int) "seven approaches" 7 (List.length Capabilities.table1);
  let ours = List.nth Capabilities.table1 6 in
  Alcotest.(check string) "ours last" "Our work" ours.Capabilities.approach;
  Alcotest.(check bool) "ours rewrites indirect" true
    (ours.Capabilities.rewrites = Capabilities.R_indirect);
  Alcotest.(check bool) "ours needs no relocs" true
    (ours.Capabilities.reloc_use = Capabilities.Rel_none)

(* ------------------------------------------------------------------ *)
(* SRBI                                                                *)
(* ------------------------------------------------------------------ *)

let test_srbi_refuses_cpp_on_risc () =
  List.iter
    (fun arch ->
      let bin, _ = Compile.compile arch Test_codegen.prog_exceptions in
      match Baseline.srbi bin with
      | Baseline.Refused _ -> ()
      | Baseline.Rewritten _ ->
          Alcotest.failf "%s: srbi must refuse C++ exceptions" (Arch.name arch))
    [ Arch.Ppc64le; Arch.Aarch64 ]

let test_srbi_basic_roundtrip () =
  List.iter
    (fun arch ->
      let bin, _ = Compile.compile arch Test_codegen.prog_calls in
      check_pass (Arch.name arch ^ "/srbi") (run_outcome bin (Baseline.srbi bin)))
    Arch.all

let test_srbi_trapmap_section_on_ppc () =
  let bin, _ = Compile.compile Arch.Ppc64le Test_codegen.prog_calls in
  match Baseline.srbi bin with
  | Baseline.Rewritten rw ->
      Alcotest.(check bool) "trapmap present" true
        (Binary.section rw.Rewriter.rw_binary ".trapmap" <> None)
  | Baseline.Refused r -> Alcotest.failf "refused: %s" r

(* ------------------------------------------------------------------ *)
(* Egalito-style IR lowering                                           *)
(* ------------------------------------------------------------------ *)

let test_ir_lowering_requires_pie () =
  let bin, _ = Compile.compile Arch.X86_64 Test_codegen.prog_loop in
  match Baseline.ir_lowering bin with
  | Baseline.Refused _ -> ()
  | Baseline.Rewritten _ -> Alcotest.fail "must require PIE"

let test_ir_lowering_all_or_nothing () =
  let bin, _ =
    Compile.compile ~pie:true Arch.X86_64
      (Test_codegen.switch_prog Ir.Jt_data_table)
  in
  match Baseline.ir_lowering bin with
  | Baseline.Refused r ->
      Alcotest.(check bool) "names the function" true
        (String.length r > 10)
  | Baseline.Rewritten _ -> Alcotest.fail "must refuse unliftable functions"

let test_ir_lowering_roundtrip_and_shape () =
  List.iter
    (fun arch ->
      let bin, _ =
        Compile.compile ~pie:true arch (Test_codegen.switch_prog Ir.Jt_plain)
      in
      match Baseline.ir_lowering bin with
      | Baseline.Refused r -> Alcotest.failf "%s refused: %s" (Arch.name arch) r
      | Baseline.Rewritten rw as o ->
          check_pass (Arch.name arch ^ "/egalito") (run_outcome ~pie:true bin o);
          (* regenerated: no original .text, entry relocated *)
          Alcotest.(check bool) "no original text" true
            (Binary.section rw.Rewriter.rw_binary ".text" = None);
          Alcotest.(check bool) "entry moved into .instr" true
            (let e = rw.Rewriter.rw_binary.Binary.entry in
             match Binary.section rw.Rewriter.rw_binary ".instr" with
             | Some s -> Icfg_obj.Section.contains s e
             | None -> false);
          (* near-original size: regeneration, not duplication *)
          let s = rw.Rewriter.rw_stats in
          Alcotest.(check bool) "size within 25% of original" true
            (abs (s.Rewriter.s_new_size - s.Rewriter.s_orig_size) * 4
            < s.Rewriter.s_orig_size))
    Arch.all

let test_ir_lowering_metadata_refusals () =
  let libxul, _ = Icfg_workloads.Apps.libxul Arch.X86_64 in
  (match Baseline.ir_lowering libxul with
  | Baseline.Refused _ -> ()
  | _ -> Alcotest.fail "must refuse libxul");
  let docker, _ = Icfg_workloads.Apps.docker Arch.X86_64 in
  (match Baseline.ir_lowering docker with
  | Baseline.Refused _ -> ()
  | _ -> Alcotest.fail "must refuse docker");
  let libcuda, _ = Icfg_workloads.Apps.libcuda ~iters:5 Arch.X86_64 in
  match Baseline.ir_lowering libcuda with
  | Baseline.Refused r ->
      Alcotest.(check bool) "symbol versioning" true (String.length r > 0)
  | _ -> Alcotest.fail "must refuse libcuda"

(* ------------------------------------------------------------------ *)
(* E9Patch-style instruction patching                                  *)
(* ------------------------------------------------------------------ *)

let test_insn_patching_roundtrip_and_cost () =
  List.iter
    (fun arch ->
      let bin, _ = Compile.compile arch (Test_codegen.switch_prog Ir.Jt_plain) in
      match run_outcome bin (Baseline.insn_patching bin) with
      | `Pass (r, _) -> (
          (* compare against our jt mode: patching must be much slower *)
          match run_outcome bin (Baseline.ours ~mode:Mode.Jt bin) with
          | `Pass (r_ours, _) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s patching (%d) slower than ours (%d)"
                   (Arch.name arch) r.Vm.cycles r_ours.Vm.cycles)
                true
                (r.Vm.cycles > r_ours.Vm.cycles)
          | _ -> Alcotest.fail "ours failed")
      | `Refused r -> Alcotest.failf "refused: %s" r
      | `Crashed m -> Alcotest.failf "%s crashed: %s" (Arch.name arch) m
      | `Mismatch -> Alcotest.failf "%s mismatch" (Arch.name arch))
    Arch.all

(* ------------------------------------------------------------------ *)
(* Multiverse-style dynamic translation                                *)
(* ------------------------------------------------------------------ *)

let test_dynamic_translation_roundtrip () =
  List.iter
    (fun arch ->
      List.iter
        (fun (name, prog) ->
          let bin, _ = Compile.compile arch prog in
          check_pass
            (Printf.sprintf "%s/dt/%s" (Arch.name arch) name)
            (run_outcome bin (Baseline.dynamic_translation bin)))
        [
          ("switch", Test_codegen.switch_prog Ir.Jt_plain);
          ("fptr", Test_codegen.prog_fptr);
          ("tailcall", Test_codegen.prog_tailcall);
        ])
    Arch.all

let test_dynamic_translation_uses_dt_sites () =
  let bin, _ = Compile.compile Arch.X86_64 Test_codegen.prog_fptr in
  match Baseline.dynamic_translation bin with
  | Baseline.Rewritten rw ->
      Alcotest.(check bool) "registered translation sites" true
        (Hashtbl.length rw.Rewriter.rw_dt_sites > 0)
  | Baseline.Refused r -> Alcotest.failf "refused: %s" r

(* ------------------------------------------------------------------ *)
(* BOLT-like                                                           *)
(* ------------------------------------------------------------------ *)

let test_bolt_function_reorder_needs_link_relocs () =
  let prog = Test_codegen.switch_prog Ir.Jt_plain in
  (* without -Wl,-q *)
  let bin, _ = Compile.compile Arch.X86_64 prog in
  (match Baseline.bolt_function_reorder bin with
  | Baseline.Refused msg ->
      Alcotest.(check bool) "BOLT-ERROR message" true
        (String.length msg > 10)
  | Baseline.Rewritten _ -> Alcotest.fail "must refuse");
  (* even as PIE (the paper stresses this) *)
  let bin_pie, _ = Compile.compile ~pie:true Arch.X86_64 prog in
  (match Baseline.bolt_function_reorder bin_pie with
  | Baseline.Refused _ -> ()
  | Baseline.Rewritten _ -> Alcotest.fail "must refuse PIE without link relocs");
  (* with -Wl,-q it works and runs *)
  let bin_q, _ = Compile.compile ~link_relocs:true Arch.X86_64 prog in
  check_pass "bolt with -q" (run_outcome bin_q (Baseline.bolt_function_reorder bin_q))

let test_bolt_block_reorder_corruption () =
  (* a binary with memory-indirect calls comes out corrupted *)
  let bin, _ = Compile.compile Arch.X86_64 Test_codegen.prog_fptr in
  (match run_outcome bin (Baseline.bolt_block_reorder bin) with
  | `Crashed _ -> ()
  | _ -> Alcotest.fail "expected corrupted binary");
  (* a plain binary reorders fine *)
  let bin2, _ = Compile.compile Arch.X86_64 Test_codegen.prog_loop in
  check_pass "bolt block reorder" (run_outcome bin2 (Baseline.bolt_block_reorder bin2))

(* ------------------------------------------------------------------ *)
(* Overhead ordering across approaches                                 *)
(* ------------------------------------------------------------------ *)

let test_overhead_ordering () =
  (* On a switch+fptr workload: patching > srbi > dir >= jt >= func-ptr. *)
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  let cycles outcome =
    match run_outcome bin outcome with
    | `Pass (r, _) -> r.Vm.cycles
    | `Refused r -> Alcotest.failf "refused: %s" r
    | `Crashed m -> Alcotest.failf "crashed: %s" m
    | `Mismatch -> Alcotest.fail "mismatch"
  in
  let patching = cycles (Baseline.insn_patching bin) in
  let dir = cycles (Baseline.ours ~mode:Mode.Dir bin) in
  let jt = cycles (Baseline.ours ~mode:Mode.Jt bin) in
  let fp = cycles (Baseline.ours ~mode:Mode.Func_ptr bin) in
  Alcotest.(check bool)
    (Printf.sprintf "patching (%d) > dir (%d)" patching dir)
    true (patching > dir);
  Alcotest.(check bool) (Printf.sprintf "dir (%d) >= jt (%d)" dir jt) true (dir >= jt);
  Alcotest.(check bool) (Printf.sprintf "jt (%d) >= fp (%d)" jt fp) true (jt >= fp)

(* ------------------------------------------------------------------ *)
(* Refusal messages and their histogram keys                           *)
(*                                                                     *)
(* The corpus matrix buckets refusals by [Baseline.refusal_key], and   *)
(* the bench gate keys its refusal histograms on the result — both     *)
(* depend on these exact strings staying put.                          *)
(* ------------------------------------------------------------------ *)

module Spec = Icfg_workloads.Spec_suite
module Apps = Icfg_workloads.Apps

let refused name = function
  | Baseline.Refused r -> r
  | Baseline.Rewritten _ -> Alcotest.failf "%s: expected a refusal" name

let test_refusal_strings_stable () =
  let cpp, _ = Compile.compile Arch.Aarch64 Test_codegen.prog_exceptions in
  Alcotest.(check string) "srbi C++ refusal"
    "call emulation for C++ exceptions is only implemented on x86-64 in \
     Dyninst-10.2"
    (refused "srbi/cpp" (Baseline.srbi cpp));
  let gcc =
    List.find
      (fun b -> b.Spec.bench_name = "602.gcc_s")
      (Spec.benchmarks Arch.Ppc64le)
  in
  let gcc_bin, _ = Spec.compile Arch.Ppc64le gcc in
  Alcotest.(check string) "srbi trap refusal (the 602.gcc failure)"
    "heavy trap-trampoline use; Dyninst-10.2's runtime-library signal \
     delivery is broken (the 602.gcc failure)"
    (refused "srbi/trap" (Baseline.srbi gcc_bin));
  let non_pie, _ = Compile.compile Arch.X86_64 Test_codegen.prog_loop in
  Alcotest.(check string) "ir-lowering non-PIE refusal"
    "IR lowering requires PIE with run-time relocation entries"
    (refused "irl/pie" (Baseline.ir_lowering non_pie));
  let cpp_pie, _ =
    Compile.compile ~pie:true Arch.X86_64 Test_codegen.prog_exceptions
  in
  Alcotest.(check string) "ir-lowering C++ refusal"
    "C++ exceptions are not supported (known Egalito limitation)"
    (refused "irl/cpp" (Baseline.ir_lowering cpp_pie));
  let docker, _ = Apps.docker Arch.X86_64 in
  Alcotest.(check string) "ir-lowering Go refusal"
    "Go metadata and builtin stack unwinding are not supported"
    (refused "irl/go" (Baseline.ir_lowering docker));
  (* libxul itself trips the C++-exceptions check first; the Rust branch
     needs a binary whose only offending feature is the metadata. *)
  let rusty =
    let bin, _ = Compile.compile ~pie:true Arch.X86_64 Test_codegen.prog_calls in
    {
      bin with
      Binary.features =
        { bin.Binary.features with Binary.rust_metadata = true };
    }
  in
  Alcotest.(check string) "ir-lowering Rust refusal (the libxul failure)"
    "unsupported Rust metadata (the libxul failure)"
    (refused "irl/rust" (Baseline.ir_lowering rusty));
  let libcuda, _ = Apps.libcuda ~iters:5 Arch.X86_64 in
  Alcotest.(check string) "ir-lowering symver refusal (the libcuda failure)"
    "cannot rewrite symbol versioning information (the libcuda failure)"
    (refused "irl/symver" (Baseline.ir_lowering libcuda));
  Alcotest.(check string) "bolt link-relocs refusal"
    "BOLT-ERROR: function reordering only works when relocations are enabled"
    (refused "bolt" (Baseline.bolt_function_reorder non_pie))

let test_refusal_keys () =
  List.iter
    (fun (reason, key) ->
      Alcotest.(check string) reason key (Baseline.refusal_key reason))
    [
      ( "heavy trap-trampoline use; Dyninst-10.2's runtime-library signal \
         delivery is broken (the 602.gcc failure)",
        "tramp/trap" );
      ( "all-or-nothing: cannot lift function f0 (unresolved-indirect-jump)",
        "func/unresolved-indirect-jump" );
      ( "call emulation for C++ exceptions is only implemented on x86-64 in \
         Dyninst-10.2",
        "feature/cpp-exceptions" );
      ( "C++ exceptions are not supported (known Egalito limitation)",
        "feature/cpp-exceptions" );
      ( "IR lowering requires PIE with run-time relocation entries",
        "feature/non-pie" );
      ( "Go metadata and builtin stack unwinding are not supported",
        "feature/go-runtime" );
      ("unsupported Rust metadata (the libxul failure)", "feature/rust-metadata");
      ( "cannot rewrite symbol versioning information (the libcuda failure)",
        "feature/symbol-versioning" );
      ( "BOLT-ERROR: function reordering only works when relocations are \
         enabled",
        "feature/link-relocs" );
      ("some novel failure", "feature/other");
    ]

let test_roster_shape () =
  Alcotest.(check (list string)) "roster names and order"
    [
      "srbi"; "ir-lowering"; "insn-patching"; "dyn-translation"; "ours/dir";
      "ours/jt"; "ours/func-ptr";
    ]
    (List.map fst Baseline.approaches)

let suite =
  [
    ("baselines:table1", [ Alcotest.test_case "shape" `Quick test_table1_shape ]);
    ( "baselines:srbi",
      [
        Alcotest.test_case "refuses C++ on RISC" `Quick test_srbi_refuses_cpp_on_risc;
        Alcotest.test_case "roundtrip" `Quick test_srbi_basic_roundtrip;
        Alcotest.test_case "ppc trapmap section" `Quick
          test_srbi_trapmap_section_on_ppc;
      ] );
    ( "baselines:ir-lowering",
      [
        Alcotest.test_case "requires PIE" `Quick test_ir_lowering_requires_pie;
        Alcotest.test_case "all-or-nothing" `Quick test_ir_lowering_all_or_nothing;
        Alcotest.test_case "roundtrip and shape" `Quick
          test_ir_lowering_roundtrip_and_shape;
        Alcotest.test_case "metadata refusals" `Quick
          test_ir_lowering_metadata_refusals;
      ] );
    ( "baselines:patching",
      [
        Alcotest.test_case "roundtrip and cost" `Quick
          test_insn_patching_roundtrip_and_cost;
      ] );
    ( "baselines:dynamic-translation",
      [
        Alcotest.test_case "roundtrip" `Quick test_dynamic_translation_roundtrip;
        Alcotest.test_case "dt sites" `Quick test_dynamic_translation_uses_dt_sites;
      ] );
    ( "baselines:bolt",
      [
        Alcotest.test_case "function reorder needs link relocs" `Quick
          test_bolt_function_reorder_needs_link_relocs;
        Alcotest.test_case "block reorder corruption" `Quick
          test_bolt_block_reorder_corruption;
      ] );
    ( "baselines:ordering",
      [ Alcotest.test_case "overhead ordering" `Quick test_overhead_ordering ] );
    ( "baselines:refusals",
      [
        Alcotest.test_case "refusal strings stable" `Quick
          test_refusal_strings_stable;
        Alcotest.test_case "refusal histogram keys" `Quick test_refusal_keys;
        Alcotest.test_case "roster shape" `Quick test_roster_shape;
      ] );
  ]
