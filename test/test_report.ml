(* Reconciliation battery for the attribution + reporting layer (PR 4).

   Contracts under test:

   1. Attribution exactly tiles [Rewriter.stats]: the per-cause totals sum
      to the aggregate counters for every mode, failure model and jobs
      value — no site is double-counted or dropped.

   2. Attribution is observation-only and schedule-independent: the record
      is structurally identical for any [jobs] value, and the rewritten
      bytes and stats are unchanged by its presence (it is assembled from
      the serialized placement plans, never the other way around).

   3. Injected graded failures (section 4.3) surface as their specific
      cause: [Bound_over] -> [Jt_bound_over], [Bound_under] ->
      [Jt_bound_under], spill-tracking off -> [Jt_unresolved_spill].

   4. The bench regression gate ([Bench_diff]) classifies differences per
      its policy: worse-is-higher counter increases and lost rows gate,
      time growth gates only under --gate with matching core counts,
      lane rows and new rows never gate.

   5. Failure-path observability: [Trace.with_file] writes the trace even
      when the traced function raises, and [Verify.strong_test] returns a
      populated trace even when the verdict is a failure. *)

open Icfg_isa
open Icfg_core
module Gen = Icfg_workloads.Gen
module Runner = Icfg_harness.Runner
module Bench_diff = Icfg_harness.Bench_diff
module Binary = Icfg_obj.Binary
module Section = Icfg_obj.Section
module Failure_model = Icfg_analysis.Failure_model
module A = Attribution

let opts mode =
  { Rewriter.default_options with Rewriter.mode; payload = Rewriter.P_count }

let first_bench arch =
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  fst (Icfg_workloads.Spec_suite.compile arch bench)

let modes = [ Mode.Dir; Mode.Jt; Mode.Func_ptr ]

(* ------------------------------------------------------------------ *)
(* 1. Attribution totals tile the stats record                         *)
(* ------------------------------------------------------------------ *)

let place_count attr c =
  List.fold_left
    (fun n (r : A.func_row) ->
      n
      + List.length
          (List.filter (fun (s : A.block_site) -> s.A.bs_place = Some c)
             r.A.fr_sites))
    0 attr.A.a_rows

let check_reconciles label (rw : Rewriter.t) =
  let st = rw.Rewriter.rw_stats and attr = rw.Rewriter.rw_attribution in
  let check name want got =
    Alcotest.(check int) (Printf.sprintf "%s: %s" label name) want got
  in
  check "cfl blocks" st.Rewriter.s_cfl_blocks (A.cfl_total attr);
  check "trampolines" st.Rewriter.s_trampolines (A.tramp_total attr);
  check "trap trampolines" st.Rewriter.s_trap_trampolines (A.trap_total attr);
  check "short" st.Rewriter.s_short_trampolines (place_count attr A.Tramp_short);
  check "long" st.Rewriter.s_long_trampolines (place_count attr A.Tramp_long);
  check "hop" st.Rewriter.s_multi_hop (place_count attr A.Tramp_hop);
  check "trap causes sum"
    st.Rewriter.s_trap_trampolines
    (place_count attr A.Trap_no_reach
    + place_count attr A.No_scratch_space
    + place_count attr A.No_hop_kind
    + place_count attr A.Scratch_pool_disabled);
  check "funcs total" st.Rewriter.s_funcs_total (List.length attr.A.a_rows);
  check "funcs instrumented" st.Rewriter.s_funcs_instrumented
    (List.length
       (List.filter (fun r -> r.A.fr_instrumented) attr.A.a_rows));
  check "blocks" st.Rewriter.s_blocks
    (List.fold_left (fun n r -> n + r.A.fr_blocks) 0 attr.A.a_rows);
  (* Every placement cause on a site is a trampoline cause, and every CFL
     cause is from the CFL axis. *)
  List.iter
    (fun (r : A.func_row) ->
      List.iter
        (fun (s : A.block_site) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: cfl axis at %x" label s.A.bs_addr)
            "cfl" (A.axis s.A.bs_cfl);
          match s.A.bs_place with
          | Some c ->
              Alcotest.(check string)
                (Printf.sprintf "%s: tramp axis at %x" label s.A.bs_addr)
                "tramp" (A.axis c)
          | None -> ())
        r.A.fr_sites)
    attr.A.a_rows

let reconciliation () =
  let bin = first_bench Arch.X86_64 in
  List.iter
    (fun (fm, fm_name) ->
      List.iter
        (fun mode ->
          List.iter
            (fun jobs ->
              let rw = Runner.rewrite ~fm ~options:(opts mode) ~jobs bin in
              check_reconciles
                (Printf.sprintf "%s/%s/jobs=%d" fm_name (Mode.name mode) jobs)
                rw)
            [ 1; 4 ])
        modes)
    [ (Failure_model.ours, "ours"); (Failure_model.srbi, "srbi") ]

(* The baselines plumb their own options; make sure an every-block
   placement (SRBI-like) reconciles too, trap causes included. *)
let reconciliation_srbi_like () =
  let bin = first_bench Arch.X86_64 in
  let rw =
    Runner.rewrite ~options:(Rewriter.srbi_like Rewriter.P_empty) bin
  in
  check_reconciles "srbi-like" rw;
  Alcotest.(check bool) "every-block placement recorded" true
    (A.count rw.Rewriter.rw_attribution A.Cfl_every_block > 0)

(* ------------------------------------------------------------------ *)
(* 2. Schedule-independence and mode monotonicity                      *)
(* ------------------------------------------------------------------ *)

let section_image (s : Section.t) =
  (s.Section.name, s.Section.vaddr, Bytes.to_string s.Section.data)

let attribution_schedule_independent () =
  let bin = first_bench Arch.X86_64 in
  List.iter
    (fun mode ->
      let base = Runner.rewrite ~options:(opts mode) ~jobs:1 bin in
      List.iter
        (fun jobs ->
          let rw = Runner.rewrite ~options:(opts mode) ~jobs bin in
          Alcotest.(check bool)
            (Printf.sprintf "%s: attribution identical, jobs=%d"
               (Mode.name mode) jobs)
            true
            (rw.Rewriter.rw_attribution = base.Rewriter.rw_attribution);
          Alcotest.(check bool)
            (Printf.sprintf "%s: bytes identical, jobs=%d" (Mode.name mode)
               jobs)
            true
            (List.map section_image rw.Rewriter.rw_binary.Binary.sections
            = List.map section_image base.Rewriter.rw_binary.Binary.sections))
        [ 2; 4 ])
    modes

let mode_monotone () =
  let bin = first_bench Arch.X86_64 in
  let attrs =
    List.map
      (fun m ->
        (Runner.rewrite ~options:(opts m) bin).Rewriter.rw_attribution)
      modes
  in
  match attrs with
  | [ dir; jt; fp ] ->
      Alcotest.(check bool) "cfl non-increasing" true
        (A.cfl_total dir >= A.cfl_total jt && A.cfl_total jt >= A.cfl_total fp);
      Alcotest.(check bool) "traps non-increasing" true
        (A.trap_total dir >= A.trap_total jt
        && A.trap_total jt >= A.trap_total fp);
      let d = A.delta ~dir jt in
      Alcotest.(check int) "delta matches totals"
        (A.cfl_total jt - A.cfl_total dir)
        d.A.d_cfl;
      Alcotest.(check bool) "jt mode delta removes cfl blocks" true
        (d.A.d_cfl <= 0)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* 3. Injected graded failures surface as their specific cause         *)
(* ------------------------------------------------------------------ *)

let graded_spec =
  { Gen.default_spec with Gen.seed = 42; name = "graded"; n_switch = 3; iters = 40 }

let attr_of ~fm bin =
  (Runner.rewrite ~fm ~options:(opts Mode.Dir) bin).Rewriter.rw_attribution

let graded_causes () =
  let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 (Gen.build graded_spec) in
  let base = attr_of ~fm:Failure_model.ours bin in
  Alcotest.(check bool) "exact bounds: resolved-exact tables" true
    (A.count base A.Jt_resolved_exact > 0);
  Alcotest.(check int) "exact bounds: no bound causes" 0
    (A.count base A.Jt_bound_over + A.count base A.Jt_bound_under);
  let over_fm =
    {
      (Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_over 8))
      with
      Failure_model.extend_to_known_data = false;
    }
  in
  let over = attr_of ~fm:over_fm bin in
  Alcotest.(check bool) "over-approx surfaces as jt/bound-over" true
    (A.count over A.Jt_bound_over > 0);
  Alcotest.(check int) "over-approx: no under causes" 0
    (A.count over A.Jt_bound_under);
  let under_fm =
    Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_under 2)
  in
  let under = attr_of ~fm:under_fm bin in
  Alcotest.(check bool) "under-approx surfaces as jt/bound-under" true
    (A.count under A.Jt_bound_under > 0)

let graded_spill () =
  (* A switch whose table base is spilled to the stack: SRBI's analyses
     (no spill tracking, no layout heuristic) fail the slice at the spill
     and leave the function uninstrumented — both facts must be visible. *)
  let spec = { graded_spec with Gen.name = "graded-srbi"; n_hard_spill = 1 } in
  let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 (Gen.build spec) in
  let base = attr_of ~fm:Failure_model.ours bin in
  Alcotest.(check int) "ours: no spill causes" 0
    (A.count base A.Jt_unresolved_spill);
  Alcotest.(check int) "ours: everything instrumented" 0
    (A.count base A.Unresolved_indirect_jump);
  let srbi = attr_of ~fm:Failure_model.srbi bin in
  Alcotest.(check bool) "srbi: spill surfaces as jt/unresolved-spill" true
    (A.count srbi A.Jt_unresolved_spill > 0);
  Alcotest.(check bool) "srbi: function left uninstrumented" true
    (A.count srbi A.Unresolved_indirect_jump > 0);
  (* The spill cause lives on the row of the function that failed. *)
  Alcotest.(check bool) "cause attributed to the failed function" true
    (List.exists
       (fun (r : A.func_row) ->
         r.A.fr_fail = Some A.Unresolved_indirect_jump
         && List.exists (fun (_, c) -> c = A.Jt_unresolved_spill) r.A.fr_jt)
       srbi.A.a_rows)

(* QCheck: the specific cause appears on any generated workload whose
   tables the full model resolves. *)
let graded_spec_gen =
  let open QCheck2.Gen in
  let* seed = int_range 1 100_000 in
  let* n_switch = int_range 1 3 in
  return
    {
      Gen.default_spec with
      Gen.seed;
      name = Printf.sprintf "gradedq%d" seed;
      n_switch;
      iters = 8;
    }

let graded_causes_qcheck =
  QCheck2.Test.make ~count:10
    ~name:"report: injected bound failures surface as their cause"
    ~print:(fun spec -> Printf.sprintf "seed=%d" spec.Gen.seed)
    graded_spec_gen
    (fun spec ->
      let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 (Gen.build spec) in
      let base = attr_of ~fm:Failure_model.ours bin in
      let resolved = A.count base A.Jt_resolved_exact in
      resolved = 0
      ||
      let over_fm =
        {
          (Failure_model.with_bounds Failure_model.ours
             (Failure_model.Bound_over 8))
          with
          Failure_model.extend_to_known_data = false;
        }
      in
      let under_fm =
        Failure_model.with_bounds Failure_model.ours
          (Failure_model.Bound_under 2)
      in
      A.count (attr_of ~fm:over_fm bin) A.Jt_bound_over > 0
      && A.count (attr_of ~fm:under_fm bin) A.Jt_bound_under > 0)

(* ------------------------------------------------------------------ *)
(* 4. The bench regression gate                                        *)
(* ------------------------------------------------------------------ *)

(* A minimal icfg-bench-micro/1 document builder. *)
let counters_json counters =
  String.concat ", "
    (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v) counters)

let doc ?(cores = 1) ?(micro = []) ?(stages = []) ?(cache = []) ?(corpus = [])
    () =
  let micro_json =
    String.concat ", "
      (List.map
         (fun (name, ns) ->
           Printf.sprintf "{\"name\": \"%s\", \"ns_per_run\": %.1f}" name ns)
         micro)
  in
  let stages_json =
    String.concat ", "
      (List.map
         (fun (stage, jobs, ns, counters) ->
           Printf.sprintf
             "{\"stage\": \"%s\", \"jobs\": %d, \"spans\": 1, \"ns\": %d, \
              \"counters\": {%s}}"
             stage jobs ns (counters_json counters))
         stages)
  in
  let cache_json =
    String.concat ", "
      (List.map
         (fun (name, ns, counters) ->
           Printf.sprintf
             "{\"name\": \"%s\", \"ns_per_run\": %.1f, \"counters\": {%s}}"
             name ns (counters_json counters))
         cache)
  in
  let corpus_json =
    String.concat ", "
      (List.map
         (fun (approach, cells, pass, p50, p95, refusals) ->
           Printf.sprintf
             "{\"approach\": \"%s\", \"cells\": %d, \"pass_rate_pct\": %.1f, \
              \"p50_ns\": %.1f, \"p95_ns\": %.1f, \"refusals\": {%s}}"
             approach cells pass p50 p95 (counters_json refusals))
         corpus)
  in
  Printf.sprintf
    "{\"schema\": \"icfg-bench-micro/1\", \"cores\": %d, \"micro\": [%s], \
     \"parallel\": [], \"stages\": [%s], \"cache\": [%s], \"corpus\": [%s]}"
    cores micro_json stages_json cache_json corpus_json

let diff_ok ?gate old_s new_s =
  match Bench_diff.diff_strings ?gate old_s new_s with
  | Ok findings -> findings
  | Error e -> Alcotest.failf "diff failed: %s" e

let bench_diff_parser () =
  (match Bench_diff.parse_json "{\"a\": [1, -2.5e3, \"x\\n\\\"y\", null, true]}" with
  | Ok
      (Bench_diff.Obj
        [
          ( "a",
            Bench_diff.List
              [
                Bench_diff.Num 1.;
                Bench_diff.Num -2500.;
                Bench_diff.Str "x\n\"y";
                Bench_diff.Null;
                Bench_diff.Bool true;
              ] );
        ]) ->
      ()
  | Ok _ -> Alcotest.fail "parsed to the wrong value"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Bench_diff.parse_json "{\"a\": 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated JSON");
  match Bench_diff.diff_strings "{}" "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a non-bench-micro document"

let bench_diff_self () =
  let d =
    doc
      ~micro:[ ("parse", 100.) ]
      ~stages:[ ("rewrite", 1, 500, [ ("rewrite/trampolines:trap", 3) ]) ]
      ()
  in
  Alcotest.(check int) "self-diff is clean" 0
    (List.length (diff_ok ~gate:10. d d))

let bench_diff_counters () =
  let mk trap blocks =
    doc
      ~stages:
        [
          ( "rewrite",
            1,
            500,
            [ ("rewrite/blocks", blocks); ("rewrite/trampolines:trap", trap) ]
          );
        ]
      ()
  in
  (* Worse-is-higher counter increase gates... *)
  let f = diff_ok (mk 3 100) (mk 4 100) in
  Alcotest.(check bool) "trap counter increase is a regression" true
    (Bench_diff.has_regression f);
  (* ...its decrease and any neutral-counter movement do not. *)
  Alcotest.(check bool) "trap counter decrease is informational" false
    (Bench_diff.has_regression (diff_ok (mk 4 100) (mk 3 100)));
  let f = diff_ok (mk 3 100) (mk 3 150) in
  Alcotest.(check bool) "neutral counter change reported" true (f <> []);
  Alcotest.(check bool) "neutral counter change not a regression" false
    (Bench_diff.has_regression f)

let bench_diff_times () =
  let mk ?cores ns = doc ?cores ~micro:[ ("parse", ns) ] () in
  Alcotest.(check bool) "time growth beyond the gate is a regression" true
    (Bench_diff.has_regression (diff_ok ~gate:50. (mk 100_000.) (mk 200_000.)));
  Alcotest.(check bool) "time growth within the gate passes" false
    (Bench_diff.has_regression (diff_ok ~gate:50. (mk 100_000.) (mk 120_000.)));
  Alcotest.(check bool) "sub-noise-floor growth never gates" false
    (Bench_diff.has_regression (diff_ok ~gate:50. (mk 60.) (mk 141.)));
  Alcotest.(check bool) "no gate: times never gate" false
    (Bench_diff.has_regression (diff_ok (mk 100_000.) (mk 10_000_000.)));
  Alcotest.(check bool) "different core counts: times never gate" false
    (Bench_diff.has_regression
       (diff_ok ~gate:50. (mk ~cores:1 100_000.) (mk ~cores:8 10_000_000.)))

let bench_diff_rows () =
  let with_rows stages = doc ~stages () in
  let both = with_rows [ ("rewrite", 1, 500, []); ("rewrite/lane-0", 1, 20, []) ] in
  Alcotest.(check bool) "lost row is a regression" true
    (Bench_diff.has_regression
       (diff_ok both (with_rows [ ("rewrite/lane-0", 1, 20, []) ])));
  Alcotest.(check bool) "lost lane row is informational" false
    (Bench_diff.has_regression
       (diff_ok both (with_rows [ ("rewrite", 1, 500, []) ])));
  Alcotest.(check bool) "new row is informational" false
    (Bench_diff.has_regression
       (diff_ok
          (with_rows [ ("rewrite", 1, 500, []) ])
          (with_rows [ ("rewrite", 1, 500, []); ("emit", 1, 9, []) ])))

(* The added-row policy: anything only the NEW run knows about is reported
   with the distinct [Added] severity and never gates — landing new bench
   rows (the cache cold/warm rows) must not trip the gate against an older
   baseline. *)
let bench_diff_added () =
  let added fs =
    List.filter (fun f -> f.Bench_diff.f_severity = Bench_diff.Added) fs
  in
  (* New micro row -> one Added finding, no regression. *)
  let f =
    diff_ok ~gate:50.
      (doc ~micro:[ ("parse", 100_000.) ] ())
      (doc ~micro:[ ("parse", 100_000.); ("cache-cold", 900_000.) ] ())
  in
  Alcotest.(check int) "new row is Added" 1 (List.length (added f));
  Alcotest.(check bool) "new row never gates" false (Bench_diff.has_regression f);
  (* New counter on an existing row -> Added, no regression — even for a
     worse-is-higher counter name, since there is nothing to compare. *)
  let f =
    diff_ok ~gate:50.
      (doc ~stages:[ ("rewrite", 1, 500, []) ] ())
      (doc
         ~stages:
           [ ("rewrite", 1, 500, [ ("cache.evict_corrupt", 2 ) ]) ]
         ())
  in
  Alcotest.(check int) "new counter is Added" 1 (List.length (added f));
  Alcotest.(check bool) "new counter never gates" false
    (Bench_diff.has_regression f);
  (* A whole new section in NEW (old run predates the cache rows) is all
     Added findings. *)
  let f =
    diff_ok ~gate:50. (doc ())
      (doc ~cache:[ ("cache-warm-identical", 100_000., [ ("hits", 9) ]) ] ())
  in
  Alcotest.(check bool) "new cache section never gates" false
    (Bench_diff.has_regression f);
  Alcotest.(check bool) "new cache section is reported" true (added f <> []);
  (* The render groups Added findings under their own heading. *)
  let has_sub sub s =
    let ls = String.length s and lb = String.length sub in
    let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render has an added section" true
    (has_sub "added" (Bench_diff.render f))

(* The cache section itself: time rows gate like micro rows, counters are
   exact, and only [evict_corrupt] growth is a regression. *)
let bench_diff_cache_section () =
  let mk ?(ns = 100_000.) counters = doc ~cache:[ ("cache-warm", ns, counters) ] () in
  Alcotest.(check int) "identical cache rows diff clean" 0
    (List.length (diff_ok ~gate:50. (mk [ ("hits", 9) ]) (mk [ ("hits", 9) ])));
  Alcotest.(check bool) "cache time growth beyond the gate is a regression" true
    (Bench_diff.has_regression
       (diff_ok ~gate:50. (mk []) (mk ~ns:200_000. [])));
  Alcotest.(check bool) "evict_corrupt increase is a regression" true
    (Bench_diff.has_regression
       (diff_ok
          (mk [ ("evict_corrupt", 0) ])
          (mk [ ("evict_corrupt", 1) ])));
  let f = diff_ok (mk [ ("hits", 9) ]) (mk [ ("hits", 3) ]) in
  Alcotest.(check bool) "hit-count movement is reported" true (f <> []);
  Alcotest.(check bool) "hit-count movement never gates" false
    (Bench_diff.has_regression f);
  Alcotest.(check bool) "lost cache row is a regression" true
    (Bench_diff.has_regression (diff_ok (mk []) (doc ())))

(* The warm-path gate ([check_cache]): the perturbed/identical ratio must
   stay under the limit, the data-edit row must report zero misses on
   every text-stage counter (absent keys are the passing zero — the
   tracer only emits nonzero counters), and malformed documents fail
   loudly rather than passing silently. *)
let bench_check_cache () =
  let mk ?(ratio = 1.02) ?(data = Some [ ("miss:parse/finalize", 18) ]) () =
    let rows =
      [
        ("cache-warm-identical", 1_000_000., [ ("hits", 130) ]);
        ("cache-warm-perturbed", 1_000_000. *. ratio, [ ("miss:encode", 1) ]);
      ]
      @
      match data with
      | Some counters -> [ ("cache-warm-data-edit", 3_000_000., counters) ]
      | None -> []
    in
    doc ~cache:rows ()
  in
  let check ?max_ratio s =
    match Bench_diff.check_cache_string ?max_ratio s with
    | Ok f -> f
    | Error e -> Alcotest.failf "check_cache failed: %s" e
  in
  let f = check (mk ()) in
  Alcotest.(check bool) "healthy doc passes" false (Bench_diff.has_regression f);
  Alcotest.(check bool) "passing ratio is reported as Info" true
    (List.exists
       (fun x ->
         x.Bench_diff.f_severity = Bench_diff.Info
         && x.Bench_diff.f_metric = "cache:warm-perturbed-ratio")
       f);
  Alcotest.(check bool) "no data-edit misses at all also passes" false
    (Bench_diff.has_regression (check (mk ~data:(Some []) ())));
  Alcotest.(check bool) "ratio over the default limit gates" true
    (Bench_diff.has_regression (check (mk ~ratio:1.5 ())));
  Alcotest.(check bool) "tighter --max-ratio gates" true
    (Bench_diff.has_regression (check ~max_ratio:1.01 (mk ())));
  Alcotest.(check bool) "text-stage miss on a data edit gates" true
    (Bench_diff.has_regression
       (check (mk ~data:(Some [ ("miss:encode", 2) ]) ())));
  Alcotest.(check bool) "missing data-edit row gates" true
    (Bench_diff.has_regression (check (mk ~data:None ())));
  Alcotest.(check bool) "missing warm rows gate" true
    (Bench_diff.has_regression (check (doc ())));
  match Bench_diff.check_cache_string "{\"schema\": \"nope\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign schema must be an error"

(* The corpus section: deterministic pass rates gate unconditionally on a
   drop (no --gate, no noise floor), rises and refusal-count movement are
   informational, new refusal keys are Added, incomparable sweeps (cells
   differ) never gate, and row loss gates like everywhere else. *)
let bench_diff_corpus_section () =
  let row ?(cells = 48) ?(p50 = 1_000_000.) ?(refusals = []) pass =
    ("ours/jt", cells, pass, p50, 10. *. p50, refusals)
  in
  let mk ?cells ?p50 ?refusals pass =
    doc ~corpus:[ row ?cells ?p50 ?refusals pass ] ()
  in
  Alcotest.(check int) "identical corpus rows diff clean" 0
    (List.length (diff_ok ~gate:50. (mk 100.) (mk 100.)));
  Alcotest.(check bool) "pass-rate drop gates even without --gate" true
    (Bench_diff.has_regression (diff_ok (mk 100.) (mk 97.9)));
  let f = diff_ok (mk 95.8) (mk 100.) in
  Alcotest.(check bool) "pass-rate rise is reported" true (f <> []);
  Alcotest.(check bool) "pass-rate rise never gates" false
    (Bench_diff.has_regression f);
  let f = diff_ok (mk ~cells:48 100.) (mk ~cells:96 97.9) in
  Alcotest.(check bool) "incomparable corpus sizes never gate" false
    (Bench_diff.has_regression f);
  Alcotest.(check bool) "incomparable corpus sizes are reported" true (f <> []);
  (* Refusal histograms: movement is Info, a new key is Added, neither
     gates. *)
  let f =
    diff_ok
      (mk ~refusals:[ ("tramp/trap", 3) ] 90.)
      (mk ~refusals:[ ("tramp/trap", 5) ] 90.)
  in
  Alcotest.(check bool) "refusal-count movement is reported" true (f <> []);
  Alcotest.(check bool) "refusal-count movement never gates" false
    (Bench_diff.has_regression f);
  let f =
    diff_ok
      (mk ~refusals:[ ("tramp/trap", 3) ] 90.)
      (mk ~refusals:[ ("tramp/trap", 3); ("feature/non-pie", 1) ] 90.)
  in
  Alcotest.(check bool) "new refusal key is Added" true
    (List.exists (fun x -> x.Bench_diff.f_severity = Bench_diff.Added) f);
  Alcotest.(check bool) "new refusal key never gates" false
    (Bench_diff.has_regression f);
  (* Times on corpus rows follow the normal time policy. *)
  Alcotest.(check bool) "corpus p50 growth gates under --gate" true
    (Bench_diff.has_regression
       (diff_ok ~gate:50. (mk ~p50:1_000_000. 100.) (mk ~p50:2_000_000. 100.)));
  Alcotest.(check bool) "corpus p50 growth without --gate never gates" false
    (Bench_diff.has_regression
       (diff_ok (mk ~p50:1_000_000. 100.) (mk ~p50:2_000_000. 100.)));
  (* Rows: loss gates, a corpus section the OLD baseline predates is all
     Added and passes. *)
  Alcotest.(check bool) "lost corpus row is a regression" true
    (Bench_diff.has_regression (diff_ok (mk 100.) (doc ())));
  let f = diff_ok ~gate:50. (doc ()) (mk 100.) in
  Alcotest.(check bool) "new corpus section never gates" false
    (Bench_diff.has_regression f);
  Alcotest.(check bool) "new corpus section is reported as Added" true
    (List.exists (fun x -> x.Bench_diff.f_severity = Bench_diff.Added) f)

(* The real harness output must parse and self-diff clean — guards the
   bench/main.ml writer and this parser against drifting apart. The
   within-run serve gates report their passing ratios as [Info] lines
   even when OLD = NEW, so "clean" means no findings above [Info]. *)
let bench_diff_real_baseline () =
  let path = "bench/baseline/BENCH_micro.json" in
  if Sys.file_exists path then (
    let findings =
      match Bench_diff.diff_files ~gate:50. path path with
      | Ok f -> f
      | Error e -> Alcotest.failf "baseline self-diff failed: %s" e
    in
    let gating =
      List.filter (fun x -> x.Bench_diff.f_severity <> Bench_diff.Info) findings
    in
    Alcotest.(check int) "committed baseline self-diffs clean" 0
      (List.length gating);
    (* The three serve gates must actually have run against this
       baseline — a silent skip (missing rows) would void the claim. *)
    let has name =
      List.exists (fun x -> x.Bench_diff.f_metric = name) findings
    in
    Alcotest.(check bool) "replay speedup gate ran" true
      (has "serve:replay:speedup");
    Alcotest.(check bool) "patch wire gate ran" true
      (has "serve:patch:wire-bytes"))

(* ------------------------------------------------------------------ *)
(* 5. Failure-path observability                                       *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let trace_file_on_raise () =
  let path = Filename.temp_file "icfg-test-trace" ".json" in
  Sys.remove path;
  (try
     Trace.with_file path (fun () ->
         Trace.span "doomed" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check bool) "trace file written despite the raise" true
    (Sys.file_exists path);
  let json = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "trace json valid schema" true
    (contains ~sub:"\"icfg-trace/1\"" json);
  Alcotest.(check bool) "failed span recorded" true
    (contains ~sub:"\"doomed\"" json)

let trace_file_on_success () =
  let path = Filename.temp_file "icfg-test-trace" ".json" in
  let v = Trace.with_file path (fun () -> Trace.add "n" 7; 42) in
  let json = read_file path in
  Sys.remove path;
  Alcotest.(check int) "result passthrough" 42 v;
  Alcotest.(check bool) "counter written" true (contains ~sub:"\"n\": 7" json)

let verify_failure_has_trace () =
  (* An under-approximated bound makes the strong test fail; the report
     must still carry a populated trace (what `icfg verify --trace` saves
     before exiting non-zero). *)
  let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 (Gen.build graded_spec) in
  let fm =
    Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_under 2)
  in
  let r = Verify.strong_test ~options:(opts Mode.Dir) ~fm bin in
  Alcotest.(check bool) "strong test fails" false r.Verify.ok;
  Alcotest.(check bool) "failing report still has spans" true
    (Trace.rows r.Verify.trace <> []);
  Alcotest.(check bool) "failing report still has counters" true
    (Trace.counters r.Verify.trace <> [])

(* ------------------------------------------------------------------ *)
(* 6. Report serialization                                             *)
(* ------------------------------------------------------------------ *)

let report_json () =
  let bin = first_bench Arch.X86_64 in
  let rw m = Runner.rewrite ~options:(opts m) bin in
  let dir = (rw Mode.Dir).Rewriter.rw_attribution in
  let jt = (rw Mode.Jt).Rewriter.rw_attribution in
  let json = A.to_json ~dir jt in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" sub) true
        (contains ~sub json))
    [
      "\"icfg-report/1\"";
      "\"mode\": \"jt\"";
      "\"histogram\"";
      "\"delta_vs_dir\"";
      Printf.sprintf "\"cfl_blocks\": %d," (A.cfl_total jt);
    ];
  (* The report is valid JSON by the gate's own parser. *)
  (match Bench_diff.parse_json json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e);
  Alcotest.(check bool) "dir report omits the delta" false
    (contains ~sub:"delta_vs_dir" (A.to_json ~dir dir));
  (* The harness experiment renders and includes the monotonicity verdict. *)
  let attr_exp = Icfg_harness.Experiments.attribution () in
  Alcotest.(check bool) "experiment reports monotonicity OK" true
    (contains ~sub:"monotonicity dir -> jt -> func-ptr: OK" attr_exp)

let suite =
  [
    ( "report",
      [
        Alcotest.test_case "attribution tiles stats" `Quick reconciliation;
        Alcotest.test_case "attribution tiles stats (srbi-like)" `Quick
          reconciliation_srbi_like;
        Alcotest.test_case "attribution schedule-independent" `Quick
          attribution_schedule_independent;
        Alcotest.test_case "attribution mode monotonicity" `Quick mode_monotone;
        Alcotest.test_case "graded causes: bounds" `Quick graded_causes;
        Alcotest.test_case "graded causes: spill" `Quick graded_spill;
        Alcotest.test_case "bench diff: parser" `Quick bench_diff_parser;
        Alcotest.test_case "bench diff: self" `Quick bench_diff_self;
        Alcotest.test_case "bench diff: counters" `Quick bench_diff_counters;
        Alcotest.test_case "bench diff: times" `Quick bench_diff_times;
        Alcotest.test_case "bench diff: rows" `Quick bench_diff_rows;
        Alcotest.test_case "bench diff: added policy" `Quick bench_diff_added;
        Alcotest.test_case "bench diff: cache section" `Quick
          bench_diff_cache_section;
        Alcotest.test_case "bench diff: warm-path gate" `Quick
          bench_check_cache;
        Alcotest.test_case "bench diff: corpus section" `Quick
          bench_diff_corpus_section;
        Alcotest.test_case "bench diff: committed baseline" `Quick
          bench_diff_real_baseline;
        Alcotest.test_case "trace file on raise" `Quick trace_file_on_raise;
        Alcotest.test_case "trace file on success" `Quick trace_file_on_success;
        Alcotest.test_case "verify failure keeps trace" `Quick
          verify_failure_has_trace;
        Alcotest.test_case "report json" `Quick report_json;
        QCheck_alcotest.to_alcotest graded_causes_qcheck;
      ] );
  ]
