(* Assembler tests: layout/encode two-pass behaviour, label resolution,
   pseudo-instruction expansion, data expressions and range checks. *)

open Icfg_isa
open Icfg_codegen

let assemble ?(arch = Arch.X86_64) ?(pie = false) ?(toc = 0) ?(base = 0x400000)
    items =
  Asm.assemble arch ~pie ~toc ~base items

let decode_stream arch (r : Asm.result) =
  let s = Bytes.to_string r.Asm.data in
  let rec go pos acc =
    if pos >= String.length s then List.rev acc
    else
      let i, n = Encode.decode arch s ~pos in
      go (pos + n) ((r.Asm.base + pos, i) :: acc)
  in
  go 0 []

let test_forward_and_backward_labels () =
  List.iter
    (fun arch ->
      let r =
        assemble ~arch
          [
            Asm.Label "start";
            Asm.Jmp_to "end";
            Asm.Label "mid";
            Asm.Insn Insn.Nop;
            Asm.Jmp_to "start";
            Asm.Label "end";
            Asm.Insn Insn.Halt;
          ]
      in
      let labels = r.Asm.labels in
      let addr l = Asm.label_exn labels l in
      Alcotest.(check int) "start at base" 0x400000 (addr "start");
      Alcotest.(check bool) "mid after jmp" true (addr "mid" > addr "start");
      let stream = decode_stream arch r in
      (* first insn is a jmp targeting 'end' *)
      match stream with
      | (a0, Insn.Jmp d) :: _ ->
          Alcotest.(check int) (Arch.name arch ^ " forward target")
            (addr "end") (a0 + d)
      | _ -> Alcotest.fail "expected jmp first")
    Arch.all

let test_duplicate_label_rejected () =
  match assemble [ Asm.Label "x"; Asm.Label "x" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate label must be rejected"

let test_undefined_label () =
  match assemble [ Asm.Jmp_to "nowhere" ] with
  | exception Asm.Undefined_label l -> Alcotest.(check string) "name" "nowhere" l
  | _ -> Alcotest.fail "undefined label must raise"

let test_align_and_padding () =
  List.iter
    (fun arch ->
      let r =
        assemble ~arch
          [
            Asm.Insn Insn.Nop;
            Asm.Align (16, `Nop);
            Asm.Label "aligned";
            Asm.Insn Insn.Halt;
          ]
      in
      let a = Asm.label_exn r.Asm.labels "aligned" in
      Alcotest.(check int) (Arch.name arch ^ " aligned") 0 (a mod 16);
      (* the padding bytes decode as nops (possibly with a zero tail) *)
      let nops =
        List.filter (fun (_, i) -> i = Insn.Nop) (decode_stream arch r)
      in
      Alcotest.(check bool) "has nop padding" true (List.length nops >= 2))
    Arch.all

let test_data_expressions () =
  let r =
    assemble
      [
        Asm.Label "a";
        Asm.Insn Insn.Nop;
        Asm.Label "b";
        Asm.Align (8, `Zero);
        Asm.Label "tbl";
        Asm.Data (Insn.W32, Asm.Diff ("b", "a", 1), `No_reloc);
        Asm.Data (Insn.W64, Asm.Addr "a", `No_reloc);
        Asm.Data (Insn.W16, Asm.Diff_const ("b", 0x400000, 1), `No_reloc);
        Asm.Data (Insn.W8, Asm.Const (-3), `No_reloc);
      ]
  in
  let tbl = Asm.label_exn r.Asm.labels "tbl" - r.Asm.base in
  let b = r.Asm.data in
  Alcotest.(check int32) "diff" 1l (Bytes.get_int32_le b tbl);
  Alcotest.(check int) "addr" 0x400000
    (Int64.to_int (Bytes.get_int64_le b (tbl + 4)));
  Alcotest.(check int) "diff const" 1 (Bytes.get_uint16_le b (tbl + 12));
  Alcotest.(check int) "signed byte" 0xFD (Bytes.get_uint8 b (tbl + 14))

let test_data_range_check () =
  match
    assemble
      [
        Asm.Label "a";
        Asm.Space 1024;
        Asm.Label "b";
        Asm.Data (Insn.W8, Asm.Diff ("b", "a", 1), `No_reloc);
      ]
  with
  | exception Encode.Not_encodable _ -> ()
  | _ -> Alcotest.fail "1024 must not fit in a byte"

let test_pie_relocs () =
  let items =
    [
      Asm.Label "f";
      Asm.Insn Insn.Nop;
      Asm.Data (Insn.W64, Asm.Addr "f", `Reloc);
      Asm.Data (Insn.W64, Asm.Addr "f", `No_reloc);
    ]
  in
  let pie = assemble ~pie:true items in
  let nopie = assemble ~pie:false items in
  Alcotest.(check int) "pie emits one reloc" 1 (List.length pie.Asm.relocs);
  Alcotest.(check int) "non-pie emits none" 0 (List.length nopie.Asm.relocs);
  match pie.Asm.relocs with
  | [ r ] ->
      Alcotest.(check int) "addend is target" 0x400000 r.Icfg_obj.Reloc.addend
  | _ -> Alcotest.fail "one reloc"

let test_mater_const () =
  (* Mater_const leaves the absolute constant in the register on every
     architecture, PIE or not. *)
  List.iter
    (fun (arch, pie) ->
      let target = 0x478654 in
      let toc = 0x600000 in
      let r =
        assemble ~arch ~pie ~toc
          [ Asm.Mater_const (Reg.r5, target); Asm.Insn (Insn.Out Reg.r5); Asm.Insn Insn.Halt ]
      in
      (* execute it *)
      let text =
        Icfg_obj.Section.make ~name:".text" ~vaddr:r.Asm.base
          ~perm:Icfg_obj.Section.r_x r.Asm.data
      in
      let bin =
        Icfg_obj.Binary.make ~pie ~toc_base:toc ~name:"m" ~arch
          ~entry:r.Asm.base
          ~symbols:
            [ Icfg_obj.Symbol.make ~name:"f" ~addr:r.Asm.base ~size:64 Icfg_obj.Symbol.Func ]
          [
            text;
            Icfg_obj.Section.make ~name:".toc" ~vaddr:toc
              ~perm:Icfg_obj.Section.r_only (Bytes.make 16 '\000');
          ]
      in
      let lb = if pie then 0x10000000 else 0 in
      let config = { (Icfg_runtime.Vm.default_config ()) with Icfg_runtime.Vm.load_base = lb } in
      let res = Icfg_runtime.Vm.run ~config bin in
      match res.Icfg_runtime.Vm.outcome with
      | Icfg_runtime.Vm.Halted ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s pie=%b" (Arch.name arch) pie)
            [ target + lb ] res.Icfg_runtime.Vm.output
      | Icfg_runtime.Vm.Crashed m ->
          Alcotest.failf "%s pie=%b crashed: %s" (Arch.name arch) pie m)
    [
      (Arch.X86_64, false);
      (Arch.X86_64, true);
      (Arch.Ppc64le, false);
      (Arch.Ppc64le, true);
      (Arch.Aarch64, false);
      (Arch.Aarch64, true);
    ]

let test_abs_branches () =
  List.iter
    (fun arch ->
      let r =
        assemble ~arch
          [
            Asm.Jmp_abs 0x400010;
            Asm.Label "pad";
            Asm.Align (16, `Nop);
            Asm.Label "t";
            Asm.Insn Insn.Halt;
          ]
      in
      match decode_stream arch r with
      | (a, Insn.Jmp d) :: _ ->
          Alcotest.(check int) (Arch.name arch) 0x400010 (a + d)
      | _ -> Alcotest.fail "expected jmp")
    Arch.all

let test_raw_and_space () =
  let r =
    assemble
      [ Asm.Raw "HELLO"; Asm.Space 3; Asm.Label "after"; Asm.Insn Insn.Halt ]
  in
  Alcotest.(check string) "raw bytes" "HELLO"
    (Bytes.sub_string r.Asm.data 0 5);
  Alcotest.(check int) "space" (0x400000 + 8) (Asm.label_exn r.Asm.labels "after")

(* ------------------------------------------------------------------ *)
(* Pinned-address incremental layout                                   *)
(* ------------------------------------------------------------------ *)

let seg id body = (id, [ Asm.Label (Printf.sprintf "s%d" id); Asm.Raw body ])

let pin ?prev segs =
  let labels = Hashtbl.create 16 in
  let r =
    Asm.layout_pinned Arch.X86_64 ~pie:false ~labels ~base:0x400000 ?prev segs
  in
  (r, labels)

let bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let base_segs = [ seg 0 "AAAA"; seg 1 "BB"; seg 2 "CCCCCCCC" ]

(* Without a previous run, layout_pinned is exactly [layout] over the
   concatenated segment items. *)
let test_pinned_no_prev () =
  let r, labels = pin base_segs in
  let plain = Hashtbl.create 16 in
  let lay =
    Asm.layout Arch.X86_64 ~pie:false ~labels:plain ~base:0x400000
      (List.concat_map snd base_segs)
  in
  Alcotest.(check bool) "layout identical to Asm.layout" true
    (r.Asm.p_layout = lay);
  Alcotest.(check bool) "labels identical" true
    (bindings labels = bindings plain);
  Alcotest.(check int) "nothing pinned" 0 r.Asm.p_pinned;
  Alcotest.(check int) "all segments placed" 3 r.Asm.p_moved;
  (* Duplicate labels are rejected like in [layout]. *)
  match pin [ (0, [ Asm.Label "x" ]); (1, [ Asm.Label "x" ]) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate label must be rejected"

(* An unchanged run pins everything; a same-length content edit re-fits
   the dirty segment into its own hole, so every address survives. *)
let test_pinned_stable () =
  let r1, l1 = pin base_segs in
  let r2, l2 = pin ~prev:r1.Asm.p_recs base_segs in
  Alcotest.(check bool) "warm layout identical" true
    (r2.Asm.p_layout = r1.Asm.p_layout);
  Alcotest.(check bool) "warm labels identical" true
    (bindings l1 = bindings l2);
  Alcotest.(check int) "all pinned" 3 r2.Asm.p_pinned;
  Alcotest.(check int) "none moved" 0 r2.Asm.p_moved;
  let edited = [ seg 0 "AAAA"; seg 1 "ZZ"; seg 2 "CCCCCCCC" ] in
  let r3, l3 = pin ~prev:r1.Asm.p_recs edited in
  Alcotest.(check bool) "same-length edit keeps every address" true
    (bindings l1 = bindings l3);
  Alcotest.(check int) "two pinned" 2 r3.Asm.p_pinned;
  Alcotest.(check int) "one re-fitted" 1 r3.Asm.p_moved;
  Alcotest.(check int) "extent unchanged" r1.Asm.p_layout.Asm.l_end
    r3.Asm.p_layout.Asm.l_end

(* A grown segment no longer fits its hole and spills to the tail; the
   others stay pinned, and encoding the chunk list zero-fills the hole. *)
let test_pinned_growth () =
  let r1, l1 = pin base_segs in
  let grown = "BBBBBBBBBBBB" in
  let edited = [ seg 0 "AAAA"; seg 1 grown; seg 2 "CCCCCCCC" ] in
  let r, labels = pin ~prev:r1.Asm.p_recs edited in
  Alcotest.(check int) "two pinned" 2 r.Asm.p_pinned;
  Alcotest.(check int) "one moved" 1 r.Asm.p_moved;
  let addr tbl s = Asm.label_exn tbl s in
  Alcotest.(check int) "s0 pinned" (addr l1 "s0") (addr labels "s0");
  Alcotest.(check int) "s2 pinned" (addr l1 "s2") (addr labels "s2");
  Alcotest.(check bool) "s1 spilled past the old end" true
    (addr labels "s1" >= r1.Asm.p_layout.Asm.l_end);
  let lay = r.Asm.p_layout in
  Alcotest.(check int) "tail grew by the spilled segment"
    (r1.Asm.p_layout.Asm.l_end + String.length grown)
    lay.Asm.l_end;
  let bytes, relocs =
    Asm.encode_chunks Arch.X86_64 ~pie:false ~toc:0 ~labels lay r.Asm.p_chunks
  in
  Alcotest.(check (list pass)) "no relocs" [] relocs;
  let expect = Bytes.make (lay.Asm.l_end - lay.Asm.l_base) '\000' in
  List.iter
    (fun (s, body) ->
      Bytes.blit_string body 0 expect (addr labels s - lay.Asm.l_base)
        (String.length body))
    [ ("s0", "AAAA"); ("s1", grown); ("s2", "CCCCCCCC") ];
  Alcotest.(check string) "holes stay zero-filled" (Bytes.to_string expect)
    (Bytes.to_string bytes)

(* Layout sizes must agree with encoded sizes for every item kind. *)
let layout_matches_encoding =
  QCheck2.Test.make ~count:300 ~name:"asm layout size = encoded size"
    QCheck2.Gen.(
      triple (oneofl Arch.all)
        (small_list
           (oneofl
              [
                Asm.Insn Insn.Nop;
                Asm.Insn (Insn.Mov (Reg.r1, Imm 5));
                Asm.Insn Insn.Ret;
                Asm.Jmp_to "l";
                Asm.Jcc_to (Insn.Eq, "l");
                Asm.Call_to "l";
                Asm.Mater_const (Reg.r2, 0x404040);
              ]))
        (small_list
           (oneofl
              [
                Asm.Data (Insn.W32, Asm.Const 7, `No_reloc);
                Asm.Raw "xy";
                Asm.Space 5;
              ])))
    (fun (arch, code, data) ->
      (* code first (instruction-aligned), then data — like a real layout *)
      let items =
        (Asm.Label "l" :: code) @ [ Asm.Insn Insn.Halt ] @ data
      in
      let r = assemble ~arch items in
      (* encoding filled exactly the laid-out bytes: re-layout and compare *)
      let labels2 = Hashtbl.create 8 in
      let lay = Asm.layout arch ~pie:false ~labels:labels2 ~base:0x400000 items in
      lay.Asm.l_end - lay.Asm.l_base = Bytes.length r.Asm.data)

let suite =
  [
    ( "asm",
      [
        Alcotest.test_case "labels fwd/bwd" `Quick test_forward_and_backward_labels;
        Alcotest.test_case "duplicate label" `Quick test_duplicate_label_rejected;
        Alcotest.test_case "undefined label" `Quick test_undefined_label;
        Alcotest.test_case "align+padding" `Quick test_align_and_padding;
        Alcotest.test_case "data expressions" `Quick test_data_expressions;
        Alcotest.test_case "data range check" `Quick test_data_range_check;
        Alcotest.test_case "pie relocs" `Quick test_pie_relocs;
        Alcotest.test_case "mater const (exec)" `Quick test_mater_const;
        Alcotest.test_case "absolute branches" `Quick test_abs_branches;
        Alcotest.test_case "raw/space" `Quick test_raw_and_space;
        Alcotest.test_case "pinned layout: no prev = layout" `Quick
          test_pinned_no_prev;
        Alcotest.test_case "pinned layout: stable + same-length edit" `Quick
          test_pinned_stable;
        Alcotest.test_case "pinned layout: growth spills to tail" `Quick
          test_pinned_growth;
        QCheck_alcotest.to_alcotest layout_matches_encoding;
      ] );
  ]
