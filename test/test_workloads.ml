(* Workload tests: the SPEC-like suite and the application analogues are
   deterministic, compile on every architecture, and execute correctly. *)

open Icfg_isa
module Binary = Icfg_obj.Binary
module Spec = Icfg_workloads.Spec_suite
module Apps = Icfg_workloads.Apps
module Gen = Icfg_workloads.Gen
module Rng = Icfg_workloads.Rng
module Vm = Icfg_runtime.Vm

let run bin =
  Vm.run ~routines:(Icfg_runtime.Runtime_lib.standard ()) bin

let run_pie bin =
  let config = { (Vm.default_config ()) with Vm.load_base = 0x20000000 } in
  Vm.run ~config ~routines:(Icfg_runtime.Runtime_lib.standard ()) bin

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys;
  let c = Rng.create 8 in
  let zs = List.init 100 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let rng_bounds =
  QCheck2.Test.make ~count:500 ~name:"rng stays in bounds"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 1 500))
    (fun (seed, bound) ->
      let t = Rng.create seed in
      List.for_all
        (fun _ ->
          let v = Rng.int t bound in
          v >= 0 && v < bound)
        (List.init 50 (fun i -> i)))

let test_rng_shuffle_permutes () =
  let t = Rng.create 3 in
  let l = List.init 20 (fun i -> i) in
  let s = Rng.shuffle t l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let test_suite_shape () =
  List.iter
    (fun arch ->
      let benches = Spec.benchmarks arch in
      Alcotest.(check int) "19 benchmarks" 19 (List.length benches);
      let fortran =
        List.filter
          (fun b -> List.mem Binary.Fortran b.Spec.langs)
          benches
      in
      Alcotest.(check bool) "fortran-flavoured benchmarks present" true
        (List.length fortran >= 7);
      let exc = List.filter (fun b -> b.Spec.has_exceptions) benches in
      Alcotest.(check int) "two C++ exception benchmarks" 2 (List.length exc))
    Arch.all

let test_suite_deterministic () =
  let b1 = List.nth (Spec.benchmarks Arch.X86_64) 4 in
  let b2 = List.nth (Spec.benchmarks Arch.X86_64) 4 in
  let bin1, _ = Spec.compile Arch.X86_64 b1 in
  let bin2, _ = Spec.compile Arch.X86_64 b2 in
  let t1 = Binary.text bin1 and t2 = Binary.text bin2 in
  Alcotest.(check bool) "identical text" true
    (Bytes.equal t1.Icfg_obj.Section.data t2.Icfg_obj.Section.data)

let test_all_benchmarks_run () =
  List.iter
    (fun arch ->
      List.iter
        (fun bench ->
          let bin, _ = Spec.compile arch bench in
          let r = run bin in
          (match r.Vm.outcome with
          | Vm.Halted -> ()
          | Vm.Crashed m ->
              Alcotest.failf "%s/%s crashed: %s" (Arch.name arch)
                bench.Spec.bench_name m);
          Alcotest.(check bool)
            (bench.Spec.bench_name ^ " produces output")
            true
            (r.Vm.output <> []))
        (Spec.benchmarks arch))
    Arch.all

let test_benchmarks_run_as_pie () =
  List.iter
    (fun arch ->
      let bench = List.nth (Spec.benchmarks arch) 0 in
      let bin, _ = Spec.compile ~pie:true arch bench in
      let nonpie, _ = Spec.compile arch bench in
      let r = run_pie bin and r0 = run nonpie in
      Alcotest.(check bool) "pie halted" true (r.Vm.outcome = Vm.Halted);
      (* position independence: identical behaviour at a different base *)
      Alcotest.(check (list int)) (Arch.name arch ^ " same output") r0.Vm.output
        r.Vm.output)
    Arch.all

let test_ppc_bulk_data () =
  (* the designated ppc64le benchmarks carry a large working set *)
  let benches = Spec.benchmarks Arch.Ppc64le in
  let gcc = List.find (fun b -> b.Spec.bench_name = "602.gcc_s") benches in
  Alcotest.(check bool) "gcc bulk" true (gcc.Spec.bulk_data > 1 lsl 24);
  let bin, _ = Spec.compile Arch.Ppc64le gcc in
  Alcotest.(check bool) ".bigdata present" true
    (Binary.section bin ".bigdata" <> None)

(* ------------------------------------------------------------------ *)
(* Apps                                                                *)
(* ------------------------------------------------------------------ *)

let test_libxul () =
  let bin, _ = Apps.libxul Arch.X86_64 in
  Alcotest.(check bool) "pie" true bin.Binary.pie;
  Alcotest.(check bool) "rust metadata" true
    bin.Binary.features.Binary.rust_metadata;
  Alcotest.(check bool) "versioned symbols" true
    (List.exists
       (fun (s : Icfg_obj.Symbol.t) -> s.Icfg_obj.Symbol.version <> None)
       bin.Binary.symbols);
  let r = run_pie bin in
  Alcotest.(check bool) "runs" true (r.Vm.outcome = Vm.Halted)

let test_docker () =
  List.iter
    (fun arch ->
      let bin, _ = Apps.docker arch in
      Alcotest.(check bool) "go runtime" true bin.Binary.features.Binary.go_runtime;
      Alcotest.(check bool) "functab section" true
        (Binary.section bin ".gopclntab" <> None);
      Alcotest.(check bool) "findfunc exists" true
        (Binary.symbol bin "runtime.findfunc" <> None);
      let r = run_pie bin in
      match r.Vm.outcome with
      | Vm.Halted ->
          Alcotest.(check bool)
            (Arch.name arch ^ " emits traceback ids")
            true
            (List.length r.Vm.output > 3)
      | Vm.Crashed m -> Alcotest.failf "%s: %s" (Arch.name arch) m)
    Arch.all

let test_libcuda () =
  let bin, _ = Apps.libcuda ~iters:20 Arch.X86_64 in
  let subset = Apps.libcuda_api_subset bin in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exists") true (Binary.symbol bin name <> None))
    subset;
  let total = List.length (Binary.func_symbols bin) in
  Alcotest.(check bool) "strict subset" true (List.length subset < total);
  let r = run_pie bin in
  Alcotest.(check bool) "runs" true (r.Vm.outcome = Vm.Halted)

let test_go_vtab_failure_is_mode_specific () =
  (* the same docker binary passes jt and fails func-ptr *)
  let arch = Arch.X86_64 in
  let bin, _ = Apps.docker arch in
  let parse = Icfg_analysis.Parse.parse bin in
  let module Rewriter = Icfg_core.Rewriter in
  let try_mode mode =
    let rw =
      Rewriter.rewrite ~options:{ Rewriter.default_options with Rewriter.mode }
        parse
    in
    let config =
      Rewriter.vm_config_for rw
        { (Vm.default_config ()) with Vm.load_base = 0x20000000 }
    in
    (Vm.run ~config
       ~routines:(Rewriter.routines_for rw ~counters:(Hashtbl.create 4))
       rw.Rewriter.rw_binary)
      .Vm.outcome
  in
  Alcotest.(check bool) "jt passes" true (try_mode Icfg_core.Mode.Jt = Vm.Halted);
  Alcotest.(check bool) "func-ptr fails" true
    (try_mode Icfg_core.Mode.Func_ptr <> Vm.Halted)

(* ------------------------------------------------------------------ *)
(* Gen spec validation                                                 *)
(* ------------------------------------------------------------------ *)

let test_gen_validation () =
  let expect_invalid name spec =
    match Gen.build spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "iters zero" { Gen.default_spec with Gen.iters = 0 };
  expect_invalid "iters over cap"
    { Gen.default_spec with Gen.iters = Gen.max_iters + 1 };
  expect_invalid "cases not a power of two"
    { Gen.default_spec with Gen.cases = 6 };
  expect_invalid "cases zero" { Gen.default_spec with Gen.cases = 0 };
  expect_invalid "negative switches"
    { Gen.default_spec with Gen.n_switch = -1 };
  expect_invalid "no compute targets"
    { Gen.default_spec with Gen.n_compute = 0 };
  (* build_go shares the validation *)
  (match Gen.build_go { Gen.default_spec with Gen.iters = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "build_go: expected Invalid_argument");
  (* the boundary values themselves are fine *)
  ignore
    (Gen.build { Gen.default_spec with Gen.iters = 1; cases = 1; inner = 1 });
  ignore (Gen.build { Gen.default_spec with Gen.iters = Gen.max_iters })

let suite =
  [
    ( "workloads:rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        QCheck_alcotest.to_alcotest rng_bounds;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
      ] );
    ( "workloads:suite",
      [
        Alcotest.test_case "shape" `Quick test_suite_shape;
        Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
        Alcotest.test_case "all benchmarks run (3 arches)" `Slow
          test_all_benchmarks_run;
        Alcotest.test_case "PIE equivalence" `Quick test_benchmarks_run_as_pie;
        Alcotest.test_case "ppc bulk data" `Quick test_ppc_bulk_data;
      ] );
    ( "workloads:apps",
      [
        Alcotest.test_case "libxul" `Quick test_libxul;
        Alcotest.test_case "docker" `Quick test_docker;
        Alcotest.test_case "libcuda" `Quick test_libcuda;
        Alcotest.test_case "go vtab failure is mode-specific" `Quick
          test_go_vtab_failure_is_mode_specific;
      ] );
    ( "workloads:gen",
      [ Alcotest.test_case "spec validation" `Quick test_gen_validation ] );
  ]
