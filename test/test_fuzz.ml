(* Differential fuzzing: random workload specs are compiled, rewritten in a
   random mode for a random architecture (position-dependent or PIE), and
   the rewritten binary must behave identically to the original under the
   strong test (original bytes destroyed, per-block counting verified).

   This is the repository's broadest property: the entire pipeline —
   generator, compiler, analyses, rewriter, runtime — agrees with itself on
   arbitrary programs. *)

open Icfg_isa
open Icfg_core
module Gen = Icfg_workloads.Gen
module Parse = Icfg_analysis.Parse
module Vm = Icfg_runtime.Vm

let spec_gen =
  let open QCheck2.Gen in
  let* seed = int_range 1 100_000 in
  let* n_compute = int_range 1 5 in
  let* n_switch = int_range 0 5 in
  let* n_dispatch = int_range 0 2 in
  let* n_hard_spill = int_range 0 (min 1 n_switch) in
  let* n_frameless = int_range 0 1 in
  let* n_data_table = int_range 0 1 in
  let* exceptions = bool in
  let* cases = oneofl [ 4; 8 ] in
  let* work = int_range 1 6 in
  return
    {
      Gen.seed;
      name = Printf.sprintf "fuzz%d" seed;
      langs = [ Icfg_obj.Binary.C ];
      exceptions;
      n_compute;
      n_switch;
      n_dispatch;
      n_hard_spill;
      n_frameless_tail = n_frameless;
      n_data_table;
      iters = 6;
      inner = 2;
      work;
      cases;
    }

(* Go-flavoured cases ride along with conservative settings: Go binaries
   are PIE, vtable dispatch needs at least [Jt] coverage, and the runtime
   hooks make the count-check meaningless, so those run output-only.

   jobs > 1 shards parsing, function-pointer scans, relocation, placement
   planning and section encoding; 3 is deliberately not a power of two so
   the chunked encoder's uneven contiguous splits (chunks = 4*jobs) get
   fuzzed too. *)
let config_gen =
  QCheck2.Gen.(
    pair
      (quad (oneofl Arch.all) (oneofl Mode.all) bool (* pie *)
         (oneofl [ `Original; `Reverse_funcs; `Reverse_blocks ]))
      (pair (oneofl [ 1; 2; 3; 4; 8 ]) (frequency [ (4, return false); (1, return true) ])))

let print_case (spec, ((arch, mode, pie, order), (jobs, go))) =
  Printf.sprintf
    "seed=%d sw=%d disp=%d spill=%d fl=%d dt=%d exc=%b %s/%s%s%s jobs=%d%s"
    spec.Gen.seed spec.Gen.n_switch spec.Gen.n_dispatch spec.Gen.n_hard_spill
    spec.Gen.n_frameless_tail spec.Gen.n_data_table spec.Gen.exceptions
    (Arch.name arch) (Mode.name mode)
    (if pie then " pie" else "")
    (match order with
    | `Original -> ""
    | `Reverse_funcs -> " rev-funcs"
    | `Reverse_blocks -> " rev-blocks")
    jobs
    (if go then " go" else "")

let rewrite_roundtrip =
  QCheck2.Test.make ~count:60 ~name:"fuzz: rewrite preserves behaviour"
    ~print:print_case
    QCheck2.Gen.(pair spec_gen config_gen)
    (fun (spec, ((arch, mode, pie, order), (jobs, go))) ->
      (* conservative Go constraints; see comment on [config_gen] *)
      let pie = pie || go in
      let mode = if go && mode = Mode.Func_ptr then Mode.Jt else mode in
      let order = if go then `Original else order in
      let payload = if go then Rewriter.P_empty else Rewriter.P_count in
      let prog =
        if go then
          let adjust = if arch = Arch.X86_64 then 1 else 4 in
          let gs =
            Gen.go_spec ~seed:spec.Gen.seed
              ~name:(Printf.sprintf "gofuzz%d" spec.Gen.seed)
              ~iters:spec.Gen.iters
          in
          Gen.build_go ~vtab_check:false ~goexit_adjust:adjust gs
        else Gen.build spec
      in
      let bin, _ = Icfg_codegen.Compile.compile ~pie arch prog in
      let parse = Parse.parse bin in
      let options =
        { Rewriter.default_options with Rewriter.mode; payload; order }
      in
      let rw = Rewriter.rewrite ~options parse in
      (* the sharded engine must reproduce the serial bytes exactly *)
      if jobs > 1 then
        assert (
          Test_parallel.equal_rewrite rw
            (Icfg_harness.Runner.rewrite ~options ~jobs bin));
      let lb = if pie then 0x20000000 else 0 in
      let base_cfg = { (Vm.default_config ()) with Vm.load_base = lb } in
      (* ground-truth profile *)
      let profile = Hashtbl.create 64 in
      List.iter
        (fun fa ->
          List.iter
            (fun (b : Icfg_analysis.Cfg.block) ->
              Hashtbl.replace profile b.Icfg_analysis.Cfg.b_start 0)
            fa.Parse.fa_cfg.Icfg_analysis.Cfg.blocks)
        parse.Parse.funcs;
      let orig =
        Vm.run
          ~config:{ base_cfg with Vm.profile = Some profile }
          ~routines:(Icfg_runtime.Runtime_lib.standard ())
          bin
      in
      let counters = Hashtbl.create 64 in
      let config = Rewriter.vm_config_for rw base_cfg in
      let r =
        Vm.run ~config ~routines:(Rewriter.routines_for rw ~counters)
          rw.Rewriter.rw_binary
      in
      match (orig.Vm.outcome, r.Vm.outcome) with
      | Vm.Halted, Vm.Halted ->
          orig.Vm.output = r.Vm.output
          && (go (* empty payload: nothing to count *)
             || List.for_all
               (fun fa ->
                 (not fa.Parse.fa_instrumentable)
                 || List.for_all
                      (fun (b : Icfg_analysis.Cfg.block) ->
                        let want =
                          Option.value ~default:0
                            (Hashtbl.find_opt profile b.Icfg_analysis.Cfg.b_start)
                        in
                        let got =
                          Option.value ~default:0
                            (Hashtbl.find_opt counters b.Icfg_analysis.Cfg.b_start)
                        in
                        want = got)
                      fa.Parse.fa_cfg.Icfg_analysis.Cfg.blocks)
               parse.Parse.funcs)
      | Vm.Crashed _, _ -> QCheck2.assume_fail () (* generator bug, not ours *)
      | Vm.Halted, Vm.Crashed _ -> false)

let go_roundtrip =
  QCheck2.Test.make ~count:20 ~name:"fuzz: go rewriting preserves tracebacks"
    QCheck2.Gen.(
      quad (int_range 1 10_000) (oneofl Arch.all)
        (oneofl [ Mode.Dir; Mode.Jt ])
        (oneofl [ 1; 4 ]))
    (fun (seed, arch, mode, jobs) ->
      let adjust = if arch = Arch.X86_64 then 1 else 4 in
      let spec = Gen.go_spec ~seed ~name:(Printf.sprintf "gofuzz%d" seed) ~iters:5 in
      let prog = Gen.build_go ~vtab_check:false ~goexit_adjust:adjust spec in
      let bin, _ = Icfg_codegen.Compile.compile ~pie:true arch prog in
      let options = { Rewriter.default_options with Rewriter.mode } in
      let rw = Icfg_harness.Runner.rewrite ~options ~jobs bin in
      assert (
        jobs = 1
        || Test_parallel.equal_rewrite rw
             (Rewriter.rewrite ~options (Parse.parse bin)));
      let base_cfg = { (Vm.default_config ()) with Vm.load_base = 0x20000000 } in
      let orig =
        Vm.run ~config:base_cfg ~routines:(Icfg_runtime.Runtime_lib.standard ()) bin
      in
      let config = Rewriter.vm_config_for rw base_cfg in
      let r =
        Vm.run ~config
          ~routines:(Rewriter.routines_for rw ~counters:(Hashtbl.create 4))
          rw.Rewriter.rw_binary
      in
      orig.Vm.outcome = Vm.Halted && r.Vm.outcome = Vm.Halted
      && orig.Vm.output = r.Vm.output)

let suite =
  [
    ( "fuzz",
      [
        QCheck_alcotest.to_alcotest rewrite_roundtrip;
        QCheck_alcotest.to_alcotest go_roundtrip;
      ] );
  ]
