(* The benchmark harness: regenerates every table and figure of the paper
   (Tables 1-3, Figures 1-2, the Firefox/Docker/BOLT experiments, and the
   Diogenes case study), then runs one bechamel micro-benchmark per
   table/figure measuring the corresponding pipeline stage.

   Usage:
     bench/main.exe                 -- everything
     bench/main.exe table3 bolt ... -- selected experiments
     bench/main.exe micro           -- only the bechamel micro-benchmarks
     bench/main.exe micro --json BENCH_micro.json
                                    -- also write machine-readable results
                                       (CI uploads this per PR, so the
                                       serial-vs-parallel trajectory
                                       accumulates across the history)
     bench/main.exe micro --json BENCH_micro.json --trace BENCH_trace.json
                                    -- additionally dump the full span tree
                                       of the traced pipeline run
     bench/main.exe micro --cache-json BENCH_cache.json
                                    -- also write the incremental-cache
                                       cold/warm rows as a standalone
                                       document (CI uploads this artifact)
     bench/main.exe corpus [--seed N] [--count N] [--jobs N] [--json FILE]
                                    -- the corpus-scale robustness matrix:
                                       every baseline and every mode swept
                                       over a seeded adversarial corpus
                                       (default 300 binaries), pass rates
                                       and refusal histograms into the
                                       "corpus" section of the JSON
     bench/main.exe diff OLD.json NEW.json [--gate pct]
                                    -- regression gate between two --json
                                       runs; non-zero exit on regression
                                       (deterministic pass-rate drops gate
                                       even without --gate)
     bench/main.exe check-cache FILE [--max-ratio r]
                                    -- warm-path gate over one run's cache
                                       rows: warm-perturbed must stay
                                       within r (default 1.3) of
                                       warm-identical, and the data-edit
                                       row must show zero text-stage
                                       misses; non-zero exit on failure
     bench/main.exe serve-check [--seed N] [--count N] [--clients N] [--jobs N]
                                    -- daemon equivalence gate: stream the
                                       corpus slice through a live icfg
                                       serve instance and compare every
                                       per-approach classification row
                                       against the in-process sweep;
                                       non-zero exit on any mismatch *)

open Icfg_isa
module Experiments = Icfg_harness.Experiments
module Asm = Icfg_codegen.Asm

let experiments =
  [
    ("table1", Experiments.table1);
    ("figure1", Experiments.figure1);
    ("figure2", Experiments.figure2);
    ("table2", Experiments.table2);
    ("table3", fun () -> Experiments.table3 ());
    ("table3-detail", fun () -> Experiments.table3_detail ());
    ("firefox", Experiments.firefox);
    ("docker", Experiments.docker);
    ("bolt", Experiments.bolt);
    ("diogenes", Experiments.diogenes);
    ("ablation", Experiments.ablation);
    ("attribution", Experiments.attribution);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure                     *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  let parse = Icfg_analysis.Parse.parse bin in
  let rw = Icfg_core.Rewriter.rewrite parse in
  let classify =
    Option.get (Icfg_analysis.Parse.func parse "switch0")
  in
  let fm = Icfg_analysis.Failure_model.ours in
  let known =
    Icfg_analysis.Jump_table.known_data bin []
  in
  let ra_map = rw.Icfg_core.Rewriter.rw_ra_map in
  let probe_pc =
    match Icfg_runtime.Runtime_lib.Ra_map.pairs ra_map with
    | (k, _) :: _ -> k + 3
    | [] -> 0
  in
  [
    (* Table 1 is qualitative; measure the capability-table rendering. *)
    Test.make ~name:"table1/render-capabilities"
      (Staged.stage (fun () -> Sys.opaque_identity (Experiments.table1 ())));
    (* Figure 1: whole-binary rewrite throughput. *)
    Test.make ~name:"figure1/rewrite-binary"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Icfg_core.Rewriter.rewrite parse)));
    (* Figure 2: jump-table slicing and finalization. *)
    Test.make ~name:"figure2/jump-table-analysis"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Icfg_analysis.Jump_table.analyze bin fm ~known_data:known
                classify.Icfg_analysis.Parse.fa_cfg)));
    (* Table 2: trampoline selection and emission. *)
    Test.make ~name:"table2/trampoline-emit"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Trampoline.emit arch ~at:0x400100 ~target:0x500000 ~toc:0
                (Trampoline.Long None))));
    (* Table 3: whole-binary parse (CFG + analyses). *)
    Test.make ~name:"table3/parse-binary"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Icfg_analysis.Parse.parse bin)));
    (* Firefox: RA-translation lookup (the per-unwind-step cost). *)
    Test.make ~name:"firefox/ra-translate"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Icfg_runtime.Runtime_lib.Ra_map.translate ra_map probe_pc)));
    (* Docker: compile the Go analogue. *)
    Test.make ~name:"docker/compile-go-binary"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Icfg_workloads.Apps.docker arch)));
    (* BOLT: block-reversed relocation. *)
    Test.make ~name:"bolt/reverse-blocks-rewrite"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Icfg_core.Rewriter.rewrite
                ~options:
                  {
                    Icfg_core.Rewriter.default_options with
                    Icfg_core.Rewriter.order = `Reverse_blocks;
                  }
                parse)));
    (* Diogenes: partial instrumentation of the driver analogue. *)
    Test.make ~name:"diogenes/partial-rewrite"
      (Staged.stage (fun () ->
           let bin, _ = Icfg_workloads.Apps.libcuda arch in
           let only = Icfg_workloads.Apps.libcuda_api_subset bin in
           Sys.opaque_identity
             (Icfg_baselines.Baseline.ours_partial ~mode:Icfg_core.Mode.Jt
                ~only bin)));
  ]

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_micro.json)                         *)
(* ------------------------------------------------------------------ *)

(* Accumulated rows: bechamel estimates, wall-clock serial-vs-parallel
   stage timings, and per-stage rows flattened out of a Trace of the full
   pipeline. Written as JSON by hand — no JSON dependency. *)
let micro_rows : (string * float) list ref = ref []
let parallel_rows : (string * int * float) list ref = ref []

(* (span path, jobs, spans merged, summed ns, counter totals) from the
   traced rewrites. The whole-run counter bag rides along on every row of
   that run so `bench diff` can gate counters without a second file. *)
let stage_rows : (string * int * int * int * (string * int) list) list ref =
  ref []

(* (name, ns_per_run, cache counters of a representative run) for the
   cold/warm incremental-cache rewrites. *)
let cache_rows : (string * float * (string * int) list) list ref = ref []

(* (name, ns_per_request, counter bag) for the daemon throughput streams. *)
let serve_rows : (string * float * (string * int) list) list ref = ref []

(* (name, deterministic counters, ns times) distilled from each serve
   stream's telemetry snapshot. The counters bag holds only values that
   are deterministic functions of the served stream — request/outcome
   totals, per-approach latency histogram observation counts, eviction
   counters — never the cache hit/miss split (interleaving-dependent) or
   stage.* span counts (span shapes vary with hits). The times bag holds
   machine-varying ns sums, gated under the usual time policy. *)
let metrics_rows : (string * (string * int) list * (string * int) list) list ref
    =
  ref []

(* The corpus robustness matrix, when the "corpus" experiment ran. *)
let corpus_result : Icfg_harness.Matrix.t option ref = ref None

(* Full trace tree of the last traced rewrite, for --trace FILE. *)
let trace_json : string option ref = ref None

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.1f" f

let counters_json counters =
  String.concat ", "
    (List.map
       (fun (name, v) -> Printf.sprintf "\"%s\": %d" (json_escape name) v)
       counters)

let write_cache_rows oc =
  List.iteri
    (fun i (name, ns, counters) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"ns_per_run\": %s, \"counters\": {%s}}%s\n"
        (json_escape name) (json_float ns) (counters_json counters)
        (if i = List.length !cache_rows - 1 then "" else ","))
    !cache_rows

let write_json path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"icfg-bench-micro/1\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s}%s\n" (json_escape name)
        (json_float ns)
        (if i = List.length !micro_rows - 1 then "" else ","))
    !micro_rows;
  out "  ],\n";
  out "  \"parallel\": [\n";
  List.iteri
    (fun i (stage, jobs, sec) ->
      out "    {\"stage\": \"%s\", \"jobs\": %d, \"ns_per_run\": %s}%s\n"
        (json_escape stage) jobs
        (json_float (sec *. 1e9))
        (if i = List.length !parallel_rows - 1 then "" else ","))
    !parallel_rows;
  out "  ],\n";
  out "  \"stages\": [\n";
  List.iteri
    (fun i (path, jobs, count, ns, counters) ->
      out
        "    {\"stage\": \"%s\", \"jobs\": %d, \"spans\": %d, \"ns\": %d, \
         \"counters\": {%s}}%s\n"
        (json_escape path) jobs count ns (counters_json counters)
        (if i = List.length !stage_rows - 1 then "" else ","))
    !stage_rows;
  out "  ],\n";
  out "  \"cache\": [\n";
  write_cache_rows oc;
  out "  ],\n";
  out "  \"serve\": [\n";
  List.iteri
    (fun i (name, ns, counters) ->
      out
        "    {\"name\": \"%s\", \"ns_per_request\": %s, \"counters\": {%s}}%s\n"
        (json_escape name) (json_float ns) (counters_json counters)
        (if i = List.length !serve_rows - 1 then "" else ","))
    !serve_rows;
  out "  ],\n";
  out "  \"metrics\": [\n";
  List.iteri
    (fun i (name, counters, times) ->
      out "    {\"name\": \"%s\", \"counters\": {%s}, \"times\": {%s}}%s\n"
        (json_escape name) (counters_json counters) (counters_json times)
        (if i = List.length !metrics_rows - 1 then "" else ","))
    !metrics_rows;
  out "  ],\n";
  (match !corpus_result with
  | Some m ->
      let module Matrix = Icfg_harness.Matrix in
      let module Cache = Icfg_core.Cache in
      out "  \"corpus_seed\": %d,\n" m.Matrix.m_seed;
      out "  \"corpus_count\": %d,\n" m.Matrix.m_count;
      out
        "  \"corpus_cache\": {\"hits\": %d, \"misses\": %d, \"stores\": %d, \
         \"hit_rate_pct\": %s},\n"
        m.Matrix.m_cache.Cache.c_hits m.Matrix.m_cache.Cache.c_misses
        m.Matrix.m_cache.Cache.c_stores
        (json_float (100. *. m.Matrix.m_hit_rate));
      out "  \"corpus\": [\n";
      let rows = m.Matrix.m_rows in
      List.iteri
        (fun i (r : Matrix.row) ->
          let refusals =
            String.concat ", "
              (List.map
                 (fun (k, n) -> Printf.sprintf "\"%s\": %d" (json_escape k) n)
                 r.Matrix.row_refusals)
          in
          out
            "    {\"approach\": \"%s\", \"cells\": %d, \"verified\": %d, \
             \"diverged\": %d, \"refused\": %d, \"crashed\": %d, \
             \"pass_rate_pct\": %s, \"p50_ns\": %s, \"p95_ns\": %s, \
             \"refusals\": {%s}}%s\n"
            (json_escape r.Matrix.row_approach)
            r.Matrix.row_cells r.Matrix.row_verified r.Matrix.row_diverged
            r.Matrix.row_refused r.Matrix.row_crashed
            (json_float (Matrix.pass_rate_pct r))
            (json_float r.Matrix.row_p50_ns)
            (json_float r.Matrix.row_p95_ns)
            refusals
            (if i = List.length rows - 1 then "" else ","))
        rows;
      out "  ]\n"
  | None -> out "  \"corpus\": []\n");
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* Standalone cache-only document (schema icfg-bench-cache/1) for the CI
   artifact: the same rows as the "cache" section of BENCH_micro.json,
   without dragging the whole micro suite along. *)
let write_cache_json path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"icfg-bench-cache/1\",\n";
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"cache\": [\n";
  write_cache_rows oc;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Serial vs. parallel stage timings                                   *)
(* ------------------------------------------------------------------ *)

(* Wall-clock (bechamel's per-run OLS would hide the domain fan-out),
   repeated enough to amortize pool startup. Each stage that PR 1 and PR 2
   sharded gets a serial and a parallel row: whole-binary rewrite, the
   per-CFG function-pointer scans, and chunked section encoding. *)
let largest_spec_binary arch =
  List.fold_left
    (fun best bench ->
      let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
      match best with
      | Some b when Icfg_obj.Binary.loaded_size b >= Icfg_obj.Binary.loaded_size bin
        -> best
      | _ -> Some bin)
    None
    (Icfg_workloads.Spec_suite.benchmarks arch)
  |> Option.get

let time_stage ~stage ~reps run jobs_list =
  let row jobs =
    (* warm up: fault in the domain pool and any lazy state *)
    ignore (Sys.opaque_identity (run jobs));
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (run jobs))
    done;
    let t = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    parallel_rows := !parallel_rows @ [ (stage, jobs, t) ];
    Printf.printf "  %-18s jobs=%d %12.0f ns/run  %10.1f runs/s\n%!" stage
      jobs (t *. 1e9) (1. /. t);
    t
  in
  match List.map row jobs_list with
  | serial :: rest ->
      List.iter
        (fun par -> Printf.printf "  %-18s speedup: %.2fx\n%!" stage (serial /. par))
        rest
  | [] -> ()

(* A synthetic but representative item stream for the encode stage: labels,
   plain instructions, resolved branches and address-holding data words
   (which produce relocations under PIE), so every chunk boundary shape is
   exercised. *)
let encode_fixture () =
  let n = 4000 in
  let items =
    List.concat
      (List.init n (fun i ->
           [
             Asm.Label (Printf.sprintf "L%d" i);
             Asm.Insn (Insn.Mov (Reg.r0, Imm i));
             Asm.Insn Insn.Nop;
             Asm.Jmp_to (Printf.sprintf "L%d" (i / 2));
             Asm.Data (W64, Asm.Addr (Printf.sprintf "L%d" (i / 3)), `Reloc);
           ]))
  in
  let labels = Hashtbl.create (2 * n) in
  let lay =
    Asm.layout Arch.X86_64 ~pie:true ~labels ~base:0x400000 items
  in
  (labels, lay)

let run_parallel_micro () =
  print_endline "== Serial vs parallel stage timings (largest spec binary) ==";
  let arch = Arch.X86_64 in
  let bin = largest_spec_binary arch in
  Printf.printf "  (%d bytes loaded, %d core(s) recommended)\n%!"
    (Icfg_obj.Binary.loaded_size bin)
    (Domain.recommended_domain_count ());
  (* Whole-pipeline rewrite. *)
  time_stage ~stage:"rewrite" ~reps:50
    (fun jobs -> Icfg_harness.Runner.rewrite ~jobs bin)
    [ 1; 4 ];
  (* Function-pointer analysis: serial data-slot pass + sharded per-CFG
     scans. *)
  let parse = Icfg_analysis.Parse.parse bin in
  let cfgs =
    List.map (fun f -> f.Icfg_analysis.Parse.fa_cfg) parse.Icfg_analysis.Parse.funcs
  in
  let fm = Icfg_analysis.Failure_model.ours in
  time_stage ~stage:"func-ptr" ~reps:200
    (fun jobs ->
      let par =
        if jobs <= 1 then Icfg_analysis.Func_ptr.serial
        else
          { Icfg_analysis.Func_ptr.pmap = (fun f l -> Icfg_core.Pool.map ~jobs f l) }
      in
      Icfg_analysis.Func_ptr.analyze ~par bin fm cfgs)
    [ 1; 4 ];
  (* Section encoding against a frozen label table, chunked. *)
  let labels, lay = encode_fixture () in
  time_stage ~stage:"encode" ~reps:100
    (fun jobs ->
      if jobs <= 1 then Asm.encode Arch.X86_64 ~pie:true ~toc:0 ~labels lay
      else
        Asm.encode_sharded Arch.X86_64 ~pie:true ~toc:0 ~labels
          ~par:{ Asm.pmap = (fun f l -> Icfg_core.Pool.map ~jobs f l) }
          ~chunks:(4 * jobs) lay)
    [ 1; 4 ]

(* Per-stage wall-time rows sourced from Trace: one traced parse+rewrite per
   jobs value, flattened into slash-joined span paths. This is the
   measurement the ROADMAP's "measure before touching the serial stages"
   item asks for — layout/replay/hop timings come straight out of the
   instrumented pipeline rather than ad-hoc stopwatches. *)
let run_trace_stages () =
  print_endline "== Per-stage pipeline trace (largest spec binary) ==";
  let arch = Arch.X86_64 in
  let bin = largest_spec_binary arch in
  List.iter
    (fun jobs ->
      let t = Icfg_core.Trace.create () in
      Icfg_core.Trace.with_current t (fun () ->
          ignore (Sys.opaque_identity (Icfg_harness.Runner.rewrite ~jobs bin)));
      let counters = Icfg_core.Trace.counters t in
      List.iter
        (fun (r : Icfg_core.Trace.row) ->
          stage_rows :=
            !stage_rows @ [ (r.r_path, jobs, r.r_count, r.r_ns, counters) ];
          if jobs = 1 then
            Printf.printf "  %-28s %12d ns\n%!" r.r_path r.r_ns)
        (Icfg_core.Trace.rows t);
      trace_json := Some (Icfg_core.Trace.to_json t))
    [ 1; 4 ]

(* Cold-vs-warm incremental cache rows: a full rewrite populating a fresh
   cache, an identical re-rewrite against a warm cache (the headline: only
   layout + emit remain), and a re-rewrite after perturbing one function's
   bytes (exactly that function's entries miss). Each row also records the
   cache counters of one representative run, and every cached output is
   checked byte-identical against the uncached rewrite. *)
let run_cache_micro () =
  print_endline "== Incremental cache: cold vs warm rewrites (largest spec binary) ==";
  let module Cache = Icfg_core.Cache in
  let module Runner = Icfg_harness.Runner in
  let arch = Arch.X86_64 in
  let bin = largest_spec_binary arch in
  let rewrite ?cache b = Runner.rewrite ~jobs:1 ?cache b in
  let fingerprint (rw : Icfg_core.Rewriter.t) =
    Digest.to_hex (Digest.string (Marshal.to_string rw.Icfg_core.Rewriter.rw_binary []))
  in
  let counters_of c =
    let s = Cache.stats c in
    [
      ("hits", s.Cache.c_hits);
      ("misses", s.Cache.c_misses);
      ("stores", s.Cache.c_stores);
      ("bytes_reused", s.Cache.c_bytes_reused);
      ("evict_corrupt", s.Cache.c_evict_corrupt);
      ("evict_lru", s.Cache.c_evict_lru);
    ]
  in
  (* Representative runs execute under a private trace so the row also
     records per-stage miss counters ("miss:parse/pass1", ...): the
     warm-data-edit row gates on text-stage misses staying exactly zero. *)
  let with_misses f =
    let t = Icfg_core.Trace.create () in
    let r = Icfg_core.Trace.with_current t f in
    let prefix = "cache.miss:" in
    let n = String.length prefix in
    let misses =
      List.sort compare
        (List.filter_map
           (fun (k, v) ->
             if String.length k > n && String.sub k 0 n = prefix then
               Some ("miss:" ^ String.sub k n (String.length k - n), v)
             else None)
           (Icfg_core.Trace.counters t))
    in
    (r, misses)
  in
  let row name ~reps ~counters run =
    ignore (Sys.opaque_identity (run ()));
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (run ()))
    done;
    let ns = (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e9 in
    cache_rows := !cache_rows @ [ (name, ns, counters) ];
    Printf.printf "  %-24s %12.0f ns/run  (%s)\n%!" name ns
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters));
    ns
  in
  let baseline = rewrite bin in
  let base_fp = fingerprint baseline in
  (* Warm store shared by the warm rows; each representative/timed run
     replays it through a clone so per-run counters start from zero and
     stores never accumulate across reps. *)
  let warm = Cache.create () in
  ignore (Sys.opaque_identity (rewrite ~cache:warm bin));
  let check name rw =
    if fingerprint rw <> base_fp then
      Printf.printf "  WARNING: %s output differs from uncached rewrite\n%!" name
  in
  let cold_counters =
    let c = Cache.create () in
    let rw, misses = with_misses (fun () -> rewrite ~cache:c bin) in
    check "cache-cold-rewrite" rw;
    counters_of c @ misses
  in
  let cold =
    row "cache-cold-rewrite" ~reps:20 ~counters:cold_counters (fun () ->
        rewrite ~cache:(Cache.create ()) bin)
  in
  let warm_counters =
    let c = Cache.clone warm in
    let rw, misses = with_misses (fun () -> rewrite ~cache:c bin) in
    check "cache-warm-identical" rw;
    counters_of c @ misses
  in
  let warm_ns =
    row "cache-warm-identical" ~reps:20 ~counters:warm_counters (fun () ->
        rewrite ~cache:(Cache.clone warm) bin)
  in
  Printf.printf "  %-24s cold/warm speedup: %.2fx\n%!" "cache" (cold /. warm_ns);
  let p = Icfg_analysis.Parse.parse bin in
  (* A warm rewrite against an edited binary, checked byte-identical to the
     uncached rewrite of the same edit. *)
  let warm_edited name pbin =
    let edited_fp = fingerprint (rewrite pbin) in
    let counters =
      let c = Cache.clone warm in
      let rw, misses = with_misses (fun () -> rewrite ~cache:c pbin) in
      if fingerprint rw <> edited_fp then
        Printf.printf "  WARNING: %s output differs from uncached\n%!" name;
      counters_of c @ misses
    in
    row name ~reps:20 ~counters (fun () ->
        rewrite ~cache:(Cache.clone warm) pbin)
  in
  (match Runner.perturb_function p with
  | None ->
      print_endline "  (no safely perturbable function; skipping perturbed row)"
  | Some (pbin, fname) ->
      Printf.printf "  (perturbed function: %s)\n%!" fname;
      let pert_ns = warm_edited "cache-warm-perturbed" pbin in
      Printf.printf "  %-24s warm-perturbed/warm-identical: %.2fx\n%!" "cache"
        (pert_ns /. warm_ns));
  match Runner.perturb_data p with
  | None ->
      print_endline "  (no safely perturbable data byte; skipping data-edit row)"
  | Some (pbin, sname) ->
      Printf.printf "  (perturbed data section: %s)\n%!" sname;
      ignore (warm_edited "cache-warm-data-edit" pbin)

(* Daemon throughput: a twin-bearing corpus slice streamed through a live
   [icfg serve] instance as classify requests, at 1 and 4 concurrent
   clients, all sharing the daemon's one cross-request cache. Cross-
   approach parse reuse makes the cache hit across requests, which
   `bench diff` gates as hits > 0 (the twins themselves now answer from
   the response memo without re-entering the pipeline); overloaded and
   errors are deterministically zero (in-flight is bounded by the client
   count, classification never answers Error). *)
let run_serve_micro () =
  print_endline "== Rewrite-as-a-service: daemon request streams ==";
  let module Sweep = Icfg_service.Sweep in
  let module Cache = Icfg_core.Cache in
  List.iter
    (fun clients ->
      let r = Sweep.run ~seed:7 ~count:12 ~clients () in
      let name = Printf.sprintf "serve-stream-c%d" clients in
      let ns_per_request =
        r.Sweep.sw_wall_ns /. float_of_int (max 1 r.Sweep.sw_requests)
      in
      let counters =
        [
          ("requests", r.Sweep.sw_requests);
          ("overloaded", r.Sweep.sw_overloaded);
          ("errors", r.Sweep.sw_errors);
          ("hits", r.Sweep.sw_cache.Cache.c_hits);
          ("misses", r.Sweep.sw_cache.Cache.c_misses);
          ("hit_rate_pct", int_of_float (100. *. r.Sweep.sw_hit_rate));
          (* milli-rps: an integer counter that keeps the fraction a
             plain [rps] int would truncate (4.73 req/s used to round
             down to 4). *)
          ("rps_milli", int_of_float ((1000. *. r.Sweep.sw_rps) +. 0.5));
        ]
      in
      serve_rows := !serve_rows @ [ (name, ns_per_request, counters) ];
      (* Distill the daemon's telemetry snapshot into the gateable
         metrics row for this stream. *)
      let module M = Icfg_core.Metrics in
      let has_prefix p s =
        String.length s >= String.length p
        && String.sub s 0 (String.length p) = p
      in
      let snap = r.Sweep.sw_metrics in
      (* Scalar allowlist counters are emitted even when the daemon never
         touched them (absence == 0), so the document shape is stable and
         a doctored zero is still sed-able by the CI self-check.
         [sched.jobs] and the response-memo counters are only emitted at
         c1: under concurrent clients two identical requests can race
         past the memo and both schedule, so those counts are schedule-
         dependent there (benign — both runs produce identical bytes). *)
      let scalar_allowlist =
        [
          "serve.requests"; "serve.overloaded"; "serve.errors";
          "serve.needfull"; "serve.rejected";
          "cache.evict_corrupt"; "cache.evict_lru";
        ]
        @ (if clients = 1 then
             [ "sched.jobs"; "response_cache.hit"; "response_cache.miss" ]
           else [])
      in
      let det_counters =
        List.sort compare
          (List.map
             (fun k ->
               ( k,
                 match List.assoc_opt k snap.M.s_counters with
                 | Some v -> v
                 | None -> 0 ))
             scalar_allowlist
          @ List.filter
              (fun (k, _) -> has_prefix "serve.responses:" k)
              snap.M.s_counters)
      in
      let gateable k =
        has_prefix "request.latency:" k || k = "sched.queue_wait"
      in
      let hist_counts =
        List.filter_map
          (fun (k, h) ->
            if gateable k then Some (k ^ ":count", h.M.h_count) else None)
          snap.M.s_histos
      in
      let times =
        List.filter_map
          (fun (k, h) ->
            if gateable k then Some (k ^ ":sum_ns", h.M.h_sum) else None)
          snap.M.s_histos
      in
      metrics_rows :=
        !metrics_rows
        @ [
            ( Printf.sprintf "serve-metrics-c%d" clients,
              det_counters @ hist_counts,
              times );
          ];
      Printf.printf
        "  %-18s %12.0f ns/request  %7.1f req/s  (%d requests, %d \
         overloaded, %d errors, cache %d/%d = %.1f%% hits)\n%!"
        name ns_per_request r.Sweep.sw_rps r.Sweep.sw_requests
        r.Sweep.sw_overloaded r.Sweep.sw_errors r.Sweep.sw_cache.Cache.c_hits
        (r.Sweep.sw_cache.Cache.c_hits + r.Sweep.sw_cache.Cache.c_misses)
        (100. *. r.Sweep.sw_hit_rate);
      List.iter
        (fun (k, h) ->
          if has_prefix "request.latency:" k then
            Printf.printf "    %-44s %5d obs  mean %.2f ms\n%!"
              (String.sub k 16 (String.length k - 16))
              h.M.h_count
              (M.histo_mean h /. 1e6))
        snap.M.s_histos)
    [ 1; 4 ]

(* Incremental service protocol streams (DESIGN §15). Three rows:

   serve-ref-stream     the serve-stream-c1 slice shipped as 32-byte
                        [Ref] digests after a one-time registration
                        pass — the wire-cost twin of serve-stream-c1.
   serve-patch-stream   one-function edits of spec binaries shipped as
                        sparse [Patch] deltas against registered bases;
                        responses checked byte-identical against
                        in-process rewrites of the same edits. Gated:
                        wire bytes/request <= 10% of a full upload.
   serve-replay-stream  a warmed stream replayed; the replays arrive as
                        [Ref] digests (the incremental client's steady
                        state: pass 1's full uploads registered every
                        binary) and every one must answer from the
                        response memo with zero pipeline stage misses
                        and byte-identical payloads, >= 10x faster per
                        request than serve-stream-c1. Both gates live in
                        `bench diff` as within-run checks on this
                        JSON. *)
let run_serve_incremental_micro () =
  print_endline
    "== Incremental service protocol: ref / patch / replay streams ==";
  let module Sweep = Icfg_service.Sweep in
  let module Server = Icfg_service.Server in
  let module Client = Icfg_service.Client in
  let module Protocol = Icfg_service.Protocol in
  let module Store = Icfg_service.Store in
  let module Binfile = Icfg_obj.Binfile in
  let module Cache = Icfg_core.Cache in
  let module M = Icfg_core.Metrics in
  let sock tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "icfg-bench-%s-%d.sock" tag (Unix.getpid ()))
  in
  let milli_rps n wall_ns =
    if wall_ns > 0. then
      int_of_float ((1000. *. float_of_int n /. (wall_ns /. 1e9)) +. 0.5)
    else 0
  in
  let row name ns counters =
    serve_rows := !serve_rows @ [ (name, ns, counters) ];
    Printf.printf "  %-20s %12.0f ns/request  (%s)\n%!" name ns
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters))
  in
  (* --- serve-ref-stream ------------------------------------------- *)
  let r = Sweep.run ~seed:7 ~count:12 ~clients:1 ~payload_mode:Sweep.By_ref () in
  let nreq = max 1 r.Sweep.sw_requests in
  row "serve-ref-stream"
    (r.Sweep.sw_wall_ns /. float_of_int nreq)
    [
      ("requests", r.Sweep.sw_requests);
      ("overloaded", r.Sweep.sw_overloaded);
      ("errors", r.Sweep.sw_errors);
      ("needfull", r.Sweep.sw_needfull);
      ("wire_bytes_per_request", r.Sweep.sw_wire_req_bytes / nreq);
      ("full_upload_bytes_per_request", r.Sweep.sw_full_req_bytes / nreq);
      ("register_bytes", r.Sweep.sw_register_bytes);
      ("rps_milli", milli_rps r.Sweep.sw_requests r.Sweep.sw_wall_ns);
    ];
  (* --- serve-patch-stream ----------------------------------------- *)
  let approach = "ours/dir" in
  (* One deterministic single-function edit per distinct spec binary
     (the [perturb_function] contract), pre-checked in-process: the
     daemon must reproduce these exact bytes from a sparse delta. *)
  let edits =
    List.filter_map
      (fun bench ->
        let bin, _ = Icfg_workloads.Spec_suite.compile Arch.X86_64 bench in
        let p = Icfg_analysis.Parse.parse bin in
        match Icfg_harness.Runner.perturb_function p with
        | None -> None
        | Some (edited, _fname) -> (
            match Icfg_harness.Runner.drive ~approach ~jobs:1 edited with
            | Some (Icfg_baselines.Baseline.Rewritten rw) ->
                Some
                  ( Binfile.to_string bin,
                    Binfile.to_string edited,
                    Binfile.to_string rw.Icfg_core.Rewriter.rw_binary )
            | _ -> None))
      (Icfg_workloads.Spec_suite.benchmarks Arch.X86_64)
  in
  let edits = List.filteri (fun i _ -> i < 6) edits in
  let req_overhead =
    4 + String.length Protocol.magic + 1 + 4 + String.length approach + 4
  in
  let patch_wire ranges =
    req_overhead + 1 + 4 + 32 + 4 + 4
    + List.fold_left (fun a (_, s) -> a + 8 + String.length s) 0 ranges
  in
  let full_wire s = req_overhead + 1 + 4 + String.length s in
  (if edits = [] then
     print_endline "  (no perturbable spec binaries; skipping patch stream)"
   else begin
     let path = sock "patch" in
     let srv = Server.start ~path () in
     Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
     Client.with_connection path @@ fun c ->
     let register_bytes = ref 0 in
     List.iter
       (fun (base, _, _) ->
         register_bytes :=
           !register_bytes + 4 + String.length Protocol.magic + 1 + 4
           + String.length base;
         match Client.register_bytes c base with
         | Ok (Protocol.Registered _) -> ()
         | _ -> failwith "register failed")
       edits;
     let needfull = ref 0 and mismatches = ref 0 in
     let wire = ref 0 and full_bytes = ref 0 in
     let t0 = Unix.gettimeofday () in
     List.iter
       (fun (base, edited, expected) ->
         let ranges = Protocol.diff_ranges ~base edited in
         wire := !wire + patch_wire ranges;
         full_bytes := !full_bytes + full_wire edited;
         let payload =
           Protocol.Patch
             {
               base = Store.digest base;
               total_len = String.length edited;
               ranges;
             }
         in
         match Client.rewrite_payload c ~approach ~fallback:edited payload with
         | Ok (Protocol.Rewritten { bin; _ }) ->
             if bin <> expected then incr mismatches
         | Ok (Protocol.NeedFull _) -> incr needfull
         | _ -> incr mismatches)
       edits;
     let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
     let n = List.length edits in
     row "serve-patch-stream"
       (wall_ns /. float_of_int (max 1 n))
       [
         ("requests", n);
         ("needfull", !needfull);
         ("mismatches", !mismatches);
         ("wire_bytes_per_request", !wire / max 1 n);
         ("full_upload_bytes_per_request", !full_bytes / max 1 n);
         ("register_bytes", !register_bytes);
         ("rps_milli", milli_rps n wall_ns);
       ]
   end);
  (* --- serve-replay-stream ---------------------------------------- *)
  let entries = Icfg_workloads.Corpus.generate ~seed:7 ~count:12 in
  let bin_strs =
    List.map
      (fun e -> Binfile.to_string (Icfg_workloads.Corpus.build e))
      entries
  in
  let approaches = List.map fst Icfg_baselines.Baseline.approaches in
  (* Digests precomputed off the clock: pass 2 measures the daemon's
     replay path, not client-side hashing. *)
  let items =
    List.concat_map
      (fun s ->
        let d = Store.digest s in
        List.map (fun a -> (a, s, d)) approaches)
      bin_strs
  in
  let path = sock "replay" in
  let srv = Server.start ~path () in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  Client.with_connection path @@ fun c ->
  let raw_call payload_of (a, s, d) =
    Protocol.write_frame (Client.fd c)
      (Protocol.request_to_payload
         (Protocol.Classify
            { approach = a; jobs = 0; payload = payload_of s d }));
    match Protocol.read_frame (Client.fd c) with
    | Some p -> p
    | None -> failwith "daemon hung up"
  in
  (* Pass 1 (untimed): compute every response once through the pipeline;
     the full uploads register every binary as a side effect. *)
  let pass1 = List.map (raw_call (fun s _ -> Protocol.Full s)) items in
  let hits0 =
    Option.value ~default:0
      (M.find_counter (Server.snapshot srv) "response_cache.hit")
  in
  let pipeline_misses0 = (Cache.stats (Server.cache srv)).Cache.c_misses in
  (* Pass 2 (timed): the same requests re-sent as [Ref] digests — the
     resolved binary, and therefore the memo key, is identical, so every
     replay answers from the memo: no pipeline, no re-upload. *)
  let t0 = Unix.gettimeofday () in
  let pass2 = List.map (raw_call (fun _ d -> Protocol.Ref d)) items in
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let hits =
    Option.value ~default:0
      (M.find_counter (Server.snapshot srv) "response_cache.hit")
    - hits0
  in
  let pipeline_misses =
    (Cache.stats (Server.cache srv)).Cache.c_misses - pipeline_misses0
  in
  let mismatches =
    List.fold_left2
      (fun acc a b -> if String.equal a b then acc else acc + 1)
      0 pass1 pass2
  in
  let n = List.length items in
  row "serve-replay-stream"
    (wall_ns /. float_of_int (max 1 n))
    [
      ("requests", n);
      ("response_hits", hits);
      ("response_hit_rate_pct", 100 * hits / max 1 n);
      ("pipeline_misses", pipeline_misses);
      ("mismatches", mismatches);
      ("rps_milli", milli_rps n wall_ns);
    ]

let run_micro () =
  let open Bechamel in
  print_endline "== Micro-benchmarks (bechamel; one per table/figure) ==";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let tests = micro_tests () in
  List.iter
    (fun test ->
      List.iter
        (fun t ->
          let raw = Benchmark.run cfg [ instance ] t in
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |]
          in
          let est = Analyze.one ols instance raw in
          let nanos =
            match Analyze.OLS.estimates est with
            | Some [ n ] -> n
            | _ -> nan
          in
          micro_rows := !micro_rows @ [ (Test.Elt.name t, nanos) ];
          Printf.printf "  %-32s %12.0f ns/run\n%!" (Test.Elt.name t) nanos)
        (Test.elements test))
    tests;
  run_parallel_micro ();
  run_trace_stages ();
  run_cache_micro ();
  run_serve_micro ();
  run_serve_incremental_micro ()

(* The corpus-scale robustness matrix: every roster baseline and every
   mode of ours swept over a seeded adversarial corpus under one shared
   cache. Classification is deterministic (seeded corpus, serial cache
   probing), so the pass-rate/refusal rows it leaves in the JSON gate
   exactly in `bench diff`. *)
let run_corpus ~seed ~count ~jobs =
  let m =
    Icfg_harness.Matrix.run ~seed ~count ~jobs
      ~progress:(fun i ->
        if i mod 50 = 0 && i < count then
          Printf.printf "  ...%d/%d binaries\n%!" i count)
      ()
  in
  print_string (Icfg_harness.Matrix.render m);
  corpus_result := Some m

(* The regression gate: `bench/main.exe diff OLD.json NEW.json [--gate pct]`
   compares two BENCH_micro.json runs and exits non-zero on regression (CI
   runs this against the committed baseline). *)
let run_diff args =
  let rec split_flag flag acc = function
    | f :: v :: rest when f = flag -> (Some v, List.rev_append acc rest)
    | x :: rest -> split_flag flag (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let gate_s, args = split_flag "--gate" [] args in
  let gate = Option.map float_of_string gate_s in
  match args with
  | [ old_path; new_path ] -> (
      match Icfg_harness.Bench_diff.diff_files ?gate old_path new_path with
      | Error e ->
          Printf.eprintf "diff: %s\n" e;
          exit 2
      | Ok findings ->
          print_string (Icfg_harness.Bench_diff.render findings);
          if Icfg_harness.Bench_diff.has_regression findings then (
            Printf.eprintf "diff: regressions found\n";
            exit 1))
  | _ ->
      Printf.eprintf "usage: bench/main.exe diff OLD.json NEW.json [--gate pct]\n";
      exit 2

(* The warm-path gate: `bench/main.exe check-cache FILE [--max-ratio r]`
   asserts the cache section of a bench JSON keeps warm-perturbed within
   the target ratio of warm-identical, and the data-only-edit row with
   zero text-stage misses (CI runs this against the refreshed artifact). *)
let run_check_cache args =
  let rec split_flag flag acc = function
    | f :: v :: rest when f = flag -> (Some v, List.rev_append acc rest)
    | x :: rest -> split_flag flag (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let ratio_s, args = split_flag "--max-ratio" [] args in
  let max_ratio = Option.map float_of_string ratio_s in
  match args with
  | [ path ] -> (
      match Icfg_harness.Bench_diff.check_cache_file ?max_ratio path with
      | Error e ->
          Printf.eprintf "check-cache: %s\n" e;
          exit 2
      | Ok findings ->
          print_string (Icfg_harness.Bench_diff.render findings);
          if Icfg_harness.Bench_diff.has_regression findings then (
            Printf.eprintf "check-cache: warm-path gate failed\n";
            exit 1))
  | _ ->
      Printf.eprintf "usage: bench/main.exe check-cache FILE [--max-ratio r]\n";
      exit 2

(* The serve equivalence gate: `bench/main.exe serve-check [--seed N]
   [--count N] [--clients N] [--jobs N]` sweeps a corpus slice through a
   live daemon AND in-process, and exits non-zero unless every
   per-approach classification row matches exactly (CI runs this as the
   serve smoke step). *)
let run_serve_check args =
  let rec split_flag flag acc = function
    | f :: v :: rest when f = flag -> (Some v, List.rev_append acc rest)
    | x :: rest -> split_flag flag (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let int_flag flag default args =
    let s, args = split_flag flag [] args in
    (Option.fold ~none:default ~some:int_of_string s, args)
  in
  let seed, args = int_flag "--seed" 7 args in
  let count, args = int_flag "--count" 60 args in
  let clients, args = int_flag "--clients" 4 args in
  let jobs, args = int_flag "--jobs" 1 args in
  if args <> [] then (
    Printf.eprintf
      "usage: bench/main.exe serve-check [--seed N] [--count N] [--clients \
       N] [--jobs N]\n";
    exit 2);
  let module Sweep = Icfg_service.Sweep in
  let module Cache = Icfg_core.Cache in
  Printf.printf
    "serve-check: daemon vs in-process sweep (seed %d, %d binaries, %d \
     clients, jobs %d)\n%!"
    seed count clients jobs;
  let ok, report, r = Sweep.check ~seed ~count ~clients ~jobs () in
  print_string report;
  Printf.printf
    "daemon: %d requests, %d overloaded, %d errors, %.1f req/s, cache %d \
     hits / %d misses (%.1f%%)\n%!"
    r.Sweep.sw_requests r.Sweep.sw_overloaded r.Sweep.sw_errors r.Sweep.sw_rps
    r.Sweep.sw_cache.Cache.c_hits r.Sweep.sw_cache.Cache.c_misses
    (100. *. r.Sweep.sw_hit_rate);
  if not ok then (
    Printf.eprintf "serve-check: daemon and in-process sweeps disagree\n";
    exit 1);
  print_endline "serve-check: classifications match exactly"

let () =
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  (match args with
  | "diff" :: rest ->
      run_diff rest;
      exit 0
  | "check-cache" :: rest ->
      run_check_cache rest;
      exit 0
  | "serve-check" :: rest ->
      run_serve_check rest;
      exit 0
  | _ -> ());
  (* Extract "--json FILE" / "--trace FILE" pairs anywhere in the argument
     list; the rest select experiments. *)
  let rec split_flag flag acc = function
    | f :: file :: rest when f = flag -> (Some file, List.rev_append acc rest)
    | x :: rest -> split_flag flag (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_path, args = split_flag "--json" [] args in
  let trace_path, args = split_flag "--trace" [] args in
  let cache_json_path, args = split_flag "--cache-json" [] args in
  let int_flag flag default args =
    let s, args = split_flag flag [] args in
    (Option.fold ~none:default ~some:int_of_string s, args)
  in
  let corpus_seed, args = int_flag "--seed" 7 args in
  let corpus_count, args = int_flag "--count" 300 args in
  let corpus_jobs, args = int_flag "--jobs" 1 args in
  let selected =
    match args with
    | [] -> List.map fst experiments @ [ "micro"; "corpus" ]
    | l -> l
  in
  List.iter
    (fun name ->
      if name = "micro" then run_micro ()
      else if name = "corpus" then
        run_corpus ~seed:corpus_seed ~count:corpus_count ~jobs:corpus_jobs
      else
        match List.assoc_opt name experiments with
        | Some f ->
            print_string (f ());
            print_newline ()
        | None ->
            Printf.eprintf "unknown experiment %s (have: %s, micro, corpus)\n"
              name
              (String.concat ", " (List.map fst experiments));
            exit 1)
    selected;
  Option.iter write_json json_path;
  Option.iter write_cache_json cache_json_path;
  Option.iter
    (fun path ->
      match !trace_json with
      | Some json ->
          let oc = open_out path in
          output_string oc json;
          close_out oc;
          Printf.printf "wrote %s\n%!" path
      | None ->
          Printf.eprintf "--trace: no trace recorded (run the micro suite)\n")
    trace_path
