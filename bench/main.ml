(* The benchmark harness: regenerates every table and figure of the paper
   (Tables 1-3, Figures 1-2, the Firefox/Docker/BOLT experiments, and the
   Diogenes case study), then runs one bechamel micro-benchmark per
   table/figure measuring the corresponding pipeline stage.

   Usage:
     bench/main.exe                 -- everything
     bench/main.exe table3 bolt ... -- selected experiments
     bench/main.exe micro           -- only the bechamel micro-benchmarks *)

open Icfg_isa
module Experiments = Icfg_harness.Experiments

let experiments =
  [
    ("table1", Experiments.table1);
    ("figure1", Experiments.figure1);
    ("figure2", Experiments.figure2);
    ("table2", Experiments.table2);
    ("table3", fun () -> Experiments.table3 ());
    ("table3-detail", fun () -> Experiments.table3_detail ());
    ("firefox", Experiments.firefox);
    ("docker", Experiments.docker);
    ("bolt", Experiments.bolt);
    ("diogenes", Experiments.diogenes);
    ("ablation", Experiments.ablation);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure                     *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let arch = Arch.X86_64 in
  let bench = List.hd (Icfg_workloads.Spec_suite.benchmarks arch) in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  let parse = Icfg_analysis.Parse.parse bin in
  let rw = Icfg_core.Rewriter.rewrite parse in
  let classify =
    Option.get (Icfg_analysis.Parse.func parse "switch0")
  in
  let fm = Icfg_analysis.Failure_model.ours in
  let known =
    Icfg_analysis.Jump_table.known_data bin []
  in
  let ra_map = rw.Icfg_core.Rewriter.rw_ra_map in
  let probe_pc =
    match Icfg_runtime.Runtime_lib.Ra_map.pairs ra_map with
    | (k, _) :: _ -> k + 3
    | [] -> 0
  in
  [
    (* Table 1 is qualitative; measure the capability-table rendering. *)
    Test.make ~name:"table1/render-capabilities"
      (Staged.stage (fun () -> Sys.opaque_identity (Experiments.table1 ())));
    (* Figure 1: whole-binary rewrite throughput. *)
    Test.make ~name:"figure1/rewrite-binary"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Icfg_core.Rewriter.rewrite parse)));
    (* Figure 2: jump-table slicing and finalization. *)
    Test.make ~name:"figure2/jump-table-analysis"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Icfg_analysis.Jump_table.analyze bin fm ~known_data:known
                classify.Icfg_analysis.Parse.fa_cfg)));
    (* Table 2: trampoline selection and emission. *)
    Test.make ~name:"table2/trampoline-emit"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Trampoline.emit arch ~at:0x400100 ~target:0x500000 ~toc:0
                (Trampoline.Long None))));
    (* Table 3: whole-binary parse (CFG + analyses). *)
    Test.make ~name:"table3/parse-binary"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Icfg_analysis.Parse.parse bin)));
    (* Firefox: RA-translation lookup (the per-unwind-step cost). *)
    Test.make ~name:"firefox/ra-translate"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Icfg_runtime.Runtime_lib.Ra_map.translate ra_map probe_pc)));
    (* Docker: compile the Go analogue. *)
    Test.make ~name:"docker/compile-go-binary"
      (Staged.stage (fun () ->
           Sys.opaque_identity (Icfg_workloads.Apps.docker arch)));
    (* BOLT: block-reversed relocation. *)
    Test.make ~name:"bolt/reverse-blocks-rewrite"
      (Staged.stage (fun () ->
           Sys.opaque_identity
             (Icfg_core.Rewriter.rewrite
                ~options:
                  {
                    Icfg_core.Rewriter.default_options with
                    Icfg_core.Rewriter.order = `Reverse_blocks;
                  }
                parse)));
    (* Diogenes: partial instrumentation of the driver analogue. *)
    Test.make ~name:"diogenes/partial-rewrite"
      (Staged.stage (fun () ->
           let bin, _ = Icfg_workloads.Apps.libcuda arch in
           let only = Icfg_workloads.Apps.libcuda_api_subset bin in
           Sys.opaque_identity
             (Icfg_baselines.Baseline.ours_partial ~mode:Icfg_core.Mode.Jt
                ~only bin)));
  ]

(* Serial vs. parallel rewrite throughput on the largest spec-suite
   binary.  Wall-clock (bechamel's per-run OLS would hide the domain
   fan-out), repeated enough to amortize pool startup. *)
let run_parallel_micro () =
  print_endline "== Parallel rewrite throughput (largest spec binary) ==";
  let arch = Arch.X86_64 in
  let bin =
    List.fold_left
      (fun best bench ->
        let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
        match best with
        | Some b when Icfg_obj.Binary.loaded_size b >= Icfg_obj.Binary.loaded_size bin
          -> best
        | _ -> Some bin)
      None
      (Icfg_workloads.Spec_suite.benchmarks arch)
    |> Option.get
  in
  let reps = 50 in
  let time_jobs jobs =
    (* warm up: fault in the domain pool and any lazy state *)
    ignore (Sys.opaque_identity (Icfg_harness.Runner.rewrite ~jobs bin));
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (Icfg_harness.Runner.rewrite ~jobs bin))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let serial = time_jobs 1 in
  let parallel = time_jobs 4 in
  let pr name t =
    Printf.printf "  %-24s %10.0f ns/rewrite  %8.1f rewrites/s\n" name
      (t *. 1e9) (1. /. t)
  in
  pr "jobs=1 (serial)" serial;
  pr "jobs=4 (parallel)" parallel;
  Printf.printf "  speedup: %.2fx on %d core(s) (%d bytes loaded)\n%!"
    (serial /. parallel)
    (Domain.recommended_domain_count ())
    (Icfg_obj.Binary.loaded_size bin)

let run_micro () =
  let open Bechamel in
  print_endline "== Micro-benchmarks (bechamel; one per table/figure) ==";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let tests = micro_tests () in
  List.iter
    (fun test ->
      List.iter
        (fun t ->
          let raw = Benchmark.run cfg [ instance ] t in
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |]
          in
          let est = Analyze.one ols instance raw in
          let nanos =
            match Analyze.OLS.estimates est with
            | Some [ n ] -> n
            | _ -> nan
          in
          Printf.printf "  %-32s %12.0f ns/run\n%!" (Test.Elt.name t) nanos)
        (Test.elements test))
    tests;
  run_parallel_micro ()

let () =
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  let selected =
    match args with
    | [] -> List.map fst experiments @ [ "micro" ]
    | l -> l
  in
  List.iter
    (fun name ->
      if name = "micro" then run_micro ()
      else
        match List.assoc_opt name experiments with
        | Some f ->
            print_string (f ());
            print_newline ()
        | None ->
            Printf.eprintf "unknown experiment %s (have: %s, micro)\n" name
              (String.concat ", " (List.map fst experiments));
            exit 1)
    selected
