(* The icfg command-line tool: inspect, analyze, rewrite and run the
   workspace's synthetic binaries, and regenerate the paper's experiments.

     icfg inspect  --workload docker --arch x86-64
     icfg analyze  --workload spec:602.gcc_s --arch ppc64le
     icfg rewrite  --workload libxul --mode jt
     icfg run      --workload quickstart --mode func-ptr
     icfg bench table3 diogenes *)

open Cmdliner
open Icfg_isa
module Binary = Icfg_obj.Binary
module Parse = Icfg_analysis.Parse
module Rewriter = Icfg_core.Rewriter
module Mode = Icfg_core.Mode
module Vm = Icfg_runtime.Vm

(* ------------------------------------------------------------------ *)
(* Workload selection                                                  *)
(* ------------------------------------------------------------------ *)

let quickstart arch pie =
  let spec =
    { Icfg_workloads.Gen.default_spec with Icfg_workloads.Gen.name = "quickstart"; iters = 50 }
  in
  Icfg_codegen.Compile.compile ~pie arch (Icfg_workloads.Gen.build spec)

let load_workload name arch pie =
  match name with
  | _ when String.length name > 5 && String.sub name 0 5 = "file:" ->
      let path = String.sub name 5 (String.length name - 5) in
      (Icfg_obj.Binfile.load path, Icfg_codegen.Debug.empty)
  | "quickstart" -> quickstart arch pie
  | "libxul" -> Icfg_workloads.Apps.libxul arch
  | "docker" -> Icfg_workloads.Apps.docker arch
  | "libcuda" -> Icfg_workloads.Apps.libcuda arch
  | _ when String.length name > 5 && String.sub name 0 5 = "spec:" ->
      let bname = String.sub name 5 (String.length name - 5) in
      let bench =
        List.find_opt
          (fun b -> b.Icfg_workloads.Spec_suite.bench_name = bname)
          (Icfg_workloads.Spec_suite.benchmarks arch)
      in
      (match bench with
      | Some b -> Icfg_workloads.Spec_suite.compile ~pie arch b
      | None ->
          Printf.eprintf "unknown SPEC-like benchmark %s; names:\n%s\n" bname
            (String.concat "\n"
               (List.map
                  (fun b -> "  " ^ b.Icfg_workloads.Spec_suite.bench_name)
                  (Icfg_workloads.Spec_suite.benchmarks arch)));
          exit 1)
  | _ ->
      Printf.eprintf
        "unknown workload %s (quickstart | libxul | docker | libcuda | \
         spec:<name> | file:<path>)\n"
        name;
      exit 1

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let arch_conv =
  let parse s =
    match Arch.of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown architecture %s" s))
  in
  Arg.conv (parse, Arch.pp)

let mode_conv =
  let parse s =
    match Mode.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown mode %s" s))
  in
  Arg.conv (parse, Mode.pp)

let workload_t =
  Arg.(value & opt string "quickstart" & info [ "w"; "workload" ] ~doc:"Workload name.")

let arch_t =
  Arg.(value & opt arch_conv Arch.X86_64 & info [ "a"; "arch" ] ~doc:"Architecture.")

let pie_t = Arg.(value & flag & info [ "pie" ] ~doc:"Compile as PIE.")

let mode_t =
  Arg.(value & opt mode_conv Mode.Jt & info [ "m"; "mode" ] ~doc:"Rewriting mode.")

let jobs_t =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Fan per-function analysis and rewriting out across $(docv) \
           domains (0 = one per core). Output is bit-identical to a serial \
           run for any value."
        ~docv:"N")

let resolve_jobs jobs =
  if jobs <= 0 then Icfg_core.Pool.recommended_jobs () else jobs

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:
          "Record a pipeline trace (timed span tree per stage + named \
           counters, including VM runtime counters where a VM runs) and \
           write it to $(docv) as JSON (schema icfg-trace/1)."
        ~docv:"FILE")

let cache_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ]
        ~doc:
          "Reuse per-function rewrite artifacts from the content-addressed \
           cache rooted at $(docv) (created if missing). Warm re-rewrites \
           skip analysis, relocation, planning and chunk encoding for \
           unchanged functions; output bytes are identical with or without \
           the cache, and corrupt or stale entries silently degrade to \
           misses."
        ~docv:"DIR")

let cache_of dir = Option.map (fun d -> Icfg_core.Cache.create ~dir:d ()) dir

let pp_cache_line = function
  | None -> ()
  | Some c ->
      let s = Icfg_core.Cache.stats c in
      Format.printf
        "cache: %d hits, %d misses, %d bytes reused, %d corrupt evictions@."
        s.Icfg_core.Cache.c_hits s.Icfg_core.Cache.c_misses
        s.Icfg_core.Cache.c_bytes_reused s.Icfg_core.Cache.c_evict_corrupt

(* Run [f] under an ambient trace when [--trace FILE] was given, then write
   the JSON report — also when [f] raises or exits, so a failed pipeline
   still leaves its trace behind for diagnosis. Tracing is
   observation-only: [f]'s outputs are byte-identical either way. *)
let with_trace path f =
  match path with
  | None -> f ()
  | Some file ->
      let r = Icfg_core.Trace.with_file file f in
      Format.printf "wrote trace %s@." file;
      r

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let inspect workload arch pie =
  let bin, dbg = load_workload workload arch pie in
  Format.printf "%a" Binary.pp bin;
  Format.printf "%a" Icfg_codegen.Debug.pp dbg

let analyze workload arch pie jobs =
  let bin, _ = load_workload workload arch pie in
  let p = Icfg_harness.Runner.parse ~jobs:(resolve_jobs jobs) bin in
  Format.printf "%a" Parse.pp_summary p;
  List.iter
    (fun fa ->
      Format.printf "  %-24s blocks %3d, tables %d, tail jumps %d%s@."
        fa.Parse.fa_sym.Icfg_obj.Symbol.name
        (List.length fa.Parse.fa_cfg.Icfg_analysis.Cfg.blocks)
        (List.length fa.Parse.fa_tables)
        (List.length fa.Parse.fa_tail_jumps)
        (if fa.Parse.fa_instrumentable then "" else "  [UNINSTRUMENTABLE]"))
    p.Parse.funcs

let rewrite_cmd workload arch pie mode jobs output trace cache_dir =
  let bin, _ = load_workload workload arch pie in
  let cache = cache_of cache_dir in
  let rw =
    with_trace trace @@ fun () ->
    Icfg_harness.Runner.rewrite
      ~options:{ Rewriter.default_options with Rewriter.mode }
      ~jobs:(resolve_jobs jobs) ?cache bin
  in
  Format.printf "%a@." Rewriter.pp_stats rw.Rewriter.rw_stats;
  pp_cache_line cache;
  Format.printf "%a" Binary.pp rw.Rewriter.rw_binary;
  match output with
  | Some path ->
      Icfg_obj.Binfile.save path rw.Rewriter.rw_binary;
      Format.printf "wrote %s@." path
  | None -> ()

let verify_cmd workload arch pie mode jobs trace =
  let bin, _ = load_workload workload arch pie in
  let options =
    {
      Icfg_core.Rewriter.default_options with
      Icfg_core.Rewriter.mode;
      jobs = resolve_jobs jobs;
    }
  in
  let report = Icfg_core.Verify.strong_test ~options bin in
  Format.printf "%a" Icfg_core.Verify.pp_report report;
  (* The strong test always records its own trace; --trace just saves it. *)
  (match trace with
  | Some file ->
      let oc = open_out file in
      output_string oc (Icfg_core.Trace.to_json report.Icfg_core.Verify.trace);
      close_out oc;
      Format.printf "wrote trace %s@." file
  | None -> ());
  if not report.Icfg_core.Verify.ok then exit 1

let run_cmd workload arch pie mode jobs trace cache_dir =
  let bin, _ = load_workload workload arch pie in
  let cache = cache_of cache_dir in
  let show label (r : Vm.result) =
    Format.printf "%-10s %-8s cycles %10d, steps %9d, traps %5d, output [%s]@."
      label
      (match r.Vm.outcome with Vm.Halted -> "ok" | Vm.Crashed m -> "CRASH: " ^ m)
      r.Vm.cycles r.Vm.steps r.Vm.trap_hits
      (String.concat "; " (List.map string_of_int r.Vm.output))
  in
  let orig, r =
    with_trace trace @@ fun () ->
    let cfg = Icfg_harness.Runner.measure_config ~pie in
    let orig =
      Icfg_core.Trace.span "run:original" @@ fun () ->
      Vm.run ~config:cfg ~routines:(Icfg_runtime.Runtime_lib.standard ()) bin
    in
    Icfg_core.Trace.add_vm ~prefix:"vm/original" orig;
    let rw =
      Icfg_harness.Runner.rewrite
        ~options:{ Rewriter.default_options with Rewriter.mode }
        ~jobs:(resolve_jobs jobs) ?cache bin
    in
    let counters = Hashtbl.create 16 in
    let cfg = Rewriter.vm_config_for rw cfg in
    let r =
      Icfg_core.Trace.span "run:rewritten" @@ fun () ->
      Vm.run ~config:cfg ~routines:(Rewriter.routines_for rw ~counters)
        rw.Rewriter.rw_binary
    in
    Icfg_core.Trace.add_vm ~prefix:"vm/rewritten" r;
    (orig, r)
  in
  show "original" orig;
  show (Mode.name mode) r;
  pp_cache_line cache;
  if r.Vm.outcome = Vm.Halted && r.Vm.output = orig.Vm.output then
    Format.printf "outputs match; overhead %+.2f%%@."
      (100. *. float_of_int (r.Vm.cycles - orig.Vm.cycles)
      /. float_of_int (max 1 orig.Vm.cycles))

let report_cmd workload arch pie mode jobs json trace cache_dir =
  let module A = Icfg_core.Attribution in
  let bin, _ = load_workload workload arch pie in
  let cache = cache_of cache_dir in
  with_trace trace @@ fun () ->
  (* Both rewrites (the mode and its Dir baseline) share the cache: parse
     artifacts hit across modes, mode-dependent stages key apart. *)
  let rewrite mode =
    Icfg_harness.Runner.rewrite
      ~options:{ Rewriter.default_options with Rewriter.mode }
      ~jobs:(resolve_jobs jobs) ?cache bin
  in
  let rw = rewrite mode in
  let attr = rw.Rewriter.rw_attribution in
  (* The Dir baseline gives the mode's incremental delta. *)
  let dir =
    if mode = Mode.Dir then None
    else Some (rewrite Mode.Dir).Rewriter.rw_attribution
  in
  Format.printf "%a@." Rewriter.pp_stats rw.Rewriter.rw_stats;
  pp_cache_line cache;
  Format.printf "%a" A.pp attr;
  (match dir with
  | Some d ->
      let dl = A.delta ~dir:d attr in
      Format.printf
        "delta vs dir: cfl blocks %+d, trampolines %+d, traps %+d@." dl.A.d_cfl
        dl.A.d_trampolines dl.A.d_traps
  | None -> ());
  match json with
  | Some path ->
      let oc = open_out path in
      output_string oc (A.to_json ?dir attr);
      close_out oc;
      Format.printf "wrote report %s@." path
  | None -> ()

let source workload =
  let prog =
    match workload with
    | "quickstart" ->
        Icfg_workloads.Gen.build
          { Icfg_workloads.Gen.default_spec with Icfg_workloads.Gen.name = "quickstart"; iters = 50 }
    | "docker" ->
        Icfg_workloads.Gen.build_go (Icfg_workloads.Gen.go_spec ~seed:1903 ~name:"docker" ~iters:150)
    | _ when String.length workload > 5 && String.sub workload 0 5 = "spec:" ->
        let bname = String.sub workload 5 (String.length workload - 5) in
        (match
           List.find_opt
             (fun b -> b.Icfg_workloads.Spec_suite.bench_name = bname)
             (Icfg_workloads.Spec_suite.benchmarks Arch.X86_64)
         with
        | Some b -> b.Icfg_workloads.Spec_suite.prog
        | None ->
            Printf.eprintf "unknown benchmark %s\n" bname;
            exit 1)
    | _ ->
        Printf.eprintf "source: supported workloads are quickstart, docker, spec:<name>\n";
        exit 1
  in
  Format.printf "%a" Icfg_codegen.Ir.pp_program prog

let disasm workload arch pie func =
  let bin, _ = load_workload workload arch pie in
  match func with
  | None -> print_string (Icfg_analysis.Listing.binary_listing bin)
  | Some name -> (
      let p = Parse.parse bin in
      match Parse.func p name with
      | Some fa -> print_string (Icfg_analysis.Listing.function_listing bin fa.Parse.fa_cfg)
      | None ->
          Printf.eprintf "no function %s\n" name;
          exit 1)

let dot workload arch pie func =
  let bin, _ = load_workload workload arch pie in
  let p = Parse.parse bin in
  match Parse.func p func with
  | Some fa -> print_string (Icfg_analysis.Listing.cfg_to_dot fa.Parse.fa_cfg)
  | None ->
      Printf.eprintf "no function %s\n" func;
      exit 1

let bench_cmd names =
  let all =
    [
      ("table1", Icfg_harness.Experiments.table1);
      ("figure1", Icfg_harness.Experiments.figure1);
      ("figure2", Icfg_harness.Experiments.figure2);
      ("table2", Icfg_harness.Experiments.table2);
      ("table3", fun () -> Icfg_harness.Experiments.table3 ());
      ("table3-detail", fun () -> Icfg_harness.Experiments.table3_detail ());
      ("firefox", Icfg_harness.Experiments.firefox);
      ("docker", Icfg_harness.Experiments.docker);
      ("bolt", Icfg_harness.Experiments.bolt);
      ("diogenes", Icfg_harness.Experiments.diogenes);
      ("ablation", Icfg_harness.Experiments.ablation);
      ("attribution", Icfg_harness.Experiments.attribution);
      (* A modest slice of the corpus robustness matrix; the full
         (default 300-binary) sweep lives in `bench/main.exe corpus`. *)
      ( "corpus",
        fun () ->
          Icfg_harness.Matrix.render
            (Icfg_harness.Matrix.run ~seed:7 ~count:60 ()) );
    ]
  in
  let names = if names = [] then List.map fst all else names in
  List.iter
    (fun n ->
      match List.assoc_opt n all with
      | Some f -> print_string (f ())
      | None -> Printf.eprintf "unknown experiment %s\n" n)
    names

(* ------------------------------------------------------------------ *)
(* Rewrite-as-a-service: the serve daemon and its submit client        *)
(* ------------------------------------------------------------------ *)

(* The serve loop deliberately contains no [exit 1] path and loads no
   workloads: every failure past startup is a typed response frame (or a
   dropped connection), never a dead daemon. The [exit 1]s above all live
   in one-shot workload loading, which only the other subcommands call. *)
let serve_cmd socket bound workers jobs cache_dir =
  let jobs = resolve_jobs jobs in
  let cache = cache_of cache_dir in
  let srv =
    Icfg_service.Server.start ~path:socket ~bound ~workers ~jobs ?cache ()
  in
  Format.printf
    "icfg serve: listening on %s (queue bound %d, %d executor domains, \
     default jobs %d)@."
    socket bound workers jobs;
  Format.printf "press Ctrl-C to stop@.";
  let stop = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
   with _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
   with _ -> ());
  while not (Atomic.get stop) do
    Unix.sleepf 0.2
  done;
  Icfg_service.Server.stop srv;
  let st = Icfg_service.Server.stats srv in
  let cs = Icfg_core.Cache.stats (Icfg_service.Server.cache srv) in
  Format.printf
    "icfg serve: stopped after %d requests (%d overloaded, %d errors); \
     cross-request cache: %d hits, %d misses (%.1f%% hit rate)@."
    st.Icfg_service.Server.requests st.Icfg_service.Server.overloaded
    st.Icfg_service.Server.errors cs.Icfg_core.Cache.c_hits
    cs.Icfg_core.Cache.c_misses
    (100. *. Icfg_core.Cache.hit_rate cs)

let pp_counters counters =
  let get n = Option.value ~default:0 (List.assoc_opt n counters) in
  Format.printf "request counters: %d cache hits, %d misses@." (get "cache.hit")
    (get "cache.miss")

let submit_cmd socket approach file jobs classify output =
  let bin = Icfg_obj.Binfile.load file in
  Icfg_service.Client.with_connection socket @@ fun c ->
  let resp =
    if classify then
      Icfg_service.Client.classify c ~approach ~jobs:(resolve_jobs jobs) bin
    else Icfg_service.Client.rewrite c ~approach ~jobs:(resolve_jobs jobs) bin
  in
  match resp with
  | Ok (Icfg_service.Protocol.Rewritten { bin = out_bytes; counters }) -> (
      Format.printf "rewritten: %d bytes on the wire@."
        (String.length out_bytes);
      pp_counters counters;
      match output with
      | Some path ->
          let oc = open_out_bin path in
          output_string oc out_bytes;
          close_out oc;
          Format.printf "wrote %s@." path
      | None -> ())
  | Ok (Icfg_service.Protocol.Refused { reason; counters }) ->
      Format.printf "refused: %s@." reason;
      pp_counters counters;
      exit 2
  | Ok (Icfg_service.Protocol.Classified { cls; ns; counters }) ->
      Format.printf "classified: %s (%.2f ms)@."
        (Icfg_harness.Matrix.cls_to_string cls)
        (ns /. 1e6);
      pp_counters counters
  | Ok Icfg_service.Protocol.Overloaded ->
      Format.printf "overloaded: the daemon's request queue is full@.";
      exit 3
  | Ok (Icfg_service.Protocol.Error m) ->
      Format.printf "error: %s@." m;
      exit 4
  | Ok Icfg_service.Protocol.Pong ->
      Format.printf "unexpected pong@.";
      exit 4
  | Error m ->
      Format.printf "transport error: %s@." m;
      exit 4

let cmd_inspect =
  Cmd.v (Cmd.info "inspect" ~doc:"Compile a workload and print its layout.")
    Term.(const inspect $ workload_t $ arch_t $ pie_t)

let cmd_analyze =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Parse a workload: CFGs, jump tables, coverage.")
    Term.(const analyze $ workload_t $ arch_t $ pie_t $ jobs_t)

let output_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~doc:"Write the rewritten binary to this file.")

let cmd_rewrite =
  Cmd.v (Cmd.info "rewrite" ~doc:"Rewrite a workload and print the statistics.")
    Term.(
      const rewrite_cmd $ workload_t $ arch_t $ pie_t $ mode_t $ jobs_t
      $ output_t $ trace_t $ cache_t)

let cmd_verify =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the paper's strong correctness test: per-block counting,           original bytes destroyed, output and counts compared.")
    Term.(
      const verify_cmd $ workload_t $ arch_t $ pie_t $ mode_t $ jobs_t
      $ trace_t)

let cmd_run =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a workload before and after rewriting and compare.")
    Term.(
      const run_cmd $ workload_t $ arch_t $ pie_t $ mode_t $ jobs_t $ trace_t
      $ cache_t)

let report_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ]
        ~doc:
          "Also write the machine-readable report (schema icfg-report/1) to \
           $(docv)."
        ~docv:"FILE")

let cmd_report =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Rewrite a workload and print the coverage-attribution report: \
          per-function CFL/trampoline causes, the cause histogram, and the \
          mode's incremental delta vs the dir baseline.")
    Term.(
      const report_cmd $ workload_t $ arch_t $ pie_t $ mode_t $ jobs_t
      $ report_json_t $ trace_t $ cache_t)

let func_opt_t =
  Arg.(value & opt (some string) None & info [ "f"; "function" ] ~doc:"Function name.")

let cmd_source =
  Cmd.v
    (Cmd.info "source" ~doc:"Print a workload's generated IR as C-like source.")
    Term.(const source $ workload_t)

let cmd_disasm =
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble a workload (control-flow traversal listing).")
    Term.(const disasm $ workload_t $ arch_t $ pie_t $ func_opt_t)

let cmd_dot =
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a function's CFG as Graphviz dot.")
    Term.(
      const dot $ workload_t $ arch_t $ pie_t
      $ Arg.(required & opt (some string) None & info [ "f"; "function" ] ~doc:"Function name."))

let cmd_bench =
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate the paper's tables and figures.")
    Term.(
      const bench_cmd
      $ Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"))

let socket_t =
  Arg.(
    value
    & opt string "/tmp/icfg.sock"
    & info [ "s"; "socket" ] ~doc:"Unix socket path of the daemon." ~docv:"PATH")

let cmd_serve =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the rewrite daemon: accept framed rewrite/classify requests on \
          a Unix socket, schedule them across a bounded queue of executor \
          domains, and reuse one content-addressed cache across every \
          request. A full queue answers with a typed Overloaded frame; a \
          crashing driver answers with a typed Error frame; the daemon keeps \
          serving through both.")
    Term.(
      const serve_cmd $ socket_t
      $ Arg.(
          value & opt int 64
          & info [ "queue-bound" ]
              ~doc:"Max queued requests before Overloaded refusals." ~docv:"K")
      $ Arg.(
          value & opt int 2
          & info [ "workers" ]
              ~doc:
                "Executor domains (each request body runs on its own domain: \
                 per-request trace isolation)."
              ~docv:"N")
      $ jobs_t $ cache_t)

let cmd_submit =
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one binary (an icfg Binfile, e.g. from rewrite --output) to \
          a running icfg serve daemon.")
    Term.(
      const submit_cmd $ socket_t
      $ Arg.(
          value & opt string "ours/jt"
          & info [ "approach" ]
              ~doc:
                "Roster approach: srbi | ir-lowering | insn-patching | \
                 dyn-translation | ours/dir | ours/jt | ours/func-ptr."
              ~docv:"NAME")
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"FILE" ~doc:"Binfile to submit.")
      $ jobs_t
      $ Arg.(
          value & flag
          & info [ "classify" ]
              ~doc:
                "Run the full corpus-matrix cell in the daemon (original run \
                 + rewrite + VM verification) instead of returning the \
                 rewritten bytes.")
      $ output_t)

let () =
  let info =
    Cmd.info "icfg" ~version:"1.0.0"
      ~doc:"Incremental CFG patching for binary rewriting (ASPLOS 2021)"
  in
  exit (Cmd.eval (Cmd.group info [ cmd_inspect; cmd_analyze; cmd_rewrite; cmd_run; cmd_verify; cmd_report; cmd_source; cmd_disasm; cmd_dot; cmd_bench; cmd_serve; cmd_submit ]))
