(* The icfg command-line tool: inspect, analyze, rewrite and run the
   workspace's synthetic binaries, and regenerate the paper's experiments.

     icfg inspect  --workload docker --arch x86-64
     icfg analyze  --workload spec:602.gcc_s --arch ppc64le
     icfg rewrite  --workload libxul --mode jt
     icfg run      --workload quickstart --mode func-ptr
     icfg bench table3 diogenes *)

open Cmdliner
open Icfg_isa
module Binary = Icfg_obj.Binary
module Parse = Icfg_analysis.Parse
module Rewriter = Icfg_core.Rewriter
module Mode = Icfg_core.Mode
module Vm = Icfg_runtime.Vm

(* ------------------------------------------------------------------ *)
(* Workload selection                                                  *)
(* ------------------------------------------------------------------ *)

let quickstart arch pie =
  let spec =
    { Icfg_workloads.Gen.default_spec with Icfg_workloads.Gen.name = "quickstart"; iters = 50 }
  in
  Icfg_codegen.Compile.compile ~pie arch (Icfg_workloads.Gen.build spec)

let load_workload name arch pie =
  match name with
  | _ when String.length name > 5 && String.sub name 0 5 = "file:" ->
      let path = String.sub name 5 (String.length name - 5) in
      (Icfg_obj.Binfile.load path, Icfg_codegen.Debug.empty)
  | "quickstart" -> quickstart arch pie
  | "libxul" -> Icfg_workloads.Apps.libxul arch
  | "docker" -> Icfg_workloads.Apps.docker arch
  | "libcuda" -> Icfg_workloads.Apps.libcuda arch
  | _ when String.length name > 5 && String.sub name 0 5 = "spec:" ->
      let bname = String.sub name 5 (String.length name - 5) in
      let bench =
        List.find_opt
          (fun b -> b.Icfg_workloads.Spec_suite.bench_name = bname)
          (Icfg_workloads.Spec_suite.benchmarks arch)
      in
      (match bench with
      | Some b -> Icfg_workloads.Spec_suite.compile ~pie arch b
      | None ->
          Printf.eprintf "unknown SPEC-like benchmark %s; names:\n%s\n" bname
            (String.concat "\n"
               (List.map
                  (fun b -> "  " ^ b.Icfg_workloads.Spec_suite.bench_name)
                  (Icfg_workloads.Spec_suite.benchmarks arch)));
          exit 1)
  | _ ->
      Printf.eprintf
        "unknown workload %s (quickstart | libxul | docker | libcuda | \
         spec:<name> | file:<path>)\n"
        name;
      exit 1

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let arch_conv =
  let parse s =
    match Arch.of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown architecture %s" s))
  in
  Arg.conv (parse, Arch.pp)

let mode_conv =
  let parse s =
    match Mode.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown mode %s" s))
  in
  Arg.conv (parse, Mode.pp)

let workload_t =
  Arg.(value & opt string "quickstart" & info [ "w"; "workload" ] ~doc:"Workload name.")

let arch_t =
  Arg.(value & opt arch_conv Arch.X86_64 & info [ "a"; "arch" ] ~doc:"Architecture.")

let pie_t = Arg.(value & flag & info [ "pie" ] ~doc:"Compile as PIE.")

let mode_t =
  Arg.(value & opt mode_conv Mode.Jt & info [ "m"; "mode" ] ~doc:"Rewriting mode.")

let jobs_t =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Fan per-function analysis and rewriting out across $(docv) \
           domains (0 = one per core). Output is bit-identical to a serial \
           run for any value."
        ~docv:"N")

let resolve_jobs jobs =
  if jobs <= 0 then Icfg_core.Pool.recommended_jobs () else jobs

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:
          "Record a pipeline trace (timed span tree per stage + named \
           counters, including VM runtime counters where a VM runs) and \
           write it to $(docv) as JSON (schema icfg-trace/1)."
        ~docv:"FILE")

let cache_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ]
        ~doc:
          "Reuse per-function rewrite artifacts from the content-addressed \
           cache rooted at $(docv) (created if missing). Warm re-rewrites \
           skip analysis, relocation, planning and chunk encoding for \
           unchanged functions; output bytes are identical with or without \
           the cache, and corrupt or stale entries silently degrade to \
           misses."
        ~docv:"DIR")

let cache_of dir = Option.map (fun d -> Icfg_core.Cache.create ~dir:d ()) dir

let pp_cache_line = function
  | None -> ()
  | Some c ->
      let s = Icfg_core.Cache.stats c in
      Format.printf
        "cache: %d hits, %d misses, %d bytes reused, %d corrupt evictions@."
        s.Icfg_core.Cache.c_hits s.Icfg_core.Cache.c_misses
        s.Icfg_core.Cache.c_bytes_reused s.Icfg_core.Cache.c_evict_corrupt

(* Run [f] under an ambient trace when [--trace FILE] was given, then write
   the JSON report — also when [f] raises or exits, so a failed pipeline
   still leaves its trace behind for diagnosis. Tracing is
   observation-only: [f]'s outputs are byte-identical either way. *)
let with_trace path f =
  match path with
  | None -> f ()
  | Some file ->
      let r = Icfg_core.Trace.with_file file f in
      Format.printf "wrote trace %s@." file;
      r

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let inspect workload arch pie =
  let bin, dbg = load_workload workload arch pie in
  Format.printf "%a" Binary.pp bin;
  Format.printf "%a" Icfg_codegen.Debug.pp dbg

let analyze workload arch pie jobs =
  let bin, _ = load_workload workload arch pie in
  let p = Icfg_harness.Runner.parse ~jobs:(resolve_jobs jobs) bin in
  Format.printf "%a" Parse.pp_summary p;
  List.iter
    (fun fa ->
      Format.printf "  %-24s blocks %3d, tables %d, tail jumps %d%s@."
        fa.Parse.fa_sym.Icfg_obj.Symbol.name
        (List.length fa.Parse.fa_cfg.Icfg_analysis.Cfg.blocks)
        (List.length fa.Parse.fa_tables)
        (List.length fa.Parse.fa_tail_jumps)
        (if fa.Parse.fa_instrumentable then "" else "  [UNINSTRUMENTABLE]"))
    p.Parse.funcs

let rewrite_cmd workload arch pie mode jobs output trace cache_dir =
  let bin, _ = load_workload workload arch pie in
  let cache = cache_of cache_dir in
  let rw =
    with_trace trace @@ fun () ->
    Icfg_harness.Runner.rewrite
      ~options:{ Rewriter.default_options with Rewriter.mode }
      ~jobs:(resolve_jobs jobs) ?cache bin
  in
  Format.printf "%a@." Rewriter.pp_stats rw.Rewriter.rw_stats;
  pp_cache_line cache;
  Format.printf "%a" Binary.pp rw.Rewriter.rw_binary;
  match output with
  | Some path ->
      Icfg_obj.Binfile.save path rw.Rewriter.rw_binary;
      Format.printf "wrote %s@." path
  | None -> ()

let verify_cmd workload arch pie mode jobs trace =
  let bin, _ = load_workload workload arch pie in
  let options =
    {
      Icfg_core.Rewriter.default_options with
      Icfg_core.Rewriter.mode;
      jobs = resolve_jobs jobs;
    }
  in
  let report = Icfg_core.Verify.strong_test ~options bin in
  Format.printf "%a" Icfg_core.Verify.pp_report report;
  (* The strong test always records its own trace; --trace just saves it. *)
  (match trace with
  | Some file ->
      let oc = open_out file in
      output_string oc (Icfg_core.Trace.to_json report.Icfg_core.Verify.trace);
      close_out oc;
      Format.printf "wrote trace %s@." file
  | None -> ());
  if not report.Icfg_core.Verify.ok then exit 1

let run_cmd workload arch pie mode jobs trace cache_dir =
  let bin, _ = load_workload workload arch pie in
  let cache = cache_of cache_dir in
  let show label (r : Vm.result) =
    Format.printf "%-10s %-8s cycles %10d, steps %9d, traps %5d, output [%s]@."
      label
      (match r.Vm.outcome with Vm.Halted -> "ok" | Vm.Crashed m -> "CRASH: " ^ m)
      r.Vm.cycles r.Vm.steps r.Vm.trap_hits
      (String.concat "; " (List.map string_of_int r.Vm.output))
  in
  let orig, r =
    with_trace trace @@ fun () ->
    let cfg = Icfg_harness.Runner.measure_config ~pie in
    let orig =
      Icfg_core.Trace.span "run:original" @@ fun () ->
      Vm.run ~config:cfg ~routines:(Icfg_runtime.Runtime_lib.standard ()) bin
    in
    Icfg_core.Trace.add_vm ~prefix:"vm/original" orig;
    let rw =
      Icfg_harness.Runner.rewrite
        ~options:{ Rewriter.default_options with Rewriter.mode }
        ~jobs:(resolve_jobs jobs) ?cache bin
    in
    let counters = Hashtbl.create 16 in
    let cfg = Rewriter.vm_config_for rw cfg in
    let r =
      Icfg_core.Trace.span "run:rewritten" @@ fun () ->
      Vm.run ~config:cfg ~routines:(Rewriter.routines_for rw ~counters)
        rw.Rewriter.rw_binary
    in
    Icfg_core.Trace.add_vm ~prefix:"vm/rewritten" r;
    (orig, r)
  in
  show "original" orig;
  show (Mode.name mode) r;
  pp_cache_line cache;
  if r.Vm.outcome = Vm.Halted && r.Vm.output = orig.Vm.output then
    Format.printf "outputs match; overhead %+.2f%%@."
      (100. *. float_of_int (r.Vm.cycles - orig.Vm.cycles)
      /. float_of_int (max 1 orig.Vm.cycles))

let report_cmd workload arch pie mode jobs json trace cache_dir =
  let module A = Icfg_core.Attribution in
  let bin, _ = load_workload workload arch pie in
  let cache = cache_of cache_dir in
  with_trace trace @@ fun () ->
  (* Both rewrites (the mode and its Dir baseline) share the cache: parse
     artifacts hit across modes, mode-dependent stages key apart. *)
  let rewrite mode =
    Icfg_harness.Runner.rewrite
      ~options:{ Rewriter.default_options with Rewriter.mode }
      ~jobs:(resolve_jobs jobs) ?cache bin
  in
  let rw = rewrite mode in
  let attr = rw.Rewriter.rw_attribution in
  (* The Dir baseline gives the mode's incremental delta. *)
  let dir =
    if mode = Mode.Dir then None
    else Some (rewrite Mode.Dir).Rewriter.rw_attribution
  in
  Format.printf "%a@." Rewriter.pp_stats rw.Rewriter.rw_stats;
  pp_cache_line cache;
  Format.printf "%a" A.pp attr;
  (match dir with
  | Some d ->
      let dl = A.delta ~dir:d attr in
      Format.printf
        "delta vs dir: cfl blocks %+d, trampolines %+d, traps %+d@." dl.A.d_cfl
        dl.A.d_trampolines dl.A.d_traps
  | None -> ());
  match json with
  | Some path ->
      let oc = open_out path in
      output_string oc (A.to_json ?dir attr);
      close_out oc;
      Format.printf "wrote report %s@." path
  | None -> ()

let source workload =
  let prog =
    match workload with
    | "quickstart" ->
        Icfg_workloads.Gen.build
          { Icfg_workloads.Gen.default_spec with Icfg_workloads.Gen.name = "quickstart"; iters = 50 }
    | "docker" ->
        Icfg_workloads.Gen.build_go (Icfg_workloads.Gen.go_spec ~seed:1903 ~name:"docker" ~iters:150)
    | _ when String.length workload > 5 && String.sub workload 0 5 = "spec:" ->
        let bname = String.sub workload 5 (String.length workload - 5) in
        (match
           List.find_opt
             (fun b -> b.Icfg_workloads.Spec_suite.bench_name = bname)
             (Icfg_workloads.Spec_suite.benchmarks Arch.X86_64)
         with
        | Some b -> b.Icfg_workloads.Spec_suite.prog
        | None ->
            Printf.eprintf "unknown benchmark %s\n" bname;
            exit 1)
    | _ ->
        Printf.eprintf "source: supported workloads are quickstart, docker, spec:<name>\n";
        exit 1
  in
  Format.printf "%a" Icfg_codegen.Ir.pp_program prog

let disasm workload arch pie func =
  let bin, _ = load_workload workload arch pie in
  match func with
  | None -> print_string (Icfg_analysis.Listing.binary_listing bin)
  | Some name -> (
      let p = Parse.parse bin in
      match Parse.func p name with
      | Some fa -> print_string (Icfg_analysis.Listing.function_listing bin fa.Parse.fa_cfg)
      | None ->
          Printf.eprintf "no function %s\n" name;
          exit 1)

let dot workload arch pie func =
  let bin, _ = load_workload workload arch pie in
  let p = Parse.parse bin in
  match Parse.func p func with
  | Some fa -> print_string (Icfg_analysis.Listing.cfg_to_dot fa.Parse.fa_cfg)
  | None ->
      Printf.eprintf "no function %s\n" func;
      exit 1

let bench_cmd names =
  let all =
    [
      ("table1", Icfg_harness.Experiments.table1);
      ("figure1", Icfg_harness.Experiments.figure1);
      ("figure2", Icfg_harness.Experiments.figure2);
      ("table2", Icfg_harness.Experiments.table2);
      ("table3", fun () -> Icfg_harness.Experiments.table3 ());
      ("table3-detail", fun () -> Icfg_harness.Experiments.table3_detail ());
      ("firefox", Icfg_harness.Experiments.firefox);
      ("docker", Icfg_harness.Experiments.docker);
      ("bolt", Icfg_harness.Experiments.bolt);
      ("diogenes", Icfg_harness.Experiments.diogenes);
      ("ablation", Icfg_harness.Experiments.ablation);
      ("attribution", Icfg_harness.Experiments.attribution);
      (* A modest slice of the corpus robustness matrix; the full
         (default 300-binary) sweep lives in `bench/main.exe corpus`. *)
      ( "corpus",
        fun () ->
          Icfg_harness.Matrix.render
            (Icfg_harness.Matrix.run ~seed:7 ~count:60 ()) );
    ]
  in
  let names = if names = [] then List.map fst all else names in
  List.iter
    (fun n ->
      match List.assoc_opt n all with
      | Some f -> print_string (f ())
      | None -> Printf.eprintf "unknown experiment %s\n" n)
    names

(* ------------------------------------------------------------------ *)
(* Rewrite-as-a-service: the serve daemon and its submit client        *)
(* ------------------------------------------------------------------ *)

(* The serve loop deliberately contains no [exit 1] path and loads no
   workloads: every failure past startup is a typed response frame (or a
   dropped connection), never a dead daemon. The [exit 1]s above all live
   in one-shot workload loading, which only the other subcommands call. *)
let serve_stats_line tag srv =
  let st = Icfg_service.Server.stats srv in
  let cs = Icfg_core.Cache.stats (Icfg_service.Server.cache srv) in
  Format.printf
    "icfg serve: %s %d requests (%d overloaded, %d errors; %d queued, %d in \
     flight); cross-request cache: %d hits, %d misses (%.1f%% hit rate)@."
    tag st.Icfg_service.Server.requests st.Icfg_service.Server.overloaded
    st.Icfg_service.Server.errors st.Icfg_service.Server.pending
    st.Icfg_service.Server.in_flight cs.Icfg_core.Cache.c_hits
    cs.Icfg_core.Cache.c_misses
    (100. *. Icfg_core.Cache.hit_rate cs)

let serve_cmd socket bound workers jobs cache_dir stats_interval =
  let jobs = resolve_jobs jobs in
  let cache = cache_of cache_dir in
  let srv =
    Icfg_service.Server.start ~path:socket ~bound ~workers ~jobs ?cache ()
  in
  Format.printf
    "icfg serve: listening on %s (queue bound %d, %d executor domains, \
     default jobs %d)@."
    socket bound workers jobs;
  Format.printf
    "press Ctrl-C to stop; SIGUSR1 or `icfg stats --socket %s` for live \
     telemetry@."
    socket;
  let stop = Atomic.make false in
  let dump = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  (* The handler only flips an atomic; the sleep loop below does the
     printing — signal-handler context stays trivial. *)
  let request_dump _ = Atomic.set dump true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
   with _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
   with _ -> ());
  (try Sys.set_signal Sys.sigusr1 (Sys.Signal_handle request_dump)
   with _ -> ());
  let last = ref (Unix.gettimeofday ()) in
  while not (Atomic.get stop) do
    Unix.sleepf 0.2;
    if Atomic.exchange dump false then serve_stats_line "live:" srv;
    match stats_interval with
    | Some iv when iv > 0. && Unix.gettimeofday () -. !last >= iv ->
        last := Unix.gettimeofday ();
        serve_stats_line "live:" srv
    | _ -> ()
  done;
  Icfg_service.Server.stop srv;
  serve_stats_line "stopped after" srv

let pp_counters counters =
  let get n = Option.value ~default:0 (List.assoc_opt n counters) in
  Format.printf "request counters: %d cache hits, %d misses@." (get "cache.hit")
    (get "cache.miss")

let load_binfile_bytes path =
  Icfg_obj.Binfile.to_string (Icfg_obj.Binfile.load path)

(* Exit codes: 2 refused/rejected, 3 overloaded, 4 transport/usage/error,
   5 unrecoverable NeedFull (a [--ref] with no FILE to fall back to). *)
let submit_cmd socket approach file jobs classify output register ref_digest
    patch_against =
  let module P = Icfg_service.Protocol in
  let module C = Icfg_service.Client in
  let need_file ctx =
    match file with
    | Some f -> f
    | None ->
        Format.printf "submit: FILE is required%s@." ctx;
        exit 4
  in
  C.with_connection socket @@ fun c ->
  if register then begin
    let s = load_binfile_bytes (need_file " with --register") in
    match C.register_bytes c s with
    | Ok (P.Registered { digest }) ->
        Format.printf "registered: %s (%d bytes)@." digest (String.length s)
    | Ok (P.Rejected { reason }) ->
        Format.printf "rejected: %s@." reason;
        exit 2
    | Ok _ ->
        Format.printf "unexpected response@.";
        exit 4
    | Error m ->
        Format.printf "transport error: %s@." m;
        exit 4
  end
  else begin
    let jobs = resolve_jobs jobs in
    let submit payload =
      if classify then C.classify_payload c ~approach ~jobs payload
      else C.rewrite_payload c ~approach ~jobs payload
    in
    let resp =
      match (ref_digest, patch_against) with
      | Some _, Some _ ->
          Format.printf "submit: --ref and --patch-against are exclusive@.";
          exit 4
      | Some d, None -> (
          match submit (P.Ref d) with
          | Ok (P.NeedFull _) when file <> None ->
              (* The daemon lost (or never saw) the base; FILE doubles as
                 the full-upload fallback, which also re-registers it. *)
              let f = Option.get file in
              Format.printf
                "need-full: daemon does not hold %s; re-uploading %s@." d f;
              submit (P.Full (load_binfile_bytes f))
          | Ok (P.NeedFull { digest }) ->
              Format.printf
                "need-full: the daemon does not hold %s (evicted or never \
                 registered); pass FILE to fall back to a full upload@."
                digest;
              exit 5
          | r -> r)
      | None, Some base_path -> (
          let target = load_binfile_bytes (need_file " with --patch-against") in
          let base = load_binfile_bytes base_path in
          let bd = Icfg_service.Store.digest base in
          let ranges = P.diff_ranges ~base target in
          let patch =
            P.Patch { base = bd; total_len = String.length target; ranges }
          in
          let delta =
            List.fold_left (fun a (_, b) -> a + String.length b) 0 ranges
          in
          Format.printf
            "patch: %d ranges, %d delta bytes against base %s (%d bytes \
             full)@."
            (List.length ranges) delta bd (String.length target);
          match submit patch with
          | Ok (P.NeedFull _) -> (
              (* Base unknown to the daemon: register it and retry the
                 same patch once; if that still misses (capacity churn),
                 give up the incremental path for this submission. *)
              Format.printf "need-full: registering base %s and retrying@." bd;
              match C.register_bytes c base with
              | Ok (P.Registered _) -> (
                  match submit patch with
                  | Ok (P.NeedFull _) -> submit (P.Full target)
                  | r -> r)
              | _ -> submit (P.Full target))
          | r -> r)
      | None, None -> submit (P.Full (load_binfile_bytes (need_file "")))
    in
    match resp with
    | Ok (P.Rewritten { bin = out_bytes; digest; counters }) -> (
        Format.printf "rewritten: %d bytes on the wire, digest %s@."
          (String.length out_bytes) digest;
        pp_counters counters;
        match output with
        | Some path ->
            let oc = open_out_bin path in
            output_string oc out_bytes;
            close_out oc;
            Format.printf "wrote %s@." path
        | None -> ())
    | Ok (P.Refused { reason; digest; counters }) ->
        Format.printf "refused: %s (input digest %s)@." reason digest;
        pp_counters counters;
        exit 2
    | Ok (P.Rejected { reason }) ->
        Format.printf "rejected: %s@." reason;
        exit 2
    | Ok (P.Classified { cls; ns; digest; counters }) ->
        Format.printf "classified: %s (%.2f ms, input digest %s)@."
          (Icfg_harness.Matrix.cls_to_string cls)
          (ns /. 1e6) digest;
        pp_counters counters
    | Ok P.Overloaded ->
        Format.printf "overloaded: the daemon's request queue is full@.";
        exit 3
    | Ok (P.Error { message; counters }) ->
        Format.printf "error: %s@." message;
        pp_counters counters;
        exit 4
    | Ok (P.NeedFull { digest }) ->
        Format.printf "need-full: the daemon does not hold %s@." digest;
        exit 5
    | Ok (P.Pong | P.StatsSnapshot _ | P.Registered _) ->
        Format.printf "unexpected response@.";
        exit 4
    | Error m ->
        Format.printf "transport error: %s@." m;
        exit 4
  end

(* ------------------------------------------------------------------ *)
(* Telemetry clients: icfg stats and icfg top                          *)
(* ------------------------------------------------------------------ *)

let human_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* One glyph per occupied log₂ bucket, height scaled to the fullest
   bucket: the whole latency distribution in a dozen columns. *)
let spark (h : Icfg_core.Metrics.histo) =
  match h.Icfg_core.Metrics.h_buckets with
  | [] -> ""
  | bs ->
      let lo = fst (List.hd bs) in
      let hi = fst (List.nth bs (List.length bs - 1)) in
      let arr = Array.make (hi - lo + 1) 0 in
      List.iter (fun (i, n) -> arr.(i - lo) <- n) bs;
      let mx = Array.fold_left max 1 arr in
      let glyphs = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
      String.concat ""
        (Array.to_list
           (Array.map
              (fun n -> if n = 0 then " " else glyphs.(min 7 (n * 8 / mx)))
              arr))

let render_snapshot (snap : Icfg_core.Metrics.snapshot) =
  let module M = Icfg_core.Metrics in
  if snap.M.s_counters <> [] then begin
    Format.printf "counters:@.";
    List.iter
      (fun (k, v) -> Format.printf "  %-44s %d@." k v)
      snap.M.s_counters
  end;
  if snap.M.s_gauges <> [] then begin
    Format.printf "gauges:@.";
    List.iter
      (fun (k, v) -> Format.printf "  %-44s %d@." k v)
      snap.M.s_gauges
  end;
  if snap.M.s_histos <> [] then begin
    Format.printf "histograms:%38s count       mean@." "";
    List.iter
      (fun (k, h) ->
        Format.printf "  %-44s %-11d %-10s %s@." k h.M.h_count
          (human_ns (M.histo_mean h))
          (spark h))
      snap.M.s_histos
  end

let scrape socket ~flight =
  Icfg_service.Client.with_connection socket @@ fun c ->
  Icfg_service.Client.stats c ~flight ()

let stats_cmd socket json prom fl =
  match scrape socket ~flight:fl with
  | Ok (Icfg_service.Protocol.StatsSnapshot { snap; flight }) ->
      if fl then
        print_string (match flight with Some f -> f | None -> "{}\n")
      else if json then print_string (Icfg_core.Metrics.to_json snap)
      else if prom then print_string (Icfg_core.Metrics.to_prom snap)
      else render_snapshot snap
  | Ok _ ->
      Format.printf "unexpected response@.";
      exit 4
  | Error m ->
      Format.printf "transport error: %s@." m;
      exit 4
  | exception Unix.Unix_error (e, _, _) ->
      Format.printf "cannot reach daemon at %s: %s@." socket
        (Unix.error_message e);
      exit 4

let top_cmd socket interval iterations =
  let module M = Icfg_core.Metrics in
  let interval = if interval <= 0. then 2.0 else interval in
  let get n snap = Option.value ~default:0 (M.find_counter snap n) in
  let rec go i prev =
    let snap =
      match scrape socket ~flight:false with
      | Ok (Icfg_service.Protocol.StatsSnapshot { snap; _ }) -> snap
      | Ok _ | Error _ ->
          Format.printf "icfg top: lost the daemon at %s@." socket;
          exit 4
      | exception Unix.Unix_error (e, _, _) ->
          Format.printf "cannot reach daemon at %s: %s@." socket
            (Unix.error_message e);
          exit 4
    in
    (* Full refresh only when looping: a single-shot `top --iterations 1`
       (CI smoke) should not spray clear-screen codes into a log. *)
    if iterations <> 1 then Format.printf "\027[2J\027[H";
    let requests = get "serve.requests" snap in
    let d_req =
      match prev with None -> 0 | Some p -> requests - get "serve.requests" p
    in
    Format.printf
      "icfg top — %s   (refresh %.1fs)@.requests %d (+%d)   errors %d   \
       overloaded %d   queue %d   in-flight %d@."
      socket interval requests d_req (get "serve.errors" snap)
      (get "serve.overloaded" snap)
      (Option.value ~default:0 (M.find_gauge snap "sched.queue_depth"))
      (Option.value ~default:0 (M.find_gauge snap "sched.in_flight"));
    let hits = get "cache.hits" snap and misses = get "cache.misses" snap in
    Format.printf "cache    %d hits / %d misses (%.1f%% hit rate)@." hits
      misses
      (if hits + misses = 0 then 0.
       else 100. *. float_of_int hits /. float_of_int (hits + misses));
    let latencies =
      List.filter
        (fun (k, _) -> String.length k >= 8 && String.sub k 0 8 = "request.")
        snap.M.s_histos
    in
    if latencies <> [] then begin
      Format.printf "@.%-46s %-9s %-10s@." "latency (approach:outcome)" "count"
        "mean";
      List.iter
        (fun (k, h) ->
          let label =
            String.sub k 16 (String.length k - 16)
            (* drop "request.latency:" *)
          in
          Format.printf "  %-44s %-9d %-10s %s@." label h.M.h_count
            (human_ns (M.histo_mean h))
            (spark h))
        latencies
    end;
    if iterations = 0 || i < iterations then begin
      Unix.sleepf interval;
      go (i + 1) (Some snap)
    end
  in
  go 1 None

let cmd_inspect =
  Cmd.v (Cmd.info "inspect" ~doc:"Compile a workload and print its layout.")
    Term.(const inspect $ workload_t $ arch_t $ pie_t)

let cmd_analyze =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Parse a workload: CFGs, jump tables, coverage.")
    Term.(const analyze $ workload_t $ arch_t $ pie_t $ jobs_t)

let output_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~doc:"Write the rewritten binary to this file.")

let cmd_rewrite =
  Cmd.v (Cmd.info "rewrite" ~doc:"Rewrite a workload and print the statistics.")
    Term.(
      const rewrite_cmd $ workload_t $ arch_t $ pie_t $ mode_t $ jobs_t
      $ output_t $ trace_t $ cache_t)

let cmd_verify =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the paper's strong correctness test: per-block counting,           original bytes destroyed, output and counts compared.")
    Term.(
      const verify_cmd $ workload_t $ arch_t $ pie_t $ mode_t $ jobs_t
      $ trace_t)

let cmd_run =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a workload before and after rewriting and compare.")
    Term.(
      const run_cmd $ workload_t $ arch_t $ pie_t $ mode_t $ jobs_t $ trace_t
      $ cache_t)

let report_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ]
        ~doc:
          "Also write the machine-readable report (schema icfg-report/1) to \
           $(docv)."
        ~docv:"FILE")

let cmd_report =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Rewrite a workload and print the coverage-attribution report: \
          per-function CFL/trampoline causes, the cause histogram, and the \
          mode's incremental delta vs the dir baseline.")
    Term.(
      const report_cmd $ workload_t $ arch_t $ pie_t $ mode_t $ jobs_t
      $ report_json_t $ trace_t $ cache_t)

let func_opt_t =
  Arg.(value & opt (some string) None & info [ "f"; "function" ] ~doc:"Function name.")

let cmd_source =
  Cmd.v
    (Cmd.info "source" ~doc:"Print a workload's generated IR as C-like source.")
    Term.(const source $ workload_t)

let cmd_disasm =
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble a workload (control-flow traversal listing).")
    Term.(const disasm $ workload_t $ arch_t $ pie_t $ func_opt_t)

let cmd_dot =
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a function's CFG as Graphviz dot.")
    Term.(
      const dot $ workload_t $ arch_t $ pie_t
      $ Arg.(required & opt (some string) None & info [ "f"; "function" ] ~doc:"Function name."))

let cmd_bench =
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate the paper's tables and figures.")
    Term.(
      const bench_cmd
      $ Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"))

let socket_t =
  Arg.(
    value
    & opt string "/tmp/icfg.sock"
    & info [ "s"; "socket" ] ~doc:"Unix socket path of the daemon." ~docv:"PATH")

let cmd_serve =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the rewrite daemon: accept framed rewrite/classify requests on \
          a Unix socket, schedule them across a bounded queue of executor \
          domains, and reuse one content-addressed cache across every \
          request. A full queue answers with a typed Overloaded frame; a \
          crashing driver answers with a typed Error frame; the daemon keeps \
          serving through both.")
    Term.(
      const serve_cmd $ socket_t
      $ Arg.(
          value & opt int 64
          & info [ "queue-bound" ]
              ~doc:"Max queued requests before Overloaded refusals." ~docv:"K")
      $ Arg.(
          value & opt int 2
          & info [ "workers" ]
              ~doc:
                "Executor domains (each request body runs on its own domain: \
                 per-request trace isolation)."
              ~docv:"N")
      $ jobs_t $ cache_t
      $ Arg.(
          value
          & opt (some float) None
          & info [ "stats-interval" ]
              ~doc:
                "Print a live stats line every $(docv) seconds (SIGUSR1 \
                 prints one on demand)."
              ~docv:"SECS"))

let cmd_stats =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Scrape a running icfg serve daemon's telemetry: counters, gauges \
          and log2 latency histograms (human, --json for icfg-metrics/1, \
          --prom for Prometheus text, --flight for the flight-recorder \
          dump). Answered inline by the daemon — works while it is \
          saturated, and never perturbs the request stream it reports on.")
    Term.(
      const stats_cmd $ socket_t
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Emit the icfg-metrics/1 JSON document.")
      $ Arg.(
          value & flag
          & info [ "prom" ] ~doc:"Emit the Prometheus text exposition.")
      $ Arg.(
          value & flag
          & info [ "flight" ]
              ~doc:
                "Emit the icfg-flight/1 flight-recorder dump: recent request \
                 summaries plus full traces of the slowest and every errored \
                 request."))

let cmd_top =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Refreshing terminal view of a running daemon: request/error \
          totals, queue and in-flight gauges, cache hit rate, per-approach \
          latency histograms with sparklines.")
    Term.(
      const top_cmd $ socket_t
      $ Arg.(
          value & opt float 2.0
          & info [ "interval" ] ~doc:"Refresh period in seconds." ~docv:"SECS")
      $ Arg.(
          value & opt int 0
          & info [ "iterations" ]
              ~doc:"Stop after $(docv) refreshes (0: until interrupted)."
              ~docv:"N"))

let cmd_submit =
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one binary (an icfg Binfile, e.g. from rewrite --output) to \
          a running icfg serve daemon. Besides full uploads, the incremental \
          protocol can upload once ($(b,--register)), then name the binary \
          by digest ($(b,--ref)) or ship only a sparse byte-delta against a \
          registered base ($(b,--patch-against)). Exit codes: 2 \
          refused/rejected, 3 overloaded, 4 error, 5 unrecoverable \
          need-full.")
    Term.(
      const submit_cmd $ socket_t
      $ Arg.(
          value & opt string "ours/jt"
          & info [ "approach" ]
              ~doc:
                "Roster approach: srbi | ir-lowering | insn-patching | \
                 dyn-translation | ours/dir | ours/jt | ours/func-ptr."
              ~docv:"NAME")
      $ Arg.(
          value
          & pos 0 (some string) None
          & info [] ~docv:"FILE"
              ~doc:
                "Binfile to submit. Optional with --ref (where it serves \
                 only as the full-upload fallback if the daemon no longer \
                 holds the digest); required otherwise.")
      $ jobs_t
      $ Arg.(
          value & flag
          & info [ "classify" ]
              ~doc:
                "Run the full corpus-matrix cell in the daemon (original run \
                 + rewrite + VM verification) instead of returning the \
                 rewritten bytes.")
      $ output_t
      $ Arg.(
          value & flag
          & info [ "register" ]
              ~doc:
                "Upload FILE into the daemon's content-addressed store and \
                 print its digest; later submits can use --ref/--patch-against \
                 instead of re-uploading.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "ref" ]
              ~doc:
                "Submit a registered binary by digest (32 wire bytes instead \
                 of the binary). If the daemon answers NeedFull and FILE was \
                 given, falls back to a full upload; without FILE, exits 5."
              ~docv:"DIGEST")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "patch-against" ]
              ~doc:
                "Ship FILE as a sparse byte-delta against base Binfile \
                 $(docv) (which must have been registered — on NeedFull the \
                 base is registered and the patch retried automatically)."
              ~docv:"BASEFILE"))

let () =
  let info =
    Cmd.info "icfg" ~version:"1.0.0"
      ~doc:"Incremental CFG patching for binary rewriting (ASPLOS 2021)"
  in
  exit (Cmd.eval (Cmd.group info [ cmd_inspect; cmd_analyze; cmd_rewrite; cmd_run; cmd_verify; cmd_report; cmd_source; cmd_disasm; cmd_dot; cmd_bench; cmd_serve; cmd_submit; cmd_stats; cmd_top ]))
