(* Partial instrumentation: the Diogenes workflow of section 9.

   Instrument only the functions of interest inside a driver-like library
   (the cu* interfaces and the hidden internal synchronization function) and
   leave the other functions untouched — something the all-or-nothing IR
   lowering approach cannot do at all.

     dune exec examples/partial_instrumentation.exe *)

open Icfg_isa
module Parse = Icfg_analysis.Parse
module Rewriter = Icfg_core.Rewriter
module Vm = Icfg_runtime.Vm

let () =
  let arch = Arch.X86_64 in
  let bin, _ = Icfg_workloads.Apps.libcuda arch in
  let subset = Icfg_workloads.Apps.libcuda_api_subset bin in
  let parse = Parse.parse bin in
  Format.printf "libcuda analogue: %d functions; instrumenting %d of them@."
    (Parse.total_funcs parse) (List.length subset);

  (* Count executions of the instrumented functions only. *)
  let rw =
    Rewriter.rewrite
      ~options:
        {
          Rewriter.default_options with
          Rewriter.only = Some subset;
          payload = Rewriter.P_count;
        }
      parse
  in
  Format.printf "%a@." Rewriter.pp_stats rw.Rewriter.rw_stats;

  let counters = Hashtbl.create 64 in
  let config = Rewriter.vm_config_for rw (Vm.default_config ()) in
  let r =
    Vm.run ~config ~routines:(Rewriter.routines_for rw ~counters)
      rw.Rewriter.rw_binary
  in
  (match r.Vm.outcome with
  | Vm.Halted -> Format.printf "run ok (%d traps)@." r.Vm.trap_hits
  | Vm.Crashed m -> failwith m);

  (* Which instrumented function is the hidden synchronization hot spot? *)
  let totals = Hashtbl.create 16 in
  Hashtbl.iter
    (fun block count ->
      match Icfg_obj.Binary.symbol_at bin block with
      | Some s ->
          let n = s.Icfg_obj.Symbol.name in
          Hashtbl.replace totals n
            (count + Option.value ~default:0 (Hashtbl.find_opt totals n))
      | None -> ())
    counters;
  let ranked =
    List.sort (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [])
  in
  Format.printf "@.instrumented-function execution profile (top 6):@.";
  List.iteri
    (fun i (n, c) ->
      if i < 6 then Format.printf "  %-18s %9d block executions@." n c)
    ranked;
  match ranked with
  | (top, _) :: _ ->
      Format.printf
        "@.'%s' dominates: the hidden synchronization function Diogenes@.\
         identifies by instrumenting exactly this subset (section 9).@."
        top
  | [] -> ()
