(* Block profiler: a real instrumentation client on top of the rewriter.

   Rewrites a SPEC-like benchmark with the counting payload at every basic
   block, runs it, and prints the hottest functions and blocks — the
   "function or block execution counts" tool the paper's discussion section
   uses as its canonical binary-rewriting application.

     dune exec examples/block_profiler.exe [-- <arch>] *)

open Icfg_isa
module Parse = Icfg_analysis.Parse
module Rewriter = Icfg_core.Rewriter
module Vm = Icfg_runtime.Vm

let () =
  let arch =
    match Sys.argv with
    | [| _; a |] -> Option.value ~default:Arch.X86_64 (Arch.of_string a)
    | _ -> Arch.X86_64
  in
  let bench = List.nth (Icfg_workloads.Spec_suite.benchmarks arch) 3 in
  let bin, _ = Icfg_workloads.Spec_suite.compile arch bench in
  Format.printf "profiling %s on %a@." bench.Icfg_workloads.Spec_suite.bench_name
    Arch.pp arch;

  let parse = Parse.parse bin in
  let rw =
    Rewriter.rewrite
      ~options:
        {
          Rewriter.default_options with
          Rewriter.mode = Icfg_core.Mode.Func_ptr;
          payload = Rewriter.P_count;
        }
      parse
  in
  let counters = Hashtbl.create 256 in
  let config = Rewriter.vm_config_for rw (Vm.default_config ()) in
  let result =
    Vm.run ~config ~routines:(Rewriter.routines_for rw ~counters)
      rw.Rewriter.rw_binary
  in
  (match result.Vm.outcome with
  | Vm.Halted -> ()
  | Vm.Crashed m -> failwith ("rewritten run crashed: " ^ m));

  (* Aggregate per-block counts into per-function totals. *)
  let func_totals = Hashtbl.create 32 in
  Hashtbl.iter
    (fun block count ->
      match Icfg_obj.Binary.symbol_at bin block with
      | Some sym ->
          let name = sym.Icfg_obj.Symbol.name in
          Hashtbl.replace func_totals name
            (count + Option.value ~default:0 (Hashtbl.find_opt func_totals name))
      | None -> ())
    counters;
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) func_totals [])
  in
  Format.printf "@.hottest functions (block executions):@.";
  List.iteri
    (fun i (name, total) ->
      if i < 10 then Format.printf "  %2d. %-24s %10d@." (i + 1) name total)
    ranked;

  (* And the hottest individual blocks. *)
  let blocks =
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters [])
  in
  Format.printf "@.hottest blocks:@.";
  List.iteri
    (fun i (addr, count) ->
      if i < 8 then
        let fname =
          match Icfg_obj.Binary.symbol_at bin addr with
          | Some s -> s.Icfg_obj.Symbol.name
          | None -> "?"
        in
        Format.printf "  0x%06x (%s) %10d@." addr fname count)
    blocks;
  Format.printf "@.total blocks instrumented: %d, executed: %d@."
    rw.Rewriter.rw_stats.Rewriter.s_blocks (Hashtbl.length counters)
