(* Exception tracer: demonstrates runtime return-address translation.

   A C++-style binary whose hot path throws and catches across frames is
   rewritten three ways:
   - with RA translation (this paper, section 6): unwinding works, near-zero
     extra cost per throw;
   - with call emulation (SRBI/Multiverse): unwinding works, but every call
     pays the emulation sequence and every return bounces through a
     trampoline;
   - with neither: the unwinder meets relocated return addresses that have
     no frame information and the program dies.

     dune exec examples/exception_tracer.exe *)

open Icfg_isa
open Icfg_codegen
module Parse = Icfg_analysis.Parse
module Rewriter = Icfg_core.Rewriter
module Vm = Icfg_runtime.Vm

let program =
  Ir.program ~name:"exceptions"
    ~features:
      { Icfg_obj.Binary.no_features with
        Icfg_obj.Binary.langs = [ Icfg_obj.Binary.Cpp ]; cpp_exceptions = true }
    ~main:"main"
    [
      Ir.func "risky" [ "x" ]
        [
          Ir.If
            ( Insn.Eq, Bin (Band, Var "x", Int 3), Int 0,
              [ Ir.Throw (Var "x") ], [] );
          Ir.Return (Bin (Badd, Var "x", Int 1));
        ];
      Ir.func "middle" [ "x" ]
        [
          Ir.Call (Some "r", Direct "risky", [ Var "x" ]);
          Ir.Return (Var "r");
        ];
      Ir.func "main" []
        [
          Ir.Let ("ok", Int 0);
          Ir.Let ("caught", Int 0);
          Ir.For
            ( "i", 0, 64,
              [
                Ir.Try
                  ( [
                      Ir.Call (Some "r", Direct "middle", [ Var "i" ]);
                      Ir.Set (Lvar "ok", Bin (Badd, Var "ok", Int 1));
                    ],
                    "e",
                    [ Ir.Set (Lvar "caught", Bin (Badd, Var "caught", Int 1)) ] );
              ] );
          Ir.Print (Var "ok");
          Ir.Print (Var "caught");
          Ir.Return (Int 0);
        ];
    ]

let show label outcome (r : Vm.result) extra =
  Format.printf "  %-28s %-34s cycles %8s  unwind steps %4d%s@." label
    (match outcome with
    | Vm.Halted -> "ok, output " ^ String.concat "," (List.map string_of_int r.Vm.output)
    | Vm.Crashed m -> "CRASHED: " ^ m)
    (string_of_int r.Vm.cycles) r.Vm.unwind_steps extra

let () =
  let arch = Arch.X86_64 in
  let bin, _ = Compile.compile arch program in
  let orig = Vm.run ~routines:(Icfg_runtime.Runtime_lib.standard ()) bin in
  Format.printf "48 calls succeed, 16 throw and are caught two frames up.@.@.";
  show "original" orig.Vm.outcome orig "";

  let attempt label options =
    let parse = Parse.parse bin in
    let rw = Rewriter.rewrite ~options parse in
    let config = Rewriter.vm_config_for rw (Vm.default_config ()) in
    let r =
      Vm.run ~config
        ~routines:(Rewriter.routines_for rw ~counters:(Hashtbl.create 4))
        rw.Rewriter.rw_binary
    in
    let map_size = Icfg_runtime.Runtime_lib.Ra_map.size rw.Rewriter.rw_ra_map in
    show label r.Vm.outcome r (Printf.sprintf "  (ra-map entries: %d)" map_size)
  in
  attempt "RA translation (ours)" Rewriter.default_options;
  attempt "call emulation (SRBI-like)"
    {
      (Rewriter.srbi_like Rewriter.P_empty) with
      Rewriter.tramp_at_every_block = false;
      use_superblocks = true;
      use_scratch_pool = true;
      instr_gap = 0x1000;
    };
  attempt "no unwinding support"
    { Rewriter.default_options with Rewriter.ra_translation = false };
  Format.printf
    "@.The RA map translates each relocated return address back to its@.\
     original call site before every unwind step, so .eh_frame is never@.\
     modified (section 6 of the paper).@."
