(* Quickstart: the public API in ~40 lines.

   Build a small program with a jump table and function pointers, compile it
   for an architecture, parse it, rewrite it with incremental CFG patching,
   and run both binaries to show the rewriting is invisible.

     dune exec examples/quickstart.exe *)

open Icfg_isa
open Icfg_codegen
module Rewriter = Icfg_core.Rewriter
module Vm = Icfg_runtime.Vm

(* A small source program in the structured IR. *)
let program =
  Ir.program ~name:"hello-rewriting" ~main:"main"
    ~data:[ Ir.Func_table ("ops", [ "double_"; "square" ]) ]
    [
      Ir.func "double_" [ "x" ] [ Ir.Return (Bin (Bmul, Var "x", Int 2)) ];
      Ir.func "square" [ "x" ] [ Ir.Return (Bin (Bmul, Var "x", Var "x")) ];
      Ir.func "classify" [ "x" ]
        [
          (* switch (x & 3) -> compiled to a jump table *)
          Ir.Switch
            ( Ir.Jt_plain,
              Bin (Band, Var "x", Int 3),
              [|
                [ Ir.Return (Int 10) ];
                [ Ir.Return (Int 20) ];
                [ Ir.Return (Int 30) ];
                [ Ir.Return (Int 40) ];
              |],
              [ Ir.Return (Int 0) ] );
        ];
      Ir.func "main" []
        [
          Ir.For
            ( "i",
              0,
              8,
              [
                Ir.Call (Some "c", Direct "classify", [ Var "i" ]);
                (* indirect call through the function-pointer table *)
                Ir.Call (Some "v", Via_ptr (Table_elt ("ops", Bin (Band, Var "i", Int 1))), [ Var "c" ]);
                Ir.Print (Var "v");
              ] );
          Ir.Return (Int 0);
        ];
    ]

let () =
  let arch = Arch.X86_64 in
  (* 1. Compile (the synthetic GCC). *)
  let binary, _debug = Compile.compile arch program in
  Format.printf "compiled %a@." Icfg_obj.Binary.pp binary;

  (* 2. Parse: CFGs, jump tables, function pointers, liveness. *)
  let parse = Icfg_analysis.Parse.parse binary in
  Format.printf "%a@." Icfg_analysis.Parse.pp_summary parse;

  (* 3. Rewrite with incremental CFG patching (jt mode: jump tables are
        cloned so switch dispatch stays in the relocated code). *)
  let rw =
    Rewriter.rewrite
      ~options:{ Rewriter.default_options with Rewriter.mode = Icfg_core.Mode.Jt }
      parse
  in
  Format.printf "rewrote: %a@." Rewriter.pp_stats rw.Rewriter.rw_stats;

  (* 4. Run the original and the rewritten binary; outputs must agree even
        though every original code byte was overwritten with illegal
        instructions (only the trampolines remain). *)
  let run_orig =
    Vm.run ~routines:(Icfg_runtime.Runtime_lib.standard ()) binary
  in
  let counters = Hashtbl.create 16 in
  let config = Rewriter.vm_config_for rw (Vm.default_config ()) in
  let run_rw =
    Vm.run ~config ~routines:(Rewriter.routines_for rw ~counters)
      rw.Rewriter.rw_binary
  in
  Format.printf "original : %s@."
    (String.concat " " (List.map string_of_int run_orig.Vm.output));
  Format.printf "rewritten: %s@."
    (String.concat " " (List.map string_of_int run_rw.Vm.output));
  assert (run_orig.Vm.output = run_rw.Vm.output);
  Format.printf "outputs identical — rewriting is transparent.@."
