examples/failure_modes.ml: Arch Format Icfg_analysis Icfg_codegen Icfg_core Icfg_isa Icfg_workloads List
