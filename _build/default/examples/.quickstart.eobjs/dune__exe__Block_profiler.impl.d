examples/block_profiler.ml: Arch Format Hashtbl Icfg_analysis Icfg_core Icfg_isa Icfg_obj Icfg_runtime Icfg_workloads List Option Sys
