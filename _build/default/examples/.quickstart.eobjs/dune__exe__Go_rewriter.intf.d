examples/go_rewriter.mli:
