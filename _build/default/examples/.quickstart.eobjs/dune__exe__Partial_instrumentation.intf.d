examples/partial_instrumentation.mli:
