examples/quickstart.ml: Arch Compile Format Hashtbl Icfg_analysis Icfg_codegen Icfg_core Icfg_isa Icfg_obj Icfg_runtime Ir List String
