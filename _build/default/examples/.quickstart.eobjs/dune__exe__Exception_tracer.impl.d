examples/exception_tracer.ml: Arch Compile Format Hashtbl Icfg_analysis Icfg_codegen Icfg_core Icfg_isa Icfg_obj Icfg_runtime Insn Ir List Printf String
