examples/block_profiler.mli:
