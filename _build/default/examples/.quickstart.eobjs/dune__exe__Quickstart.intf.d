examples/quickstart.mli:
