examples/exception_tracer.mli:
