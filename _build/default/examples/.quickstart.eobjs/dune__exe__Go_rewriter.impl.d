examples/go_rewriter.ml: Arch Format Hashtbl Icfg_analysis Icfg_core Icfg_isa Icfg_runtime Icfg_workloads List
