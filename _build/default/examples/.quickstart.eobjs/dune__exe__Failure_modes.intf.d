examples/failure_modes.mli:
