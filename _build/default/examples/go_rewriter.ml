(* Go rewriting: the Docker scenario of section 8.2.

   Go binaries unwind their own stacks (GC, dynamic stack growth) through a
   function table keyed by original PCs. The rewriter instruments the
   entries of runtime.findfunc/runtime.pcvalue with a call that translates
   the PC argument, so tracebacks of the rewritten binary see original
   addresses. func-ptr mode, by contrast, rewrites the interface-table
   slots that Go also compares against the function table — and fails.

     dune exec examples/go_rewriter.exe *)

open Icfg_isa
module Parse = Icfg_analysis.Parse
module Rewriter = Icfg_core.Rewriter
module Mode = Icfg_core.Mode
module Vm = Icfg_runtime.Vm

let () =
  let arch = Arch.X86_64 in
  let bin, _ = Icfg_workloads.Apps.docker arch in
  Format.printf "docker analogue: Go runtime, .gopclntab, PIE, no jump tables@.@.";

  let config =
    { (Vm.default_config ()) with Vm.load_base = 0x20000000 }
  in
  let orig = Vm.run ~config ~routines:(Icfg_runtime.Runtime_lib.standard ()) bin in
  Format.printf "original : %s (%d traceback frames emitted)@."
    (match orig.Vm.outcome with Vm.Halted -> "ok" | Vm.Crashed m -> m)
    (List.length orig.Vm.output - 1);

  List.iter
    (fun mode ->
      let parse = Parse.parse bin in
      let rw =
        Rewriter.rewrite ~options:{ Rewriter.default_options with Rewriter.mode }
          parse
      in
      let cfg = Rewriter.vm_config_for rw config in
      let r =
        Vm.run ~config:cfg
          ~routines:(Rewriter.routines_for rw ~counters:(Hashtbl.create 4))
          rw.Rewriter.rw_binary
      in
      match r.Vm.outcome with
      | Vm.Halted when r.Vm.output = orig.Vm.output ->
          Format.printf
            "%-9s: ok — tracebacks identical (findfunc entry instrumented: %b)@."
            (Mode.name mode) rw.Rewriter.rw_go_hook
      | Vm.Halted -> Format.printf "%-9s: OUTPUT MISMATCH@." (Mode.name mode)
      | Vm.Crashed m -> Format.printf "%-9s: FAILED — %s@." (Mode.name mode) m)
    [ Mode.Dir; Mode.Jt; Mode.Func_ptr ];

  Format.printf
    "@.dir and jt behave identically (Go emits no jump tables); func-ptr@.\
     mode fails because Go's interface tables hold values that are both@.\
     called and compared against the function table — rewriting them@.\
     changes the comparison (sections 5.2 and 8.2).@."
