(* Failure-mode methodology: the paper's Figure 2 as an interactive demo.

   Binary analysis fails in three ways, and the paper's central claim is
   that these failures have graded — not uniform — impact on rewriting:

     analysis failure      -> lower coverage, everything else correct
     over-approximation    -> wasted trampoline space, still correct
     under-approximation   -> catastrophic (and loudly so, thanks to the
                              strong test destroying original code bytes)

   This example injects each failure into the jump-table analysis of the
   same program and verifies the outcomes with Icfg_core.Verify.

     dune exec examples/failure_modes.exe *)

open Icfg_isa
module Failure_model = Icfg_analysis.Failure_model
module Parse = Icfg_analysis.Parse
module Verify = Icfg_core.Verify
module Rewriter = Icfg_core.Rewriter

let program =
  Icfg_workloads.Gen.build
    {
      Icfg_workloads.Gen.default_spec with
      Icfg_workloads.Gen.name = "figure2-demo";
      seed = 7;
      n_switch = 3;
      iters = 40;
    }

let with_data_table =
  Icfg_workloads.Gen.build
    {
      Icfg_workloads.Gen.default_spec with
      Icfg_workloads.Gen.name = "figure2-demo";
      seed = 7;
      n_switch = 3;
      n_data_table = 1;
      iters = 40;
    }

let () =
  let arch = Arch.X86_64 in
  let options = { Rewriter.default_options with Rewriter.mode = Icfg_core.Mode.Dir } in
  let show label fm prog =
    let bin, _ = Icfg_codegen.Compile.compile arch prog in
    let parse = Parse.parse ~fm bin in
    let report = Verify.strong_test ~options ~fm bin in
    Format.printf "%-38s coverage %6.2f%%  trampolines %3d  -> %s@." label
      (100. *. Parse.coverage parse)
      report.Verify.stats.Rewriter.s_trampolines
      (if report.Verify.ok then "correct"
       else
         Format.asprintf "%a"
           (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
              Verify.pp_failure)
           (List.filteri (fun i _ -> i < 1) report.Verify.failures))
  in
  Format.printf
    "Figure 2: how CFG-construction failures affect rewriting (x86-64, dir \
     mode)@.@.";
  show "accurate CFG" Failure_model.ours program;
  show "analysis failure (graceful skip)" Failure_model.ours with_data_table;
  show "over-approximated table bound (+8)"
    {
      (Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_over 8)) with
      Failure_model.extend_to_known_data = false;
    }
    program;
  show "under-approximated table bound (-2)"
    (Failure_model.with_bounds Failure_model.ours (Failure_model.Bound_under 2))
    program;
  Format.printf
    "@.Only under-approximation produces wrong rewriting — and the strong@.\
     test makes it crash instead of silently corrupting results. This is@.\
     why the paper's jump-table analysis extends bounds to the next known@.\
     data (never under-approximating) and clones tables instead of@.\
     patching them in place (tolerating over-approximation).@."
