(* Listing/export tests: the objdump-style views and dot export. *)

open Icfg_isa
open Icfg_codegen
module Parse = Icfg_analysis.Parse
module Listing = Icfg_analysis.Listing

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_function_listing () =
  List.iter
    (fun arch ->
      let bin, _ = Compile.compile arch (Test_codegen.switch_prog Ir.Jt_plain) in
      let p = Parse.parse bin in
      let fa = Option.get (Parse.func p "classify") in
      let l = Listing.function_listing bin fa.Parse.fa_cfg in
      Alcotest.(check bool) "names the function" true (contains l "<classify>");
      Alcotest.(check bool) "block annotations" true (contains l "; block [");
      Alcotest.(check bool) "indirect jump rendered" true (contains l "jmp *");
      (* embedded ppc table appears as a gap, never as instructions *)
      if arch = Arch.Ppc64le then
        Alcotest.(check bool) "table gap" true (contains l "; gap ["))
    Arch.all

let test_binary_listing_marks () =
  let bin, _ = Compile.compile Arch.X86_64 (Test_codegen.switch_prog Ir.Jt_plain) in
  let l = Listing.binary_listing bin in
  Alcotest.(check bool) "jump table summary" true (contains l "; jump table @");
  Alcotest.(check bool) "all functions listed" true
    (contains l "<main>" && contains l "<classify>" && contains l "<_start>");
  let bin2, _ =
    Compile.compile Arch.X86_64 (Test_codegen.switch_prog Ir.Jt_data_table)
  in
  let l2 = Listing.binary_listing bin2 in
  Alcotest.(check bool) "uninstrumentable marked" true
    (contains l2 "UNINSTRUMENTABLE")

let test_dot_export () =
  let bin, _ = Compile.compile Arch.X86_64 Test_codegen.prog_loop in
  let p = Parse.parse bin in
  let fa = Option.get (Parse.func p "main") in
  let d = Listing.cfg_to_dot fa.Parse.fa_cfg in
  Alcotest.(check bool) "digraph" true (contains d "digraph");
  Alcotest.(check bool) "has edges" true (contains d " -> ");
  Alcotest.(check bool) "dashed fallthrough" true (contains d "style=dashed");
  (* every block appears as a node *)
  List.iter
    (fun (b : Icfg_analysis.Cfg.block) ->
      Alcotest.(check bool) "node present" true
        (contains d (Printf.sprintf "b%x " b.Icfg_analysis.Cfg.b_start)))
    fa.Parse.fa_cfg.Icfg_analysis.Cfg.blocks

let test_section_summary () =
  let bin, _ = Compile.compile Arch.X86_64 Test_codegen.prog_loop in
  let s = Listing.section_summary bin in
  Alcotest.(check bool) "text line" true (contains s ".text");
  Alcotest.(check bool) "perm bits" true (contains s "r-x")

let suite =
  [
    ( "listing",
      [
        Alcotest.test_case "function listing" `Quick test_function_listing;
        Alcotest.test_case "binary listing marks" `Quick test_binary_listing_marks;
        Alcotest.test_case "dot export" `Quick test_dot_export;
        Alcotest.test_case "section summary" `Quick test_section_summary;
      ] );
  ]
