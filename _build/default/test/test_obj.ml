(* Object-layer tests: sections, symbols, relocations, eh_frame and the
   binary container. *)

open Icfg_isa
module Section = Icfg_obj.Section
module Ir = Icfg_codegen.Ir
module Symbol = Icfg_obj.Symbol
module Reloc = Icfg_obj.Reloc
module Ehframe = Icfg_obj.Ehframe
module Binary = Icfg_obj.Binary

let sect ?(perm = Section.r_only) name vaddr size =
  Section.make ~name ~vaddr ~perm (Bytes.make size '\000')

let mk_binary sections =
  Binary.make ~name:"t" ~arch:Arch.X86_64 ~entry:0x1000
    ~symbols:
      [
        Symbol.make ~name:"f" ~addr:0x1000 ~size:0x40 Symbol.Func;
        Symbol.make ~name:"g" ~addr:0x1040 ~size:0x40 Symbol.Func;
        Symbol.make ~name:"obj" ~addr:0x2000 ~size:8 Symbol.Object;
      ]
    sections

let test_section_basics () =
  let s = sect ".text" 0x1000 0x100 in
  Alcotest.(check int) "size" 0x100 (Section.size s);
  Alcotest.(check int) "end" 0x1100 (Section.end_vaddr s);
  Alcotest.(check bool) "contains start" true (Section.contains s 0x1000);
  Alcotest.(check bool) "contains last" true (Section.contains s 0x10FF);
  Alcotest.(check bool) "not end" false (Section.contains s 0x1100);
  Alcotest.(check string) "rename" ".old" (Section.rename s ".old").Section.name

let test_overlap_rejected () =
  match mk_binary [ sect ".a" 0x1000 0x100; sect ".b" 0x10FF 0x10 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping sections must be rejected"

let test_adjacent_ok () =
  let b = mk_binary [ sect ".a" 0x1000 0x100; sect ".b" 0x1100 0x10 ] in
  Alcotest.(check int) "two sections" 2 (List.length b.Binary.sections)

let test_byte_access () =
  let b = mk_binary [ sect ~perm:Section.r_w ".d" 0x1000 0x100 ] in
  Binary.write64 b 0x1008 (-42);
  Alcotest.(check int) "w64/r64" (-42) (Binary.read64 b 0x1008);
  Binary.write32 b 0x1010 (-5);
  Alcotest.(check int) "w32/r32 signed" (-5) (Binary.read32 b 0x1010);
  Binary.write16 b 0x1018 0x8001;
  Alcotest.(check int) "w16/r16 sign extends" (-32767) (Binary.read16 b 0x1018);
  Binary.write8 b 0x101A 0x80;
  Alcotest.(check int) "w8/r8 sign extends" (-128) (Binary.read8 b 0x101A);
  Binary.write_string b 0x1020 "hi";
  Alcotest.(check int) "string write" (Char.code 'h') (Binary.read8 b 0x1020);
  (match Binary.read8 b 0x5000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unmapped read must raise");
  match Binary.read64 b 0x10FC with
  | exception Invalid_argument _ -> () (* crosses the end *)
  | _ -> Alcotest.fail "cross-boundary read must raise"

let test_copy_is_deep () =
  let b = mk_binary [ sect ~perm:Section.r_w ".d" 0x1000 0x10 ] in
  let c = Binary.copy b in
  Binary.write64 b 0x1000 7;
  Alcotest.(check int) "copy unaffected" 0 (Binary.read64 c 0x1000)

let test_symbol_lookup () =
  let b = mk_binary [ sect ".text" 0x1000 0x100 ] in
  Alcotest.(check bool) "by name" true (Binary.symbol b "g" <> None);
  (match Binary.symbol_at b 0x1050 with
  | Some s -> Alcotest.(check string) "covering symbol" "g" s.Symbol.name
  | None -> Alcotest.fail "symbol_at");
  Alcotest.(check bool) "object symbols excluded from func lookup" true
    (Binary.symbol_at b 0x2004 = None);
  Alcotest.(check int) "func symbols" 2 (List.length (Binary.func_symbols b))

let test_loaded_size () =
  let unloaded =
    Section.make ~loaded:false ~name:".debug" ~vaddr:0x9000
      ~perm:Section.r_only (Bytes.make 0x1000 '\000')
  in
  let b = mk_binary [ sect ".a" 0x1000 0x100; unloaded ] in
  Alcotest.(check int) "only loaded counted" 0x100 (Binary.loaded_size b);
  Alcotest.(check int) "code_end ignores unloaded" 0x1100 (Binary.code_end b)

let test_map_section () =
  let b = mk_binary [ sect ".a" 0x1000 0x10 ] in
  let b' = Binary.map_section b ".a" (fun s -> Section.rename s ".z") in
  Alcotest.(check bool) "renamed" true (Binary.section b' ".z" <> None);
  match Binary.map_section b ".missing" (fun s -> s) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing section must raise"

(* ------------------------------------------------------------------ *)
(* Ehframe                                                             *)
(* ------------------------------------------------------------------ *)

let fde start stop pads =
  {
    Ehframe.func_start = start;
    func_end = stop;
    frame_size = 16;
    ra_loc = Ehframe.Ra_on_stack 8;
    landing_pads = pads;
  }

let test_ehframe_find () =
  let t =
    Ehframe.of_fdes [ fde 0x3000 0x3100 []; fde 0x1000 0x1100 []; fde 0x2000 0x2100 [] ]
  in
  (match Ehframe.find t 0x1000 with
  | Some f -> Alcotest.(check int) "first byte" 0x1000 f.Ehframe.func_start
  | None -> Alcotest.fail "find start");
  (match Ehframe.find t 0x20FF with
  | Some f -> Alcotest.(check int) "last byte" 0x2000 f.Ehframe.func_start
  | None -> Alcotest.fail "find end");
  Alcotest.(check bool) "miss below" true (Ehframe.find t 0x0FFF = None);
  Alcotest.(check bool) "miss between" true (Ehframe.find t 0x1100 = None);
  Alcotest.(check bool) "miss above" true (Ehframe.find t 0x9000 = None)

let ehframe_find_prop =
  QCheck2.Test.make ~count:300 ~name:"ehframe find agrees with linear scan"
    QCheck2.Gen.(
      pair
        (small_list (int_range 0 50))
        (int_range 0 600))
    (fun (starts, pc) ->
      (* disjoint fdes of width 8 at starts*10 *)
      let starts = List.sort_uniq compare starts in
      let fdes = List.map (fun s -> fde (s * 10) ((s * 10) + 8) []) starts in
      let t = Ehframe.of_fdes fdes in
      let linear =
        List.find_opt
          (fun f -> pc >= f.Ehframe.func_start && pc < f.Ehframe.func_end)
          fdes
      in
      Ehframe.find t pc = linear)

let test_handler_ranges () =
  let f = fde 0x1000 0x1100 [ (0x1010, 0x1020, 0x1080); (0x1030, 0x1040, 0x1090) ] in
  Alcotest.(check (option int)) "in first" (Some 0x1080)
    (Ehframe.handler_for f ~pc:0x1010);
  Alcotest.(check (option int)) "last byte of range" (Some 0x1080)
    (Ehframe.handler_for f ~pc:0x101F);
  Alcotest.(check (option int)) "range end excluded" None
    (Ehframe.handler_for f ~pc:0x1020);
  Alcotest.(check (option int)) "in second" (Some 0x1090)
    (Ehframe.handler_for f ~pc:0x1035);
  Alcotest.(check (option int)) "outside" None (Ehframe.handler_for f ~pc:0x1050)

let test_relocs () =
  let r = Reloc.relative ~offset:0x2000 ~addend:0x1000 in
  Alcotest.(check bool) "runtime" true (Reloc.is_runtime r);
  let l = Reloc.link ~offset:0x2000 ~sym:"f" ~addend:4 in
  Alcotest.(check bool) "link-time" false (Reloc.is_runtime l)

(* ------------------------------------------------------------------ *)
(* Binfile                                                             *)
(* ------------------------------------------------------------------ *)

module Binfile = Icfg_obj.Binfile
module Vm = Icfg_runtime.Vm

let binary_equal (a : Binary.t) (b : Binary.t) =
  a.Binary.name = b.Binary.name
  && a.Binary.arch = b.Binary.arch
  && a.Binary.pie = b.Binary.pie
  && a.Binary.entry = b.Binary.entry
  && a.Binary.toc_base = b.Binary.toc_base
  && a.Binary.features = b.Binary.features
  && a.Binary.dynsyms = b.Binary.dynsyms
  && a.Binary.relocs = b.Binary.relocs
  && a.Binary.link_relocs = b.Binary.link_relocs
  && Ehframe.fdes a.Binary.eh_frame = Ehframe.fdes b.Binary.eh_frame
  && a.Binary.symbols = b.Binary.symbols
  && List.for_all2
       (fun (x : Section.t) (y : Section.t) ->
         x.Section.name = y.Section.name
         && x.Section.vaddr = y.Section.vaddr
         && x.Section.perm = y.Section.perm
         && x.Section.loaded = y.Section.loaded
         && Bytes.equal x.Section.data y.Section.data)
       a.Binary.sections b.Binary.sections

let test_binfile_roundtrip () =
  List.iter
    (fun arch ->
      List.iter
        (fun pie ->
          let bin, _ =
            Icfg_codegen.Compile.compile ~pie arch Test_codegen.prog_exceptions
          in
          let bin' = Binfile.of_bytes (Binfile.to_bytes bin) in
          Alcotest.(check bool)
            (Printf.sprintf "%s pie=%b roundtrip" (Arch.name arch) pie)
            true (binary_equal bin bin'))
        [ false; true ])
    Arch.all

let test_binfile_rejects_garbage () =
  (match Binfile.of_bytes (Bytes.of_string "NOTMAGIC") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad magic must be rejected");
  let bin, _ = Icfg_codegen.Compile.compile Arch.X86_64 Test_codegen.prog_loop in
  let good = Binfile.to_bytes bin in
  match Binfile.of_bytes (Bytes.sub good 0 (Bytes.length good / 2)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "truncated input must be rejected"

let test_binfile_rewritten_runs_after_reload () =
  (* The full producer-consumer flow: rewrite, save, load, run — the loaded
     binary behaves like the in-memory one (the trap map is re-derivable
     only in-memory, so use a trap-free rewrite). *)
  let bin, _ =
    Icfg_codegen.Compile.compile Arch.X86_64 (Test_codegen.switch_prog Ir.Jt_plain)
  in
  let parse = Icfg_analysis.Parse.parse bin in
  let rw = Icfg_core.Rewriter.rewrite parse in
  let module Rewriter = Icfg_core.Rewriter in
  let path = Filename.temp_file "icfg" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Binfile.save path rw.Rewriter.rw_binary;
      let loaded = Binfile.load path in
      Alcotest.(check bool) "roundtrip" true
        (binary_equal rw.Rewriter.rw_binary loaded);
      let orig = Vm.run ~routines:(Icfg_runtime.Runtime_lib.standard ()) bin in
      let config = Rewriter.vm_config_for rw (Vm.default_config ()) in
      let r =
        Vm.run ~config
          ~routines:(Rewriter.routines_for rw ~counters:(Hashtbl.create 4))
          loaded
      in
      Alcotest.(check bool) "loaded binary halts" true (r.Vm.outcome = Vm.Halted);
      Alcotest.(check (list int)) "same output" orig.Vm.output r.Vm.output)

(* ------------------------------------------------------------------ *)
(* Verify (the strong test as a library)                               *)
(* ------------------------------------------------------------------ *)

module Verify = Icfg_core.Verify

let test_verify_ok () =
  let bin, _ =
    Icfg_codegen.Compile.compile Arch.Aarch64 (Test_codegen.switch_prog Ir.Jt_plain)
  in
  let report = Verify.strong_test bin in
  Alcotest.(check bool) "ok" true report.Verify.ok;
  Alcotest.(check bool) "blocks checked" true (report.Verify.blocks_checked > 10);
  Alcotest.(check bool) "blocks executed" true
    (report.Verify.blocks_executed > 0
    && report.Verify.blocks_executed <= report.Verify.blocks_checked)

let test_verify_detects_under_approximation () =
  (* Inject the catastrophic failure; the strong test must flag it. *)
  let bin, _ =
    Icfg_codegen.Compile.compile Arch.X86_64 (Test_codegen.switch_prog Ir.Jt_plain)
  in
  let fm =
    Icfg_analysis.Failure_model.with_bounds Icfg_analysis.Failure_model.ours
      (Icfg_analysis.Failure_model.Bound_under 2)
  in
  let report = Verify.strong_test ~fm bin in
  Alcotest.(check bool) "caught" false report.Verify.ok;
  Alcotest.(check bool) "reported" true (report.Verify.failures <> [])

let suite =
  [
    ( "obj:sections",
      [
        Alcotest.test_case "basics" `Quick test_section_basics;
        Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
        Alcotest.test_case "adjacent ok" `Quick test_adjacent_ok;
      ] );
    ( "obj:binary",
      [
        Alcotest.test_case "byte access" `Quick test_byte_access;
        Alcotest.test_case "copy is deep" `Quick test_copy_is_deep;
        Alcotest.test_case "symbol lookup" `Quick test_symbol_lookup;
        Alcotest.test_case "loaded size" `Quick test_loaded_size;
        Alcotest.test_case "map section" `Quick test_map_section;
      ] );
    ( "obj:ehframe",
      [
        Alcotest.test_case "find" `Quick test_ehframe_find;
        QCheck_alcotest.to_alcotest ehframe_find_prop;
        Alcotest.test_case "handler ranges" `Quick test_handler_ranges;
        Alcotest.test_case "relocs" `Quick test_relocs;
      ] );
    ( "obj:binfile",
      [
        Alcotest.test_case "roundtrip" `Quick test_binfile_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_binfile_rejects_garbage;
        Alcotest.test_case "save/load/run" `Quick
          test_binfile_rewritten_runs_after_reload;
      ] );
    ( "core:verify",
      [
        Alcotest.test_case "strong test passes" `Quick test_verify_ok;
        Alcotest.test_case "catches under-approximation" `Quick
          test_verify_detects_under_approximation;
      ] );
  ]
