test/test_runtime.ml: Alcotest Arch Bytes Char Encode Hashtbl Icfg_codegen Icfg_isa Icfg_obj Icfg_runtime Insn List Printf QCheck2 QCheck_alcotest Reg String Test_codegen
