test/test_fuzz.ml: Arch Hashtbl Icfg_analysis Icfg_codegen Icfg_core Icfg_isa Icfg_obj Icfg_runtime Icfg_workloads List Mode Option Printf QCheck2 QCheck_alcotest Rewriter
