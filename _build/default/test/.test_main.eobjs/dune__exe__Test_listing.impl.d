test/test_listing.ml: Alcotest Arch Compile Icfg_analysis Icfg_codegen Icfg_isa Ir List Option Printf String Test_codegen
