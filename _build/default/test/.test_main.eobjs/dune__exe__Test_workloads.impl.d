test/test_workloads.ml: Alcotest Arch Bytes Hashtbl Icfg_analysis Icfg_core Icfg_isa Icfg_obj Icfg_runtime Icfg_workloads List QCheck2 QCheck_alcotest
