test/test_isa.ml: Alcotest Arch Char Encode Icfg_isa Insn List Printf QCheck2 QCheck_alcotest Reg String Trampoline
