test/test_obj.ml: Alcotest Arch Bytes Char Filename Fun Hashtbl Icfg_analysis Icfg_codegen Icfg_core Icfg_isa Icfg_obj Icfg_runtime List Printf QCheck2 QCheck_alcotest Sys Test_codegen
