test/test_baselines.ml: Alcotest Arch Compile Hashtbl Icfg_baselines Icfg_codegen Icfg_core Icfg_isa Icfg_obj Icfg_runtime Icfg_workloads Ir List Printf String Test_codegen
