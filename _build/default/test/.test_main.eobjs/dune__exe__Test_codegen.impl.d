test/test_codegen.ml: Alcotest Arch Compile Debug Format Icfg_codegen Icfg_isa Icfg_obj Icfg_runtime Insn Ir List Option Printf String
