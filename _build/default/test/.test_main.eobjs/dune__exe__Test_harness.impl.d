test/test_harness.ml: Alcotest Arch Icfg_baselines Icfg_core Icfg_harness Icfg_isa Icfg_runtime Icfg_workloads List Printf String
