test/test_asm.ml: Alcotest Arch Asm Bytes Encode Hashtbl Icfg_codegen Icfg_isa Icfg_obj Icfg_runtime Insn Int64 List Printf QCheck2 QCheck_alcotest Reg String
